(* memhog — command-line front end to the reproduction.

   Subcommands:
     list       the benchmark suite (Table 2)
     machine    the simulated machine (Table 1)
     compile    run the compiler on a benchmark and dump analysis + code
     run        run one experiment and print every collected metric
     sweep      interactive response vs sleep time for any benchmark
     serve      open-loop KV server tail latency vs offered load x hog variant
     blame      per-request critical-path blame: additive response-time
                decomposition, body vs tail, slowest-request trace export
     report     render metrics JSON files as human-readable tables
     compare    diff two metrics JSON files (the CI regression gate)
     audit      per-directive-site efficacy report from the page ledger
     perf       wall-clock throughput bench (events/sec; work counters gated)
     top        replay a telemetry dump as a live terminal dashboard
*)

open Cmdliner
open Memhog_core
module VS = Memhog_vm.Vm_stats
module Time_ns = Memhog_sim.Time_ns
module Workload = Memhog_workloads.Workload

let machine_term =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Use the 1/8-scale machine instead of the Table 1 testbed.")
  in
  Term.(const (fun q -> if q then Machine.quick else Machine.paper) $ quick)

let workload_conv =
  let parse s =
    match Workload.find_opt s with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown workload %S (valid: %s)" s
                (String.concat ", " Workload.names)))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.Workload.w_name)

let workload_term =
  Arg.(
    value
    & pos 0 workload_conv (Workload.find "MATVEC")
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark name (EMBAR, MATVEC, BUK, CGM, MGRID, FFTPDE).")

let variant_conv =
  let parse = function
    | "O" | "o" -> Ok Experiment.O
    | "P" | "p" -> Ok Experiment.P
    | "R" | "r" -> Ok Experiment.R
    | "B" | "b" -> Ok Experiment.B
    | s -> Error (`Msg (Printf.sprintf "unknown variant %s (O, P, R or B)" s))
  in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Experiment.variant_name v))

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run machine =
    print_string (Figures.table2 ~machine ());
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark suite (Table 2).")
    Term.(const run $ machine_term)

(* ------------------------------------------------------------------ *)
(* machine                                                             *)
(* ------------------------------------------------------------------ *)

let machine_cmd =
  let run machine =
    print_string (Figures.table1 ~machine ());
    0
  in
  Cmd.v
    (Cmd.info "machine" ~doc:"Describe the simulated machine (Table 1).")
    Term.(const run $ machine_term)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let variant =
    Arg.(
      value
      & opt variant_conv Experiment.R
      & info [ "variant"; "v" ] ~docv:"V" ~doc:"Variant to generate (O, P, R).")
  in
  let analysis_only =
    Arg.(value & flag & info [ "analysis" ] ~doc:"Print only the analysis.")
  in
  let run machine workload variant analysis_only =
    let prog, _ =
      workload.Workload.w_make
        ~mem_bytes:(Machine.mem_bytes machine)
        ~page_bytes:machine.Machine.m_config.Memhog_vm.Config.page_bytes
    in
    let target = Machine.compiler_target machine in
    Format.printf "=== source ===@.%a@.@." Memhog_compiler.Ir.pp_program prog;
    let ann = Memhog_compiler.Compile.analyze ~target prog in
    Format.printf "=== analysis ===@.%a@.@." Memhog_compiler.Analysis.pp ann;
    if not analysis_only then begin
      let pir_variant =
        match variant with
        | Experiment.O -> Memhog_compiler.Pir.V_original
        | Experiment.P -> Memhog_compiler.Pir.V_prefetch
        | Experiment.R | Experiment.B -> Memhog_compiler.Pir.V_release
      in
      let compiled =
        Memhog_compiler.Compile.compile ~target ~variant:pir_variant prog
      in
      Format.printf "=== generated code ===@.%a@." Memhog_compiler.Pir.pp compiled
    end;
    0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run the compiler pass on a benchmark and dump its output.")
    Term.(const run $ machine_term $ workload_term $ variant $ analysis_only)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let variant =
    Arg.(
      value
      & opt variant_conv Experiment.R
      & info [ "variant"; "v" ] ~docv:"V" ~doc:"Variant to run (O, P, R, B).")
  in
  let interactive =
    Arg.(
      value
      & opt (some float) None
      & info [ "interactive" ] ~docv:"SLEEP_S"
          ~doc:"Co-run the section-1.1 interactive task with this sleep time.")
  in
  let iterations =
    Arg.(
      value
      & opt (some int) None
      & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Main-computation passes.")
  in
  let conservative =
    Arg.(
      value & flag
      & info [ "conservative" ]
          ~doc:"Use the idealized section-2.3.2 insertion rule.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"DIR"
          ~doc:
            "Register the full telemetry probe set (VM, disk, tiers, \
             runtime, server) and the default alert rules, print every \
             series as a sparkline with the alert timeline, and dump the \
             registry into $(docv): $(b,openmetrics.txt) (text \
             exposition), $(b,series.csv) and $(b,alerts.csv) — the \
             files $(b,memhog top) replays.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "series"; "csv" ] ~docv:"FILE"
          ~doc:
            "Write the sampled time series to a CSV file \
             ($(b,series,time_ns,value) rows).  Without $(b,--telemetry) \
             this selects the legacy trio — free memory, resident set and \
             the Eq. 1 upper limit — plus the trace-drop counter.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a structured event trace (faults, prefetches, releases, \
             daemon steals, rescues) and write it as Chrome trace_event \
             JSON, loadable in chrome://tracing or Perfetto.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the derived metrics (service-time histograms, Figure 7 \
             breakdown, release accuracy, telemetry ranges) as canonical \
             JSON, readable by $(b,memhog report) and $(b,memhog compare).")
  in
  let chaos_conv =
    let parse s =
      match Memhog_sim.Chaos.parse s with
      | Ok _ -> Ok s
      | Error e -> Error (`Msg (Printf.sprintf "bad chaos spec: %s" e))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let chaos =
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Inject faults from this plan (e.g. \
             $(b,disk-fault\\@10s-20s:p=0.5;pressure\\@30s-31s:pages=128)).  \
             The plan is seeded with the machine seed, so repeated runs \
             inject the identical schedule.  Also enables the run-time \
             layer's graceful-degradation governor.")
  in
  let serve_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "serve" ] ~docv:"RPS"
          ~doc:
            "Co-run the open-loop KVSERVE server at $(docv) requests/sec \
             next to the hog and report its tail latency (responses \
             measured from arrival).")
  in
  let tiers_conv =
    let parse s =
      match Memhog_vm.Tiers.spec_of_string s with
      | Ok _ -> Ok s
      | Error e -> Error (`Msg (Printf.sprintf "bad tiers spec: %s" e))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let tiers =
    Arg.(
      value
      & opt (some tiers_conv) None
      & info [ "tiers" ] ~docv:"SPEC"
          ~doc:
            "Install a tiered backing store over the swap volume (e.g. \
             $(b,far+zram+route:thresh=1)): released pages gain fast-tier \
             copies routed by their Eq. 2 priorities, with a circuit \
             breaker failing demotions over to the durable swap copy when \
             the far tier's health degrades.  Clauses: $(b,far), $(b,zram) \
             and $(b,route), each taking $(b,:k=v,...) parameters.")
  in
  let run machine workload variant interactive iterations conservative telemetry
      csv trace metrics chaos serve_rate tiers =
    let interactive_sleep = Option.map Time_ns.of_sec_f interactive in
    let min_sim_time =
      match interactive_sleep with
      | Some s -> max (Time_ns.sec 45) ((8 * s) + Time_ns.sec 20)
      | None -> 0
    in
    let trace_buf = Option.map (fun _ -> Memhog_sim.Trace.create ()) trace in
    let serve =
      Option.map
        (fun rate_rps -> Experiment.serve_cfg ~machine ~rate_rps ())
        serve_rate
    in
    let r =
      Experiment.run
        (Experiment.setup ~machine ?interactive_sleep ?iterations ~min_sim_time
           ~conservative ?trace:trace_buf ?chaos ?serve ?tiers
           ~telemetry:(telemetry <> None) ~workload ~variant ())
    in
    let b = r.Experiment.r_breakdown in
    Format.printf "workload:   %s  variant: %s@." r.Experiment.r_workload
      (Experiment.variant_name r.Experiment.r_variant);
    Format.printf "elapsed:    %s over %d passes (%s per pass)@."
      (Time_ns.to_string r.Experiment.r_elapsed)
      r.Experiment.r_iterations
      (Time_ns.to_string (r.Experiment.r_elapsed / r.Experiment.r_iterations));
    Format.printf "breakdown:  user %s | system %s | io %s | resource %s@."
      (Time_ns.to_string b.Experiment.b_user)
      (Time_ns.to_string b.Experiment.b_system)
      (Time_ns.to_string b.Experiment.b_io_stall)
      (Time_ns.to_string b.Experiment.b_resource_stall);
    let s = r.Experiment.r_app_stats in
    Format.printf "faults:     hard %d | soft %d (daemon %d) | validations %d@."
      s.VS.hard_faults s.VS.soft_faults s.VS.soft_faults_daemon
      s.VS.validation_faults;
    Format.printf "freed:      by daemon %d | by release %d | rescued %d+%d@."
      s.VS.freed_by_daemon s.VS.freed_by_releaser s.VS.rescued_daemon
      s.VS.rescued_releaser;
    Format.printf "daemon:     activations %d | pages stolen %d | invalidations %d@."
      r.Experiment.r_global.VS.daemon_activations
      r.Experiment.r_global.VS.daemon_pages_stolen
      r.Experiment.r_global.VS.daemon_invalidations;
    Format.printf "swap:       %d reads | %d writes@." r.Experiment.r_swap_reads
      r.Experiment.r_swap_writes;
    (match r.Experiment.r_runtime with
    | Some rt ->
        Format.printf
          "runtime:    prefetch req %d (filtered %d) | release req %d (same \
           %d, gone %d) | issued %d | buffered %d | stale dropped %d@."
          rt.Memhog_runtime.Runtime.rt_prefetch_requests
          rt.Memhog_runtime.Runtime.rt_prefetch_filtered
          rt.Memhog_runtime.Runtime.rt_release_requests
          rt.Memhog_runtime.Runtime.rt_release_filtered_same
          rt.Memhog_runtime.Runtime.rt_release_filtered_bitmap
          rt.Memhog_runtime.Runtime.rt_release_issued
          rt.Memhog_runtime.Runtime.rt_release_buffered
          rt.Memhog_runtime.Runtime.rt_release_stale_dropped
    | None -> ());
    (match r.Experiment.r_chaos with
    | Some cs ->
        Format.printf "chaos:      %a | disk timeouts %d@."
          Memhog_sim.Chaos.pp_stats cs r.Experiment.r_disk_timeouts;
        (match r.Experiment.r_runtime with
        | Some rt ->
            Format.printf
              "governor:   level %d | degrades %d | recoveries %d | \
               suppressed %d | os prefetch done %d dropped %d@."
              rt.Memhog_runtime.Runtime.rt_gov_level
              rt.Memhog_runtime.Runtime.rt_gov_degrades
              rt.Memhog_runtime.Runtime.rt_gov_recoveries
              rt.Memhog_runtime.Runtime.rt_gov_suppressed
              rt.Memhog_runtime.Runtime.rt_prefetch_os_done
              rt.Memhog_runtime.Runtime.rt_prefetch_os_dropped
        | None -> ())
    | None -> ());
    (match r.Experiment.r_tiers with
    | Some ts ->
        let module Tiers = Memhog_vm.Tiers in
        List.iter
          (fun (row : Tiers.tier_summary) ->
            Format.printf
              "tier %-5s %d reads | %d writes | %d timeouts (%d retries) | \
               %d rejects | %d failovers | %d breaker flips@."
              (Tiers.tier_name row.Tiers.ts_tier)
              row.Tiers.ts_reads row.Tiers.ts_writes row.Tiers.ts_timeouts
              row.Tiers.ts_retries row.Tiers.ts_rejects row.Tiers.ts_failovers
              row.Tiers.ts_breaker_transitions)
          ts.Tiers.s_tiers;
        Format.printf
          "tiers:      rescued %d | placed %d | breaker %s | zram ampl %.2f@."
          ts.Tiers.s_rescues ts.Tiers.s_placed
          (match ts.Tiers.s_breaker_state with
          | 0 -> "closed"
          | 1 -> "half-open"
          | _ -> "open")
          ts.Tiers.s_zram_amplification
    | None -> ());
    (match r.Experiment.r_serving with
    | Some s ->
        let module Server = Memhog_exec.Server in
        let h = s.Server.sm_hist in
        let pct p = Time_ns.to_string (Memhog_sim.Histogram.percentile h p) in
        Format.printf
          "serving:    %g rps offered | %d arrived, %d served (%d recorded) \
           | queue max %d@."
          s.Server.sm_offered_rps s.Server.sm_arrived s.Server.sm_completed
          s.Server.sm_recorded s.Server.sm_max_queue;
        Format.printf
          "  response: p50 %s | p99 %s | p999 %s | max %s | SLO(%s) %.1f%%@."
          (pct 50.0) (pct 99.0) (pct 99.9)
          (Time_ns.to_string
             (Option.value (Memhog_sim.Histogram.max_value h) ~default:0))
          (Time_ns.to_string s.Server.sm_slo)
          (100.0 *. Server.slo_attainment s)
    | None -> ());
    (match r.Experiment.r_interactive with
    | Some i ->
        Format.printf
          "interactive: response %s (alone %s) | hard faults per sweep %s | \
           %d sweeps@."
          (match i.Experiment.is_avg_response with
          | Some t -> Time_ns.to_string t
          | None -> "-")
          (Time_ns.to_string i.Experiment.is_alone_response)
          (match i.Experiment.is_avg_hard_faults with
          | Some f -> Printf.sprintf "%.1f" f
          | None -> "-")
          i.Experiment.is_sweeps
    | None -> ());
    (match telemetry with
    | Some dir ->
        Format.printf "%a" Memhog_sim.Telemetry.pp r.Experiment.r_telemetry;
        Trace_export.write_telemetry r.Experiment.r_telemetry ~dir;
        Format.printf
          "telemetry written to %s (openmetrics.txt, series.csv, \
           alerts.csv); replay with: memhog top %s@."
          dir dir
    | None -> ());
    (match csv with
    | Some path ->
        Trace_export.write_series_csv r.Experiment.r_telemetry ~path;
        Format.printf "series written to %s@." path
    | None -> ());
    (match trace with
    | Some path ->
        Trace_export.write_chrome_json r.Experiment.r_trace ~path;
        print_string (Trace_export.summary r.Experiment.r_trace);
        Format.printf "trace written to %s@." path
    | None -> ());
    (match metrics with
    | Some path ->
        let label =
          Printf.sprintf "%s %s/%s" machine.Machine.m_name
            r.Experiment.r_workload
            (Experiment.variant_name r.Experiment.r_variant)
        in
        Metrics_io.write_file ~path (Metrics.of_results ~label [ r ]);
        Format.printf "metrics written to %s@." path
    | None -> ());
    Format.printf "invariants: %s@."
      (if r.Experiment.r_invariants_ok then "ok" else "VIOLATED");
    if r.Experiment.r_invariants_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print every metric.")
    Term.(
      const run $ machine_term $ workload_term $ variant $ interactive
      $ iterations $ conservative $ telemetry $ csv $ trace $ metrics $ chaos
      $ serve_rate $ tiers)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let sleeps =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0 ]
      & info [ "sleeps" ] ~docv:"S,S,..."
          ~doc:"Sleep times (seconds) to sweep.")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the sweep's independent simulations on $(docv) worker \
             domains.  Results are identical to --jobs 1; each cell owns \
             its own simulation.")
  in
  let run machine workload sleeps jobs =
    (* Each (sleep, variant) cell is an independent simulation; fan them
       out over the pool and print in input order afterwards. *)
    let specs =
      List.concat_map
        (fun s ->
          (s, None)
          :: List.map (fun v -> (s, Some v)) Experiment.all_variants)
        sleeps
    in
    let cell (s, which) =
      let sleep = Time_ns.of_sec_f s in
      let min_sim_time = max (Time_ns.sec 45) ((8 * sleep) + Time_ns.sec 20) in
      match which with
      | None ->
          let alone =
            Experiment.run_interactive_alone ~machine ~sleep
              ~duration:min_sim_time ()
          in
          (match alone.Experiment.is_avg_response with
          | Some t -> Time_ns.to_string t
          | None -> "-")
      | Some variant ->
          let r =
            Experiment.run
              (Experiment.setup ~machine ~interactive_sleep:sleep ~min_sim_time
                 ~workload ~variant ())
          in
          (match r.Experiment.r_interactive with
          | Some i -> (
              match i.Experiment.is_avg_response with
              | Some t -> Time_ns.to_string t
              | None -> "-")
          | None -> "-")
    in
    let results = List.combine specs (Pool.map ~jobs cell specs) in
    Format.printf "%-9s %10s" "sleep(s)" "alone";
    List.iter
      (fun v -> Format.printf " %10s" (Experiment.variant_name v))
      Experiment.all_variants;
    Format.printf "@.";
    List.iter
      (fun s ->
        Format.printf "%-9.1f" s;
        List.iter
          (fun ((s', _), out) -> if s' = s then Format.printf " %10s" out)
          results;
        Format.printf "@.")
      sleeps;
    0
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Interactive response vs sleep time for one benchmark across all \
          four variants (Figures 1/10a for any workload).")
    Term.(const run $ machine_term $ workload_term $ sleeps $ jobs)

(* ------------------------------------------------------------------ *)
(* serve / blame                                                       *)
(* ------------------------------------------------------------------ *)

(* The serve and blame verbs sweep the same grid; they share its
   argument set. *)
type serve_grid = {
  sg_rates : float list;
  sg_variants : Experiment.variant list;
  sg_hog : Workload.t;
  sg_slo : float;
  sg_duration : float;
  sg_chaos : string option;
  sg_jobs : int;
}

let serve_grid_term =
  let rates =
    Arg.(
      value
      & opt (list float) Serve.default_rates
      & info [ "rates" ] ~docv:"RPS,RPS,..."
          ~doc:"Offered loads (requests/sec) to sweep.")
  in
  let variants =
    Arg.(
      value
      & opt (list variant_conv) Serve.default_variants
      & info [ "variants" ] ~docv:"V,V,..."
          ~doc:"Hog variants to co-run (default: O,B — the bookends).")
  in
  let hog =
    Arg.(
      value
      & opt workload_conv (Workload.find Serve.default_hog)
      & info [ "hog"; "w" ] ~docv:"WORKLOAD"
          ~doc:"The out-of-core hog co-running with the server.")
  in
  let slo =
    Arg.(
      value
      & opt float 0.03
      & info [ "slo" ] ~docv:"S"
          ~doc:"Per-request response-time target, in seconds.")
  in
  let duration =
    Arg.(
      value
      & opt float 20.0
      & info [ "duration" ] ~docv:"S"
          ~doc:"Arrival-window length, in simulated seconds.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"Apply this fault-injection plan to every cell.")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the grid cells on $(docv) worker domains.  Results are \
             bit-identical to --jobs 1.")
  in
  Term.(
    const (fun sg_rates sg_variants sg_hog sg_slo sg_duration sg_chaos
               sg_jobs ->
        { sg_rates; sg_variants; sg_hog; sg_slo; sg_duration; sg_chaos;
          sg_jobs })
    $ rates $ variants $ hog $ slo $ duration $ chaos $ jobs)

let run_serve_grid ~cmd ~machine g =
  (match g.sg_chaos with
  | Some spec -> (
      match Memhog_sim.Chaos.parse spec with
      | Ok _ -> ()
      | Error e ->
          Format.eprintf "memhog %s: bad chaos spec: %s@." cmd e;
          exit 2)
  | None -> ());
  Serve.run ~machine ~workload:g.sg_hog.Workload.w_name ~rates:g.sg_rates
    ~variants:g.sg_variants
    ~slo:(Time_ns.of_sec_f g.sg_slo)
    ~duration:(Time_ns.of_sec_f g.sg_duration)
    ?chaos:g.sg_chaos ~jobs:g.sg_jobs
    ~log:(fun m -> Format.eprintf "%s@." m)
    ()

let write_serve_metrics ~machine ~hog ~path t =
  let label =
    Printf.sprintf "%s serve %s" machine.Machine.m_name hog.Workload.w_name
  in
  Metrics_io.write_file ~path (Metrics.of_results ~label (Serve.results t));
  Format.printf "metrics written to %s@." path

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the grid's derived metrics (including the per-cell \
           $(b,serving) and $(b,blame) objects) as canonical JSON.")

let serve_cmd =
  let blame =
    Arg.(
      value & flag
      & info [ "blame" ]
          ~doc:
            "Also print the per-request blame tables (response-time \
             decomposition by percentile band) — shorthand for following \
             up with $(b,memhog blame).")
  in
  let run machine g blame metrics =
    let t = run_serve_grid ~cmd:"serve" ~machine g in
    print_string (Serve.render t);
    print_newline ();
    print_string (Figures.serve_tail t);
    if blame then begin
      print_newline ();
      print_string (Serve.render_blame t);
      print_newline ();
      print_string (Figures.serve_blame t)
    end;
    (match metrics with
    | Some path -> write_serve_metrics ~machine ~hog:g.sg_hog ~path t
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Sweep the open-loop KVSERVE server over offered load x hog \
          variant and report tail latency (p50/p99/p999, measured from \
          arrival) and SLO attainment — the serving analogue of the \
          paper's interactivity figures.")
    Term.(const run $ machine_term $ serve_grid_term $ blame $ metrics_arg)

let blame_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the slowest sampled request's critical path (request \
             slice, additive blame components, disk/transit sub-intervals) \
             as Chrome trace-event JSON, openable in Perfetto.")
  in
  let run machine g trace metrics =
    let t = run_serve_grid ~cmd:"blame" ~machine g in
    print_string (Serve.render t);
    print_newline ();
    print_string (Serve.render_blame t);
    print_newline ();
    print_string (Figures.serve_blame t);
    (match trace with
    | Some path -> (
        (* the slowest committed request across the whole grid *)
        let slowest =
          List.fold_left
            (fun acc (r : Experiment.result) ->
              match (acc, Memhog_sim.Reqtrace.slowest r.Experiment.r_reqtrace) with
              | None, sp -> sp
              | Some a, Some sp
                when sp.Memhog_sim.Reqtrace.sp_response
                     > a.Memhog_sim.Reqtrace.sp_response ->
                  Some sp
              | acc, _ -> acc)
            None (Serve.results t)
        in
        match slowest with
        | Some sp ->
            Trace_export.write_blame_span sp ~path;
            Format.printf "slowest-request trace written to %s@." path
        | None -> Format.eprintf "memhog blame: no requests recorded@.")
    | None -> ());
    (match metrics with
    | Some path -> write_serve_metrics ~machine ~hog:g.sg_hog ~path t
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Run the serving grid and decompose every sampled request's \
          response time into additive critical-path components (queue \
          wait, index/value fault stalls, CPU wait, compute — summing \
          exactly to the response), then report where the tail's time \
          went, body vs p99+ bands, plus prefetch-race and demand-disk \
          attribution.")
    Term.(const run $ machine_term $ serve_grid_term $ trace $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* tiers                                                               *)
(* ------------------------------------------------------------------ *)

let tiers_cmd =
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Offered load of the partition serving cell (default: the \
             machine's at-the-knee load).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the cells on $(docv) worker domains.  Results are \
             bit-identical to --jobs 1.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the experiment's derived metrics (including the \
             per-cell $(b,tiers) objects) as canonical JSON.")
  in
  let run machine rate jobs metrics =
    let rate =
      match rate with
      | Some r -> r
      | None ->
          if machine.Machine.m_name = Machine.quick.Machine.m_name then 1600.0
          else 3200.0
    in
    let t =
      Tier_exp.run ~machine ~rate ~jobs
        ~log:(fun m -> Format.eprintf "%s@." m)
        ()
    in
    print_string (Tier_exp.render t);
    (match metrics with
    | Some path ->
        let label = Printf.sprintf "tiers %s" machine.Machine.m_name in
        Metrics_io.write_file ~path
          (Metrics.of_results ~label (Tier_exp.results t));
        Format.printf "metrics written to %s@." path
    | None -> ());
    match Tier_exp.check t with
    | () -> 0
    | exception Failure msg ->
        Format.eprintf "memhog tiers: %s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "tiers"
       ~doc:
         "Run the tiered-backing-store experiment: a backend-mix matrix \
          (swap / far / zram / far+zram) plus a serving cell whose \
          far-memory tier is hard-partitioned mid-window — demotions must \
          fail over to the durable swap copy, in-flight reads must be \
          rescued, the circuit breaker must cycle, and post-window SLO \
          attainment must recover.")
    Term.(const run $ machine_term $ rate $ jobs $ metrics)

(* ------------------------------------------------------------------ *)
(* report / compare                                                    *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Metrics JSON files to render.")
  in
  let run files =
    let rc = ref 0 in
    List.iter
      (fun path ->
        match Metrics_io.load_file ~path with
        | Error e ->
            Format.eprintf "memhog report: %s@." e;
            rc := 1
        | Ok j -> (
            match Metrics_io.render j with
            | Ok text -> print_string text
            | Error e ->
                Format.eprintf "memhog report: %s: %s@." path e;
                rc := 1))
      files;
    !rc
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render metrics JSON files (written by $(b,run --metrics) or \
          $(b,bench/main.exe --json)) as human-readable tables.")
    Term.(const run $ files)

let compare_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline metrics JSON file.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Current metrics JSON file.")
  in
  let tolerance =
    Arg.(
      value
      & opt float 0.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed relative drift per numeric field, in percent.  0 \
             (default) demands byte-identical numbers — the right setting \
             for deterministic same-seed runs.")
  in
  let run baseline current tolerance =
    match (Metrics_io.load_file ~path:baseline, Metrics_io.load_file ~path:current) with
    | Error e, _ | _, Error e ->
        Format.eprintf "memhog compare: %s@." e;
        2
    | Ok b, Ok c -> (
        match Metrics_io.compare_json ~tolerance b c with
        | [] ->
            Format.printf "metrics match (%s vs %s, tolerance %g%%)@." baseline
              current tolerance;
            0
        | diffs ->
            Format.printf "@[<v>%d metric(s) drifted beyond %g%% (%s vs %s):@,%a@]@."
              (List.length diffs) tolerance baseline current
              (Metrics_io.pp_diffs ?limit:None)
              diffs;
            1)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two metrics JSON files field by field; exit non-zero when \
          any number drifts beyond the tolerance.  The CI regression gate \
          runs this with --tolerance 0 against a committed baseline.")
    Term.(const run $ baseline $ current $ tolerance)

(* ------------------------------------------------------------------ *)
(* top — replay a telemetry dump as a live terminal dashboard          *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let module Telemetry = Memhog_sim.Telemetry in
  (* series.csv rows ([series,time_ns,value]) grouped by name in
     first-appearance order; each group's samples stay in file (= time)
     order. *)
  let read_series path =
    let order = ref [] and index = Hashtbl.create 16 in
    In_channel.with_open_bin path (fun ic ->
        let rec loop first =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
              (if not first then
                 match String.split_on_char ',' line with
                 | [ name; time; value ] -> (
                     match (int_of_string_opt time, float_of_string_opt value) with
                     | Some t, Some v ->
                         let q =
                           match Hashtbl.find_opt index name with
                           | Some q -> q
                           | None ->
                               let q = Queue.create () in
                               Hashtbl.add index name q;
                               order := name :: !order;
                               q
                         in
                         Queue.add (t, v) q
                     | _ -> ())
                 | _ -> ());
              loop false
        in
        loop true);
    List.rev_map
      (fun name -> (name, List.of_seq (Queue.to_seq (Hashtbl.find index name))))
      !order
  in
  (* alerts.csv rows ([time_ns,rule,event,value]), chronological. *)
  let read_alerts path =
    if not (Sys.file_exists path) then []
    else
      In_channel.with_open_bin path (fun ic ->
          let rec loop first acc =
            match In_channel.input_line ic with
            | None -> List.rev acc
            | Some line ->
                let acc =
                  if first then acc
                  else
                    match String.split_on_char ',' line with
                    | [ time; rule; event; value ] -> (
                        match
                          (int_of_string_opt time, float_of_string_opt value)
                        with
                        | Some t, Some v -> (t, rule, event = "fire", v) :: acc
                        | _ -> acc)
                    | _ -> acc
                in
                loop false acc
          in
          loop true [])
  in
  let render_frame ~width ~now series alerts =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "memhog top — t = %s\n\n" (Time_ns.to_string now));
    List.iter
      (fun (name, samples) ->
        let visible = List.filter (fun (t, _) -> t <= now) samples in
        let last =
          match List.rev visible with (_, v) :: _ -> v | [] -> 0.0
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-20s %12.6g  %s\n" name last
             (Telemetry.sparkline_of ~width visible)))
      series;
    let active =
      List.fold_left
        (fun acc (t, rule, fired, v) ->
          if t > now then acc
          else
            let acc = List.filter (fun (r, _, _) -> r <> rule) acc in
            if fired then (rule, t, v) :: acc else acc)
        [] alerts
    in
    Buffer.add_string buf "\n  alerts:\n";
    if active = [] then Buffer.add_string buf "    (none active)\n"
    else
      List.iter
        (fun (rule, t, v) ->
          Buffer.add_string buf
            (Printf.sprintf "    FIRING %-24s since %s (value %.6g)\n" rule
               (Time_ns.to_string t) v))
        (List.rev active);
    Buffer.contents buf
  in
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Telemetry directory written by $(b,memhog run --telemetry).")
  in
  let speed =
    Arg.(
      value
      & opt float 4.0
      & info [ "speed" ] ~docv:"X"
          ~doc:
            "Playback rate: $(docv) seconds of simulated time per wall \
             second.  0 renders the final frame only (no animation, no \
             escape codes) — the scriptable mode.")
  in
  let width =
    Arg.(
      value
      & opt int 60
      & info [ "width" ] ~docv:"COLS" ~doc:"Sparkline width in columns.")
  in
  let run dir speed width =
    let series = read_series (Filename.concat dir "series.csv") in
    let alerts = read_alerts (Filename.concat dir "alerts.csv") in
    if series = [] then begin
      Format.eprintf "memhog top: no samples in %s@."
        (Filename.concat dir "series.csv");
      1
    end
    else begin
      let t_end =
        List.fold_left
          (fun acc (_, samples) ->
            List.fold_left (fun acc (t, _) -> max acc t) acc samples)
          0 series
      in
      if speed <= 0.0 then
        print_string (render_frame ~width ~now:t_end series alerts)
      else begin
        let frames = 120 in
        let dt = max 1 (t_end / frames) in
        (* Clear once, then repaint from the home position each frame —
           flicker-free on any VT100-compatible terminal. *)
        print_string "\027[2J";
        let rec play now =
          let now = min now t_end in
          print_string "\027[H";
          print_string (render_frame ~width ~now series alerts);
          print_string "\027[J";
          flush stdout;
          if now < t_end then begin
            Unix.sleepf (Time_ns.to_sec_f dt /. speed);
            play (now + dt)
          end
        in
        play dt;
        print_newline ()
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Replay a telemetry dump (written by $(b,memhog run --telemetry \
          DIR)) as a live terminal dashboard: one sparkline per series and \
          an active-alert panel, animated over simulated time.")
    Term.(const run $ dir $ speed $ width)

(* ------------------------------------------------------------------ *)
(* audit                                                               *)
(* ------------------------------------------------------------------ *)

module Ledger = Memhog_sim.Ledger
module Pir = Memhog_compiler.Pir

let audit_cmd =
  let variant =
    Arg.(
      value
      & opt variant_conv Experiment.R
      & info [ "variant"; "v" ] ~docv:"V" ~doc:"Variant to audit (O, P, R, B).")
  in
  let iterations =
    Arg.(
      value
      & opt (some int) None
      & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Main-computation passes.")
  in
  let conservative =
    Arg.(
      value & flag
      & info [ "conservative" ]
          ~doc:"Use the idealized section-2.3.2 insertion rule.")
  in
  let run machine workload variant iterations conservative =
    let r =
      Experiment.run
        (Experiment.setup ~machine ?iterations ~conservative ~workload ~variant
           ())
    in
    let l = r.Experiment.r_ledger in
    let site_info tag =
      List.find_opt (fun si -> si.Pir.si_tag = tag) r.Experiment.r_sites
    in
    let site_desc tag =
      if tag = Memhog_sim.Trace.no_site then "(unattributed)"
      else
        match site_info tag with
        | Some si -> si.Pir.si_desc
        | None -> "?"
    in
    let table ~title ~header ~rows =
      if rows <> [] then
        Format.printf "@[<v>%t@]@."
          (fun fmt -> Report.table ~title ~header ~rows fmt ())
    in
    Format.printf "audit: %s/%s on %s, %d passes, elapsed %s@."
      r.Experiment.r_workload
      (Experiment.variant_name r.Experiment.r_variant)
      machine.Machine.m_name r.Experiment.r_iterations
      (Time_ns.to_string r.Experiment.r_elapsed);
    Format.printf "%d static directive sites, %d pages tracked@.@."
      (List.length r.Experiment.r_sites)
      l.Ledger.ls_pages_tracked;
    (* --- per-site efficacy: prefetch sites --------------------------- *)
    let is_release (row : Ledger.site_row) =
      match site_info row.sr_site with
      | Some si -> si.Pir.si_kind = Pir.S_release
      | None -> row.sr_rel_hints > 0 || row.sr_rel_freed > 0
    in
    let pf_rows =
      List.filter_map
        (fun (row : Ledger.site_row) ->
          if is_release row || row.sr_pf_sent = 0 then None
          else
            Some
              [
                (if row.sr_site = Memhog_sim.Trace.no_site then "-"
                 else string_of_int row.sr_site);
                site_desc row.sr_site;
                Report.count row.sr_pf_sent;
                Report.count row.sr_pf_issued;
                Report.count row.sr_pf_dropped;
                Report.count row.sr_pf_raced;
                Report.count row.sr_pf_done;
                Report.count row.sr_pf_referenced;
                Report.count row.sr_pf_useless;
                Report.count row.sr_pf_late;
                Report.ns row.sr_pf_saved_ns;
              ])
        l.Ledger.ls_sites
    in
    table ~title:"Prefetch sites"
      ~header:
        [
          "site"; "directive"; "sent"; "issued"; "dropped"; "raced"; "done";
          "refd"; "useless"; "late"; "latency saved";
        ]
      ~rows:pf_rows;
    (* --- per-site efficacy: release sites ---------------------------- *)
    let rel_rows =
      List.filter_map
        (fun (row : Ledger.site_row) ->
          if not (is_release row) then None
          else
            let static_prio =
              match site_info row.sr_site with
              | Some si -> string_of_int si.Pir.si_priority
              | None -> "-"
            in
            Some
              [
                (if row.sr_site = Memhog_sim.Trace.no_site then "-"
                 else string_of_int row.sr_site);
                site_desc row.sr_site;
                static_prio;
                Report.f1 row.sr_priority_mean;
                Report.count row.sr_rel_hints;
                Report.count row.sr_rel_filtered;
                Report.count row.sr_rel_buffered;
                Report.count row.sr_rel_stale;
                Report.count row.sr_rel_sent;
                Report.count row.sr_rel_skipped;
                Report.count row.sr_rel_freed;
                Report.count row.sr_rel_rescued;
                Report.count row.sr_rel_refaulted;
                Report.count row.sr_rel_reused;
                Report.count row.sr_rel_unreclaimed;
                Report.pct row.sr_refault_pct;
              ])
        l.Ledger.ls_sites
    in
    table ~title:"Release sites (Eq. 2 priority vs observed refault rate)"
      ~header:
        [
          "site"; "directive"; "prio"; "mean"; "hints"; "filt"; "buf"; "stale";
          "sent"; "skip"; "freed"; "resc"; "refault"; "reused"; "unrecl";
          "refault%";
        ]
      ~rows:rel_rows;
    (* --- wasted-work taxonomy ---------------------------------------- *)
    table ~title:"Wasted-work taxonomy"
      ~header:[ "category"; "pages" ]
      ~rows:
        [
          [ "useless prefetches (fetched, never referenced)";
            Report.count l.Ledger.ls_useless_prefetches ];
          [ "late prefetches (demand fault won the race)";
            Report.count l.Ledger.ls_late_prefetches ];
          [ "too-early releases, rescued (cheap)";
            Report.count l.Ledger.ls_early_rescued ];
          [ "too-early releases, refaulted (expensive)";
            Report.count l.Ledger.ls_early_refaulted ];
          [ "useful releases (freed frame reused)";
            Report.count l.Ledger.ls_useful_releases ];
          [ "unnecessary releases (freed, never reclaimed)";
            Report.count l.Ledger.ls_unnecessary_releases ];
        ];
    (* --- reconciliation against the VM's own counters ---------------- *)
    let s = r.Experiment.r_app_stats in
    let checks =
      [
        ("hard faults", l.Ledger.ls_hard_faults, s.VS.hard_faults);
        ("soft faults", l.Ledger.ls_soft_faults, s.VS.soft_faults);
        ( "validation faults",
          l.Ledger.ls_validation_faults,
          s.VS.validation_faults );
        ("zero fills", l.Ledger.ls_zero_fills, s.VS.zero_fills);
        ("rescues", l.Ledger.ls_rescues, s.VS.rescued_daemon + s.VS.rescued_releaser);
        ("prefetches issued", l.Ledger.ls_prefetches_issued, s.VS.prefetches_issued);
        ("prefetches dropped", l.Ledger.ls_prefetches_dropped, s.VS.prefetches_dropped);
        ("releases freed", l.Ledger.ls_releases_freed, s.VS.freed_by_releaser);
        ("releases skipped", l.Ledger.ls_releases_skipped, s.VS.releases_skipped);
      ]
    in
    table ~title:"Reconciliation (ledger vs Vm_stats)"
      ~header:[ "counter"; "ledger"; "vm"; "status" ]
      ~rows:
        (List.map
           (fun (name, lv, vv) ->
             [
               name; Report.count lv; Report.count vv;
               (if lv = vv then "ok" else "MISMATCH");
             ])
           checks);
    let reconciled = List.for_all (fun (_, lv, vv) -> lv = vv) checks in
    let legal = Ledger.invariants_ok l in
    if not legal then Format.printf "ledger invariants: VIOLATED@.";
    Format.printf "audit: %s@."
      (if reconciled && legal then "all counters reconcile"
       else "RECONCILIATION FAILED");
    if reconciled && legal && r.Experiment.r_invariants_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run one fixed-seed experiment and report the page-lifecycle \
          ledger: per-directive-site efficacy, the wasted-work taxonomy, \
          and an exact reconciliation of the ledger's totals against the \
          VM's own counters (exits non-zero when they disagree).")
    Term.(
      const run $ machine_term $ workload_term $ variant $ iterations
      $ conservative)

(* ------------------------------------------------------------------ *)
(* perf                                                                *)
(* ------------------------------------------------------------------ *)

let perf_cmd =
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the perf cells on $(docv) worker domains.  The gated work \
             counters are identical at any job count; only the wall-clock \
             members change.")
  in
  let gc_minor_kb =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-minor-kb" ] ~docv:"KB"
          ~doc:
            "Resize the GC minor heap to $(docv) KiB before running (a \
             tuning knob; recorded in the output as informational).")
  in
  let ledger =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Keep the page-lifecycle ledger on inside the cells (the \
             production default) instead of benchmarking the bare kernel.  \
             Work counters are identical either way.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the PERF metrics JSON to $(docv).")
  in
  let check =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Gate mode: compare deterministic work counters against the \
             baseline PERF file (tolerance 0); exits non-zero on any \
             divergence.  Wall-clock members are never compared.")
  in
  let current =
    Arg.(
      value
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:
            "With --check: compare this already-written PERF file instead \
             of running the bench.")
  in
  let gate baseline current_json =
    let diffs =
      Metrics_io.compare_json ~tolerance:0.0
        (Perf.work_projection baseline)
        (Perf.work_projection current_json)
    in
    match diffs with
    | [] ->
        Format.printf "perf work counters match the baseline@.";
        0
    | diffs ->
        Format.printf "@[<v>%d perf work counter(s) diverged from the baseline:@,%a@]@."
          (List.length diffs)
          (Metrics_io.pp_diffs ?limit:None)
          diffs;
        1
  in
  let run machine jobs gc_minor_kb ledger out check current =
    match (check, current) with
    | Some baseline, Some cur -> (
        match (Perf.load_file ~path:baseline, Perf.load_file ~path:cur) with
        | Error e, _ | _, Error e ->
            Format.eprintf "memhog perf: %s@." e;
            2
        | Ok b, Ok c -> gate b c)
    | _ -> (
        let t = Perf.run ?gc_minor_kb ~ledger ~machine ~jobs () in
        print_string (Perf.render t);
        Option.iter
          (fun path ->
            Perf.write_file ~path t;
            Format.printf "wrote %s@." path)
          out;
        match check with
        | None -> 0
        | Some baseline -> (
            match Perf.load_file ~path:baseline with
            | Error e ->
                Format.eprintf "memhog perf: %s@." e;
                2
            | Ok b -> gate b (Perf.to_json t)))
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Wall-clock throughput bench: run the perf workload cells and \
          report events/sec, faults/sec, simulated-ns per wall-ns and GC \
          allocation rates.  Deterministic work counters (events executed, \
          faults serviced, iterations, simulated time) can be gated against \
          a committed PERF_metrics.json baseline with $(b,--check); \
          wall-clock numbers are informational only.")
    Term.(
      const run $ machine_term $ jobs $ gc_minor_kb $ ledger $ out $ check
      $ current)

let () =
  let doc =
    "compiler-inserted releases for out-of-core applications (OSDI 2000 \
     reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "memhog" ~version:"1.0.0" ~doc)
          [
            list_cmd; machine_cmd; compile_cmd; run_cmd; sweep_cmd;
            serve_cmd; blame_cmd; tiers_cmd; report_cmd; compare_cmd;
            audit_cmd; perf_cmd; top_cmd;
          ]))
