(* The motivating experiment of section 1.1: an "interactive" task (touch
   1 MB, sleep, repeat) shares the machine with an out-of-core program.

     dune exec examples/interactive_mix.exe [-- SLEEP_SECONDS]

   Without releases the interactive task's response time explodes once its
   sleep time exceeds the paging daemon's clock cycle — prefetching makes
   it far worse — and compiler-inserted releases restore it to the
   stand-alone level (Figures 1 and 10a). *)

open Memhog_core
module Time_ns = Memhog_sim.Time_ns

let () =
  let sleep_s =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 2.0
  in
  let machine = Machine.quick in
  let sleep = Time_ns.of_sec_f sleep_s in
  let workload = Memhog_workloads.Workload.find "MATVEC" in
  let min_sim_time = Time_ns.sec 30 in
  Format.printf
    "interactive task: touch 1 MB, sleep %.1fs, repeat — co-running with \
     out-of-core MATVEC@.@."
    sleep_s;
  let alone =
    Experiment.run_interactive_alone ~machine ~sleep ~duration:min_sim_time ()
  in
  Format.printf "%-24s %14s %12s@." "out-of-core variant" "response" "faults/sweep";
  Format.printf "%-24s %14s %12s@." "(none: machine to itself)"
    (match alone.Experiment.is_avg_response with
    | Some t -> Time_ns.to_string t
    | None -> "-")
    "0.0";
  List.iter
    (fun variant ->
      let r =
        Experiment.run
          (Experiment.setup ~machine ~interactive_sleep:sleep ~min_sim_time
             ~workload ~variant ())
      in
      match r.Experiment.r_interactive with
      | Some i ->
          Format.printf "%-24s %14s %12s@."
            (Experiment.variant_name variant)
            (match i.Experiment.is_avg_response with
            | Some t -> Time_ns.to_string t
            | None -> "-")
            (match i.Experiment.is_avg_hard_faults with
            | Some f -> Printf.sprintf "%.1f" f
            | None -> "-");
          let tl = r.Experiment.r_telemetry in
          (match Memhog_sim.Telemetry.summary_of tl "inter-rss" with
          | Some _ ->
              Format.printf "  resident set over time: |%s|@."
                (Memhog_sim.Telemetry.sparkline ~width:48 tl "inter-rss")
          | None -> ())
      | None -> ())
    Experiment.all_variants;
  Format.printf
    "@.(flat sparkline = the task kept its memory; sawtooth = the hog kept \
     stealing it)@."
