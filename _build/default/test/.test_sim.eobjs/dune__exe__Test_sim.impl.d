test/test_sim.ml: Account Alcotest Condition Engine Gen Heap Ivar List Mailbox Memhog_sim Option Printf QCheck QCheck_alcotest Rng Semaphore Series String Time_ns
