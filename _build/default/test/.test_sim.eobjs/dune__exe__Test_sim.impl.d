test/test_sim.ml: Account Alcotest Condition Engine Gc Gen Heap Ivar List Mailbox Memhog_sim Option Printf QCheck QCheck_alcotest Rng Semaphore Series String Time_ns Weak
