test/test_vm.ml: Account Alcotest Array Engine Fun List Memhog_disk Memhog_sim Memhog_vm Printexc QCheck QCheck_alcotest Time_ns
