test/test_exec.ml: Account Alcotest Engine Format Fun List Memhog_compiler Memhog_disk Memhog_exec Memhog_runtime Memhog_sim Memhog_vm Printexc QCheck QCheck_alcotest Time_ns
