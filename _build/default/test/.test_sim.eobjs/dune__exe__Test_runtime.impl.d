test/test_runtime.ml: Account Alcotest Array Engine Fun Gen Hashtbl List Memhog_runtime Memhog_sim Memhog_vm Printexc QCheck QCheck_alcotest Time_ns
