test/test_core.ml: Alcotest Format List Memhog_compiler Memhog_core Memhog_sim Memhog_vm Memhog_workloads String
