test/test_disk.ml: Alcotest Array Engine List Memhog_disk Memhog_sim Printf QCheck QCheck_alcotest
