test/test_compiler.ml: Alcotest List Memhog_compiler Memhog_workloads Printf QCheck QCheck_alcotest String
