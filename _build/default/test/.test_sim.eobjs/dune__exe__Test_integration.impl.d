test/test_integration.ml: Alcotest Engine Lazy List Memhog_compiler Memhog_core Memhog_exec Memhog_sim Memhog_vm Memhog_workloads Option Printf Time_ns
