test/test_workloads.ml: Alcotest List Memhog_compiler Memhog_workloads Printf QCheck QCheck_alcotest String
