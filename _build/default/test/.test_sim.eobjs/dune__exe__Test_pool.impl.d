test/test_pool.ml: Alcotest Figures Fun List Machine Memhog_core Memhog_sim Pool Printf
