(* Tests for the disk and striped-swap models. *)

open Memhog_sim
module Disk = Memhog_disk.Disk
module Swap = Memhog_disk.Swap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_sim f =
  let e = Engine.create () in
  ignore (Engine.spawn e ~name:"t" f);
  Engine.run e;
  e

let test_random_read_cost () =
  let d = Disk.create ~id:0 () in
  let elapsed = ref 0 in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:100 ~bytes:16_384;
        elapsed := Engine.now ())
  in
  (* overhead + seek + rotation + 16 KB transfer *)
  let p = Disk.cheetah_4lp in
  let expect =
    p.Disk.overhead_ns + p.Disk.seek_ns + p.Disk.rotation_ns
    + (16 * p.Disk.transfer_ns_per_kb)
  in
  check_int "random read cost" expect !elapsed

let test_sequential_read_cheaper () =
  let d = Disk.create ~id:0 () in
  let t_first = ref 0 and t_second = ref 0 in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:10 ~bytes:16_384;
        t_first := Engine.now ();
        Disk.read d ~block:11 ~bytes:16_384;
        t_second := Engine.now () - !t_first)
  in
  check_bool "sequential faster" true (!t_second < !t_first / 5);
  check_int "seq hit recorded" 1 (Disk.sequential_hits d)

let test_disk_serializes_requests () =
  let d = Disk.create ~id:0 () in
  let finish_times = ref [] in
  let e = Engine.create () in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "r%d" i) (fun () ->
           Disk.read d ~block:(1000 * i) ~bytes:16_384;
           finish_times := Engine.now () :: !finish_times))
  done;
  Engine.run e;
  (match List.sort_uniq compare !finish_times with
  | [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "requests should serialize to distinct completion times");
  check_int "all served" 3 (Disk.reads d)

let test_swap_striping_layout () =
  let e = Engine.create () in
  let sw = Swap.create ~page_bytes:16_384 () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         for page = 0 to 19 do
           Swap.read_page sw ~page
         done));
  Engine.run e;
  check_int "ten disks" 10 (Swap.num_disks sw);
  Array.iter
    (fun d -> check_int (Printf.sprintf "disk %d reads" (Disk.id d)) 2 (Disk.reads d))
    (Swap.disks sw);
  check_int "page reads" 20 (Swap.page_reads sw)

let test_swap_parallelism () =
  (* 10 sequentially-numbered pages fetched by 10 concurrent processes land
     on 10 distinct disks: positioning fully overlaps, and the only
     serialization left is the two transfers sharing each SCSI adapter. *)
  let sw = Swap.create ~page_bytes:16_384 () in
  let e = Engine.create () in
  let t_done = ref 0 in
  let remaining = ref 10 in
  for page = 0 to 9 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "p%d" page) (fun () ->
           Swap.read_page sw ~page;
           decr remaining;
           if !remaining = 0 then t_done := Engine.now ()))
  done;
  Engine.run e;
  let p = Disk.cheetah_4lp in
  let expected =
    p.Disk.overhead_ns + p.Disk.seek_ns + p.Disk.rotation_ns
    + (2 * 16 * p.Disk.transfer_ns_per_kb)
  in
  check_int "parallel fetch = positioning + two bus transfers" expected !t_done

let test_bus_serializes_controller_pairs () =
  (* pages 0 and 1 live on disks 0 and 1, which share adapter 0: their
     transfers serialize; pages 0 and 2 (disks 0 and 2) are on different
     adapters and fully overlap. *)
  let p = Disk.cheetah_4lp in
  let one = p.Disk.overhead_ns + p.Disk.seek_ns + p.Disk.rotation_ns
            + (16 * p.Disk.transfer_ns_per_kb) in
  let run pages =
    let sw = Swap.create ~page_bytes:16_384 () in
    let e = Engine.create () in
    let t_done = ref 0 in
    let remaining = ref (List.length pages) in
    List.iter
      (fun page ->
        ignore
          (Engine.spawn e ~name:(Printf.sprintf "p%d" page) (fun () ->
               Swap.read_page sw ~page;
               decr remaining;
               if !remaining = 0 then t_done := Engine.now ())))
      pages;
    Engine.run e;
    !t_done
  in
  check_int "same adapter: one extra transfer"
    (one + (16 * p.Disk.transfer_ns_per_kb))
    (run [ 0; 1 ]);
  check_int "different adapters: full overlap" one (run [ 0; 2 ])

let test_swap_serial_when_same_disk () =
  (* pages 0, 10, 20 all live on disk 0: service serializes. *)
  let sw = Swap.create ~page_bytes:16_384 () in
  let e = Engine.create () in
  let t_done = ref 0 in
  let remaining = ref 3 in
  List.iter
    (fun page ->
      ignore
        (Engine.spawn e ~name:(Printf.sprintf "p%d" page) (fun () ->
             Swap.read_page sw ~page;
             decr remaining;
             if !remaining = 0 then t_done := Engine.now ())))
    [ 0; 20000; 40000 ];
  Engine.run e;
  let p = Disk.cheetah_4lp in
  let one_random =
    p.Disk.overhead_ns + p.Disk.seek_ns + p.Disk.rotation_ns
    + (16 * p.Disk.transfer_ns_per_kb)
  in
  check_bool "serialized" true (!t_done >= 2 * one_random)

let test_write_behind () =
  (* writes pay streaming cost only and do not move the read head *)
  let d = Disk.create ~id:0 () in
  let p = Disk.cheetah_4lp in
  let t_write = ref 0 and t_read = ref 0 in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:100 ~bytes:16_384;
        let t0 = Engine.now () in
        (* a write far away from the head *)
        Disk.write d ~block:90_000 ~bytes:16_384;
        t_write := Engine.now () - t0;
        let t1 = Engine.now () in
        (* the read stream continues sequentially despite the write *)
        Disk.read d ~block:101 ~bytes:16_384;
        t_read := Engine.now () - t1)
  in
  check_int "write = overhead + transfer" (p.Disk.overhead_ns + (16 * p.Disk.transfer_ns_per_kb))
    !t_write;
  check_int "read stream still sequential"
    (p.Disk.overhead_ns + (16 * p.Disk.transfer_ns_per_kb))
    !t_read

let test_near_skip () =
  let d = Disk.create ~id:0 () in
  let p = Disk.cheetah_4lp in
  let t_skip = ref 0 in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:10 ~bytes:16_384;
        let t0 = Engine.now () in
        Disk.read d ~block:14 ~bytes:16_384;
        t_skip := Engine.now () - t0)
  in
  check_int "short forward skip pays track cost"
    (p.Disk.overhead_ns + p.Disk.near_skip_ns + (16 * p.Disk.transfer_ns_per_kb))
    !t_skip;
  check_int "near hit recorded" 1 (Disk.near_hits d)

let test_write_counted () =
  let sw = Swap.create ~page_bytes:16_384 () in
  let _ =
    run_sim (fun () ->
        Swap.write_page sw ~page:3;
        Swap.write_page sw ~page:4)
  in
  check_int "writes" 2 (Swap.page_writes sw);
  check_bool "busy time accrued" true (Swap.total_busy_time sw > 0)

let prop_stripe_covers_all_disks =
  QCheck.Test.make ~name:"any run of n pages covers all n disks" ~count:100
    QCheck.(int_bound 10_000)
    (fun start ->
      let seen = Array.make 10 false in
      for p = start to start + 9 do
        seen.(p mod 10) <- true
      done;
      Array.for_all (fun x -> x) seen)

let () =
  Alcotest.run "memhog_disk"
    [
      ( "disk",
        [
          Alcotest.test_case "random read cost" `Quick test_random_read_cost;
          Alcotest.test_case "sequential cheaper" `Quick test_sequential_read_cheaper;
          Alcotest.test_case "serializes" `Quick test_disk_serializes_requests;
        ] );
      ( "swap",
        [
          Alcotest.test_case "striping layout" `Quick test_swap_striping_layout;
          Alcotest.test_case "parallel across disks" `Quick test_swap_parallelism;
          Alcotest.test_case "serial on one disk" `Quick test_swap_serial_when_same_disk;
          Alcotest.test_case "write counted" `Quick test_write_counted;
          Alcotest.test_case "write behind" `Quick test_write_behind;
          Alcotest.test_case "controller bus" `Quick test_bus_serializes_controller_pairs;
          Alcotest.test_case "near skip" `Quick test_near_skip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_stripe_covers_all_disks ] );
    ]
