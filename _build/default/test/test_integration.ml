(* End-to-end integration tests on the quick (1/8-scale) machine: the
   paper's qualitative claims must hold as invariants of the system. *)

open Memhog_sim
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module VS = Memhog_vm.Vm_stats
module Workload = Memhog_workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.quick

let run ?interactive_sleep ?min_sim_time ?iterations ~workload variant =
  E.run
    (E.setup ~machine ?interactive_sleep ?min_sim_time ?iterations
       ~workload:(Workload.find workload) ~variant ())

(* Cache: MATVEC O/P/R/B dedicated-machine runs are shared across tests. *)
let matvec =
  lazy
    (List.map (fun v -> (v, run ~workload:"MATVEC" ~iterations:2 v)) E.all_variants)

let get v = List.assoc v (Lazy.force matvec)

let test_invariants_hold () =
  List.iter
    (fun (v, r) ->
      check_bool
        (Printf.sprintf "invariants after %s" (E.variant_name v))
        true r.E.r_invariants_ok)
    (Lazy.force matvec)

let test_prefetching_reduces_io_stall () =
  let o = get E.O and p = get E.P in
  let io r = r.E.r_breakdown.E.b_io_stall in
  check_bool "P hides much of the I/O stall" true
    (float_of_int (io p) < 0.7 *. float_of_int (io o));
  check_bool "P faster overall" true (p.E.r_elapsed < o.E.r_elapsed)

let test_releasing_beats_prefetch_alone () =
  (* The headline result: R improves on P (sections 4.3, 13-50%). *)
  let p = get E.P and r = get E.R in
  check_bool "R faster than P" true (r.E.r_elapsed < p.E.r_elapsed)

let test_releasing_idles_the_daemon () =
  let o = get E.O and r = get E.R in
  check_bool "daemon busy in O" true (o.E.r_global.VS.daemon_pages_stolen > 0);
  check_bool "daemon steals vastly reduced (Table 3)" true
    (r.E.r_global.VS.daemon_pages_stolen * 3 < o.E.r_global.VS.daemon_pages_stolen);
  check_bool "activations reduced" true
    (r.E.r_global.VS.daemon_activations <= o.E.r_global.VS.daemon_activations)

let test_releases_replace_steals () =
  let r = get E.R in
  check_bool "most frees are explicit releases (Figure 9)" true
    (r.E.r_app_stats.VS.freed_by_releaser > r.E.r_app_stats.VS.freed_by_daemon)

let test_io_volume_unchanged () =
  (* Releasing must not change how much data is read from swap (only who
     decides what to evict). *)
  let o = get E.O and r = get E.R in
  let within_pct a b pct =
    abs (a - b) * 100 <= pct * max a b
  in
  check_bool "swap reads comparable" true (within_pct o.E.r_swap_reads r.E.r_swap_reads 10)

let test_determinism () =
  let r1 = run ~workload:"EMBAR" ~iterations:1 E.R in
  let r2 = run ~workload:"EMBAR" ~iterations:1 E.R in
  check_int "identical elapsed" r1.E.r_elapsed r2.E.r_elapsed;
  check_int "identical faults" r1.E.r_app_stats.VS.hard_faults
    r2.E.r_app_stats.VS.hard_faults;
  check_int "identical steals" r1.E.r_global.VS.daemon_pages_stolen
    r2.E.r_global.VS.daemon_pages_stolen

(* ------------------------------------------------------------------ *)
(* Interactive co-runs (Figures 1 / 10)                                *)
(* ------------------------------------------------------------------ *)

let sleep = Time_ns.sec 2

let co_run v =
  run ~workload:"MATVEC" ~interactive_sleep:sleep ~min_sim_time:(Time_ns.sec 25) v

let interactive_response (r : E.result) =
  match r.E.r_interactive with
  | Some i -> Option.value i.E.is_avg_response ~default:max_int
  | None -> Alcotest.fail "no interactive summary"

let test_releasing_restores_interactive_response () =
  let p = co_run E.P in
  let r = co_run E.R in
  let resp_p = interactive_response p and resp_r = interactive_response r in
  let alone =
    match r.E.r_interactive with
    | Some i -> i.E.is_alone_response
    | None -> assert false
  in
  check_bool "P ruins the interactive task (Figure 1)" true (resp_p > 4 * alone);
  check_bool "R restores it (Figure 10)" true (resp_r < 2 * alone);
  check_bool "R response well below P" true (resp_r * 2 < resp_p)

let test_interactive_hard_faults_drop_with_releasing () =
  let p = co_run E.P in
  let r = co_run E.R in
  let faults (res : E.result) =
    match res.E.r_interactive with
    | Some i -> Option.value i.E.is_avg_hard_faults ~default:nan
    | None -> nan
  in
  check_bool "P causes re-paging (Figure 10c)" true (faults p > 1.0);
  check_bool "R nearly eliminates it" true (faults r < faults p /. 2.0)

let test_fftpde_buffering_is_the_exception () =
  (* The paper's one negative result: FFTPDE's buffered releases carry
     false temporal reuse, so B retains pages with no future use, the
     daemon reactivates, and the interactive task suffers relative to R. *)
  let run v =
    run ~workload:"FFTPDE" ~interactive_sleep:sleep
      ~min_sim_time:(Time_ns.sec 25) v
  in
  let r = run E.R and b = run E.B in
  check_bool "B reactivates the daemon" true
    (b.E.r_global.VS.daemon_pages_stolen > 3 * r.E.r_global.VS.daemon_pages_stolen);
  check_bool "B hurts the interactive task" true
    (interactive_response b > 5 * interactive_response r)

let test_buk_bucket_array_protected () =
  (* BUK: the compiler releases the sequential arrays but never the
     randomly-accessed one; with releasing the daemon goes idle and the
     bucket array stays resident (few hard faults after warm-up). *)
  let r = run ~workload:"BUK" ~iterations:2 E.R in
  check_int "daemon idle" 0 r.E.r_global.VS.daemon_pages_stolen;
  check_bool "sequential arrays released" true
    (r.E.r_app_stats.VS.freed_by_releaser > 1000);
  (* random touches (indirect) vastly outnumber hard faults: the array is
     being served from memory *)
  check_bool "bucket array resident" true (r.E.r_app_stats.VS.hard_faults < 200)

let test_two_hogs_coexist_with_releasing () =
  let engine = Engine.create ~max_time:(Time_ns.sec 7200) () in
  let os =
    Memhog_vm.Os.create ~swap_config:machine.Machine.m_swap
      ~config:machine.Machine.m_config ~engine ()
  in
  let build name =
    let wl = Workload.find name in
    let prog_ir, params =
      wl.Workload.w_make
        ~mem_bytes:(Machine.mem_bytes machine)
        ~page_bytes:machine.Machine.m_config.Memhog_vm.Config.page_bytes
    in
    let prog =
      Memhog_compiler.Compile.compile
        ~target:(Machine.compiler_target machine)
        ~variant:Memhog_compiler.Pir.V_release prog_ir
    in
    Memhog_exec.App.create ~os ~params prog
  in
  let a = build "MATVEC" and b = build "EMBAR" in
  let finished = ref 0 in
  List.iter
    (fun app ->
      ignore
        (Engine.spawn engine ~name:"hog" (fun () ->
             Memhog_exec.App.run app ~iterations:1;
             incr finished;
             if !finished = 2 then Engine.stop ())))
    [ a; b ];
  Engine.run engine;
  check_int "both completed" 2 !finished;
  (* a small warm-up transient is tolerated; compare the ~16k steals the
     same pairing produces without releasing *)
  check_bool "daemon nearly idle with two hogs" true
    ((Memhog_vm.Os.global_stats os).VS.daemon_pages_stolen < 1000);
  check_bool "invariants" true
    (List.for_all snd (Memhog_vm.Os.check_invariants os))

(* ------------------------------------------------------------------ *)
(* Ablation sanity                                                     *)
(* ------------------------------------------------------------------ *)

let test_hw_ref_bits_remove_soft_faults () =
  let hw =
    {
      machine with
      Machine.m_config =
        { machine.Machine.m_config with Memhog_vm.Config.hw_ref_bits = true };
    }
  in
  let r =
    E.run
      (E.setup ~machine:hw ~workload:(Workload.find "MATVEC") ~iterations:2
         ~variant:E.P ())
  in
  check_int "no daemon-induced soft faults with hardware bits" 0
    r.E.r_app_stats.VS.soft_faults_daemon

let test_no_rescue_costs_more_io () =
  let no_rescue =
    {
      machine with
      Machine.m_config =
        {
          machine.Machine.m_config with
          Memhog_vm.Config.rescue_from_free_list = false;
        };
    }
  in
  let with_rescue = run ~workload:"MGRID" ~iterations:1 E.R in
  let without =
    E.run
      (E.setup ~machine:no_rescue ~workload:(Workload.find "MGRID") ~iterations:1
         ~variant:E.R ())
  in
  check_int "no rescues when disabled" 0
    (without.E.r_app_stats.VS.rescued_daemon
    + without.E.r_app_stats.VS.rescued_releaser);
  check_bool "rescues happen when enabled" true
    (with_rescue.E.r_app_stats.VS.rescued_daemon
     + with_rescue.E.r_app_stats.VS.rescued_releaser
    > 0)

let () =
  Alcotest.run "memhog_integration"
    [
      ( "dedicated-machine",
        [
          Alcotest.test_case "invariants" `Quick test_invariants_hold;
          Alcotest.test_case "P reduces io stall" `Quick
            test_prefetching_reduces_io_stall;
          Alcotest.test_case "R beats P" `Quick test_releasing_beats_prefetch_alone;
          Alcotest.test_case "R idles the daemon" `Quick test_releasing_idles_the_daemon;
          Alcotest.test_case "releases replace steals" `Quick
            test_releases_replace_steals;
          Alcotest.test_case "io volume unchanged" `Quick test_io_volume_unchanged;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "R restores response" `Quick
            test_releasing_restores_interactive_response;
          Alcotest.test_case "hard faults drop" `Quick
            test_interactive_hard_faults_drop_with_releasing;
          Alcotest.test_case "FFTPDE-B exception" `Quick
            test_fftpde_buffering_is_the_exception;
          Alcotest.test_case "BUK bucket protection" `Quick
            test_buk_bucket_array_protected;
          Alcotest.test_case "two hogs coexist" `Quick
            test_two_hogs_coexist_with_releasing;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "hw ref bits" `Quick test_hw_ref_bits_remove_soft_faults;
          Alcotest.test_case "rescue value" `Quick test_no_rescue_costs_more_io;
        ] );
    ]
