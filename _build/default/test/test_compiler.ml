(* Tests for the compiler: IR, reuse/locality analysis, group locality,
   equation-2 priorities, and code generation. *)

module Ir = Memhog_compiler.Ir
module Analysis = Memhog_compiler.Analysis
module Codegen = Memhog_compiler.Codegen
module Compile = Memhog_compiler.Compile
module Pir = Memhog_compiler.Pir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let target =
  { Analysis.memory_pages = 4800; page_bytes = 16384; fault_latency_ns = 12_000_000 }

(* ------------------------------------------------------------------ *)
(* IR basics                                                           *)
(* ------------------------------------------------------------------ *)

let test_bound_arithmetic () =
  let b = Ir.add (Ir.scale 3 (Ir.param "N")) (Ir.cst 7) in
  let env = Ir.env_of_list [ ("N", 10) ] in
  check_int "3N+7" 37 (Ir.eval_bound env b);
  let c = Ir.add b (Ir.scale (-3) (Ir.param "N")) in
  check_int "param cancelled" 7 (Ir.eval_bound env c);
  check_bool "no residual terms" true (c.Ir.bt = [])

let test_subscript_eval () =
  let s =
    {
      Ir.sc = 5;
      sp = [ ("BASE", 1) ];
      st = [ ("i", Ir.C_param "N"); ("j", Ir.C_const 1) ];
    }
  in
  let env = Ir.env_of_list [ ("N", 100); ("BASE", 1000); ("i", 3); ("j", 4) ] in
  check_int "base + i*N + j + 5" (1000 + 300 + 4 + 5) (Ir.eval_subscript env s)

let test_opaque_eval_uses_runtime_value () =
  let s = { Ir.sc = 0; sp = []; st = [ ("k", Ir.C_opaque "S") ] } in
  let env = Ir.env_of_list [ ("S", 4096); ("k", 3) ] in
  check_int "opaque stride evaluates" 12288 (Ir.eval_subscript env s);
  check_bool "but is invisible to analysis" false
    (Ir.coef_visible (Ir.C_opaque "S"))

let test_validate_catches_errors () =
  let bad =
    {
      Ir.prog_name = "bad";
      arrays = [ Ir.array_decl "a" ~size:(Ir.cst 100) ];
      assumptions = [];
      procs = [];
      main =
        Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst 10)
          (Ir.S_body
             {
               Ir.refs =
                 [
                   Ir.direct "zz" [ ("i", Ir.C_const 1) ] ~write:false;
                   Ir.direct "a" [ ("q", Ir.C_const 1) ] ~write:false;
                 ];
               work_ns_per_iter = 1;
             });
    }
  in
  match Ir.validate bad with
  | Error msg ->
      check_bool "mentions unknown array" true (contains msg "unknown array zz");
      check_bool "mentions unbound variable" true (contains msg "unbound loop variable q")
  | Ok _ -> Alcotest.fail "expected validation failure"

(* ------------------------------------------------------------------ *)
(* A reusable matvec program (the paper's Figure 5 kernel)             *)
(* ------------------------------------------------------------------ *)

let matvec_prog ?(n = 7000) ?(known = true) () =
  {
    Ir.prog_name = "mv";
    arrays =
      [
        Ir.array_decl "A" ~size:(Ir.param "NN");
        Ir.array_decl "x" ~size:(Ir.param "N");
        Ir.array_decl "y" ~size:(Ir.param "N");
      ];
    assumptions =
      (if known then [ ("N", Some n); ("NN", Some (n * n)) ]
       else [ ("N", None); ("NN", None) ]);
    procs = [];
    main =
      Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "N")
        (Ir.loop ~var:"j" ~lo:(Ir.cst 0) ~hi:(Ir.param "N")
           (Ir.S_body
              {
                Ir.refs =
                  [
                    Ir.direct "A"
                      [ ("i", Ir.C_param "N"); ("j", Ir.C_const 1) ]
                      ~write:false;
                    Ir.direct "x" [ ("j", Ir.C_const 1) ] ~write:false;
                    Ir.direct "y" [ ("i", Ir.C_const 1) ] ~write:true;
                  ];
                work_ns_per_iter = 45;
              }));
  }

let find_body (t : Analysis.t) =
  let rec go = function
    | Analysis.A_body b -> Some b
    | Analysis.A_loop (_, s) -> go s
    | Analysis.A_seq ss -> List.find_map go ss
    | Analysis.A_call _ -> None
  in
  match go t.Analysis.ap_main with
  | Some b -> b
  | None -> Alcotest.fail "no body found"

let ann_of (b : Analysis.body_ann) array =
  List.find (fun ra -> ra.Analysis.ra_ref.Ir.r_array = array) b.Analysis.ba_refs

(* ------------------------------------------------------------------ *)
(* Reuse analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_matvec_temporal_reuse () =
  let t = Analysis.analyze ~target (matvec_prog ()) in
  let b = find_body t in
  let a = ann_of b "A" and x = ann_of b "x" and y = ann_of b "y" in
  let temporal ra =
    match ra.Analysis.ra_dir with
    | Some d -> List.map fst d.Analysis.da_temporal
    | None -> []
  in
  Alcotest.(check (list string)) "A has no temporal reuse" [] (temporal a);
  Alcotest.(check (list string)) "x temporal across i" [ "i" ] (temporal x);
  Alcotest.(check (list string)) "y temporal across j" [ "j" ] (temporal y)

let test_matvec_priorities () =
  let t = Analysis.analyze ~target (matvec_prog ()) in
  let b = find_body t in
  let prio ra =
    match ra.Analysis.ra_dir with Some d -> d.Analysis.da_priority | None -> -1
  in
  (* Equation 2: depth(i)=0, depth(j)=1 *)
  check_int "A priority 0" 0 (prio (ann_of b "A"));
  check_int "x priority 2^0" 1 (prio (ann_of b "x"));
  check_int "y priority 2^1" 2 (prio (ann_of b "y"))

let test_priority_of_equation2 () =
  check_int "empty" 0 (Analysis.priority_of ~temporal:[]);
  check_int "depth 0" 1 (Analysis.priority_of ~temporal:[ ("i", 0) ]);
  check_int "depths 0+2" 5 (Analysis.priority_of ~temporal:[ ("i", 0); ("k", 2) ])

let prop_priority_monotone =
  QCheck.Test.make ~name:"equation 2: adding a loop never lowers priority"
    ~count:200
    QCheck.(list (int_bound 6))
    (fun depths ->
      let temporal = List.mapi (fun i d -> (Printf.sprintf "v%d" i, d)) depths in
      let p = Analysis.priority_of ~temporal in
      let p' = Analysis.priority_of ~temporal:(("extra", 3) :: temporal) in
      p' > p || (p' = p + 8 && false) || p' = p + 8)

let test_spatial_reuse () =
  let t = Analysis.analyze ~target (matvec_prog ()) in
  let b = find_body t in
  let spatial ra =
    match ra.Analysis.ra_dir with Some d -> d.Analysis.da_spatial | None -> []
  in
  Alcotest.(check (list string)) "A spatial along j" [ "j" ] (spatial (ann_of b "A"));
  Alcotest.(check (list string)) "x spatial along j" [ "j" ] (spatial (ann_of b "x"))

(* ------------------------------------------------------------------ *)
(* Locality (retained) analysis                                        *)
(* ------------------------------------------------------------------ *)

let test_vector_retained_with_known_bounds () =
  (* With known bounds, x's reuse across i provably fits in memory. *)
  let t = Analysis.analyze ~target (matvec_prog ~n:7000 ~known:true ()) in
  let b = find_body t in
  let retained ra =
    match ra.Analysis.ra_dir with
    | Some d -> d.Analysis.da_retained
    | None -> false
  in
  check_bool "x retained" true (retained (ann_of b "x"));
  check_bool "A not retained" false (retained (ann_of b "A"))

let test_unknown_bounds_never_retained () =
  (* Section 2.4: unknown bounds => assume only the smallest working set
     fits; nothing is provably retained. *)
  let t = Analysis.analyze ~target (matvec_prog ~known:false ()) in
  let b = find_body t in
  List.iter
    (fun ra ->
      match ra.Analysis.ra_dir with
      | Some d -> check_bool "not retained" false d.Analysis.da_retained
      | None -> ())
    b.Analysis.ba_refs

(* ------------------------------------------------------------------ *)
(* Group locality (the Figure 3 stencil)                               *)
(* ------------------------------------------------------------------ *)

let stencil_prog () =
  let at oi oj w =
    {
      Ir.r_array = "a";
      r_access =
        Ir.Direct
          {
            Ir.sc = oj;
            sp = (if oi = 0 then [] else [ ("N", oi) ]);
            st = [ ("i", Ir.C_param "N"); ("j", Ir.C_const 1) ];
          };
      r_write = w;
    }
  in
  {
    Ir.prog_name = "stencil";
    arrays = [ Ir.array_decl "a" ~size:(Ir.param "NN") ];
    assumptions = [ ("N", None); ("NN", None) ];
    procs = [];
    main =
      Ir.loop ~var:"i" ~lo:(Ir.cst 1) ~hi:(Ir.add_const (Ir.param "N") (-1))
        (Ir.loop ~var:"j" ~lo:(Ir.cst 1) ~hi:(Ir.add_const (Ir.param "N") (-1))
           (Ir.S_body
              {
                Ir.refs =
                  [
                    at 0 0 true;
                    at 1 (-1) false;
                    at 1 0 false;
                    at 1 1 false;
                    at 0 (-1) false;
                    at 0 1 false;
                    at (-1) (-1) false;
                    at (-1) 0 false;
                    at (-1) 1 false;
                  ];
                work_ns_per_iter = 100;
              }));
  }

let test_stencil_grouping () =
  let t = Analysis.analyze ~target (stencil_prog ()) in
  let b = find_body t in
  let groups =
    List.sort_uniq compare (List.map (fun ra -> ra.Analysis.ra_group) b.Analysis.ba_refs)
  in
  check_int "all nine references in one group" 1 (List.length groups);
  (* Leader = a[i+1][j+1] (index 3 in the list), trailer = a[i-1][j-1]
     (index 6): the first and last references to touch any datum. *)
  let leader = List.find (fun ra -> ra.Analysis.ra_is_leader) b.Analysis.ba_refs in
  let trailer = List.find (fun ra -> ra.Analysis.ra_is_trailer) b.Analysis.ba_refs in
  check_int "leader is a[i+1][j+1]" 3 leader.Analysis.ra_index;
  check_int "trailer is a[i-1][j-1]" 6 trailer.Analysis.ra_index

let test_different_arrays_never_group () =
  let t = Analysis.analyze ~target (matvec_prog ()) in
  let b = find_body t in
  let a = ann_of b "A" and x = ann_of b "x" in
  check_bool "distinct groups" true (a.Analysis.ra_group <> x.Analysis.ra_group)

(* ------------------------------------------------------------------ *)
(* False temporal reuse via opaque strides (FFTPDE)                    *)
(* ------------------------------------------------------------------ *)

let opaque_prog () =
  {
    Ir.prog_name = "opaque";
    arrays = [ Ir.array_decl "a" ~size:(Ir.param "M") ];
    assumptions = [ ("M", Some 4_000_000); ("S", None) ];
    procs = [];
    main =
      Ir.loop ~var:"k" ~lo:(Ir.cst 0) ~hi:(Ir.cst 1000)
        (Ir.loop ~var:"j" ~lo:(Ir.cst 0) ~hi:(Ir.cst 4096)
           (Ir.S_body
              {
                Ir.refs =
                  [
                    Ir.direct "a"
                      [ ("k", Ir.C_opaque "S"); ("j", Ir.C_const 1) ]
                      ~write:false;
                  ];
                work_ns_per_iter = 50;
              }));
  }

let test_opaque_creates_false_temporal () =
  let t = Analysis.analyze ~target (opaque_prog ()) in
  let b = find_body t in
  let ra = List.hd b.Analysis.ba_refs in
  (match ra.Analysis.ra_dir with
  | Some d ->
      Alcotest.(check (list string))
        "apparent temporal reuse along k" [ "k" ]
        (List.map fst d.Analysis.da_temporal);
      check_bool "priority > 0 despite no real reuse" true (d.Analysis.da_priority > 0)
  | None -> Alcotest.fail "expected direct annotation");
  check_bool "false-temporal counted" true
    (t.Analysis.ap_stats.Analysis.st_false_temporal > 0)

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let rec count_pir f = function
  | Pir.P_seq ss -> List.fold_left (fun acc s -> acc + count_pir f s) 0 ss
  | Pir.P_loop { body; _ } as s -> (if f s then 1 else 0) + count_pir f body
  | s -> if f s then 1 else 0

let is_prefetch = function Pir.P_prefetch _ -> true | _ -> false
let is_release = function Pir.P_release _ -> true | _ -> false
let is_touch = function Pir.P_touch _ -> true | _ -> false

let test_variants_differ () =
  let prog = matvec_prog () in
  let o = Compile.compile ~target ~variant:Pir.V_original prog in
  let p = Compile.compile ~target ~variant:Pir.V_prefetch prog in
  let r = Compile.compile ~target ~variant:Pir.V_release prog in
  check_int "O: no prefetches" 0 (count_pir is_prefetch o.Pir.px_main);
  check_int "O: no releases" 0 (count_pir is_release o.Pir.px_main);
  check_bool "P: prefetches present" true (count_pir is_prefetch p.Pir.px_main > 0);
  check_int "P: no releases" 0 (count_pir is_release p.Pir.px_main);
  check_bool "R: both" true
    (count_pir is_prefetch r.Pir.px_main > 0
    && count_pir is_release r.Pir.px_main > 0);
  check_int "touches identical across variants"
    (count_pir is_touch o.Pir.px_main)
    (count_pir is_touch r.Pir.px_main)

let test_indirect_never_released () =
  let prog =
    {
      Ir.prog_name = "ind";
      arrays =
        [
          Ir.array_decl "keys" ~size:(Ir.param "K");
          Ir.array_decl "buckets" ~size:(Ir.param "B");
        ];
      assumptions = [ ("K", None); ("B", None) ];
      procs = [];
      main =
        Ir.loop ~known:false ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "K")
          (Ir.S_body
             {
               Ir.refs =
                 [
                   Ir.direct "keys" [ ("i", Ir.C_const 1) ] ~write:false;
                   Ir.indirect "buckets" ~via:"keys" ~write:true;
                 ];
               work_ns_per_iter = 10;
             });
    }
  in
  let r = Compile.compile ~target ~variant:Pir.V_release prog in
  let releases_buckets = function
    | Pir.P_release { dir; _ } -> dir.Pir.d_array = "buckets"
    | _ -> false
  in
  check_int "no release of the randomly-accessed array" 0
    (count_pir releases_buckets r.Pir.px_main);
  let releases_keys = function
    | Pir.P_release { dir; _ } -> dir.Pir.d_array = "keys"
    | _ -> false
  in
  check_bool "sequential array released" true
    (count_pir releases_keys r.Pir.px_main > 0);
  let indirect_prefetching = function
    | Pir.P_indirect { prefetch; _ } -> prefetch
    | _ -> false
  in
  check_bool "indirect refs are prefetched" true
    (count_pir indirect_prefetching r.Pir.px_main > 0)

let test_conservative_suppresses_retained () =
  let prog = matvec_prog ~known:true () in
  let aggressive = Compile.compile ~target ~variant:Pir.V_release prog in
  let conservative =
    Compile.compile ~target ~conservative:true ~variant:Pir.V_release prog
  in
  let releases_x = function
    | Pir.P_release { dir; _ } -> dir.Pir.d_array = "x"
    | _ -> false
  in
  check_bool "aggressive releases the vector" true
    (count_pir releases_x aggressive.Pir.px_main > 0);
  check_int "conservative retains the vector" 0
    (count_pir releases_x conservative.Pir.px_main)

let test_prefetch_distance () =
  (* ceil(latency / chunk time) clamped to [1, 64] *)
  check_int "long chunks: distance 1" 1
    (Codegen.prefetch_distance_chunks ~target ~chunk_ns:20_000_000);
  check_int "clamped at 64" 64
    (Codegen.prefetch_distance_chunks ~target ~chunk_ns:1);
  check_int "12ms / 100us = 121 -> clamp" 64
    (Codegen.prefetch_distance_chunks ~target ~chunk_ns:100_000);
  check_int "12ms / 1ms = 12" 12
    (Codegen.prefetch_distance_chunks ~target ~chunk_ns:1_000_000)

let test_release_priorities_in_code () =
  let r = Compile.compile ~target ~variant:Pir.V_release (matvec_prog ()) in
  let priorities = ref [] in
  let rec walk = function
    | Pir.P_seq ss -> List.iter walk ss
    | Pir.P_loop { body; _ } -> walk body
    | Pir.P_release { dir; priority } ->
        priorities := (dir.Pir.d_array, priority) :: !priorities
    | _ -> ()
  in
  walk r.Pir.px_main;
  check_bool "A released at priority 0" true (List.mem ("A", 0) !priorities);
  check_bool "x released at priority 1" true (List.mem ("x", 1) !priorities)

let test_tags_unique () =
  let r = Compile.compile ~target ~variant:Pir.V_release (stencil_prog ()) in
  let tags = ref [] in
  let rec walk = function
    | Pir.P_seq ss -> List.iter walk ss
    | Pir.P_loop { body; _ } -> walk body
    | Pir.P_prefetch d -> tags := d.Pir.d_tag :: !tags
    | Pir.P_release { dir; _ } -> tags := dir.Pir.d_tag :: !tags
    | _ -> ()
  in
  walk r.Pir.px_main;
  check_int "all tags distinct"
    (List.length !tags)
    (List.length (List.sort_uniq compare !tags))

(* ------------------------------------------------------------------ *)
(* Workload programs all validate and compile                          *)
(* ------------------------------------------------------------------ *)

let test_all_workloads_compile () =
  List.iter
    (fun (w : Memhog_workloads.Workload.t) ->
      let prog, params =
        w.Memhog_workloads.Workload.w_make ~mem_bytes:(75 * 1024 * 1024)
          ~page_bytes:16384
      in
      (match Ir.validate prog with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s fails validation: %s" w.Memhog_workloads.Workload.w_name e);
      List.iter
        (fun v ->
          let compiled = Compile.compile ~target ~variant:v prog in
          check_bool "main generated" true (compiled.Pir.px_main <> Pir.P_seq []))
        Compile.all_variants;
      (* all declared parameters have runtime values *)
      let env = Ir.env_of_list params in
      List.iter
        (fun (a : Ir.array_decl) ->
          check_bool "array size evaluable" true (Ir.eval_bound env a.Ir.a_size_elems > 0))
        prog.Ir.arrays)
    Memhog_workloads.Workload.all

let prop_compile_deterministic =
  QCheck.Test.make ~name:"compilation is deterministic" ~count:20
    QCheck.(int_range 1000 8000)
    (fun n ->
      let p1 = Compile.compile ~target ~variant:Pir.V_release (matvec_prog ~n ()) in
      let p2 = Compile.compile ~target ~variant:Pir.V_release (matvec_prog ~n ()) in
      let sig_of p =
        ( count_pir is_prefetch p.Pir.px_main,
          count_pir is_release p.Pir.px_main,
          count_pir is_touch p.Pir.px_main,
          p.Pir.px_stats.Pir.gs_prefetch_sites,
          p.Pir.px_stats.Pir.gs_release_sites )
      in
      sig_of p1 = sig_of p2)

let () =
  Alcotest.run "memhog_compiler"
    [
      ( "ir",
        [
          Alcotest.test_case "bound arithmetic" `Quick test_bound_arithmetic;
          Alcotest.test_case "subscript eval" `Quick test_subscript_eval;
          Alcotest.test_case "opaque coefficients" `Quick
            test_opaque_eval_uses_runtime_value;
          Alcotest.test_case "validation" `Quick test_validate_catches_errors;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "matvec temporal" `Quick test_matvec_temporal_reuse;
          Alcotest.test_case "matvec priorities" `Quick test_matvec_priorities;
          Alcotest.test_case "equation 2" `Quick test_priority_of_equation2;
          Alcotest.test_case "spatial" `Quick test_spatial_reuse;
        ] );
      ( "locality",
        [
          Alcotest.test_case "vector retained (known bounds)" `Quick
            test_vector_retained_with_known_bounds;
          Alcotest.test_case "unknown bounds never retained" `Quick
            test_unknown_bounds_never_retained;
        ] );
      ( "groups",
        [
          Alcotest.test_case "stencil grouping" `Quick test_stencil_grouping;
          Alcotest.test_case "arrays never group" `Quick
            test_different_arrays_never_group;
        ] );
      ( "false-temporal",
        [
          Alcotest.test_case "opaque stride" `Quick test_opaque_creates_false_temporal;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "variants differ" `Quick test_variants_differ;
          Alcotest.test_case "indirect never released" `Quick
            test_indirect_never_released;
          Alcotest.test_case "conservative suppresses retained" `Quick
            test_conservative_suppresses_retained;
          Alcotest.test_case "prefetch distance" `Quick test_prefetch_distance;
          Alcotest.test_case "release priorities in code" `Quick
            test_release_priorities_in_code;
          Alcotest.test_case "tags unique" `Quick test_tags_unique;
        ] );
      ( "workloads",
        [ Alcotest.test_case "all compile" `Quick test_all_workloads_compile ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_priority_monotone; prop_compile_deterministic ] );
    ]
