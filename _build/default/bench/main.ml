(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations listed in DESIGN.md.

   Usage:
     bench/main.exe                      run everything
     bench/main.exe fig7 table3 ...      run selected experiments
     bench/main.exe --quick ...          use the shrunk machine
     bench/main.exe microbench           bechamel microbenchmarks of the
                                         simulator primitives

   Experiment ids: table1 table2 fig1 fig7 fig8 table3 fig9 fig10a fig10b
   fig10c ablation-batch ablation-hwbits ablation-conservative
   ablation-rescue ablation-drop ablation-tlb ext-freemem ext-reactive
   ext-two-hogs
   microbench *)

open Memhog_core

let t0 = Unix.gettimeofday ()

let log msg = Printf.eprintf "  [%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) msg

let print_section s =
  Printf.printf "\n%s\n%s\n%s\n%!" (String.make 72 '=') s (String.make 72 '=')

(* The matrix (all workloads x O/P/R/B next to the 5 s interactive task) is
   shared by fig7, fig8, table3, fig9, fig10b and fig10c. *)
let matrix_cache : Figures.matrix option ref = ref None

let get_matrix ~machine () =
  match !matrix_cache with
  | Some m -> m
  | None ->
      log "building experiment matrix (6 workloads x O/P/R/B + interactive)";
      let m = Figures.run_matrix ~machine ~log () in
      matrix_cache := Some m;
      m

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate                            *)
(* ------------------------------------------------------------------ *)

let microbench () =
  let open Bechamel in
  let open Toolkit in
  let sim_spin n =
    Staged.stage (fun () ->
        let e = Memhog_sim.Engine.create () in
        ignore
          (Memhog_sim.Engine.spawn e ~name:"spin" (fun () ->
               for _ = 1 to n do
                 Memhog_sim.Engine.delay ~cat:Memhog_sim.Account.User 10
               done));
        Memhog_sim.Engine.run e)
  in
  let vm_touch n =
    Staged.stage (fun () ->
        let config =
          { Memhog_vm.Config.default with Memhog_vm.Config.total_frames = 256 }
        in
        let e = Memhog_sim.Engine.create () in
        let os = Memhog_vm.Os.create ~config ~engine:e () in
        ignore
          (Memhog_sim.Engine.spawn e ~name:"toucher" (fun () ->
               let asp = Memhog_vm.Os.new_process os ~name:"t" in
               let seg =
                 Memhog_vm.Os.map_segment os asp ~name:"d"
                   ~bytes:(128 * 16384) ~on_swap:true
               in
               for i = 0 to n - 1 do
                 ignore
                   (Memhog_vm.Os.touch os asp
                      ~vpn:(seg.Memhog_vm.Address_space.base_vpn + (i mod 128))
                      ~write:false)
               done;
               Memhog_sim.Engine.stop ()));
        Memhog_sim.Engine.run e)
  in
  let heap_churn n =
    Staged.stage (fun () ->
        let h = Memhog_sim.Heap.create () in
        for i = 0 to n - 1 do
          Memhog_sim.Heap.add h ~key:(i * 7919 mod 1000) ~seq:i i
        done;
        let rec drain () =
          match Memhog_sim.Heap.pop_min h with
          | Some _ -> drain ()
          | None -> ()
        in
        drain ())
  in
  let test =
    Test.make_grouped ~name:"memhog"
      [
        Test.make ~name:"engine: 10k events" (sim_spin 10_000);
        Test.make ~name:"vm: 10k warm touches" (vm_touch 10_000);
        Test.make ~name:"heap: 10k push/pop" (heap_churn 10_000);
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) () in
    Benchmark.all cfg instances test
  in
  let results = benchmark () in
  let results_analyzed =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      (Instance.monotonic_clock :> Measure.witness)
      results
  in
  print_section "Microbenchmarks (bechamel, monotonic clock, ns/run)";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f ns\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results_analyzed

(* ------------------------------------------------------------------ *)
(* Experiment registry                                                 *)
(* ------------------------------------------------------------------ *)

let experiments ~machine =
  [
    ("table1", fun () -> Figures.table1 ~machine ());
    ("table2", fun () -> Figures.table2 ~machine ());
    ("fig1", fun () -> Figures.fig1 ~machine ~log ());
    ("fig7", fun () -> Figures.fig7 (get_matrix ~machine ()));
    ("fig8", fun () -> Figures.fig8 (get_matrix ~machine ()));
    ("table3", fun () -> Figures.table3 (get_matrix ~machine ()));
    ("fig9", fun () -> Figures.fig9 (get_matrix ~machine ()));
    ("fig10a", fun () -> Figures.fig10a ~machine ~log ());
    ("fig10b", fun () -> Figures.fig10b (get_matrix ~machine ()));
    ("fig10c", fun () -> Figures.fig10c (get_matrix ~machine ()));
    ("ablation-batch", fun () -> Figures.ablation_batch ~machine ~log ());
    ("ablation-hwbits", fun () -> Figures.ablation_hwbits ~machine ~log ());
    ( "ablation-conservative",
      fun () -> Figures.ablation_conservative ~machine ~log () );
    ("ablation-rescue", fun () -> Figures.ablation_rescue ~machine ~log ());
    ("ablation-drop", fun () -> Figures.ablation_drop ~machine ~log ());
    ("ablation-tlb", fun () -> Figures.ablation_tlb ~machine ~log ());
    ("ext-freemem", fun () -> Figures.ext_freemem ~machine ~log ());
    ("ext-reactive", fun () -> Figures.ext_reactive ~machine ~log ());
    ("ext-two-hogs", fun () -> Figures.ext_two_hogs ~machine ~log ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let machine = if quick then Machine.quick else Machine.paper in
  let selected = List.filter (fun a -> a <> "--quick") args in
  let run_micro = List.mem "microbench" selected in
  let selected = List.filter (fun a -> a <> "microbench") selected in
  let registry = experiments ~machine in
  let to_run =
    match selected with
    | [] -> registry
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n registry with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s; known: %s microbench\n" n
                  (String.concat " " (List.map fst registry));
                exit 2)
          names
  in
  List.iter
    (fun (name, f) ->
      log (Printf.sprintf "=== %s ===" name);
      print_section name;
      print_string (f ());
      print_newline ())
    to_run;
  if run_micro || selected = [] then microbench ();
  log "done"
