lib/disk/disk.ml: Account Engine Memhog_sim Printf Semaphore Time_ns
