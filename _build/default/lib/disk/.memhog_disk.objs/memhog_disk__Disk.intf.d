lib/disk/disk.mli: Memhog_sim Time_ns
