lib/disk/swap.ml: Array Disk Memhog_sim Printf
