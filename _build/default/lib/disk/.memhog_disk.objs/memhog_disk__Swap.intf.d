lib/disk/swap.mli: Disk Memhog_sim Time_ns
