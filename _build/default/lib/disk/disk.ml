open Memhog_sim

type params = {
  seek_ns : Time_ns.t;
  rotation_ns : Time_ns.t;
  transfer_ns_per_kb : Time_ns.t;
  overhead_ns : Time_ns.t;
  near_skip_ns : Time_ns.t;
  near_skip_span : int;
}

(* Seagate Cheetah 4LP: ~7.7 ms average seek, 10,033 RPM (~3 ms average
   rotational latency), ~15 MB/s sustained media rate (~65 us per KB). *)
let cheetah_4lp =
  {
    seek_ns = Time_ns.us 7_700;
    rotation_ns = Time_ns.us 2_990;
    transfer_ns_per_kb = Time_ns.us 65;
    overhead_ns = Time_ns.us 300;
    (* short forward skips stay in the cylinder neighbourhood: roughly a
       track-to-track seek plus half a rotation *)
    near_skip_ns = Time_ns.us 2_400;
    near_skip_span = 64;
  }

type t = {
  id : int;
  params : params;
  arm : Semaphore.t;
  bus : Semaphore.t option;
  mutable last_block : int;
  mutable reads : int;
  mutable writes : int;
  mutable bytes : int;
  mutable busy : int;
  mutable seq_hits : int;
  mutable near_hits : int;
}

let create ?(params = cheetah_4lp) ?bus ~id () =
  {
    id;
    params;
    arm = Semaphore.create ~name:(Printf.sprintf "disk%d" id) 1;
    bus;
    last_block = min_int;
    reads = 0;
    writes = 0;
    bytes = 0;
    busy = 0;
    seq_hits = 0;
    near_hits = 0;
  }

let id t = t.id

(* (positioning, transfer): positioning happens on the arm alone; the
   transfer additionally occupies the adapter bus. *)
let service_time t ~block ~bytes ~is_write =
  let p = t.params in
  let transfer = p.transfer_ns_per_kb * ((bytes + 1023) / 1024) in
  if is_write then
    (* Write-behind: the drive cache absorbs writes at streaming cost and
       commits them opportunistically, so writes neither pay positioning
       nor disturb the read head. *)
    (p.overhead_ns, transfer)
  else begin
    let delta = block - t.last_block in
    if delta = 1 then begin
      t.seq_hits <- t.seq_hits + 1;
      (p.overhead_ns, transfer)
    end
    else if delta > 1 && delta <= p.near_skip_span then begin
      t.near_hits <- t.near_hits + 1;
      (p.overhead_ns + p.near_skip_ns, transfer)
    end
    else (p.overhead_ns + p.seek_ns + p.rotation_ns, transfer)
  end

let do_io ?(cat = Account.Io_stall) t ~block ~bytes ~is_write =
  Semaphore.acquire ~cat t.arm;
  let positioning, transfer = service_time t ~block ~bytes ~is_write in
  if not is_write then t.last_block <- block;
  if is_write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  t.bytes <- t.bytes + bytes;
  t.busy <- t.busy + positioning + transfer;
  Engine.delay ~cat positioning;
  (match t.bus with
  | Some bus ->
      Semaphore.acquire ~cat bus;
      Engine.delay ~cat transfer;
      Semaphore.release bus
  | None -> Engine.delay ~cat transfer);
  Semaphore.release t.arm

let read ?cat t ~block ~bytes = do_io ?cat t ~block ~bytes ~is_write:false
let write ?cat t ~block ~bytes = do_io ?cat t ~block ~bytes ~is_write:true

let reads t = t.reads
let writes t = t.writes
let bytes_moved t = t.bytes
let busy_time t = t.busy
let sequential_hits t = t.seq_hits
let near_hits t = t.near_hits
