(** Broadcast/signal condition, for "state changed" notifications such as
    "free memory is available again" or "the paging daemon should wake". *)

type t

val create : ?name:string -> unit -> t

val wait : ?cat:Account.category -> t -> unit
(** Block until the next [signal] or [broadcast]; waiting time is charged to
    [cat] (default {!Account.Resource_stall}). *)

val signal : t -> unit
(** Wake the longest-waiting process, if any. *)

val broadcast : t -> unit
(** Wake every waiting process. *)

val waiting : t -> int
