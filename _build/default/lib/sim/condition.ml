type t = { name : string; waiters : Engine.waker Queue.t }

let create ?(name = "cond") () = { name; waiters = Queue.create () }

let wait ?(cat = Account.Resource_stall) t =
  let t0 = Engine.now () in
  Engine.suspend (fun waker -> Queue.add waker t.waiters);
  let waited = Engine.now () - t0 in
  Account.add (Engine.self ()).account cat waited

let signal t = match Queue.take_opt t.waiters with Some w -> w () | None -> ()

let broadcast t =
  let pending = Queue.create () in
  Queue.transfer t.waiters pending;
  Queue.iter (fun w -> w ()) pending

let waiting t = Queue.length t.waiters
