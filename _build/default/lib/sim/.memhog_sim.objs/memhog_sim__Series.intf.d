lib/sim/series.mli: Format Time_ns
