lib/sim/semaphore.mli: Account Time_ns
