lib/sim/mailbox.mli: Account
