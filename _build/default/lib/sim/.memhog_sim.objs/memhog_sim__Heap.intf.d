lib/sim/heap.mli:
