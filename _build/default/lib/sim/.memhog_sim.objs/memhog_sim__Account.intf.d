lib/sim/account.mli: Format Time_ns
