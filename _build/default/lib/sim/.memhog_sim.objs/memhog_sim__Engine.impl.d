lib/sim/engine.ml: Account Effect Heap List Time_ns
