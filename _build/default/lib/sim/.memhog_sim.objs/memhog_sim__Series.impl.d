lib/sim/series.ml: Array Buffer Format Option
