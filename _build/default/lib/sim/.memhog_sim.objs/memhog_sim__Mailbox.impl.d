lib/sim/mailbox.ml: Account Engine Queue
