lib/sim/engine.mli: Account Time_ns
