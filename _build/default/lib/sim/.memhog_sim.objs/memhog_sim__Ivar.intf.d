lib/sim/ivar.mli: Account
