lib/sim/rng.mli:
