lib/sim/ivar.ml: Account Engine Queue
