lib/sim/account.ml: Array Format List Time_ns
