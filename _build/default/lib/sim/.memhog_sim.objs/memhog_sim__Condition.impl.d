lib/sim/condition.ml: Account Engine Queue
