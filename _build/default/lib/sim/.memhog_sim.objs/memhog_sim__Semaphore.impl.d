lib/sim/semaphore.ml: Account Engine Printf Queue
