lib/sim/condition.mli: Account
