type 'a t = {
  name : string;
  items : 'a Queue.t;
  receivers : ('a option ref * Engine.waker) Queue.t;
  mutable sent : int;
}

let create ?(name = "mailbox") () =
  { name; items = Queue.create (); receivers = Queue.create (); sent = 0 }

let send t v =
  t.sent <- t.sent + 1;
  match Queue.take_opt t.receivers with
  | Some (cell, waker) ->
      cell := Some v;
      waker ()
  | None -> Queue.add v t.items

let recv ?(cat = Account.Sleep) t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None ->
      let cell = ref None in
      let t0 = Engine.now () in
      Engine.suspend (fun waker -> Queue.add (cell, waker) t.receivers);
      let waited = Engine.now () - t0 in
      Account.add (Engine.self ()).account cat waited;
      (match !cell with
      | Some v -> v
      | None -> assert false (* the waker is only fired after the cell is set *))

let try_recv t = Queue.take_opt t.items
let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
let sent_count t = t.sent
