(** Unbounded FIFO message queue with blocking receive.

    Used for daemon work queues: the PagingDirected policy module posts
    release requests to the releaser daemon's mailbox; prefetch threads pull
    work from the run-time layer's queue. *)

type 'a t

val create : ?name:string -> unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks. *)

val recv : ?cat:Account.category -> 'a t -> 'a
(** Blocks until a message is available; the wait is charged to [cat]
    (default {!Account.Sleep}, appropriate for daemons idling). *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
val sent_count : 'a t -> int
