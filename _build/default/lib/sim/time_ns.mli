(** Simulated time, in integer nanoseconds.

    All simulation timestamps and durations in this project are expressed as
    [Time_ns.t].  Using a plain [int] (63-bit on 64-bit platforms) gives a
    range of roughly 292 years, far beyond any simulated experiment. *)

type t = int

val zero : t

(** Constructors from coarser units. *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t
val of_sec_f : float -> t

(** Conversions to floating-point coarser units. *)

val to_us_f : t -> float
val to_ms_f : t -> float
val to_sec_f : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
