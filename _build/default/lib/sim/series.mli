(** Append-only time series for simulation telemetry.

    Samplers record machine state (free pages, resident sets, queue depths)
    as the simulation runs; the harness summarizes a series or renders it as
    a unicode sparkline so "free memory over time" fits in a text report. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> time:Time_ns.t -> value:float -> unit
(** Samples must arrive in nondecreasing time order. *)

val length : t -> int
val is_empty : t -> bool

val min_value : t -> float option
val max_value : t -> float option
val mean : t -> float option
val last : t -> float option

val iter : t -> (time:Time_ns.t -> value:float -> unit) -> unit
(** In sample order (for exporting telemetry). *)

val sparkline : ?width:int -> t -> string
(** Resample to [width] buckets (default 60) and render with the eight
    one-eighth block glyphs; empty series render as "(no samples)". *)

val pp_summary : Format.formatter -> t -> unit
(** One line: name, min/mean/max/last and the sparkline. *)
