(** Binary min-heap keyed by [(primary, sequence)] integer pairs.

    The event queue of the simulation engine needs a priority queue ordered
    first by timestamp and second by insertion sequence, so that events
    scheduled for the same instant fire in FIFO order and runs are fully
    deterministic.

    Keys and sequence numbers are stored in flat int arrays (no pointer
    chasing during sifts); popped slots are nulled out so the heap never
    retains a reference to an already-delivered payload (the engine stores
    closures here, and a pinned closure can keep a whole simulation's state
    alive). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> key:int -> seq:int -> 'a -> unit

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)]. *)

val peek_key : 'a t -> (int * int) option

val clear : 'a t -> unit
(** Empty the heap, dropping every stored payload reference. *)
