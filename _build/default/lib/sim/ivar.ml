type 'a state = Empty of Engine.waker Queue.t | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty (Queue.create ()) }

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Full v;
      Queue.iter (fun w -> w ()) waiters

let is_filled t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read ?(cat = Account.Resource_stall) t =
  match t.state with
  | Full v -> v
  | Empty waiters ->
      let t0 = Engine.now () in
      Engine.suspend (fun waker -> Queue.add waker waiters);
      let waited = Engine.now () - t0 in
      Account.add (Engine.self ()).account cat waited;
      (match t.state with Full v -> v | Empty _ -> assert false)
