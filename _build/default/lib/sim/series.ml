type t = {
  name : string;
  mutable times : int array;
  mutable values : float array;
  mutable len : int;
}

let create ~name = { name; times = [||]; values = [||]; len = 0 }

let name t = t.name

let grow t =
  let cap = max 64 (2 * Array.length t.times) in
  let times = Array.make cap 0 and values = Array.make cap 0.0 in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time ~value =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Series.add: time went backwards";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len
let is_empty t = t.len = 0

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.values.(i)
  done;
  !acc

let min_value t = if t.len = 0 then None else Some (fold min infinity t)
let max_value t = if t.len = 0 then None else Some (fold max neg_infinity t)

let mean t =
  if t.len = 0 then None else Some (fold ( +. ) 0.0 t /. float_of_int t.len)

let last t = if t.len = 0 then None else Some (t.values.(t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f ~time:t.times.(i) ~value:t.values.(i)
  done

let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87";
                "\xe2\x96\x88" |]

let sparkline ?(width = 60) t =
  if t.len = 0 then "(no samples)"
  else begin
    let t0 = t.times.(0) and t1 = t.times.(t.len - 1) in
    let span = max 1 (t1 - t0) in
    (* average the samples landing in each bucket; carry the previous level
       across empty buckets *)
    let sums = Array.make width 0.0 and counts = Array.make width 0 in
    for i = 0 to t.len - 1 do
      let b = min (width - 1) ((t.times.(i) - t0) * width / span) in
      sums.(b) <- sums.(b) +. t.values.(i);
      counts.(b) <- counts.(b) + 1
    done;
    let lo = Option.get (min_value t) and hi = Option.get (max_value t) in
    let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let buf = Buffer.create (width * 3) in
    let level = ref 0.0 in
    for b = 0 to width - 1 do
      if counts.(b) > 0 then level := sums.(b) /. float_of_int counts.(b);
      let g =
        1 + int_of_float (7.99 *. (!level -. lo) /. range)
      in
      Buffer.add_string buf glyphs.(max 1 (min 8 g))
    done;
    Buffer.contents buf
  end

let pp_summary fmt t =
  match (min_value t, mean t, max_value t, last t) with
  | Some mn, Some av, Some mx, Some la ->
      Format.fprintf fmt "%-12s min %.0f  mean %.0f  max %.0f  last %.0f  |%s|"
        t.name mn av mx la (sparkline t)
  | _ -> Format.fprintf fmt "%-12s (no samples)" t.name
