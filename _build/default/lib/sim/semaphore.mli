(** Counting semaphore with FIFO handoff, for modelling contended resources
    (memory-system locks, address-space locks, CPUs, disk arms).

    Waiting time is charged to the acquiring process's account, by default as
    {!Account.Resource_stall}; this is how "stalled for unavailable
    resources" in Figure 7 is measured.  Handoff is direct: a release passes
    ownership to the longest-waiting process, so later arrivals can never
    barge ahead. *)

type t

val create : ?name:string -> int -> t
(** [create n] makes a semaphore with [n] units.  Requires [n >= 1]. *)

val name : t -> string
val capacity : t -> int
val available : t -> int
val waiting : t -> int

val acquire : ?cat:Account.category -> t -> unit
val release : t -> unit

val with_ : ?cat:Account.category -> t -> (unit -> 'a) -> 'a
(** [with_ t f] runs [f] holding one unit, releasing on return or exception. *)

val total_wait : t -> Time_ns.t
(** Cumulative time processes spent blocked on this semaphore. *)

val acquisitions : t -> int
val contended_acquisitions : t -> int
