type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.arr) in
  let arr = Array.make cap t.arr.(0) in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.arr.(i) t.arr.(parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.size && less t.arr.(r) t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~key ~seq value =
  let entry = { key; seq; value } in
  if t.size = 0 && Array.length t.arr = 0 then t.arr <- Array.make 16 entry;
  if t.size = Array.length t.arr then grow t;
  t.arr.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let min = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t 0
    end;
    Some (min.key, min.seq, min.value)
  end

let peek_key t = if t.size = 0 then None else Some (t.arr.(0).key, t.arr.(0).seq)

let clear t = t.size <- 0
