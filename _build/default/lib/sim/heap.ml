(* Struct-of-arrays binary min-heap.  Keys and sequence numbers live in
   unboxed int arrays so the sift comparisons never chase a pointer; the
   payloads sit in a parallel array of options so a popped slot can be
   nulled out ([None]) instead of pinning the last event closure until the
   next overwrite. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a option array;
  mutable size : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) and s = t.seqs.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.seqs.(j) <- s;
  t.vals.(j) <- v

let grow t =
  let cap = max 16 (2 * Array.length t.keys) in
  let keys = Array.make cap 0 and seqs = Array.make cap 0 in
  let vals = Array.make cap None in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~key ~seq value =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.seqs.(t.size) <- seq;
  t.vals.(t.size) <- Some value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and seq = t.seqs.(0) in
    let value = match t.vals.(0) with Some v -> v | None -> assert false in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      t.vals.(t.size) <- None;
      sift_down t 0
    end
    else t.vals.(0) <- None;
    Some (key, seq, value)
  end

let peek_key t = if t.size = 0 then None else Some (t.keys.(0), t.seqs.(0))

let clear t =
  Array.fill t.vals 0 t.size None;
  t.size <- 0
