(** Deterministic pseudo-random number generator (xoshiro256** seeded via
    splitmix64).

    The simulator never uses the global [Random] state: every stochastic
    component (disk layout noise, indirect-reference index streams, ...)
    owns an explicit, splittable [Rng.t], so a run is a pure function of its
    seeds and results are reproducible across machines. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream; the parent stream advances. *)

val copy : t -> t

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle_in_place : t -> 'a array -> unit
