type t = {
  name : string;
  capacity : int;
  mutable avail : int;
  waiters : Engine.waker Queue.t;
  mutable total_wait : int;
  mutable acquisitions : int;
  mutable contended : int;
}

let create ?(name = "sem") n =
  if n < 1 then invalid_arg "Semaphore.create: capacity must be >= 1";
  {
    name;
    capacity = n;
    avail = n;
    waiters = Queue.create ();
    total_wait = 0;
    acquisitions = 0;
    contended = 0;
  }

let name t = t.name
let capacity t = t.capacity
let available t = t.avail
let waiting t = Queue.length t.waiters

let acquire ?(cat = Account.Resource_stall) t =
  t.acquisitions <- t.acquisitions + 1;
  if t.avail > 0 && Queue.is_empty t.waiters then t.avail <- t.avail - 1
  else begin
    t.contended <- t.contended + 1;
    let t0 = Engine.now () in
    Engine.suspend (fun waker -> Queue.add waker t.waiters);
    let waited = Engine.now () - t0 in
    t.total_wait <- t.total_wait + waited;
    Account.add (Engine.self ()).account cat waited
  end

let release t =
  match Queue.take_opt t.waiters with
  | Some waker -> waker () (* direct handoff: the unit moves to the waiter *)
  | None ->
      if t.avail >= t.capacity then
        invalid_arg (Printf.sprintf "Semaphore.release(%s): over-release" t.name);
      t.avail <- t.avail + 1

let with_ ?cat t f =
  acquire ?cat t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let total_wait t = t.total_wait
let acquisitions t = t.acquisitions
let contended_acquisitions t = t.contended
