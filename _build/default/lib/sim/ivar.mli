(** Write-once synchronization cell ("future"), used e.g. to join on the
    completion of another simulated process. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already filled. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option

val read : ?cat:Account.category -> 'a t -> 'a
(** Block until filled (default charge: {!Account.Resource_stall}). *)
