module IntMap = Map.Make (Int)

type tag_queue = { tq_tag : int; tq_pages : int Queue.t }

type t = {
  mutable by_priority : tag_queue list IntMap.t; (* priority -> queues *)
  tags : (int, int * tag_queue) Hashtbl.t;       (* tag -> (priority, queue) *)
  mutable total : int;
}

let create () = { by_priority = IntMap.empty; tags = Hashtbl.create 32; total = 0 }

let add t ~tag ~priority ~vpn =
  if priority <= 0 then invalid_arg "Release_buffer.add: priority must be > 0";
  let q =
    match Hashtbl.find_opt t.tags tag with
    | Some (p, q) ->
        if p <> priority then
          invalid_arg "Release_buffer.add: tag reused with a different priority";
        q
    | None ->
        let q = { tq_tag = tag; tq_pages = Queue.create () } in
        Hashtbl.replace t.tags tag (priority, q);
        t.by_priority <-
          IntMap.update priority
            (function Some qs -> Some (qs @ [ q ]) | None -> Some [ q ])
            t.by_priority;
        q
  in
  Queue.add vpn q.tq_pages;
  t.total <- t.total + 1

let total t = t.total
let queue_count t = Hashtbl.length t.tags

let lowest_priority t =
  match IntMap.min_binding_opt t.by_priority with
  | Some (p, _) -> Some p
  | None -> None

let drop_tag t priority (q : tag_queue) =
  Hashtbl.remove t.tags q.tq_tag;
  t.by_priority <-
    IntMap.update priority
      (function
        | Some qs -> (
            match List.filter (fun x -> x.tq_tag <> q.tq_tag) qs with
            | [] -> None
            | qs -> Some qs)
        | None -> None)
      t.by_priority

let pop_lowest t ~max =
  let out = ref [] in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max do
    match IntMap.min_binding_opt t.by_priority with
    | None -> continue_ := false
    | Some (priority, queues) ->
        (* One page from each queue at this priority, round-robin, until the
           budget is spent or the level empties. *)
        let remaining = ref queues in
        while !remaining <> [] && !n < max do
          let next_round = ref [] in
          List.iter
            (fun q ->
              if !n < max then begin
                (match Queue.take_opt q.tq_pages with
                | Some vpn ->
                    out := vpn :: !out;
                    incr n;
                    t.total <- t.total - 1
                | None -> ());
                if Queue.is_empty q.tq_pages then drop_tag t priority q
                else next_round := q :: !next_round
              end
              else next_round := q :: !next_round)
            !remaining;
          remaining := List.rev !next_round;
          (* All queues at this level empty: move to the next level. *)
          if List.for_all (fun q -> Queue.is_empty q.tq_pages) !remaining then
            remaining := []
        done
  done;
  Array.of_list (List.rev !out)
