lib/runtime/runtime.mli: Memhog_sim Memhog_vm
