lib/runtime/runtime.ml: Account Array Engine Hashtbl List Mailbox Memhog_sim Memhog_vm Printf Release_buffer
