lib/runtime/release_buffer.ml: Array Hashtbl Int List Map Queue
