lib/runtime/release_buffer.mli:
