(** Loop-nest intermediate representation for array-based out-of-core
    programs — the input language of the compiler pass (section 3.2).

    Programs are affine loop nests over named arrays, with the features the
    paper's benchmarks exercise:

    - symbolic loop bounds, optionally {e unknown} to the compiler (BUK,
      CGM: "unknown loop bounds ... reduce the compiler's ability to
      analyze the data accesses");
    - indirect references [a\[b\[i\]\]] (BUK, CGM), which can be prefetched
      but never released;
    - procedures called repeatedly with different parameter bindings
      (MGRID: "the loop bounds change dynamically on different calls to the
      same procedures");
    - {e opaque} subscript coefficients: strides held in runtime variables,
      invisible to dependence analysis (FFTPDE: "the access stride changes
      within a set of loops, making it seem as though the access is not
      dependent on the loop induction variable").

    Subscripts are linearized element indices: affine combinations of loop
    variables whose coefficients are constants, parameters (e.g. a row
    length [N]), or opaque runtime values. *)

(** {1 Symbolic bounds} *)

type bound = { bc : int; bt : (string * int) list }
(** [bc + sum (k * param)], in whatever unit the context requires. *)

val cst : int -> bound
val param : string -> bound
val scale : int -> bound -> bound
val add : bound -> bound -> bound
val add_const : bound -> int -> bound

type env = (string, int) Hashtbl.t
(** Runtime values of parameters and loop variables. *)

val env_of_list : (string * int) list -> env
val eval_bound : env -> bound -> int

(** {1 References} *)

type coef =
  | C_const of int   (** ordinary constant stride, in elements *)
  | C_param of string(** symbolic stride known to depend on the variable *)
  | C_opaque of string
      (** runtime stride the compiler cannot see: dependence analysis
          treats the term as absent (the FFTPDE pitfall) *)

type subscript = {
  sc : int;                    (** constant element offset *)
  sp : (string * int) list;    (** additive parameter offsets *)
  st : (string * coef) list;   (** loop-variable terms *)
}

type access =
  | Direct of subscript
  | Indirect of { via : string; every : int }
      (** data-dependent index through index array [via]; modelled as a
          uniformly random page of the target array, one access per [every]
          innermost iterations ([every] > 1 coarsens the simulation without
          changing the page-level behaviour) *)

type ref_ = {
  r_array : string;
  r_access : access;
  r_write : bool;
}

val direct :
  ?off:int -> ?param_off:(string * int) list -> string ->
  (string * coef) list -> write:bool -> ref_
val indirect : ?every:int -> string -> via:string -> write:bool -> ref_

val coef_value : env -> coef -> int
(** Runtime value of a stride coefficient (opaque and parameter strides are
    looked up in the environment). *)

val eval_subscript : env -> subscript -> int
(** Element index given runtime values; opaque coefficients are looked up
    like parameters. *)

val coef_visible : coef -> bool
(** False for [C_opaque]: dependence analysis must ignore the term. *)

(** {1 Statements and programs} *)

type body = {
  refs : ref_ list;
  work_ns_per_iter : int;  (** compute cost of one innermost iteration *)
}

type stmt =
  | S_loop of loop
  | S_seq of stmt list
  | S_body of body
  | S_call of string * (string * bound) list
      (** call a procedure with parameter bindings evaluated in the caller's
          environment *)

and loop = {
  l_var : string;
  l_lo : bound;
  l_hi : bound;  (** exclusive *)
  l_known : bool;
      (** are the bounds known to the compiler?  When false, the analysis
          must assume the trip count is large (section 2.4) *)
  l_body : stmt;
}

val loop : ?known:bool -> var:string -> lo:bound -> hi:bound -> stmt -> stmt

type array_decl = {
  a_name : string;
  a_elem_bytes : int;
  a_size_elems : bound;
  a_on_swap : bool;  (** initial contents on backing store (input data) *)
}

type proc = { p_name : string; p_body : stmt }

type program = {
  prog_name : string;
  arrays : array_decl list;
  (* Parameter assumptions available to the compiler; [None] means the
     compiler knows nothing and must be conservative. *)
  assumptions : (string * int option) list;
  procs : proc list;
  main : stmt;
}

val array_decl :
  ?elem_bytes:int -> ?on_swap:bool -> string -> size:bound -> array_decl

val find_array : program -> string -> array_decl
val find_proc : program -> string -> proc

val array_pages : program -> env -> page_bytes:int -> string -> int
(** Size of an array in pages under runtime parameter values. *)

val validate : program -> (string, string) result
(** Static sanity checks: referenced arrays/procedures exist, loop variables
    are bound by enclosing loops, indirect index arrays exist. *)

val pp_program : Format.formatter -> program -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_subscript : Format.formatter -> subscript -> unit
val pp_bound : Format.formatter -> bound -> unit
