(** Lowering from analyzed loop nests to PIR executables.

    Implements the transformation of Figure 4: loop splitting (here:
    strip-mining the innermost loop by page), software pipelining of
    prefetches (a prologue fetches the first [distance] chunks; the steady
    state fetches [distance] chunks ahead), and insertion of prefetch
    requests for group-leading references and release requests (with
    equation-2 priorities and per-site tags) for group-trailing references.

    The three variants correspond to the paper's bars: [V_original] has no
    directives, [V_prefetch] prefetches only, [V_release] both prefetches
    and releases.  The aggressive-release (R) and buffered-release (B) runs
    execute the same [V_release] code under different run-time policies. *)

val prefetch_distance_chunks :
  target:Analysis.target -> chunk_ns:int -> int
(** ceil(fault latency / chunk time), clamped to [1, 64]. *)

val compile :
  ?conservative:bool -> variant:Pir.variant -> Analysis.t -> Pir.prog
(** [conservative] follows the idealized rule of section 2.3.2 (no
    directives for references whose reuse provably fits in memory); the
    default [false] matches the paper's implementation, which inserts
    releases "far more aggressively" and lets the run-time layer arbitrate
    (section 3.2). *)
