(** One-call compiler driver: validate, analyze, lower.

    Mirrors the paper's toolchain (Figure 4): the original source (here the
    loop-nest IR) goes in, a specialized executable with prefetch and
    release hints comes out.  The [target] parameters — memory size, page
    size, fault latency — are exactly the three parameters the paper's
    compiler is given (section 3.2). *)

val compile :
  ?target:Analysis.target ->
  ?conservative:bool ->
  variant:Pir.variant ->
  Ir.program ->
  Pir.prog
(** Raises [Invalid_argument] if the program fails {!Ir.validate}. *)

val analyze : ?target:Analysis.target -> Ir.program -> Analysis.t

val all_variants : Pir.variant list
