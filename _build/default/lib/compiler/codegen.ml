module A = Analysis

type ctx = {
  prog : Ir.program;
  target : A.target;
  variant : Pir.variant;
  conservative : bool;
  stats : Pir.gen_stats;
  mutable next_tag : int;
}

let fresh_tag ctx =
  let t = ctx.next_tag in
  ctx.next_tag <- t + 1;
  t

let emit_prefetch ctx = ctx.variant <> Pir.V_original
let emit_release ctx = ctx.variant = Pir.V_release

(* ------------------------------------------------------------------ *)
(* Runtime-expression helpers                                          *)
(* ------------------------------------------------------------------ *)

let rt_bound b env = Ir.eval_bound env b
let rt_const n _env = n

let with_binding env var value f =
  let old = Hashtbl.find_opt env var in
  Hashtbl.replace env var value;
  Fun.protect
    ~finally:(fun () ->
      match old with
      | Some o -> Hashtbl.replace env var o
      | None -> Hashtbl.remove env var)
    (fun () -> f env)

(* The term actually moving [var] (opaque terms included: generated code
   computes real addresses even when the analysis was blind to them). *)
let actual_term (s : Ir.subscript) var =
  match List.assoc_opt var s.Ir.st with
  | Some (Ir.C_const 0) | None -> None
  | Some c -> Some c

(* Innermost path variable that actually moves the subscript. *)
let actual_advance (path : Ir.loop list) (s : Ir.subscript) =
  List.fold_left
    (fun acc (l : Ir.loop) ->
      match actual_term s l.Ir.l_var with Some _ -> Some l.Ir.l_var | None -> acc)
    None path

let stride_rt s var env =
  match actual_term s var with Some c -> Ir.coef_value env c | None -> 0

let sub_rt s env = Ir.eval_subscript env s

let sub_shifted_rt s var delta env =
  Ir.eval_subscript env s + (delta * stride_rt s var env)

(* Subscript with [var] pinned to the loop's lower bound (for prologues). *)
let sub_at_rt s var at env = with_binding env var (at env) (fun env -> Ir.eval_subscript env s)

(* ------------------------------------------------------------------ *)
(* Pipelining distance                                                 *)
(* ------------------------------------------------------------------ *)

let prefetch_distance_chunks ~(target : A.target) ~chunk_ns =
  let d =
    if chunk_ns <= 0 then 64
    else (target.A.fault_latency_ns + chunk_ns - 1) / chunk_ns
  in
  max 1 (min 64 d)

(* ------------------------------------------------------------------ *)
(* Directive construction                                              *)
(* ------------------------------------------------------------------ *)

let mk_dir ctx ~array ~first ~count ~stride ~desc =
  {
    Pir.d_array = array;
    d_first = first;
    d_count = count;
    d_stride = stride;
    d_tag = fresh_tag ctx;
    d_desc = desc;
  }

(* Directives for one reference that advances along loop [var] with bounds
   [lo, hi) stepped by [step] ([step] = chunk size for strip-mined loops,
   1 for element loops).  [dist] is the prefetch lookahead in elements of
   the loop variable. *)
type ref_site = {
  rs_ref : A.ref_ann;
  rs_sub : Ir.subscript;
}

let retained_site (site : ref_site) =
  match site.rs_ref.A.ra_dir with
  | Some d -> d.A.da_retained
  | None -> false

let prefetches_for ctx ~var ~lo ~hi ~step ~dist (sites : ref_site list) =
  if not (emit_prefetch ctx) then ([], [])
  else
    List.fold_left
      (fun (pro, steady) site ->
        if
          (not site.rs_ref.A.ra_is_leader)
          || (ctx.conservative && retained_site site)
        then (pro, steady)
        else begin
          ctx.stats.Pir.gs_prefetch_sites <- ctx.stats.Pir.gs_prefetch_sites + 1;
          let s = site.rs_sub in
          let array = site.rs_ref.A.ra_ref.Ir.r_array in
          let desc = Printf.sprintf "%s@%s" array var in
          (* Prologue: cover the first [dist] elements of the loop range. *)
          let prologue =
            Pir.P_prefetch
              (mk_dir ctx ~array
                 ~first:(sub_at_rt s var lo)
                 ~count:(fun env -> max 0 (min dist (hi env - lo env)))
                 ~stride:(stride_rt s var)
                 ~desc:(desc ^ " prologue"))
          in
          (* Steady state: fetch [dist] ahead of the current position.  The
             lookahead deliberately runs past this loop's bound — for a
             linearized array the next outer iteration continues at exactly
             that address, which is how the pipeline spans row boundaries;
             the evaluator clamps at the end of the array. *)
          let steady_d =
            Pir.P_prefetch
              (mk_dir ctx ~array
                 ~first:(sub_shifted_rt s var dist)
                 ~count:(rt_const step)
                 ~stride:(stride_rt s var)
                 ~desc)
          in
          (prologue :: pro, steady_d :: steady)
        end)
      ([], []) sites

let releases_for ctx ~var ~lo ~hi ~step (sites : ref_site list) =
  if not (emit_release ctx) then ([], [])
  else
    List.fold_left
      (fun (steady, epi) site ->
        let ra = site.rs_ref in
        match ra.A.ra_dir with
        | Some d
          when ra.A.ra_is_trailer && not (ctx.conservative && d.A.da_retained) ->
            ctx.stats.Pir.gs_release_sites <- ctx.stats.Pir.gs_release_sites + 1;
            let s = site.rs_sub in
            let array = ra.A.ra_ref.Ir.r_array in
            let desc = Printf.sprintf "%s@%s" array var in
            let priority = d.A.da_priority in
            (* Steady state: release the chunk the trailing reference has
               fully passed (one step behind). *)
            let steady_d =
              Pir.P_release
                {
                  dir =
                    mk_dir ctx ~array
                      ~first:(sub_shifted_rt s var (-step))
                      ~count:(fun env ->
                        let v = Hashtbl.find env var in
                        if v - step < lo env then 0
                        else max 0 (min step (hi env - (v - step))))
                      ~stride:(stride_rt s var)
                      ~desc;
                  priority;
                }
            in
            (* Epilogue: the final step's data. *)
            let last_start env =
              let l = lo env and h = hi env in
              if h <= l then l else l + ((h - l - 1) / step * step)
            in
            let epi_d =
              Pir.P_release
                {
                  dir =
                    mk_dir ctx ~array
                      ~first:(sub_at_rt s var last_start)
                      ~count:(fun env -> max 0 (hi env - last_start env))
                      ~stride:(stride_rt s var)
                      ~desc:(desc ^ " epilogue");
                  priority;
                }
            in
            (steady_d :: steady, epi_d :: epi)
        | _ -> (steady, epi))
      ([], []) sites

(* ------------------------------------------------------------------ *)
(* Body lowering inside a strip-mined innermost loop                   *)
(* ------------------------------------------------------------------ *)

let elems_per_page ctx (b : Ir.body) =
  let max_elem =
    List.fold_left
      (fun acc r -> max acc (Ir.find_array ctx.prog r.Ir.r_array).Ir.a_elem_bytes)
      8 b.Ir.refs
  in
  max 1 (ctx.target.A.page_bytes / max_elem)

let touches_for ctx ~chunk_count (ba : A.body_ann) =
  List.concat_map
    (fun (ra : A.ref_ann) ->
      let r = ra.A.ra_ref in
      match r.Ir.r_access with
      | Ir.Direct s ->
          [
            Pir.P_touch
              {
                array = r.Ir.r_array;
                first = sub_rt s;
                count = chunk_count;
                stride =
                  (match ba.A.ba_path with
                  | [] -> rt_const 0
                  | path ->
                      let inner = (List.nth path (List.length path - 1)).Ir.l_var in
                      stride_rt s inner);
                write = r.Ir.r_write;
              };
          ]
      | Ir.Indirect { every; _ } ->
          [
            Pir.P_indirect
              {
                array = r.Ir.r_array;
                count =
                  (fun env ->
                    let c = chunk_count env in
                    if c <= 0 then 0 else (c + every - 1) / every);
                write = r.Ir.r_write;
                lookahead = 64;
                prefetch = emit_prefetch ctx;
                stream = (ba.A.ba_id * 64) + ra.A.ra_index;
              };
          ])
    ba.A.ba_refs

(* Sites of a body whose references actually advance along [var]. *)
let sites_advancing (ba : A.body_ann) var =
  List.filter_map
    (fun (ra : A.ref_ann) ->
      match ra.A.ra_ref.Ir.r_access with
      | Ir.Direct s when actual_advance ba.A.ba_path s = Some var ->
          Some { rs_ref = ra; rs_sub = s }
      | _ -> None)
    ba.A.ba_refs

(* Sites of a body whose references never advance inside this nest. *)
let sites_invariant (ba : A.body_ann) =
  List.filter_map
    (fun (ra : A.ref_ann) ->
      match ra.A.ra_ref.Ir.r_access with
      | Ir.Direct s when actual_advance ba.A.ba_path s = None ->
          Some { rs_ref = ra; rs_sub = s }
      | _ -> None)
    ba.A.ba_refs

let rec direct_bodies = function
  | A.A_body b -> Some [ b ]
  | A.A_seq ss ->
      List.fold_left
        (fun acc s ->
          match (acc, direct_bodies s) with
          | Some a, Some b -> Some (a @ b)
          | _ -> None)
        (Some []) ss
  | A.A_loop _ | A.A_call _ -> None

(* Strip-mined lowering of an innermost loop whose body is plain. *)
let gen_chunk_loop ctx (l : Ir.loop) (bodies : A.body_ann list) =
  ctx.stats.Pir.gs_chunk_loops <- ctx.stats.Pir.gs_chunk_loops + 1;
  let var = l.Ir.l_var in
  let lo = rt_bound l.Ir.l_lo and hi = rt_bound l.Ir.l_hi in
  let k =
    List.fold_left (fun acc b -> min acc (elems_per_page ctx b.A.ba_body)) max_int
      bodies
  in
  let k = if k = max_int then 2048 else k in
  let work_ns =
    List.fold_left (fun acc b -> acc + b.A.ba_body.Ir.work_ns_per_iter) 0 bodies
  in
  let chunk_ns = k * work_ns in
  let dist_chunks = prefetch_distance_chunks ~target:ctx.target ~chunk_ns in
  ctx.stats.Pir.gs_prefetch_distance <-
    max ctx.stats.Pir.gs_prefetch_distance dist_chunks;
  let dist = dist_chunks * k in
  let chunk_count env =
    let v = Hashtbl.find env var in
    max 0 (min k (hi env - v))
  in
  let all_pro = ref [] and all_steady_pf = ref [] in
  let all_steady_rel = ref [] and all_epi = ref [] in
  let all_touches = ref [] in
  List.iter
    (fun ba ->
      let sites = sites_advancing ba var in
      let pro, steady = prefetches_for ctx ~var ~lo ~hi ~step:k ~dist sites in
      let rel, epi = releases_for ctx ~var ~lo ~hi ~step:k sites in
      all_pro := !all_pro @ pro;
      all_steady_pf := !all_steady_pf @ steady;
      all_steady_rel := !all_steady_rel @ rel;
      all_epi := !all_epi @ epi;
      all_touches :=
        !all_touches
        @ touches_for ctx ~chunk_count ba
        @ [ Pir.P_compute { ns = (fun env -> chunk_count env * ba.A.ba_body.Ir.work_ns_per_iter) } ])
    bodies;
  Pir.P_seq
    (!all_pro
    @ [
        Pir.P_loop
          {
            var;
            lo;
            hi;
            step = k;
            body = Pir.P_seq (!all_steady_pf @ !all_touches @ !all_steady_rel);
          };
      ]
    @ !all_epi)

(* ------------------------------------------------------------------ *)
(* Tree walk                                                           *)
(* ------------------------------------------------------------------ *)

(* All annotated bodies in a subtree (for outer-level directive placement). *)
let rec bodies_in = function
  | A.A_body b -> [ b ]
  | A.A_seq ss -> List.concat_map bodies_in ss
  | A.A_loop (_, s) -> bodies_in s
  | A.A_call _ -> []

let rec gen ctx ~(depth : int) (ann : A.ann_stmt) =
  match ann with
  | A.A_body ba ->
      (* A body outside any loop: touch everything once. *)
      let one env = ignore env; 1 in
      Pir.P_seq
        (touches_for ctx ~chunk_count:one ba
        @ [ Pir.P_compute { ns = (fun _ -> ba.A.ba_body.Ir.work_ns_per_iter) } ])
  | A.A_seq ss -> Pir.P_seq (List.map (gen ctx ~depth) ss)
  | A.A_call (name, binds) ->
      Pir.P_call
        { proc = name; binds = List.map (fun (p, b) -> (p, rt_bound b)) binds }
  | A.A_loop (l, child) -> (
      match direct_bodies child with
      | Some bodies -> wrap_invariants ctx ~depth l child (gen_chunk_loop ctx l bodies)
      | None ->
          (* Element loop: place directives for references that advance at
             this level around the child statement. *)
          let var = l.Ir.l_var in
          let lo = rt_bound l.Ir.l_lo and hi = rt_bound l.Ir.l_hi in
          let sites =
            List.concat_map (fun ba -> sites_advancing ba var) (bodies_in child)
          in
          let pro, steady_pf = prefetches_for ctx ~var ~lo ~hi ~step:1 ~dist:1 sites in
          let steady_rel, epi = releases_for ctx ~var ~lo ~hi ~step:1 sites in
          let inner = gen ctx ~depth:(depth + 1) child in
          let body = Pir.P_seq (steady_pf @ [ inner ] @ steady_rel) in
          wrap_invariants ctx ~depth l child
            (Pir.P_seq (pro @ [ Pir.P_loop { var; lo; hi; step = 1; body } ] @ epi)))

(* At the root of a nest, add one-shot prefetch/release for references that
   never advance inside it. *)
and wrap_invariants ctx ~depth l child pstmt =
  ignore l;
  if depth > 0 then pstmt
  else begin
    let sites = List.concat_map sites_invariant (bodies_in child) in
    let pre, post =
      List.fold_left
        (fun (pre, post) site ->
          let ra = site.rs_ref in
          let array = ra.A.ra_ref.Ir.r_array in
          let s = site.rs_sub in
          let pre =
            if emit_prefetch ctx && ra.A.ra_is_leader then begin
              ctx.stats.Pir.gs_prefetch_sites <- ctx.stats.Pir.gs_prefetch_sites + 1;
              Pir.P_prefetch
                (mk_dir ctx ~array ~first:(sub_rt s) ~count:(rt_const 1)
                   ~stride:(rt_const 0)
                   ~desc:(array ^ " invariant"))
              :: pre
            end
            else pre
          in
          let post =
            match ra.A.ra_dir with
            | Some d
              when emit_release ctx && ra.A.ra_is_trailer
                   && not (ctx.conservative && d.A.da_retained) ->
                ctx.stats.Pir.gs_release_sites <- ctx.stats.Pir.gs_release_sites + 1;
                Pir.P_release
                  {
                    dir =
                      mk_dir ctx ~array ~first:(sub_rt s) ~count:(rt_const 1)
                        ~stride:(rt_const 0)
                        ~desc:(array ^ " invariant");
                    priority = d.A.da_priority;
                  }
                :: post
            | _ -> post
          in
          (pre, post))
        ([], []) sites
    in
    Pir.P_seq (pre @ [ pstmt ] @ post)
  end

let compile ?(conservative = false) ~variant (ann : A.t) =
  let stats =
    {
      Pir.gs_prefetch_sites = 0;
      gs_release_sites = 0;
      gs_chunk_loops = 0;
      gs_prefetch_distance = 0;
    }
  in
  let ctx =
    {
      prog = ann.A.ap_prog;
      target = ann.A.ap_target;
      variant;
      conservative;
      stats;
      next_tag = 0;
    }
  in
  let main = gen ctx ~depth:0 ann.A.ap_main in
  let procs = List.map (fun (name, a) -> (name, gen ctx ~depth:0 a)) ann.A.ap_procs in
  {
    Pir.px_name = ann.A.ap_prog.Ir.prog_name;
    px_arrays = ann.A.ap_prog.Ir.arrays;
    px_params = ann.A.ap_prog.Ir.assumptions;
    px_main = main;
    px_procs = procs;
    px_variant = variant;
    px_stats = stats;
  }
