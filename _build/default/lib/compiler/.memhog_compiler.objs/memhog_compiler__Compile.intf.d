lib/compiler/compile.mli: Analysis Ir Pir
