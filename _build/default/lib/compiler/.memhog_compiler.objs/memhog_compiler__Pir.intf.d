lib/compiler/pir.mli: Format Ir
