lib/compiler/ir.mli: Format Hashtbl
