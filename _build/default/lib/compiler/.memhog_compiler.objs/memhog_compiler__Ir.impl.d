lib/compiler/ir.ml: Format Hashtbl List Printf String
