lib/compiler/codegen.mli: Analysis Pir
