lib/compiler/analysis.mli: Format Ir
