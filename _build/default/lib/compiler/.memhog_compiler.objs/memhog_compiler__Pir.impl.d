lib/compiler/pir.ml: Format Ir List Printf
