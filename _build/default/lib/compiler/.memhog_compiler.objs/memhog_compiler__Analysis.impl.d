lib/compiler/analysis.ml: Array Format Ir List Option String
