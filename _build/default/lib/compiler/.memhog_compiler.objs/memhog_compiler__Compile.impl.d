lib/compiler/compile.ml: Analysis Codegen Ir Pir Printf
