lib/compiler/codegen.ml: Analysis Fun Hashtbl Ir List Pir Printf
