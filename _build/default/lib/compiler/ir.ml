(* Loop-nest IR; see ir.mli for the design rationale. *)

type bound = { bc : int; bt : (string * int) list }

let cst n = { bc = n; bt = [] }
let param p = { bc = 0; bt = [ (p, 1) ] }

let norm_terms terms =
  List.filter (fun (_, k) -> k <> 0) terms

let scale k b =
  { bc = k * b.bc; bt = norm_terms (List.map (fun (p, c) -> (p, k * c)) b.bt) }

let add a b =
  let merged =
    List.fold_left
      (fun acc (p, c) ->
        match List.assoc_opt p acc with
        | Some c0 -> (p, c0 + c) :: List.remove_assoc p acc
        | None -> (p, c) :: acc)
      a.bt b.bt
  in
  { bc = a.bc + b.bc; bt = norm_terms merged }

let add_const b n = { b with bc = b.bc + n }

type env = (string, int) Hashtbl.t

let env_of_list l =
  let h = Hashtbl.create (List.length l * 2) in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) l;
  h

let lookup env name =
  match Hashtbl.find_opt env name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ir: unbound variable %s" name)

let eval_bound env b =
  List.fold_left (fun acc (p, k) -> acc + (k * lookup env p)) b.bc b.bt

type coef = C_const of int | C_param of string | C_opaque of string

type subscript = {
  sc : int;
  sp : (string * int) list;
  st : (string * coef) list;
}

type access = Direct of subscript | Indirect of { via : string; every : int }

type ref_ = { r_array : string; r_access : access; r_write : bool }

let direct ?(off = 0) ?(param_off = []) name terms ~write =
  { r_array = name; r_access = Direct { sc = off; sp = param_off; st = terms }; r_write = write }

let indirect ?(every = 1) name ~via ~write =
  if every < 1 then invalid_arg "Ir.indirect: every must be >= 1";
  { r_array = name; r_access = Indirect { via; every }; r_write = write }

let coef_value env = function
  | C_const c -> c
  | C_param p | C_opaque p -> lookup env p

let eval_subscript env s =
  let base =
    List.fold_left (fun acc (p, k) -> acc + (k * lookup env p)) s.sc s.sp
  in
  List.fold_left
    (fun acc (v, c) -> acc + (lookup env v * coef_value env c))
    base s.st

let coef_visible = function C_const _ | C_param _ -> true | C_opaque _ -> false

type body = { refs : ref_ list; work_ns_per_iter : int }

type stmt =
  | S_loop of loop
  | S_seq of stmt list
  | S_body of body
  | S_call of string * (string * bound) list

and loop = {
  l_var : string;
  l_lo : bound;
  l_hi : bound;
  l_known : bool;
  l_body : stmt;
}

let loop ?(known = true) ~var ~lo ~hi body =
  S_loop { l_var = var; l_lo = lo; l_hi = hi; l_known = known; l_body = body }

type array_decl = {
  a_name : string;
  a_elem_bytes : int;
  a_size_elems : bound;
  a_on_swap : bool;
}

type proc = { p_name : string; p_body : stmt }

type program = {
  prog_name : string;
  arrays : array_decl list;
  assumptions : (string * int option) list;
  procs : proc list;
  main : stmt;
}

let array_decl ?(elem_bytes = 8) ?(on_swap = true) name ~size =
  { a_name = name; a_elem_bytes = elem_bytes; a_size_elems = size; a_on_swap = on_swap }

let find_array prog name =
  match List.find_opt (fun a -> a.a_name = name) prog.arrays with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ir: unknown array %s" name)

let find_proc prog name =
  match List.find_opt (fun p -> p.p_name = name) prog.procs with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Ir: unknown procedure %s" name)

let array_pages prog env ~page_bytes name =
  let a = find_array prog name in
  let bytes = eval_bound env a.a_size_elems * a.a_elem_bytes in
  (bytes + page_bytes - 1) / page_bytes

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate prog =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let arrays = List.map (fun a -> a.a_name) prog.arrays in
  let proc_names = List.map (fun p -> p.p_name) prog.procs in
  let check_ref bound_vars r =
    if not (List.mem r.r_array arrays) then err "unknown array %s" r.r_array;
    match r.r_access with
    | Direct s ->
        List.iter
          (fun (v, _) ->
            if not (List.mem v bound_vars) then
              err "subscript of %s uses unbound loop variable %s" r.r_array v)
          s.st
    | Indirect { via; _ } ->
        if not (List.mem via arrays) then
          err "indirect reference to %s through unknown index array %s" r.r_array via
  in
  let rec check_stmt bound_vars = function
    | S_loop l ->
        if List.mem l.l_var bound_vars then
          err "loop variable %s shadows an enclosing loop" l.l_var;
        check_stmt (l.l_var :: bound_vars) l.l_body
    | S_seq stmts -> List.iter (check_stmt bound_vars) stmts
    | S_body b ->
        if b.work_ns_per_iter < 0 then err "negative work per iteration";
        List.iter (check_ref bound_vars) b.refs
    | S_call (name, _) ->
        if not (List.mem name proc_names) then err "unknown procedure %s" name
  in
  check_stmt [] prog.main;
  List.iter (fun p -> check_stmt [] p.p_body) prog.procs;
  match !errors with
  | [] -> Ok prog.prog_name
  | errs -> Error (String.concat "; " (List.rev errs))

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_bound fmt b =
  let parts =
    (if b.bc <> 0 || b.bt = [] then [ string_of_int b.bc ] else [])
    @ List.map
        (fun (p, k) -> if k = 1 then p else Printf.sprintf "%d*%s" k p)
        b.bt
  in
  Format.pp_print_string fmt (String.concat "+" parts)

let pp_coef fmt = function
  | C_const c -> Format.pp_print_int fmt c
  | C_param p -> Format.pp_print_string fmt p
  | C_opaque p -> Format.fprintf fmt "?%s?" p

let pp_subscript fmt s =
  let parts =
    (if s.sc <> 0 then [ string_of_int s.sc ] else [])
    @ List.map (fun (p, k) -> if k = 1 then p else Printf.sprintf "%d*%s" k p) s.sp
    @ List.map
        (fun (v, c) -> Format.asprintf "%a*%s" pp_coef c v)
        s.st
  in
  Format.pp_print_string fmt
    (match parts with [] -> "0" | _ -> String.concat " + " parts)

let pp_ref fmt r =
  match r.r_access with
  | Direct s ->
      Format.fprintf fmt "%s[%a]%s" r.r_array pp_subscript s
        (if r.r_write then " (w)" else "")
  | Indirect { via; _ } ->
      Format.fprintf fmt "%s[%s[.]]%s" r.r_array via (if r.r_write then " (w)" else "")

let rec pp_stmt fmt = function
  | S_loop l ->
      Format.fprintf fmt "@[<v 2>for %s = %a .. %a%s {@,%a@]@,}" l.l_var pp_bound
        l.l_lo pp_bound l.l_hi
        (if l.l_known then "" else " (bounds unknown)")
        pp_stmt l.l_body
  | S_seq stmts ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts
  | S_body b ->
      Format.fprintf fmt "@[<v>%a@,work %dns@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_ref)
        b.refs b.work_ns_per_iter
  | S_call (name, binds) ->
      Format.fprintf fmt "call %s(%s)" name
        (String.concat ", "
           (List.map (fun (p, b) -> Format.asprintf "%s=%a" p pp_bound b) binds))

let pp_program fmt prog =
  Format.fprintf fmt "@[<v>program %s@," prog.prog_name;
  List.iter
    (fun a ->
      Format.fprintf fmt "array %s : %a elems x %dB%s@," a.a_name pp_bound
        a.a_size_elems a.a_elem_bytes
        (if a.a_on_swap then " (on swap)" else ""))
    prog.arrays;
  List.iter
    (fun p -> Format.fprintf fmt "@[<v 2>proc %s {@,%a@]@,}@," p.p_name pp_stmt p.p_body)
    prog.procs;
  Format.fprintf fmt "%a@]" pp_stmt prog.main
