let analyze ?(target = Analysis.default_target) prog =
  (match Ir.validate prog with
  | Ok _ -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Compile: invalid program: %s" msg));
  Analysis.analyze ~target prog

let compile ?target ?conservative ~variant prog =
  Codegen.compile ?conservative ~variant (analyze ?target prog)

let all_variants = [ Pir.V_original; Pir.V_prefetch; Pir.V_release ]
