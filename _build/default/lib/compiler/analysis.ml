type target = {
  memory_pages : int;
  page_bytes : int;
  fault_latency_ns : int;
}

let default_target =
  { memory_pages = 4800; page_bytes = 16 * 1024; fault_latency_ns = 11_000_000 }

type dir_ann = {
  da_temporal : (string * int) list;
  da_spatial : string list;
  da_advance : (string * int option) option;
  da_priority : int;
  da_retained : bool;
}

type ref_ann = {
  ra_index : int;
  ra_ref : Ir.ref_;
  ra_dir : dir_ann option;
  ra_group : int;
  ra_is_leader : bool;
  ra_is_trailer : bool;
}

type body_ann = {
  ba_id : int;
  ba_body : Ir.body;
  ba_path : Ir.loop list;
  ba_refs : ref_ann list;
}

type ann_stmt =
  | A_loop of Ir.loop * ann_stmt
  | A_seq of ann_stmt list
  | A_body of body_ann
  | A_call of string * (string * Ir.bound) list

type stats = {
  mutable st_bodies : int;
  mutable st_direct_refs : int;
  mutable st_indirect_refs : int;
  mutable st_groups : int;
  mutable st_retained : int;
  mutable st_unknown_bound_loops : int;
  mutable st_false_temporal : int;
}

type t = {
  ap_prog : Ir.program;
  ap_target : target;
  ap_main : ann_stmt;
  ap_procs : (string * ann_stmt) list;
  ap_stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Compile-time assumptions                                            *)
(* ------------------------------------------------------------------ *)

let assumed_value prog p =
  match List.assoc_opt p prog.Ir.assumptions with Some v -> v | None -> None

let assumed_coef prog = function
  | Ir.C_const c -> Some c
  | Ir.C_param p -> assumed_value prog p
  | Ir.C_opaque _ -> Some 0 (* invisible to dependence analysis *)

(* Evaluate a symbolic bound under the compiler's assumptions, if possible. *)
let assumed_bound prog (b : Ir.bound) =
  List.fold_left
    (fun acc (p, k) ->
      match (acc, assumed_value prog p) with
      | Some a, Some v -> Some (a + (k * v))
      | _ -> None)
    (Some b.Ir.bc) b.Ir.bt

(* Trip-count estimate: [None] means "unknown, assume large". *)
let assumed_trips prog (l : Ir.loop) =
  if not l.Ir.l_known then None
  else
    match (assumed_bound prog l.Ir.l_lo, assumed_bound prog l.Ir.l_hi) with
    | Some lo, Some hi -> Some (max 0 (hi - lo))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-reference reuse classification                                  *)
(* ------------------------------------------------------------------ *)

let term_for (s : Ir.subscript) var = List.assoc_opt var s.Ir.st

(* The visible stride of [var] in subscript [s]: Some 0 if the variable does
   not (visibly) move the reference; None if it moves it by an unknown
   amount. *)
let visible_stride prog s var =
  match term_for s var with
  | None -> Some 0
  | Some c -> (
      if not (Ir.coef_visible c) then Some 0
      else
        match assumed_coef prog c with
        | Some v -> Some v
        | None -> None (* symbolic stride without assumption *))

let has_opaque_term s var =
  match term_for s var with
  | Some (Ir.C_opaque _) -> true
  | _ -> false

let classify_ref prog ~stats ~page_bytes ~(path : Ir.loop list) (r : Ir.ref_) =
  match r.Ir.r_access with
  | Ir.Indirect _ -> None
  | Ir.Direct s ->
      let elem = (Ir.find_array prog r.Ir.r_array).Ir.a_elem_bytes in
      let temporal = ref [] and spatial = ref [] in
      let advance = ref None in
      List.iteri
        (fun depth (l : Ir.loop) ->
          let var = l.Ir.l_var in
          match visible_stride prog s var with
          | Some 0 ->
              (* no (visible) dependence: temporal reuse along this loop *)
              if has_opaque_term s var then
                stats.st_false_temporal <- stats.st_false_temporal + 1;
              temporal := (var, depth) :: !temporal
          | Some c ->
              if abs c * elem < page_bytes then spatial := var :: !spatial;
              advance := Some (var, Some c)
          | None ->
              (* moves by an unknown symbolic stride *)
              advance := Some (var, None))
        path;
      Some (List.rev !temporal, List.rev !spatial, !advance)

(* Equation 2. *)
let priority_of ~temporal =
  List.fold_left (fun acc (_, depth) -> acc + (1 lsl depth)) 0 temporal

(* ------------------------------------------------------------------ *)
(* Data-volume estimation (locality analysis)                          *)
(* ------------------------------------------------------------------ *)

let elem_bytes_of (a : Ir.array_decl) = a.Ir.a_elem_bytes

(* Pages one reference touches while the loops [inside] run once each;
   [None] = unbounded / unknown (assume it exceeds memory). *)
let pages_touched prog ~page_bytes ~(inside : Ir.loop list) (r : Ir.ref_) =
  let arr = Ir.find_array prog r.Ir.r_array in
  let cap =
    match assumed_bound prog arr.Ir.a_size_elems with
    | Some elems ->
        Some (((elems * arr.Ir.a_elem_bytes) + page_bytes - 1) / page_bytes)
    | None -> None
  in
  let capped pages = match cap with Some c -> Some (min pages c) | None -> Some pages in
  match r.Ir.r_access with
  | Ir.Indirect _ ->
      (* every iteration may touch a fresh random page *)
      let total_trips =
        List.fold_left
          (fun acc l ->
            match (acc, assumed_trips prog l) with
            | Some a, Some t -> Some (a * t)
            | _ -> None)
          (Some 1) inside
      in
      (match (total_trips, cap) with
      | Some t, Some c -> Some (min t c)
      | Some t, None -> Some t
      | None, Some c -> Some c
      | None, None -> None)
  | Ir.Direct s ->
      let extent =
        List.fold_left
          (fun acc (l : Ir.loop) ->
            match acc with
            | None -> None
            | Some bytes -> (
                match
                  (visible_stride prog s l.Ir.l_var, assumed_trips prog l)
                with
                | Some 0, _ -> acc
                | Some c, Some trips ->
                    Some (bytes + (abs c * elem_bytes_of arr * max 0 (trips - 1)))
                | Some _, None | None, _ -> None))
          (Some (elem_bytes_of arr)) inside
      in
      (match extent with
      | Some bytes -> capped ((bytes + page_bytes - 1) / page_bytes)
      | None -> cap)

(* All (body, loops-inside-v) pairs in the subtree rooted under loop [v]. *)
let rec bodies_under acc inside = function
  | Ir.S_loop l -> bodies_under acc (inside @ [ l ]) l.Ir.l_body
  | Ir.S_seq ss -> List.fold_left (fun acc s -> bodies_under acc inside s) acc ss
  | Ir.S_body b -> (b, inside) :: acc
  | Ir.S_call _ -> acc (* inter-procedural volume is not analyzed *)

(* Volume of data touched during one iteration of loop [v]. *)
let volume_of_iteration prog ~page_bytes (v : Ir.loop) =
  let bodies = bodies_under [] [] v.Ir.l_body in
  List.fold_left
    (fun acc (b, inside) ->
      List.fold_left
        (fun acc r ->
          match (acc, pages_touched prog ~page_bytes ~inside r) with
          | Some a, Some p -> Some (a + p)
          | _ -> None)
        acc b.Ir.refs)
    (Some 0) bodies

(* ------------------------------------------------------------------ *)
(* Group locality                                                      *)
(* ------------------------------------------------------------------ *)

(* Two subscripts with identical loop-variable terms may form a group.  The
   constant/parameter offset difference must be expressible as a small
   number of iterations of the enclosing loops plus a sub-page remainder. *)

let same_terms (a : Ir.subscript) (b : Ir.subscript) =
  let norm s = List.sort compare s.Ir.st in
  norm a = norm b

(* delta = a - b as (const, param-terms) *)
let subscript_delta (a : Ir.subscript) (b : Ir.subscript) =
  let merge xs ys =
    let keys = List.sort_uniq compare (List.map fst xs @ List.map fst ys) in
    List.filter_map
      (fun k ->
        let gx = Option.value ~default:0 (List.assoc_opt k xs) in
        let gy = Option.value ~default:0 (List.assoc_opt k ys) in
        if gx - gy = 0 then None else Some (k, gx - gy))
      keys
  in
  (a.Ir.sc - b.Ir.sc, merge a.Ir.sp b.Ir.sp)

(* Express the delta as iteration counts of the path loops (outermost
   first); returns the iteration-distance vector when each component is
   small and the remainder is sub-page. *)
let delta_in_iterations _prog ~page_bytes ~elem ~(path : Ir.loop list)
    (s : Ir.subscript) (dc, dp) =
  let max_iters = 4 in
  let dconst = ref dc and dparams = ref dp in
  let dvec =
    List.map
      (fun (l : Ir.loop) ->
        match term_for s l.Ir.l_var with
        | Some (Ir.C_param p) ->
            (* stride is exactly the parameter: extract its multiples *)
            let k = Option.value ~default:0 (List.assoc_opt p !dparams) in
            dparams := List.remove_assoc p !dparams;
            k
        | Some (Ir.C_const c) when c <> 0 ->
            let k =
              if !dconst = 0 then 0
              else
                let q = !dconst / c in
                if abs q <= max_iters then q else 0
            in
            (* only commit the quotient if it actually reduces the rest to a
               sub-page remainder later; a partial heuristic is fine *)
            if k <> 0 && abs (!dconst - (k * c)) * elem < page_bytes then begin
              dconst := !dconst - (k * c);
              k
            end
            else 0
        | _ -> 0)
      path
  in
  if !dparams = [] && abs !dconst * elem < page_bytes
     && List.for_all (fun d -> abs d <= max_iters) dvec
  then Some dvec
  else None

let group_refs prog ~page_bytes ~(path : Ir.loop list) (refs : Ir.ref_ list) =
  (* returns, per ref index: (group id, delta vector option) *)
  let n = List.length refs in
  let arr = Array.of_list refs in
  let group = Array.make n (-1) in
  let dvecs = Array.make n [] in
  let next_group = ref 0 in
  for i = 0 to n - 1 do
    if group.(i) < 0 then begin
      let gid = !next_group in
      incr next_group;
      group.(i) <- gid;
      dvecs.(i) <- List.map (fun _ -> 0) path;
      (match arr.(i).Ir.r_access with
      | Ir.Indirect _ -> ()
      | Ir.Direct si ->
          let elem = (Ir.find_array prog arr.(i).Ir.r_array).Ir.a_elem_bytes in
          for j = i + 1 to n - 1 do
            if group.(j) < 0 && arr.(j).Ir.r_array = arr.(i).Ir.r_array then
              match arr.(j).Ir.r_access with
              | Ir.Direct sj when same_terms si sj -> (
                  let delta = subscript_delta sj si in
                  match delta_in_iterations prog ~page_bytes ~elem ~path si delta with
                  | Some dvec ->
                      group.(j) <- gid;
                      dvecs.(j) <- dvec
                  | None -> ())
              | _ -> ()
          done)
    end
  done;
  (group, dvecs)

(* ------------------------------------------------------------------ *)
(* Main traversal                                                      *)
(* ------------------------------------------------------------------ *)

let analyze ~target prog =
  let stats =
    {
      st_bodies = 0;
      st_direct_refs = 0;
      st_indirect_refs = 0;
      st_groups = 0;
      st_retained = 0;
      st_unknown_bound_loops = 0;
      st_false_temporal = 0;
    }
  in
  let page_bytes = target.page_bytes in
  let body_counter = ref 0 in
  let analyze_body ~(path : Ir.loop list) (b : Ir.body) =
    stats.st_bodies <- stats.st_bodies + 1;
    let refs = b.Ir.refs in
    let groups, dvecs = group_refs prog ~page_bytes ~path refs in
    let ngroups =
      Array.fold_left (fun acc g -> max acc (g + 1)) 0 groups
    in
    stats.st_groups <- stats.st_groups + ngroups;
    (* leader = lexicographically greatest delta vector within the group
       (touches new data first under ascending loops); trailer = least. *)
    let leader = Array.make ngroups (-1) and trailer = Array.make ngroups (-1) in
    Array.iteri
      (fun i g ->
        if leader.(g) < 0 || dvecs.(i) > dvecs.(leader.(g)) then leader.(g) <- i;
        if trailer.(g) < 0 || dvecs.(i) < dvecs.(trailer.(g)) then trailer.(g) <- i)
      groups;
    let anns =
      List.mapi
        (fun i r ->
          let dir =
            match classify_ref prog ~stats ~page_bytes ~path r with
            | None ->
                stats.st_indirect_refs <- stats.st_indirect_refs + 1;
                None
            | Some (temporal, spatial, advance) ->
                stats.st_direct_refs <- stats.st_direct_refs + 1;
                (* Retained: some temporal reuse carried by a loop *outer*
                   than the level where the reference advances provably fits
                   in memory.  Reuse carried by loops inside the advance
                   level (e.g. y[i] re-touched on every j iteration) says
                   nothing about whether the page survives once the
                   reference has moved on. *)
                let advance_depth =
                  match advance with
                  | Some (var, _) -> (
                      let rec idx d = function
                        | [] -> d
                        | (l : Ir.loop) :: rest ->
                            if l.Ir.l_var = var then d else idx (d + 1) rest
                      in
                      idx 0 path)
                  | None -> List.length path
                in
                let retained =
                  List.exists
                    (fun (var, depth) ->
                      depth < advance_depth
                      &&
                      match
                        List.find_opt (fun l -> l.Ir.l_var = var) path
                      with
                      | None -> false
                      | Some l -> (
                          match volume_of_iteration prog ~page_bytes l with
                          | Some pages -> pages <= target.memory_pages
                          | None -> false))
                    temporal
                in
                if retained then stats.st_retained <- stats.st_retained + 1;
                Some
                  {
                    da_temporal = temporal;
                    da_spatial = spatial;
                    da_advance = advance;
                    da_priority = priority_of ~temporal;
                    da_retained = retained;
                  }
          in
          {
            ra_index = i;
            ra_ref = r;
            ra_dir = dir;
            ra_group = groups.(i);
            ra_is_leader = leader.(groups.(i)) = i;
            ra_is_trailer = trailer.(groups.(i)) = i;
          })
        refs
    in
    let id = !body_counter in
    incr body_counter;
    { ba_id = id; ba_body = b; ba_path = path; ba_refs = anns }
  in
  let rec walk path = function
    | Ir.S_loop l ->
        if not l.Ir.l_known then
          stats.st_unknown_bound_loops <- stats.st_unknown_bound_loops + 1;
        A_loop (l, walk (path @ [ l ]) l.Ir.l_body)
    | Ir.S_seq ss -> A_seq (List.map (walk path) ss)
    | Ir.S_body b -> A_body (analyze_body ~path b)
    | Ir.S_call (name, binds) -> A_call (name, binds)
  in
  let main = walk [] prog.Ir.main in
  let procs = List.map (fun (p : Ir.proc) -> (p.Ir.p_name, walk [] p.Ir.p_body)) prog.Ir.procs in
  { ap_prog = prog; ap_target = target; ap_main = main; ap_procs = procs; ap_stats = stats }

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_ref_ann fmt ra =
  let role =
    match (ra.ra_is_leader, ra.ra_is_trailer) with
    | true, true -> "solo"
    | true, false -> "leader"
    | false, true -> "trailer"
    | false, false -> "member"
  in
  match ra.ra_dir with
  | None ->
      Format.fprintf fmt "%s (indirect, group %d, %s)"
        ra.ra_ref.Ir.r_array ra.ra_group role
  | Some d ->
      Format.fprintf fmt "%s[...] group %d %s prio=%d%s temporal={%s} spatial={%s}"
        ra.ra_ref.Ir.r_array ra.ra_group role d.da_priority
        (if d.da_retained then " retained" else "")
        (String.concat "," (List.map fst d.da_temporal))
        (String.concat "," d.da_spatial)

let rec pp_ann fmt = function
  | A_loop (l, body) ->
      Format.fprintf fmt "@[<v 2>for %s%s:@,%a@]" l.Ir.l_var
        (if l.Ir.l_known then "" else " (unknown bounds)")
        pp_ann body
  | A_seq ss -> Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_ann fmt ss
  | A_body b ->
      Format.fprintf fmt "@[<v>body %d:@,%a@]" b.ba_id
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_ref_ann)
        b.ba_refs
  | A_call (name, _) -> Format.fprintf fmt "call %s" name

let pp fmt t =
  Format.fprintf fmt "@[<v>analysis of %s:@,%a@," t.ap_prog.Ir.prog_name pp_ann
    t.ap_main;
  List.iter
    (fun (name, ann) -> Format.fprintf fmt "@[<v 2>proc %s:@,%a@]@," name pp_ann ann)
    t.ap_procs;
  let s = t.ap_stats in
  Format.fprintf fmt
    "bodies=%d direct=%d indirect=%d groups=%d retained=%d unknown-loops=%d \
     false-temporal=%d@]"
    s.st_bodies s.st_direct_refs s.st_indirect_refs s.st_groups s.st_retained
    s.st_unknown_bound_loops s.st_false_temporal
