(** Reuse and locality analysis (section 3.2).

    For every reference in every loop nest the pass determines:

    - {b temporal reuse}: the set of enclosing loops whose induction
      variable does not (visibly) appear in the subscript — the reference
      re-touches the same data on every iteration of those loops.  Opaque
      coefficients are invisible here, so a runtime-varying stride is
      mis-classified as temporal reuse: the FFTPDE failure mode, kept
      deliberately;
    - {b spatial reuse}: loops along which the stride is smaller than a
      page;
    - {b group locality}: references to the same array whose subscripts
      differ by a small number of iterations ("effectively share the same
      data"); the {e leading} reference of a group is the prefetch target
      and the {e trailing} reference is the release target;
    - {b locality}: whether the data volume accessed between reuses fits in
      the memory the compiler assumes is available; if it provably fits, the
      page will still be resident and neither prefetch nor release is
      needed.  Loops with unknown bounds are assumed large, so "it fits" can
      never be proven for them (section 2.4);
    - the {b release priority} of equation 2:
      [priority x = sum over temporal loops i of 2^depth(i)]. *)

type target = {
  memory_pages : int;   (** physical memory the compiler assumes available *)
  page_bytes : int;
  fault_latency_ns : int;
}

val default_target : target
(** The paper's machine: 4800 pages of 16 KB, ~11 ms fault latency. *)

type dir_ann = {
  da_temporal : (string * int) list;
      (** loops (var, depth) with apparent temporal reuse, outermost first *)
  da_spatial : string list;
  da_advance : (string * int option) option;
      (** innermost loop whose induction variable visibly moves the
          reference, with the assumed element stride when statically known *)
  da_priority : int;   (** equation 2 *)
  da_retained : bool;  (** provably stays resident between reuses *)
}

type ref_ann = {
  ra_index : int;          (** position of the reference in its body *)
  ra_ref : Ir.ref_;
  ra_dir : dir_ann option; (** [None] for indirect references *)
  ra_group : int;
  ra_is_leader : bool;
  ra_is_trailer : bool;
}

type body_ann = {
  ba_id : int;
  ba_body : Ir.body;
  ba_path : Ir.loop list;  (** enclosing loops, outermost first *)
  ba_refs : ref_ann list;
}

type ann_stmt =
  | A_loop of Ir.loop * ann_stmt
  | A_seq of ann_stmt list
  | A_body of body_ann
  | A_call of string * (string * Ir.bound) list

type stats = {
  mutable st_bodies : int;
  mutable st_direct_refs : int;
  mutable st_indirect_refs : int;
  mutable st_groups : int;
  mutable st_retained : int;
  mutable st_unknown_bound_loops : int;
  mutable st_false_temporal : int;
      (** temporal-reuse classifications caused by opaque coefficients *)
}

type t = {
  ap_prog : Ir.program;
  ap_target : target;
  ap_main : ann_stmt;
  ap_procs : (string * ann_stmt) list;
  ap_stats : stats;
}

val analyze : target:target -> Ir.program -> t

val assumed_value : Ir.program -> string -> int option
(** Compile-time assumption for a parameter, if any. *)

val assumed_coef : Ir.program -> Ir.coef -> int option
(** Statically assumed element stride of a subscript term; [None] when the
    parameter has no assumption.  Opaque coefficients report [Some 0]:
    dependence analysis does not see them. *)

val priority_of : temporal:(string * int) list -> int
(** Equation 2, exposed for direct testing. *)

val pp : Format.formatter -> t -> unit
(** Render the analysis (per body: groups, leaders/trailers, priorities) —
    the moral equivalent of the compiler's diagnostic dump. *)
