(** Machine configuration and IRIX-like virtual-memory tunables.

    Defaults model the paper's testbed (Table 1): a 4-CPU SGI Origin 200
    with 75 MB of memory available to user programs and 16 KB pages, and the
    IRIX 6.5 paging machinery (global clock replacement with
    software-simulated reference bits, [min_freemem]/[maxrss] tunables). *)

type t = {
  page_bytes : int;          (** page size in bytes *)
  total_frames : int;        (** physical pages available to user programs *)
  num_cpus : int;
  (* --- replacement tunables (cf. paper section 3.1.3) --- *)
  min_freemem : int;
      (** low watermark, in pages: the paging daemon starts stealing when
          free memory falls below this *)
  desfree : int;
      (** the daemon's target: it steals until free memory reaches this *)
  maxrss : int;
      (** per-process resident-set cap, in pages; the daemon trims processes
          above it *)
  clock_ages_to_steal : int;
      (** how many consecutive daemon visits a page must stay
          un-re-referenced (invalid) before it is stolen *)
  hw_ref_bits : bool;
      (** ablation: when true, the daemon reads a hardware reference bit
          instead of invalidating pages (no soft faults are induced) *)
  rescue_from_free_list : bool;
      (** ablation: when false, freed pages lose their contents immediately
          (no rescue; section 3.1.2 places them at the free-list tail) *)
  drop_prefetch_when_low : bool;
      (** ablation: when false, prefetches block for memory instead of
          being discarded (section 3.1.2's drop feature disabled) *)
  prefetch_fills_tlb : bool;
      (** ablation: when true, a completed prefetch installs a TLB entry —
          the displacement behaviour section 3.1.2's PM avoids *)
  tlb_entries : int;  (** per-process TLB size (MIPS R10000: 64) *)
  (* --- cost model, nanoseconds --- *)
  soft_fault_ns : Memhog_sim.Time_ns.t;
      (** revalidating a page the daemon invalidated *)
  validation_fault_ns : Memhog_sim.Time_ns.t;
      (** first touch of a prefetched-but-not-validated page *)
  hard_fault_cpu_ns : Memhog_sim.Time_ns.t;
      (** kernel CPU cost of a hard fault, excluding I/O *)
  rescue_ns : Memhog_sim.Time_ns.t;
      (** reclaiming a still-intact page from the free list *)
  zero_fill_ns : Memhog_sim.Time_ns.t;
      (** first-touch allocation of a brand new page *)
  pm_call_ns : Memhog_sim.Time_ns.t;
      (** user/kernel crossing for a PagingDirected request *)
  tlb_refill_ns : Memhog_sim.Time_ns.t;
      (** software TLB refill (the R10000 has no hardware page walker) *)
  daemon_page_scan_ns : Memhog_sim.Time_ns.t;
      (** paging-daemon work per frame visited, locks held: reference-bit
          sampling requires invalidation and TLB shootdown IPIs on a
          4-CPU machine, tens of microseconds per page *)
  releaser_page_ns : Memhog_sim.Time_ns.t;
      (** releaser work per page freed, locks held; the releaser is
          specialized so this is far below [daemon_page_scan_ns] *)
  daemon_batch : int;
      (** frames the daemon processes per lock acquisition *)
  releaser_batch : int;
      (** pages the releaser frees per lock acquisition *)
  daemon_interval_ns : Memhog_sim.Time_ns.t;
      (** how often the paging daemon checks for memory pressure *)
}

val default : t
(** The Table 1 machine: 75 MB / 16 KB pages = 4800 frames, 4 CPUs,
    [maxrss] = no cap, software reference bits. *)

val scaled : ?factor:int -> t -> t
(** [scaled ~factor cfg] divides memory-capacity figures by [factor] for
    quicker experiments while preserving all ratios that matter. *)

val pp : Format.formatter -> t -> unit
