open Memhog_sim

type t = {
  page_bytes : int;
  total_frames : int;
  num_cpus : int;
  min_freemem : int;
  desfree : int;
  maxrss : int;
  clock_ages_to_steal : int;
  hw_ref_bits : bool;
  rescue_from_free_list : bool;
  drop_prefetch_when_low : bool;
  prefetch_fills_tlb : bool;
  tlb_entries : int;
  soft_fault_ns : Time_ns.t;
  validation_fault_ns : Time_ns.t;
  hard_fault_cpu_ns : Time_ns.t;
  rescue_ns : Time_ns.t;
  zero_fill_ns : Time_ns.t;
  pm_call_ns : Time_ns.t;
  tlb_refill_ns : Time_ns.t;
  daemon_page_scan_ns : Time_ns.t;
  releaser_page_ns : Time_ns.t;
  daemon_batch : int;
  releaser_batch : int;
  daemon_interval_ns : Time_ns.t;
}

let default =
  {
    page_bytes = 16 * 1024;
    total_frames = 4800 (* 75 MB of 16 KB pages *);
    num_cpus = 4;
    min_freemem = 32;
    desfree = 192;
    maxrss = max_int;
    clock_ages_to_steal = 1;
    hw_ref_bits = false;
    rescue_from_free_list = true;
    drop_prefetch_when_low = true;
    prefetch_fills_tlb = false;
    tlb_entries = 64;
    soft_fault_ns = Time_ns.us 25;
    validation_fault_ns = Time_ns.us 4;
    hard_fault_cpu_ns = Time_ns.us 40;
    rescue_ns = Time_ns.us 8;
    zero_fill_ns = Time_ns.us 25;
    pm_call_ns = Time_ns.us 3;
    tlb_refill_ns = Time_ns.ns 700;
    daemon_page_scan_ns = Time_ns.us 20;
    releaser_page_ns = Time_ns.ns 250;
    daemon_batch = 64;
    releaser_batch = 32;
    daemon_interval_ns = Time_ns.ms 1;
  }

let scaled ?(factor = 4) cfg =
  if factor < 1 then invalid_arg "Config.scaled: factor must be >= 1";
  {
    cfg with
    total_frames = cfg.total_frames / factor;
    (* keep enough free-list headroom for the prefetch pipeline even on
       small machines *)
    min_freemem = max 16 (cfg.min_freemem / factor);
    desfree = max 96 (cfg.desfree / factor);
    maxrss = (if cfg.maxrss = max_int then max_int else cfg.maxrss / factor);
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>page size: %d KB@,user memory: %d MB (%d frames)@,cpus: %d@,\
     min_freemem/desfree: %d/%d pages@,maxrss: %s@,ref bits: %s@]"
    (t.page_bytes / 1024)
    (t.total_frames * t.page_bytes / (1024 * 1024))
    t.total_frames t.num_cpus t.min_freemem t.desfree
    (if t.maxrss = max_int then "unlimited" else string_of_int t.maxrss)
    (if t.hw_ref_bits then "hardware" else "software (simulated by invalidation)")
