(** The free list: an intrusive doubly-linked queue of frames.

    Pages are freed to the {e tail} (both by the paging daemon and by the
    releaser — section 3.1.2: "released pages are placed at the end of the
    free list, giving pages that were released too early a chance to be
    rescued") and allocated from the head, so a freed page survives as long
    as possible before its contents are lost.  Rescue removes a frame from
    the middle in O(1). *)

type t

val create : Frame.t array -> t
(** The free list operates over the given frame table; frames are referred
    to by index. *)

val length : t -> int
val is_empty : t -> bool

val push_tail : t -> Frame.t -> unit
(** Requires the frame not to be on the list already. *)

val pop_head : t -> Frame.t option

val remove : t -> Frame.t -> unit
(** Rescue path: unlink the frame wherever it is.  Requires it to be on the
    list. *)

val mem : t -> Frame.t -> bool

val iter : t -> (Frame.t -> unit) -> unit
(** Head-to-tail iteration (for tests and invariant checks). *)
