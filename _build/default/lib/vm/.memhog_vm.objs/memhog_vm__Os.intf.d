lib/vm/os.mli: Address_space Config Memhog_disk Memhog_sim Vm_stats
