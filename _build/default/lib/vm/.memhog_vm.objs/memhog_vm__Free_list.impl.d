lib/vm/free_list.ml: Array Frame
