lib/vm/address_space.mli: Bytes Memhog_sim Tlb Vm_stats
