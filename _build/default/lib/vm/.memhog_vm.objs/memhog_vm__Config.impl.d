lib/vm/config.ml: Format Memhog_sim Time_ns
