lib/vm/address_space.ml: Array Bytes Char Ivar Memhog_sim Printf Semaphore Tlb Vm_stats
