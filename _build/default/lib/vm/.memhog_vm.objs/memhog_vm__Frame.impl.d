lib/vm/frame.ml: Format Vm_stats
