lib/vm/os.ml: Account Address_space Array Condition Config Engine Frame Free_list Hashtbl Ivar List Mailbox Memhog_disk Memhog_sim Semaphore Tlb Vm_stats
