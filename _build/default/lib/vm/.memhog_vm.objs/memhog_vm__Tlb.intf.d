lib/vm/tlb.mli:
