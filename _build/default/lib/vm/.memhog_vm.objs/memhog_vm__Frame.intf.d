lib/vm/frame.mli: Format Vm_stats
