lib/vm/vm_stats.ml: Format
