lib/vm/config.mli: Format Memhog_sim
