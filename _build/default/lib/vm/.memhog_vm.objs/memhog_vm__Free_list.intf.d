lib/vm/free_list.mli: Frame
