lib/vm/vm_stats.mli: Format
