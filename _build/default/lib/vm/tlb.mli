(** Per-process TLB model.

    The MIPS R10000's TLB (64 entries) has no hardware reference bit and is
    refilled by software, which is why the paging daemon must sample
    references by invalidating mappings (section 4.3) and why TLB refills
    have a visible cost.  Section 3.1.2's second PagingDirected feature is
    that a completed prefetch makes {e no} TLB entry, "to prevent mappings
    for prefetched pages from displacing TLB entries which are still in
    use"; the [prefetch_fills_tlb] ablation flag in {!Config.t} lets the
    harness measure what that feature is worth.

    The model is direct-mapped on the virtual page number: accurate enough
    to capture conflict behaviour at page granularity while costing O(1)
    per reference. *)

type t

val create : entries:int -> t

val entries : t -> int

val hit : t -> vpn:int -> bool
(** Probe without refill. *)

val access : t -> vpn:int -> bool
(** Probe and refill on miss; returns whether it was a hit. *)

val insert : t -> vpn:int -> unit

val invalidate : t -> vpn:int -> unit
(** Drop the mapping if present (page invalidated, stolen or released). *)

val flush : t -> unit

val misses : t -> int
val hits : t -> int
