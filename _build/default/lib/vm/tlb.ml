type t = {
  slots : int array; (* vpn per slot, -1 = empty *)
  mask : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Tlb.create: entries must be a positive power of two";
  { slots = Array.make entries (-1); mask = entries - 1; hit_count = 0; miss_count = 0 }

let entries t = Array.length t.slots

let hit t ~vpn = t.slots.(vpn land t.mask) = vpn

let insert t ~vpn = t.slots.(vpn land t.mask) <- vpn

let access t ~vpn =
  let slot = vpn land t.mask in
  if t.slots.(slot) = vpn then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    t.slots.(slot) <- vpn;
    false
  end

let invalidate t ~vpn =
  let slot = vpn land t.mask in
  if t.slots.(slot) = vpn then t.slots.(slot) <- -1

let flush t = Array.fill t.slots 0 (Array.length t.slots) (-1)

let misses t = t.miss_count
let hits t = t.hit_count
