open Memhog_sim

type pte =
  | Untouched
  | Resident of int
  | On_free_list of int
  | Swapped
  | In_transit of unit Ivar.t

type segment = {
  seg_name : string;
  base_vpn : int;
  npages : int;
  swap_base : int;
  ptes : pte array;
  bits : Bytes.t;
  mutable pm_attached : bool;
}

type t = {
  pid : int;
  as_name : string;
  as_lock : Semaphore.t;
  tlb : Tlb.t;
  mutable seg_arr : segment array;
  mutable nsegs : int;
  mutable last_hit : int;
  mutable rss : int;
  stats : Vm_stats.proc;
  mutable current_usage : int;
  mutable upper_limit : int;
  mutable next_vpn : int;
}

(* A placeholder for unused [seg_arr] slots, so growth never retains a
   stale segment (and all its page tables) beyond [nsegs]. *)
let dummy_segment =
  {
    seg_name = "<unmapped>";
    base_vpn = -1;
    npages = 0;
    swap_base = 0;
    ptes = [||];
    bits = Bytes.empty;
    pm_attached = false;
  }

let create ?(tlb_entries = 64) ~pid ~name () =
  {
    pid;
    as_name = name;
    as_lock = Semaphore.create ~name:(Printf.sprintf "as-lock:%s" name) 1;
    tlb = Tlb.create ~entries:tlb_entries;
    seg_arr = [||];
    nsegs = 0;
    last_hit = 0;
    rss = 0;
    stats = Vm_stats.create_proc ();
    current_usage = 0;
    upper_limit = max_int;
    next_vpn = 0;
  }

let add_segment t ~name ~npages ~swap_base ~on_swap =
  if npages <= 0 then invalid_arg "Address_space.add_segment: npages <= 0";
  let seg =
    {
      seg_name = name;
      base_vpn = t.next_vpn;
      npages;
      swap_base;
      ptes = Array.make npages (if on_swap then Swapped else Untouched);
      bits = Bytes.make ((npages + 7) / 8) '\000';
      pm_attached = false;
    }
  in
  t.next_vpn <- t.next_vpn + npages;
  (* Amortized O(1) append; [base_vpn] is monotonically increasing, so the
     array stays sorted by construction. *)
  if t.nsegs = Array.length t.seg_arr then begin
    let cap = max 8 (2 * Array.length t.seg_arr) in
    let arr = Array.make cap dummy_segment in
    Array.blit t.seg_arr 0 arr 0 t.nsegs;
    t.seg_arr <- arr
  end;
  t.seg_arr.(t.nsegs) <- seg;
  t.nsegs <- t.nsegs + 1;
  seg

let attach_pm _t seg = seg.pm_attached <- true

let segments t = Array.to_list (Array.sub t.seg_arr 0 t.nsegs)

(* Every page translation funnels through here, so this is the hottest
   lookup in the VM: check the last segment hit (sequential sweeps stay in
   one segment for thousands of touches), then binary-search the sorted
   array. *)
let find_segment t ~vpn =
  if t.nsegs = 0 then raise Not_found;
  let seg = t.seg_arr.(t.last_hit) in
  if vpn >= seg.base_vpn && vpn < seg.base_vpn + seg.npages then seg
  else begin
    (* greatest base_vpn <= vpn *)
    let lo = ref 0 and hi = ref (t.nsegs - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.seg_arr.(mid).base_vpn <= vpn then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !found < 0 then raise Not_found;
    let seg = t.seg_arr.(!found) in
    if vpn < seg.base_vpn + seg.npages then begin
      t.last_hit <- !found;
      seg
    end
    else raise Not_found
  end

let off seg vpn =
  let o = vpn - seg.base_vpn in
  if o < 0 || o >= seg.npages then
    invalid_arg
      (Printf.sprintf "Address_space: vpn %d outside segment %s" vpn seg.seg_name);
  o

let get_pte seg ~vpn = seg.ptes.(off seg vpn)
let set_pte seg ~vpn pte = seg.ptes.(off seg vpn) <- pte
let swap_page seg ~vpn = seg.swap_base + off seg vpn

let bit seg ~vpn =
  let o = off seg vpn in
  Char.code (Bytes.get seg.bits (o / 8)) land (1 lsl (o mod 8)) <> 0

let set_bit seg ~vpn value =
  let o = off seg vpn in
  let byte = Char.code (Bytes.get seg.bits (o / 8)) in
  let mask = 1 lsl (o mod 8) in
  let byte = if value then byte lor mask else byte land lnot mask in
  Bytes.set seg.bits (o / 8) (Char.chr byte)

let resident_pages t =
  let acc = ref 0 in
  for i = 0 to t.nsegs - 1 do
    Array.iter
      (fun pte -> match pte with Resident _ -> incr acc | _ -> ())
      t.seg_arr.(i).ptes
  done;
  !acc
