open Memhog_sim

type pte =
  | Untouched
  | Resident of int
  | On_free_list of int
  | Swapped
  | In_transit of unit Ivar.t

type segment = {
  seg_name : string;
  base_vpn : int;
  npages : int;
  swap_base : int;
  ptes : pte array;
  bits : Bytes.t;
  mutable pm_attached : bool;
}

type t = {
  pid : int;
  as_name : string;
  as_lock : Semaphore.t;
  tlb : Tlb.t;
  mutable segments : segment list;
  mutable rss : int;
  stats : Vm_stats.proc;
  mutable current_usage : int;
  mutable upper_limit : int;
  mutable next_vpn : int;
}

let create ?(tlb_entries = 64) ~pid ~name () =
  {
    pid;
    as_name = name;
    as_lock = Semaphore.create ~name:(Printf.sprintf "as-lock:%s" name) 1;
    tlb = Tlb.create ~entries:tlb_entries;
    segments = [];
    rss = 0;
    stats = Vm_stats.create_proc ();
    current_usage = 0;
    upper_limit = max_int;
    next_vpn = 0;
  }

let add_segment t ~name ~npages ~swap_base ~on_swap =
  if npages <= 0 then invalid_arg "Address_space.add_segment: npages <= 0";
  let seg =
    {
      seg_name = name;
      base_vpn = t.next_vpn;
      npages;
      swap_base;
      ptes = Array.make npages (if on_swap then Swapped else Untouched);
      bits = Bytes.make ((npages + 7) / 8) '\000';
      pm_attached = false;
    }
  in
  t.next_vpn <- t.next_vpn + npages;
  t.segments <- t.segments @ [ seg ];
  seg

let attach_pm _t seg = seg.pm_attached <- true

let find_segment t ~vpn =
  let rec go = function
    | [] -> raise Not_found
    | seg :: rest ->
        if vpn >= seg.base_vpn && vpn < seg.base_vpn + seg.npages then seg
        else go rest
  in
  go t.segments

let off seg vpn =
  let o = vpn - seg.base_vpn in
  if o < 0 || o >= seg.npages then
    invalid_arg
      (Printf.sprintf "Address_space: vpn %d outside segment %s" vpn seg.seg_name);
  o

let get_pte seg ~vpn = seg.ptes.(off seg vpn)
let set_pte seg ~vpn pte = seg.ptes.(off seg vpn) <- pte
let swap_page seg ~vpn = seg.swap_base + off seg vpn

let bit seg ~vpn =
  let o = off seg vpn in
  Char.code (Bytes.get seg.bits (o / 8)) land (1 lsl (o mod 8)) <> 0

let set_bit seg ~vpn value =
  let o = off seg vpn in
  let byte = Char.code (Bytes.get seg.bits (o / 8)) in
  let mask = 1 lsl (o mod 8) in
  let byte = if value then byte lor mask else byte land lnot mask in
  Bytes.set seg.bits (o / 8) (Char.chr byte)

let resident_pages t =
  List.fold_left
    (fun acc seg ->
      Array.fold_left
        (fun acc pte ->
          match pte with Resident _ -> acc + 1 | _ -> acc)
        acc seg.ptes)
    0 t.segments
