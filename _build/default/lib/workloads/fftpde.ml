(* FFTPDE: the NAS 3-D FFT PDE kernel, out-of-core version.

   Alternating contiguous butterfly passes and transposes.  The transpose's
   access stride lives in a runtime variable that changes between phases,
   which hides the dependence on the loop induction variable from the
   compiler ("making it seem as though the access is not dependent on the
   loop induction variable", section 4.2): releases of the transposed array
   are tagged with temporal reuse that does not exist, so the buffered
   run-time policy wrongly retains those pages — B fails to release enough
   memory, the paper's one negative result (Figure 10(b)). *)

open Memhog_compiler

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let runlen = 4096 in
  let align = runlen * 64 in
  let m = mem_bytes * 2 / 8 / align * align in
  let nblk = m / runlen in
  let arrays =
    [
      Ir.array_decl "a" ~size:(Ir.param "M");
      Ir.array_decl "b" ~size:(Ir.param "M");
    ]
  in
  let butterfly src dst =
    {
      Ir.p_name = "pass_" ^ src;
      p_body =
        Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "M")
          (Ir.S_body
             {
               Ir.refs =
                 [
                   Ir.direct src [ ("i", Ir.C_const 1) ] ~write:false;
                   Ir.direct dst [ ("i", Ir.C_const 1) ] ~write:true;
                 ];
               work_ns_per_iter = 70;
             });
    }
  in
  (* Transpose: reads [src] in runs of RUNLEN placed STRIDE apart (covering
     the array exactly: rep*RUNLEN + blk*STRIDE + e), writes [dst] in read
     order.  STRIDE is a runtime value the compiler cannot see (opaque): the
     blk-term is invisible to dependence analysis, so the src reference
     appears to have temporal reuse along blk. *)
  let transpose src dst =
    {
      Ir.p_name = "trans_" ^ src;
      p_body =
        Ir.loop ~var:"rep" ~lo:(Ir.cst 0) ~hi:(Ir.param "REPS")
          (Ir.loop ~var:"blk" ~lo:(Ir.cst 0) ~hi:(Ir.param "NBLK")
             (Ir.loop ~var:"e" ~lo:(Ir.cst 0) ~hi:(Ir.param "RUNLEN")
                (Ir.S_body
                   {
                     Ir.refs =
                       [
                         Ir.direct src
                           [
                             ("rep", Ir.C_param "RUNLEN");
                             ("blk", Ir.C_opaque "STRIDE");
                             ("e", Ir.C_const 1);
                           ]
                           ~write:false;
                         Ir.direct dst
                           [
                             ("rep", Ir.C_param "DSTREP");
                             ("blk", Ir.C_param "RUNLEN");
                             ("e", Ir.C_const 1);
                           ]
                           ~write:true;
                       ];
                     work_ns_per_iter = 55;
                   })));
    }
  in
  let call name binds = Ir.S_call (name, binds) in
  let trans_binds stride =
    [
      ("STRIDE", Ir.cst stride);
      ("REPS", Ir.cst (stride / runlen));
      ("NBLK", Ir.cst (m / stride));
      ("DSTREP", Ir.cst (m / stride * runlen));
    ]
  in
  let prog =
    {
      Ir.prog_name = "fftpde";
      arrays;
      assumptions =
        [
          ("M", Some m);
          ("RUNLEN", Some runlen);
          (* the per-phase values are unknown to the compiler *)
          ("STRIDE", None);
          ("REPS", None);
          ("NBLK", None);
          ("DSTREP", None);
        ];
      procs =
        [ butterfly "a" "b"; butterfly "b" "a"; transpose "b" "a"; transpose "a" "b" ];
      main =
        Ir.S_seq
          [
            call "pass_a" [];
            (* stride changes between the transpose phases *)
            call "trans_b" (trans_binds (runlen * 4));
            call "pass_a" [];
            call "trans_b" (trans_binds (runlen * 16));
            call "pass_a" [];
            call "trans_b" (trans_binds (runlen * 64));
          ];
    }
  in
  ( prog,
    [
      ("M", m);
      ("RUNLEN", runlen);
      ("STRIDE", runlen);
      ("REPS", 1);
      ("NBLK", nblk);
      ("DSTREP", runlen);
    ] )
