(* EMBAR: the NAS "embarrassingly parallel" kernel, out-of-core version.

   One-dimensional loops with known bounds: a large array of Gaussian
   deviates is generated, then consumed by a tallying pass into a tiny sums
   table.  The compiler's analysis is "essentially perfect" here; the big
   array streams through memory once per pass and every page can be
   released right after its last use. *)

open Memhog_compiler

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let m = mem_bytes * 42 / 10 / 8 in
  let arrays =
    [
      (* generated in place: first touch zero-fills, no input read *)
      Ir.array_decl "pairs" ~size:(Ir.param "M") ~on_swap:false;
      Ir.array_decl "sums" ~size:(Ir.cst 512) ~on_swap:false;
    ]
  in
  let generate =
    Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "M")
      (Ir.S_body
         {
           Ir.refs = [ Ir.direct "pairs" [ ("i", Ir.C_const 1) ] ~write:true ];
           work_ns_per_iter = 160 (* random-number generation is compute-heavy *);
         })
  in
  let tally =
    Ir.loop ~var:"i2" ~lo:(Ir.cst 0) ~hi:(Ir.param "M")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "pairs" [ ("i2", Ir.C_const 1) ] ~write:false;
               Ir.direct "sums" [] ~write:true (* annulus counters: invariant *);
             ];
           work_ns_per_iter = 90;
         })
  in
  let prog =
    {
      Ir.prog_name = "embar";
      arrays;
      assumptions = [ ("M", Some m) ];
      procs = [];
      main = Ir.S_seq [ generate; tally ];
    }
  in
  (prog, [ ("M", m) ])
