(* MGRID: the NAS multigrid kernel, out-of-core version.

   A V-cycle over 3-D grids: smoothing and residual sweeps are procedures
   called once per level with different grid sizes and base offsets.  Only
   one version of each procedure is compiled, so its release decisions
   cannot fit every level; and the reuse *between* consecutive sweeps over
   the same grid is invisible to the compiler (each loop nest is analyzed
   independently), so pages are released at the end of a sweep only to be
   wanted again by the next — the large rescued fraction of Figure 9. *)

open Memhog_compiler

let icbrt n =
  let r = int_of_float (Float.cbrt (float_of_int n)) in
  let rec fix r = if r * r * r > n then fix (r - 1) else r in
  fix (r + 2)

(* One reference of a 7-point stencil on [grid], offset by [oi] planes,
   [oj] rows and [ok] elements from the centre, at level base [BASE]. *)
let at grid ~oi ~oj ~ok ~write =
  let sp =
    List.filter (fun (_, k) -> k <> 0) [ ("BASE", 1); ("NSQ", oi); ("N", oj) ]
  in
  {
    Ir.r_array = grid;
    r_access =
      Ir.Direct
        {
          Ir.sc = ok;
          sp;
          st =
            [
              ("i", Ir.C_param "NSQ");
              ("j", Ir.C_param "N");
              ("k", Ir.C_const 1);
            ];
        };
    r_write = write;
  }

let stencil7 grid =
  [
    at grid ~oi:0 ~oj:0 ~ok:0 ~write:false;
    at grid ~oi:1 ~oj:0 ~ok:0 ~write:false;
    at grid ~oi:(-1) ~oj:0 ~ok:0 ~write:false;
    at grid ~oi:0 ~oj:1 ~ok:0 ~write:false;
    at grid ~oi:0 ~oj:(-1) ~ok:0 ~write:false;
    at grid ~oi:0 ~oj:0 ~ok:1 ~write:false;
    at grid ~oi:0 ~oj:0 ~ok:(-1) ~write:false;
  ]

let sweep_proc name ~stencil_reads ~point_reads ~writes ~work =
  let body_refs =
    List.concat_map stencil7 stencil_reads
    @ List.map (fun g -> at g ~oi:0 ~oj:0 ~ok:0 ~write:false) point_reads
    @ List.map (fun g -> at g ~oi:0 ~oj:0 ~ok:0 ~write:true) writes
  in
  let dim = Ir.add_const (Ir.param "N") (-1) in
  {
    Ir.p_name = name;
    p_body =
      Ir.loop ~var:"i" ~lo:(Ir.cst 1) ~hi:dim
        (Ir.loop ~var:"j" ~lo:(Ir.cst 1) ~hi:dim
           (Ir.loop ~var:"k" ~lo:(Ir.cst 1) ~hi:dim
              (Ir.S_body { Ir.refs = body_refs; work_ns_per_iter = work })));
  }

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let nf = icbrt (mem_bytes * 18 / 10 / 8) in
  let nf = max 32 (nf / 16 * 16) in
  let levels = [ nf; nf / 2; nf / 4; nf / 8 ] in
  let base_of =
    let rec go acc = function
      | [] -> []
      | n :: rest -> acc :: go (acc + (n * n * n)) rest
    in
    go 0 levels
  in
  let total = List.fold_left (fun acc n -> acc + (n * n * n)) 0 levels in
  let arrays =
    [
      Ir.array_decl "u" ~size:(Ir.param "TOTAL");
      Ir.array_decl "v" ~size:(Ir.param "TOTAL");
      Ir.array_decl "r" ~size:(Ir.param "TOTAL");
    ]
  in
  let procs =
    [
      (* residual: r = v - A u (stencil on u, point reads of v) *)
      sweep_proc "resid" ~stencil_reads:[ "u" ] ~point_reads:[ "v" ]
        ~writes:[ "r" ] ~work:85;
      (* smoother: u = u + M r (stencil on r) *)
      sweep_proc "psinv" ~stencil_reads:[ "r" ] ~point_reads:[]
        ~writes:[ "u" ] ~work:75;
    ]
  in
  let call name n base =
    Ir.S_call
      (name, [ ("N", Ir.cst n); ("NSQ", Ir.cst (n * n)); ("BASE", Ir.cst base) ])
  in
  (* Each level runs a residual sweep immediately followed by a smoothing
     sweep over the same grid: reuse between the two independent loop nests
     is invisible to the compiler, so the first sweep's releases are
     partially rescued by the second. *)
  let pair n base = [ call "resid" n base; call "psinv" n base ] in
  let down = List.concat (List.map2 pair levels base_of) in
  let up = List.concat (List.rev (List.map2 pair levels base_of)) in
  let prog =
    {
      Ir.prog_name = "mgrid";
      arrays;
      (* one compiled version: no assumption can cover every level *)
      assumptions =
        [ ("N", None); ("NSQ", None); ("BASE", None); ("TOTAL", Some total) ];
      procs;
      main = Ir.S_seq (down @ up);
    }
  in
  (prog, [ ("TOTAL", total) ])
