lib/workloads/embar.ml: Ir Memhog_compiler
