lib/workloads/buk.ml: Ir Memhog_compiler
