lib/workloads/cgm.ml: Ir Memhog_compiler
