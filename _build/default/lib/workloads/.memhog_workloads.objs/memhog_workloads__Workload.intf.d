lib/workloads/workload.mli: Memhog_compiler
