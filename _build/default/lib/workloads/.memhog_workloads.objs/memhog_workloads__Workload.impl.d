lib/workloads/workload.ml: Buk Cgm Embar Fftpde List Matvec Memhog_compiler Mgrid String
