lib/workloads/fftpde.ml: Ir Memhog_compiler
