lib/workloads/matvec.ml: Ir Memhog_compiler
