lib/workloads/mgrid.ml: Float Ir List Memhog_compiler
