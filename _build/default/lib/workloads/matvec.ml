(* MATVEC: dense matrix-vector multiplication, y = A x (Figure 5).

   The matrix is ~5.3x physical memory (400 MB against 75 MB in the paper);
   the vector is a few pages and is re-read on every row.  Both are released
   by the aggressive compiler; the vector's releases carry priority 1
   (temporal reuse across the outer loop, equation 2), so the buffered
   run-time policy retains it while the aggressive policy thrashes it —
   the paper's central R-vs-B contrast. *)

open Memhog_compiler

let isqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let rec fix r = if r * r > n then fix (r - 1) else r in
  fix (r + 1)

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let n = isqrt (mem_bytes * 53 / 10 / 8) in
  let arrays =
    [
      Ir.array_decl "A" ~size:(Ir.param "NN");
      Ir.array_decl "x" ~size:(Ir.param "N");
      Ir.array_decl "y" ~size:(Ir.param "N");
    ]
  in
  let body =
    Ir.S_body
      {
        Ir.refs =
          [
            Ir.direct "A" [ ("i", Ir.C_param "N"); ("j", Ir.C_const 1) ] ~write:false;
            Ir.direct "x" [ ("j", Ir.C_const 1) ] ~write:false;
            Ir.direct "y" [ ("i", Ir.C_const 1) ] ~write:true;
          ];
        work_ns_per_iter = 45;
      }
  in
  let main =
    Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "N")
      (Ir.loop ~var:"j" ~lo:(Ir.cst 0) ~hi:(Ir.param "N") body)
  in
  let prog =
    {
      Ir.prog_name = "matvec";
      arrays;
      (* Bounds are known to the compiler (Table 2). *)
      assumptions = [ ("N", Some n); ("NN", Some (n * n)) ];
      procs = [];
      main;
    }
  in
  (prog, [ ("N", n); ("NN", n * n) ])
