(* BUK: the NAS integer ("bucket") sort, out-of-core version.

   Two very large sequentially-accessed arrays (keys in, ranks out) and a
   third large randomly-accessed array (the buckets), reached through
   indirect references a[keys[i]].  The loop bounds are unknown to the
   compiler.  It releases the two sequential arrays but cannot reason about
   the random one, so it leaves it alone — and, as the paper observes, the
   demand for fresh pages is satisfied by the sequential arrays' releases,
   letting the bucket array stay mostly in memory: the compiler improves on
   the replacement policy without any run-time cleverness. *)

open Memhog_compiler

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let k = mem_bytes * 15 / 10 / 8 in
  let b = mem_bytes * 60 / 100 / 8 in
  let arrays =
    [
      Ir.array_decl "keys" ~size:(Ir.param "K");
      Ir.array_decl "rank" ~size:(Ir.param "K");
      Ir.array_decl "buckets" ~size:(Ir.param "B");
    ]
  in
  let count_pass =
    Ir.loop ~known:false ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.param "K")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "keys" [ ("i", Ir.C_const 1) ] ~write:false;
               Ir.indirect ~every:48 "buckets" ~via:"keys" ~write:true;
             ];
           work_ns_per_iter = 40;
         })
  in
  let rank_pass =
    Ir.loop ~known:false ~var:"i2" ~lo:(Ir.cst 0) ~hi:(Ir.param "K")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "keys" [ ("i2", Ir.C_const 1) ] ~write:false;
               Ir.indirect ~every:48 "buckets" ~via:"keys" ~write:false;
               Ir.direct "rank" [ ("i2", Ir.C_const 1) ] ~write:true;
             ];
           work_ns_per_iter = 40;
         })
  in
  let prog =
    {
      Ir.prog_name = "buk";
      arrays;
      assumptions = [ ("K", None); ("B", None) ];
      procs = [];
      main = Ir.S_seq [ count_pass; rank_pass ];
    }
  in
  (prog, [ ("K", k); ("B", b) ])
