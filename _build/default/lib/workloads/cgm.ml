(* CGM: the NAS conjugate-gradient kernel, out-of-core version.

   Sparse matrix-vector products: the value and column-index arrays stream
   sequentially, but the inner loop over a row's nonzeros has bounds the
   compiler cannot see, and the source vector is reached indirectly through
   the column indices.  The compiler cannot reason about the small loops,
   so it floods the run-time layer with unnecessary prefetch and release
   requests that must be filtered — the visible user-time overhead in
   Figure 7. *)

open Memhog_compiler

let nnz_per_row = 24

let make ~mem_bytes ~page_bytes =
  ignore page_bytes;
  let nnz = mem_bytes * 22 / 10 / 8 in
  let nrows = nnz / nnz_per_row in
  let arrays =
    [
      Ir.array_decl "aval" ~size:(Ir.param "NNZ");
      Ir.array_decl "colidx" ~size:(Ir.param "NNZ");
      Ir.array_decl "xvec" ~size:(Ir.param "NROWS");
      Ir.array_decl "pvec" ~size:(Ir.param "NROWS");
      Ir.array_decl "qvec" ~size:(Ir.param "NROWS");
      Ir.array_decl "rvec" ~size:(Ir.param "NROWS");
    ]
  in
  let spmv =
    Ir.loop ~known:false ~var:"row" ~lo:(Ir.cst 0) ~hi:(Ir.param "NROWS")
      (Ir.loop ~known:false ~var:"k" ~lo:(Ir.cst 0) ~hi:(Ir.param "NNZROW")
         (Ir.S_body
            {
              Ir.refs =
                [
                  Ir.direct "aval"
                    [ ("row", Ir.C_param "NNZROW"); ("k", Ir.C_const 1) ]
                    ~write:false;
                  Ir.direct "colidx"
                    [ ("row", Ir.C_param "NNZROW"); ("k", Ir.C_const 1) ]
                    ~write:false;
                  Ir.indirect ~every:8 "xvec" ~via:"colidx" ~write:false;
                  Ir.direct "qvec" [ ("row", Ir.C_const 1) ] ~write:true;
                ];
              work_ns_per_iter = 50;
            }))
  in
  let vector_update =
    Ir.loop ~known:false ~var:"r2" ~lo:(Ir.cst 0) ~hi:(Ir.param "NROWS")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "pvec" [ ("r2", Ir.C_const 1) ] ~write:false;
               Ir.direct "qvec" [ ("r2", Ir.C_const 1) ] ~write:false;
               Ir.direct "rvec" [ ("r2", Ir.C_const 1) ] ~write:true;
               Ir.direct "xvec" [ ("r2", Ir.C_const 1) ] ~write:true;
             ];
           work_ns_per_iter = 35;
         })
  in
  let prog =
    {
      Ir.prog_name = "cgm";
      arrays;
      assumptions = [ ("NNZ", None); ("NROWS", None); ("NNZROW", None) ];
      procs = [];
      main = Ir.S_seq [ spmv; vector_update ];
    }
  in
  (prog, [ ("NNZ", nnz); ("NROWS", nrows); ("NNZROW", nnz_per_row) ])
