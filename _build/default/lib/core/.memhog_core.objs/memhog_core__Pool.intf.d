lib/core/pool.mli:
