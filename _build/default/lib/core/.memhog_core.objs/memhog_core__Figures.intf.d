lib/core/figures.mli: Experiment Machine Memhog_sim
