lib/core/report.mli: Format Memhog_sim
