lib/core/machine.mli: Format Memhog_compiler Memhog_disk Memhog_vm
