lib/core/figures.ml: Experiment Format Fun List Machine Memhog_compiler Memhog_exec Memhog_runtime Memhog_sim Memhog_vm Memhog_workloads Mutex Pool Printf Report Time_ns Unix
