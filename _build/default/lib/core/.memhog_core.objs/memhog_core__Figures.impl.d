lib/core/figures.ml: Experiment Format List Machine Memhog_compiler Memhog_exec Memhog_runtime Memhog_sim Memhog_vm Memhog_workloads Printf Report Time_ns
