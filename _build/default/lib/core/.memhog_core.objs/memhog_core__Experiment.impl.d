lib/core/experiment.ml: Account Engine List Machine Memhog_compiler Memhog_disk Memhog_exec Memhog_runtime Memhog_sim Memhog_vm Memhog_workloads Option Printexc Printf Series Time_ns
