lib/core/machine.ml: Format Memhog_compiler Memhog_disk Memhog_vm
