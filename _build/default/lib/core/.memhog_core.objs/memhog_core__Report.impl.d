lib/core/report.ml: Array Buffer Format List Memhog_sim Printf String
