lib/core/experiment.mli: Machine Memhog_compiler Memhog_runtime Memhog_sim Memhog_vm Memhog_workloads
