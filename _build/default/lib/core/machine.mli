(** Machine descriptions for experiments.

    [paper] is the Table 1 testbed: 4 CPUs, 75 MB of user memory in 16 KB
    pages, swap striped over ten Cheetah 4LP disks.  [quick] is a
    proportionally shrunk machine for tests and examples. *)

type t = {
  m_name : string;
  m_config : Memhog_vm.Config.t;
  m_swap : Memhog_disk.Swap.config;
  m_seed : int;
}

val paper : t
val quick : t

val fault_latency_ns : t -> int
(** Average cost of a demand page-in (overhead + seek + rotation +
    transfer): the latency parameter handed to the compiler. *)

val compiler_target : t -> Memhog_compiler.Analysis.target

val mem_bytes : t -> int

val pp : Format.formatter -> t -> unit
