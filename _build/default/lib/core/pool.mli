(** Fixed-size [Domain]-based worker pool with a shared work queue.

    The experiment matrix is a grid of independent, deterministic
    simulations (each [Experiment.run] builds its own engine, OS and RNG),
    so the cells parallelize across domains with no shared state.  The pool
    owns [jobs] worker domains that pull tasks off one queue; [map]
    preserves input order and re-raises the first task exception in the
    caller, so results are indistinguishable from [List.map] — the harness
    relies on this for its bit-identical [--jobs 1] / [--jobs N] guarantee.

    With [jobs <= 1] (or a single-element list) everything runs in the
    calling domain and no worker is ever spawned: the serial path is the
    parallel path's own baseline. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [\[1; 64\]]. *)

val create : jobs:int -> t
(** Spawn [jobs] worker domains (clamped to [\[1; 64\]]; [jobs = 1] spawns
    none).  The pool must be released with [shutdown]. *)

val jobs : t -> int
(** Worker count the pool was created with (after clamping). *)

val shutdown : t -> unit
(** Signal the workers to exit and join them.  Idempotent.  Pending tasks
    submitted by a concurrent [run_list] finish first. *)

val run_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run one task per list element on the pool's workers and wait for all of
    them.  Results are in input order.  If any task raises, the first
    exception (in completion order) is re-raised in the caller after every
    task has finished or been abandoned. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = create a pool, [run_list], shut it down.  With
    [jobs <= 1] this is exactly [List.map f xs] in the calling domain. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts the
    pool down, even if [f] raises. *)
