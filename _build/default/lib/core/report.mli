(** Plain-text table rendering for the experiment harness. *)

val table :
  ?title:string ->
  header:string list ->
  rows:string list list ->
  Format.formatter ->
  unit ->
  unit
(** Column widths adapt to contents; the first column is left-aligned,
    the rest right-aligned. *)

val ns : Memhog_sim.Time_ns.t -> string
val ns_opt : Memhog_sim.Time_ns.t option -> string
val ratio : float -> string
(** Two-decimal fixed point ("1.37"). *)

val pct : float -> string
(** Percentage with one decimal ("42.3%"). *)

val f1 : float -> string
val count : int -> string
(** Thousands separators for large counters. *)
