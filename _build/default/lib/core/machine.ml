module Config = Memhog_vm.Config
module Swap = Memhog_disk.Swap
module Disk = Memhog_disk.Disk

type t = {
  m_name : string;
  m_config : Config.t;
  m_swap : Swap.config;
  m_seed : int;
}

let paper =
  {
    m_name = "SGI Origin 200 (Table 1)";
    m_config = Config.default;
    m_swap = Swap.default_config;
    m_seed = 42;
  }

let quick =
  {
    m_name = "quick (1/8 scale)";
    m_config = Config.scaled ~factor:8 Config.default;
    m_swap = { Swap.default_config with Swap.num_disks = 4 };
    m_seed = 42;
  }

let fault_latency_ns t =
  let p = t.m_swap.Swap.disk_params in
  p.Disk.overhead_ns + p.Disk.seek_ns + p.Disk.rotation_ns
  + (p.Disk.transfer_ns_per_kb * (t.m_config.Config.page_bytes / 1024))

let compiler_target t =
  {
    Memhog_compiler.Analysis.memory_pages = t.m_config.Config.total_frames;
    page_bytes = t.m_config.Config.page_bytes;
    fault_latency_ns = fault_latency_ns t;
  }

let mem_bytes t = t.m_config.Config.total_frames * t.m_config.Config.page_bytes

let pp fmt t =
  Format.fprintf fmt "@[<v>%s@,%a@,disks: %d x Cheetah 4LP (%d per controller)@,fault latency: %.2f ms@]"
    t.m_name Config.pp t.m_config t.m_swap.Swap.num_disks
    t.m_swap.Swap.disks_per_controller
    (float_of_int (fault_latency_ns t) /. 1e6)
