lib/exec/interactive.mli: Memhog_sim Memhog_vm
