lib/exec/app.mli: Memhog_compiler Memhog_runtime Memhog_sim Memhog_vm
