lib/exec/app.ml: Account Array Engine Hashtbl List Memhog_compiler Memhog_runtime Memhog_sim Memhog_vm Printf Rng Semaphore Time_ns
