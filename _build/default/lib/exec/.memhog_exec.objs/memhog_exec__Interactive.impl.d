lib/exec/interactive.ml: Account Engine List Memhog_sim Memhog_vm Option Time_ns
