(* Building and running your own out-of-core program through the full
   pipeline: IR -> compiler -> simulated machine.

     dune exec examples/custom_workload.exe

   The program below is a two-pass image filter: a row-convolution pass
   reads a large input frame and writes an equally large output frame, and
   a reduction pass scans the output to build a small histogram.  Both
   frames exceed physical memory.  We compile it O/P/R and watch the
   out-of-core machinery do its job. *)

open Memhog_core
module Ir = Memhog_compiler.Ir
module VS = Memhog_vm.Vm_stats

let image_filter ~mem_bytes =
  (* frames sized at ~1.7x physical memory each *)
  let pixels = mem_bytes * 17 / 10 / 8 in
  let arrays =
    [
      Ir.array_decl "input" ~size:(Ir.param "PIXELS");
      Ir.array_decl "output" ~size:(Ir.param "PIXELS") ~on_swap:false;
      Ir.array_decl "histogram" ~size:(Ir.cst 256) ~on_swap:false;
    ]
  in
  let convolve =
    (* 1-D convolution: reads input[i-1], input[i], input[i+1] — a group
       whose leader is prefetched and whose trailer is released *)
    Ir.loop ~var:"i" ~lo:(Ir.cst 1)
      ~hi:(Ir.add_const (Ir.param "PIXELS") (-1))
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "input" ~off:(-1) [ ("i", Ir.C_const 1) ] ~write:false;
               Ir.direct "input" [ ("i", Ir.C_const 1) ] ~write:false;
               Ir.direct "input" ~off:1 [ ("i", Ir.C_const 1) ] ~write:false;
               Ir.direct "output" [ ("i", Ir.C_const 1) ] ~write:true;
             ];
           work_ns_per_iter = 60;
         })
  in
  let reduce =
    Ir.loop ~var:"p" ~lo:(Ir.cst 0) ~hi:(Ir.param "PIXELS")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "output" [ ("p", Ir.C_const 1) ] ~write:false;
               Ir.direct "histogram" [] ~write:true;
             ];
           work_ns_per_iter = 30;
         })
  in
  let prog =
    {
      Ir.prog_name = "image-filter";
      arrays;
      assumptions = [ ("PIXELS", Some pixels) ];
      procs = [];
      main = Ir.S_seq [ convolve; reduce ];
    }
  in
  (prog, [ ("PIXELS", pixels) ])

let () =
  let machine = Machine.quick in
  let workload =
    {
      Memhog_workloads.Workload.w_name = "IMAGE-FILTER";
      w_description = "two-pass out-of-core image filter (custom)";
      w_traits = "group locality in pass 1; streaming reduction in pass 2";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes:_ -> image_filter ~mem_bytes);
    }
  in
  Format.printf "custom out-of-core program through the full pipeline:@.@.";
  List.iter
    (fun variant ->
      let r = Experiment.run (Experiment.setup ~machine ~workload ~variant ()) in
      Format.printf
        "%s: elapsed %s  (hard faults %d, prefetched %d, released %d, daemon \
         stole %d)@."
        (Experiment.variant_name variant)
        (Memhog_sim.Time_ns.to_string r.Experiment.r_elapsed)
        r.Experiment.r_app_stats.VS.hard_faults
        r.Experiment.r_app_stats.VS.prefetches_issued
        r.Experiment.r_app_stats.VS.freed_by_releaser
        r.Experiment.r_global.VS.daemon_pages_stolen)
    [ Experiment.O; Experiment.P; Experiment.R ]
