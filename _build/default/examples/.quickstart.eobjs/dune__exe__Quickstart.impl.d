examples/quickstart.ml: Array Experiment Format List Machine Memhog_core Memhog_sim Memhog_vm Memhog_workloads Option Sys
