examples/compiler_explorer.ml: Array Format Memhog_compiler Memhog_workloads Sys
