examples/interactive_mix.mli:
