examples/custom_workload.ml: Experiment Format List Machine Memhog_compiler Memhog_core Memhog_sim Memhog_vm Memhog_workloads
