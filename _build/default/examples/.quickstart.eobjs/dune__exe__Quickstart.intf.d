examples/quickstart.mli:
