examples/compiler_explorer.mli:
