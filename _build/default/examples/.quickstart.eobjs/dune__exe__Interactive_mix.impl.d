examples/interactive_mix.ml: Array Experiment Format List Machine Memhog_core Memhog_sim Memhog_workloads Printf Sys
