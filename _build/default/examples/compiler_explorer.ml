(* Compiler explorer: run the analysis and code generation on the paper's
   example programs and print what the compiler sees and emits.

     dune exec examples/compiler_explorer.exe [-- WORKLOAD]

   With no argument, compiles the Figure 3 nearest-neighbour stencil: nine
   references collapse into one locality group whose leading reference
   (a[i+1][j+1]) is prefetched and whose trailing reference (a[i-1][j-1])
   is released.  With a workload name, shows that benchmark instead. *)

module Ir = Memhog_compiler.Ir
module Analysis = Memhog_compiler.Analysis
module Compile = Memhog_compiler.Compile
module Pir = Memhog_compiler.Pir

(* Figure 3: a[i][j] = average of the 3x3 neighbourhood. *)
let stencil_program =
  let at oi oj w =
    {
      Ir.r_array = "a";
      r_access =
        Ir.Direct
          {
            Ir.sc = oj;
            sp = (if oi = 0 then [] else [ ("N", oi) ]);
            st = [ ("i", Ir.C_param "N"); ("j", Ir.C_const 1) ];
          };
      r_write = w;
    }
  in
  {
    Ir.prog_name = "fig3-stencil";
    arrays = [ Ir.array_decl "a" ~size:(Ir.param "NN") ];
    assumptions = [ ("N", None); ("NN", None) ];
    procs = [];
    main =
      Ir.loop ~var:"i" ~lo:(Ir.cst 1) ~hi:(Ir.add_const (Ir.param "N") (-1))
        (Ir.loop ~var:"j" ~lo:(Ir.cst 1) ~hi:(Ir.add_const (Ir.param "N") (-1))
           (Ir.S_body
              {
                Ir.refs =
                  [
                    at 0 0 true;
                    at 1 (-1) false;
                    at 1 0 false;
                    at 1 1 false;
                    at 0 (-1) false;
                    at 0 1 false;
                    at (-1) (-1) false;
                    at (-1) 0 false;
                    at (-1) 1 false;
                  ];
                work_ns_per_iter = 100;
              }));
  }

let () =
  let program =
    if Array.length Sys.argv > 1 then
      fst
        ((Memhog_workloads.Workload.find Sys.argv.(1)).Memhog_workloads.Workload.w_make
           ~mem_bytes:(75 * 1024 * 1024) ~page_bytes:16384)
    else stencil_program
  in
  Format.printf "=== source program ===@.%a@.@." Ir.pp_program program;
  let analysis = Compile.analyze program in
  Format.printf "=== analysis ===@.%a@.@." Analysis.pp analysis;
  let compiled = Compile.compile ~variant:Pir.V_release program in
  Format.printf "=== generated code (prefetch+release variant) ===@.%a@." Pir.pp
    compiled
