(* Quickstart: compile one out-of-core benchmark in all four paper variants
   and run each on a dedicated simulated machine.

     dune exec examples/quickstart.exe [-- WORKLOAD]

   Reproduces, in miniature, the headline of section 4.3: prefetching hides
   most of the I/O stall, and adding compiler-inserted releases speeds the
   program up further while idling the paging daemon entirely. *)

open Memhog_core
module VS = Memhog_vm.Vm_stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "MATVEC" in
  let workload = Memhog_workloads.Workload.find name in
  let machine = Machine.quick in
  Format.printf "machine under test:@.%a@.@." Machine.pp machine;
  Format.printf "workload: %s — %s@.@." workload.Memhog_workloads.Workload.w_name
    workload.Memhog_workloads.Workload.w_description;
  Format.printf "%-8s %12s %12s %12s %10s %10s %10s@." "variant" "elapsed"
    "io-stall" "user" "hard-flt" "released" "stolen";
  let base = ref None in
  List.iter
    (fun variant ->
      let result =
        Experiment.run (Experiment.setup ~machine ~workload ~variant ())
      in
      let elapsed = result.Experiment.r_elapsed in
      if !base = None then base := Some elapsed;
      Format.printf "%-8s %12s %12s %12s %10d %10d %10d   (%.2fx of O)@."
        (Experiment.variant_name variant)
        (Memhog_sim.Time_ns.to_string elapsed)
        (Memhog_sim.Time_ns.to_string
           result.Experiment.r_breakdown.Experiment.b_io_stall)
        (Memhog_sim.Time_ns.to_string
           result.Experiment.r_breakdown.Experiment.b_user)
        result.Experiment.r_app_stats.VS.hard_faults
        result.Experiment.r_app_stats.VS.freed_by_releaser
        result.Experiment.r_global.VS.daemon_pages_stolen
        (float_of_int elapsed /. float_of_int (Option.get !base)))
    Experiment.all_variants;
  Format.printf
    "@.O = original, P = +prefetch, R = +aggressive release, B = +buffered \
     release.@."
