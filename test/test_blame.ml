(* Tests for the per-request blame layer ([memhog blame]): structural
   additivity of the span decomposition (components sum exactly to the
   recorded response, for synthetic lifecycles and for a real serving
   grid), byte-identical blame output at any --jobs, percentile-band
   bookkeeping, and the slo_attainment zero-recorded fix. *)

open Memhog_sim
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Serve = Memhog_core.Serve
module Server = Memhog_exec.Server

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Synthetic lifecycles: additivity as a property                      *)
(* ------------------------------------------------------------------ *)

(* Drive one request lifecycle per component tuple through a private
   Reqtrace, advancing a fake clock by each component's duration between
   the lifecycle calls — exactly the call sequence Server.serve_one
   makes. *)
let drive_spans reqs =
  let rq = Reqtrace.create ~seed:7 () in
  let now = ref 0 in
  List.iteri
    (fun i ((q, ix, v), (cw, cp)) ->
      let arrival = !now in
      now := !now + q;
      Reqtrace.start rq ~pid:1 ~key:i ~arrival ~now:!now;
      now := !now + ix;
      Reqtrace.note_touch rq ~pid:1 ~kind:Reqtrace.Index ~vpn:i
        ~outcome:Reqtrace.Hit ~now:!now;
      now := !now + v;
      Reqtrace.note_touch rq ~pid:1 ~kind:Reqtrace.Value ~vpn:(i + 100_000)
        ~outcome:Reqtrace.Soft ~now:!now;
      now := !now + cw;
      Reqtrace.note_cpu_acquired rq ~pid:1 ~now:!now;
      now := !now + cp;
      Reqtrace.finish rq ~pid:1 ~commit:true ~now:!now)
    reqs;
  rq

let spans_additive rq =
  let ok = ref true in
  Reqtrace.iter_sampled rq (fun sp ->
      let open Reqtrace in
      if
        sp.sp_queue + sp.sp_index + sp.sp_value + sp.sp_cpu + sp.sp_compute
        <> sp.sp_response
      then ok := false);
  !ok

let reqs_arb =
  QCheck.(
    list_of_size
      Gen.(1 -- 80)
      (pair (triple small_nat small_nat small_nat) (pair small_nat small_nat)))

let prop_synthetic_additivity =
  QCheck.Test.make
    ~name:"blame components sum exactly to response for every sampled span"
    ~count:200 reqs_arb
    (fun reqs ->
      let rq = drive_spans reqs in
      spans_additive rq
      && Reqtrace.committed rq = List.length reqs
      && Reqtrace.sampled rq = min (List.length reqs) 4096)

(* The component values themselves must match what the clock did, not just
   sum correctly: pin one hand-built lifecycle exactly. *)
let test_synthetic_exact () =
  let rq = drive_spans [ ((3, 5, 13), (7, 11)) ] in
  Reqtrace.iter_sampled rq (fun sp ->
      let open Reqtrace in
      check_int "queue" 3 sp.sp_queue;
      check_int "index" 5 sp.sp_index;
      check_int "value" 13 sp.sp_value;
      check_int "cpu" 7 sp.sp_cpu;
      check_int "compute" 11 sp.sp_compute;
      check_int "response" (3 + 5 + 13 + 7 + 11) sp.sp_response)

(* Uncommitted (warm-up) spans must leave no mark: not counted, not
   sampled, absent from histograms. *)
let test_warmup_not_committed () =
  let rq = Reqtrace.create ~seed:7 () in
  Reqtrace.start rq ~pid:1 ~key:0 ~arrival:0 ~now:5;
  Reqtrace.note_touch rq ~pid:1 ~kind:Reqtrace.Index ~vpn:0
    ~outcome:Reqtrace.Hit ~now:6;
  Reqtrace.note_touch rq ~pid:1 ~kind:Reqtrace.Value ~vpn:1
    ~outcome:Reqtrace.Hit ~now:7;
  Reqtrace.note_cpu_acquired rq ~pid:1 ~now:8;
  Reqtrace.finish rq ~pid:1 ~commit:false ~now:9;
  check_int "nothing committed" 0 (Reqtrace.committed rq);
  check_int "nothing sampled" 0 (Reqtrace.sampled rq);
  check_bool "no slowest" true (Reqtrace.slowest rq = None);
  let s = Reqtrace.summarize rq in
  check_int "empty response histogram" 0 (Histogram.count s.Reqtrace.su_response)

(* ------------------------------------------------------------------ *)
(* A real serving grid                                                 *)
(* ------------------------------------------------------------------ *)

let run_grid ~jobs () =
  Serve.run ~machine:Machine.quick ~rates:[ 3840.0 ]
    ~duration:(Time_ns.sec 10) ~jobs ()

let grid = lazy (run_grid ~jobs:2 ())

(* The acceptance criterion, on real traffic: every span the reservoir
   retained decomposes additively, and the blame close-out's books
   balance against the server's own. *)
let test_grid_additivity_and_books () =
  let t = Lazy.force grid in
  List.iter
    (fun (r : E.result) ->
      check_bool "every sampled span additive" true
        (spans_additive r.E.r_reqtrace);
      let s = Serve.serving_exn r in
      let b = Serve.blame_exn r in
      check_int "committed spans == recorded responses"
        s.Server.sm_recorded b.Reqtrace.su_committed;
      check_bool "sampled bounded by cap" true
        (b.Reqtrace.su_sampled <= b.Reqtrace.su_cap
        && b.Reqtrace.su_sampled <= b.Reqtrace.su_committed
        && b.Reqtrace.su_sampled > 0);
      check_int "band counts partition the sample" b.Reqtrace.su_sampled
        (List.fold_left
           (fun acc (bd : Reqtrace.band) -> acc + bd.Reqtrace.bd_count)
           0 b.Reqtrace.su_bands);
      (* per-band additivity survives aggregation *)
      List.iter
        (fun (bd : Reqtrace.band) ->
          check_int
            (Printf.sprintf "band %s additive" bd.Reqtrace.bd_label)
            bd.Reqtrace.bd_response
            (bd.Reqtrace.bd_queue + bd.Reqtrace.bd_index
           + bd.Reqtrace.bd_value + bd.Reqtrace.bd_cpu
           + bd.Reqtrace.bd_compute))
        b.Reqtrace.su_bands;
      (* the population histograms also telescope: sums agree in total *)
      let sum h = Histogram.sum h in
      check_int "population histograms additive in total"
        (sum b.Reqtrace.su_response)
        (sum b.Reqtrace.su_queue + sum b.Reqtrace.su_index
       + sum b.Reqtrace.su_value + sum b.Reqtrace.su_cpu
       + sum b.Reqtrace.su_compute);
      (* the slowest span survives sampling and bounds the sample *)
      match Reqtrace.slowest r.E.r_reqtrace with
      | None -> Alcotest.fail "no slowest span on a serve cell"
      | Some sp ->
          Reqtrace.iter_sampled r.E.r_reqtrace (fun s ->
              check_bool "slowest is an upper bound" true
                (s.Reqtrace.sp_response <= sp.Reqtrace.sp_response)))
    (Serve.results t)

(* Byte-equality of the blame output at --jobs 1 vs --jobs 8: both the
   serialized metrics (the "blame" object rides in every serve cell at
   schema v5) and the rendered blame tables. *)
let render_metrics t =
  Mio.to_string
    (Mio.metrics_json (Metrics.of_results ~label:"blame" (Serve.results t)))

let test_jobs_determinism () =
  let serial = run_grid ~jobs:1 () and pooled = run_grid ~jobs:8 () in
  check_str "metrics (with blame) jobs 1 == jobs 8" (render_metrics serial)
    (render_metrics pooled);
  check_str "blame tables jobs 1 == jobs 8" (Serve.render_blame serial)
    (Serve.render_blame pooled)

(* The slowest request's exported critical path is valid JSON with the
   request slice and the five component slices. *)
let test_blame_span_export () =
  let t = Lazy.force grid in
  let r = List.hd (Serve.results t) in
  match Reqtrace.slowest r.E.r_reqtrace with
  | None -> Alcotest.fail "no slowest span"
  | Some sp ->
      let doc = Memhog_core.Trace_export.blame_span_to_chrome_json sp in
      (match Mio.parse doc with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("export is not valid JSON: " ^ e));
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun needle ->
          check_bool (Printf.sprintf "export mentions %S" needle) true
            (contains needle doc))
        [ "req key="; "traceEvents" ];
      (* zero-duration components are elided; every nonzero one must
         render as a slice *)
      let open Reqtrace in
      List.iter
        (fun (name, dur) ->
          if dur > 0 then
            check_bool (Printf.sprintf "nonzero component %S rendered" name)
              true
              (contains (Printf.sprintf "\"name\":\"%s\"" name) doc))
        [
          ("queue", sp.sp_queue); ("index", sp.sp_index);
          ("value", sp.sp_value); ("cpu wait", sp.sp_cpu);
          ("compute", sp.sp_compute);
        ]

(* ------------------------------------------------------------------ *)
(* slo_attainment zero-recorded regression                             *)
(* ------------------------------------------------------------------ *)

(* A cell that recorded nothing attained nothing: 0.0, not a vacuous 1.0.
   (Regression test for the sm_recorded = 0 division guard.) *)
let test_slo_attainment_zero_recorded () =
  let s =
    {
      Server.sm_offered_rps = 100.0;
      sm_duration = Time_ns.sec 1;
      sm_slo = Time_ns.ms 30;
      sm_arrived = 5;
      sm_completed = 5;
      sm_recorded = 0;
      sm_max_queue = 1;
      sm_slo_ok = 0;
      sm_mark = None;
      sm_post_recorded = 0;
      sm_post_slo_ok = 0;
      sm_hist = Histogram.create ();
    }
  in
  Alcotest.(check (float 0.0))
    "zero recorded -> 0.0 attainment" 0.0
    (Server.slo_attainment s)

let () =
  Alcotest.run "memhog_blame"
    [
      ( "reqtrace",
        [
          Alcotest.test_case "exact synthetic decomposition" `Quick
            test_synthetic_exact;
          Alcotest.test_case "warmup spans leave no mark" `Quick
            test_warmup_not_committed;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_synthetic_additivity ]
      );
      ( "grid",
        [
          Alcotest.test_case "additivity and books on real traffic" `Quick
            test_grid_additivity_and_books;
          Alcotest.test_case "jobs determinism (blame included)" `Quick
            test_jobs_determinism;
          Alcotest.test_case "slowest-request trace export" `Quick
            test_blame_span_export;
        ] );
      ( "server",
        [
          Alcotest.test_case "slo attainment 0 when nothing recorded" `Quick
            test_slo_attainment_zero_recorded;
        ] );
    ]
