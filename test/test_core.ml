(* Tests for the experiment-harness core: report formatting, machine
   descriptions, and the figure generators' static parts. *)

module Report = Memhog_core.Report
module Machine = Memhog_core.Machine
module Figures = Memhog_core.Figures
module E = Memhog_core.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let render_table ?title ~header ~rows () =
  Format.asprintf "@[<v>%t@]" (fun fmt -> Report.table ?title ~header ~rows fmt ())

let test_table_layout () =
  let s =
    render_table ~title:"T" ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  check_bool "title" true (contains s "T");
  check_bool "header" true (contains s "name");
  (* all rows padded to the same width *)
  let lines = String.split_on_char '\n' s in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 then Some (String.length l) else None)
      (List.tl lines)
  in
  check_bool "aligned" true (List.length (List.sort_uniq compare widths) = 1)

let test_table_rejects_ragged_rows () =
  Alcotest.check_raises "row width" (Invalid_argument "Report.table: row width mismatch")
    (fun () -> ignore (render_table ~header:[ "a"; "b" ] ~rows:[ [ "1" ] ] ()))

let test_formatters () =
  check_str "count separators" "1,234,567" (Report.count 1234567);
  check_str "small count" "999" (Report.count 999);
  check_str "zero" "0" (Report.count 0);
  check_str "boundary 4 digits" "1,000" (Report.count 1000);
  (* the sign must not get its own separator: -123456 is "-123,456",
     never "-,123,456" *)
  check_str "negative grouping" "-123,456" (Report.count (-123456));
  check_str "negative 3 digits" "-999" (Report.count (-999));
  check_str "negative boundary" "-1,000" (Report.count (-1000));
  check_str "ratio" "1.37" (Report.ratio 1.3749);
  check_str "pct" "42.3%" (Report.pct 0.4231);
  check_str "ns opt none" "-" (Report.ns_opt None);
  check_str "ns opt some" "2.00ms" (Report.ns_opt (Some (Memhog_sim.Time_ns.ms 2)))

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let test_paper_machine () =
  let m = Machine.paper in
  check_int "75 MB of memory" (75 * 1024 * 1024) (Machine.mem_bytes m);
  let latency = Machine.fault_latency_ns m in
  (* seek + rotation + transfer of one 16 KB page: around 12 ms *)
  check_bool "latency plausible" true
    (latency > 10_000_000 && latency < 15_000_000);
  let target = Machine.compiler_target m in
  check_int "target sees all frames" 4800
    target.Memhog_compiler.Analysis.memory_pages

let test_quick_machine_scaled () =
  let q = Machine.quick in
  check_bool "smaller memory" true (Machine.mem_bytes q < Machine.mem_bytes Machine.paper);
  check_bool "keeps prefetch headroom" true
    (q.Machine.m_config.Memhog_vm.Config.desfree >= 96)

(* ------------------------------------------------------------------ *)
(* Figures (static parts only; the dynamic ones run in bench)          *)
(* ------------------------------------------------------------------ *)

let test_table1_renders () =
  let s = Figures.table1 () in
  check_bool "mentions the machine" true (contains s "SGI Origin 200");
  check_bool "mentions disks" true (contains s "Cheetah")

let test_table2_renders () =
  let s = Figures.table2 () in
  List.iter
    (fun name -> check_bool name true (contains s name))
    [ "EMBAR"; "MATVEC"; "BUK"; "CGM"; "MGRID"; "FFTPDE" ];
  check_bool "sizes in MB" true (contains s "MB")

(* ------------------------------------------------------------------ *)
(* Experiment plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_variant_mapping () =
  Alcotest.(check (list string))
    "names" [ "O"; "P"; "R"; "B" ]
    (List.map E.variant_name E.all_variants)

let test_breakdown_total () =
  let b =
    { E.b_user = 10; b_system = 20; b_io_stall = 30; b_resource_stall = 40 }
  in
  check_int "sum" 100 (E.breakdown_total b)

let test_run_produces_telemetry () =
  let wl = Memhog_workloads.Workload.find "EMBAR" in
  let r =
    E.run (E.setup ~machine:Machine.quick ~workload:wl ~variant:E.O ~iterations:1 ())
  in
  let tl = r.E.r_telemetry in
  let module Telemetry = Memhog_sim.Telemetry in
  check_bool "free series sampled" true
    (match Telemetry.summary_of tl "free" with
    | Some s -> s.Telemetry.ts_samples > 10
    | None -> false);
  check_bool "rss series sampled" true
    (Telemetry.summary_of tl "app-rss" <> None);
  check_bool "no interactive series without the task" true
    (Telemetry.summary_of tl "inter-rss" = None);
  check_bool "trace-drop counter registered" true
    (Telemetry.summary_of tl "trace-dropped" <> None);
  check_bool "full probe set off by default" true
    (Telemetry.summary_of tl "hard-faults" = None)

let () =
  Alcotest.run "memhog_core"
    [
      ( "report",
        [
          Alcotest.test_case "table layout" `Quick test_table_layout;
          Alcotest.test_case "ragged rows" `Quick test_table_rejects_ragged_rows;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "machine",
        [
          Alcotest.test_case "paper machine" `Quick test_paper_machine;
          Alcotest.test_case "quick machine" `Quick test_quick_machine_scaled;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table1" `Quick test_table1_renders;
          Alcotest.test_case "table2" `Quick test_table2_renders;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "variants" `Quick test_variant_mapping;
          Alcotest.test_case "breakdown" `Quick test_breakdown_total;
          Alcotest.test_case "telemetry" `Quick test_run_produces_telemetry;
        ] );
    ]
