(* Tests for the Domain worker pool and the parallel experiment matrix:
   order preservation, exception propagation, pool reuse, and the harness's
   bit-identical --jobs 1 / --jobs N guarantee. *)

open Memhog_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Pool.map ~jobs f xs))
    [ 1; 2; 4; 8 ]

let test_map_edge_shapes () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~jobs:4 Fun.id [ 7 ]);
  (* more jobs than work, and non-positive jobs clamp to serial *)
  Alcotest.(check (list int)) "jobs>n" [ 1; 2 ] (Pool.map ~jobs:64 Fun.id [ 1; 2 ]);
  Alcotest.(check (list int)) "jobs=0" [ 1; 2 ] (Pool.map ~jobs:0 Fun.id [ 1; 2 ])

let test_map_propagates_exceptions () =
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs (fun x -> if x = 13 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom 13 -> ())
    [ 1; 4 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "jobs" 3 (Pool.jobs pool);
      let a = Pool.run_list pool (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.run_list pool (fun x -> x * 2) [ 4; 5; 6 ] in
      Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
      Alcotest.(check (list int)) "second batch" [ 8; 10; 12 ] b)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 in
  let r = Pool.run_list pool Fun.id [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "ran" [ 1; 2; 3 ] r;
  Pool.shutdown pool;
  Pool.shutdown pool

(* Worker domains must be able to run whole simulations (the engine's
   effect handlers are per-fiber, not per-process). *)
let test_simulations_in_workers () =
  let run_sim n =
    let e = Memhog_sim.Engine.create () in
    let acc = ref 0 in
    ignore
      (Memhog_sim.Engine.spawn e ~name:"worker" (fun () ->
           for i = 1 to n do
             Memhog_sim.Engine.delay ~cat:Memhog_sim.Account.User 10;
             acc := !acc + i
           done));
    Memhog_sim.Engine.run e;
    !acc
  in
  let expected = List.map run_sim [ 10; 100; 1000; 10000 ] in
  let got = Pool.map ~jobs:4 run_sim [ 10; 100; 1000; 10000 ] in
  Alcotest.(check (list int)) "simulated in parallel" expected got

(* ------------------------------------------------------------------ *)
(* Matrix determinism                                                  *)
(* ------------------------------------------------------------------ *)

(* The harness's hard guarantee: the matrix is bit-identical however many
   worker domains build it.  Results carry live registries (probe
   closures), so the comparison goes through the canonical metrics
   serialization — the same bytes the CI gates freeze. *)
let test_matrix_deterministic_across_jobs () =
  let build jobs =
    Figures.run_matrix ~machine:Machine.quick ~workloads:[ "EMBAR" ] ~jobs ()
  in
  let render m = Metrics_io.to_string (Metrics_io.metrics_json (Metrics.of_matrix m)) in
  let serial = build 1 in
  let parallel = build 4 in
  check_int "jobs recorded (serial)" 1 serial.Figures.mx_jobs;
  check_int "jobs recorded (parallel)" 4 parallel.Figures.mx_jobs;
  Alcotest.(check string)
    "results identical" (render serial) (render parallel);
  check_bool "alone identical" true
    (serial.Figures.mx_alone = parallel.Figures.mx_alone);
  (* one timing record per cell: 4 variants + interactive-alone *)
  check_int "cell timings" 5 (List.length parallel.Figures.mx_cells);
  check_bool "wall clock recorded" true (parallel.Figures.mx_wall_s > 0.0)

let () =
  Alcotest.run "memhog_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "order" `Quick test_map_preserves_order;
          Alcotest.test_case "edge shapes" `Quick test_map_edge_shapes;
          Alcotest.test_case "exceptions" `Quick test_map_propagates_exceptions;
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "simulations in workers" `Quick
            test_simulations_in_workers;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_matrix_deterministic_across_jobs;
        ] );
    ]
