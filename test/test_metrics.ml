(* Tests for the derived-metrics layer: histogram algebra, canonical JSON
   serialization, the tolerance compare that backs the CI regression gate,
   and a golden metrics file for one small workload cell. *)

module H = Memhog_sim.Histogram
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Machine = Memhog_core.Machine
module E = Memhog_core.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let hist_of l =
  let h = H.create () in
  List.iter (fun v -> H.record h v) l;
  h

(* A value generator that exercises both the exact unit buckets (v < 32)
   and several octaves of the logarithmic range, up to simulated hours. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        int_bound 31;
        int_bound 4096;
        map (fun v -> v * 12_345) (int_bound 1_000_000);
        map (fun v -> v * 1_000_000) (int_bound 4_000_000);
      ])

let values_arb = QCheck.make ~print:QCheck.Print.(list int) QCheck.Gen.(list_size (0 -- 150) value_gen)

let nonempty_arb =
  QCheck.make ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (1 -- 150) value_gen)

(* ------------------------------------------------------------------ *)
(* Histogram properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge of two == histogram of concatenation"
    ~count:300
    (QCheck.pair values_arb values_arb)
    (fun (xs, ys) ->
      let a = hist_of xs in
      H.merge ~into:a (hist_of ys);
      H.equal a (hist_of (xs @ ys)))

let prop_percentiles_monotone =
  QCheck.Test.make ~name:"percentiles monotone and within [min,max]"
    ~count:300 nonempty_arb (fun xs ->
      let h = hist_of xs in
      let lo = Option.get (H.min_value h)
      and hi = Option.get (H.max_value h) in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ] in
      let vals = List.map (H.percentile h) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vals
      && List.for_all (fun v -> v >= lo && v <= hi) vals
      && H.percentile h 0.0 = lo
      && H.percentile h 100.0 = hi)

let prop_bucket_bounds =
  QCheck.Test.make ~name:"bucket bounds bracket the value" ~count:500
    (QCheck.make value_gen) (fun v ->
      let b = H.bucket_of v in
      H.bucket_lo b <= v && v <= H.bucket_hi b && H.bucket_of (H.bucket_lo b) = b)

let prop_restore_roundtrip =
  QCheck.Test.make ~name:"restore (to_alist h) == h" ~count:300 nonempty_arb
    (fun xs ->
      let h = hist_of xs in
      let r =
        H.restore ~sum:(H.sum h)
          ~min_v:(Option.get (H.min_value h))
          ~max_v:(Option.get (H.max_value h))
          (H.to_alist h)
      in
      H.equal h r)

let test_empty_histogram () =
  let h = H.create () in
  check_bool "empty" true (H.is_empty h);
  check_int "count" 0 (H.count h);
  check_int "p50 of empty" 0 (H.percentile h 50.0);
  check_int "p100 of empty" 0 (H.percentile h 100.0);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (H.mean h);
  check_bool "no min" true (H.min_value h = None);
  check_bool "no max" true (H.max_value h = None)

let test_exact_stats () =
  let h = hist_of [ 5; 5; 1000; 70_000 ] in
  check_int "count" 4 (H.count h);
  check_int "sum" 71_010 (H.sum h);
  check_bool "min exact" true (H.min_value h = Some 5);
  check_bool "max exact" true (H.max_value h = Some 70_000);
  check_bool "rejects negatives" true
    (match H.record h (-1) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  Mio.Obj
    [
      ("schema", Mio.Str "memhog-metrics");
      ("n", Mio.num_of_int 42);
      ("negative", Mio.num_of_int (-7));
      ("big", Mio.num_of_int 61_028_726_840);
      ("mean", Mio.num_of_float 1845345.08);
      ("flag", Mio.Bool true);
      ("nothing", Mio.Null);
      ("text", Mio.Str "quote \" backslash \\ newline \n tab \t");
      ("buckets", Mio.Arr [ Mio.Arr [ Mio.num_of_int 0; Mio.num_of_int 3 ] ]);
      ("empty_obj", Mio.Obj []);
      ("empty_arr", Mio.Arr []);
    ]

let test_json_roundtrip () =
  let text = Mio.to_string sample_doc in
  match Mio.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      check_bool "roundtrip equal" true
        (Mio.compare_json ~tolerance:0.0 sample_doc parsed = []);
      (* canonical: serializing the parse reproduces the bytes *)
      check_str "canonical bytes" text (Mio.to_string parsed)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "rejects %S" s) true
        (match Mio.parse s with Error _ -> true | Ok _ -> false))
    [ "{"; "[1,]"; "{\"a\" 1}"; "nul"; "1 2"; "\"unterminated"; "" ]

(* ------------------------------------------------------------------ *)
(* Compare semantics                                                   *)
(* ------------------------------------------------------------------ *)

let doc_with p99 =
  Mio.Obj
    [
      ( "cells",
        Mio.Arr [ Mio.Obj [ ("fault_hist", Mio.Obj [ ("p99_ns", Mio.num_of_int p99) ]) ] ] );
    ]

let test_compare_tolerance () =
  let diffs t a b = Mio.compare_json ~tolerance:t (doc_with a) (doc_with b) in
  check_int "identical at 0" 0 (List.length (diffs 0.0 100 100));
  check_int "off by one at 0" 1 (List.length (diffs 0.0 100 101));
  check_int "4% within 5%" 0 (List.length (diffs 5.0 100 104));
  check_int "10% beyond 5%" 1 (List.length (diffs 5.0 100 110));
  (match diffs 0.0 100 101 with
  | [ d ] -> check_str "path" "cells[0].fault_hist.p99_ns" d.Mio.d_path
  | _ -> Alcotest.fail "expected one diff")

let test_compare_structure () =
  let a = Mio.Obj [ ("x", Mio.num_of_int 1) ] in
  let b = Mio.Obj [ ("x", Mio.num_of_int 1); ("y", Mio.num_of_int 2) ] in
  check_bool "extra key flagged" true
    (Mio.compare_json ~tolerance:100.0 a b <> []);
  check_bool "missing key flagged" true
    (Mio.compare_json ~tolerance:100.0 b a <> []);
  check_bool "length mismatch flagged" true
    (Mio.compare_json ~tolerance:100.0
       (Mio.Arr [ Mio.Null ])
       (Mio.Arr [ Mio.Null; Mio.Null ])
     <> []);
  check_bool "type change flagged" true
    (Mio.compare_json ~tolerance:100.0 (Mio.Str "1") (Mio.num_of_int 1) <> [])

(* ------------------------------------------------------------------ *)
(* Golden metrics for one small workload cell                          *)
(* ------------------------------------------------------------------ *)

(* The same cell `memhog run EMBAR --quick -v R -n 1 --metrics F` writes
   (same setup, same label), so the golden file can be regenerated with the
   CLI. *)
let golden_metrics () =
  let wl = Memhog_workloads.Workload.find "EMBAR" in
  let r =
    E.run
      (E.setup ~machine:Machine.quick ~workload:wl ~variant:E.R ~iterations:1 ())
  in
  Metrics.of_results
    ~label:(Printf.sprintf "%s EMBAR/R" Machine.quick.Machine.m_name)
    [ r ]

(* ------------------------------------------------------------------ *)
(* The always-present disk object                                      *)
(* ------------------------------------------------------------------ *)

(* The per-request deadline counter used to be dormant outside chaos runs;
   the cell's "disk" object now carries it everywhere.  An injected
   disk-slow window must move it: inflated positioning/transfer times push
   requests past the deadline that a healthy run meets. *)
let disk_cell ?chaos () =
  let wl = Memhog_workloads.Workload.find "EMBAR" in
  let r =
    E.run
      (E.setup ~machine:Machine.quick ~workload:wl ~variant:E.R ~iterations:1
         ?chaos ())
  in
  (Metrics.of_result r).Metrics.c_disk

let test_disk_slow_moves_timeouts () =
  let healthy = disk_cell () in
  let slowed = disk_cell ~chaos:"disk-slow@0s-60s:factor=20" () in
  check_bool "disk traffic present" true
    (healthy.Metrics.dk_reads > 0 && healthy.Metrics.dk_writes > 0);
  check_bool "slow window adds deadline misses" true
    (slowed.Metrics.dk_timeouts > healthy.Metrics.dk_timeouts);
  check_bool "busy time inflated too" true
    (slowed.Metrics.dk_busy_ns > healthy.Metrics.dk_busy_ns);
  (* And the counter is the one the report table renders. *)
  let m =
    Metrics.of_results ~label:"disk-slow"
      [
        E.run
          (E.setup ~machine:Machine.quick
             ~workload:(Memhog_workloads.Workload.find "EMBAR") ~variant:E.R
             ~iterations:1 ~chaos:"disk-slow@0s-60s:factor=20" ());
      ]
  in
  match Mio.render (Mio.metrics_json m) with
  | Ok text ->
      check_bool "report renders the swap-volume table" true
        (let contains hay needle =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains text "Swap volume")
  | Error e -> Alcotest.failf "render failed: %s" e

let golden_path = "golden_metrics.json"

let test_golden_cell () =
  let text = Mio.to_string (Mio.metrics_json (golden_metrics ())) in
  let golden =
    In_channel.with_open_bin golden_path In_channel.input_all
  in
  if String.equal text golden then ()
  else
    match (Mio.parse golden, Mio.parse text) with
    | Ok g, Ok c -> (
        match Mio.compare_json ~tolerance:0.0 g c with
        | [] ->
            Alcotest.fail
              "golden mismatch: same values, different formatting (canonical \
               writer changed?)"
        | d :: _ as diffs ->
            Alcotest.failf
              "golden mismatch: %d field(s) drifted; first: %s (%s).  If the \
               change is intended, regenerate test/golden_metrics.json."
              (List.length diffs) d.Mio.d_path d.Mio.d_reason)
    | _ -> Alcotest.fail "golden mismatch and one side failed to parse"

let test_perturbed_percentile_detected () =
  let golden =
    In_channel.with_open_bin golden_path In_channel.input_all
  in
  match Mio.parse golden with
  | Error e -> Alcotest.failf "golden unparseable: %s" e
  | Ok g ->
      (* Bump the first p99 we find by 10%: a 5% gate must flag it. *)
      let bumped = ref false in
      let rec bump = function
        | Mio.Obj kvs ->
            Mio.Obj
              (List.map
                 (fun (k, v) ->
                   match v with
                   | Mio.Num (f, _) when k = "p99_ns" && (not !bumped) && f > 0.0 ->
                       bumped := true;
                       (k, Mio.num_of_float (f *. 1.1))
                   | v -> (k, bump v))
                 kvs)
        | Mio.Arr items -> Mio.Arr (List.map bump items)
        | v -> v
      in
      let perturbed = bump g in
      check_bool "found a p99 to perturb" true !bumped;
      check_bool "tolerance 5 flags a 10% drift" true
        (Mio.compare_json ~tolerance:5.0 g perturbed <> []);
      check_int "tolerance 0 flags it too" 1
        (List.length (Mio.compare_json ~tolerance:0.0 g perturbed))

let () =
  Alcotest.run "memhog_metrics"
    [
      ( "histogram",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_is_concat;
            prop_percentiles_monotone;
            prop_bucket_bounds;
            prop_restore_roundtrip;
          ]
        @ [
            Alcotest.test_case "empty" `Quick test_empty_histogram;
            Alcotest.test_case "exact stats" `Quick test_exact_stats;
          ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "compare",
        [
          Alcotest.test_case "tolerance" `Quick test_compare_tolerance;
          Alcotest.test_case "structure" `Quick test_compare_structure;
          Alcotest.test_case "perturbed percentile" `Quick
            test_perturbed_percentile_detected;
        ] );
      ( "disk",
        [
          Alcotest.test_case "disk-slow window moves the timeout counter"
            `Slow test_disk_slow_moves_timeouts;
        ] );
      ( "golden",
        [ Alcotest.test_case "EMBAR/R cell" `Quick test_golden_cell ] );
    ]
