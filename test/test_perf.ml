(* Tests for the wall-clock throughput harness: the deterministic work
   projection of a PERF document must be byte-identical at any --jobs, the
   projection must strip every informational (wall-clock/environment)
   member, and running with the ledger off must not perturb the work
   counters. *)

module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Mio = Memhog_core.Metrics_io
module Perf = Memhog_core.Perf

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Two small cells keep the test quick while still exercising the pool. *)
let cells =
  [
    { Perf.pc_workload = "MATVEC"; pc_variant = E.O };
    { Perf.pc_workload = "EMBAR"; pc_variant = E.B };
  ]

let projection ~jobs =
  Mio.to_string
    (Perf.work_projection
       (Perf.to_json (Perf.run ~cells ~machine:Machine.quick ~jobs ())))

let test_jobs_determinism () =
  check_str "--jobs 1 == --jobs 8" (projection ~jobs:1) (projection ~jobs:8)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_projection_strips_wall () =
  let t =
    Perf.run ~cells:[ List.hd cells ] ~machine:Machine.quick ~jobs:1 ()
  in
  let full = Mio.to_string (Perf.to_json t) in
  let proj = Mio.to_string (Perf.work_projection (Perf.to_json t)) in
  check_bool "full document has wall data" true (contains full "\"wall\"");
  check_bool "projection drops wall" false (contains proj "wall");
  check_bool "projection drops jobs" false (contains proj "\"jobs\"");
  check_bool "projection keeps work" true (contains proj "\"events\"")

let test_ledger_off_same_work () =
  let run ledger =
    List.hd
      (Perf.run ~cells:[ List.hd cells ] ~ledger ~machine:Machine.quick ~jobs:1
         ())
        .Perf.p_cells
  in
  let on = run true and off = run false in
  check_int "events" on.Perf.pr_events off.Perf.pr_events;
  check_int "hard faults" on.Perf.pr_hard_faults off.Perf.pr_hard_faults;
  check_int "soft faults" on.Perf.pr_soft_faults off.Perf.pr_soft_faults;
  check_int "iterations" on.Perf.pr_iterations off.Perf.pr_iterations;
  check_int "sim ns" on.Perf.pr_sim_ns off.Perf.pr_sim_ns

let () =
  Alcotest.run "memhog_perf"
    [
      ( "perf",
        [
          Alcotest.test_case "--jobs 1 == --jobs 8 (work projection)" `Quick
            test_jobs_determinism;
          Alcotest.test_case "projection strips informational members" `Quick
            test_projection_strips_wall;
          Alcotest.test_case "ledger off leaves work unchanged" `Quick
            test_ledger_off_same_work;
        ] );
    ]
