(* Tests for the fault-tolerant tiered backing store: the spec parser, the
   circuit breaker's state machine, swap-copy rescue, the shared retry
   backoff schedule, and the tiered chaos cell's byte-determinism at any
   --jobs level. *)

open Memhog_sim
module Swap = Memhog_disk.Swap
module Tiers = Memhog_vm.Tiers
module E = Memhog_core.Experiment
module Workload = Memhog_workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Spec parser                                                         *)
(* ------------------------------------------------------------------ *)

let test_spec_accepts () =
  List.iter
    (fun s ->
      match Tiers.spec_of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spec %S should parse: %s" s e)
    [
      "far";
      "zram";
      "far+zram";
      "far:latency=5us,bw=1000,timeout=500us,attempts=4,backoff=50us,cap=2ms";
      "zram:cap=16M,compress=900ns,decompress=400ns";
      "far+zram+route:thresh=1,ewma=0.3,open=0.5,min=3,hold=50ms,cap=1s";
      " far + route:min=1,hold=1ms,cap=1ms ";
    ]

let test_spec_rejects () =
  List.iter
    (fun s ->
      match Tiers.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should be rejected" s)
    [
      "";
      "route";                        (* names no tier *)
      "bogus";
      "far+far";                      (* duplicate clause *)
      "far:latency=banana";
      "far:attempts=0";
      "zram:cap=-1";
      "far+route:ewma=1.5";           (* out of (0,1] *)
      "far+route:open=0";
      "far+route:min=0";
      "far+route:hold=5ms,cap=1ms";   (* cap below hold *)
    ]

let test_spec_exn () =
  (match Tiers.spec_of_string_exn "far" with
  | _ -> ());
  Alcotest.check_raises "malformed raises"
    (Invalid_argument "unknown tier \"nope\" (expected far, zram or route)")
    (fun () -> ignore (Tiers.spec_of_string_exn "nope"))

(* ------------------------------------------------------------------ *)
(* Circuit breaker state machine                                       *)
(* ------------------------------------------------------------------ *)

(* A router over a tiny far tier with a fast retry plan and an explicit
   route: three failed samples push the EWMA (alpha 0.5) to 0.875 >= 0.5,
   so the breaker opens exactly at the third failure. *)
let breaker_spec =
  "far:latency=10us,timeout=100us,attempts=2,backoff=10us,cap=40us"
  ^ "+route:ewma=0.5,open=0.5,min=3,hold=10ms,cap=40ms"

let make_router ?chaos () =
  let e = Engine.create () in
  let swap = Swap.create ~page_bytes:16_384 () in
  let spec = Tiers.spec_of_string_exn breaker_spec in
  let t = Tiers.create ?chaos ~engine:e ~page_bytes:16_384 ~swap spec () in
  (e, t)

let demote t page =
  Tiers.demote t ~page ~pid:1 ~vpn:page ~site:0 ~priority:(Some 0)

let test_breaker_opens_on_sustained_timeouts () =
  let chaos = Chaos.create "net-partition@0s-1000s" in
  let e, t = make_router ~chaos () in
  ignore
    (Engine.spawn e ~name:"drive" (fun () ->
         check_int "starts closed" 0 (Tiers.breaker_state t);
         for p = 0 to 2 do
           demote t p
         done;
         check_int "open after 3 sustained failures" 2 (Tiers.breaker_state t);
         check_bool "far_open reported" true (Tiers.far_open t);
         check_int "one transition so far" 1 (Tiers.breaker_transitions t);
         check_int "every placement failed over" 3 (Tiers.far_failovers t);
         (* While open and inside the hold-off, placements are refused
            without touching the link: no simulated time passes. *)
         let before = Engine.now () in
         demote t 3;
         check_int "refusal is instant" before (Engine.now ());
         check_int "refusal counted as failover" 4 (Tiers.far_failovers t);
         check_int "still open" 2 (Tiers.breaker_state t)));
  Engine.run e

let test_breaker_probe_failure_reopens_with_longer_hold () =
  let chaos = Chaos.create "net-partition@0s-1000s" in
  let e, t = make_router ~chaos () in
  ignore
    (Engine.spawn e ~name:"drive" (fun () ->
         for p = 0 to 2 do
           demote t p
         done;
         check_int "open" 2 (Tiers.breaker_state t);
         (* Past the 10ms hold-off the next placement is admitted as the
            half-open probe; the link is still dead, so it re-opens. *)
         Engine.delay ~cat:Account.Sleep (Time_ns.ms 11);
         demote t 3;
         check_int "probe failure re-opens" 2 (Tiers.breaker_state t);
         check_int "open -> half-open -> open" 3 (Tiers.breaker_transitions t);
         (* The hold-off doubled to 20ms: a placement 11ms after the
            re-open is still inside it and must be refused instantly. *)
         Engine.delay ~cat:Account.Sleep (Time_ns.ms 11);
         let before = Engine.now () in
         demote t 4;
         check_int "inside doubled hold: instant refusal" before
           (Engine.now ());
         check_int "no transition from a refusal" 3
           (Tiers.breaker_transitions t)));
  Engine.run e

let test_breaker_probe_success_closes () =
  (* Partition ends at 2s; the post-heal probe must close the breaker and
     reset the hold-off. *)
  let chaos = Chaos.create "net-partition@0s-2s" in
  let e, t = make_router ~chaos () in
  ignore
    (Engine.spawn e ~name:"drive" (fun () ->
         for p = 0 to 2 do
           demote t p
         done;
         check_int "open during partition" 2 (Tiers.breaker_state t);
         Engine.delay ~cat:Account.Sleep (Time_ns.sec 3);
         demote t 3;
         check_int "post-heal probe closes" 0 (Tiers.breaker_state t);
         check_bool "far_open off" false (Tiers.far_open t);
         (* closed -> open, open -> half-open, half-open -> closed *)
         check_int "three transitions" 3 (Tiers.breaker_transitions t);
         (* And the closed breaker serves normally again. *)
         demote t 4;
         check_int "no new failovers after recovery" 3 (Tiers.far_failovers t)));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Rescue from the durable swap copy                                   *)
(* ------------------------------------------------------------------ *)

let test_fetch_rescued_from_swap_copy () =
  (* Place while healthy, partition the link, then fetch: the read must
     burn its bounded retry plan, fall back to the swap copy, and drop
     the dead placement — the fiber never blocks past the retry budget. *)
  let chaos = Chaos.create "net-partition@1s-1000s" in
  let e, t = make_router ~chaos () in
  ignore
    (Engine.spawn e ~name:"drive" (fun () ->
         demote t 0;
         check_int "placed while healthy" 1 (Tiers.placed_pages t);
         Engine.delay ~cat:Account.Sleep (Time_ns.sec 2);
         Tiers.fetch t ~page:0 ();
         check_int "rescued from the swap copy" 1 (Tiers.rescues t);
         check_int "placement dropped" 0 (Tiers.placed_pages t)));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Retry/backoff schedule (qcheck)                                     *)
(* ------------------------------------------------------------------ *)

let backoff_gen =
  QCheck.(
    triple (int_range 1 1_000_000) (int_range 0 1_000_000) (int_range 1 64))

let prop_backoff_monotone_and_clamped =
  QCheck.Test.make ~name:"backoff: monotone, never below base or above cap"
    ~count:500 backoff_gen (fun (base, extra, attempts) ->
      let cap = base + extra in
      let prev = ref 0 in
      List.for_all
        (fun attempt ->
          let d = Chaos.backoff_delay ~base ~cap ~attempt in
          let ok = d >= base && d <= cap && d >= !prev in
          prev := d;
          ok)
        (List.init attempts (fun i -> i + 1)))

let prop_backoff_deterministic =
  QCheck.Test.make ~name:"backoff: equal inputs, equal schedule" ~count:200
    backoff_gen (fun (base, extra, attempts) ->
      let cap = base + extra in
      let schedule () =
        List.init attempts (fun i ->
            Chaos.backoff_delay ~base ~cap ~attempt:(i + 1))
      in
      schedule () = schedule ())

let prop_backoff_exact_until_cap =
  QCheck.Test.make ~name:"backoff: base * 2^(attempt-1) until the cap"
    ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 1 20))
    (fun (base, attempt) ->
      let cap = max_int / 2 in
      Chaos.backoff_delay ~base ~cap ~attempt = base * (1 lsl (attempt - 1)))

let test_backoff_bounds () =
  Alcotest.check_raises "base 0" (Invalid_argument
    "Chaos.backoff_delay: base must be >= 1") (fun () ->
      ignore (Chaos.backoff_delay ~base:0 ~cap:10 ~attempt:1));
  Alcotest.check_raises "cap below base" (Invalid_argument
    "Chaos.backoff_delay: cap must be >= base") (fun () ->
      ignore (Chaos.backoff_delay ~base:10 ~cap:5 ~attempt:1));
  Alcotest.check_raises "attempt 0" (Invalid_argument
    "Chaos.backoff_delay: attempt must be >= 1") (fun () ->
      ignore (Chaos.backoff_delay ~base:10 ~cap:20 ~attempt:0));
  (* The far tier's retry plan is bounded: huge attempt numbers saturate
     at the cap instead of overflowing. *)
  check_int "saturates" 64 (Chaos.backoff_delay ~base:1 ~cap:64 ~attempt:60)

(* ------------------------------------------------------------------ *)
(* Tiered chaos cell: end-to-end + byte-determinism                    *)
(* ------------------------------------------------------------------ *)

let tiered_cell () =
  E.run
    (E.setup ~machine:Memhog_core.Machine.quick
       ~workload:(Workload.find "EMBAR") ~variant:E.R
       ~chaos:"net-partition@1s-3s" ~tiers:"far" ())

let test_partition_cell_completes () =
  let r = tiered_cell () in
  check_bool "invariants (frame table vs tier occupancy)" true
    r.E.r_invariants_ok;
  let s = Option.get r.E.r_tiers in
  let far =
    List.find
      (fun (row : Tiers.tier_summary) -> row.Tiers.ts_tier = Tiers.tier_far)
      s.Tiers.s_tiers
  in
  check_bool "partition produced timeouts" true (far.Tiers.ts_timeouts > 0);
  check_bool "demotions failed over" true (far.Tiers.ts_failovers > 0);
  check_bool "reads were rescued" true (s.Tiers.s_rescues > 0);
  check_bool "breaker cycled" true (far.Tiers.ts_breaker_transitions > 0);
  check_int "breaker closed again after the heal" 0 s.Tiers.s_breaker_state

let metrics_bytes ~jobs =
  let results =
    Memhog_core.Pool.map ~jobs (fun _ -> tiered_cell ()) [ 0; 1 ]
  in
  Memhog_core.Metrics_io.to_string
    (Memhog_core.Metrics_io.metrics_json
       (Memhog_core.Metrics.of_results ~label:"tiered chaos" results))

let test_tiered_cell_bytes_jobs_independent () =
  Alcotest.(check string)
    "jobs=1 == jobs=8" (metrics_bytes ~jobs:1) (metrics_bytes ~jobs:8)

let () =
  Alcotest.run "tiers"
    [
      ( "spec",
        [
          Alcotest.test_case "accepts well-formed specs" `Quick
            test_spec_accepts;
          Alcotest.test_case "rejects malformed specs" `Quick
            test_spec_rejects;
          Alcotest.test_case "exn variant raises" `Quick test_spec_exn;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens on sustained timeouts" `Quick
            test_breaker_opens_on_sustained_timeouts;
          Alcotest.test_case "probe failure re-opens, hold doubles" `Quick
            test_breaker_probe_failure_reopens_with_longer_hold;
          Alcotest.test_case "probe success closes" `Quick
            test_breaker_probe_success_closes;
          Alcotest.test_case "fetch rescued from swap copy" `Quick
            test_fetch_rescued_from_swap_copy;
        ] );
      ( "backoff",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_backoff_monotone_and_clamped;
            prop_backoff_deterministic;
            prop_backoff_exact_until_cap;
          ]
        @ [ Alcotest.test_case "bounds and saturation" `Quick
              test_backoff_bounds ] );
      ( "integration",
        [
          Alcotest.test_case "partition cell completes with failover" `Slow
            test_partition_cell_completes;
          Alcotest.test_case "tiered metrics byte-identical at any jobs"
            `Slow test_tiered_cell_bytes_jobs_independent;
        ] );
    ]
