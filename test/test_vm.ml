(* Tests for the virtual-memory subsystem: fault handling, free list and
   rescue, the paging daemon and the releaser, and the PagingDirected
   request interface. *)

open Memhog_sim
module Vm = Memhog_vm
module Os = Vm.Os
module As = Vm.Address_space

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_config =
  {
    Vm.Config.default with
    Vm.Config.total_frames = 64;
    min_freemem = 4;
    desfree = 8;
  }

(* Run [f] as the "main" process of a fresh machine; stop the simulation when
   it finishes so the daemons do not keep the event loop alive. *)
let with_os ?(config = small_config) f =
  (* Cap simulated time so a genuine deadlock (application blocked while the
     daemons keep polling) terminates instead of spinning forever. *)
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config ~engine () in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () -> f os)));
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      if name = "main" then raise e
      else Alcotest.failf "process %s crashed: %s" name (Printexc.to_string e));
  os

let assert_invariants os =
  List.iter
    (fun (what, ok) -> check_bool what true ok)
    (Os.check_invariants os)

(* ------------------------------------------------------------------ *)
(* Address space basics                                                *)
(* ------------------------------------------------------------------ *)

let test_segments_and_bits () =
  let asp = As.create ~pid:0 ~name:"p" () in
  let s1 = As.add_segment asp ~name:"a" ~npages:10 ~swap_base:0 ~on_swap:true in
  let s2 = As.add_segment asp ~name:"b" ~npages:5 ~swap_base:10 ~on_swap:false in
  check_int "segment placement" 10 s2.As.base_vpn;
  check_bool "find" true (As.find_segment asp ~vpn:12 == s2);
  check_bool "find first" true (As.find_segment asp ~vpn:9 == s1);
  Alcotest.check_raises "unmapped" Not_found (fun () ->
      ignore (As.find_segment asp ~vpn:15));
  check_bool "initial pte swapped" true (As.get_pte s1 ~vpn:0 = As.Swapped);
  check_bool "initial pte untouched" true (As.get_pte s2 ~vpn:10 = As.Untouched);
  check_int "swap page" 3 (As.swap_page s1 ~vpn:3);
  check_bool "bit starts clear" false (As.bit s1 ~vpn:7);
  As.set_bit s1 ~vpn:7 true;
  check_bool "bit set" true (As.bit s1 ~vpn:7);
  check_bool "neighbours untouched" false (As.bit s1 ~vpn:6 || As.bit s1 ~vpn:8);
  As.set_bit s1 ~vpn:7 false;
  check_bool "bit cleared" false (As.bit s1 ~vpn:7)

let prop_bitmap_independent =
  QCheck.Test.make ~name:"bitmap bits are independent" ~count:100
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let asp = As.create ~pid:0 ~name:"p" () in
      let seg = As.add_segment asp ~name:"s" ~npages:64 ~swap_base:0 ~on_swap:true in
      As.set_bit seg ~vpn:a true;
      As.bit seg ~vpn:a && not (As.bit seg ~vpn:b))

(* Packed-PTE roundtrip: each of the five states survives encode -> decode
   across the full frame range (0 .. Pte.max_frame), the raw tag/frame
   accessors agree with the variant view, and overwriting an in-transit
   entry drops its ivar from the side table. *)
let prop_pte_roundtrip =
  QCheck.Test.make ~name:"packed pte roundtrip" ~count:500
    QCheck.(pair (int_bound 4) (map (fun n -> abs n land As.Pte.max_frame) int))
    (fun (state, frame) ->
      let asp = As.create ~pid:0 ~name:"p" () in
      let seg =
        As.add_segment asp ~name:"s" ~npages:4 ~swap_base:0 ~on_swap:false
      in
      let vpn = 2 in
      match state with
      | 0 ->
          As.set_pte seg ~vpn As.Untouched;
          As.get_pte seg ~vpn = As.Untouched
          && As.get_raw seg ~vpn = As.Pte.untouched
      | 1 ->
          As.set_pte seg ~vpn As.Swapped;
          As.get_pte seg ~vpn = As.Swapped
          && As.get_raw seg ~vpn = As.Pte.swapped
      | 2 ->
          As.set_pte seg ~vpn (As.Resident frame);
          As.get_pte seg ~vpn = As.Resident frame
          &&
          let p = As.get_raw seg ~vpn in
          As.Pte.tag p = As.Pte.tag_resident && As.Pte.frame p = frame
      | 3 ->
          As.set_pte seg ~vpn (As.On_free_list frame);
          As.get_pte seg ~vpn = As.On_free_list frame
          &&
          let p = As.get_raw seg ~vpn in
          As.Pte.tag p = As.Pte.tag_on_free_list && As.Pte.frame p = frame
      | _ ->
          let ivar = Ivar.create () in
          As.set_pte seg ~vpn (As.In_transit ivar);
          (match As.get_pte seg ~vpn with
          | As.In_transit iv -> iv == ivar && As.transit_ivar seg ~vpn == ivar
          | _ -> false)
          && As.Pte.tag (As.get_raw seg ~vpn) = As.Pte.tag_in_transit
          && begin
               (* overwriting the in-transit word must clear the side table *)
               As.set_raw seg ~vpn (As.Pte.resident frame);
               match As.transit_ivar seg ~vpn with
               | exception Not_found -> true
               | _ -> false
             end)

(* ------------------------------------------------------------------ *)
(* Free list                                                           *)
(* ------------------------------------------------------------------ *)

let test_free_list_fifo_and_remove () =
  let frames = Array.init 8 Vm.Frame.make in
  let fl = Vm.Free_list.create frames in
  Vm.Free_list.push_tail fl frames.(3);
  Vm.Free_list.push_tail fl frames.(5);
  Vm.Free_list.push_tail fl frames.(1);
  check_int "len" 3 (Vm.Free_list.length fl);
  (* remove from the middle *)
  Vm.Free_list.remove fl frames.(5);
  check_int "len after remove" 2 (Vm.Free_list.length fl);
  check_bool "not mem" false (Vm.Free_list.mem fl frames.(5));
  (match Vm.Free_list.pop_head fl with
  | Some f -> check_int "fifo head" 3 f.Vm.Frame.idx
  | None -> Alcotest.fail "expected head");
  (match Vm.Free_list.pop_head fl with
  | Some f -> check_int "fifo next" 1 f.Vm.Frame.idx
  | None -> Alcotest.fail "expected second");
  check_bool "empty" true (Vm.Free_list.is_empty fl)

let test_free_list_mem_checks_this_list () =
  (* [mem] must test membership in the given list, not just the frame's
     own flag: a frame on some other list's backing array is no member. *)
  let frames_a = Array.init 4 Vm.Frame.make in
  let frames_b = Array.init 4 Vm.Frame.make in
  let la = Vm.Free_list.create frames_a in
  let lb = Vm.Free_list.create frames_b in
  Vm.Free_list.push_tail la frames_a.(2);
  check_bool "member of its own list" true (Vm.Free_list.mem la frames_a.(2));
  check_bool "not member of a different list" false
    (Vm.Free_list.mem lb frames_a.(2));
  check_bool "unlisted frame of the other array" false
    (Vm.Free_list.mem la frames_b.(2));
  Vm.Free_list.remove la frames_a.(2);
  check_bool "not member after remove" false (Vm.Free_list.mem la frames_a.(2))

let prop_free_list_model =
  (* Compare against a list model under random push/pop/remove. *)
  QCheck.Test.make ~name:"free list behaves like a FIFO with removal" ~count:200
    QCheck.(list (pair (int_bound 2) (int_bound 15)))
    (fun ops ->
      let frames = Array.init 16 Vm.Frame.make in
      let fl = Vm.Free_list.create frames in
      let model = ref [] in
      List.iter
        (fun (op, i) ->
          let f = frames.(i) in
          match op with
          | 0 ->
              if not f.Vm.Frame.on_free_list then begin
                Vm.Free_list.push_tail fl f;
                model := !model @ [ i ]
              end
          | 1 -> (
              match Vm.Free_list.pop_head fl with
              | Some g ->
                  (match !model with
                  | m :: rest when m = g.Vm.Frame.idx -> model := rest
                  | _ -> failwith "model mismatch on pop")
              | None -> if !model <> [] then failwith "pop missed")
          | _ ->
              if f.Vm.Frame.on_free_list then begin
                Vm.Free_list.remove fl f;
                model := List.filter (fun x -> x <> i) !model
              end)
        ops;
      let order = ref [] in
      Vm.Free_list.iter fl (fun f -> order := f.Vm.Frame.idx :: !order);
      List.rev !order = !model && Vm.Free_list.length fl = List.length !model)

(* ------------------------------------------------------------------ *)
(* Fault handling                                                      *)
(* ------------------------------------------------------------------ *)

let test_hard_then_fast () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"data" ~bytes:(10 * 16384) ~on_swap:true in
        let t0 = Engine.now () in
        check_bool "first touch is hard" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Hard);
        check_bool "hard fault takes disk time" true
          (Engine.now () - t0 > Time_ns.ms 1);
        check_bool "second touch fast" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Fast);
        check_int "rss" 1 asp.As.rss;
        check_bool "bit set" true (Os.page_resident asp ~vpn:seg.As.base_vpn);
        check_int "one hard fault" 1 asp.As.stats.Vm.Vm_stats.hard_faults)
  in
  assert_invariants os

let test_zero_fill () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"heap" ~bytes:16384 ~on_swap:false in
        let t0 = Engine.now () in
        check_bool "zero filled" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Zero_filled);
        check_bool "no disk time" true (Engine.now () - t0 < Time_ns.ms 1);
        check_int "no hard faults" 0 asp.As.stats.Vm.Vm_stats.hard_faults;
        check_int "one zero fill" 1 asp.As.stats.Vm.Vm_stats.zero_fills)
  in
  ignore (Os.swap os);
  check_int "no swap reads" 0 (Memhog_disk.Swap.page_reads (Os.swap os))

let test_write_marks_dirty_and_writeback_on_release () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:true);
        ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + 1) ~write:false);
        Os.release_request os asp
          ~vpns:[| seg.As.base_vpn; seg.As.base_vpn + 1 |];
        (* give the releaser time to write back and free *)
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 100);
        check_int "both freed" 2 asp.As.stats.Vm.Vm_stats.freed_by_releaser;
        check_int "one writeback (dirty page only)" 1
          asp.As.stats.Vm.Vm_stats.writebacks)
  in
  check_int "swap writes" 1 (Memhog_disk.Swap.page_writes (Os.swap os))

let test_memory_fills_then_daemon_steals () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"hog" in
        let seg =
          Os.map_segment os asp ~name:"big" ~bytes:(128 * 16384) ~on_swap:true
        in
        for i = 0 to 127 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        check_bool "rss bounded by memory" true (asp.As.rss <= 64);
        check_int "all pages faulted" 128 asp.As.stats.Vm.Vm_stats.hard_faults)
  in
  check_bool "daemon stole pages" true
    ((Os.global_stats os).Vm.Vm_stats.daemon_pages_stolen > 0);
  check_bool "daemon activated" true
    ((Os.global_stats os).Vm.Vm_stats.daemon_activations > 0);
  assert_invariants os

let test_soft_faults_under_pressure () =
  (* A small hot set re-touched while a stream causes daemon invalidations:
     the hot set sees soft faults (software ref bits).  Use a small scan
     batch so a full clock pass takes several daemon ticks, leaving a window
     in which invalidated hot pages are re-referenced before being stolen. *)
  let os =
    with_os ~config:{ small_config with Vm.Config.daemon_batch = 8 } (fun os ->
        let asp = Os.new_process os ~name:"hog" in
        let hot = Os.map_segment os asp ~name:"hot" ~bytes:(4 * 16384) ~on_swap:true in
        let big =
          Os.map_segment os asp ~name:"big" ~bytes:(512 * 16384) ~on_swap:true
        in
        for round = 0 to 7 do
          for i = 0 to 63 do
            (* keep the hot set genuinely hot: re-reference it between
               daemon passes, so invalidations hit pages still in use *)
            if i mod 8 = 0 then
              for h = 0 to 3 do
                ignore (Os.touch os asp ~vpn:(hot.As.base_vpn + h) ~write:false)
              done;
            ignore
              (Os.touch os asp ~vpn:(big.As.base_vpn + (round * 64) + i) ~write:false)
          done
        done;
        check_bool "invalidations happened" true
          (asp.As.stats.Vm.Vm_stats.invalidations > 0);
        check_bool "soft faults happened" true
          (asp.As.stats.Vm.Vm_stats.soft_faults > 0))
  in
  assert_invariants os

let test_hw_ref_bits_no_soft_faults () =
  let config =
    { small_config with Vm.Config.hw_ref_bits = true; daemon_batch = 8 }
  in
  let os =
    with_os ~config (fun os ->
        let asp = Os.new_process os ~name:"hog" in
        let hot = Os.map_segment os asp ~name:"hot" ~bytes:(4 * 16384) ~on_swap:true in
        let big =
          Os.map_segment os asp ~name:"big" ~bytes:(512 * 16384) ~on_swap:true
        in
        for round = 0 to 7 do
          for i = 0 to 63 do
            if i mod 8 = 0 then
              for h = 0 to 3 do
                ignore (Os.touch os asp ~vpn:(hot.As.base_vpn + h) ~write:false)
              done;
            ignore
              (Os.touch os asp ~vpn:(big.As.base_vpn + (round * 64) + i) ~write:false)
          done
        done;
        check_int "no soft faults with hardware bits" 0
          asp.As.stats.Vm.Vm_stats.soft_faults;
        check_int "no invalidations" 0 asp.As.stats.Vm.Vm_stats.invalidations)
  in
  check_bool "daemon still steals" true
    ((Os.global_stats os).Vm.Vm_stats.daemon_pages_stolen > 0)

(* ------------------------------------------------------------------ *)
(* Release / rescue                                                    *)
(* ------------------------------------------------------------------ *)

let test_release_frees_and_rescues () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(10 * 16384) ~on_swap:true in
        for i = 0 to 9 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        let free_before = Os.free_pages os in
        Os.release_request os asp
          ~vpns:(Array.init 10 (fun i -> seg.As.base_vpn + i));
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50);
        check_int "pages returned" (free_before + 10) (Os.free_pages os);
        check_int "rss dropped" 0 asp.As.rss;
        check_bool "bit cleared" false (Os.page_resident asp ~vpn:seg.As.base_vpn);
        (* rescue: contents still on the free list *)
        check_bool "rescued" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false
          = Os.Rescued Vm.Vm_stats.Releaser);
        check_int "rescue recorded" 1 asp.As.stats.Vm.Vm_stats.rescued_releaser;
        check_int "no extra hard fault" 10 asp.As.stats.Vm.Vm_stats.hard_faults)
  in
  assert_invariants os

let test_release_skipped_when_retouch () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:16384 ~on_swap:true in
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        Os.release_request os asp ~vpns:[| seg.As.base_vpn |];
        (* Touch again before the releaser acts: sets the bit, vetoing it. *)
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50);
        check_int "release skipped" 1 asp.As.stats.Vm.Vm_stats.releases_skipped;
        check_int "nothing freed" 0 asp.As.stats.Vm.Vm_stats.freed_by_releaser;
        check_int "still resident" 1 asp.As.rss)
  in
  assert_invariants os

let test_released_page_lost_after_reallocation () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:16384 ~on_swap:true in
        let big = Os.map_segment os asp ~name:"big" ~bytes:(80 * 16384) ~on_swap:true in
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        Os.release_request os asp ~vpns:[| seg.As.base_vpn |];
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50);
        (* Fill memory so the freed frame is reallocated. *)
        for i = 0 to 79 do
          ignore (Os.touch os asp ~vpn:(big.As.base_vpn + i) ~write:false)
        done;
        check_bool "touch is hard (content lost)" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Hard);
        check_bool "lost-release recorded" true
          (asp.As.stats.Vm.Vm_stats.lost_releaser >= 1))
  in
  assert_invariants os

(* ------------------------------------------------------------------ *)
(* Prefetch                                                            *)
(* ------------------------------------------------------------------ *)

let test_prefetch_then_validate () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        check_bool "prefetch fetched" true
          (Os.prefetch os asp ~vpn:seg.As.base_vpn = Os.P_fetched);
        check_bool "bit set by prefetch" true
          (Os.page_resident asp ~vpn:seg.As.base_vpn);
        (* Touch after prefetch: cheap validation fault, no I/O. *)
        let reads_before = Memhog_disk.Swap.page_reads (Os.swap os) in
        check_bool "validated" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Validated);
        check_int "no further I/O" reads_before
          (Memhog_disk.Swap.page_reads (Os.swap os));
        check_bool "redundant prefetch" true
          (Os.prefetch os asp ~vpn:seg.As.base_vpn = Os.P_already);
        check_int "useless counted" 1 asp.As.stats.Vm.Vm_stats.prefetches_useless)
  in
  assert_invariants os

let test_prefetch_dropped_when_no_free_memory () =
  let config = { small_config with Vm.Config.min_freemem = 0; desfree = 0 } in
  let os =
    with_os ~config (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(70 * 16384) ~on_swap:true in
        (* Consume every frame (64) by touching 64 pages; daemon is disabled
           by min_freemem = 0. *)
        for i = 0 to 63 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        check_int "memory exhausted" 0 (Os.free_pages os);
        check_bool "prefetch dropped" true
          (Os.prefetch os asp ~vpn:(seg.As.base_vpn + 65) = Os.P_dropped);
        check_int "dropped counted" 1 asp.As.stats.Vm.Vm_stats.prefetches_dropped)
  in
  assert_invariants os

let test_prefetch_race_with_demand_fault () =
  (* Regression: with blocking prefetches (the drop-prefetch ablation), a
     prefetch that waits for a frame gives up the as_lock; a demand fault can
     install the same page meanwhile.  The prefetch must re-check the PTE and
     surrender its frame, not overwrite the resident mapping (which leaked
     the frame and double-counted rss). *)
  let config =
    {
      small_config with
      Vm.Config.min_freemem = 0;
      desfree = 0;
      drop_prefetch_when_low = false;
    }
  in
  let os =
    with_os ~config (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(70 * 16384) ~on_swap:true in
        (* Exhaust the 64 frames so the prefetch blocks for one. *)
        for i = 0 to 63 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        check_int "memory exhausted" 0 (Os.free_pages os);
        let target = seg.As.base_vpn + 65 in
        ignore
          (Engine.spawn (Os.engine os) ~name:"prefetcher" (fun () ->
               ignore (Os.prefetch os asp ~vpn:target)));
        (* Let the prefetcher reach alloc_frame_blocking and park. *)
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 1);
        ignore
          (Engine.spawn (Os.engine os) ~name:"trigger" (fun () ->
               Engine.delay ~cat:Account.Sleep (Time_ns.ms 2);
               (* Free two frames: one each for the blocked prefetch and the
                  blocked demand fault below. *)
               Os.release_request os asp
                 ~vpns:[| seg.As.base_vpn; seg.As.base_vpn + 1 |]));
        (* Demand-fault the very page the prefetch is waiting to install. *)
        check_bool "demand fault brings the page in" true
          (Os.touch os asp ~vpn:target ~write:false = Os.Hard);
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 100);
        check_int "prefetch noticed it lost the race" 1
          asp.As.stats.Vm.Vm_stats.prefetches_useless;
        check_bool "page resident exactly once" true
          (match As.get_pte seg ~vpn:target with
          | As.Resident _ -> true
          | _ -> false))
  in
  assert_invariants os

let test_shutdown_quiesces_daemons () =
  (* [Os.shutdown] must wake the paging daemon and poison the releaser so
     [Engine.run] can drain without an explicit [Engine.stop]. *)
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         let asp = Os.new_process os ~name:"app" in
         let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
         ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
         Engine.delay ~cat:Account.Sleep (Time_ns.ms 5);
         Os.shutdown os));
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" name (Printexc.to_string e));
  check_bool "run returned without Engine.stop" false (Engine.stopped engine);
  check_int "all processes (incl. daemons) exited" 0 (Engine.live_count engine);
  List.iter
    (fun (what, ok) -> check_bool what true ok)
    (Os.check_invariants os)

(* ------------------------------------------------------------------ *)
(* Shared page info                                                    *)
(* ------------------------------------------------------------------ *)

let test_upper_limit_formula () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(10 * 16384) ~on_swap:true in
        for i = 0 to 4 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        let free = Os.free_pages os in
        check_int "current usage" 5 (Os.shared_current_usage os asp);
        (* Equation 1 with maxrss unlimited *)
        check_int "upper limit" (5 + free - 4) (Os.shared_upper_limit os asp))
  in
  ignore os

let test_maxrss_trim () =
  let config = { small_config with Vm.Config.maxrss = 16 } in
  let os =
    with_os ~config (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(32 * 16384) ~on_swap:true in
        for i = 0 to 31 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        (* Let the daemon trim. *)
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 200);
        check_bool "trimmed to maxrss" true (asp.As.rss <= 16))
  in
  assert_invariants os

let test_release_of_nonresident_pages_is_noop () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        (* release pages that were never touched *)
        Os.release_request os asp ~vpns:(Array.init 4 (fun i -> seg.As.base_vpn + i));
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50);
        check_int "all skipped" 4 asp.As.stats.Vm.Vm_stats.releases_skipped;
        check_int "nothing freed" 0 asp.As.stats.Vm.Vm_stats.freed_by_releaser)
  in
  assert_invariants os

let test_release_of_unmapped_addresses_ignored () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let _seg = Os.map_segment os asp ~name:"d" ~bytes:16384 ~on_swap:true in
        (* far outside any segment: must not crash the releaser *)
        Os.release_request os asp ~vpns:[| 10_000; 20_000 |];
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50))
  in
  assert_invariants os

let test_double_release_idempotent () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(2 * 16384) ~on_swap:true in
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        Os.release_request os asp ~vpns:[| seg.As.base_vpn |];
        Os.release_request os asp ~vpns:[| seg.As.base_vpn |];
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 50);
        check_int "freed once" 1 asp.As.stats.Vm.Vm_stats.freed_by_releaser;
        check_int "second skipped" 1 asp.As.stats.Vm.Vm_stats.releases_skipped)
  in
  assert_invariants os

let test_two_processes_isolated_page_tables () =
  let os =
    with_os (fun os ->
        let a = Os.new_process os ~name:"a" in
        let b = Os.new_process os ~name:"b" in
        let sa = Os.map_segment os a ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        let sb = Os.map_segment os b ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        ignore (Os.touch os a ~vpn:sa.As.base_vpn ~write:true);
        ignore (Os.touch os b ~vpn:sb.As.base_vpn ~write:false);
        check_int "a rss" 1 a.As.rss;
        check_int "b rss" 1 b.As.rss;
        (* same vpn numbers in different spaces are different pages *)
        check_bool "distinct swap pages" true
          (As.swap_page sa ~vpn:sa.As.base_vpn <> As.swap_page sb ~vpn:sb.As.base_vpn))
  in
  assert_invariants os

let test_shared_page_updates_are_lazy () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"a" in
        let hog = Os.new_process os ~name:"hog" in
        let sa = Os.map_segment os asp ~name:"d" ~bytes:(8 * 16384) ~on_swap:true in
        let sh = Os.map_segment os hog ~name:"d" ~bytes:(32 * 16384) ~on_swap:true in
        ignore (Os.touch os asp ~vpn:sa.As.base_vpn ~write:false);
        let limit_before = Os.shared_upper_limit os asp in
        (* another process consumes memory: asp's limit is NOT updated... *)
        for i = 0 to 31 do
          ignore (Os.touch os hog ~vpn:(sh.As.base_vpn + i) ~write:false)
        done;
        check_int "limit stale until own activity" limit_before
          (Os.shared_upper_limit os asp);
        (* ...until it has memory-system activity of its own *)
        ignore (Os.touch os asp ~vpn:(sa.As.base_vpn + 1) ~write:false);
        check_bool "limit dropped after activity" true
          (Os.shared_upper_limit os asp < limit_before))
  in
  ignore os

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tlb_basics () =
  let tlb = Vm.Tlb.create ~entries:4 in
  check_bool "cold miss" false (Vm.Tlb.access tlb ~vpn:10);
  check_bool "warm hit" true (Vm.Tlb.access tlb ~vpn:10);
  (* direct-mapped conflict: 14 maps to the same slot as 10 *)
  check_bool "conflict miss" false (Vm.Tlb.access tlb ~vpn:14);
  check_bool "victim evicted" false (Vm.Tlb.access tlb ~vpn:10);
  Vm.Tlb.invalidate tlb ~vpn:10;
  check_bool "invalidated" false (Vm.Tlb.hit tlb ~vpn:10);
  check_int "misses counted" 3 (Vm.Tlb.misses tlb);
  check_int "hits counted" 1 (Vm.Tlb.hits tlb);
  Alcotest.check_raises "power of two"
    (Invalid_argument "Tlb.create: entries must be a positive power of two")
    (fun () -> ignore (Vm.Tlb.create ~entries:3))

let test_prefetch_makes_no_tlb_entry () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        ignore (Os.prefetch os asp ~vpn:seg.As.base_vpn);
        check_bool "no TLB entry after prefetch" false
          (Vm.Tlb.hit asp.As.tlb ~vpn:seg.As.base_vpn);
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        check_bool "TLB entry after validation" true
          (Vm.Tlb.hit asp.As.tlb ~vpn:seg.As.base_vpn))
  in
  ignore os

let test_prefetch_fills_tlb_when_enabled () =
  let config = { small_config with Vm.Config.prefetch_fills_tlb = true } in
  let os =
    with_os ~config (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(4 * 16384) ~on_swap:true in
        ignore (Os.prefetch os asp ~vpn:seg.As.base_vpn);
        check_bool "TLB entry installed by prefetch (ablation)" true
          (Vm.Tlb.hit asp.As.tlb ~vpn:seg.As.base_vpn))
  in
  ignore os

let test_tlb_flush () =
  let tlb = Vm.Tlb.create ~entries:8 in
  for v = 0 to 7 do
    ignore (Vm.Tlb.access tlb ~vpn:v)
  done;
  Vm.Tlb.flush tlb;
  for v = 0 to 7 do
    check_bool "flushed" false (Vm.Tlb.hit tlb ~vpn:v)
  done

let test_prefetch_of_unmapped_address () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let _seg = Os.map_segment os asp ~name:"d" ~bytes:16384 ~on_swap:true in
        check_bool "unmapped prefetch is a harmless no-op" true
          (Os.prefetch os asp ~vpn:99_999 = Os.P_already))
  in
  ignore os

let test_daemon_invalidation_clears_tlb () =
  let os =
    with_os (fun os ->
        let asp = Os.new_process os ~name:"app" in
        let seg = Os.map_segment os asp ~name:"d" ~bytes:(128 * 16384) ~on_swap:true in
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        check_bool "entry present" true (Vm.Tlb.hit asp.As.tlb ~vpn:seg.As.base_vpn);
        (* stream to trigger daemon passes *)
        for i = 1 to 127 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        Engine.delay ~cat:Account.Sleep (Time_ns.ms 100);
        check_bool "entry invalidated under pressure" false
          (Vm.Tlb.hit asp.As.tlb ~vpn:seg.As.base_vpn))
  in
  ignore os

(* ------------------------------------------------------------------ *)
(* Invariants under random load                                        *)
(* ------------------------------------------------------------------ *)

let prop_invariants_random_load =
  QCheck.Test.make ~name:"VM invariants hold under random touch/release/prefetch"
    ~count:30
    QCheck.(pair (int_bound 1000) (list (pair (int_bound 2) (int_bound 95))))
    (fun (_seed, ops) ->
      let os =
        with_os (fun os ->
            let asp = Os.new_process os ~name:"app" in
            let seg =
              Os.map_segment os asp ~name:"d" ~bytes:(96 * 16384) ~on_swap:true
            in
            List.iter
              (fun (op, page) ->
                let vpn = seg.As.base_vpn + page in
                match op with
                | 0 -> ignore (Os.touch os asp ~vpn ~write:(page mod 3 = 0))
                | 1 -> ignore (Os.prefetch os asp ~vpn)
                | _ -> Os.release_request os asp ~vpns:[| vpn |])
              ops;
            Engine.delay ~cat:Account.Sleep (Time_ns.ms 20))
      in
      List.for_all snd (Os.check_invariants os))

let prop_invariants_two_processes =
  (* Two processes interleave touches/releases: isolation and global
     invariants must survive the contention. *)
  QCheck.Test.make
    ~name:"VM invariants hold with two competing processes" ~count:20
    QCheck.(list (tup3 bool (int_bound 2) (int_bound 63)))
    (fun ops ->
      let os =
        with_os (fun os ->
            let a = Os.new_process os ~name:"a" in
            let b = Os.new_process os ~name:"b" in
            let sa = Os.map_segment os a ~name:"d" ~bytes:(64 * 16384) ~on_swap:true in
            let sb = Os.map_segment os b ~name:"d" ~bytes:(64 * 16384) ~on_swap:true in
            List.iter
              (fun (which, op, page) ->
                let asp, seg = if which then (a, sa) else (b, sb) in
                let vpn = seg.As.base_vpn + page in
                match op with
                | 0 -> ignore (Os.touch os asp ~vpn ~write:(page mod 2 = 0))
                | 1 -> ignore (Os.prefetch os asp ~vpn)
                | _ -> Os.release_request os asp ~vpns:[| vpn |])
              ops;
            Engine.delay ~cat:Account.Sleep (Time_ns.ms 20))
      in
      List.for_all snd (Os.check_invariants os))

let () =
  Alcotest.run "memhog_vm"
    [
      ( "address-space",
        [
          Alcotest.test_case "segments and bits" `Quick test_segments_and_bits;
        ] );
      ( "free-list",
        [
          Alcotest.test_case "fifo and remove" `Quick test_free_list_fifo_and_remove;
          Alcotest.test_case "mem checks this list" `Quick
            test_free_list_mem_checks_this_list;
        ] );
      ( "faults",
        [
          Alcotest.test_case "hard then fast" `Quick test_hard_then_fast;
          Alcotest.test_case "zero fill" `Quick test_zero_fill;
          Alcotest.test_case "dirty writeback" `Quick
            test_write_marks_dirty_and_writeback_on_release;
          Alcotest.test_case "daemon steals when full" `Quick
            test_memory_fills_then_daemon_steals;
          Alcotest.test_case "soft faults under pressure" `Quick
            test_soft_faults_under_pressure;
          Alcotest.test_case "hw ref bits ablation" `Quick
            test_hw_ref_bits_no_soft_faults;
        ] );
      ( "release-rescue",
        [
          Alcotest.test_case "release of non-resident" `Quick
            test_release_of_nonresident_pages_is_noop;
          Alcotest.test_case "release of unmapped" `Quick
            test_release_of_unmapped_addresses_ignored;
          Alcotest.test_case "double release" `Quick test_double_release_idempotent;
          Alcotest.test_case "release then rescue" `Quick test_release_frees_and_rescues;
          Alcotest.test_case "release vetoed by re-touch" `Quick
            test_release_skipped_when_retouch;
          Alcotest.test_case "release lost after reallocation" `Quick
            test_released_page_lost_after_reallocation;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "prefetch then validate" `Quick test_prefetch_then_validate;
          Alcotest.test_case "dropped when memory full" `Quick
            test_prefetch_dropped_when_no_free_memory;
          Alcotest.test_case "unmapped address" `Quick
            test_prefetch_of_unmapped_address;
          Alcotest.test_case "blocking prefetch races demand fault" `Quick
            test_prefetch_race_with_demand_fault;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "daemons quiesce" `Quick
            test_shutdown_quiesces_daemons;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "basics" `Quick test_tlb_basics;
          Alcotest.test_case "prefetch makes no entry" `Quick
            test_prefetch_makes_no_tlb_entry;
          Alcotest.test_case "prefetch fills when enabled" `Quick
            test_prefetch_fills_tlb_when_enabled;
          Alcotest.test_case "daemon invalidation clears" `Quick
            test_daemon_invalidation_clears_tlb;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
        ] );
      ( "shared-page",
        [
          Alcotest.test_case "upper limit formula" `Quick test_upper_limit_formula;
          Alcotest.test_case "lazy updates" `Quick test_shared_page_updates_are_lazy;
          Alcotest.test_case "process isolation" `Quick
            test_two_processes_isolated_page_tables;
          Alcotest.test_case "maxrss trim" `Quick test_maxrss_trim;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitmap_independent;
            prop_pte_roundtrip;
            prop_free_list_model;
            prop_invariants_random_load;
            prop_invariants_two_processes;
          ]
      );
    ]
