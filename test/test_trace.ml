(* Tests for the event-trace subsystem: ring-buffer semantics, the
   disabled/null fast path, event emission from a live simulation, and the
   Chrome trace_event / CSV exporters. *)

open Memhog_sim
module Vm = Memhog_vm
module Os = Vm.Os
module As = Vm.Address_space
module Trace_export = Memhog_core.Trace_export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected substring %S in:\n%s" what sub s

(* ------------------------------------------------------------------ *)
(* Ring buffer semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_retention_and_overflow () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 5 do
    Trace.emit t ~time:(Time_ns.us i) ~stream:0 (Trace.Hard_fault { vpn = i })
  done;
  check_int "retained" 4 (Trace.length t);
  check_int "oldest overwritten" 2 (Trace.dropped t);
  let seen = ref [] in
  Trace.iter t (fun ~time:_ ~stream:_ ev ->
      match ev with
      | Trace.Hard_fault { vpn } -> seen := vpn :: !seen
      | _ -> Alcotest.fail "unexpected event kind");
  Alcotest.(check (list int)) "last four, oldest first" [ 2; 3; 4; 5 ]
    (List.rev !seen);
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t);
  check_int "dropped reset" 0 (Trace.dropped t)

let test_disabled_traces_record_nothing () =
  Trace.emit Trace.null ~time:Time_ns.zero ~stream:0 (Trace.Soft_fault { vpn = 1 });
  check_bool "null disabled" false (Trace.enabled Trace.null);
  check_int "null stays empty" 0 (Trace.length Trace.null);
  let t = Trace.create ~capacity:8 ~enabled:false () in
  Trace.emit t ~time:Time_ns.zero ~stream:0 (Trace.Soft_fault { vpn = 1 });
  check_int "disabled trace stays empty" 0 (Trace.length t);
  Trace.set_enabled t true;
  Trace.emit t ~time:Time_ns.zero ~stream:0 (Trace.Soft_fault { vpn = 1 });
  check_int "recording after enable" 1 (Trace.length t)

let test_stream_names_and_tallies () =
  let t = Trace.create ~capacity:16 () in
  Trace.set_stream_name t 3 "app";
  Trace.set_stream_name t Trace.daemon_stream "paging-daemon";
  check_bool "named" true (Trace.stream_name t 3 = Some "app");
  check_bool "unnamed" true (Trace.stream_name t 9 = None);
  Alcotest.(check (list int)) "ids sorted" [ Trace.daemon_stream; 3 ]
    (Trace.stream_ids t);
  Trace.emit t ~time:(Time_ns.us 1) ~stream:3 (Trace.Hard_fault { vpn = 7 });
  Trace.emit t ~time:(Time_ns.us 2) ~stream:3 (Trace.Hard_fault { vpn = 8 });
  Trace.emit t ~time:(Time_ns.us 3) ~stream:Trace.daemon_stream
    (Trace.Daemon_steal { vpn = 7; owner = 3 });
  Alcotest.(check (list (pair string int)))
    "tally sorted by name"
    [ ("daemon_steal", 1); ("hard_fault", 2) ]
    (Trace.counts t)

let test_event_names_and_args () =
  check_string "name" "rescue"
    (Trace.event_name
       (Trace.Rescue { vpn = 1; for_prefetch = true; site = Trace.no_site }));
  check_bool "args carry the payload" true
    (List.mem_assoc "vpn"
       (Trace.event_args (Trace.Prefetch_raced { vpn = 42; site = 3 })));
  check_string "phase name" "phase_begin"
    (Trace.event_name (Trace.Phase_begin { name = "main" }))

(* ------------------------------------------------------------------ *)
(* Events from a live simulation                                       *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Vm.Config.default with Vm.Config.total_frames = 64; min_freemem = 4; desfree = 8 }

(* Run a small workload that exercises faults, prefetches and releases with
   tracing on, and return the trace. *)
let traced_run () =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let trace = Trace.create () in
  let os = Os.create ~trace ~config:small_config ~engine () in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () ->
             let asp = Os.new_process os ~name:"app" in
             let seg =
               Os.map_segment os asp ~name:"d" ~bytes:(16 * 16384) ~on_swap:true
             in
             for i = 0 to 7 do
               ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
             done;
             ignore (Os.prefetch os asp ~vpn:(seg.As.base_vpn + 8));
             ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + 8) ~write:false);
             Os.release_request os asp
               ~vpns:(Array.init 4 (fun i -> seg.As.base_vpn + i));
             Engine.delay ~cat:Account.Sleep (Time_ns.ms 100))));
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      Alcotest.failf "%s crashed: %s" name (Printexc.to_string e));
  trace

let test_live_simulation_emits_expected_kinds () =
  let trace = traced_run () in
  check_bool "events recorded" true (Trace.length trace > 0);
  check_int "ring did not overflow" 0 (Trace.dropped trace);
  let tally = Trace.counts trace in
  let count name =
    match List.assoc_opt name tally with Some n -> n | None -> 0
  in
  check_int "hard faults" 8 (count "hard_fault");
  check_int "prefetch issued" 1 (count "prefetch_issued");
  check_int "validation fault" 1 (count "validation_fault");
  check_int "release request batches" 1 (count "release_requested");
  check_int "releaser freed" 4 (count "releaser_free");
  check_bool "daemon sampled free depth" true (count "free_depth" > 0)

let test_live_timestamps_monotonic () =
  let trace = traced_run () in
  let last = ref Time_ns.zero in
  let ok = ref true in
  Trace.iter trace (fun ~time ~stream:_ _ev ->
      if time < !last then ok := false;
      last := time);
  check_bool "timestamps nondecreasing oldest-first" true !ok

let test_disabled_trace_counts_unchanged () =
  (* The same workload with tracing off must behave identically; spot-check
     the VM stats that the traced run asserted on. *)
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  let hard = ref (-1) in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () ->
             let asp = Os.new_process os ~name:"app" in
             let seg =
               Os.map_segment os asp ~name:"d" ~bytes:(16 * 16384) ~on_swap:true
             in
             for i = 0 to 7 do
               ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
             done;
             ignore (Os.prefetch os asp ~vpn:(seg.As.base_vpn + 8));
             ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + 8) ~write:false);
             Os.release_request os asp
               ~vpns:(Array.init 4 (fun i -> seg.As.base_vpn + i));
             Engine.delay ~cat:Account.Sleep (Time_ns.ms 100);
             hard := asp.As.stats.Vm.Vm_stats.hard_faults)));
  Engine.run engine;
  check_bool "default trace is the null trace" false
    (Trace.enabled (Os.trace os));
  check_int "stats identical to the traced run" 8 !hard

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_golden () =
  let t = Trace.create ~capacity:16 () in
  Trace.set_stream_name t 0 "app";
  Trace.set_stream_name t Trace.kernel_stream "kernel";
  Trace.emit t ~time:(Time_ns.us 1) ~stream:0 (Trace.Hard_fault { vpn = 5 });
  Trace.emit t ~time:(Time_ns.us 2) ~stream:0 (Trace.Phase_begin { name = "main" });
  Trace.emit t ~time:(Time_ns.us 3) ~stream:Trace.kernel_stream
    (Trace.Free_depth { pages = 12 });
  Trace.emit t ~time:(Time_ns.us 4) ~stream:0 (Trace.Phase_end { name = "main" });
  let json = Trace_export.to_chrome_json t in
  check_contains "document shape" "{\"traceEvents\":[" json;
  check_contains "thread metadata" "\"thread_name\"" json;
  check_contains "stream label" "\"app\"" json;
  check_contains "instant event" "\"name\":\"hard_fault\",\"ph\":\"i\"" json;
  check_contains "instant scope" "\"s\":\"t\"" json;
  check_contains "event payload" "\"vpn\":5" json;
  check_contains "phase begin" "\"ph\":\"B\"" json;
  check_contains "phase end" "\"ph\":\"E\"" json;
  check_contains "counter track" "\"name\":\"free_depth\",\"ph\":\"C\"" json;
  (* simulated ns render as the format's microseconds *)
  check_contains "timestamp in us" "\"ts\":1.000" json;
  check_contains "dropped metadata" "\"metadata\":{\"dropped_events\":0}" json

let test_chrome_export_escapes_strings () =
  (* Satellite: args and names with quotes, backslashes and control
     characters must round through the shared escaper, not corrupt the
     document. *)
  let t = Trace.create ~capacity:8 () in
  Trace.set_stream_name t 0 "app \"main\"\\loop";
  Trace.emit t ~time:(Time_ns.us 1) ~stream:0
    (Trace.Phase_begin { name = "pha\"se\\one\r\n" });
  Trace.emit t ~time:(Time_ns.us 2) ~stream:0
    (Trace.Chaos_stall { who = "rel\teaser"; until = 7 });
  let json = Trace_export.to_chrome_json t in
  check_contains "escaped thread name" "app \\\"main\\\"\\\\loop" json;
  check_contains "escaped phase name" "pha\\\"se\\\\one\\r\\n" json;
  check_contains "escaped tab in arg" "rel\\teaser" json;
  (* the whole document must still parse as JSON *)
  (match Memhog_core.Metrics_io.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export does not parse: %s" e);
  (* shared escaper: Metrics_io produces the identical escape sequences *)
  check_string "one escaper" (Memhog_core.Metrics_io.escape_string "a\"b\\c\r")
    "a\\\"b\\\\c\\r"

let test_chrome_export_strict_decimal_args () =
  (* "0x2a"-shaped strings must stay strings ([int_of_string_opt] would
     turn them into the number 42). *)
  Alcotest.(check bool) "hex stays string" false
    (contains ~sub:"\"who\":66"
       (let t = Trace.create ~capacity:4 () in
        Trace.emit t ~time:Time_ns.zero ~stream:0
          (Trace.Chaos_stall { who = "0x42"; until = 1 });
        Trace_export.to_chrome_json t))

let test_chrome_export_flow_events () =
  (* A full prefetch chain and a full release chain must each produce flow
     start/step/finish rows sharing one id. *)
  let t = Trace.create ~capacity:32 () in
  let e time ev = Trace.emit t ~time ~stream:4 ev in
  e (Time_ns.us 1) (Trace.Rt_prefetch_sent { vpn = 9; site = 2 });
  e (Time_ns.us 2) (Trace.Prefetch_issued { vpn = 9; site = 2 });
  e (Time_ns.us 3) (Trace.Prefetch_done { vpn = 9; site = 2; ns = 900 });
  e (Time_ns.us 4) (Trace.Validation_fault { vpn = 9 });
  e (Time_ns.us 5) (Trace.Rt_release_sent { vpn = 9; site = 3 });
  Trace.emit t ~time:(Time_ns.us 6) ~stream:Trace.releaser_stream
    (Trace.Releaser_free { vpn = 9; owner = 4; site = 3 });
  e (Time_ns.us 7) (Trace.Hard_fault { vpn = 9 });
  let json = Trace_export.to_chrome_json t in
  check_contains "prefetch flow starts" "\"name\":\"pf-site2\",\"cat\":\"flow\",\"ph\":\"s\"" json;
  check_contains "prefetch flow finishes" "\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":1" json;
  check_contains "release flow starts" "\"name\":\"rel-site3\",\"cat\":\"flow\",\"ph\":\"s\"" json;
  check_contains "release flow steps" "\"name\":\"rel-site3\",\"cat\":\"flow\",\"ph\":\"t\"" json;
  check_contains "release flow finish id" "\"ph\":\"f\",\"bp\":\"e\",\"id\":2" json

let test_chrome_export_live_parses_shape () =
  let trace = traced_run () in
  let json = Trace_export.to_chrome_json trace in
  check_contains "document shape" "{\"traceEvents\":[" json;
  check_contains "daemon lane named" "\"paging-daemon\"" json;
  check_contains "dropped metadata" "\"metadata\":{\"dropped_events\":" json;
  check_bool "document closed" true
    (String.length json >= 3 && String.sub json (String.length json - 3) 3 = "}}\n")

let test_series_csv () =
  let tl = Telemetry.create () in
  let free = ref 0.0 and rss = ref 0.0 in
  Telemetry.register_gauge tl ~name:"free" (fun () -> !free);
  Telemetry.register_gauge tl ~name:"rss" (fun () -> !rss);
  free := 32.0;
  rss := 7.0;
  Telemetry.scrape tl ~time:(Time_ns.us 1);
  free := 16.5;
  Telemetry.scrape tl ~time:(Time_ns.us 2);
  let csv = Telemetry.to_csv tl in
  check_string "csv"
    "series,time_ns,value\n\
     free,1000,32\n\
     free,2000,16.5\n\
     rss,1000,7\n\
     rss,2000,7\n"
    csv

let test_summary_mentions_tallies () =
  let trace = traced_run () in
  let s = Trace_export.summary trace in
  check_contains "tally line" "hard_fault" s;
  check_contains "retention" "retained" s

let () =
  Alcotest.run "memhog_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "retention and overflow" `Quick
            test_ring_retention_and_overflow;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_traces_record_nothing;
          Alcotest.test_case "stream names and tallies" `Quick
            test_stream_names_and_tallies;
          Alcotest.test_case "event names and args" `Quick
            test_event_names_and_args;
        ] );
      ( "live",
        [
          Alcotest.test_case "expected event kinds" `Quick
            test_live_simulation_emits_expected_kinds;
          Alcotest.test_case "monotonic timestamps" `Quick
            test_live_timestamps_monotonic;
          Alcotest.test_case "disabled tracing changes nothing" `Quick
            test_disabled_trace_counts_unchanged;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_export_golden;
          Alcotest.test_case "chrome escaping" `Quick
            test_chrome_export_escapes_strings;
          Alcotest.test_case "strict decimal args" `Quick
            test_chrome_export_strict_decimal_args;
          Alcotest.test_case "flow events" `Quick
            test_chrome_export_flow_events;
          Alcotest.test_case "chrome live shape" `Quick
            test_chrome_export_live_parses_shape;
          Alcotest.test_case "series csv" `Quick test_series_csv;
          Alcotest.test_case "summary" `Quick test_summary_mentions_tallies;
        ] );
    ]
