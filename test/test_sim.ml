(* Tests for the discrete-event simulation kernel. *)

open Memhog_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create ~dummy:"" () in
  Heap.add h ~key:5 ~seq:1 "c";
  Heap.add h ~key:1 ~seq:2 "a";
  Heap.add h ~key:3 ~seq:3 "b";
  let pop () =
    match Heap.pop_min h with Some (_, _, v) -> v | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:0 () in
  for i = 1 to 100 do
    Heap.add h ~key:7 ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (_, _, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo on equal keys" (List.init 100 (fun i -> i + 1))
    (List.rev !out)

let test_heap_empty () =
  let h = Heap.create ~dummy:() () in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop_min h = None);
  Heap.add h ~key:1 ~seq:1 ();
  check_int "len" 1 (Heap.length h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

(* The engine stores event closures in the heap; a popped or cleared slot
   must not pin its payload (space leak across long simulations).  Track
   the payloads with weak pointers and check they get collected. *)
let test_heap_releases_popped_values () =
  let h = Heap.create ~dummy:(ref 0) () in
  let w = Weak.create 8 in
  let fill () =
    for i = 0 to 7 do
      let v = ref (i + 1000) in
      Weak.set w i (Some v);
      Heap.add h ~key:(7 - i) ~seq:i v
    done
  in
  fill ();
  let rec drain () =
    match Heap.pop_min h with Some _ -> drain () | None -> ()
  in
  drain ();
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to 7 do
    check_bool (Printf.sprintf "popped value %d collected" i) false
      (Weak.check w i)
  done

let test_heap_clear_releases_values () =
  let h = Heap.create ~dummy:(ref 0) () in
  let w = Weak.create 8 in
  let fill () =
    for i = 0 to 7 do
      let v = ref (i + 2000) in
      Weak.set w i (Some v);
      Heap.add h ~key:i ~seq:i v
    done
  in
  fill ();
  Heap.clear h;
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to 7 do
    check_bool (Printf.sprintf "cleared value %d collected" i) false
      (Weak.check w i)
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing key order" ~count:200
    QCheck.(list (pair small_int small_int))
    (fun pairs ->
      let h = Heap.create ~dummy:0 () in
      List.iteri (fun i (k, v) -> Heap.add h ~key:k ~seq:i v) pairs;
      let rec drain acc =
        match Heap.pop_min h with
        | Some (k, _, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let keys = drain [] in
      List.sort compare keys = keys)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "streams diverge" true (!same < 4)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float stays in [0,bound)" ~count:500
    QCheck.(pair small_int (float_bound_exclusive 1000.0))
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.0);
      let r = Rng.create ~seed in
      let v = Rng.float r bound in
      v >= 0.0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Samplers: Rng.int uniformity, exponential, zipf                     *)
(* ------------------------------------------------------------------ *)

(* Rejection sampling makes Rng.int unbiased for any bound, not just
   powers of two.  With 60,000 draws over a bound of 3, each value's
   expected share is 20,000 with sigma ~115; a 5% corridor is ~10 sigma,
   far beyond the reach of a seeded (deterministic) stream. *)
let test_rng_int_uniform () =
  let r = Rng.create ~seed:11 in
  let counts = Array.make 3 0 in
  let draws = 60_000 in
  for _ = 1 to draws do
    let v = Rng.int r 3 in
    counts.(v) <- counts.(v) + 1
  done;
  let expect = draws / 3 in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "value %d within 5%% of uniform (%d)" i c)
        true
        (abs (c - expect) < expect / 20))
    counts

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int stays in [0,bound) for any bound"
    ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential samples are non-negative and finite"
    ~count:500
    QCheck.(pair small_int (float_range 0.001 1e9))
    (fun (seed, mean) ->
      let r = Rng.create ~seed in
      let v = Rng.exponential r ~mean in
      v >= 0.0 && Float.is_finite v)

(* Law of large numbers at a deterministic seed: 100k draws put the
   empirical mean well within 5% of the requested mean (sigma of the
   sample mean is mean/sqrt(n) ~ 0.3%). *)
let test_exponential_empirical_mean () =
  let r = Rng.create ~seed:23 in
  let mean = 5_000.0 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean
  done;
  let emp = !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "empirical mean %.1f within 5%% of %.1f" emp mean)
    true
    (Float.abs (emp -. mean) /. mean < 0.05)

(* Zipf: lower ranks must be drawn more often.  At theta 1.2 adjacent-ish
   ranks differ by large factors (rank 0 : rank 1 : rank 3 is roughly
   1 : 0.44 : 0.19), so with 50k draws the ordering over a few spot
   ranks is deterministic for any healthy sampler. *)
let test_zipf_rank_ordering () =
  let r = Rng.create ~seed:31 in
  let z = Rng.zipf_create ~n:50 ~theta:1.2 in
  let counts = Array.make 50 0 in
  for _ = 1 to 50_000 do
    let k = Rng.zipf r z in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 beats rank 1" true (counts.(0) > counts.(1));
  check_bool "rank 1 beats rank 3" true (counts.(1) > counts.(3));
  check_bool "rank 3 beats rank 10" true (counts.(3) > counts.(10));
  check_bool "rank 10 beats rank 40" true (counts.(10) > counts.(40))

let test_zipf_theta_zero_uniform () =
  let r = Rng.create ~seed:37 in
  let z = Rng.zipf_create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let k = Rng.zipf r z in
    counts.(k) <- counts.(k) + 1
  done;
  let expect = draws / 10 in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "rank %d within 10%% of uniform (%d)" i c)
        true
        (abs (c - expect) < expect / 10))
    counts

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf draws stay in [0, n)" ~count:300
    QCheck.(triple small_int (int_range 1 1000) (float_range 0.0 3.0))
    (fun (seed, n, theta) ->
      let r = Rng.create ~seed in
      let z = Rng.zipf_create ~n ~theta in
      let k = Rng.zipf r z in
      Rng.zipf_size z = n && k >= 0 && k < n)

(* Same seed, same draw sequence — the samplers sit on top of the
   deterministic bit stream and must not smuggle in outside state. *)
let test_sampler_determinism () =
  let run () =
    let r = Rng.create ~seed:41 in
    let z = Rng.zipf_create ~n:100 ~theta:1.5 in
    List.init 1000 (fun _ ->
        (Rng.zipf r z, Rng.exponential r ~mean:250.0, Rng.int r 7))
  in
  check_bool "identical sequences" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_delay_advances_clock () =
  let e = Engine.create () in
  let final = ref (-1) in
  ignore
    (Engine.spawn e ~name:"p" (fun () ->
         Engine.delay ~cat:Account.User (Time_ns.ms 5);
         Engine.delay ~cat:Account.System (Time_ns.ms 2);
         final := Engine.now ()));
  Engine.run e;
  check_int "clock" (Time_ns.ms 7) !final;
  check_int "engine clock" (Time_ns.ms 7) (Engine.now_of e)

let test_accounting () =
  let e = Engine.create () in
  let proc =
    Engine.spawn e ~name:"p" (fun () ->
        Engine.delay ~cat:Account.User 100;
        Engine.delay ~cat:Account.System 30;
        Engine.delay ~cat:Account.Io_stall 7;
        Engine.delay ~cat:Account.User 1)
  in
  Engine.run e;
  check_int "user" 101 (Account.get proc.Engine.account Account.User);
  check_int "system" 30 (Account.get proc.Engine.account Account.System);
  check_int "io" 7 (Account.get proc.Engine.account Account.Io_stall);
  check_int "total" 138 (Account.total proc.Engine.account)

let test_interleaving_order () =
  let e = Engine.create () in
  let log = ref [] in
  let say s = log := s :: !log in
  ignore
    (Engine.spawn e ~name:"a" (fun () ->
         say "a0";
         Engine.delay ~cat:Account.User 10;
         say "a10";
         Engine.delay ~cat:Account.User 20;
         say "a30"));
  ignore
    (Engine.spawn e ~name:"b" (fun () ->
         say "b0";
         Engine.delay ~cat:Account.User 15;
         say "b15"));
  Engine.run e;
  Alcotest.(check (list string))
    "event order" [ "a0"; "b0"; "a10"; "b15"; "a30" ] (List.rev !log)

let test_spawn_child_and_self () =
  let e = Engine.create () in
  let names = ref [] in
  ignore
    (Engine.spawn e ~name:"parent" (fun () ->
         names := (Engine.self ()).Engine.name :: !names;
         let _child =
           Engine.spawn_child ~name:"child" (fun () ->
               names := (Engine.self ()).Engine.name :: !names)
         in
         Engine.delay ~cat:Account.User 1));
  Engine.run e;
  Alcotest.(check (list string)) "both ran" [ "parent"; "child" ] (List.rev !names)

let test_stop_halts () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.spawn e ~name:"ticker" (fun () ->
         while true do
           incr count;
           Engine.delay ~cat:Account.User 10
         done));
  ignore
    (Engine.spawn e ~name:"stopper" (fun () ->
         Engine.delay ~cat:Account.User 100;
         Engine.stop ()));
  Engine.run e;
  check_bool "stopped" true (Engine.stopped e);
  check_bool "ticker bounded" true (!count <= 12)

let test_crash_recorded () =
  let e = Engine.create () in
  ignore (Engine.spawn e ~name:"bad" (fun () -> failwith "boom"));
  ignore (Engine.spawn e ~name:"good" (fun () -> Engine.delay ~cat:Account.User 1));
  Engine.run e;
  match Engine.crashes e with
  | [ (name, Failure msg) ] ->
      Alcotest.(check string) "name" "bad" name;
      Alcotest.(check string) "msg" "boom" msg
  | _ -> Alcotest.fail "expected exactly one crash"

let test_not_in_simulation () =
  Alcotest.check_raises "now outside" Engine.Not_in_simulation (fun () ->
      ignore (Engine.now ()))

let test_max_time_cap () =
  let e = Engine.create ~max_time:(Time_ns.ms 1) () in
  let count = ref 0 in
  ignore
    (Engine.spawn e ~name:"runaway" (fun () ->
         while true do
           incr count;
           Engine.delay ~cat:Account.User (Time_ns.us 100)
         done));
  Engine.run e;
  check_bool "capped" true (!count <= 11)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"identical runs produce identical schedules" ~count:50
    QCheck.(pair small_int (list (int_bound 50)))
    (fun (nprocs, delays) ->
      QCheck.assume (nprocs >= 1 && nprocs <= 8);
      let run () =
        let e = Engine.create () in
        let log = ref [] in
        for p = 0 to nprocs - 1 do
          ignore
            (Engine.spawn e ~name:(string_of_int p) (fun () ->
                 List.iter
                   (fun d ->
                     Engine.delay ~cat:Account.User ((d + p) mod 17);
                     log := (p, Engine.now ()) :: !log)
                   delays))
        done;
        Engine.run e;
        !log
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Semaphore                                                           *)
(* ------------------------------------------------------------------ *)

let test_semaphore_mutual_exclusion () =
  let e = Engine.create () in
  let sem = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 0 to 4 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
           Semaphore.acquire sem;
           incr inside;
           if !inside > !max_inside then max_inside := !inside;
           Engine.delay ~cat:Account.User 10;
           decr inside;
           Semaphore.release sem))
  done;
  Engine.run e;
  check_int "never two inside" 1 !max_inside

let test_semaphore_fifo () =
  let e = Engine.create () in
  let sem = Semaphore.create 1 in
  let order = ref [] in
  ignore
    (Engine.spawn e ~name:"holder" (fun () ->
         Semaphore.acquire sem;
         Engine.delay ~cat:Account.User 100;
         Semaphore.release sem));
  for i = 1 to 3 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
           (* stagger arrivals *)
           Engine.delay ~cat:Account.User (i * 10);
           Semaphore.acquire sem;
           order := i :: !order;
           Engine.delay ~cat:Account.User 5;
           Semaphore.release sem))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !order)

let test_semaphore_wait_accounting () =
  let e = Engine.create () in
  let sem = Semaphore.create 1 in
  let waiter = ref None in
  ignore
    (Engine.spawn e ~name:"holder" (fun () ->
         Semaphore.acquire sem;
         Engine.delay ~cat:Account.User 100;
         Semaphore.release sem));
  ignore
    (Engine.spawn e ~name:"waiter" (fun () ->
         waiter := Some (Engine.self ());
         Semaphore.acquire sem;
         Semaphore.release sem));
  Engine.run e;
  let p = Option.get !waiter in
  check_int "resource stall measured" 100
    (Account.get p.Engine.account Account.Resource_stall);
  check_int "sem total wait" 100 (Semaphore.total_wait sem);
  check_int "contended count" 1 (Semaphore.contended_acquisitions sem)

let test_semaphore_counting () =
  let e = Engine.create () in
  let sem = Semaphore.create 3 in
  let concurrent = ref 0 and peak = ref 0 in
  for i = 0 to 9 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "c%d" i) (fun () ->
           Semaphore.acquire sem;
           incr concurrent;
           if !concurrent > !peak then peak := !concurrent;
           Engine.delay ~cat:Account.User 10;
           decr concurrent;
           Semaphore.release sem))
  done;
  Engine.run e;
  check_int "peak is capacity" 3 !peak

let test_semaphore_over_release () =
  let sem = Semaphore.create 1 in
  Alcotest.check_raises "over release"
    (Invalid_argument "Semaphore.release(sem): over-release") (fun () ->
      Semaphore.release sem)

(* ------------------------------------------------------------------ *)
(* Mailbox / Condition / Ivar                                          *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let box = Mailbox.create () in
  let got = ref [] in
  ignore
    (Engine.spawn e ~name:"recv" (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv box :: !got
         done));
  ignore
    (Engine.spawn e ~name:"send" (fun () ->
         Engine.delay ~cat:Account.User 10;
         Mailbox.send box 1;
         Mailbox.send box 2;
         Engine.delay ~cat:Account.User 10;
         Mailbox.send box 3));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_nonblocking_when_full () =
  let e = Engine.create () in
  let box = Mailbox.create () in
  ignore
    (Engine.spawn e ~name:"p" (fun () ->
         Mailbox.send box "x";
         check_bool "try_recv" true (Mailbox.try_recv box = Some "x");
         check_bool "empty now" true (Mailbox.try_recv box = None)));
  Engine.run e

let test_condition_broadcast () =
  let e = Engine.create () in
  let cond = Condition.create () in
  let woke = ref 0 in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
           Condition.wait cond;
           incr woke))
  done;
  ignore
    (Engine.spawn e ~name:"b" (fun () ->
         Engine.delay ~cat:Account.User 50;
         Condition.broadcast cond));
  Engine.run e;
  check_int "all woke" 3 !woke

let test_condition_signal_wakes_one () =
  let e = Engine.create () in
  let cond = Condition.create () in
  let woke = ref 0 in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
           Condition.wait cond;
           incr woke))
  done;
  ignore
    (Engine.spawn e ~name:"s" (fun () ->
         Engine.delay ~cat:Account.User 50;
         Condition.signal cond;
         Engine.delay ~cat:Account.User 50;
         Engine.stop ()));
  Engine.run e;
  check_int "one woke" 1 !woke

let test_ivar () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  ignore (Engine.spawn e ~name:"reader" (fun () -> got := Ivar.read iv));
  ignore
    (Engine.spawn e ~name:"writer" (fun () ->
         Engine.delay ~cat:Account.User 30;
         Ivar.fill iv 42));
  Engine.run e;
  check_int "read value" 42 !got;
  check_bool "filled" true (Ivar.is_filled iv);
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 1)

let test_ivar_read_after_fill_is_immediate () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  ignore
    (Engine.spawn e ~name:"p" (fun () ->
         Ivar.fill iv "v";
         let t0 = Engine.now () in
         let v = Ivar.read iv in
         Alcotest.(check string) "value" "v" v;
         check_int "no time passed" t0 (Engine.now ())));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Time / Account                                                      *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  check_int "us" 1_000 (Time_ns.us 1);
  check_int "ms" 1_000_000 (Time_ns.ms 1);
  check_int "sec" 1_000_000_000 (Time_ns.sec 1);
  Alcotest.(check (float 1e-9)) "to_sec" 1.5 (Time_ns.to_sec_f (Time_ns.ms 1500));
  Alcotest.(check string) "pp ms" "2.00ms" (Time_ns.to_string (Time_ns.ms 2))

let test_account_rejects_negative () =
  let a = Account.create () in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Account.add: negative duration") (fun () ->
      Account.add a Account.User (-1))

let test_time_pp_units () =
  Alcotest.(check string) "ns" "17ns" (Time_ns.to_string 17);
  Alcotest.(check string) "us" "4.20us" (Time_ns.to_string 4200);
  Alcotest.(check string) "s" "1.500s" (Time_ns.to_string (Time_ns.ms 1500))

let test_series_single_sample () =
  let tl = Telemetry.create () in
  Telemetry.register_gauge tl ~name:"one" (fun () -> 42.0);
  Telemetry.scrape tl ~time:5;
  check_bool "renders" true
    (String.length (Telemetry.sparkline tl "one") > 0);
  check_bool "mean = value" true
    (match Telemetry.summary_of tl "one" with
    | Some s -> s.Telemetry.ts_mean = 42.0
    | None -> false)

let test_account_busy_total () =
  let a = Account.create () in
  Account.add a Account.User 10;
  Account.add a Account.Sleep 100;
  Account.add a Account.Io_stall 5;
  check_int "total" 115 (Account.total a);
  check_int "busy excludes sleep" 15 (Account.busy_total a);
  Account.reset a;
  check_int "reset" 0 (Account.total a)

(* ------------------------------------------------------------------ *)
(* Telemetry series                                                    *)
(* ------------------------------------------------------------------ *)

let scrape_values ?capacity values =
  (* One gauge driven through a ref, scraped once per value. *)
  let tl = Telemetry.create ?capacity () in
  let v = ref 0.0 in
  Telemetry.register_gauge tl ~name:"x" (fun () -> !v);
  List.iteri
    (fun i value ->
      v := value;
      Telemetry.scrape tl ~time:(i * 100))
    values;
  tl

let test_series_stats () =
  let tl = Telemetry.create () in
  Telemetry.register_gauge tl ~name:"free" (fun () -> 0.0);
  check_bool "empty summary" true
    (match Telemetry.summary_of tl "free" with
    | Some s -> s.Telemetry.ts_samples = 0 && s.Telemetry.ts_min = 0.0
    | None -> false);
  let tl = scrape_values [ 10.0; 30.0; 20.0 ] in
  match Telemetry.summary_of tl "x" with
  | None -> Alcotest.fail "series missing"
  | Some s ->
      check_int "length" 3 s.Telemetry.ts_samples;
      check_bool "min" true (s.Telemetry.ts_min = 10.0);
      check_bool "max" true (s.Telemetry.ts_max = 30.0);
      check_bool "mean" true (s.Telemetry.ts_mean = 20.0);
      check_bool "last" true (s.Telemetry.ts_last = 20.0)

let test_series_ordering_enforced () =
  let tl = Telemetry.create () in
  Telemetry.register_gauge tl ~name:"x" (fun () -> 1.0);
  Telemetry.scrape tl ~time:100;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Telemetry.scrape: time went backwards") (fun () ->
      Telemetry.scrape tl ~time:50)

let test_series_sparkline () =
  let tl = Telemetry.create () in
  Telemetry.register_gauge tl ~name:"x" (fun () -> 0.0);
  check_bool "empty render" true (Telemetry.sparkline tl "x" = "(no samples)");
  let tl = scrape_values (List.init 100 float_of_int) in
  let line = Telemetry.sparkline ~width:10 tl "x" in
  check_bool "nonempty" true (String.length line > 0);
  (* a rising series renders with the last bucket at full height *)
  let is_suffix suffix str =
    let ls = String.length suffix and l = String.length str in
    l >= ls && String.sub str (l - ls) ls = suffix
  in
  check_bool "rises to full block" true (is_suffix "\xe2\x96\x88" line)

let prop_series_mean_bounded =
  QCheck.Test.make ~name:"series mean lies between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun values ->
      let tl = scrape_values values in
      match Telemetry.summary_of tl "x" with
      | Some s ->
          s.Telemetry.ts_min <= s.Telemetry.ts_mean +. 1e-9
          && s.Telemetry.ts_mean <= s.Telemetry.ts_max +. 1e-9
      | None -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "memhog_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "pop releases values" `Quick
            test_heap_releases_popped_values;
          Alcotest.test_case "clear releases values" `Quick
            test_heap_clear_releases_values;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "exponential mean" `Quick
            test_exponential_empirical_mean;
          Alcotest.test_case "zipf rank ordering" `Quick test_zipf_rank_ordering;
          Alcotest.test_case "zipf theta 0 uniform" `Quick
            test_zipf_theta_zero_uniform;
          Alcotest.test_case "determinism" `Quick test_sampler_determinism;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
          Alcotest.test_case "accounting" `Quick test_accounting;
          Alcotest.test_case "interleaving" `Quick test_interleaving_order;
          Alcotest.test_case "spawn child, self" `Quick test_spawn_child_and_self;
          Alcotest.test_case "stop" `Quick test_stop_halts;
          Alcotest.test_case "crash recorded" `Quick test_crash_recorded;
          Alcotest.test_case "not in simulation" `Quick test_not_in_simulation;
          Alcotest.test_case "max time cap" `Quick test_max_time_cap;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_semaphore_mutual_exclusion;
          Alcotest.test_case "fifo" `Quick test_semaphore_fifo;
          Alcotest.test_case "wait accounting" `Quick test_semaphore_wait_accounting;
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "over-release" `Quick test_semaphore_over_release;
        ] );
      ( "mailbox-cond-ivar",
        [
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mailbox try_recv" `Quick test_mailbox_nonblocking_when_full;
          Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
          Alcotest.test_case "condition signal" `Quick test_condition_signal_wakes_one;
          Alcotest.test_case "ivar" `Quick test_ivar;
          Alcotest.test_case "ivar immediate" `Quick test_ivar_read_after_fill_is_immediate;
        ] );
      ( "time-account",
        [
          Alcotest.test_case "time units" `Quick test_time_units;
          Alcotest.test_case "account busy" `Quick test_account_busy_total;
          Alcotest.test_case "account negative" `Quick test_account_rejects_negative;
          Alcotest.test_case "time pp" `Quick test_time_pp_units;
          Alcotest.test_case "series single" `Quick test_series_single_sample;
        ] );
      ( "series",
        [
          Alcotest.test_case "stats" `Quick test_series_stats;
          Alcotest.test_case "ordering" `Quick test_series_ordering_enforced;
          Alcotest.test_case "sparkline" `Quick test_series_sparkline;
        ] );
      qsuite "properties"
        [
          prop_heap_sorts;
          prop_rng_float_range;
          prop_rng_int_range;
          prop_exponential_positive;
          prop_zipf_in_range;
          prop_engine_deterministic;
          prop_series_mean_bounded;
        ];
    ]
