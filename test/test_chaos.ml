(* Tests for the deterministic fault-injection layer: the spec DSL and its
   JSON form, draw determinism, the disk retry/backoff/timeout path, the
   sequentiality fix for faulted requests, and end-to-end chaos runs with
   OS-invariant and byte-determinism checks. *)

open Memhog_sim
module Disk = Memhog_disk.Disk
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Workload = Memhog_workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_sim f =
  let e = Engine.create () in
  ignore (Engine.spawn e ~name:"t" f);
  Engine.run e;
  (match Engine.crashes e with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "%s crashed: %s" name (Printexc.to_string exn));
  e

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_all_kinds () =
  let spec =
    "disk-fault@10s-20s:p=0.5,retries=3,backoff=1ms;disk-slow@1m-2m:factor=8;"
    ^ "releaser-stall@0s-500ms;daemon-stall@1s-2s;releaser-drop@0s-1s:p=0.25;"
    ^ "pressure@5s-6s:pages=128,hold=2s;net-partition@7s-8s:p=0.9;"
    ^ "net-brownout@9s-10s:factor=10,bandwidth=0.1;net-jitter@11s-12s:latency=2ms,p=0.5"
  in
  (match Chaos.parse spec with
  | Ok t -> check_bool "plan not empty" false (Chaos.is_none t)
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  (* bare numbers are seconds *)
  (match Chaos.parse "disk-fault@10-20" with
  | Ok t ->
      check_bool "inside window" true (Chaos.disk_fault t ~now:(Time_ns.sec 15) <> None);
      check_bool "before window" true (Chaos.disk_fault t ~now:(Time_ns.sec 5) = None)
  | Error e -> Alcotest.failf "bare seconds rejected: %s" e);
  match Chaos.parse "" with
  | Ok t -> check_bool "empty spec is the empty plan" true (Chaos.is_none t)
  | Error e -> Alcotest.failf "empty spec rejected: %s" e

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" spec
      | Error _ -> ())
    [
      "explode@0s-1s";            (* unknown kind *)
      "disk-fault";               (* no window *)
      "disk-fault@5s-2s";         (* stop before start *)
      "disk-fault@0q-1q";         (* bad unit *)
      "disk-fault@0s-1s:p=2";     (* probability out of range *)
      "disk-fault@0s-1s:wat=1";   (* unknown parameter *)
      "pressure@0s-1s:pages=-4";  (* negative page count *)
      (* net-* clauses with malformed bandwidth/latency arguments must
         fail the parse, not degrade silently to the defaults *)
      "net-partition@0s-1s:p=1.5";
      "net-brownout@0s-1s";                  (* neither factor nor bw *)
      "net-brownout@0s-1s:factor=0";
      "net-brownout@0s-1s:bandwidth=0";
      "net-brownout@0s-1s:bandwidth=1.5";    (* fraction in (0,1] *)
      "net-brownout@0s-1s:bandwidth=lots";
      "net-jitter@0s-1s";                    (* latency required *)
      "net-jitter@0s-1s:latency=0";
      "net-jitter@0s-1s:latency=-5us";
      "net-jitter@0s-1s:latency=soon";
    ];
  Alcotest.check_raises "create raises on bad spec"
    (Invalid_argument "chaos spec: unknown fault kind \"explode\"")
    (fun () -> ignore (Chaos.create "explode@0s-1s"))

(* A fixed (seed, spec) pair must give the same injected schedule on every
   run; the JSON form and the seed= clause must be draw-for-draw equivalent
   to the DSL form.  The per-rule streams are stateful, so every comparison
   builds its plans fresh. *)
let draws t =
  List.init 100 (fun i ->
      Chaos.disk_fault t ~now:(Time_ns.ms (1_000 + (i * 13))))

let test_draw_determinism () =
  let spec = "disk-fault@1s-3s:p=0.5,retries=3,backoff=250us" in
  let a = draws (Chaos.create ~seed:42 spec) in
  check_bool "same seed, same schedule" true
    (a = draws (Chaos.create ~seed:42 spec));
  check_bool "different seed, different schedule" false
    (a = draws (Chaos.create ~seed:43 spec));
  check_bool "some requests fault" true (List.exists Option.is_some a);
  check_bool "some requests pass" true (List.exists Option.is_none a)

let test_json_form_equivalent () =
  let dsl = "disk-fault@1s-3s:p=0.5,retries=3,backoff=250us" in
  let json =
    {|[{"fault":"disk-fault","start":"1s","stop":"3s","p":0.5,"retries":3,"backoff":"250us"}]|}
  in
  check_bool "JSON draws match DSL draws" true
    (draws (Chaos.create ~seed:7 dsl) = draws (Chaos.create ~seed:7 json));
  (* the wrapped object form carries the seed itself *)
  let wrapped =
    {|{"seed":7,"rules":[{"fault":"disk-fault","start":"1s","stop":"3s","p":0.5,"retries":3,"backoff":"250us"}]}|}
  in
  check_bool "embedded seed matches ~seed" true
    (draws (Chaos.create ~seed:7 dsl) = draws (Chaos.create wrapped))

let test_seed_clause () =
  let spec = "disk-fault@1s-3s:p=0.5" in
  let via_arg = Chaos.create ~seed:7 spec in
  let via_clause = Chaos.create ("seed=7;" ^ spec) in
  check_bool "seed= clause equals ~seed" true (draws via_arg = draws via_clause)

(* ------------------------------------------------------------------ *)
(* Hook points (no engine needed: hooks take ~now explicitly)          *)
(* ------------------------------------------------------------------ *)

let test_disk_fault_window () =
  let t = Chaos.create "disk-fault@1s-2s:p=1,fails=2" in
  check_bool "before" true (Chaos.disk_fault t ~now:(Time_ns.ms 500) = None);
  (match Chaos.disk_fault t ~now:(Time_ns.ms 1_500) with
  | Some (2, backoff) -> check_int "default backoff" (Time_ns.us 500) backoff
  | Some (k, _) -> Alcotest.failf "expected 2 planned failures, got %d" k
  | None -> Alcotest.fail "no fault inside the window");
  check_bool "after" true (Chaos.disk_fault t ~now:(Time_ns.ms 2_500) = None)

let test_stall_windows () =
  let t = Chaos.create "releaser-stall@1s-3s;daemon-stall@2s-4s" in
  check_bool "releaser stalled" true
    (Chaos.stall_until t `Releaser ~now:(Time_ns.sec 2) = Some (Time_ns.sec 3));
  check_bool "daemon has its own window" true
    (Chaos.stall_until t `Daemon ~now:(Time_ns.ms 1_500) = None);
  check_bool "daemon stalled later" true
    (Chaos.stall_until t `Daemon ~now:(Time_ns.ms 3_500) = Some (Time_ns.sec 4));
  check_bool "outside both" true
    (Chaos.stall_until t `Releaser ~now:(Time_ns.sec 5) = None)

let test_drop_directive () =
  let t = Chaos.create "releaser-drop@1s-2s:p=1" in
  check_bool "outside window" false (Chaos.drop_directive t ~now:(Time_ns.ms 500));
  check_bool "inside window" true (Chaos.drop_directive t ~now:(Time_ns.ms 1_500));
  check_int "drop counted" 1 (Chaos.stats t).Chaos.directives_dropped

let test_pressure_spikes_sorted () =
  let t = Chaos.create "pressure@5s-6s:pages=10;pressure@1s-2s:pages=20,hold=2s" in
  match Chaos.pressure_spikes t with
  | [ (s1, p1, h1); (s2, p2, h2) ] ->
      check_int "earliest first" (Time_ns.sec 1) s1;
      check_int "its pages" 20 p1;
      check_int "its hold" (Time_ns.sec 2) h1;
      check_int "then the later spike" (Time_ns.sec 5) s2;
      check_int "default pages is 64 when omitted elsewhere" 10 p2;
      check_int "default hold" (Time_ns.sec 1) h2
  | l -> Alcotest.failf "expected 2 spikes, got %d" (List.length l)

let test_disk_slow_factor () =
  let t = Chaos.create "disk-slow@1s-2s:factor=8" in
  check_bool "idle before" true (Chaos.disk_slow_factor t ~now:(Time_ns.ms 500) = 1.0);
  check_bool "spiking inside" true
    (Chaos.disk_slow_factor t ~now:(Time_ns.ms 1_500) = 8.0);
  check_bool "idle after" true (Chaos.disk_slow_factor t ~now:(Time_ns.sec 3) = 1.0)

(* ------------------------------------------------------------------ *)
(* Disk integration: retries, backoff, timeouts, sequentiality         *)
(* ------------------------------------------------------------------ *)

let test_disk_retry_accounting () =
  let chaos = Chaos.create "disk-fault@0s-1h:p=1,fails=2,backoff=1ms" in
  let d = Disk.create ~chaos ~id:0 () in
  let clean = Disk.create ~id:1 () in
  let faulted = ref 0 and base = ref 0 in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:100 ~bytes:16_384;
        faulted := Engine.now ())
  in
  let _ =
    run_sim (fun () ->
        Disk.read clean ~block:100 ~bytes:16_384;
        base := Engine.now ())
  in
  check_int "one faulted request" 1 (Disk.faults_injected d);
  check_int "two failed attempts" 2 (Disk.retry_attempts d);
  (* exponential backoff: 1 ms + 2 ms *)
  check_int "backoff accumulated" (Time_ns.ms 3) (Disk.backoff_time d);
  (* each failed attempt also pays command overhead *)
  let p = Disk.cheetah_4lp in
  check_int "retries delay the request" (!base + Time_ns.ms 3 + (2 * p.Disk.overhead_ns))
    !faulted;
  check_int "chaos counters agree" 2 (Chaos.stats chaos).Chaos.disk_retries;
  check_int "chaos backoff agrees" (Time_ns.ms 3)
    (Chaos.stats chaos).Chaos.disk_backoff_ns

let test_disk_timeout_counted () =
  (* a 10x latency spike pushes one random 16 KB read past the 100 ms
     SCSI deadline (queueing + service ~ 120 ms) *)
  let chaos = Chaos.create "disk-slow@0s-1h:factor=10" in
  let d = Disk.create ~chaos ~id:0 () in
  let _ = run_sim (fun () -> Disk.read d ~block:100 ~bytes:16_384) in
  check_int "request timed out" 1 (Disk.timeouts d);
  check_int "slow request counted" 1 (Chaos.stats chaos).Chaos.slow_requests

let test_faulted_request_earns_no_seq_discount () =
  (* Regression: a faulted request must not be treated as sequential with
     the previous block — the head's position is unknown after an error.
     Blocks 10,11,12 back-to-back, with only the middle read faulted:
     without the fix the faulted read of block 11 would count a bogus
     sequential hit (2 total); with it only the clean read of block 12
     earns the discount. *)
  let chaos = Chaos.create "disk-fault@10ms-20ms:p=1,fails=1" in
  let d = Disk.create ~chaos ~id:0 () in
  let _ =
    run_sim (fun () ->
        Disk.read d ~block:10 ~bytes:16_384;
        check_bool "second read falls in the fault window" true
          (Engine.now () >= Time_ns.ms 10 && Engine.now () < Time_ns.ms 20);
        Disk.read d ~block:11 ~bytes:16_384;
        Disk.read d ~block:12 ~bytes:16_384)
  in
  check_int "middle read faulted" 1 (Disk.faults_injected d);
  check_int "only the clean follow-up is sequential" 1 (Disk.sequential_hits d)

(* ------------------------------------------------------------------ *)
(* End-to-end chaos runs (quick machine)                               *)
(* ------------------------------------------------------------------ *)

let run_chaos ?governor ~workload ~variant spec =
  let r =
    E.run
      (E.setup ~machine:Machine.quick ~iterations:1 ~chaos:spec ?governor
         ~workload:(Workload.find workload) ~variant ())
  in
  check_bool "OS invariants hold after the injected schedule" true
    r.E.r_invariants_ok;
  r

let chaos_stats r =
  match r.E.r_chaos with
  | Some cs -> cs
  | None -> Alcotest.fail "chaos run carries no chaos stats"

let test_experiment_releaser_outage () =
  (* drops and stalls in separate runs: a dropped directive never reaches
     the releaser, so a drop window covering the stall window would mask
     the stall entirely *)
  let r = run_chaos ~workload:"MATVEC" ~variant:E.R "releaser-drop@0s-6s:p=1" in
  let cs = chaos_stats r in
  check_bool "directives dropped" true (cs.Chaos.directives_dropped > 0);
  check_bool "run still completes" true (r.E.r_iterations >= 1);
  let r = run_chaos ~workload:"MATVEC" ~variant:E.R "releaser-stall@0s-4s" in
  let cs = chaos_stats r in
  check_bool "releaser stalled" true (cs.Chaos.releaser_stall_ns > 0)

let test_experiment_daemon_stall_and_pressure () =
  (* the O variant has no run-time layer: chaos must work at the OS level
     alone, with no governor in the loop *)
  let r =
    run_chaos ~workload:"MATVEC" ~variant:E.O
      "daemon-stall@0s-3s;pressure@500ms-2s:pages=256,hold=1s"
  in
  let cs = chaos_stats r in
  check_bool "daemon stalled" true (cs.Chaos.daemon_stall_ns > 0);
  check_int "one spike" 1 cs.Chaos.pressure_spikes;
  check_bool "frames were grabbed" true (cs.Chaos.pressure_pages > 0);
  check_bool "no runtime layer in O" true (r.E.r_runtime = None)

let test_chaos_metrics_byte_deterministic () =
  let spec = "disk-fault@1s-3s:p=0.5,retries=4;disk-slow@1s-3s:factor=8" in
  let once () =
    let r = run_chaos ~workload:"EMBAR" ~variant:E.B spec in
    Mio.to_string (Mio.metrics_json (Metrics.of_results ~label:"chaos" [ r ]))
  in
  let a = once () in
  check_bool "faults actually injected" true
    (let r = Mio.parse a in
     match r with Ok _ -> String.length a > 0 | Error e -> Alcotest.fail e);
  Alcotest.(check string) "same seed, same spec: byte-identical metrics" a (once ())

let () =
  Alcotest.run "memhog_chaos"
    [
      ( "spec",
        [
          Alcotest.test_case "all kinds parse" `Quick test_parse_all_kinds;
          Alcotest.test_case "malformed specs rejected" `Quick test_parse_errors;
          Alcotest.test_case "draw determinism" `Quick test_draw_determinism;
          Alcotest.test_case "JSON form equivalent" `Quick test_json_form_equivalent;
          Alcotest.test_case "seed clause" `Quick test_seed_clause;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "disk-fault window" `Quick test_disk_fault_window;
          Alcotest.test_case "stall windows" `Quick test_stall_windows;
          Alcotest.test_case "drop directive" `Quick test_drop_directive;
          Alcotest.test_case "pressure spikes sorted" `Quick
            test_pressure_spikes_sorted;
          Alcotest.test_case "disk-slow factor" `Quick test_disk_slow_factor;
        ] );
      ( "disk",
        [
          Alcotest.test_case "retry accounting" `Quick test_disk_retry_accounting;
          Alcotest.test_case "timeout counted" `Quick test_disk_timeout_counted;
          Alcotest.test_case "no seq discount after fault" `Quick
            test_faulted_request_earns_no_seq_discount;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "releaser outage" `Quick test_experiment_releaser_outage;
          Alcotest.test_case "daemon stall + pressure" `Quick
            test_experiment_daemon_stall_and_pressure;
          Alcotest.test_case "metrics byte-deterministic" `Quick
            test_chaos_metrics_byte_deterministic;
        ] );
    ]
