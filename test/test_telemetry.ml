(* Tests for the unified telemetry registry: ring/window scrape math
   (qcheck against a list-based reference), alert-rule hysteresis (no
   chatter on a boundary-oscillating signal), OpenMetrics well-formedness,
   alert timeline + trace emission, and byte-identical telemetry objects
   in the canonical metrics at --jobs 1 vs --jobs 8. *)

module Telemetry = Memhog_sim.Telemetry
module Trace = Memhog_sim.Trace
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Pool = Memhog_core.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* One gauge driven through a ref, scraped once per value at times
   0, 100, 200, ... *)
let scrape_values ?capacity ?trace values =
  let tl = Telemetry.create ?capacity ?trace () in
  let v = ref 0.0 in
  Telemetry.register_gauge tl ~name:"x" (fun () -> !v);
  List.iteri
    (fun i value ->
      v := value;
      Telemetry.scrape tl ~time:(i * 100))
    values;
  tl

(* ------------------------------------------------------------------ *)
(* Ring / window math vs a list-based reference                        *)
(* ------------------------------------------------------------------ *)

let last_n n l =
  let len = List.length l in
  List.filteri (fun i _ -> i >= len - n) l

let prop_ring_retains_suffix =
  QCheck.Test.make ~name:"retained window == last-capacity suffix" ~count:200
    QCheck.(
      pair (int_range 1 16)
        (list_of_size (Gen.int_range 0 64) (float_bound_inclusive 100.0)))
    (fun (capacity, values) ->
      let tl = scrape_values ~capacity values in
      let expected =
        last_n capacity (List.mapi (fun i v -> (i * 100, v)) values)
      in
      Telemetry.window tl "x" = expected)

let prop_aggregates_exact_despite_wrap =
  QCheck.Test.make
    ~name:"all-time aggregates ignore ring drops" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 64) (float_bound_inclusive 100.0)))
    (fun (capacity, values) ->
      let tl = scrape_values ~capacity values in
      match Telemetry.summary_of tl "x" with
      | None -> false
      | Some s ->
          let n = List.length values in
          let sum = List.fold_left ( +. ) 0.0 values in
          s.Telemetry.ts_samples = n
          && s.Telemetry.ts_min = List.fold_left min (List.hd values) values
          && s.Telemetry.ts_max = List.fold_left max (List.hd values) values
          && s.Telemetry.ts_last = List.nth values (n - 1)
          && Float.abs (s.Telemetry.ts_mean -. (sum /. float_of_int n))
             <= 1e-9 *. Float.max 1.0 (Float.abs sum))

let test_window_mean_over_window () =
  let tl = scrape_values ~capacity:8 [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  (* A Window_mean rule over the last 3 samples sees (4+5+6)/3 = 5. *)
  Telemetry.add_rule tl ~name:"hi" ~series:"x" ~window:3 ~signal:Telemetry.Window_mean
    ~direction:Telemetry.Above ~fire:4.9 ~clear:1.0 ();
  Telemetry.scrape tl ~time:1000;
  check_bool "fired on the windowed mean" true
    (Telemetry.active_rules tl = [ "hi" ])

(* ------------------------------------------------------------------ *)
(* Hysteresis                                                          *)
(* ------------------------------------------------------------------ *)

let prop_no_chatter_between_thresholds =
  (* Any signal strictly between clear (5) and fire (10) must produce zero
     transitions, no matter how it oscillates. *)
  QCheck.Test.make ~name:"no chatter strictly between thresholds" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 64)
        (QCheck.map (fun f -> 5.0 +. (f /. 100.0 *. 4.98) +. 0.01)
           (float_bound_inclusive 100.0)))
    (fun values ->
      let tl = Telemetry.create () in
      let v = ref (List.hd values) in
      Telemetry.register_gauge tl ~name:"x" (fun () -> !v);
      Telemetry.add_rule tl ~name:"r" ~series:"x" ~signal:Telemetry.Last
        ~direction:Telemetry.Above ~fire:10.0 ~clear:5.0 ();
      List.iteri
        (fun i value ->
          v := value;
          Telemetry.scrape tl ~time:(i * 100))
        values;
      Telemetry.alerts tl = [])

let test_hysteresis_cycle () =
  let trace = Trace.create () in
  let tl = Telemetry.create ~trace () in
  let v = ref 0.0 in
  Telemetry.register_gauge tl ~name:"x" (fun () -> !v);
  Telemetry.add_rule tl ~name:"r" ~series:"x" ~signal:Telemetry.Last
    ~direction:Telemetry.Above ~fire:10.0 ~clear:5.0 ();
  let step t value =
    v := value;
    Telemetry.scrape tl ~time:t
  in
  step 0 0.0;       (* below everything: inactive *)
  step 100 12.0;    (* crosses fire: one fire *)
  step 200 8.0;     (* between thresholds: stays active *)
  step 300 11.0;    (* re-crosses fire while active: no second fire *)
  step 400 4.0;     (* crosses clear: one clear *)
  step 500 6.0;     (* between thresholds: stays inactive *)
  let timeline =
    List.map
      (fun (a : Telemetry.alert) ->
        (a.Telemetry.al_time, a.Telemetry.al_fired))
      (Telemetry.alerts tl)
  in
  check_bool "one fire then one clear" true
    (timeline = [ (100, true); (400, false) ]);
  check_bool "inactive at the end" true (Telemetry.active_rules tl = []);
  (* Both transitions landed in the trace as typed events. *)
  let fires = ref 0 and clears = ref 0 in
  Trace.iter trace (fun ~time:_ ~stream event ->
      check_int "alert stream" Trace.telemetry_stream stream;
      match event with
      | Trace.Alert_fire { rule; value_ppm } ->
          check_str "fire rule" "r" rule;
          check_int "fire value (ppm)" 12_000_000 value_ppm;
          incr fires
      | Trace.Alert_clear { rule; value_ppm } ->
          check_str "clear rule" "r" rule;
          check_int "clear value (ppm)" 4_000_000 value_ppm;
          incr clears
      | _ -> ());
  check_int "one fire event" 1 !fires;
  check_int "one clear event" 1 !clears

let test_thresholds_must_separate () =
  let tl = Telemetry.create () in
  Telemetry.register_gauge tl ~name:"x" (fun () -> 0.0);
  Alcotest.check_raises "Above needs clear < fire"
    (Invalid_argument "Telemetry.add_rule: Above needs clear < fire")
    (fun () ->
      Telemetry.add_rule tl ~name:"r" ~series:"x" ~signal:Telemetry.Last
        ~direction:Telemetry.Above ~fire:5.0 ~clear:5.0 ())

let test_window_ratio_burn_rate () =
  let tl = Telemetry.create () in
  let missed = ref 0.0 and recorded = ref 0.0 in
  Telemetry.register_counter tl ~name:"missed" (fun () -> !missed);
  Telemetry.register_counter tl ~name:"recorded" (fun () -> !recorded);
  Telemetry.add_rule tl ~name:"burn" ~series:"missed" ~window:3
    ~signal:(Telemetry.Window_ratio "recorded") ~direction:Telemetry.Above
    ~fire:0.5 ~clear:0.1 ();
  let step t dm dr =
    missed := !missed +. dm;
    recorded := !recorded +. dr;
    Telemetry.scrape tl ~time:t
  in
  step 0 0.0 10.0;
  step 100 0.0 10.0;
  step 200 0.0 10.0;
  check_bool "healthy: inactive" true (Telemetry.active_rules tl = []);
  (* The window spans 3 scrape intervals = 30 recorded; 16 of them miss:
     ratio 16/30 = 0.53 >= 0.5. *)
  step 300 8.0 10.0;
  step 400 8.0 10.0;
  check_bool "burning: active" true (Telemetry.active_rules tl = [ "burn" ]);
  (* Recovery: the window slides past the burst, ratio back under 0.1. *)
  step 500 0.0 10.0;
  step 600 0.0 10.0;
  step 700 0.0 10.0;
  check_bool "recovered: cleared" true (Telemetry.active_rules tl = [])

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_well_formed () =
  let trace = Trace.create () in
  let tl = Telemetry.create ~trace () in
  let v = ref 0.0 in
  Telemetry.register_gauge tl ~help:"free frames" ~name:"free" (fun () -> !v);
  Telemetry.register_counter tl ~name:"hard-faults" (fun () -> !v *. 2.0);
  Telemetry.add_rule tl ~name:"starved" ~series:"free" ~signal:Telemetry.Last
    ~direction:Telemetry.Below ~fire:1.0 ~clear:2.0 ();
  v := 10.0;
  Telemetry.scrape tl ~time:0;
  v := 0.5;
  Telemetry.scrape tl ~time:100;
  let text = Telemetry.to_openmetrics tl in
  let lines = String.split_on_char '\n' text in
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  check_bool "gauge TYPE line" true (has "# TYPE memhog_free gauge");
  check_bool "gauge HELP line" true (has "# HELP memhog_free free frames");
  check_bool "counter TYPE line" true
    (has "# TYPE memhog_hard_faults counter");
  check_bool "counter sample suffixed _total" true
    (has "memhog_hard_faults_total ");
  check_bool "bare counter name never sampled" true
    (not
       (List.exists
          (fun l ->
            String.length l >= 19
            && String.sub l 0 19 = "memhog_hard_faults "
            && l.[7] <> '#')
          lines));
  check_bool "alert gauge with rule label" true
    (has "memhog_alert_active{rule=\"starved\"} 1");
  check_bool "EOF terminated" true
    (let n = String.length text in
     n >= 6 && String.sub text (n - 6) 6 = "# EOF\n")

(* ------------------------------------------------------------------ *)
(* The null registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_null_registry_inert () =
  let tl = Telemetry.null in
  check_bool "disabled" true (not (Telemetry.enabled tl));
  Telemetry.register_gauge tl ~name:"x" (fun () ->
      Alcotest.fail "null registry must never call a probe");
  Telemetry.scrape tl ~time:0;
  check_int "no scrapes" 0 (Telemetry.scrapes tl);
  check_bool "no series" true (Telemetry.series_names tl = []);
  check_bool "no summaries" true (Telemetry.summaries tl = [])

(* ------------------------------------------------------------------ *)
(* Jobs determinism of the telemetry metrics object                    *)
(* ------------------------------------------------------------------ *)

let run_cell () =
  let wl = Memhog_workloads.Workload.find "EMBAR" in
  E.run
    (E.setup ~machine:Machine.quick ~workload:wl ~variant:E.B ~iterations:1
       ~tiers:"far" ~telemetry:true ())

(* The canonical metrics document embeds the telemetry object, so string
   equality here is the acceptance criterion "the telemetry object is
   byte-identical at --jobs 1 and --jobs 8" (and then some). *)
let render r =
  Mio.to_string (Mio.metrics_json (Metrics.of_results ~label:"telemetry" [ r ]))

let test_jobs_determinism () =
  let serial = render (run_cell ()) in
  let pooled = Pool.map ~jobs:8 (fun () -> render (run_cell ())) [ (); () ] in
  List.iteri
    (fun i s -> check_str (Printf.sprintf "pooled replica %d" i) serial s)
    pooled;
  check_bool "document mentions the telemetry object" true
    (let re = "\"telemetry\":" in
     let rec find i =
       i + String.length re <= String.length serial
       && (String.sub serial i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_full_probe_set_registered () =
  let r = run_cell () in
  let tl = r.E.r_telemetry in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "series %s registered" name) true
        (Telemetry.summary_of tl name <> None))
    [
      "free"; "app-rss"; "app-limit"; "trace-dropped"; "hard-faults";
      "refaults"; "swap-queue"; "swap-busy-ns"; "swap-timeouts";
      "breaker-state"; "breaker-transitions"; "tier-rescues";
      "far-failovers"; "release-buffer"; "gov-level"; "gov-transitions";
    ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "memhog_telemetry"
    [
      ( "rules",
        [
          Alcotest.test_case "windowed mean" `Quick test_window_mean_over_window;
          Alcotest.test_case "hysteresis cycle + trace" `Quick
            test_hysteresis_cycle;
          Alcotest.test_case "threshold separation" `Quick
            test_thresholds_must_separate;
          Alcotest.test_case "burn-rate ratio" `Quick
            test_window_ratio_burn_rate;
        ] );
      ( "export",
        [
          Alcotest.test_case "openmetrics well-formed" `Quick
            test_openmetrics_well_formed;
          Alcotest.test_case "null registry inert" `Quick
            test_null_registry_inert;
        ] );
      ( "harness",
        [
          Alcotest.test_case "--jobs 1 == --jobs 8 (byte-identical)" `Quick
            test_jobs_determinism;
          Alcotest.test_case "full probe set registered" `Quick
            test_full_probe_set_registered;
        ] );
      qsuite "properties"
        [
          prop_ring_retains_suffix;
          prop_aggregates_exact_despite_wrap;
          prop_no_chatter_between_thresholds;
        ];
    ]
