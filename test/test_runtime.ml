(* Tests for the run-time layer: the priority release buffer, the request
   filters, and the two release policies. *)

open Memhog_sim
module Vm = Memhog_vm
module Os = Vm.Os
module As = Vm.Address_space
module Runtime = Memhog_runtime.Runtime
module Release_buffer = Memhog_runtime.Release_buffer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Release buffer                                                      *)
(* ------------------------------------------------------------------ *)

let test_buffer_lowest_priority_first () =
  let b = Release_buffer.create () in
  Release_buffer.add b ~tag:1 ~priority:2 ~vpn:100;
  Release_buffer.add b ~tag:2 ~priority:1 ~vpn:200;
  Release_buffer.add b ~tag:1 ~priority:2 ~vpn:101;
  Release_buffer.add b ~tag:2 ~priority:1 ~vpn:201;
  check_int "total" 4 (Release_buffer.total b);
  check_bool "lowest" true (Release_buffer.lowest_priority b = Some 1);
  let first = Release_buffer.pop_lowest b ~max:2 in
  Alcotest.(check (array (triple int int int)))
    "priority-1 pages first" [| (200, 2, 1); (201, 2, 1) |] first;
  let second = Release_buffer.pop_lowest b ~max:10 in
  Alcotest.(check (array (triple int int int)))
    "then priority-2 pages" [| (100, 1, 2); (101, 1, 2) |] second;
  check_int "drained" 0 (Release_buffer.total b)

let test_buffer_round_robin_same_priority () =
  let b = Release_buffer.create () in
  (* two tags at the same priority: drain alternates between them *)
  List.iter (fun v -> Release_buffer.add b ~tag:1 ~priority:1 ~vpn:v) [ 10; 11; 12 ];
  List.iter (fun v -> Release_buffer.add b ~tag:2 ~priority:1 ~vpn:v) [ 20; 21; 22 ];
  let out = Release_buffer.pop_lowest b ~max:4 in
  Alcotest.(check (array (triple int int int)))
    "round robin" [| (10, 1, 1); (20, 2, 1); (11, 1, 1); (21, 2, 1) |] out

let test_buffer_respects_max () =
  let b = Release_buffer.create () in
  for v = 0 to 99 do
    Release_buffer.add b ~tag:(v mod 3) ~priority:((v mod 3) + 1) ~vpn:v
  done;
  let out = Release_buffer.pop_lowest b ~max:10 in
  check_int "max respected" 10 (Array.length out);
  check_int "rest stays" 90 (Release_buffer.total b)

let test_buffer_rejects_zero_priority () =
  let b = Release_buffer.create () in
  Alcotest.check_raises "zero priority"
    (Invalid_argument "Release_buffer.add: priority must be > 0") (fun () ->
      Release_buffer.add b ~tag:1 ~priority:0 ~vpn:1);
  Alcotest.check_raises "negative priority"
    (Invalid_argument "Release_buffer.add: priority must be > 0") (fun () ->
      Release_buffer.add b ~tag:1 ~priority:(-3) ~vpn:1)

let test_buffer_same_tag_pop_flush_interleaved () =
  (* pop_lowest and flush_tag interleaved on one tag: a partial pop must
     leave the tag's queue intact (FIFO), flush must return exactly the
     remainder, and the flushed tag must be reusable at a new priority. *)
  let b = Release_buffer.create () in
  List.iter (fun v -> Release_buffer.add b ~tag:1 ~priority:2 ~vpn:v) [ 10; 11; 12 ];
  Alcotest.(check (array (triple int int int))) "partial pop" [| (10, 1, 2) |]
    (Release_buffer.pop_lowest b ~max:1);
  List.iter (fun v -> Release_buffer.add b ~tag:1 ~priority:2 ~vpn:v) [ 13; 14 ];
  Alcotest.(check (array int)) "flush returns the rest in order"
    [| 11; 12; 13; 14 |]
    (Release_buffer.flush_tag b ~tag:1);
  check_int "empty after flush" 0 (Release_buffer.total b);
  Release_buffer.add b ~tag:1 ~priority:1 ~vpn:99;
  Alcotest.(check (array (triple int int int)))
    "reused tag pops at its new priority" [| (99, 1, 1) |]
    (Release_buffer.pop_lowest b ~max:4)

let test_buffer_preserves_site_ids () =
  (* Regression for the ledger's site attribution: pages from two sites
     interleaved at the same priority must each come back stamped with the
     tag they were added under — through partial pops, a mid-stream flush
     of one tag, and refills of the other. *)
  let b = Release_buffer.create () in
  let site_of = Hashtbl.create 16 in
  let add ~tag vpn =
    Hashtbl.replace site_of vpn tag;
    Release_buffer.add b ~tag ~priority:1 ~vpn
  in
  List.iter (fun v -> add ~tag:3 v) [ 30; 31 ];
  List.iter (fun v -> add ~tag:5 v) [ 50; 51 ];
  List.iter (fun v -> add ~tag:3 v) [ 32 ];
  let check_pairs what pairs =
    Array.iter
      (fun (v, tag, _prio) ->
        check_int (Printf.sprintf "%s: vpn %d keeps its site" what v)
          (Hashtbl.find site_of v) tag)
      pairs
  in
  check_pairs "first pop" (Release_buffer.pop_lowest b ~max:3);
  (* flush one site; its pages report under the flushed tag by construction *)
  let flushed = Release_buffer.flush_tag b ~tag:5 in
  Array.iter
    (fun v -> check_int "flushed page belonged to site 5" 5
        (Hashtbl.find site_of v))
    flushed;
  List.iter (fun v -> add ~tag:5 v) [ 52 ];
  check_pairs "after flush and refill" (Release_buffer.pop_lowest b ~max:10);
  check_int "all drained" 0 (Release_buffer.total b)

let test_buffer_flush_tag () =
  let b = Release_buffer.create () in
  List.iter (fun v -> Release_buffer.add b ~tag:1 ~priority:2 ~vpn:v) [ 10; 11; 12 ];
  List.iter (fun v -> Release_buffer.add b ~tag:2 ~priority:1 ~vpn:v) [ 20; 21 ];
  Alcotest.(check (array int)) "flushed FIFO" [| 10; 11; 12 |]
    (Release_buffer.flush_tag b ~tag:1);
  check_int "others stay" 2 (Release_buffer.total b);
  Alcotest.(check (array int)) "missing tag" [||] (Release_buffer.flush_tag b ~tag:7);
  Alcotest.(check (array (triple int int int))) "rest pops"
    [| (20, 2, 1); (21, 2, 1) |]
    (Release_buffer.pop_lowest b ~max:10);
  (* a flushed tag is fully forgotten: it may be reused at a new priority *)
  Release_buffer.add b ~tag:1 ~priority:3 ~vpn:99;
  check_int "tag reusable after flush" 1 (Release_buffer.total b)

let prop_buffer_conserves_pages =
  QCheck.Test.make ~name:"buffer: pages in = pages out" ~count:100
    QCheck.(list (pair (int_bound 7) (int_bound 1000)))
    (fun adds ->
      let b = Release_buffer.create () in
      let n = ref 0 in
      List.iter
        (fun (tag, vpn) ->
          Release_buffer.add b ~tag ~priority:((tag mod 3) + 1) ~vpn;
          incr n)
        adds;
      let out = ref [] in
      let rec drain () =
        let batch = Release_buffer.pop_lowest b ~max:7 in
        if Array.length batch > 0 then begin
          out := Array.to_list batch @ !out;
          drain ()
        end
      in
      drain ();
      List.length !out = !n && Release_buffer.total b = 0)

let prop_buffer_priority_order =
  QCheck.Test.make ~name:"buffer: drain priority never decreases" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 300) (int_range 1 5))
    (fun priorities ->
      (* the int_range shrinker can wander outside its bounds *)
      QCheck.assume (List.for_all (fun p -> p >= 1 && p <= 5) priorities);
      let b = Release_buffer.create () in
      let prio_of = Hashtbl.create 16 in
      List.iteri
        (fun i priority ->
          (* the index is the page: one unique vpn per entry; tag =
             priority so tags never span priorities *)
          let vpn = i in
          Hashtbl.replace prio_of vpn priority;
          Release_buffer.add b ~tag:priority ~priority ~vpn)
        priorities;
      let order = ref [] in
      let rec drain () =
        let batch = Release_buffer.pop_lowest b ~max:3 in
        if Array.length batch > 0 then begin
          Array.iter
            (fun (v, _, _) -> order := Hashtbl.find prio_of v :: !order)
            batch;
          drain ()
        end
      in
      drain ();
      let priorities = List.rev !order in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing priorities)

(* Interleaved add / pop_lowest / flush_tag against a naive model.  After
   every operation [total] must track the model, each popped batch must
   take lowest-priority pages first (nothing cheaper left behind), stay
   FIFO within a tag, and [flush_tag] must return exactly that tag's
   pages in insertion order. *)
let prop_buffer_interleaved_ops =
  QCheck.Test.make ~name:"buffer: interleaved ops match naive model" ~count:100
    QCheck.(list (triple (int_bound 3) (int_bound 5) (int_range 1 8)))
    (fun ops ->
      (* the int_range shrinker can wander outside its bounds *)
      QCheck.assume (List.for_all (fun (_, _, k) -> k >= 1 && k <= 8) ops);
      let b = Release_buffer.create () in
      (* model: (tag, priority, vpn) in insertion order; vpns are unique *)
      let model = ref [] in
      let next_vpn = ref 0 in
      let ok = ref true in
      let require c = if not c then ok := false in
      let prio_of_tag tag = (tag mod 3) + 1 in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      List.iter
        (fun (kind, tag, k) ->
          if !ok then begin
            (match kind with
            | 2 ->
                let pairs = Array.to_list (Release_buffer.pop_lowest b ~max:k) in
                let popped = List.map (fun (v, _, _) -> v) pairs in
                require (List.length popped = min k (List.length !model));
                let entry vpn = List.find_opt (fun (_, _, v) -> v = vpn) !model in
                require (List.for_all (fun v -> entry v <> None) popped);
                (* every popped page carries the tag it was added under *)
                require
                  (List.for_all
                     (fun (v, tg, _) ->
                       match entry v with
                       | Some (t', _, _) -> t' = tg
                       | None -> false)
                     pairs);
                if !ok then begin
                  let prios =
                    List.map
                      (fun v ->
                        match entry v with Some (_, p, _) -> p | None -> 0)
                      popped
                  in
                  (* lowest priorities first, and never skipped: anything
                     left behind costs at least as much as the last pop *)
                  require (nondecreasing prios);
                  let remaining =
                    List.filter (fun (_, _, v) -> not (List.mem v popped)) !model
                  in
                  (match List.rev prios with
                  | last :: _ ->
                      require
                        (List.for_all (fun (_, p, _) -> p >= last) remaining)
                  | [] -> ());
                  (* FIFO within a tag: for each tag the popped pages are a
                     prefix of that tag's queue, in insertion order *)
                  List.iter
                    (fun tg ->
                      let popped_tg =
                        List.filter
                          (fun v ->
                            match entry v with
                            | Some (t', _, _) -> t' = tg
                            | None -> false)
                          popped
                      in
                      let queued_tg =
                        List.filter_map
                          (fun (t', _, v) -> if t' = tg then Some v else None)
                          !model
                      in
                      let rec is_prefix xs ys =
                        match (xs, ys) with
                        | [], _ -> true
                        | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
                        | _ :: _, [] -> false
                      in
                      require (is_prefix popped_tg queued_tg))
                    (List.sort_uniq compare
                       (List.map (fun (t', _, _) -> t') !model));
                  model := remaining
                end
            | 3 ->
                let out = Release_buffer.flush_tag b ~tag in
                let expect =
                  List.filter_map
                    (fun (t', _, v) -> if t' = tag then Some v else None)
                    !model
                in
                require (Array.to_list out = expect);
                model := List.filter (fun (t', _, _) -> t' <> tag) !model
            | _ ->
                let vpn = !next_vpn in
                incr next_vpn;
                Release_buffer.add b ~tag ~priority:(prio_of_tag tag) ~vpn;
                model := !model @ [ (tag, prio_of_tag tag, vpn) ]);
            require (Release_buffer.total b = List.length !model)
          end)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Runtime filters and policies (against a live VM)                    *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Vm.Config.default with Vm.Config.total_frames = 64; min_freemem = 4; desfree = 8 }

let with_rt ?(policy = Runtime.Aggressive) ?(config = small_config)
    ?(seg_pages = 32) ?governor f =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config ~engine () in
  let asp = Os.new_process os ~name:"app" in
  let seg =
    Os.map_segment os asp ~name:"data" ~bytes:(seg_pages * 16384) ~on_swap:true
  in
  Os.attach_paging_directed os asp seg;
  let rt = Runtime.create ?governor ~os ~asp ~policy () in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () ->
             Runtime.start rt;
             f os asp seg rt)));
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      if name = "main" then raise e
      else Alcotest.failf "%s crashed: %s" name (Printexc.to_string e));
  rt

let settle () = Engine.delay ~cat:Account.Sleep (Time_ns.ms 100)

let test_prefetch_filter_resident () =
  let rt =
    with_rt (fun os asp seg rt ->
        ignore (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false);
        Runtime.prefetch_page rt ~vpn:seg.As.base_vpn;
        settle ())
  in
  let s = Runtime.stats rt in
  check_int "filtered as resident" 1 s.Runtime.rt_prefetch_filtered;
  check_int "nothing enqueued" 0 s.Runtime.rt_prefetch_enqueued

let test_prefetch_through_pool () =
  let rt =
    with_rt (fun os asp seg rt ->
        Runtime.prefetch_page rt ~vpn:seg.As.base_vpn;
        settle ();
        check_bool "page arrived" true (Os.page_resident asp ~vpn:seg.As.base_vpn);
        (* first real touch validates without I/O *)
        check_bool "validated" true
          (Os.touch os asp ~vpn:seg.As.base_vpn ~write:false = Os.Validated))
  in
  check_int "enqueued once" 1 (Runtime.stats rt).Runtime.rt_prefetch_enqueued

let test_release_one_behind () =
  (* Releases trail by one request per tag: same page repeated is dropped,
     a new page flushes the previous one. *)
  let rt =
    with_rt (fun os asp seg rt ->
        for i = 0 to 3 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        let vpn0 = seg.As.base_vpn in
        Runtime.release_page rt ~vpn:vpn0 ~priority:0 ~tag:7;
        settle ();
        check_bool "first request only recorded" true (Os.page_resident asp ~vpn:vpn0);
        (* same page again: dropped *)
        Runtime.release_page rt ~vpn:vpn0 ~priority:0 ~tag:7;
        settle ();
        check_bool "still resident" true (Os.page_resident asp ~vpn:vpn0);
        (* different page: the recorded one is now handled *)
        Runtime.release_page rt ~vpn:(vpn0 + 1) ~priority:0 ~tag:7;
        settle ();
        check_bool "previous page released" false (Os.page_resident asp ~vpn:vpn0);
        check_bool "new page still resident" true
          (Os.page_resident asp ~vpn:(vpn0 + 1)))
  in
  let s = Runtime.stats rt in
  check_int "same-page drop counted" 1 s.Runtime.rt_release_filtered_same;
  check_int "one release issued" 1 s.Runtime.rt_release_issued

let test_one_behind_preserves_recorded_priority () =
  (* Regression: a displaced recording must be handled at the priority it
     was recorded with, not the priority of the request that displaced it. *)
  let rt =
    with_rt ~policy:Runtime.Buffered (fun os asp seg rt ->
        for i = 0 to 3 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        let v = Array.init 4 (fun i -> seg.As.base_vpn + i) in
        (* tag 5: recorded at priority 1, displaced by a priority-0 request;
           the displaced release keeps priority 1 and is buffered. *)
        Runtime.release_page rt ~vpn:v.(0) ~priority:1 ~tag:5;
        Runtime.release_page rt ~vpn:v.(1) ~priority:0 ~tag:5;
        settle ();
        check_int "displaced release buffered at its own priority" 1
          (Runtime.buffered_pages rt);
        check_int "nothing issued yet" 0
          (Runtime.stats rt).Runtime.rt_release_issued;
        check_bool "buffered page still resident" true
          (Os.page_resident asp ~vpn:v.(0));
        (* tag 6: recorded at priority 0, displaced by a priority-2 request;
           the displaced release keeps priority 0 and is issued at once. *)
        Runtime.release_page rt ~vpn:v.(2) ~priority:0 ~tag:6;
        Runtime.release_page rt ~vpn:v.(3) ~priority:2 ~tag:6;
        settle ();
        check_bool "priority-0 recording issued on displacement" false
          (Os.page_resident asp ~vpn:v.(2));
        check_int "still exactly one buffered" 1 (Runtime.buffered_pages rt))
  in
  check_int "exactly one page issued" 1
    (Runtime.stats rt).Runtime.rt_release_issued

let test_drain_drops_stale_entries () =
  (* Buffered pages the OS reclaimed behind the runtime's back are dropped
     at drain time and counted, not silently discarded. *)
  let rt =
    with_rt ~policy:Runtime.Buffered (fun os asp seg rt ->
        for i = 0 to 5 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        (* displace three pages into the buffer, one per tag *)
        for t = 0 to 2 do
          Runtime.release_page rt
            ~vpn:(seg.As.base_vpn + (2 * t))
            ~priority:1 ~tag:(t + 1);
          Runtime.release_page rt
            ~vpn:(seg.As.base_vpn + (2 * t) + 1)
            ~priority:1 ~tag:(t + 1)
        done;
        settle ();
        check_int "three buffered" 3 (Runtime.buffered_pages rt);
        (* the OS takes the buffered pages without telling the runtime *)
        Os.release_request os asp
          ~vpns:(Array.init 3 (fun t -> seg.As.base_vpn + (2 * t)));
        settle ();
        Runtime.drain rt;
        settle ())
  in
  let s = Runtime.stats rt in
  check_int "stale entries dropped and counted" 3 s.Runtime.rt_release_stale_dropped;
  check_int "only the live recordings issued" 3 s.Runtime.rt_release_issued

let test_release_bitmap_filter () =
  let rt =
    with_rt (fun _os _asp seg rt ->
        (* page never touched: not resident *)
        Runtime.release_page rt ~vpn:seg.As.base_vpn ~priority:0 ~tag:1;
        settle ())
  in
  check_int "filtered by bitmap" 1
    (Runtime.stats rt).Runtime.rt_release_filtered_bitmap

let test_buffered_policy_retains_until_pressure () =
  let rt =
    with_rt ~policy:Runtime.Buffered (fun os asp seg rt ->
        for i = 0 to 7 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        for i = 0 to 6 do
          Runtime.release_page rt ~vpn:(seg.As.base_vpn + i) ~priority:1 ~tag:3
        done;
        settle ();
        (* memory is ample: nothing should be issued *)
        check_bool "pages retained under no pressure" true
          (Os.page_resident asp ~vpn:seg.As.base_vpn);
        check_bool "buffered" true (Runtime.buffered_pages rt > 0);
        (* at exit, drain flushes the buffer *)
        Runtime.drain rt;
        settle ();
        check_bool "drained on exit" false
          (Os.page_resident asp ~vpn:seg.As.base_vpn))
  in
  let s = Runtime.stats rt in
  check_bool "buffer was used" true (s.Runtime.rt_release_buffered > 0)

let test_aggressive_policy_issues_immediately () =
  let rt =
    with_rt ~policy:Runtime.Aggressive (fun os asp seg rt ->
        for i = 0 to 7 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        for i = 0 to 6 do
          Runtime.release_page rt ~vpn:(seg.As.base_vpn + i) ~priority:1 ~tag:3
        done;
        settle ();
        (* all but the last (still recorded) are gone, despite priority>0 *)
        check_bool "issued despite priority" false
          (Os.page_resident asp ~vpn:seg.As.base_vpn))
  in
  check_int "nothing buffered" 0 (Runtime.stats rt).Runtime.rt_release_buffered

let test_zero_priority_bypasses_buffer () =
  let rt =
    with_rt ~policy:Runtime.Buffered (fun os asp seg rt ->
        for i = 0 to 3 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        for i = 0 to 2 do
          Runtime.release_page rt ~vpn:(seg.As.base_vpn + i) ~priority:0 ~tag:9
        done;
        settle ();
        check_bool "zero-priority issued immediately" false
          (Os.page_resident asp ~vpn:seg.As.base_vpn))
  in
  check_int "buffer untouched" 0 (Runtime.stats rt).Runtime.rt_release_buffered

let test_negative_priority_bypasses_buffer () =
  (* priority < 0 means "no reuse expected": under Buffered it must take
     the immediate path, never Release_buffer.add (which would raise). *)
  let rt =
    with_rt ~policy:Runtime.Buffered (fun os asp seg rt ->
        for i = 0 to 1 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        Runtime.release_page rt ~vpn:seg.As.base_vpn ~priority:(-2) ~tag:4;
        Runtime.release_page rt ~vpn:(seg.As.base_vpn + 1) ~priority:(-2) ~tag:4;
        settle ();
        check_bool "negative priority issued immediately" false
          (Os.page_resident asp ~vpn:seg.As.base_vpn))
  in
  check_int "buffer untouched" 0 (Runtime.stats rt).Runtime.rt_release_buffered;
  check_int "issued" 1 (Runtime.stats rt).Runtime.rt_release_issued

let test_reactive_priority_routing () =
  (* Reactive holds pages for advise_evict, but priority < 0 still means
     the application expects no reuse: issue at once.  Priority 0 is legal
     under Reactive and is held at the buffer's minimum level. *)
  let rt =
    with_rt ~policy:Runtime.Reactive (fun os asp seg rt ->
        for i = 0 to 3 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
        done;
        Runtime.release_page rt ~vpn:seg.As.base_vpn ~priority:(-1) ~tag:1;
        Runtime.release_page rt ~vpn:(seg.As.base_vpn + 1) ~priority:(-1) ~tag:1;
        settle ();
        check_bool "negative priority issued" false
          (Os.page_resident asp ~vpn:seg.As.base_vpn);
        Runtime.release_page rt ~vpn:(seg.As.base_vpn + 2) ~priority:0 ~tag:2;
        Runtime.release_page rt ~vpn:(seg.As.base_vpn + 3) ~priority:0 ~tag:2;
        settle ();
        check_bool "zero priority held for advise_evict" true
          (Os.page_resident asp ~vpn:(seg.As.base_vpn + 2));
        check_int "buffered" 1 (Runtime.buffered_pages rt))
  in
  check_int "one issued" 1 (Runtime.stats rt).Runtime.rt_release_issued

(* Satellite: under Reactive, advise_evict must never surrender a page the
   residency bitmap shows non-resident — even when the OS reclaimed
   buffered pages behind the runtime's back, and even when the one-behind
   filter let the same vpn into the buffer twice. *)
let prop_reactive_advise_only_resident =
  QCheck.Test.make ~name:"reactive: advise_evict only surrenders resident pages"
    ~count:15
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 14) (int_bound 15))
        (list_of_size (Gen.int_range 0 8) (int_bound 15)))
    (fun (hints, steals) ->
      let ok = ref true in
      let advised = ref 0 in
      ignore
        (with_rt ~policy:Runtime.Reactive (fun os asp seg rt ->
             for i = 0 to 15 do
               ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + i) ~write:false)
             done;
             (* feed hints through the one-behind filter into the buffer;
                priorities >= 0, so Reactive never issues on its own *)
             (* tag = priority: a buffer tag may not span priorities *)
             List.iter
               (fun p ->
                 Runtime.release_page rt ~vpn:(seg.As.base_vpn + p)
                   ~priority:(p mod 3) ~tag:(p mod 3))
               hints;
             settle ();
             (* the OS reclaims some of them without telling the runtime *)
             (match
                List.sort_uniq compare
                  (List.map (fun p -> seg.As.base_vpn + p) steals)
              with
             | [] -> ()
             | vpns -> Os.release_request os asp ~vpns:(Array.of_list vpns));
             settle ();
             let rec loop () =
               match Runtime.advise_evict rt with
               | None -> ()
               | Some vpn ->
                   incr advised;
                   if not (Os.page_resident asp ~vpn) then ok := false;
                   (* surrender it, as the OS would on our advice *)
                   Os.release_request os asp ~vpns:[| vpn |];
                   settle ();
                   loop ()
             in
             loop ()));
      !ok)

(* ------------------------------------------------------------------ *)
(* Graceful-degradation governor                                       *)
(* ------------------------------------------------------------------ *)

(* A machine small enough that touches exhaust the free list, with the
   paging daemon parked (10 s interval) so nothing replenishes it: every
   OS-side prefetch is then deterministically dropped. *)
let gov_config =
  {
    Vm.Config.default with
    Vm.Config.total_frames = 32;
    min_freemem = 2;
    desfree = 4;
    daemon_interval_ns = Time_ns.sec 10;
  }

let tiny_governor =
  {
    Runtime.gv_window_ns = Time_ns.ms 1;
    gv_min_samples = 1;
    gv_bad_rate = 0.5;
    gv_degrade_after = 1;
    gv_recover_after = 2;
  }

let test_governor_ladder () =
  let rt =
    with_rt ~config:gov_config ~seg_pages:64 ~governor:tiny_governor
      (fun os asp seg rt ->
        (* exhaust the free list *)
        let i = ref 0 in
        while Os.free_pages os > 0 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + !i) ~write:false);
          incr i
        done;
        (* prefetch hints for non-resident pages: each is dropped by the
           OS, each 2 ms gap closes a 1 ms window, and every bad window
           steps the ladder down until directives are off entirely *)
        let j = ref 40 in
        while Runtime.governor_level rt < 2 && !j < 60 do
          Runtime.prefetch_page rt ~vpn:(seg.As.base_vpn + !j);
          incr j;
          Engine.delay ~cat:Account.Sleep (Time_ns.ms 2)
        done;
        check_int "degraded to demand paging" 2 (Runtime.governor_level rt);
        (* hints now arrive during the quiet spell: at level 2 they are
           suppressed (no OS samples), so windows count good and the
           governor probes its way back to the configured policy *)
        for _ = 1 to 10 do
          Runtime.prefetch_page rt ~vpn:seg.As.base_vpn;
          Engine.delay ~cat:Account.Sleep (Time_ns.ms 2)
        done;
        check_int "recovered" 0 (Runtime.governor_level rt))
  in
  let s = Runtime.stats rt in
  check_bool "suppressed hints counted" true (s.Runtime.rt_gov_suppressed > 0);
  check_bool "degrades counted" true (s.Runtime.rt_gov_degrades >= 2);
  check_bool "recoveries counted" true (s.Runtime.rt_gov_recoveries >= 2);
  check_int "final level in stats" 0 s.Runtime.rt_gov_level;
  check_bool "drops were observed" true (s.Runtime.rt_prefetch_os_dropped > 0)

let test_governor_off_by_default () =
  let rt =
    with_rt ~config:gov_config ~seg_pages:64 (fun os asp seg rt ->
        let i = ref 0 in
        while Os.free_pages os > 0 do
          ignore (Os.touch os asp ~vpn:(seg.As.base_vpn + !i) ~write:false);
          incr i
        done;
        for j = 40 to 50 do
          Runtime.prefetch_page rt ~vpn:(seg.As.base_vpn + j);
          Engine.delay ~cat:Account.Sleep (Time_ns.ms 2)
        done;
        check_int "level stays 0" 0 (Runtime.governor_level rt))
  in
  let s = Runtime.stats rt in
  check_int "no transitions" 0 (s.Runtime.rt_gov_degrades + s.Runtime.rt_gov_recoveries);
  check_bool "drops happened anyway" true (s.Runtime.rt_prefetch_os_dropped > 0)

let () =
  Alcotest.run "memhog_runtime"
    [
      ( "release-buffer",
        [
          Alcotest.test_case "lowest priority first" `Quick
            test_buffer_lowest_priority_first;
          Alcotest.test_case "round robin" `Quick test_buffer_round_robin_same_priority;
          Alcotest.test_case "max respected" `Quick test_buffer_respects_max;
          Alcotest.test_case "zero priority rejected" `Quick
            test_buffer_rejects_zero_priority;
          Alcotest.test_case "flush tag" `Quick test_buffer_flush_tag;
          Alcotest.test_case "same-tag pop/flush interleaved" `Quick
            test_buffer_same_tag_pop_flush_interleaved;
          Alcotest.test_case "site ids preserved" `Quick
            test_buffer_preserves_site_ids;
        ] );
      ( "filters",
        [
          Alcotest.test_case "prefetch filter" `Quick test_prefetch_filter_resident;
          Alcotest.test_case "prefetch via pool" `Quick test_prefetch_through_pool;
          Alcotest.test_case "one-behind" `Quick test_release_one_behind;
          Alcotest.test_case "one-behind keeps recorded priority" `Quick
            test_one_behind_preserves_recorded_priority;
          Alcotest.test_case "drain drops stale entries" `Quick
            test_drain_drops_stale_entries;
          Alcotest.test_case "bitmap filter" `Quick test_release_bitmap_filter;
        ] );
      ( "policies",
        [
          Alcotest.test_case "buffered retains" `Quick
            test_buffered_policy_retains_until_pressure;
          Alcotest.test_case "aggressive issues" `Quick
            test_aggressive_policy_issues_immediately;
          Alcotest.test_case "zero priority bypasses" `Quick
            test_zero_priority_bypasses_buffer;
          Alcotest.test_case "negative priority bypasses" `Quick
            test_negative_priority_bypasses_buffer;
          Alcotest.test_case "reactive priority routing" `Quick
            test_reactive_priority_routing;
        ] );
      ( "governor",
        [
          Alcotest.test_case "ladder degrades and recovers" `Quick
            test_governor_ladder;
          Alcotest.test_case "off by default" `Quick test_governor_off_by_default;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_buffer_conserves_pages;
            prop_buffer_priority_order;
            prop_buffer_interleaved_ops;
            prop_reactive_advise_only_resident;
          ] );
    ]
