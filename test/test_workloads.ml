(* Tests that the benchmark programs encode the Table 2 traits the paper's
   evaluation depends on. *)

module Ir = Memhog_compiler.Ir
module Analysis = Memhog_compiler.Analysis
module Compile = Memhog_compiler.Compile
module Pir = Memhog_compiler.Pir
module Workload = Memhog_workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mem_bytes = 75 * 1024 * 1024
let page_bytes = 16384

let target =
  {
    Analysis.memory_pages = mem_bytes / page_bytes;
    page_bytes;
    fault_latency_ns = 12_000_000;
  }

let make name =
  let w = Workload.find name in
  w.Workload.w_make ~mem_bytes ~page_bytes

let analyze name =
  let prog, _ = make name in
  Analysis.analyze ~target prog

let test_registry () =
  check_int "six workloads" 6 (List.length Workload.all);
  Alcotest.(check (list string))
    "paper order"
    [ "EMBAR"; "MATVEC"; "BUK"; "CGM"; "MGRID"; "FFTPDE" ]
    Workload.names;
  check_bool "case-insensitive lookup" true
    ((Workload.find "matvec").Workload.w_name = "MATVEC");
  check_bool "find_opt misses quietly" true (Workload.find_opt "nope" = None);
  (* the Failure must carry both the offending name and the valid list, so
     a CLI typo produces a usable message *)
  match Workload.find "nope" with
  | _ -> Alcotest.fail "unknown workload should raise"
  | exception Failure msg ->
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool "message names the typo" true (contains "nope");
      List.iter
        (fun w -> check_bool ("message lists " ^ w) true (contains w))
        Workload.names

let test_all_out_of_core () =
  List.iter
    (fun (w : Workload.t) ->
      let bytes = Workload.data_set_bytes w ~mem_bytes ~page_bytes in
      check_bool
        (Printf.sprintf "%s larger than memory (%d MB)" w.Workload.w_name
           (bytes / 1024 / 1024))
        true
        (bytes > 3 * mem_bytes / 2))
    Workload.all

let test_all_validate () =
  List.iter
    (fun (w : Workload.t) ->
      let prog, params = w.Workload.w_make ~mem_bytes ~page_bytes in
      (match Ir.validate prog with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" w.Workload.w_name e);
      (* array sizes must be evaluable under the runtime parameters
         (procedure-local parameters are bound at call sites instead) *)
      let env = Ir.env_of_list params in
      List.iter
        (fun (a : Ir.array_decl) ->
          check_bool
            (Printf.sprintf "%s: array %s sized" w.Workload.w_name a.Ir.a_name)
            true
            (Ir.eval_bound env a.Ir.a_size_elems > 0))
        prog.Ir.arrays)
    Workload.all

let test_embar_matvec_fully_known () =
  List.iter
    (fun name ->
      let prog, _ = make name in
      List.iter
        (fun (p, v) ->
          check_bool (Printf.sprintf "%s: %s known" name p) true (v <> None))
        prog.Ir.assumptions;
      let t = analyze name in
      check_int
        (Printf.sprintf "%s: no unknown-bound loops" name)
        0 t.Analysis.ap_stats.Analysis.st_unknown_bound_loops)
    [ "EMBAR"; "MATVEC" ]

let test_buk_cgm_unknown_bounds_and_indirect () =
  List.iter
    (fun name ->
      let t = analyze name in
      check_bool
        (Printf.sprintf "%s: unknown bounds" name)
        true
        (t.Analysis.ap_stats.Analysis.st_unknown_bound_loops > 0);
      check_bool
        (Printf.sprintf "%s: indirect refs" name)
        true
        (t.Analysis.ap_stats.Analysis.st_indirect_refs > 0))
    [ "BUK"; "CGM" ]

let test_fftpde_false_temporal () =
  let t = analyze "FFTPDE" in
  check_bool "opaque strides create false temporal reuse" true
    (t.Analysis.ap_stats.Analysis.st_false_temporal > 0)

let test_mgrid_procedures_multiple_sizes () =
  let prog, _ = make "MGRID" in
  check_bool "two sweep procedures" true (List.length prog.Ir.procs >= 2);
  (* collect the distinct N bindings across calls *)
  let rec calls acc = function
    | Ir.S_seq ss -> List.fold_left calls acc ss
    | Ir.S_call (_, binds) -> (
        match List.assoc_opt "N" binds with
        | Some b -> b.Ir.bc :: acc
        | None -> acc)
    | Ir.S_loop l -> calls acc l.Ir.l_body
    | Ir.S_body _ -> acc
  in
  let sizes = List.sort_uniq compare (calls [] prog.Ir.main) in
  check_bool "at least four distinct grid sizes" true (List.length sizes >= 4);
  (* and no assumption can cover them: N is unknown to the compiler *)
  check_bool "N unassumed" true (List.assoc "N" prog.Ir.assumptions = None)

let test_mgrid_stencil_groups () =
  let t = analyze "MGRID" in
  (* the 7-point stencils must collapse into single groups with distinct
     leader and trailer *)
  let rec bodies acc = function
    | Analysis.A_body b -> b :: acc
    | Analysis.A_loop (_, s) -> bodies acc s
    | Analysis.A_seq ss -> List.fold_left bodies acc ss
    | Analysis.A_call _ -> acc
  in
  let all_bodies =
    List.fold_left
      (fun acc (_, ann) -> bodies acc ann)
      (bodies [] t.Analysis.ap_main)
      t.Analysis.ap_procs
  in
  check_bool "some bodies found" true (all_bodies <> []);
  List.iter
    (fun (b : Analysis.body_ann) ->
      let stencil_refs =
        List.filter
          (fun (ra : Analysis.ref_ann) ->
            (not ra.Analysis.ra_is_leader) && not ra.Analysis.ra_is_trailer)
          b.Analysis.ba_refs
      in
      (* 7-point stencil: 7 refs in one group means 5 pure members *)
      check_bool "stencil members grouped" true (List.length stencil_refs >= 5))
    all_bodies

let test_matvec_vector_is_multiple_pages () =
  (* The MATVEC R-vs-B contrast depends on the vector spanning several
     pages (releases of a single-page vector would be one-behind
     filtered). *)
  let _, params = make "MATVEC" in
  let n = List.assoc "N" params in
  check_bool "vector spans >= 3 pages" true (n * 8 / page_bytes >= 3)

let test_buk_bucket_array_fits_memory () =
  let _, params = make "BUK" in
  let b = List.assoc "B" params in
  let k = List.assoc "K" params in
  check_bool "bucket array below memory" true (b * 8 < mem_bytes);
  check_bool "but sequential arrays exceed it" true (k * 8 > mem_bytes)

let test_fftpde_transposes_cover_array () =
  let prog, params = make "FFTPDE" in
  let m = List.assoc "M" params in
  (* for every transpose call: REPS*RUNLEN + NBLK*STRIDE spans exactly M *)
  let rec calls acc = function
    | Ir.S_seq ss -> List.fold_left calls acc ss
    | Ir.S_call (name, binds) when String.length name >= 5 && String.sub name 0 5 = "trans"
      ->
        binds :: acc
    | _ -> acc
  in
  let transposes = calls [] prog.Ir.main in
  check_bool "several transpose phases" true (List.length transposes >= 3);
  let strides =
    List.sort_uniq compare
      (List.map (fun binds -> (List.assoc "STRIDE" binds).Ir.bc) transposes)
  in
  check_bool "strides change across phases" true (List.length strides >= 3);
  let runlen = List.assoc "RUNLEN" params in
  List.iter
    (fun binds ->
      let get p = (List.assoc p binds).Ir.bc in
      check_int "blocks cover the array" m (get "NBLK" * get "STRIDE");
      check_int "reps cover one stride" (get "STRIDE") (get "REPS" * runlen))
    transposes

(* ------------------------------------------------------------------ *)
(* KVSERVE (serving data plane; deliberately outside Workload.all)     *)
(* ------------------------------------------------------------------ *)

module Kvserve = Memhog_workloads.Kvserve

let rec count_pir f = function
  | Pir.P_seq ss -> List.fold_left (fun acc s -> acc + count_pir f s) 0 ss
  | Pir.P_loop { body; _ } as s -> (if f s then 1 else 0) + count_pir f body
  | s -> if f s then 1 else 0

let test_kvserve_sizing () =
  let s = Kvserve.sizing ~mem_bytes ~page_bytes in
  check_bool "values region several times memory" true
    (s.Kvserve.kv_values_bytes >= 3 * mem_bytes);
  check_bool "millions of keys at paper scale" true
    (s.Kvserve.kv_nkeys > 1_000_000);
  check_int "8-byte index slots" (s.Kvserve.kv_nkeys * 8)
    s.Kvserve.kv_index_bytes;
  check_bool "concentrated Zipf exponent" true (s.Kvserve.kv_theta = 1.5)

let test_kvserve_not_registered () =
  check_bool "KVSERVE outside the paper matrix" true
    (Workload.find_opt "KVSERVE" = None)

let test_kvserve_compiles_prefetch_no_release () =
  let prog, _ = Kvserve.make ~mem_bytes ~page_bytes in
  (match Ir.validate prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kvserve: %s" e);
  let has_indirect_prefetch px =
    count_pir
      (function Pir.P_indirect { prefetch; _ } -> prefetch | _ -> false)
      px.Pir.px_main
    > 0
  in
  let releases_values px =
    count_pir
      (function
        | Pir.P_release { dir; _ } -> dir.Pir.d_array = "values" | _ -> false)
      px.Pir.px_main
  in
  let p = Compile.compile ~target ~variant:Pir.V_prefetch prog in
  let r = Compile.compile ~target ~variant:Pir.V_release prog in
  check_bool "prefetch variant prefetches the indirect stream" true
    (has_indirect_prefetch p);
  (* the indirect a[b[i]] stream is the compiler's blind spot: it may
     prefetch but can never release the values region *)
  check_int "values never released (P)" 0 (releases_values p);
  check_int "values never released (R)" 0 (releases_values r)

let prop_sizes_scale_with_memory =
  QCheck.Test.make ~name:"data sets scale with memory size" ~count:20
    QCheck.(int_range 16 256)
    (fun mb ->
      let mem = mb * 1024 * 1024 in
      List.for_all
        (fun (w : Workload.t) ->
          let bytes = Workload.data_set_bytes w ~mem_bytes:mem ~page_bytes in
          bytes > mem && bytes < 32 * mem)
        Workload.all)

let () =
  Alcotest.run "memhog_workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "all out of core" `Quick test_all_out_of_core;
          Alcotest.test_case "all validate" `Quick test_all_validate;
        ] );
      ( "traits",
        [
          Alcotest.test_case "EMBAR/MATVEC known bounds" `Quick
            test_embar_matvec_fully_known;
          Alcotest.test_case "BUK/CGM unknown+indirect" `Quick
            test_buk_cgm_unknown_bounds_and_indirect;
          Alcotest.test_case "FFTPDE false temporal" `Quick test_fftpde_false_temporal;
          Alcotest.test_case "MGRID multi-size procs" `Quick
            test_mgrid_procedures_multiple_sizes;
          Alcotest.test_case "MGRID stencil groups" `Quick test_mgrid_stencil_groups;
          Alcotest.test_case "MATVEC vector pages" `Quick
            test_matvec_vector_is_multiple_pages;
          Alcotest.test_case "BUK bucket sizing" `Quick test_buk_bucket_array_fits_memory;
          Alcotest.test_case "FFTPDE transpose coverage" `Quick
            test_fftpde_transposes_cover_array;
        ] );
      ( "kvserve",
        [
          Alcotest.test_case "sizing" `Quick test_kvserve_sizing;
          Alcotest.test_case "not registered" `Quick test_kvserve_not_registered;
          Alcotest.test_case "prefetch yes, release no" `Quick
            test_kvserve_compiles_prefetch_no_release;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sizes_scale_with_memory ] );
    ]
