(* Tests for the execution layer: the PIR interpreter and the interactive
   task. *)

open Memhog_sim
module Vm = Memhog_vm
module Os = Vm.Os
module As = Vm.Address_space
module Ir = Memhog_compiler.Ir
module Pir = Memhog_compiler.Pir
module Compile = Memhog_compiler.Compile
module App = Memhog_exec.App
module Interactive = Memhog_exec.Interactive

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_config =
  { Vm.Config.default with Vm.Config.total_frames = 128; min_freemem = 4; desfree = 16 }

let target =
  {
    Memhog_compiler.Analysis.memory_pages = 128;
    page_bytes = 16384;
    fault_latency_ns = 12_000_000;
  }

(* Run a compiled program to completion on a small machine. *)
let run_app ?(runtime_policy = Memhog_runtime.Runtime.Aggressive) ~params prog =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  let app = App.create ~runtime_policy ~os ~params prog in
  ignore
    (Engine.spawn engine ~name:"main" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () -> App.run app ~iterations:1)));
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      if name = "main" then raise e
      else Alcotest.failf "%s crashed: %s" name (Printexc.to_string e));
  (app, os)

(* A simple sequential-sweep program over [pages] pages. *)
let sweep_prog ~pages =
  let elems = pages * 2048 in
  {
    Ir.prog_name = "sweep";
    arrays = [ Ir.array_decl "a" ~size:(Ir.cst elems) ];
    assumptions = [];
    procs = [];
    main =
      Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst elems)
        (Ir.S_body
           {
             Ir.refs = [ Ir.direct "a" [ ("i", Ir.C_const 1) ] ~write:false ];
             work_ns_per_iter = 20;
           });
  }

let test_sequential_sweep_touches_each_page_once () =
  let prog = Compile.compile ~target ~variant:Pir.V_original (sweep_prog ~pages:32) in
  let app, _ = run_app ~params:[] prog in
  (* page-granular interpretation: one touch per page *)
  check_int "touches = pages" 32 (App.touched_pages app)

let test_sweep_faults_every_page () =
  let prog = Compile.compile ~target ~variant:Pir.V_original (sweep_prog ~pages:32) in
  let app, _ = run_app ~params:[] prog in
  check_int "32 hard faults" 32
    (App.asp app).As.stats.Vm.Vm_stats.hard_faults

let test_strided_program_touches_every_stride () =
  (* stride of exactly 2 pages: touch half the pages *)
  let elems = 64 * 2048 in
  let prog_ir =
    {
      Ir.prog_name = "strided";
      arrays = [ Ir.array_decl "a" ~size:(Ir.cst elems) ];
      assumptions = [];
      procs = [];
      main =
        Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst 32)
          (Ir.S_body
             {
               Ir.refs = [ Ir.direct "a" [ ("i", Ir.C_const 4096) ] ~write:false ];
               work_ns_per_iter = 20;
             });
    }
  in
  let prog = Compile.compile ~target ~variant:Pir.V_original prog_ir in
  let app, _ = run_app ~params:[] prog in
  check_int "one fault per strided page" 32
    (App.asp app).As.stats.Vm.Vm_stats.hard_faults

let test_prefetch_variant_hides_faults () =
  let o = Compile.compile ~target ~variant:Pir.V_original (sweep_prog ~pages:64) in
  let p = Compile.compile ~target ~variant:Pir.V_prefetch (sweep_prog ~pages:64) in
  let app_o, _ = run_app ~params:[] o in
  let app_p, _ = run_app ~params:[] p in
  let hard a = (App.asp a).As.stats.Vm.Vm_stats.hard_faults in
  let valid a = (App.asp a).As.stats.Vm.Vm_stats.validation_faults in
  check_int "O: all hard" 64 (hard app_o);
  check_bool "P: most pages prefetched" true (valid app_p > 32);
  check_bool "P: few hard faults" true (hard app_p < 32)

let test_release_variant_returns_memory () =
  let r = Compile.compile ~target ~variant:Pir.V_release (sweep_prog ~pages:256) in
  let app, os = run_app ~params:[] r in
  (* data (256 pages) exceeds memory (128 frames): releases must have kept
     the daemon asleep *)
  check_int "no daemon steals" 0
    (Os.global_stats os).Vm.Vm_stats.daemon_pages_stolen;
  check_bool "releases performed" true
    ((App.asp app).As.stats.Vm.Vm_stats.freed_by_releaser > 0)

let test_proc_call_binds_params () =
  let prog_ir =
    {
      Ir.prog_name = "calls";
      arrays = [ Ir.array_decl "a" ~size:(Ir.cst (64 * 2048)) ];
      assumptions = [ ("LO", None); ("HI", None) ];
      procs =
        [
          {
            Ir.p_name = "range";
            p_body =
              Ir.loop ~var:"i" ~lo:(Ir.param "LO") ~hi:(Ir.param "HI")
                (Ir.S_body
                   {
                     Ir.refs = [ Ir.direct "a" [ ("i", Ir.C_const 1) ] ~write:false ];
                     work_ns_per_iter = 10;
                   });
          };
        ];
      main =
        Ir.S_seq
          [
            (* touch pages 0..15, then pages 32..47 *)
            Ir.S_call ("range", [ ("LO", Ir.cst 0); ("HI", Ir.cst (16 * 2048)) ]);
            Ir.S_call
              ( "range",
                [ ("LO", Ir.cst (32 * 2048)); ("HI", Ir.cst (48 * 2048)) ] );
          ];
    }
  in
  let prog = Compile.compile ~target ~variant:Pir.V_original prog_ir in
  let app, _ = run_app ~params:[ ("LO", 0); ("HI", 0) ] prog in
  check_int "two disjoint 16-page ranges" 32
    (App.asp app).As.stats.Vm.Vm_stats.hard_faults

let indirect_prog ~every =
  {
    Ir.prog_name = "indirect";
    arrays =
      [
        Ir.array_decl "keys" ~size:(Ir.cst (32 * 2048));
        Ir.array_decl "buckets" ~size:(Ir.cst (16 * 2048));
      ];
    assumptions = [];
    procs = [];
    main =
      Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst (32 * 2048))
        (Ir.S_body
           {
             Ir.refs =
               [
                 Ir.direct "keys" [ ("i", Ir.C_const 1) ] ~write:false;
                 Ir.indirect ~every "buckets" ~via:"keys" ~write:true;
               ];
             work_ns_per_iter = 20;
           });
  }

let test_indirect_streams_deterministic_across_variants () =
  let run variant =
    let prog = Compile.compile ~target ~variant (indirect_prog ~every:64) in
    let app, os = run_app ~params:[] prog in
    ignore app;
    Memhog_disk.Swap.page_reads (Os.swap os)
  in
  (* the indirect index sequence is drawn from per-site streams seeded
     independently of the variant: two O runs are identical *)
  check_int "O deterministic" (run Pir.V_original) (run Pir.V_original)

let test_indirect_every_reduces_touches () =
  let touch_count every =
    let prog = Compile.compile ~target ~variant:Pir.V_original (indirect_prog ~every) in
    let app, _ = run_app ~params:[] prog in
    App.touched_pages app
  in
  let dense = touch_count 16 and sparse = touch_count 64 in
  check_bool "denser indirect access touches more" true (dense > sparse)

let test_release_covers_whole_array_including_epilogue () =
  (* 33 pages: not a multiple of the chunk size; the epilogue release must
     cover the final partial chunk.  Every page ends up explicitly freed. *)
  let r = Compile.compile ~target ~variant:Pir.V_release (sweep_prog ~pages:33) in
  let app, _ = run_app ~params:[] r in
  (* allow the releaser to finish *)
  check_int "every page released" 33
    (App.asp app).As.stats.Vm.Vm_stats.freed_by_releaser

let test_prologue_prefetches_first_pages () =
  (* With prefetching, even the very first pages should arrive via the
     prologue rather than demand faults (the pool still needs a moment, so
     allow the first page to fault). *)
  let p = Compile.compile ~target ~variant:Pir.V_prefetch (sweep_prog ~pages:48) in
  let app, _ = run_app ~params:[] p in
  check_bool "almost no demand faults" true
    ((App.asp app).As.stats.Vm.Vm_stats.hard_faults <= 4)

let test_odd_bounds_touch_exact_pages () =
  (* loop over a half-page tail: 10.5 pages of elements *)
  let elems = (10 * 2048) + 1024 in
  let prog_ir =
    {
      Ir.prog_name = "odd";
      arrays = [ Ir.array_decl "a" ~size:(Ir.cst (16 * 2048)) ];
      assumptions = [];
      procs = [];
      main =
        Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst elems)
          (Ir.S_body
             {
               Ir.refs = [ Ir.direct "a" [ ("i", Ir.C_const 1) ] ~write:false ];
               work_ns_per_iter = 10;
             });
    }
  in
  let prog = Compile.compile ~target ~variant:Pir.V_original prog_ir in
  let app, _ = run_app ~params:[] prog in
  check_int "11 pages faulted (10.5 rounded up)" 11
    (App.asp app).As.stats.Vm.Vm_stats.hard_faults

let test_negative_offsets_clamped () =
  (* a group whose trailing reference starts below the array: the evaluator
     must clamp rather than crash or touch foreign pages *)
  let prog_ir =
    {
      Ir.prog_name = "clamp";
      arrays = [ Ir.array_decl "a" ~size:(Ir.cst (8 * 2048)) ];
      assumptions = [];
      procs = [];
      main =
        Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst (8 * 2048))
          (Ir.S_body
             {
               Ir.refs =
                 [
                   Ir.direct "a" ~off:(-4096) [ ("i", Ir.C_const 1) ] ~write:false;
                   Ir.direct "a" ~off:4096 [ ("i", Ir.C_const 1) ] ~write:false;
                 ];
               work_ns_per_iter = 10;
             });
    }
  in
  let prog = Compile.compile ~target ~variant:Pir.V_original prog_ir in
  let app, _ = run_app ~params:[] prog in
  check_int "exactly the array's pages faulted" 8
    (App.asp app).As.stats.Vm.Vm_stats.hard_faults

(* ------------------------------------------------------------------ *)
(* Interactive task                                                    *)
(* ------------------------------------------------------------------ *)

let test_interactive_alone_response () =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  let task = Interactive.create ~os ~sleep:(Time_ns.ms 100) () in
  ignore (Interactive.spawn task);
  ignore
    (Engine.spawn engine ~name:"stopper" (fun () ->
         Engine.delay ~cat:Account.Sleep (Time_ns.sec 3);
         Engine.stop ()));
  Engine.run engine;
  let sweeps = Interactive.sweeps task in
  check_bool "many sweeps" true (List.length sweeps > 10);
  (* after warm-up, response equals the ideal compute-only time *)
  (match Interactive.avg_response task with
  | Some avg ->
      check_bool "warm response = alone response" true
        (avg <= Interactive.alone_response task + Time_ns.ms 1)
  | None -> Alcotest.fail "no response measured");
  (* first sweep pays the demand paging *)
  (match sweeps with
  | first :: _ ->
      check_int "cold sweep faults whole data set" 64 first.Interactive.sw_hard_faults
  | [] -> Alcotest.fail "no sweeps");
  match Interactive.avg_hard_faults task with
  | Some f -> check_bool "warm sweeps fault-free" true (f < 0.5)
  | None -> Alcotest.fail "no fault average"

(* avg_response must round to nearest, not truncate: the mean of the
   sweep responses is a rational number of ns and truncation biases every
   derived slowdown ratio low.  Recompute the mean from the public sweep
   list and pin the rounding against it. *)
let test_interactive_avg_response_rounds_to_nearest () =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  let task = Interactive.create ~os ~sleep:(Time_ns.ms 100) () in
  ignore (Interactive.spawn task);
  let prog =
    Compile.compile ~target ~variant:Pir.V_original (sweep_prog ~pages:512)
  in
  let app = App.create ~os ~params:[] prog in
  ignore
    (Engine.spawn engine ~name:"hog" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () ->
             for _ = 1 to 8 do
               App.exec_main app
             done)));
  Engine.run engine;
  let usable =
    List.filter
      (fun s -> s.Interactive.sw_index >= 1)
      (Interactive.sweeps task)
  in
  check_bool "warm sweeps exist" true (usable <> []);
  let mean =
    List.fold_left
      (fun acc s -> acc +. float_of_int s.Interactive.sw_response)
      0.0 usable
    /. float_of_int (List.length usable)
  in
  match Interactive.avg_response task with
  | Some avg ->
      check_int "round to nearest of the sweep mean"
        (int_of_float (Float.round mean))
        avg;
      check_bool "within half a ns of the true mean" true
        (Float.abs (float_of_int avg -. mean) <= 0.5)
  | None -> Alcotest.fail "no response measured"

let test_interactive_loses_pages_under_pressure () =
  let engine = Engine.create ~max_time:(Time_ns.sec 3600) () in
  let os = Os.create ~config:small_config ~engine () in
  (* long sleep: the task cannot defend its memory against a hog *)
  let task = Interactive.create ~os ~sleep:(Time_ns.sec 2) () in
  ignore (Interactive.spawn task);
  let prog = Compile.compile ~target ~variant:Pir.V_original (sweep_prog ~pages:512) in
  let app = App.create ~os ~params:[] prog in
  ignore
    (Engine.spawn engine ~name:"hog" (fun () ->
         Fun.protect ~finally:Engine.stop (fun () ->
             for _ = 1 to 8 do
               App.exec_main app
             done)));
  Engine.run engine;
  match Interactive.avg_hard_faults task with
  | Some f -> check_bool "re-faults under pressure" true (f > 1.0)
  | None -> Alcotest.fail "no sweeps completed"

(* ------------------------------------------------------------------ *)
(* Metamorphic property: variants preserve the reference stream        *)
(* ------------------------------------------------------------------ *)

(* Random 2-deep affine programs over one or two arrays. *)
let random_program_gen =
  QCheck.Gen.(
    let* outer = int_range 2 6 in
    let* inner_pages = int_range 2 12 in
    let* stride = oneofl [ 1; 2; 3; 512 ] in
    let* off = int_range 0 64 in
    let* second_array = bool in
    let* write = bool in
    let inner = inner_pages * 2048 in
    let refs =
      [
        Ir.direct "a" ~off
          [ ("i", Ir.C_const inner); ("j", Ir.C_const stride) ]
          ~write;
      ]
      @
      if second_array then
        [ Ir.direct "b" [ ("j", Ir.C_const 1) ] ~write:false ]
      else []
    in
    let arrays =
      [ Ir.array_decl "a" ~size:(Ir.cst ((outer + 1) * inner * stride + 65)) ]
      @ (if second_array then [ Ir.array_decl "b" ~size:(Ir.cst inner) ] else [])
    in
    return
      {
        Ir.prog_name = "random";
        arrays;
        assumptions = [];
        procs = [];
        main =
          Ir.loop ~var:"i" ~lo:(Ir.cst 0) ~hi:(Ir.cst outer)
            (Ir.loop ~var:"j" ~lo:(Ir.cst 0) ~hi:(Ir.cst inner)
               (Ir.S_body { Ir.refs; work_ns_per_iter = 15 }));
      })

let random_program_arb =
  QCheck.make ~print:(fun p -> Format.asprintf "%a" Ir.pp_program p)
    random_program_gen

let prop_variants_preserve_touches =
  QCheck.Test.make
    ~name:"O/P/R touch the same pages in the same multiplicity" ~count:25
    random_program_arb
    (fun prog_ir ->
      (match Ir.validate prog_ir with Ok _ -> () | Error e -> failwith e);
      let touches variant =
        let prog = Compile.compile ~target ~variant prog_ir in
        let app, os = run_app ~params:[] prog in
        ignore os;
        App.touched_pages app
      in
      let o = touches Pir.V_original in
      o = touches Pir.V_prefetch && o = touches Pir.V_release)

let prop_variants_invariants_hold =
  QCheck.Test.make ~name:"invariants survive every variant of random programs"
    ~count:15 random_program_arb
    (fun prog_ir ->
      List.for_all
        (fun variant ->
          let prog = Compile.compile ~target ~variant prog_ir in
          let _, os = run_app ~params:[] prog in
          List.for_all snd (Os.check_invariants os))
        Compile.all_variants)

let () =
  Alcotest.run "memhog_exec"
    [
      ( "interpreter",
        [
          Alcotest.test_case "sweep touches pages once" `Quick
            test_sequential_sweep_touches_each_page_once;
          Alcotest.test_case "sweep faults each page" `Quick test_sweep_faults_every_page;
          Alcotest.test_case "strided touches" `Quick
            test_strided_program_touches_every_stride;
          Alcotest.test_case "prefetch hides faults" `Quick
            test_prefetch_variant_hides_faults;
          Alcotest.test_case "release returns memory" `Quick
            test_release_variant_returns_memory;
          Alcotest.test_case "proc calls bind params" `Quick test_proc_call_binds_params;
          Alcotest.test_case "epilogue release coverage" `Quick
            test_release_covers_whole_array_including_epilogue;
          Alcotest.test_case "prologue prefetch" `Quick test_prologue_prefetches_first_pages;
          Alcotest.test_case "odd bounds" `Quick test_odd_bounds_touch_exact_pages;
          Alcotest.test_case "clamping" `Quick test_negative_offsets_clamped;
        ] );
      ( "indirect",
        [
          Alcotest.test_case "deterministic streams" `Quick
            test_indirect_streams_deterministic_across_variants;
          Alcotest.test_case "every scales touches" `Quick
            test_indirect_every_reduces_touches;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "alone response" `Quick test_interactive_alone_response;
          Alcotest.test_case "avg response rounds to nearest" `Quick
            test_interactive_avg_response_rounds_to_nearest;
          Alcotest.test_case "pressure refaults" `Quick
            test_interactive_loses_pages_under_pressure;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_variants_preserve_touches; prop_variants_invariants_hold ] );
    ]
