(* Tests for the page-lifecycle ledger: byte-identical serialization at any
   --jobs, totality and legality of [observe] under arbitrary event
   interleavings, and exact reconciliation against the VM's own counters. *)

module Trace = Memhog_sim.Trace
module Ledger = Memhog_sim.Ledger
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Pool = Memhog_core.Pool
module VS = Memhog_vm.Vm_stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let run_cell () =
  let wl = Memhog_workloads.Workload.find "EMBAR" in
  E.run
    (E.setup ~machine:Machine.quick ~workload:wl ~variant:E.B ~iterations:1 ())

(* The full canonical metrics document embeds the ledger object, so string
   equality here is the acceptance criterion "the ledger object is
   byte-identical across --jobs" (and then some). *)
let render r =
  Mio.to_string (Mio.metrics_json (Metrics.of_results ~label:"ledger" [ r ]))

let test_jobs_determinism () =
  let serial = render (run_cell ()) in
  let pooled = Pool.map ~jobs:8 (fun () -> render (run_cell ())) [ (); () ] in
  List.iteri
    (fun i s -> check_str (Printf.sprintf "pooled replica %d" i) serial s)
    pooled

let test_reconciles_with_vm_stats () =
  let r = run_cell () in
  let l = r.E.r_ledger in
  let s = r.E.r_app_stats in
  check_int "hard faults" s.VS.hard_faults l.Ledger.ls_hard_faults;
  check_int "soft faults" s.VS.soft_faults l.Ledger.ls_soft_faults;
  check_int "validation faults" s.VS.validation_faults
    l.Ledger.ls_validation_faults;
  check_int "zero fills" s.VS.zero_fills l.Ledger.ls_zero_fills;
  check_int "rescues"
    (s.VS.rescued_daemon + s.VS.rescued_releaser)
    l.Ledger.ls_rescues;
  check_int "prefetches issued" s.VS.prefetches_issued
    l.Ledger.ls_prefetches_issued;
  check_int "prefetches dropped" s.VS.prefetches_dropped
    l.Ledger.ls_prefetches_dropped;
  check_int "releases freed" s.VS.freed_by_releaser l.Ledger.ls_releases_freed;
  check_int "releases skipped" s.VS.releases_skipped
    l.Ledger.ls_releases_skipped;
  check_bool "summary invariants" true (Ledger.invariants_ok l)

let test_null_and_empty () =
  check_bool "null disabled" false (Ledger.enabled Ledger.null);
  Ledger.observe Ledger.null ~time:0 ~stream:0 (Trace.Hard_fault { vpn = 1 });
  let s = Ledger.summarize Ledger.null in
  check_bool "null stays empty" true (s = Ledger.empty_summary);
  check_bool "empty summary legal" true
    (Ledger.invariants_ok Ledger.empty_summary);
  check_int "empty has no sites" 0 (List.length Ledger.empty_summary.ls_sites)

(* ------------------------------------------------------------------ *)
(* Property: observe is total, the summary legal, summarize pure       *)
(* ------------------------------------------------------------------ *)

(* A small alphabet (few vpns, sites, owners) maximizes state-machine
   collisions: prefetches over releases, rescues of never-freed pages,
   frees of never-released pages, ... *)
let event_gen =
  let open QCheck.Gen in
  let vpn = int_bound 7 in
  let site = map (fun s -> s - 1) (int_bound 4) (* -1 .. 3 *) in
  let owner = int_bound 2 in
  let stream = int_bound 2 in
  let ns = int_bound 10_000 in
  let ev =
    frequency
      [
        (3, map (fun vpn -> Trace.Hard_fault { vpn }) vpn);
        (2, map (fun vpn -> Trace.Soft_fault { vpn }) vpn);
        (2, map (fun vpn -> Trace.Validation_fault { vpn }) vpn);
        (1, map (fun vpn -> Trace.Zero_fill { vpn }) vpn);
        ( 2,
          map3
            (fun vpn for_prefetch site ->
              Trace.Rescue { vpn; for_prefetch; site })
            vpn bool site );
        (3, map2 (fun vpn site -> Trace.Rt_prefetch_sent { vpn; site }) vpn site);
        (3, map2 (fun vpn site -> Trace.Prefetch_issued { vpn; site }) vpn site);
        (2, map2 (fun vpn site -> Trace.Prefetch_dropped { vpn; site }) vpn site);
        (1, map2 (fun vpn site -> Trace.Prefetch_raced { vpn; site }) vpn site);
        ( 3,
          map3 (fun vpn site ns -> Trace.Prefetch_done { vpn; site; ns }) vpn
            site ns );
        ( 2,
          map3
            (fun vpn site priority -> Trace.Rt_release_hint { vpn; site; priority })
            vpn site (int_bound 5) );
        ( 1,
          map2
            (fun vpn site -> Trace.Rt_release_filtered { vpn; reason = "same"; site })
            vpn site );
        ( 1,
          map3
            (fun vpn tag priority -> Trace.Rt_release_buffered { vpn; tag; priority })
            vpn (int_bound 3) (int_bound 5) );
        (1, map2 (fun vpn site -> Trace.Rt_stale_dropped { vpn; site }) vpn site);
        (3, map2 (fun vpn site -> Trace.Rt_release_sent { vpn; site }) vpn site);
        ( 2,
          map3 (fun vpn owner site -> Trace.Release_skipped { vpn; owner; site })
            vpn owner site );
        ( 3,
          map3 (fun vpn owner site -> Trace.Releaser_free { vpn; owner; site })
            vpn owner site );
        (2, map2 (fun vpn owner -> Trace.Daemon_steal { vpn; owner }) vpn owner);
        (2, map2 (fun vpn owner -> Trace.Frame_reused { vpn; owner }) vpn owner);
        (1, map (fun count -> Trace.Rt_release_issued { count }) (int_bound 9));
        (1, map (fun pages -> Trace.Free_depth { pages }) (int_bound 99));
      ]
  in
  pair stream ev

let events_arb =
  QCheck.make
    ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (s, ev) -> Printf.sprintf "%d:%s" s (Trace.event_name ev)) evs))
    QCheck.Gen.(list_size (0 -- 400) event_gen)

let prop_observe_total_and_legal =
  QCheck.Test.make
    ~name:"observe never raises; summary legal from any interleaving"
    ~count:500 events_arb (fun evs ->
      let l = Ledger.create () in
      List.iteri
        (fun i (stream, ev) -> Ledger.observe l ~time:(i * 10) ~stream ev)
        evs;
      let s1 = Ledger.summarize l in
      let s2 = Ledger.summarize l in
      Ledger.invariants_ok s1 && s1 = s2)

let () =
  Alcotest.run "memhog_ledger"
    [
      ( "ledger",
        [
          Alcotest.test_case "null and empty" `Quick test_null_and_empty;
          Alcotest.test_case "reconciles with Vm_stats" `Quick
            test_reconciles_with_vm_stats;
          Alcotest.test_case "--jobs 1 == --jobs 8 (byte-identical)" `Quick
            test_jobs_determinism;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_observe_total_and_legal ]
      );
    ]
