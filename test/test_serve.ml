(* Tests for the serving experiment grid: byte-identical metrics at any
   --jobs, the headline tail-latency physics (buffered release beats the
   un-released hog on p999 past the knee), and the open-loop server's
   bookkeeping invariants. *)

open Memhog_sim
module E = Memhog_core.Experiment
module Machine = Memhog_core.Machine
module Metrics = Memhog_core.Metrics
module Mio = Memhog_core.Metrics_io
module Serve = Memhog_core.Serve
module Pool = Memhog_core.Pool
module Server = Memhog_exec.Server

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* One grid at a load past the quick machine's knee, short enough for CI
   but long enough that p999 rests on thousands of recorded responses. *)
let run_grid ~jobs () =
  Serve.run ~machine:Machine.quick ~rates:[ 3840.0 ]
    ~duration:(Time_ns.sec 10) ~jobs ()

let render t =
  Mio.to_string
    (Mio.metrics_json (Metrics.of_results ~label:"serve" (Serve.results t)))

(* The acceptance criterion: the serialized serving metrics (the "serving"
   object with its response histogram included) are byte-identical whether
   the grid cells ran on the main domain or across 8 worker domains. *)
let test_jobs_determinism () =
  let serial = render (run_grid ~jobs:1 ()) in
  let pooled = render (run_grid ~jobs:8 ()) in
  check_str "jobs 1 == jobs 8" serial pooled

let find_cell t v =
  let _, r =
    List.find (fun ((c : Serve.cell), _) -> c.Serve.sc_variant = v)
      (Serve.cells t)
  in
  Serve.serving_exn r

(* Past the knee the un-released hog's page stealing outruns the server's
   self-healing re-prefetches; buffered release keeps the free pool
   healthy.  This is the experiment's reason to exist, so pin it. *)
let test_b_beats_o_on_p999 () =
  let t = run_grid ~jobs:2 () in
  let o = find_cell t E.O and b = find_cell t E.B in
  let p999 s = Histogram.percentile s.Server.sm_hist 99.9 in
  check_bool
    (Printf.sprintf "B p999 (%s) < O p999 (%s)"
       (Time_ns.to_string (p999 b))
       (Time_ns.to_string (p999 o)))
    true
    (p999 b < p999 o);
  check_bool "B SLO attainment >= O's" true
    (Server.slo_attainment b >= Server.slo_attainment o)

(* Open-loop bookkeeping: every arrival is eventually served (the driver
   drains the queue before stopping), and the histogram holds exactly the
   post-warmup completions. *)
let test_summary_conserves_requests () =
  let t = run_grid ~jobs:2 () in
  List.iter
    (fun (_, r) ->
      let s = Serve.serving_exn r in
      check_int "served == arrived" s.Server.sm_arrived s.Server.sm_completed;
      check_bool "histogram excludes only warmup" true
        (s.Server.sm_recorded <= s.Server.sm_completed
        && s.Server.sm_recorded > 0);
      check_bool "slo_ok bounded by recorded" true
        (s.Server.sm_slo_ok >= 0 && s.Server.sm_slo_ok <= s.Server.sm_recorded);
      check_bool "queue depth observed" true (s.Server.sm_max_queue >= 1))
    (Serve.cells t)

let test_unknown_hog_rejected () =
  check_bool "Serve.run raises on unknown hog" true
    (match Serve.run ~workload:"nope" ~rates:[ 100.0 ] () with
    | _ -> false
    | exception Failure msg ->
        (* the error must name the offender and the valid set *)
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        contains "nope" msg && contains "MATVEC" msg)

let () =
  Alcotest.run "memhog_serve"
    [
      ( "serve",
        [
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "B beats O on p999" `Quick test_b_beats_o_on_p999;
          Alcotest.test_case "request conservation" `Quick
            test_summary_conserves_requests;
          Alcotest.test_case "unknown hog rejected" `Quick
            test_unknown_hog_rejected;
        ] );
    ]
