(* KVSERVE: a key-value / page-cache server's data plane.

   The keyspace is the paper's worst case for compiler analysis: each
   request reads one slot of a large index array (which key) and then the
   value it points at, an indirect a[b[i]] reference into a values region
   several times larger than physical memory.  The compiler can prefetch
   the indirect stream (3PO's observation: oblivious far-memory apps are
   dominated by exactly this pattern) but can never release it, so under a
   memory hog the server's residency is entirely at the replacement
   policy's mercy.

   Two consumers share these shapes:

   - [make] builds the IR program, for the compiler tests and for batch
     runs: a request loop with unknown bounds over the index + values pair.
   - [sizing] exposes the machine-relative dimensions to the open-loop
     driver ({!Memhog_exec.Server}), which replays the same access pattern
     request-by-request under Poisson arrivals and Zipfian popularity
     instead of as a batch loop.

   KVSERVE is deliberately not registered in {!Workload.all}: the paper
   matrix (figures, baselines) is the six Table 2 kernels; serving gets its
   own experiment surface. *)

open Memhog_compiler

type sizing = {
  kv_nkeys : int;       (* distinct keys (millions at paper scale) *)
  kv_index_bytes : int; (* the b[] array: 8 bytes per key *)
  kv_values_bytes : int;(* the a[] region; several times physical memory *)
  kv_theta : float;     (* Zipf exponent of key popularity *)
}

(* theta = 1.5: a concentrated Zipf.  At theta = 1 the mass is scale-free
   (coverage grows only logarithmically in resident pages), so the server
   is disk-bound no matter what the memory manager does; at 1.5 the tail
   mass beyond k keys falls as 1/sqrt(k) and a few hundred resident pages
   cover >99% of traffic — making residency, the thing releases protect,
   the deciding factor.  The sampler's CDF table uses libm [( ** )], which
   glibc computes correctly rounded, so serving baselines stay
   byte-reproducible. *)
let theta = 1.5

let sizing ~mem_bytes ~page_bytes =
  let values_bytes = mem_bytes * 4 in
  let value_pages = values_bytes / page_bytes in
  (* Hundreds of keys share one value page: 4.9 M keys at paper scale. *)
  let nkeys = value_pages * 256 in
  {
    kv_nkeys = nkeys;
    kv_index_bytes = nkeys * 8;
    kv_values_bytes = values_bytes;
    kv_theta = theta;
  }

let make ~mem_bytes ~page_bytes =
  let s = sizing ~mem_bytes ~page_bytes in
  let k = s.kv_index_bytes / 8 in
  let v = s.kv_values_bytes / 8 in
  let arrays =
    [
      Ir.array_decl "index" ~size:(Ir.param "K");
      Ir.array_decl "values" ~size:(Ir.param "V");
    ]
  in
  (* The request loop: bounds unknown (traffic-dependent), one index read
     and one indirect value read per request.  The compiler prefetches both
     streams but the indirect values array is never released. *)
  let request_loop =
    Ir.loop ~known:false ~var:"r" ~lo:(Ir.cst 0) ~hi:(Ir.param "R")
      (Ir.S_body
         {
           Ir.refs =
             [
               Ir.direct "index" [ ("r", Ir.C_const 1) ] ~write:false;
               Ir.indirect ~every:1 "values" ~via:"index" ~write:false;
             ];
           work_ns_per_iter = 200;
         })
  in
  let prog =
    {
      Ir.prog_name = "kvserve";
      arrays;
      assumptions = [ ("R", None); ("K", None); ("V", None) ];
      procs = [];
      main = request_loop;
    }
  in
  (prog, [ ("R", k); ("K", k); ("V", v) ])
