(** The benchmark suite: out-of-core versions of five NAS kernels plus the
    MATVEC kernel (Table 2).

    Each workload builds a loop-nest program whose data set is sized
    relative to the machine's memory (the paper grew the NAS data sets
    beyond the 75 MB available), together with the runtime parameter values
    the compiled executable runs under.  The traits named in Table 2 are
    encoded structurally:

    - EMBAR: one-dimensional loops, known bounds — analysis essentially
      perfect;
    - MATVEC: multi-dimensional loops with known bounds — analysis
      essentially perfect, but the temporally-reused vector is still
      released aggressively and must be saved by run-time buffering;
    - BUK: unknown bounds and an indirect (randomly accessed) array that is
      prefetched but never released;
    - CGM: unknown (small) inner loop bounds and indirect references —
      floods of unnecessary hints that the run-time layer must filter;
    - MGRID: procedures called repeatedly with different grid sizes — a
      single compiled version cannot release optimally, and reuse between
      independent loop nests is invisible to the compiler;
    - FFTPDE: runtime-varying strides that hide the dependence on the loop
      variable, so releases are tagged with reuse that does not exist. *)

type t = {
  w_name : string;
  w_description : string;   (** Table 2: what the program computes *)
  w_traits : string;        (** Table 2: access-pattern characteristics *)
  w_iterations : int;       (** repetitions of the main computation per run *)
  w_make :
    mem_bytes:int -> page_bytes:int -> Memhog_compiler.Ir.program * (string * int) list;
}

val all : t list
(** EMBAR, MATVEC, BUK, CGM, MGRID, FFTPDE — the order of the paper's
    figures. *)

val find : string -> t
(** Case-insensitive lookup; raises [Failure] naming the unknown workload
    and listing the valid ones. *)

val find_opt : string -> t option
(** Case-insensitive lookup; [None] when unknown. *)

val names : string list

val data_set_bytes : t -> mem_bytes:int -> page_bytes:int -> int
(** Total bytes across the program's arrays (the out-of-core data set). *)
