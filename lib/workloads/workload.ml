type t = {
  w_name : string;
  w_description : string;
  w_traits : string;
  w_iterations : int;
  w_make :
    mem_bytes:int -> page_bytes:int -> Memhog_compiler.Ir.program * (string * int) list;
}

let all =
  [
    {
      w_name = "EMBAR";
      w_description = "NAS EP: tabulation of Gaussian random deviates";
      w_traits = "one-dimensional loops, known bounds; pure streaming";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes -> Embar.make ~mem_bytes ~page_bytes);
    };
    {
      w_name = "MATVEC";
      w_description = "dense matrix-vector multiplication (y = A x)";
      w_traits = "multi-dimensional loops, known bounds; vector has temporal reuse";
      w_iterations = 3;
      w_make = (fun ~mem_bytes ~page_bytes -> Matvec.make ~mem_bytes ~page_bytes);
    };
    {
      w_name = "BUK";
      w_description = "NAS IS: integer bucket sort";
      w_traits = "unknown bounds; indirect refs to a large randomly-accessed array";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes -> Buk.make ~mem_bytes ~page_bytes);
    };
    {
      w_name = "CGM";
      w_description = "NAS CG: conjugate gradient, sparse matrix-vector products";
      w_traits = "unknown (small) inner bounds; indirect refs through column indices";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes -> Cgm.make ~mem_bytes ~page_bytes);
    };
    {
      w_name = "MGRID";
      w_description = "NAS MG: multigrid V-cycle on 3-D grids";
      w_traits = "bounds change across calls to the same procedures; inter-nest reuse";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes -> Mgrid.make ~mem_bytes ~page_bytes);
    };
    {
      w_name = "FFTPDE";
      w_description = "NAS FT: 3-D FFT PDE solver (butterfly passes + transposes)";
      w_traits = "stride changes within loops: false temporal reuse detected";
      w_iterations = 2;
      w_make = (fun ~mem_bytes ~page_bytes -> Fftpde.make ~mem_bytes ~page_bytes);
    };
  ]

let names = List.map (fun w -> w.w_name) all

let find_opt name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun w -> w.w_name = target) all

let find name =
  match find_opt name with
  | Some w -> w
  | None ->
      failwith
        (Printf.sprintf "unknown workload %S (valid: %s)" name
           (String.concat ", " names))

let data_set_bytes w ~mem_bytes ~page_bytes =
  let prog, params = w.w_make ~mem_bytes ~page_bytes in
  let env = Memhog_compiler.Ir.env_of_list params in
  List.fold_left
    (fun acc (a : Memhog_compiler.Ir.array_decl) ->
      acc
      + Memhog_compiler.Ir.eval_bound env a.Memhog_compiler.Ir.a_size_elems
        * a.Memhog_compiler.Ir.a_elem_bytes)
    0 prog.Memhog_compiler.Ir.arrays
