(** The observability experiment: the {!Tier_exp} brownout scenario
    (far tier hard-partitioned mid-serve) re-run with the full telemetry
    probe set and the default alert rules.

    The scenario is the acceptance test of the unified registry: with no
    other instrumentation, the alert timeline alone must show the
    breaker flapping and the SLO burning during the partition window,
    and both alerts clearing after the link heals.  The cell is
    byte-deterministic at any [--jobs] level, so the CI freezes its
    metrics document (telemetry object included) at tolerance 0. *)

type t = {
  ox_machine : Machine.t;
  ox_rate : float;       (** offered load (requests per second) *)
  ox_result : Experiment.result;
}

val brownout_chaos : string
(** {!Tier_exp.partition_chaos} plus a concurrent [disk-slow] over the
    same window: the breaker absorbs a clean partition so well that the
    server never notices, so the brownout also degrades the swap volume
    the failover traffic lands on — that is what makes the SLO burn. *)

val run :
  ?machine:Machine.t ->
  rate:float ->
  ?log:(string -> unit) ->
  unit ->
  t
(** One serving cell: the EMBAR/R hog next to the open-loop server, far
    tier under {!Tier_exp.partition_tiers}, chaos {!brownout_chaos},
    telemetry on. *)

val results : t -> Experiment.result list
(** Ready for {!Metrics.of_results}. *)

val telemetry : t -> Memhog_sim.Telemetry.t
(** The cell's registry — feed {!Trace_export.write_telemetry} to dump
    the OpenMetrics snapshot and the CSVs [memhog top] replays. *)

val check : t -> unit
(** The experiment's built-in gates: every expected probe registered, the
    [breaker_flap] rule and an SLO burn-rate rule each fired inside (or
    just after) the partition window and cleared before the run ended,
    and the timeline alternates fire/clear per rule.
    @raise Failure on the first violated invariant. *)

val render : t -> string
(** Human-readable close-out: per-series summaries with sparklines, then
    the alert timeline. *)
