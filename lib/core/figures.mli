(** Drivers that regenerate every table and figure of the paper's
    evaluation (section 4), plus the ablation studies listed in DESIGN.md.

    Most figures share one experiment matrix — every workload crossed with
    the four variants O/P/R/B, co-run with the interactive task at a 5 s
    sleep — so the matrix is built once ({!run_matrix}) and formatted many
    ways.  All output is plain text, printed in the same rows/series the
    paper reports. *)

type cell_timing = {
  ct_label : string;   (** ["WORKLOAD/VARIANT"] or ["interactive-alone"] *)
  ct_wall_s : float;   (** wall-clock seconds spent simulating that cell *)
}

type matrix = {
  mx_machine : Machine.t;
  mx_sleep : Memhog_sim.Time_ns.t;
  mx_results : (string * (Experiment.variant * Experiment.result) list) list;
  mx_alone : Experiment.interactive_summary;
  mx_jobs : int;       (** worker domains the matrix was built with *)
  mx_wall_s : float;   (** wall-clock seconds for the whole matrix *)
  mx_cells : cell_timing list;  (** per-cell wall-clock, in submission order *)
}

val matrix_results : matrix -> Experiment.result list
(** Every cell result, flattened in matrix order (workloads in submission
    order, variants O/P/R/B within each) — the order {!Metrics.of_matrix}
    serializes cells in. *)

val run_matrix :
  ?machine:Machine.t ->
  ?sleep:Memhog_sim.Time_ns.t ->
  ?workloads:string list ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?trace_dir:string ->
  ?chaos:string ->
  unit ->
  matrix
(** Runs 4 variants per workload (default: all six), each next to the
    interactive task (default sleep: 5 s, the setting of Figures 7-10b/c),
    plus the interactive-alone baseline.

    [jobs] (default 1) runs the matrix cells on that many worker domains
    ({!Pool}).  Every cell is an independent simulation with its own
    engine, OS and RNG, so [mx_results] and [mx_alone] are bit-identical
    for any [jobs] — only [mx_wall_s]/[mx_cells] change.  [log] may be
    called from worker domains, but calls are serialized.

    [chaos] applies the fault-injection plan ({!Memhog_sim.Chaos} spec) to
    every out-of-core cell; each cell rebuilds the plan from the machine
    seed, so determinism across [jobs] is preserved.  The interactive-alone
    baseline is never subjected to chaos. *)

(** {1 The paper's tables and figures} *)

val table1 : ?machine:Machine.t -> unit -> string
(** Hardware characteristics. *)

val table2 : ?machine:Machine.t -> unit -> string
(** Benchmark characteristics: what each computes, data-set size, traits,
    and the compiler's analysis statistics. *)

val fig1 :
  ?machine:Machine.t ->
  ?sleeps_s:float list ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  string
(** Interactive response time vs sleep time, out-of-core MATVEC original
    vs prefetching (section 1.1's motivating experiment). *)

val fig7 : matrix -> string
(** Normalized execution time of the out-of-core applications, broken into
    user / system / I/O stall / resource stall, for O/P/R/B. *)

val fig8 : matrix -> string
(** Soft page faults caused by the paging daemon's reference-bit
    invalidations. *)

val table3 : matrix -> string
(** Paging-daemon activity: activations and pages stolen, original vs
    prefetch+release. *)

val fig9 : matrix -> string
(** Outcomes of freed pages: who freed them (daemon vs releaser) and how
    many were rescued from the free list. *)

val fig10a :
  ?machine:Machine.t ->
  ?sleeps_s:float list ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  string
(** Interactive response vs sleep time for all four MATVEC variants. *)

val fig10b : matrix -> string
(** Interactive response at a 5 s sleep, normalized to running alone. *)

val fig10c : matrix -> string
(** Interactive hard page faults per sweep. *)

(** {1 Ablations} *)

val ablation_batch :
  ?machine:Machine.t ->
  ?targets:int list ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  string
(** Sweep the run-time layer's release batch size (the paper fixes 100
    pages and notes it never varied it). *)

val ablation_hwbits :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Hardware vs software-simulated reference bits: does releasing still pay
    when the daemon does not need to invalidate?  (The paper's section 6
    question.) *)

val ablation_conservative :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Aggressive insertion (paper) vs the idealized section-2.3.2 rule. *)

val ablation_rescue :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Free-list rescue on/off: the value of freeing to the tail. *)

val ablation_drop :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Dropping prefetches when memory is low vs letting them block. *)

val ablation_tlb :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Section 3.1.2's second PM feature: prefetched pages make no TLB entry.
    Compares TLB misses and run time when prefetches are allowed to
    displace live entries. *)

(** {1 Extensions beyond the paper's evaluation} *)

val ext_freemem :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Free-memory-over-time telemetry for MATVEC O/P/R/B next to the
    interactive task: makes the mechanism of Figures 1/10 visible — the
    free pool collapses under prefetching and stays healthy under
    releasing. *)

val ext_reactive :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Section 2.2's argument, demonstrated: a reactive (VINO-style) scheme in
    which the application only surrenders pages when the OS asks improves
    its own replacement but cannot protect the interactive task, unlike
    pro-active releasing. *)

val ext_two_hogs :
  ?machine:Machine.t -> ?jobs:int -> ?log:(string -> unit) -> unit -> string
(** Two out-of-core applications sharing the machine (the multiprogramming
    scenario section 1 motivates but the paper's evaluation does not run):
    both original vs both prefetch+release. *)

val serve_tail : Serve.t -> string
(** Figures 1/10 retold for the open-loop server: p999 response and SLO
    attainment per offered-load level and hog variant, plus the O/B p999
    ratio — the serving analogue of the normalized-response figure. *)

val serve_blame : Serve.t -> string
(** The blame complement to {!serve_tail}: each cell's tail bands (p99 and
    beyond) reduced to the share of response time spent in queue / index
    stall / value stall / CPU wait / compute — showing {e how} the
    un-released hog hurts the tail (queueing and value stalls), not just
    that it does. *)
