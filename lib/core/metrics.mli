(** Derived metrics: the stable, comparable summary of an experiment.

    An {!Experiment.result} carries raw simulation state (histograms,
    accounts, series, traces).  This module reduces it to plain data — the
    quantities the paper's figures report plus service-time percentiles —
    suitable for serialization ({!Metrics_io}), human tables
    ([memhog_cli report]) and regression comparison ([memhog_cli compare]).

    Every field is derived from simulated time and deterministic counters
    only — never wall-clock — so two runs of the same seed and
    configuration produce identical metrics regardless of [--jobs]. *)

type hist_summary = {
  hs_count : int;
  hs_sum : int;              (** sum of recorded values (simulated ns) *)
  hs_min : int;              (** 0 when empty *)
  hs_max : int;              (** 0 when empty *)
  hs_mean : float;           (** 0.0 when empty *)
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_p999 : int;
      (** the serving story's headline percentile; from the same clamped
          bucket walk as the others, so it inherits their tested semantics *)
  hs_buckets : (int * int) list;
      (** (bucket lower bound, count) for each non-empty bucket, ascending;
          enough to rebuild the histogram
          ({!Memhog_sim.Histogram.restore}) *)
}

val summarize_hist : Memhog_sim.Histogram.t -> hist_summary

(** One registered telemetry series, reduced to its all-time aggregates. *)
type tel_series = {
  es_name : string;
  es_kind : string;          (** "counter" or "gauge" *)
  es_samples : int;
  es_last : float;
  es_min : float;            (** 0.0 everywhere when the series is empty *)
  es_mean : float;
  es_max : float;
}

(** One alert-rule transition (fire or clear) from the telemetry timeline. *)
type tel_alert = {
  ea_time_ns : int;
  ea_rule : string;
  ea_fired : bool;           (** [true] = fire, [false] = clear *)
  ea_value : float;          (** the rule's signal at the transition *)
}

type telemetry_summary = {
  tm_scrapes : int;
  tm_series : tel_series list;   (** registration order *)
  tm_alerts : tel_alert list;    (** chronological *)
}

val summarize_telemetry : Memhog_sim.Telemetry.t -> telemetry_summary

(** Release accuracy (Figure 9 plus the run-time layer's own filters): how
    many pages the application released, what happened to them, and the
    rescue ratios that measure how often a release (or a daemon steal)
    turned out to be premature. *)
type release_accuracy = {
  ra_requested : int;        (** release requests reaching the OS *)
  ra_skipped : int;          (** re-referenced before the releaser acted *)
  ra_freed_daemon : int;
  ra_freed_releaser : int;
  ra_rescued_daemon : int;
  ra_rescued_releaser : int;
  ra_lost_daemon : int;
  ra_lost_releaser : int;
  ra_stale_dropped : int;
      (** run-time buffer entries invalidated before draining (0 for the
          original variant, which has no run-time layer) *)
  ra_rescue_ratio_daemon : float;
      (** rescued / freed, 0.0 when nothing was freed *)
  ra_rescue_ratio_releaser : float;
}

(** The run-time layer's graceful-degradation governor, as observed by the
    cell's run (all zeros when the governor was disabled — the healthy
    default). *)
type governor_summary = {
  g_level : int;         (** degradation level at end of run, 0..2 *)
  g_degrades : int;      (** level-up (degrading) transitions *)
  g_recoveries : int;    (** level-down (recovering) transitions *)
  g_suppressed : int;    (** hints swallowed at level 2 (directives off) *)
  g_prefetch_os_done : int;
  g_prefetch_os_dropped : int;
      (** the governor's OS-side prefetch signal: completed vs. dropped *)
}

(** Injected-fault counters of a chaos run ({!Memhog_sim.Chaos.stats} plus
    the disks' timeout count). *)
type chaos_summary = {
  ch_disk_faults : int;
  ch_disk_retries : int;
  ch_disk_backoff_ns : int;
  ch_disk_timeouts : int;
  ch_slow_requests : int;
  ch_releaser_stall_ns : int;
  ch_daemon_stall_ns : int;
  ch_directives_dropped : int;
  ch_pressure_spikes : int;
  ch_pressure_pages : int;
}

(** Swap-volume disk traffic, present in every cell (not only chaos runs,
    where [ch_disk_timeouts] already appeared): reads, writes, per-request
    deadline misses and demand-over-background bypasses summed over the
    stripe's disks, plus summed busy time. *)
type disk_summary = {
  dk_reads : int;
  dk_writes : int;
  dk_timeouts : int;     (** requests whose total latency exceeded the
                             per-request deadline *)
  dk_bypasses : int;     (** demand requests that overtook queued
                             background work at the arm scheduler *)
  dk_busy_ns : int;      (** summed arm-busy time across disks *)
}

(** One backing tier's traffic row ({!Memhog_vm.Tiers.tier_summary} with
    the tier id rendered as its name). *)
type tier_row = {
  tr_tier : string;      (** ["disk"], ["far"] or ["zram"] *)
  tr_reads : int;
  tr_writes : int;
  tr_timeouts : int;     (** far only: RPC attempts aborted at deadline *)
  tr_retries : int;      (** far only: re-issues after a timeout *)
  tr_rejects : int;      (** zram only: stores refused at capacity *)
  tr_failovers : int;    (** placements that fell back to the swap copy *)
  tr_breaker_transitions : int;
}

(** The tiered-store close-out, present only when the cell ran with a
    [--tiers] spec: per-tier traffic, cross-tier rescue count, the far
    breaker's final state, and the governor's tier-aware buffering
    count. *)
type tiers_summary = {
  ti_tiers : tier_row list;   (** tier-id order; disk always present *)
  ti_rescues : int;      (** fetches satisfied from the durable swap copy
                             after the fast tier failed or was open *)
  ti_breaker_state : int;     (** 0 closed, 1 half-open, 2 open *)
  ti_placed : int;            (** pages currently resident in a fast tier *)
  ti_zram_amplification : float;
      (** logical bytes stored per physical byte in the compressed tier
          (0.0 without a zram tier or when it is empty) *)
  ti_tier_buffered : int;
      (** releases the run-time layer buffered locally because the far
          breaker was open ({!Memhog_runtime.Runtime}[.rt_tier_buffered]) *)
}

(** The open-loop serving cell's close-out: offered load, SLO attainment
    and the response-time distribution (responses measured from {e arrival}
    — queueing delay under memory pressure is charged to the request). *)
type serving_summary = {
  sv_offered_rps : float;
  sv_duration_ns : int;    (** arrival-window length *)
  sv_slo_ns : int;         (** per-request response target *)
  sv_arrived : int;
  sv_completed : int;
  sv_recorded : int;       (** completed minus warm-up skips *)
  sv_max_queue : int;      (** deepest request backlog observed *)
  sv_slo_ok : int;
  sv_slo_attainment : float;
      (** slo_ok / recorded; 0.0 when none were recorded (a starved cell
          attained nothing) *)
  sv_mark_ns : int option;
      (** recovery mark (offset past window start), when the cell set one *)
  sv_post_recorded : int;  (** recorded responses arriving post-mark *)
  sv_post_slo_ok : int;
  sv_post_attainment : float;
      (** post-mark SLO attainment — the recovery figure a chaos scenario
          asserts on; 0.0 without a mark *)
  sv_response : hist_summary; (** p50/p99/p999 response times *)
}

val serving_of : Memhog_exec.Server.summary -> serving_summary

(** One percentile band of the blame table: the summed response-time
    decomposition of the sampled requests whose response fell in the band.
    Within a band the five component sums add up exactly to
    [bb_response_ns] — additivity is structural in {!Memhog_sim.Reqtrace}
    and survives aggregation. *)
type blame_band = {
  bb_label : string;     (** ["body"] (< p99), ["tail"] (p99 ≤ r < p999)
                             or ["deep"] (≥ p999) *)
  bb_count : int;        (** sampled requests in the band *)
  bb_queue_ns : int;     (** arrival → dequeue *)
  bb_index_ns : int;     (** index-page touch stall *)
  bb_value_ns : int;     (** value-page touch stall *)
  bb_cpu_ns : int;       (** CPU-semaphore wait *)
  bb_compute_ns : int;   (** per-request compute burst *)
  bb_response_ns : int;  (** component sum = arrival → completion *)
}

(** The serve cell's per-request blame close-out ([memhog blame]): where
    recorded response time went, for the body of the distribution and for
    the tail separately.  Component histograms cover {e every} recorded
    request (population-exact); the band table is built from the
    deterministic reservoir sample ([bl_sampled] of [bl_committed],
    capped at [bl_cap]). *)
type blame_summary = {
  bl_committed : int;       (** recorded requests (spans committed) *)
  bl_sampled : int;         (** spans retained by the reservoir *)
  bl_cap : int;             (** reservoir capacity *)
  bl_p50_ns : int;
  bl_p99_ns : int;
  bl_p999_ns : int;         (** band boundaries, from [bl_response] *)
  bl_bands : blame_band list;  (** body, tail, deep — in that order *)
  bl_response : hist_summary;
  bl_queue : hist_summary;
  bl_index : hist_summary;
  bl_value : hist_summary;
  bl_cpu : hist_summary;
  bl_compute : hist_summary;   (** per-component population histograms *)
  bl_pf_slack : hist_summary;
      (** prefetch slack: touch time minus (issue + observed I/O span) for
          hidden prefetches — how much margin the arrival-time prefetch had *)
  bl_pf_hidden : int;       (** touches whose prefetch won the race *)
  bl_pf_lost : int;         (** touches that hard-faulted despite one *)
  bl_bypasses : int;        (** demand arm acquisitions that overtook
                                queued background work *)
  bl_disk_queue_ns : int;   (** demand arm-queue wait, summed *)
  bl_disk_service_ns : int; (** demand arm-held service time, summed *)
  bl_transit_ns : int;      (** waits behind pages already in transit *)
}

val blame_of : Memhog_sim.Reqtrace.summary -> blame_summary

type cell = {
  c_workload : string;
  c_variant : string;
  c_elapsed_ns : int;
  c_iterations : int;
  c_app_breakdown : Experiment.breakdown;    (** Figure 7 components *)
  c_inter_breakdown : Experiment.breakdown option;
  c_fault : hist_summary;        (** demand-fault service times *)
  c_prefetch : hist_summary;     (** completed-prefetch service times *)
  c_response : hist_summary option;
      (** interactive per-sweep response times (warm-up skipped) *)
  c_release : release_accuracy;
  c_telemetry : telemetry_summary;
      (** the telemetry registry's close-out: per-series aggregates
          ("free", "app-rss", ... plus the full probe set when the cell
          ran with telemetry on) and the alert timeline *)
  c_hard_faults : int;
  c_soft_faults : int;
  c_swap_reads : int;
  c_swap_writes : int;
  c_governor : governor_summary option;
      (** present whenever the cell has a run-time layer (all variants but
          O), even with the governor off, so the field's shape is stable *)
  c_chaos : chaos_summary option;  (** present only for chaos runs *)
  c_disk : disk_summary;           (** always present *)
  c_tiers : tiers_summary option;  (** present only for tiered cells *)
  c_trace_dropped : int;
      (** events the cell's trace ring overwrote (0 when tracing was off);
          a non-zero value warns that the exported Chrome trace is
          truncated — the ledger, fed at the emit point, is not *)
  c_ledger : Memhog_sim.Ledger.summary;
      (** page-lifecycle close-out: wasted-work taxonomy and the
          per-directive-site efficacy table *)
  c_sites : Memhog_compiler.Pir.site_info list;
      (** static directive sites of the cell's compiled program, joining
          ledger rows back to source-level descriptions *)
  c_serving : serving_summary option;  (** present only for serve cells *)
  c_blame : blame_summary option;
      (** per-request blame decomposition; present only for serve cells *)
}

(** Matrix-wide aggregates, built with {!Memhog_sim.Account.add_to},
    {!Memhog_vm.Vm_stats.add_proc}, {!Memhog_vm.Vm_stats.add_global} and
    {!Memhog_sim.Histogram.merge}. *)
type totals = {
  t_cells : int;
  t_elapsed_ns : int;
  t_breakdown : Experiment.breakdown;  (** summed app-driver accounts *)
  t_proc : Memhog_vm.Vm_stats.proc;    (** summed app per-process counters *)
  t_global : Memhog_vm.Vm_stats.global;
  t_fault : hist_summary;              (** merged across cells *)
  t_prefetch : hist_summary;
  t_response : hist_summary;
}

type t = { m_label : string; m_cells : cell list; m_totals : totals }

val of_result : Experiment.result -> cell

val of_results : label:string -> Experiment.result list -> t
(** Cells in the given order; totals aggregated over all of them. *)

val of_matrix : Figures.matrix -> t
(** The whole experiment matrix, cells in {!Figures.matrix_results} order.
    Contains only simulated quantities: independent of [--jobs] and
    wall-clock. *)
