let clamp_jobs jobs = max 1 (min 64 jobs)

let default_jobs () = clamp_jobs (Domain.recommended_domain_count ())

type t = {
  p_jobs : int;
  p_mutex : Mutex.t;
  p_work_ready : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_shutdown : bool;
  mutable p_workers : unit Domain.t list;
}

(* Workers block on the condition variable until a task or shutdown
   arrives.  Tasks are wrapped by [run_list] and never raise. *)
let worker t () =
  let rec next () =
    Mutex.lock t.p_mutex;
    let rec take () =
      match Queue.take_opt t.p_queue with
      | Some task ->
          Mutex.unlock t.p_mutex;
          Some task
      | None ->
          if t.p_shutdown then begin
            Mutex.unlock t.p_mutex;
            None
          end
          else begin
            Condition.wait t.p_work_ready t.p_mutex;
            take ()
          end
    in
    match take () with
    | None -> ()
    | Some task ->
        task ();
        next ()
  in
  next ()

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    {
      p_jobs = jobs;
      p_mutex = Mutex.create ();
      p_work_ready = Condition.create ();
      p_queue = Queue.create ();
      p_shutdown = false;
      p_workers = [];
    }
  in
  if jobs > 1 then
    t.p_workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.p_jobs

let shutdown t =
  Mutex.lock t.p_mutex;
  t.p_shutdown <- true;
  Condition.broadcast t.p_work_ready;
  Mutex.unlock t.p_mutex;
  let workers = t.p_workers in
  t.p_workers <- [];
  List.iter Domain.join workers

let submit t task =
  Mutex.lock t.p_mutex;
  Queue.add task t.p_queue;
  Condition.signal t.p_work_ready;
  Mutex.unlock t.p_mutex

let run_list t f xs =
  if t.p_jobs <= 1 || t.p_workers = [] then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let first_error = Atomic.make None in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let task i () =
        (match f arr.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      in
      for i = 0 to n - 1 do
        submit t (task i)
      done;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) results)
    end
  end

let map ~jobs f xs =
  let jobs = clamp_jobs jobs in
  if jobs <= 1 then List.map f xs
  else begin
    let t = create ~jobs:(min jobs (List.length xs)) in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run_list t f xs)
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
