(** Exporters for {!Memhog_sim.Trace} and {!Memhog_sim.Telemetry}.

    Two formats:
    - Chrome [trace_event] JSON (load in [chrome://tracing] or Perfetto):
      one lane (thread) per process and per kernel daemon, instant events
      for faults/steals/releases, counter tracks for free-list depth and
      RSS samples, and begin/end pairs for application phases.  Timestamps
      are simulated nanoseconds rendered as the format's microseconds.
      Disk request completions render as duration slices, and {e flow
      events} (arrows) link each directive's chain across lanes:
      prefetch-sent → issued → done → the fault it absorbed, and
      release-sent → releaser-free → rescue / refault / frame reuse.
      The document's [metadata.dropped_events] records ring overflow, so
      a truncated export is detectable.
    - CSV time series ([series,time_ns,value] rows) for figure
      regeneration. *)

val to_chrome_json : Memhog_sim.Trace.t -> string
(** The complete [{"traceEvents": [...], "metadata": {...}}] document. *)

val write_chrome_json : Memhog_sim.Trace.t -> path:string -> unit

val blame_span_to_chrome_json : Memhog_sim.Reqtrace.span -> string
(** One sampled request's critical path as a standalone Chrome-trace
    document: the request slice (lane 0), its additive blame components
    rendered as a gapless telescoping strip (lane 1: queue, index, value,
    cpu wait, compute), and the recorded demand-disk / in-transit
    sub-intervals that explain the stalls (lane 2).  Typically fed
    {!Memhog_sim.Reqtrace.slowest} — the p100 request, opened directly in
    Perfetto. *)

val write_blame_span : Memhog_sim.Reqtrace.span -> path:string -> unit

val write_series_csv : Memhog_sim.Telemetry.t -> path:string -> unit
(** {!Memhog_sim.Telemetry.to_csv} to a file: header [series,time_ns,value],
    one row per retained sample, series in registration order.  The
    always-registered [trace-dropped] counter makes ring overflow visible
    in this export too. *)

val write_telemetry : Memhog_sim.Telemetry.t -> dir:string -> unit
(** The full telemetry dump consumed by [memhog top]: creates [dir] if
    needed and writes [openmetrics.txt] (text exposition),
    [series.csv] and [alerts.csv]. *)

val summary : Memhog_sim.Trace.t -> string
(** Human-readable event tally (one line per event kind), plus retained and
    dropped totals. *)
