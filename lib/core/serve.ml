(* The serving experiment grid: the open-loop key-value server co-run with
   a memory hog, swept over offered load x hog variant.

   Each cell is an independent simulation (own engine, OS, RNG streams), so
   the grid is bit-identical at any --jobs level; Pool.map only changes
   wall-clock.  The headline comparison is the paper's interactivity story
   retold for tail latency: at the same offered load, the un-released hog
   (O) steals the server's pages and p999 collapses under queueing, while
   the buffered-release hog (B) keeps the free pool healthy and the tail
   survives. *)

open Memhog_sim
module E = Experiment
module Server = Memhog_exec.Server
module Workload = Memhog_workloads.Workload

type cell = { sc_rate : float; sc_variant : E.variant }

type t = {
  s_machine : Machine.t;
  s_workload : string;
  s_slo : Time_ns.t;
  s_chaos : string option;
  s_cells : (cell * E.result) list;
}

let default_rates = [ 3200.0; 4480.0 ]
let default_variants = [ E.O; E.B ]
let default_hog = "MATVEC"

let cells t = t.s_cells
let results t = List.map snd t.s_cells

let run ?(machine = Machine.paper) ?(workload = default_hog)
    ?(rates = default_rates) ?(variants = default_variants)
    ?(slo = Time_ns.ms 30) ?(duration = Time_ns.sec 20) ?chaos ?(jobs = 1)
    ?(log = fun (_ : string) -> ()) () =
  let w = Workload.find workload in
  let grid =
    List.concat_map
      (fun rate ->
        List.map (fun v -> { sc_rate = rate; sc_variant = v }) variants)
      rates
  in
  let results =
    Pool.map ~jobs
      (fun c ->
        log
          (Printf.sprintf "serve: %s/%s hog @ %g rps" workload
             (E.variant_name c.sc_variant) c.sc_rate);
        let serve =
          E.serve_cfg ~machine ~slo ~duration ~rate_rps:c.sc_rate ()
        in
        E.run
          (E.setup ~machine ~workload:w ~variant:c.sc_variant ?chaos ~serve ()))
      grid
  in
  {
    s_machine = machine;
    s_workload = workload;
    s_slo = slo;
    s_chaos = chaos;
    s_cells = List.combine grid results;
  }

let serving_exn (r : E.result) =
  match r.E.r_serving with
  | Some s -> s
  | None -> invalid_arg "Serve: result has no serving summary"

let render t =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "Serving under a %s hog (%s)%s@,SLO: %s from arrival@,@," t.s_workload
    t.s_machine.Machine.m_name
    (match t.s_chaos with
    | Some spec -> Printf.sprintf ", chaos: %s" spec
    | None -> "")
    (Time_ns.to_string t.s_slo);
  Report.table ~title:"Tail latency vs offered load"
    ~header:
      [
        "hog"; "offered"; "arrived"; "served"; "queue max"; "p50"; "p99";
        "p999"; "max"; "SLO";
      ]
    ~rows:
      (List.map
         (fun (c, r) ->
           let s = serving_exn r in
           let h = s.Server.sm_hist in
           [
             Printf.sprintf "%s/%s" t.s_workload (E.variant_name c.sc_variant);
             Printf.sprintf "%s rps" (Report.f1 c.sc_rate);
             Report.count s.Server.sm_arrived;
             Report.count s.Server.sm_recorded;
             Report.count s.Server.sm_max_queue;
             Report.ns (Histogram.percentile h 50.0);
             Report.ns (Histogram.percentile h 99.0);
             Report.ns (Histogram.percentile h 99.9);
             Report.ns
               (Option.value (Histogram.max_value h) ~default:0);
             Report.pct (Server.slo_attainment s);
           ])
         t.s_cells)
    fmt ();
  Format.pp_close_box fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf
