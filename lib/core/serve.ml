(* The serving experiment grid: the open-loop key-value server co-run with
   a memory hog, swept over offered load x hog variant.

   Each cell is an independent simulation (own engine, OS, RNG streams), so
   the grid is bit-identical at any --jobs level; Pool.map only changes
   wall-clock.  The headline comparison is the paper's interactivity story
   retold for tail latency: at the same offered load, the un-released hog
   (O) steals the server's pages and p999 collapses under queueing, while
   the buffered-release hog (B) keeps the free pool healthy and the tail
   survives. *)

open Memhog_sim
module E = Experiment
module Server = Memhog_exec.Server
module Workload = Memhog_workloads.Workload

type cell = { sc_rate : float; sc_variant : E.variant }

type t = {
  s_machine : Machine.t;
  s_workload : string;
  s_slo : Time_ns.t;
  s_chaos : string option;
  s_cells : (cell * E.result) list;
}

let default_rates = [ 3200.0; 4480.0 ]
let default_variants = [ E.O; E.B ]
let default_hog = "MATVEC"

let cells t = t.s_cells
let results t = List.map snd t.s_cells

let run ?(machine = Machine.paper) ?(workload = default_hog)
    ?(rates = default_rates) ?(variants = default_variants)
    ?(slo = Time_ns.ms 30) ?(duration = Time_ns.sec 20) ?chaos ?tiers ?mark
    ?(jobs = 1) ?(log = fun (_ : string) -> ()) () =
  let w = Workload.find workload in
  let grid =
    List.concat_map
      (fun rate ->
        List.map (fun v -> { sc_rate = rate; sc_variant = v }) variants)
      rates
  in
  let results =
    Pool.map ~jobs
      (fun c ->
        log
          (Printf.sprintf "serve: %s/%s hog @ %g rps" workload
             (E.variant_name c.sc_variant) c.sc_rate);
        let serve =
          E.serve_cfg ~machine ~slo ~duration ?mark ~rate_rps:c.sc_rate ()
        in
        E.run
          (E.setup ~machine ~workload:w ~variant:c.sc_variant ?chaos ?tiers
             ~serve ()))
      grid
  in
  {
    s_machine = machine;
    s_workload = workload;
    s_slo = slo;
    s_chaos = chaos;
    s_cells = List.combine grid results;
  }

let serving_exn (r : E.result) =
  match r.E.r_serving with
  | Some s -> s
  | None -> invalid_arg "Serve: result has no serving summary"

let render t =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "Serving under a %s hog (%s)%s@,SLO: %s from arrival@,@," t.s_workload
    t.s_machine.Machine.m_name
    (match t.s_chaos with
    | Some spec -> Printf.sprintf ", chaos: %s" spec
    | None -> "")
    (Time_ns.to_string t.s_slo);
  Report.table ~title:"Tail latency vs offered load"
    ~header:
      [
        "hog"; "offered"; "arrived"; "served"; "queue max"; "p50"; "p99";
        "p999"; "max"; "SLO";
      ]
    ~rows:
      (List.map
         (fun (c, r) ->
           let s = serving_exn r in
           let h = s.Server.sm_hist in
           [
             Printf.sprintf "%s/%s" t.s_workload (E.variant_name c.sc_variant);
             Printf.sprintf "%s rps" (Report.f1 c.sc_rate);
             Report.count s.Server.sm_arrived;
             Report.count s.Server.sm_recorded;
             Report.count s.Server.sm_max_queue;
             Report.ns (Histogram.percentile h 50.0);
             Report.ns (Histogram.percentile h 99.0);
             Report.ns (Histogram.percentile h 99.9);
             Report.ns
               (Option.value (Histogram.max_value h) ~default:0);
             Report.pct (Server.slo_attainment s);
           ])
         t.s_cells)
    fmt ();
  (* A cell that recorded nothing reports 0% attainment, but the zero is
     easy to misread as "merely bad" — call it out explicitly. *)
  List.iter
    (fun (c, r) ->
      let s = serving_exn r in
      if s.Server.sm_recorded = 0 then
        Format.fprintf fmt
          "@,WARNING: %s/%s @ %s rps recorded no responses (%d completed, \
           none past warm-up): the server starved; its 0%% SLO attainment \
           is vacuous, not measured."
          t.s_workload
          (E.variant_name c.sc_variant)
          (Report.f1 c.sc_rate) s.Server.sm_completed)
    t.s_cells;
  Format.pp_close_box fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let blame_exn (r : E.result) =
  match r.E.r_blame with
  | Some b -> b
  | None -> invalid_arg "Serve: result has no blame summary"

let render_blame t =
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "Blame: where response time went, body vs tail (%s hog, %s)@,@,"
    t.s_workload t.s_machine.Machine.m_name;
  (* Mean per-request decomposition, one row per percentile band: the five
     components are additive by construction, so each row's parts sum to
     its response column exactly. *)
  Report.table ~title:"Tail blame (mean per request, by percentile band)"
    ~header:
      [
        "hog"; "offered"; "band"; "reqs"; "queue"; "index"; "value";
        "cpu wait"; "compute"; "response";
      ]
    ~rows:
      (List.concat_map
         (fun (c, r) ->
           let b = blame_exn r in
           List.map
             (fun (bd : Reqtrace.band) ->
               let n = max 1 bd.Reqtrace.bd_count in
               let per v = Report.ns (v / n) in
               [
                 Printf.sprintf "%s/%s" t.s_workload
                   (E.variant_name c.sc_variant);
                 Printf.sprintf "%s rps" (Report.f1 c.sc_rate);
                 bd.Reqtrace.bd_label;
                 Report.count bd.Reqtrace.bd_count;
                 per bd.Reqtrace.bd_queue;
                 per bd.Reqtrace.bd_index;
                 per bd.Reqtrace.bd_value;
                 per bd.Reqtrace.bd_cpu;
                 per bd.Reqtrace.bd_compute;
                 per bd.Reqtrace.bd_response;
               ])
             b.Reqtrace.su_bands)
         t.s_cells)
    fmt ();
  Format.fprintf fmt "@,";
  Report.table ~title:"Prefetch race and demand-disk attribution"
    ~header:
      [
        "hog"; "offered"; "sampled"; "pf hidden"; "pf lost"; "slack p50";
        "bypasses"; "arm queue"; "arm service"; "transit";
      ]
    ~rows:
      (List.map
         (fun (c, r) ->
           let b = blame_exn r in
           [
             Printf.sprintf "%s/%s" t.s_workload (E.variant_name c.sc_variant);
             Printf.sprintf "%s rps" (Report.f1 c.sc_rate);
             Printf.sprintf "%s/%s"
               (Report.count b.Reqtrace.su_sampled)
               (Report.count b.Reqtrace.su_committed);
             Report.count b.Reqtrace.su_pf_hidden;
             Report.count b.Reqtrace.su_pf_lost;
             Report.ns (Histogram.percentile b.Reqtrace.su_pf_slack 50.0);
             Report.count b.Reqtrace.su_bypasses;
             Report.ns b.Reqtrace.su_disk_queue;
             Report.ns b.Reqtrace.su_disk_service;
             Report.ns b.Reqtrace.su_transit;
           ])
         t.s_cells)
    fmt ();
  Format.pp_close_box fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf
