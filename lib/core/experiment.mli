(** Experiment driver: build a machine, run one out-of-core application
    variant (optionally next to the interactive task), collect every metric
    the paper's evaluation reports.

    The four variants match the bars of Figures 7-10:
    - [O] — the original program, no paging directives;
    - [P] — compiler-inserted prefetching only;
    - [R] — prefetching + releasing, releases issued aggressively;
    - [B] — prefetching + releasing, releases buffered by priority. *)

type variant = O | P | R | B

val variant_name : variant -> string
val all_variants : variant list

type interactive_summary = {
  is_sleep : Memhog_sim.Time_ns.t;
  is_avg_response : Memhog_sim.Time_ns.t option; (** None: too few sweeps *)
  is_avg_hard_faults : float option;
  is_sweeps : int;
  is_alone_response : Memhog_sim.Time_ns.t;
      (** ideal warm response (no faults) *)
}

type breakdown = {
  b_user : Memhog_sim.Time_ns.t;
  b_system : Memhog_sim.Time_ns.t;
  b_io_stall : Memhog_sim.Time_ns.t;
  b_resource_stall : Memhog_sim.Time_ns.t;
}

val breakdown_total : breakdown -> Memhog_sim.Time_ns.t

val breakdown_of_account : Memhog_sim.Account.t -> breakdown
(** Project an account onto the four Figure 7 components (dropping
    [Sleep]). *)

type result = {
  r_workload : string;
  r_variant : variant;
  r_elapsed : Memhog_sim.Time_ns.t;   (** out-of-core app completion time *)
  r_iterations : int;                 (** main-computation passes executed *)
  r_breakdown : breakdown;            (** Figure 7 components *)
  r_account : Memhog_sim.Account.t;
      (** the app driver's raw per-category account ([r_breakdown]'s
          source), kept so totals can be built with
          {!Memhog_sim.Account.add_to} *)
  r_inter_breakdown : breakdown option;
      (** the interactive task's Figure 7 components, when present *)
  r_app_stats : Memhog_vm.Vm_stats.proc;
  r_inter_stats : Memhog_vm.Vm_stats.proc option;
  r_global : Memhog_vm.Vm_stats.global;
  r_runtime : Memhog_runtime.Runtime.stats option;
  r_compiler : Memhog_compiler.Pir.gen_stats;
  r_interactive : interactive_summary option;
  r_app_tlb_misses : int;
  r_telemetry : Memhog_sim.Telemetry.t;
      (** the unified telemetry registry, scraped every 100 ms of simulated
          time.  Always carries the legacy series — "free" (free pages),
          "app-rss", "app-limit" (the Equation 1 upper limit the OS
          published), "inter-rss" when the interactive task is present —
          plus a "trace-dropped" counter.  With [setup.telemetry] the full
          probe set (VM, disk, tiers, runtime, server) and the default
          alert rules are registered too.  Cell-private and scraped on a
          deterministic sim-time cadence: byte-identical at any [--jobs]. *)
  r_swap_reads : int;
  r_swap_writes : int;
  r_disk_busy : Memhog_sim.Time_ns.t;
      (** summed busy time across disks (parallelism = busy / elapsed) *)
  r_invariants_ok : bool;
  r_trace : Memhog_sim.Trace.t;
      (** the event trace collected during the run ({!Memhog_sim.Trace.null}
          when tracing was not requested in the setup) *)
  r_fault_hist : Memhog_sim.Histogram.t;
      (** demand-fault service times (simulated ns), from {!Memhog_vm.Os} *)
  r_prefetch_hist : Memhog_sim.Histogram.t;
      (** completed-prefetch service times (simulated ns) *)
  r_response_hist : Memhog_sim.Histogram.t option;
      (** interactive per-sweep response times, warm-up sweep skipped *)
  r_chaos : Memhog_sim.Chaos.stats option;
      (** injected-fault counters, when a chaos spec was active *)
  r_disk_timeouts : int;
      (** swap requests whose total latency (queueing + retries + service)
          exceeded the per-request deadline, summed over disks *)
  r_disk_bypasses : int;
      (** demand requests that overtook at least one queued background
          request at the arm scheduler, summed over disks *)
  r_tiers : Memhog_vm.Tiers.summary option;
      (** the tiered-store close-out (per-tier traffic and breaker
          counters, rescues, placement), when the cell ran with a
          [tiers] spec *)
  r_ledger : Memhog_sim.Ledger.summary;
      (** the page-lifecycle ledger's close-out: per-directive-site efficacy
          rows plus the wasted-work taxonomy.  Collected whenever
          [ledger_on] (the default; the ledger is cell-private and
          byte-deterministic at any [--jobs]); empty otherwise. *)
  r_sites : Memhog_compiler.Pir.site_info list;
      (** the compiled program's static directive sites, for joining ledger
          rows back to source-level descriptions *)
  r_events_executed : int;
      (** engine events popped and run during the cell — deterministic for a
          fixed setup, so it serves as a gated work counter for the
          throughput bench *)
  r_serving : Memhog_exec.Server.summary option;
      (** the open-loop server's close-out (arrivals, completions, SLO
          counters, response histogram), when the cell ran in serve mode *)
  r_blame : Memhog_sim.Reqtrace.summary option;
      (** per-request critical-path blame: response-time decomposition
          (queue / index stall / value stall / CPU wait / compute,
          additive by construction), percentile-band blame table,
          prefetch race counters and demand-disk attribution.  Present
          exactly when the cell ran in serve mode; cell-private and
          byte-deterministic at any [--jobs]. *)
  r_reqtrace : Memhog_sim.Reqtrace.t;
      (** the raw blame layer behind [r_blame] — kept (like [r_trace]) so
          callers can reach the sampled spans themselves, e.g. to export
          the slowest request's critical path as a Chrome trace
          ({!Memhog_sim.Reqtrace.slowest});  {!Memhog_sim.Reqtrace.null}
          for batch cells *)
}

type setup = {
  machine : Machine.t;
  workload : Memhog_workloads.Workload.t;
  variant : variant;
  interactive_sleep : Memhog_sim.Time_ns.t option;
      (** [Some s]: co-run the section-1.1 interactive task with sleep [s] *)
  iterations : int option;  (** override the workload's default *)
  min_sim_time : Memhog_sim.Time_ns.t;
      (** keep repeating the main computation at least this long, so the
          interactive task completes enough sweeps *)
  conservative : bool;      (** section-2.3.2 insertion rule ablation *)
  reactive : bool;
      (** section-2.2 alternative: run the release variant's code under the
          Reactive run-time policy, registered as the OS's eviction advisor
          instead of releasing proactively *)
  release_target : int option;
      (** pages drained per run-time buffering decision (paper: 100) *)
  max_sim_time : Memhog_sim.Time_ns.t;
  trace : Memhog_sim.Trace.t option;
      (** collect kernel/runtime/application events into this trace *)
  chaos : string option;
      (** fault-injection plan ({!Memhog_sim.Chaos} spec), seeded with the
          machine seed; its presence also enables the run-time layer's
          degradation governor *)
  governor : Memhog_runtime.Runtime.governor_cfg option;
      (** explicit governor configuration (overrides the chaos default) *)
  ledger_on : bool;
      (** collect the page-lifecycle ledger (default).  The perf harness
          disables it to benchmark the bare kernel; the ledger never touches
          the engine, so work counters are identical either way. *)
  serve : Memhog_exec.Server.cfg option;
      (** [Some cfg]: serve mode — co-run the open-loop key-value server
          with the workload acting as the memory hog.  The run ends when
          the server's arrival window closes and its queue drains (the hog
          is cut off mid-iteration), and the cell's headline numbers are
          the server's tail latencies rather than the hog's elapsed time. *)
  tiers : string option;
      (** [Some spec]: install a {!Memhog_vm.Tiers} router over the swap
          volume ({!Memhog_vm.Tiers.spec_of_string} grammar) — released
          pages gain fast-tier copies routed by their Eq. 2 priorities,
          with health-checked failover back to the durable swap copy *)
  telemetry : bool;
      (** register the full telemetry probe set and the default alert rules
          (SLO burn, refault storm, free-list starvation, breaker flap,
          governor oscillation).  Off by default; the sampler fiber runs
          the same 100 ms cadence either way, so enabling telemetry never
          changes the engine schedule or any gated work counter. *)
}

val serve_cfg :
  ?slo:Memhog_sim.Time_ns.t ->
  ?duration:Memhog_sim.Time_ns.t ->
  ?warmup:int ->
  ?work_ns:Memhog_sim.Time_ns.t ->
  ?prefetch:bool ->
  ?machine:Machine.t ->
  ?mark:Memhog_sim.Time_ns.t ->
  rate_rps:float ->
  unit ->
  Memhog_exec.Server.cfg
(** Machine-relative serving configuration: keyspace shapes from
    {!Memhog_workloads.Kvserve.sizing}, seeded with the machine seed.
    Defaults: 30 ms SLO, 20 s arrival window, 32 warm-up requests, 200 us
    of compute per request, arrival-time prefetching on.  [mark] (default
    off) additionally tallies SLO attainment over requests arriving after
    that offset — the recovery figure of the chaos scenarios. *)

val setup :
  ?machine:Machine.t ->
  ?interactive_sleep:Memhog_sim.Time_ns.t ->
  ?iterations:int ->
  ?min_sim_time:Memhog_sim.Time_ns.t ->
  ?conservative:bool ->
  ?reactive:bool ->
  ?release_target:int ->
  ?max_sim_time:Memhog_sim.Time_ns.t ->
  ?trace:Memhog_sim.Trace.t ->
  ?chaos:string ->
  ?governor:Memhog_runtime.Runtime.governor_cfg ->
  ?ledger_on:bool ->
  ?serve:Memhog_exec.Server.cfg ->
  ?tiers:string ->
  ?telemetry:bool ->
  workload:Memhog_workloads.Workload.t ->
  variant:variant ->
  unit ->
  setup
(** @raise Invalid_argument when [chaos] or [tiers] does not parse. *)

val run : setup -> result

val run_interactive_alone :
  ?machine:Machine.t ->
  sleep:Memhog_sim.Time_ns.t ->
  duration:Memhog_sim.Time_ns.t ->
  unit ->
  interactive_summary
(** Baseline: the interactive task with the machine to itself. *)
