open Memhog_sim
module VS = Memhog_vm.Vm_stats
module Runtime = Memhog_runtime.Runtime
module E = Experiment

type hist_summary = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_p999 : int;
  hs_buckets : (int * int) list;
}

let summarize_hist h =
  {
    hs_count = Histogram.count h;
    hs_sum = Histogram.sum h;
    hs_min = Option.value (Histogram.min_value h) ~default:0;
    hs_max = Option.value (Histogram.max_value h) ~default:0;
    hs_mean = Histogram.mean h;
    hs_p50 = Histogram.percentile h 50.0;
    hs_p90 = Histogram.percentile h 90.0;
    hs_p99 = Histogram.percentile h 99.0;
    hs_p999 = Histogram.percentile h 99.9;
    hs_buckets = Histogram.to_alist h;
  }

type tel_series = {
  es_name : string;
  es_kind : string;
  es_samples : int;
  es_last : float;
  es_min : float;
  es_mean : float;
  es_max : float;
}

type tel_alert = {
  ea_time_ns : int;
  ea_rule : string;
  ea_fired : bool;
  ea_value : float;
}

type telemetry_summary = {
  tm_scrapes : int;
  tm_series : tel_series list;
  tm_alerts : tel_alert list;
}

let summarize_telemetry tl =
  {
    tm_scrapes = Telemetry.scrapes tl;
    tm_series =
      List.map
        (fun (ts : Telemetry.series_summary) ->
          {
            es_name = ts.Telemetry.ts_name;
            es_kind = Telemetry.kind_name ts.Telemetry.ts_kind;
            es_samples = ts.Telemetry.ts_samples;
            es_last = ts.Telemetry.ts_last;
            es_min = ts.Telemetry.ts_min;
            es_mean = ts.Telemetry.ts_mean;
            es_max = ts.Telemetry.ts_max;
          })
        (Telemetry.summaries tl);
    tm_alerts =
      List.map
        (fun (a : Telemetry.alert) ->
          {
            ea_time_ns = a.Telemetry.al_time;
            ea_rule = a.Telemetry.al_rule;
            ea_fired = a.Telemetry.al_fired;
            ea_value = a.Telemetry.al_value;
          })
        (Telemetry.alerts tl);
  }

type release_accuracy = {
  ra_requested : int;
  ra_skipped : int;
  ra_freed_daemon : int;
  ra_freed_releaser : int;
  ra_rescued_daemon : int;
  ra_rescued_releaser : int;
  ra_lost_daemon : int;
  ra_lost_releaser : int;
  ra_stale_dropped : int;
  ra_rescue_ratio_daemon : float;
  ra_rescue_ratio_releaser : float;
}

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let release_accuracy_of (r : E.result) =
  let s = r.E.r_app_stats in
  {
    ra_requested = s.VS.releases_requested;
    ra_skipped = s.VS.releases_skipped;
    ra_freed_daemon = s.VS.freed_by_daemon;
    ra_freed_releaser = s.VS.freed_by_releaser;
    ra_rescued_daemon = s.VS.rescued_daemon;
    ra_rescued_releaser = s.VS.rescued_releaser;
    ra_lost_daemon = s.VS.lost_daemon;
    ra_lost_releaser = s.VS.lost_releaser;
    ra_stale_dropped =
      (match r.E.r_runtime with
      | Some rt -> rt.Runtime.rt_release_stale_dropped
      | None -> 0);
    ra_rescue_ratio_daemon = ratio s.VS.rescued_daemon s.VS.freed_by_daemon;
    ra_rescue_ratio_releaser =
      ratio s.VS.rescued_releaser s.VS.freed_by_releaser;
  }

type governor_summary = {
  g_level : int;
  g_degrades : int;
  g_recoveries : int;
  g_suppressed : int;
  g_prefetch_os_done : int;
  g_prefetch_os_dropped : int;
}

type chaos_summary = {
  ch_disk_faults : int;
  ch_disk_retries : int;
  ch_disk_backoff_ns : int;
  ch_disk_timeouts : int;
  ch_slow_requests : int;
  ch_releaser_stall_ns : int;
  ch_daemon_stall_ns : int;
  ch_directives_dropped : int;
  ch_pressure_spikes : int;
  ch_pressure_pages : int;
}

type disk_summary = {
  dk_reads : int;
  dk_writes : int;
  dk_timeouts : int;
  dk_bypasses : int;
  dk_busy_ns : int;
}

type tier_row = {
  tr_tier : string;
  tr_reads : int;
  tr_writes : int;
  tr_timeouts : int;
  tr_retries : int;
  tr_rejects : int;
  tr_failovers : int;
  tr_breaker_transitions : int;
}

type tiers_summary = {
  ti_tiers : tier_row list;
  ti_rescues : int;
  ti_breaker_state : int;
  ti_placed : int;
  ti_zram_amplification : float;
  ti_tier_buffered : int;
}

let disk_of (r : E.result) =
  {
    dk_reads = r.E.r_swap_reads;
    dk_writes = r.E.r_swap_writes;
    dk_timeouts = r.E.r_disk_timeouts;
    dk_bypasses = r.E.r_disk_bypasses;
    dk_busy_ns = r.E.r_disk_busy;
  }

let tier_row_of (t : Memhog_vm.Tiers.tier_summary) =
  let module T = Memhog_vm.Tiers in
  {
    tr_tier = T.tier_name t.T.ts_tier;
    tr_reads = t.T.ts_reads;
    tr_writes = t.T.ts_writes;
    tr_timeouts = t.T.ts_timeouts;
    tr_retries = t.T.ts_retries;
    tr_rejects = t.T.ts_rejects;
    tr_failovers = t.T.ts_failovers;
    tr_breaker_transitions = t.T.ts_breaker_transitions;
  }

let tiers_of ~tier_buffered (s : Memhog_vm.Tiers.summary) =
  let module T = Memhog_vm.Tiers in
  {
    ti_tiers = List.map tier_row_of s.T.s_tiers;
    ti_rescues = s.T.s_rescues;
    ti_breaker_state = s.T.s_breaker_state;
    ti_placed = s.T.s_placed;
    ti_zram_amplification = s.T.s_zram_amplification;
    ti_tier_buffered = tier_buffered;
  }

type serving_summary = {
  sv_offered_rps : float;
  sv_duration_ns : int;
  sv_slo_ns : int;
  sv_arrived : int;
  sv_completed : int;
  sv_recorded : int;
  sv_max_queue : int;
  sv_slo_ok : int;
  sv_slo_attainment : float;
  sv_mark_ns : int option;
  sv_post_recorded : int;
  sv_post_slo_ok : int;
  sv_post_attainment : float;
  sv_response : hist_summary;
}

let serving_of (s : Memhog_exec.Server.summary) =
  let module Sv = Memhog_exec.Server in
  {
    sv_offered_rps = s.Sv.sm_offered_rps;
    sv_duration_ns = s.Sv.sm_duration;
    sv_slo_ns = s.Sv.sm_slo;
    sv_arrived = s.Sv.sm_arrived;
    sv_completed = s.Sv.sm_completed;
    sv_recorded = s.Sv.sm_recorded;
    sv_max_queue = s.Sv.sm_max_queue;
    sv_slo_ok = s.Sv.sm_slo_ok;
    sv_slo_attainment = Sv.slo_attainment s;
    sv_mark_ns = s.Sv.sm_mark;
    sv_post_recorded = s.Sv.sm_post_recorded;
    sv_post_slo_ok = s.Sv.sm_post_slo_ok;
    sv_post_attainment = Sv.post_attainment s;
    sv_response = summarize_hist s.Sv.sm_hist;
  }

type blame_band = {
  bb_label : string;
  bb_count : int;
  bb_queue_ns : int;
  bb_index_ns : int;
  bb_value_ns : int;
  bb_cpu_ns : int;
  bb_compute_ns : int;
  bb_response_ns : int;
}

type blame_summary = {
  bl_committed : int;
  bl_sampled : int;
  bl_cap : int;
  bl_p50_ns : int;
  bl_p99_ns : int;
  bl_p999_ns : int;
  bl_bands : blame_band list;
  bl_response : hist_summary;
  bl_queue : hist_summary;
  bl_index : hist_summary;
  bl_value : hist_summary;
  bl_cpu : hist_summary;
  bl_compute : hist_summary;
  bl_pf_slack : hist_summary;
  bl_pf_hidden : int;
  bl_pf_lost : int;
  bl_bypasses : int;
  bl_disk_queue_ns : int;
  bl_disk_service_ns : int;
  bl_transit_ns : int;
}

let blame_band_of (b : Reqtrace.band) =
  {
    bb_label = b.Reqtrace.bd_label;
    bb_count = b.Reqtrace.bd_count;
    bb_queue_ns = b.Reqtrace.bd_queue;
    bb_index_ns = b.Reqtrace.bd_index;
    bb_value_ns = b.Reqtrace.bd_value;
    bb_cpu_ns = b.Reqtrace.bd_cpu;
    bb_compute_ns = b.Reqtrace.bd_compute;
    bb_response_ns = b.Reqtrace.bd_response;
  }

let blame_of (s : Reqtrace.summary) =
  {
    bl_committed = s.Reqtrace.su_committed;
    bl_sampled = s.Reqtrace.su_sampled;
    bl_cap = s.Reqtrace.su_cap;
    bl_p50_ns = s.Reqtrace.su_p50;
    bl_p99_ns = s.Reqtrace.su_p99;
    bl_p999_ns = s.Reqtrace.su_p999;
    bl_bands = List.map blame_band_of s.Reqtrace.su_bands;
    bl_response = summarize_hist s.Reqtrace.su_response;
    bl_queue = summarize_hist s.Reqtrace.su_queue;
    bl_index = summarize_hist s.Reqtrace.su_index;
    bl_value = summarize_hist s.Reqtrace.su_value;
    bl_cpu = summarize_hist s.Reqtrace.su_cpu;
    bl_compute = summarize_hist s.Reqtrace.su_compute;
    bl_pf_slack = summarize_hist s.Reqtrace.su_pf_slack;
    bl_pf_hidden = s.Reqtrace.su_pf_hidden;
    bl_pf_lost = s.Reqtrace.su_pf_lost;
    bl_bypasses = s.Reqtrace.su_bypasses;
    bl_disk_queue_ns = s.Reqtrace.su_disk_queue;
    bl_disk_service_ns = s.Reqtrace.su_disk_service;
    bl_transit_ns = s.Reqtrace.su_transit;
  }

type cell = {
  c_workload : string;
  c_variant : string;
  c_elapsed_ns : int;
  c_iterations : int;
  c_app_breakdown : E.breakdown;
  c_inter_breakdown : E.breakdown option;
  c_fault : hist_summary;
  c_prefetch : hist_summary;
  c_response : hist_summary option;
  c_release : release_accuracy;
  c_telemetry : telemetry_summary;
  c_hard_faults : int;
  c_soft_faults : int;
  c_swap_reads : int;
  c_swap_writes : int;
  c_governor : governor_summary option;
  c_chaos : chaos_summary option;
  c_disk : disk_summary;
  c_tiers : tiers_summary option;
  c_trace_dropped : int;
  c_ledger : Ledger.summary;
  c_sites : Memhog_compiler.Pir.site_info list;
  c_serving : serving_summary option;
  c_blame : blame_summary option;
}

let governor_of (rt : Runtime.stats) =
  {
    g_level = rt.Runtime.rt_gov_level;
    g_degrades = rt.Runtime.rt_gov_degrades;
    g_recoveries = rt.Runtime.rt_gov_recoveries;
    g_suppressed = rt.Runtime.rt_gov_suppressed;
    g_prefetch_os_done = rt.Runtime.rt_prefetch_os_done;
    g_prefetch_os_dropped = rt.Runtime.rt_prefetch_os_dropped;
  }

let chaos_of ~disk_timeouts (cs : Chaos.stats) =
  {
    ch_disk_faults = cs.Chaos.disk_faults;
    ch_disk_retries = cs.Chaos.disk_retries;
    ch_disk_backoff_ns = cs.Chaos.disk_backoff_ns;
    ch_disk_timeouts = disk_timeouts;
    ch_slow_requests = cs.Chaos.slow_requests;
    ch_releaser_stall_ns = cs.Chaos.releaser_stall_ns;
    ch_daemon_stall_ns = cs.Chaos.daemon_stall_ns;
    ch_directives_dropped = cs.Chaos.directives_dropped;
    ch_pressure_spikes = cs.Chaos.pressure_spikes;
    ch_pressure_pages = cs.Chaos.pressure_pages;
  }

let of_result (r : E.result) =
  {
    c_workload = r.E.r_workload;
    c_variant = E.variant_name r.E.r_variant;
    c_elapsed_ns = r.E.r_elapsed;
    c_iterations = r.E.r_iterations;
    c_app_breakdown = r.E.r_breakdown;
    c_inter_breakdown = r.E.r_inter_breakdown;
    c_fault = summarize_hist r.E.r_fault_hist;
    c_prefetch = summarize_hist r.E.r_prefetch_hist;
    c_response = Option.map summarize_hist r.E.r_response_hist;
    c_release = release_accuracy_of r;
    c_telemetry = summarize_telemetry r.E.r_telemetry;
    c_hard_faults = r.E.r_app_stats.VS.hard_faults;
    c_soft_faults = r.E.r_app_stats.VS.soft_faults;
    c_swap_reads = r.E.r_swap_reads;
    c_swap_writes = r.E.r_swap_writes;
    c_governor = Option.map governor_of r.E.r_runtime;
    c_chaos =
      Option.map (chaos_of ~disk_timeouts:r.E.r_disk_timeouts) r.E.r_chaos;
    c_disk = disk_of r;
    c_tiers =
      Option.map
        (tiers_of
           ~tier_buffered:
             (match r.E.r_runtime with
             | Some rt -> rt.Runtime.rt_tier_buffered
             | None -> 0))
        r.E.r_tiers;
    c_trace_dropped = Trace.dropped r.E.r_trace;
    c_ledger = r.E.r_ledger;
    c_sites = r.E.r_sites;
    c_serving = Option.map serving_of r.E.r_serving;
    c_blame = Option.map blame_of r.E.r_blame;
  }

type totals = {
  t_cells : int;
  t_elapsed_ns : int;
  t_breakdown : E.breakdown;
  t_proc : VS.proc;
  t_global : VS.global;
  t_fault : hist_summary;
  t_prefetch : hist_summary;
  t_response : hist_summary;
}

let totals_of (results : E.result list) =
  let acct = Account.create () in
  let proc = VS.create_proc () in
  let global = VS.create_global () in
  let fault = Histogram.create () in
  let prefetch = Histogram.create () in
  let response = Histogram.create () in
  List.iter
    (fun (r : E.result) ->
      Account.add_to acct r.E.r_account;
      VS.add_proc proc r.E.r_app_stats;
      VS.add_global global r.E.r_global;
      Histogram.merge ~into:fault r.E.r_fault_hist;
      Histogram.merge ~into:prefetch r.E.r_prefetch_hist;
      Option.iter (Histogram.merge ~into:response) r.E.r_response_hist)
    results;
  {
    t_cells = List.length results;
    t_elapsed_ns =
      List.fold_left (fun acc (r : E.result) -> acc + r.E.r_elapsed) 0 results;
    t_breakdown = E.breakdown_of_account acct;
    t_proc = proc;
    t_global = global;
    t_fault = summarize_hist fault;
    t_prefetch = summarize_hist prefetch;
    t_response = summarize_hist response;
  }

type t = { m_label : string; m_cells : cell list; m_totals : totals }

let of_results ~label results =
  { m_label = label; m_cells = List.map of_result results; m_totals = totals_of results }

let of_matrix (m : Figures.matrix) =
  let label =
    Printf.sprintf "%s matrix, interactive sleep %gs"
      m.Figures.mx_machine.Machine.m_name
      (float_of_int m.Figures.mx_sleep /. 1e9)
  in
  of_results ~label (Figures.matrix_results m)
