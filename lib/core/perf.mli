(** Wall-clock throughput benchmark ([memhog perf], [bench perf]).

    Runs a small grid of workload cells and measures how fast the simulator
    itself executes: events/sec, faults/sec, simulated-ns per wall-ns, and
    GC allocation rates ({!Gc.quick_stat} deltas, read inside the worker
    domain that ran the cell).  Results go to a [PERF_metrics.json]
    trajectory file with a strict split:

    - ["work"] members are deterministic work counters (engine events
      executed, faults serviced, iterations, simulated ns) — identical at
      any [--jobs] level and gated zero-tolerance in CI;
    - ["wall"] members are wall-clock and allocation numbers — recorded
      informationally, never gated.

    Cells run with the page-lifecycle ledger off ([ledger_on = false]) so
    the bench sees the bare kernel; the ledger never touches the engine, so
    the work counters are the same either way (and [--ledger] turns it back
    on to measure its cost). *)

type cell = { pc_workload : string; pc_variant : Experiment.variant }

val default_cells : cell list
(** The @perf-smoke grid: MATVEC/O, MATVEC/R, EMBAR/B, CGM/P. *)

type cell_result = {
  pr_label : string;  (** "WORKLOAD/VARIANT" *)
  (* deterministic work counters (gated) *)
  pr_events : int;        (** engine events executed *)
  pr_hard_faults : int;
  pr_soft_faults : int;
  pr_iterations : int;
  pr_sim_ns : int;        (** simulated elapsed time *)
  (* wall-clock + allocation (informational) *)
  pr_wall_s : float;
  pr_events_per_sec : float;
  pr_faults_per_sec : float;
  pr_sim_ns_per_wall_ns : float;
  pr_minor_words : float;        (** GC delta over the cell *)
  pr_promoted_words : float;
  pr_major_words : float;
  pr_minor_collections : int;
  pr_major_collections : int;
  pr_minor_words_per_event : float;
}

type t = {
  p_machine : string;
  p_jobs : int;
  p_gc_minor_kb : int option;  (** explicit minor-heap size, when tuned *)
  p_ledger : bool;             (** cells ran with the lifecycle ledger on *)
  p_total_wall_s : float;
  p_cells : cell_result list;
}

val set_gc_minor_kb : int -> unit
(** Resize the minor heap (KiB; 64-bit words internally).  Applied before
    any cell runs so worker domains inherit it. *)

val run :
  ?cells:cell list ->
  ?ledger:bool ->
  ?gc_minor_kb:int ->
  machine:Machine.t ->
  jobs:int ->
  unit ->
  t
(** Run the grid on a {!Pool} with [jobs] workers.  [ledger] defaults to
    [false] (bare kernel).  GC deltas are measured inside each worker. *)

val to_json : t -> Metrics_io.json
(** Stable-key document: [{"schema": "memhog-perf", "schema_version": 1,
    "machine": ..., "jobs": ..., "cells": [{"label", "work", "wall"}, ...]}]. *)

val write_file : path:string -> t -> unit

val load_file : path:string -> (Metrics_io.json, string) result
(** Parse a perf file; fails when unreadable, malformed, or not carrying
    [schema = "memhog-perf"] / the expected [schema_version]. *)

val work_projection : Metrics_io.json -> Metrics_io.json
(** Strip every informational member (["wall"], ["jobs"], ["gc_minor_kb"],
    ["total_wall_s"]) so only the gated work counters remain.  Two runs of
    the same grid — at any [--jobs], with any wall-clock — project to
    byte-identical documents. *)

val check :
  baseline:string -> current:string -> (unit, string) result
(** CI gate: load both files and compare their {!work_projection}s at
    tolerance 0 (raw number lexemes must match).  [Error] lists the
    divergent paths. *)

val render : t -> string
(** Human-readable table of the run (events/sec, faults/sec, sim-ns per
    wall-ns, minor words per event). *)
