(* The one JSON string escaper of the repo: {!Metrics_io} and
   {!Trace_export} both route through it, so a workload name that renders
   fine in metrics.json cannot corrupt the Chrome trace. *)

let add_escaped_body buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped_body buf s;
  Buffer.contents buf

let add_escaped buf s =
  Buffer.add_char buf '"';
  add_escaped_body buf s;
  Buffer.add_char buf '"'
