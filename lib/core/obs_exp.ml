(* The observability experiment: the Tier_exp brownout scenario re-run
   with the full telemetry probe set and the default alert rules.  The
   far tier is hard-partitioned mid-window ([net-partition@6s-9s]) while
   the EMBAR/R hog keeps demoting and the open-loop server keeps
   serving; the registry must tell that story on its own — the breaker
   flaps, the SLO burns, and both alerts clear once the link heals.

   One cell, cell-private registry, deterministic scrape cadence: the
   resulting OBS_metrics.json (telemetry object included) is
   byte-identical at any [--jobs] level. *)

open Memhog_sim
module E = Experiment
module Workload = Memhog_workloads.Workload

type t = {
  ox_machine : Machine.t;
  ox_rate : float;
  ox_result : E.result;
}

let results t = [ t.ox_result ]
let telemetry t = t.ox_result.E.r_telemetry

(* The Tier_exp partition window, widened into a brownout: the breaker
   handles a clean far-link partition so well that the server never
   notices (that is Tier_exp's own gate), so on its own the partition
   flaps the breaker without burning the SLO.  Slowing the swap volume
   over the same window puts the failover traffic on a degraded disk —
   demand fetches queue behind the rescued demotions and the burn-rate
   rules cross for real, then clear as the window ends. *)
let brownout_chaos = Tier_exp.partition_chaos ^ ";disk-slow@6s-9s:factor=4"

let run ?(machine = Machine.paper) ~rate ?(log = fun (_ : string) -> ()) () =
  log
    (Printf.sprintf "obs: brownout serve cell @ %g rps under %S" rate
       brownout_chaos);
  let serve =
    E.serve_cfg ~machine ~mark:Tier_exp.partition_mark ~rate_rps:rate ()
  in
  (* Same cell as Tier_exp's partition scenario (EMBAR/R: dirty releases
     keep the demotion path hot through the window) with [telemetry]
     switched on, so every probe and rule is live. *)
  let r =
    E.run
      (E.setup ~machine ~workload:(Workload.find "EMBAR") ~variant:E.R
         ~chaos:brownout_chaos ~tiers:Tier_exp.partition_tiers
         ~trace:(Trace.create ()) ~serve ~telemetry:true ())
  in
  { ox_machine = machine; ox_rate = rate; ox_result = r }

(* The chaos window of [Tier_exp.partition_chaos], plus the slack the
   rolling windows introduce: a rule watching a 2-5 s window crosses its
   threshold only after enough post-fault scrapes accumulate, and clears
   only after the window slides past the burst. *)
let window_start = Time_ns.sec 6
let window_end = Time_ns.sec 9
let fire_slack = Time_ns.sec 3

let require name cond msg =
  if not cond then failwith (Printf.sprintf "obs %s: %s" name msg)

let check t =
  let r = t.ox_result in
  require "cell" r.E.r_invariants_ok "OS invariants violated after the run";
  let tl = r.E.r_telemetry in
  require "registry" (Telemetry.enabled tl) "telemetry registry not enabled";
  require "registry" (Telemetry.scrapes tl > 0) "registry never scraped";
  (* Every subsystem must have registered: a missing probe silently
     narrows the dashboard, so presence is part of the gate. *)
  List.iter
    (fun name ->
      require "probes"
        (Telemetry.summary_of tl name <> None)
        (Printf.sprintf "series %S missing from the registry" name))
    [
      "free"; "app-rss"; "app-limit"; "trace-dropped"; "hard-faults";
      "refaults"; "swap-queue"; "swap-timeouts"; "breaker-state";
      "breaker-transitions"; "release-buffer"; "gov-level"; "queue-depth";
      "arrivals"; "slo-recorded"; "slo-missed";
    ];
  let alerts = Telemetry.alerts tl in
  require "alerts" (alerts <> []) "the brownout produced no alerts";
  (* A named rule must fire inside (or just after — rolling-window lag)
     the partition window, and clear again before the run ends.  Fires
     outside the window (the warm-up turbulence trips the burn rules
     early, honestly) don't count. *)
  let fired_then_cleared rule ~latest_fire =
    let window_fire =
      List.find_opt
        (fun (a : Telemetry.alert) ->
          a.Telemetry.al_rule = rule && a.Telemetry.al_fired
          && a.Telemetry.al_time >= window_start
          && a.Telemetry.al_time <= latest_fire)
        alerts
    in
    match window_fire with
    | None -> require rule false "never fired inside the partition window"
    | Some fire ->
        require rule
          (List.exists
             (fun (a : Telemetry.alert) ->
               a.Telemetry.al_rule = rule
               && (not a.Telemetry.al_fired)
               && a.Telemetry.al_time > fire.Telemetry.al_time)
             alerts)
          "fired during the window but never cleared"
  in
  fired_then_cleared "breaker_flap" ~latest_fire:(window_end + fire_slack);
  (* Either burn-rate rule counts as "the SLO burned": the fast rule
     needs a half-missed 500 ms window, the slow one a fifth-missed 3 s
     window; which one trips first depends on the machine's headroom. *)
  let slo_fired rule =
    List.exists
      (fun (a : Telemetry.alert) ->
        a.Telemetry.al_rule = rule && a.Telemetry.al_fired
        && a.Telemetry.al_time >= window_start
        && a.Telemetry.al_time <= window_end + fire_slack)
      alerts
  in
  (match
     List.find_opt slo_fired [ "slo_fast_burn"; "slo_slow_burn" ]
   with
  | Some rule -> fired_then_cleared rule ~latest_fire:(window_end + fire_slack)
  | None ->
      require "slo_burn" false
        "no SLO burn-rate rule fired inside the partition window");
  (* The timeline itself must be consistent: alternating fire/clear per
     rule, nondecreasing times. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a : Telemetry.alert) ->
      let prev = Option.value (Hashtbl.find_opt seen a.Telemetry.al_rule) ~default:false in
      require "timeline"
        (a.Telemetry.al_fired = not prev)
        (Printf.sprintf "rule %S %s twice in a row" a.Telemetry.al_rule
           (if a.Telemetry.al_fired then "fired" else "cleared"));
      Hashtbl.replace seen a.Telemetry.al_rule a.Telemetry.al_fired)
    alerts

let render t =
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "Telemetry brownout: EMBAR/R + serve @ %g rps, %s over %s (%s)@,@,"
    t.ox_rate Tier_exp.partition_chaos Tier_exp.partition_tiers
    t.ox_machine.Machine.m_name;
  Format.fprintf fmt "%a" Telemetry.pp (telemetry t);
  Format.pp_close_box fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf
