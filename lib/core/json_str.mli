(** JSON string escaping, shared by every JSON writer in the repo
    ({!Metrics_io}, {!Trace_export}): quotes, backslashes, \n \r \t, and
    [\uXXXX] for remaining control characters. *)

val escape : string -> string
(** Escaped string body, without surrounding quotes. *)

val add_escaped : Buffer.t -> string -> unit
(** Append the escaped string {e with} surrounding quotes. *)

val add_escaped_body : Buffer.t -> string -> unit
