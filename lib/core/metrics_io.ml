(* Hand-rolled JSON: the repo deliberately keeps its dependency set to the
   toolchain basics, and the writer must be canonical anyway (fixed key
   order, fixed number formatting) so the zero-tolerance regression gate
   can demand byte-identical files. *)

type json =
  | Null
  | Bool of bool
  | Num of float * string
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let num_of_int i = Num (float_of_int i, string_of_int i)

let float_lexeme f =
  if not (Float.is_finite f) then "0.0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let num_of_float f =
  let f = if Float.is_finite f then f else 0.0 in
  Num (f, float_lexeme f)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string = Json_str.escape
let add_escaped = Json_str.add_escaped

let is_scalar = function
  | Null | Bool _ | Num _ | Str _ -> true
  | Arr _ | Obj _ -> false

(* Arrays whose elements are scalars (or scalar-only arrays, like histogram
   buckets) print on one line; objects and mixed arrays go multi-line. *)
let is_compact = function
  | v when is_scalar v -> true
  | Arr items -> List.for_all is_scalar items
  | _ -> false

let rec write buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num (_, lex) -> Buffer.add_string buf lex
  | Str s -> add_escaped buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items when List.for_all is_compact items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf indent item)
        items;
      Buffer.add_char buf ']'
  | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          write buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          add_escaped buf k;
          Buffer.add_string buf ": ";
          write buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* UTF-8 encode the code point (no surrogate-pair joining:
                 the writer never emits non-BMP characters). *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end;
              pos := !pos + 5
          | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = d0 then fail "expected digit"
    in
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin incr pos; digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let lex = String.sub s start (!pos - start) in
    Num (float_of_string lex, lex)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Arr [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Metrics document                                                    *)
(* ------------------------------------------------------------------ *)

let schema = "memhog-metrics"

(* v2: cells gained "governor" and "chaos" objects (null when absent).
   v3: cells gained "trace_dropped" and the page-lifecycle "ledger" object
   (wasted-work taxonomy + per-directive-site efficacy table).
   v4: histograms gained "p999_ns" and cells gained the "serving" object
   (open-loop server cells: offered load, SLO attainment, response
   percentiles; null for batch cells).
   v5: cells gained the "blame" object (serve cells: per-request
   response-time decomposition — additive queue/index/value/cpu/compute
   component histograms, percentile-band blame table, prefetch race and
   demand-disk attribution; null for batch cells).
   v6: cells gained the always-present "disk" object (swap-volume reads,
   writes, deadline misses and demand-over-background bypasses — the
   timeout counter previously surfaced only inside chaos cells) and the
   "tiers" object (tiered-store cells: per-tier traffic rows, cross-tier
   rescues, breaker state, placement and compression amplification; null
   without a --tiers spec); the "serving" object gained the recovery mark
   and its post-mark SLO tally.
   v7: the ad-hoc "series" array became the always-present "telemetry"
   object — the unified registry's close-out: scrape count, per-series
   aggregates (name, kind, samples, last/min/mean/max; the legacy trio
   plus a "trace-dropped" counter, and the full VM/disk/tiers/runtime/
   server probe set for cells run with telemetry on) and the alert-rule
   timeline (time, rule, fire|clear, signal value). *)
let schema_version = 7

let breakdown_json (b : Experiment.breakdown) =
  Obj
    [
      ("user_ns", num_of_int b.Experiment.b_user);
      ("system_ns", num_of_int b.Experiment.b_system);
      ("io_stall_ns", num_of_int b.Experiment.b_io_stall);
      ("resource_stall_ns", num_of_int b.Experiment.b_resource_stall);
    ]

let hist_json (h : Metrics.hist_summary) =
  Obj
    [
      ("count", num_of_int h.Metrics.hs_count);
      ("sum_ns", num_of_int h.Metrics.hs_sum);
      ("min_ns", num_of_int h.Metrics.hs_min);
      ("max_ns", num_of_int h.Metrics.hs_max);
      ("mean_ns", num_of_float h.Metrics.hs_mean);
      ("p50_ns", num_of_int h.Metrics.hs_p50);
      ("p90_ns", num_of_int h.Metrics.hs_p90);
      ("p99_ns", num_of_int h.Metrics.hs_p99);
      ("p999_ns", num_of_int h.Metrics.hs_p999);
      ( "buckets",
        Arr
          (List.map
             (fun (lo, c) -> Arr [ num_of_int lo; num_of_int c ])
             h.Metrics.hs_buckets) );
    ]

let release_json (ra : Metrics.release_accuracy) =
  Obj
    [
      ("requested", num_of_int ra.Metrics.ra_requested);
      ("skipped", num_of_int ra.Metrics.ra_skipped);
      ("freed_daemon", num_of_int ra.Metrics.ra_freed_daemon);
      ("freed_releaser", num_of_int ra.Metrics.ra_freed_releaser);
      ("rescued_daemon", num_of_int ra.Metrics.ra_rescued_daemon);
      ("rescued_releaser", num_of_int ra.Metrics.ra_rescued_releaser);
      ("lost_daemon", num_of_int ra.Metrics.ra_lost_daemon);
      ("lost_releaser", num_of_int ra.Metrics.ra_lost_releaser);
      ("stale_dropped", num_of_int ra.Metrics.ra_stale_dropped);
      ("rescue_ratio_daemon", num_of_float ra.Metrics.ra_rescue_ratio_daemon);
      ( "rescue_ratio_releaser",
        num_of_float ra.Metrics.ra_rescue_ratio_releaser );
    ]

let tel_series_json (s : Metrics.tel_series) =
  Obj
    [
      ("name", Str s.Metrics.es_name);
      ("kind", Str s.Metrics.es_kind);
      ("samples", num_of_int s.Metrics.es_samples);
      ("last", num_of_float s.Metrics.es_last);
      ("min", num_of_float s.Metrics.es_min);
      ("mean", num_of_float s.Metrics.es_mean);
      ("max", num_of_float s.Metrics.es_max);
    ]

let tel_alert_json (a : Metrics.tel_alert) =
  Obj
    [
      ("time_ns", num_of_int a.Metrics.ea_time_ns);
      ("rule", Str a.Metrics.ea_rule);
      ("event", Str (if a.Metrics.ea_fired then "fire" else "clear"));
      ("value", num_of_float a.Metrics.ea_value);
    ]

let telemetry_json (t : Metrics.telemetry_summary) =
  Obj
    [
      ("scrapes", num_of_int t.Metrics.tm_scrapes);
      ("series", Arr (List.map tel_series_json t.Metrics.tm_series));
      ("alerts", Arr (List.map tel_alert_json t.Metrics.tm_alerts));
    ]

let opt f = function None -> Null | Some v -> f v

let governor_json (g : Metrics.governor_summary) =
  Obj
    [
      ("level", num_of_int g.Metrics.g_level);
      ("degrades", num_of_int g.Metrics.g_degrades);
      ("recoveries", num_of_int g.Metrics.g_recoveries);
      ("suppressed", num_of_int g.Metrics.g_suppressed);
      ("prefetch_os_done", num_of_int g.Metrics.g_prefetch_os_done);
      ("prefetch_os_dropped", num_of_int g.Metrics.g_prefetch_os_dropped);
    ]

let chaos_json (ch : Metrics.chaos_summary) =
  Obj
    [
      ("disk_faults", num_of_int ch.Metrics.ch_disk_faults);
      ("disk_retries", num_of_int ch.Metrics.ch_disk_retries);
      ("disk_backoff_ns", num_of_int ch.Metrics.ch_disk_backoff_ns);
      ("disk_timeouts", num_of_int ch.Metrics.ch_disk_timeouts);
      ("slow_requests", num_of_int ch.Metrics.ch_slow_requests);
      ("releaser_stall_ns", num_of_int ch.Metrics.ch_releaser_stall_ns);
      ("daemon_stall_ns", num_of_int ch.Metrics.ch_daemon_stall_ns);
      ("directives_dropped", num_of_int ch.Metrics.ch_directives_dropped);
      ("pressure_spikes", num_of_int ch.Metrics.ch_pressure_spikes);
      ("pressure_pages", num_of_int ch.Metrics.ch_pressure_pages);
    ]

let disk_json (d : Metrics.disk_summary) =
  Obj
    [
      ("reads", num_of_int d.Metrics.dk_reads);
      ("writes", num_of_int d.Metrics.dk_writes);
      ("timeouts", num_of_int d.Metrics.dk_timeouts);
      ("bypasses", num_of_int d.Metrics.dk_bypasses);
      ("busy_ns", num_of_int d.Metrics.dk_busy_ns);
    ]

let tier_row_json (t : Metrics.tier_row) =
  Obj
    [
      ("tier", Str t.Metrics.tr_tier);
      ("reads", num_of_int t.Metrics.tr_reads);
      ("writes", num_of_int t.Metrics.tr_writes);
      ("timeouts", num_of_int t.Metrics.tr_timeouts);
      ("retries", num_of_int t.Metrics.tr_retries);
      ("rejects", num_of_int t.Metrics.tr_rejects);
      ("failovers", num_of_int t.Metrics.tr_failovers);
      ("breaker_transitions", num_of_int t.Metrics.tr_breaker_transitions);
    ]

let tiers_json (ti : Metrics.tiers_summary) =
  Obj
    [
      ("tiers", Arr (List.map tier_row_json ti.Metrics.ti_tiers));
      ("rescues", num_of_int ti.Metrics.ti_rescues);
      ("breaker_state", num_of_int ti.Metrics.ti_breaker_state);
      ("placed", num_of_int ti.Metrics.ti_placed);
      ("zram_amplification", num_of_float ti.Metrics.ti_zram_amplification);
      ("tier_buffered", num_of_int ti.Metrics.ti_tier_buffered);
    ]

let ledger_json (c : Metrics.cell) =
  let module L = Memhog_sim.Ledger in
  let module P = Memhog_compiler.Pir in
  let l = c.Metrics.c_ledger in
  let label tag =
    List.find_opt (fun (si : P.site_info) -> si.P.si_tag = tag) c.Metrics.c_sites
  in
  let row (r : L.site_row) =
    let kind, desc, static_priority =
      match label r.L.sr_site with
      | Some si ->
          ( (match si.P.si_kind with
            | P.S_prefetch -> "prefetch"
            | P.S_release -> "release"),
            si.P.si_desc,
            si.P.si_priority )
      | None -> ("unattributed", "", 0)
    in
    Obj
      [
        ("site", num_of_int r.L.sr_site);
        ("kind", Str kind);
        ("desc", Str desc);
        ("static_priority", num_of_int static_priority);
        ("pf_sent", num_of_int r.L.sr_pf_sent);
        ("pf_issued", num_of_int r.L.sr_pf_issued);
        ("pf_dropped", num_of_int r.L.sr_pf_dropped);
        ("pf_raced", num_of_int r.L.sr_pf_raced);
        ("pf_done", num_of_int r.L.sr_pf_done);
        ("pf_referenced", num_of_int r.L.sr_pf_referenced);
        ("pf_useless", num_of_int r.L.sr_pf_useless);
        ("pf_late", num_of_int r.L.sr_pf_late);
        ("pf_saved_ns", num_of_int r.L.sr_pf_saved_ns);
        ("rel_hints", num_of_int r.L.sr_rel_hints);
        ("rel_filtered", num_of_int r.L.sr_rel_filtered);
        ("rel_buffered", num_of_int r.L.sr_rel_buffered);
        ("rel_stale", num_of_int r.L.sr_rel_stale);
        ("rel_sent", num_of_int r.L.sr_rel_sent);
        ("rel_skipped", num_of_int r.L.sr_rel_skipped);
        ("rel_freed", num_of_int r.L.sr_rel_freed);
        ("rel_rescued", num_of_int r.L.sr_rel_rescued);
        ("rel_refaulted", num_of_int r.L.sr_rel_refaulted);
        ("rel_reused", num_of_int r.L.sr_rel_reused);
        ("rel_unreclaimed", num_of_int r.L.sr_rel_unreclaimed);
        ("priority_mean", num_of_float r.L.sr_priority_mean);
        ("refault_pct", num_of_float r.L.sr_refault_pct);
      ]
  in
  Obj
    [
      ("pages_tracked", num_of_int l.L.ls_pages_tracked);
      ("useless_prefetches", num_of_int l.L.ls_useless_prefetches);
      ("late_prefetches", num_of_int l.L.ls_late_prefetches);
      ("early_rescued", num_of_int l.L.ls_early_rescued);
      ("early_refaulted", num_of_int l.L.ls_early_refaulted);
      ("useful_releases", num_of_int l.L.ls_useful_releases);
      ("unnecessary_releases", num_of_int l.L.ls_unnecessary_releases);
      ("hard_faults", num_of_int l.L.ls_hard_faults);
      ("soft_faults", num_of_int l.L.ls_soft_faults);
      ("validation_faults", num_of_int l.L.ls_validation_faults);
      ("zero_fills", num_of_int l.L.ls_zero_fills);
      ("rescues", num_of_int l.L.ls_rescues);
      ("prefetches_issued", num_of_int l.L.ls_prefetches_issued);
      ("prefetches_dropped", num_of_int l.L.ls_prefetches_dropped);
      ("releases_freed", num_of_int l.L.ls_releases_freed);
      ("releases_skipped", num_of_int l.L.ls_releases_skipped);
      ("sites", Arr (List.map row l.L.ls_sites));
    ]

let serving_json (s : Metrics.serving_summary) =
  Obj
    [
      ("offered_rps", num_of_float s.Metrics.sv_offered_rps);
      ("duration_ns", num_of_int s.Metrics.sv_duration_ns);
      ("slo_ns", num_of_int s.Metrics.sv_slo_ns);
      ("arrived", num_of_int s.Metrics.sv_arrived);
      ("completed", num_of_int s.Metrics.sv_completed);
      ("recorded", num_of_int s.Metrics.sv_recorded);
      ("max_queue", num_of_int s.Metrics.sv_max_queue);
      ("slo_ok", num_of_int s.Metrics.sv_slo_ok);
      ("slo_attainment", num_of_float s.Metrics.sv_slo_attainment);
      ("mark_ns", opt num_of_int s.Metrics.sv_mark_ns);
      ("post_recorded", num_of_int s.Metrics.sv_post_recorded);
      ("post_slo_ok", num_of_int s.Metrics.sv_post_slo_ok);
      ("post_attainment", num_of_float s.Metrics.sv_post_attainment);
      ("response_hist", hist_json s.Metrics.sv_response);
    ]

let blame_band_json (b : Metrics.blame_band) =
  Obj
    [
      ("band", Str b.Metrics.bb_label);
      ("count", num_of_int b.Metrics.bb_count);
      ("queue_ns", num_of_int b.Metrics.bb_queue_ns);
      ("index_ns", num_of_int b.Metrics.bb_index_ns);
      ("value_ns", num_of_int b.Metrics.bb_value_ns);
      ("cpu_ns", num_of_int b.Metrics.bb_cpu_ns);
      ("compute_ns", num_of_int b.Metrics.bb_compute_ns);
      ("response_ns", num_of_int b.Metrics.bb_response_ns);
    ]

let blame_json (b : Metrics.blame_summary) =
  Obj
    [
      ("committed", num_of_int b.Metrics.bl_committed);
      ("sampled", num_of_int b.Metrics.bl_sampled);
      ("cap", num_of_int b.Metrics.bl_cap);
      ("p50_ns", num_of_int b.Metrics.bl_p50_ns);
      ("p99_ns", num_of_int b.Metrics.bl_p99_ns);
      ("p999_ns", num_of_int b.Metrics.bl_p999_ns);
      ("bands", Arr (List.map blame_band_json b.Metrics.bl_bands));
      ("response_hist", hist_json b.Metrics.bl_response);
      ("queue_hist", hist_json b.Metrics.bl_queue);
      ("index_hist", hist_json b.Metrics.bl_index);
      ("value_hist", hist_json b.Metrics.bl_value);
      ("cpu_hist", hist_json b.Metrics.bl_cpu);
      ("compute_hist", hist_json b.Metrics.bl_compute);
      ("pf_slack_hist", hist_json b.Metrics.bl_pf_slack);
      ("pf_hidden", num_of_int b.Metrics.bl_pf_hidden);
      ("pf_lost", num_of_int b.Metrics.bl_pf_lost);
      ("bypasses", num_of_int b.Metrics.bl_bypasses);
      ("disk_queue_ns", num_of_int b.Metrics.bl_disk_queue_ns);
      ("disk_service_ns", num_of_int b.Metrics.bl_disk_service_ns);
      ("transit_ns", num_of_int b.Metrics.bl_transit_ns);
    ]

let cell_json (c : Metrics.cell) =
  Obj
    [
      ("workload", Str c.Metrics.c_workload);
      ("variant", Str c.Metrics.c_variant);
      ("elapsed_ns", num_of_int c.Metrics.c_elapsed_ns);
      ("iterations", num_of_int c.Metrics.c_iterations);
      ("app_breakdown", breakdown_json c.Metrics.c_app_breakdown);
      ( "interactive_breakdown",
        opt breakdown_json c.Metrics.c_inter_breakdown );
      ("fault_hist", hist_json c.Metrics.c_fault);
      ("prefetch_hist", hist_json c.Metrics.c_prefetch);
      ("response_hist", opt hist_json c.Metrics.c_response);
      ("release_accuracy", release_json c.Metrics.c_release);
      ("telemetry", telemetry_json c.Metrics.c_telemetry);
      ("hard_faults", num_of_int c.Metrics.c_hard_faults);
      ("soft_faults", num_of_int c.Metrics.c_soft_faults);
      ("swap_reads", num_of_int c.Metrics.c_swap_reads);
      ("swap_writes", num_of_int c.Metrics.c_swap_writes);
      ("governor", opt governor_json c.Metrics.c_governor);
      ("chaos", opt chaos_json c.Metrics.c_chaos);
      ("disk", disk_json c.Metrics.c_disk);
      ("tiers", opt tiers_json c.Metrics.c_tiers);
      ("trace_dropped", num_of_int c.Metrics.c_trace_dropped);
      ("ledger", ledger_json c);
      ("serving", opt serving_json c.Metrics.c_serving);
      ("blame", opt blame_json c.Metrics.c_blame);
    ]

let proc_json (p : Memhog_vm.Vm_stats.proc) =
  let module VS = Memhog_vm.Vm_stats in
  Obj
    [
      ("hard_faults", num_of_int p.VS.hard_faults);
      ("soft_faults", num_of_int p.VS.soft_faults);
      ("soft_faults_daemon", num_of_int p.VS.soft_faults_daemon);
      ("validation_faults", num_of_int p.VS.validation_faults);
      ("zero_fills", num_of_int p.VS.zero_fills);
      ("rescued_daemon", num_of_int p.VS.rescued_daemon);
      ("rescued_releaser", num_of_int p.VS.rescued_releaser);
      ("lost_daemon", num_of_int p.VS.lost_daemon);
      ("lost_releaser", num_of_int p.VS.lost_releaser);
      ("freed_by_daemon", num_of_int p.VS.freed_by_daemon);
      ("freed_by_releaser", num_of_int p.VS.freed_by_releaser);
      ("releases_requested", num_of_int p.VS.releases_requested);
      ("releases_skipped", num_of_int p.VS.releases_skipped);
      ("prefetches_issued", num_of_int p.VS.prefetches_issued);
      ("prefetches_dropped", num_of_int p.VS.prefetches_dropped);
      ("prefetches_useless", num_of_int p.VS.prefetches_useless);
      ("prefetch_rescues", num_of_int p.VS.prefetch_rescues);
      ("writebacks", num_of_int p.VS.writebacks);
      ("invalidations", num_of_int p.VS.invalidations);
    ]

let global_json (g : Memhog_vm.Vm_stats.global) =
  let module VS = Memhog_vm.Vm_stats in
  Obj
    [
      ("daemon_activations", num_of_int g.VS.daemon_activations);
      ("daemon_pages_stolen", num_of_int g.VS.daemon_pages_stolen);
      ("daemon_frames_scanned", num_of_int g.VS.daemon_frames_scanned);
      ("daemon_invalidations", num_of_int g.VS.daemon_invalidations);
      ("releaser_batches", num_of_int g.VS.releaser_batches);
      ("releaser_pages_freed", num_of_int g.VS.releaser_pages_freed);
      ("allocations", num_of_int g.VS.allocations);
      ("allocation_waits", num_of_int g.VS.allocation_waits);
    ]

let totals_json (t : Metrics.totals) =
  Obj
    [
      ("cells", num_of_int t.Metrics.t_cells);
      ("elapsed_ns", num_of_int t.Metrics.t_elapsed_ns);
      ("breakdown", breakdown_json t.Metrics.t_breakdown);
      ("proc", proc_json t.Metrics.t_proc);
      ("global", global_json t.Metrics.t_global);
      ("fault_hist", hist_json t.Metrics.t_fault);
      ("prefetch_hist", hist_json t.Metrics.t_prefetch);
      ("response_hist", hist_json t.Metrics.t_response);
    ]

let metrics_json (m : Metrics.t) =
  Obj
    [
      ("schema", Str schema);
      ("schema_version", num_of_int schema_version);
      ("label", Str m.Metrics.m_label);
      ("cells", Arr (List.map cell_json m.Metrics.m_cells));
      ("totals", totals_json m.Metrics.m_totals);
    ]

let write_file ~path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string (metrics_json m)))

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let load_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
      match parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match (member "schema" j, member "schema_version" j) with
          | Some (Str s), Some (Num (v, _))
            when s = schema && int_of_float v = schema_version ->
              Ok j
          | Some (Str s), _ when s <> schema ->
              Error (Printf.sprintf "%s: not a %s file" path schema)
          | _, Some (Num (v, _)) when int_of_float v <> schema_version ->
              Error
                (Printf.sprintf "%s: schema_version %g, expected %d" path v
                   schema_version)
          | _ -> Error (Printf.sprintf "%s: missing schema header" path)))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type diff = {
  d_path : string;
  d_expected : string;
  d_got : string;
  d_reason : string;
}

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let compare_json ~tolerance a b =
  let diffs = ref [] in
  let report path ~expected ~got reason =
    diffs :=
      { d_path = path; d_expected = expected; d_got = got; d_reason = reason }
      :: !diffs
  in
  let rec go path a b =
    match (a, b) with
    | Null, Null -> ()
    | Bool x, Bool y ->
        if x <> y then
          report path ~expected:(string_of_bool x) ~got:(string_of_bool y)
            "boolean changed"
    | Str x, Str y ->
        if x <> y then
          report path
            ~expected:(Printf.sprintf "%S" x)
            ~got:(Printf.sprintf "%S" y)
            "string changed"
    | Num (x, lx), Num (y, ly) ->
        if tolerance <= 0.0 then begin
          if lx <> ly then
            report path ~expected:lx ~got:ly "lexeme differs (tolerance 0%)"
        end
        else if x <> y then begin
          let denom = Float.max (Float.abs x) (Float.abs y) in
          let pct = Float.abs (x -. y) /. denom *. 100.0 in
          if pct > tolerance then
            report path ~expected:lx ~got:ly
              (Printf.sprintf "relative drift %.3f%% exceeds tolerance %.3f%%"
                 pct tolerance)
        end
    | Arr xs, Arr ys ->
        let lx = List.length xs and ly = List.length ys in
        if lx <> ly then
          report path
            ~expected:(Printf.sprintf "%d elements" lx)
            ~got:(Printf.sprintf "%d elements" ly)
            "array length changed"
        else
          List.iteri
            (fun i (x, y) -> go (Printf.sprintf "%s[%d]" path i) x y)
            (List.combine xs ys)
    | Obj xs, Obj ys ->
        let join p k = if p = "" then k else p ^ "." ^ k in
        List.iter
          (fun (k, x) ->
            match List.assoc_opt k ys with
            | Some y -> go (join path k) x y
            | None ->
                report (join path k) ~expected:(type_name x) ~got:"absent"
                  "missing in current")
          xs;
        List.iter
          (fun (k, y) ->
            if List.assoc_opt k xs = None then
              report (join path k) ~expected:"absent" ~got:(type_name y)
                "not in baseline")
          ys
    | x, y ->
        report path ~expected:(type_name x) ~got:(type_name y) "type changed"
  in
  go "" a b;
  List.rev !diffs

let pp_diffs ?(limit = 8) fmt diffs =
  let total = List.length diffs in
  let shown = if limit <= 0 then diffs else List.filteri (fun i _ -> i < limit) diffs in
  List.iter
    (fun d ->
      Format.fprintf fmt "  %s@,    expected %s@,    got      %s  (%s)@,"
        d.d_path d.d_expected d.d_got d.d_reason)
    shown;
  let rest = total - List.length shown in
  if rest > 0 then Format.fprintf fmt "  ... and %d more mismatch(es)@," rest

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let str_member k j = match member k j with Some (Str s) -> Some s | _ -> None

let int_member k j =
  match member k j with Some (Num (f, _)) -> Some (int_of_float f) | _ -> None

let float_member k j = match member k j with Some (Num (f, _)) -> Some f | _ -> None

let istr k j = Option.value (str_member k j) ~default:"-"
let icount k j =
  match int_member k j with Some i -> Report.count i | None -> "-"
let ins k j = match int_member k j with Some i -> Report.ns i | None -> "-"

let hist_row label h =
  [
    label;
    icount "count" h;
    ins "p50_ns" h;
    ins "p90_ns" h;
    ins "p99_ns" h;
    ins "max_ns" h;
  ]

let render j =
  match member "cells" j with
  | Some (Arr cells) ->
      let label = Option.value (str_member "label" j) ~default:"" in
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      Format.pp_open_vbox fmt 0;
      Format.fprintf fmt "Metrics: %s (%d cells)@,@," label (List.length cells);
      let run c = Printf.sprintf "%s/%s" (istr "workload" c) (istr "variant" c) in
      let breakdown_row name b =
        [
          name;
          ins "user_ns" b;
          ins "system_ns" b;
          ins "io_stall_ns" b;
          ins "resource_stall_ns" b;
        ]
      in
      Report.table ~title:"Execution (out-of-core application)"
        ~header:[ "run"; "user"; "system"; "io stall"; "res stall"; "elapsed"; "iters" ]
        ~rows:
          (List.map
             (fun c ->
               let b = Option.value (member "app_breakdown" c) ~default:Null in
               match breakdown_row (run c) b with
               | name :: rest ->
                   (name :: rest) @ [ ins "elapsed_ns" c; icount "iterations" c ]
               | [] -> [])
             cells)
        fmt ();
      Format.fprintf fmt "@,";
      Report.table ~title:"Demand-fault service time"
        ~header:[ "run"; "faults"; "p50"; "p90"; "p99"; "max" ]
        ~rows:
          (List.map
             (fun c ->
               hist_row (run c)
                 (Option.value (member "fault_hist" c) ~default:Null))
             cells)
        fmt ();
      Format.fprintf fmt "@,";
      Report.table ~title:"Prefetch service time"
        ~header:[ "run"; "prefetches"; "p50"; "p90"; "p99"; "max" ]
        ~rows:
          (List.map
             (fun c ->
               hist_row (run c)
                 (Option.value (member "prefetch_hist" c) ~default:Null))
             cells)
        fmt ();
      let with_response =
        List.filter (fun c -> match member "response_hist" c with
            | Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_response <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Interactive response time"
          ~header:[ "run"; "sweeps"; "p50"; "p90"; "p99"; "max" ]
          ~rows:
            (List.map
               (fun c ->
                 hist_row (run c)
                   (Option.value (member "response_hist" c) ~default:Null))
               with_response)
          fmt ()
      end;
      let with_serving =
        List.filter (fun c -> match member "serving" c with
            | Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_serving <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Serving tail latency (open-loop, SLO from arrival)"
          ~header:
            [
              "run"; "offered"; "served"; "queue max"; "p50"; "p99"; "p999";
              "max"; "SLO";
            ]
          ~rows:
            (List.map
               (fun c ->
                 let s = Option.value (member "serving" c) ~default:Null in
                 let h = Option.value (member "response_hist" s) ~default:Null in
                 [
                   run c;
                   (match float_member "offered_rps" s with
                   | Some f -> Printf.sprintf "%s rps" (Report.f1 f)
                   | None -> "-");
                   icount "recorded" s;
                   icount "max_queue" s;
                   ins "p50_ns" h;
                   ins "p99_ns" h;
                   ins "p999_ns" h;
                   ins "max_ns" h;
                   (match float_member "slo_attainment" s with
                   | Some f -> Report.pct f
                   | None -> "-");
                 ])
               with_serving)
          fmt ()
      end;
      let with_blame =
        List.filter (fun c -> match member "blame" c with
            | Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_blame <> [] then begin
        Format.fprintf fmt "@,";
        Report.table
          ~title:"Tail blame (mean per request, by percentile band)"
          ~header:
            [
              "run"; "band"; "reqs"; "queue"; "index"; "value"; "cpu wait";
              "compute"; "response";
            ]
          ~rows:
            (List.concat_map
               (fun c ->
                 let b = Option.value (member "blame" c) ~default:Null in
                 match member "bands" b with
                 | Some (Arr bands) ->
                     List.map
                       (fun bd ->
                         let n =
                           max 1 (Option.value (int_member "count" bd) ~default:0)
                         in
                         let per k =
                           match int_member k bd with
                           | Some v -> Report.ns (v / n)
                           | None -> "-"
                         in
                         [
                           run c; istr "band" bd; icount "count" bd;
                           per "queue_ns"; per "index_ns"; per "value_ns";
                           per "cpu_ns"; per "compute_ns"; per "response_ns";
                         ])
                       bands
                 | _ -> [])
               with_blame)
          fmt ()
      end;
      Format.fprintf fmt "@,";
      Report.table ~title:"Release accuracy"
        ~header:
          [
            "run"; "requested"; "skipped"; "freed (d/r)"; "rescued (d/r)";
            "rescue ratio (d/r)"; "stale";
          ]
        ~rows:
          (List.map
             (fun c ->
               let ra =
                 Option.value (member "release_accuracy" c) ~default:Null
               in
               let pair k1 k2 =
                 Printf.sprintf "%s/%s" (icount k1 ra) (icount k2 ra)
               in
               let rpair k1 k2 =
                 Printf.sprintf "%s/%s"
                   (match float_member k1 ra with
                   | Some f -> Report.pct f
                   | None -> "-")
                   (match float_member k2 ra with
                   | Some f -> Report.pct f
                   | None -> "-")
               in
               [
                 run c;
                 icount "requested" ra;
                 icount "skipped" ra;
                 pair "freed_daemon" "freed_releaser";
                 pair "rescued_daemon" "rescued_releaser";
                 rpair "rescue_ratio_daemon" "rescue_ratio_releaser";
                 icount "stale_dropped" ra;
               ])
             cells)
        fmt ();
      let with_disk =
        List.filter
          (fun c ->
            match member "disk" c with Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_disk <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Swap volume (per-request deadline + arm classes)"
          ~header:
            [ "run"; "reads"; "writes"; "timeouts"; "bypasses"; "busy" ]
          ~rows:
            (List.map
               (fun c ->
                 let d = Option.value (member "disk" c) ~default:Null in
                 [
                   run c;
                   icount "reads" d;
                   icount "writes" d;
                   icount "timeouts" d;
                   icount "bypasses" d;
                   ins "busy_ns" d;
                 ])
               with_disk)
          fmt ()
      end;
      let with_tiers =
        List.filter
          (fun c ->
            match member "tiers" c with Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_tiers <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Backing tiers (traffic + breaker)"
          ~header:
            [
              "run"; "tier"; "reads"; "writes"; "timeouts"; "retries";
              "rejects"; "failovers"; "breaker flips";
            ]
          ~rows:
            (List.concat_map
               (fun c ->
                 let ti = Option.value (member "tiers" c) ~default:Null in
                 match member "tiers" ti with
                 | Some (Arr rows) ->
                     List.map
                       (fun r ->
                         [
                           run c;
                           istr "tier" r;
                           icount "reads" r;
                           icount "writes" r;
                           icount "timeouts" r;
                           icount "retries" r;
                           icount "rejects" r;
                           icount "failovers" r;
                           icount "breaker_transitions" r;
                         ])
                       rows
                 | _ -> [])
               with_tiers)
          fmt ();
        Format.fprintf fmt "@,";
        Report.table ~title:"Tier routing (rescues + breaker close-out)"
          ~header:
            [
              "run"; "rescues"; "breaker"; "placed"; "zram ampl";
              "tier-buffered";
            ]
          ~rows:
            (List.map
               (fun c ->
                 let ti = Option.value (member "tiers" c) ~default:Null in
                 [
                   run c;
                   icount "rescues" ti;
                   (match int_member "breaker_state" ti with
                   | Some 0 -> "closed"
                   | Some 1 -> "half-open"
                   | Some 2 -> "open"
                   | _ -> "-");
                   icount "placed" ti;
                   (match float_member "zram_amplification" ti with
                   | Some f -> Report.f1 f
                   | None -> "-");
                   icount "tier_buffered" ti;
                 ])
               with_tiers)
          fmt ()
      end;
      let with_ledger =
        List.filter
          (fun c ->
            match member "ledger" c with Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_ledger <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Wasted work (page-lifecycle ledger)"
          ~header:
            [
              "run"; "pages"; "useless pf"; "late pf"; "early rel (resc/refault)";
              "useful rel"; "unnecessary rel"; "trace drops";
            ]
          ~rows:
            (List.map
               (fun c ->
                 let l = Option.value (member "ledger" c) ~default:Null in
                 [
                   run c;
                   icount "pages_tracked" l;
                   icount "useless_prefetches" l;
                   icount "late_prefetches" l;
                   Printf.sprintf "%s/%s" (icount "early_rescued" l)
                     (icount "early_refaulted" l);
                   icount "useful_releases" l;
                   icount "unnecessary_releases" l;
                   icount "trace_dropped" c;
                 ])
               with_ledger)
          fmt ();
        let site_rows =
          List.concat_map
            (fun c ->
              match member "ledger" c with
              | Some l -> (
                  match member "sites" l with
                  | Some (Arr rows) ->
                      List.filter_map
                        (fun r ->
                          (* only rows with activity: keep the report short *)
                          let any k =
                            match int_member k r with
                            | Some v -> v > 0
                            | None -> false
                          in
                          if any "pf_sent" || any "rel_hints" then
                            Some
                              [
                                run c;
                                icount "site" r;
                                Printf.sprintf "%s %s" (istr "kind" r)
                                  (istr "desc" r);
                                Printf.sprintf "%s/%s" (icount "pf_issued" r)
                                  (icount "pf_dropped" r);
                                Printf.sprintf "%s/%s"
                                  (icount "pf_referenced" r)
                                  (icount "pf_useless" r);
                                ins "pf_saved_ns" r;
                                Printf.sprintf "%s/%s" (icount "rel_sent" r)
                                  (icount "rel_freed" r);
                                Printf.sprintf "%s/%s"
                                  (icount "rel_rescued" r)
                                  (icount "rel_refaulted" r);
                                icount "static_priority" r;
                                (match float_member "refault_pct" r with
                                | Some f -> Report.pct (f /. 100.0)
                                | None -> "-");
                              ]
                          else None)
                        rows
                  | _ -> [])
              | None -> [])
            with_ledger
        in
        if site_rows <> [] then begin
          Format.fprintf fmt "@,";
          Report.table ~title:"Per-site efficacy"
            ~header:
              [
                "run"; "site"; "directive"; "pf iss/drop"; "pf ref/useless";
                "saved"; "rel sent/freed"; "resc/refault"; "prio"; "refault%";
              ]
            ~rows:site_rows fmt ()
        end
      end;
      Format.fprintf fmt "@,";
      Report.table ~title:"Telemetry (min / mean / max / last)"
        ~header:
          [ "run"; "series"; "kind"; "samples"; "min"; "mean"; "max"; "last" ]
        ~rows:
          (List.concat_map
             (fun c ->
               match member "telemetry" c with
               | Some tel -> (
                   match member "series" tel with
                   | Some (Arr ss) ->
                       List.map
                         (fun s ->
                           let f k =
                             match float_member k s with
                             | Some f -> Report.f1 f
                             | None -> "-"
                           in
                           [
                             run c; istr "name" s; istr "kind" s;
                             icount "samples" s; f "min"; f "mean"; f "max";
                             f "last";
                           ])
                         ss
                   | _ -> [])
               | _ -> [])
             cells)
        fmt ();
      let alert_rows =
        List.concat_map
          (fun c ->
            match member "telemetry" c with
            | Some tel -> (
                match member "alerts" tel with
                | Some (Arr als) ->
                    List.map
                      (fun a ->
                        [
                          run c;
                          ins "time_ns" a;
                          istr "rule" a;
                          istr "event" a;
                          (match float_member "value" a with
                          | Some f -> Report.f1 f
                          | None -> "-");
                        ])
                      als
                | _ -> [])
            | _ -> [])
          cells
      in
      if alert_rows <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Alert timeline"
          ~header:[ "run"; "time"; "rule"; "event"; "value" ]
          ~rows:alert_rows fmt ()
      end;
      let with_chaos =
        List.filter
          (fun c ->
            match member "chaos" c with Some (Obj _) -> true | _ -> false)
          cells
      in
      if with_chaos <> [] then begin
        Format.fprintf fmt "@,";
        Report.table ~title:"Fault injection"
          ~header:
            [
              "run"; "faults"; "retries"; "backoff"; "timeouts"; "slow";
              "stall (rel/dmn)"; "dropped"; "pressure";
            ]
          ~rows:
            (List.map
               (fun c ->
                 let ch = Option.value (member "chaos" c) ~default:Null in
                 [
                   run c;
                   icount "disk_faults" ch;
                   icount "disk_retries" ch;
                   ins "disk_backoff_ns" ch;
                   icount "disk_timeouts" ch;
                   icount "slow_requests" ch;
                   Printf.sprintf "%s/%s" (ins "releaser_stall_ns" ch)
                     (ins "daemon_stall_ns" ch);
                   icount "directives_dropped" ch;
                   Printf.sprintf "%s spikes, %s pages"
                     (icount "pressure_spikes" ch)
                     (icount "pressure_pages" ch);
                 ])
               with_chaos)
          fmt ();
        Format.fprintf fmt "@,";
        Report.table ~title:"Degradation governor"
          ~header:
            [
              "run"; "level"; "degrades"; "recoveries"; "suppressed";
              "os prefetch (done/dropped)";
            ]
          ~rows:
            (List.filter_map
               (fun c ->
                 match member "governor" c with
                 | Some (Obj _ as g) ->
                     Some
                       [
                         run c;
                         icount "level" g;
                         icount "degrades" g;
                         icount "recoveries" g;
                         icount "suppressed" g;
                         Printf.sprintf "%s/%s"
                           (icount "prefetch_os_done" g)
                           (icount "prefetch_os_dropped" g);
                       ]
                 | _ -> None)
               with_chaos)
          fmt ()
      end;
      (match member "totals" j with
      | Some t ->
          Format.fprintf fmt "@,";
          Report.table ~title:"Totals (all cells)"
            ~header:[ ""; "count"; "p50"; "p90"; "p99"; "max" ]
            ~rows:
              (List.filter_map
                 (fun (label, key) ->
                   match member key t with
                   | Some (Obj _ as h) -> Some (hist_row label h)
                   | _ -> None)
                 [
                   ("demand faults", "fault_hist");
                   ("prefetches", "prefetch_hist");
                   ("interactive sweeps", "response_hist");
                 ])
            fmt ()
      | None -> ());
      Format.pp_close_box fmt ();
      Format.pp_print_flush fmt ();
      Ok (Buffer.contents buf)
  | _ -> Error "metrics document has no \"cells\" array"
