(* The tiered-backing-store experiment: a Figure 7/8-style matrix of one
   workload over backend mixes (swap only, far memory, compressed RAM,
   both), plus a partition-mid-run serving scenario that drives the
   failure path end to end — far tier hard-partitioned while demotions
   and fetches are in flight, circuit breaker opens, demotions fail over
   to the local swap copy, in-flight reads are rescued, and the breaker
   probes closed again once the link heals.

   Each cell is an independent simulation (own engine, OS, tier router,
   RNG streams), so the whole experiment is byte-identical at any
   [--jobs] level. *)

open Memhog_sim
module E = Experiment
module Server = Memhog_exec.Server
module Tiers = Memhog_vm.Tiers
module Workload = Memhog_workloads.Workload

type mix = { mx_name : string; mx_tiers : string option }

let default_mixes =
  [
    { mx_name = "swap"; mx_tiers = None };
    { mx_name = "far"; mx_tiers = Some "far" };
    { mx_name = "zram"; mx_tiers = Some "zram" };
    (* Eq. 2 priorities of the compiled workloads span 0..2, so the
       combined mix splits at 1: distant-reuse releases (0) go to far
       memory, near-reuse ones (>= 1) to compressed RAM. *)
    { mx_name = "far+zram"; mx_tiers = Some "far+zram+route:thresh=1" };
  ]

(* The partition scenario's tier spec: far memory with the default
   microsecond link, but a short breaker hold-off so the half-open probe
   cycle is visible inside a 20-second serving window. *)
let partition_tiers = "far+route:min=3,hold=50ms,cap=400ms"

(* Hard partition mid-window: long enough that every in-flight RPC burns
   its full retry schedule and the breaker opens, short enough that the
   post-window recovery mark still sees thousands of arrivals. *)
let partition_chaos = "net-partition@6s-9s"
let partition_mark = Time_ns.sec 10

type t = {
  tx_machine : Machine.t;
  tx_workload : string;
  tx_variant : E.variant;
  tx_mixes : (mix * E.result) list;
  tx_rate : float;
  tx_partition : E.result;
}

let results t = List.map snd t.tx_mixes @ [ t.tx_partition ]

let run ?(machine = Machine.paper) ?(workload = "EMBAR") ?(variant = E.B)
    ?(mixes = default_mixes) ~rate ?(jobs = 1)
    ?(log = fun (_ : string) -> ()) () =
  let w = Workload.find workload in
  (* One flat list of thunks so the pool overlaps the matrix cells with
     the (longer) partition cell instead of running the phases back to
     back. *)
  let mix_cell m () =
    log
      (Printf.sprintf "tiers: %s/%s on %s" workload (E.variant_name variant)
         m.mx_name);
    E.run (E.setup ~machine ~workload:w ~variant ?tiers:m.mx_tiers ())
  in
  let partition_cell () =
    log
      (Printf.sprintf "tiers: partition serve cell @ %g rps under %S" rate
         partition_chaos);
    let serve =
      E.serve_cfg ~machine ~mark:partition_mark ~rate_rps:rate ()
    in
    (* EMBAR dirties the pages it releases (MATVEC's are clean), so the
       write-back path keeps demoting to the far tier throughout — the
       partition therefore hits in-flight placements and fetches, and the
       post-heal traffic drives the half-open probe that closes the
       breaker again.  Variant R (aggressive release) so the governor's
       tier-aware rung is exercised: while the breaker is open,
       aggressive releases are forced into the local buffer instead of
       being demoted to a dead tier. *)
    E.run
      (E.setup ~machine ~workload:(Workload.find "EMBAR") ~variant:E.R
         ~chaos:partition_chaos ~tiers:partition_tiers
         ~trace:(Trace.create ()) ~serve ())
  in
  let cells =
    List.map (fun m -> `Mix m) mixes @ [ `Partition ]
  in
  let run_one = function
    | `Mix m -> (Some m, mix_cell m ())
    | `Partition -> (None, partition_cell ())
  in
  let results = Pool.map ~jobs run_one cells in
  let mix_results =
    List.filter_map
      (function Some m, r -> Some (m, r) | None, _ -> None)
      results
  in
  let partition =
    match List.find_opt (fun (m, _) -> m = None) results with
    | Some (_, r) -> r
    | None -> failwith "Tier_exp.run: partition cell missing"
  in
  {
    tx_machine = machine;
    tx_workload = workload;
    tx_variant = variant;
    tx_mixes = mix_results;
    tx_rate = rate;
    tx_partition = partition;
  }

let tiers_exn (r : E.result) =
  match r.E.r_tiers with
  | Some s -> s
  | None -> invalid_arg "Tier_exp: result has no tiers summary"

let serving_exn (r : E.result) =
  match r.E.r_serving with
  | Some s -> s
  | None -> invalid_arg "Tier_exp: result has no serving summary"

let require name cond msg =
  if not cond then failwith (Printf.sprintf "tiers %s: %s" name msg)

let tier_row (s : Tiers.summary) tier =
  List.find_opt (fun (t : Tiers.tier_summary) -> t.Tiers.ts_tier = tier)
    s.Tiers.s_tiers

(* The experiment's built-in gates: the robustness physics the metrics
   baseline then freezes byte-for-byte. *)
let check t =
  List.iter
    (fun (m, (r : E.result)) ->
      require m.mx_name r.E.r_invariants_ok
        "OS invariants violated after the run";
      match m.mx_tiers with
      | None ->
          require m.mx_name (r.E.r_tiers = None)
            "swap-only cell reported a tiers summary"
      | Some spec ->
          let s = tiers_exn r in
          if String.length spec >= 3 && String.sub spec 0 3 = "far" then
            require m.mx_name
              (match tier_row s Tiers.tier_far with
              | Some row -> row.Tiers.ts_writes > 0
              | None -> false)
              "far tier present but never written";
          let has_zram =
            List.exists
              (fun (row : Tiers.tier_summary) ->
                row.Tiers.ts_tier = Tiers.tier_zram)
              s.Tiers.s_tiers
          in
          if has_zram then
            require m.mx_name
              (match tier_row s Tiers.tier_zram with
              | Some row -> row.Tiers.ts_writes > 0
              | None -> false)
              "zram tier present but never written")
    t.tx_mixes;
  (* Partition scenario: the cell must complete (no fiber blocked forever
     on a dead tier — the arrival queue fully drains), demotions must
     have failed over, in-flight reads must have been rescued from the
     durable swap copy, the breaker must have opened, and the server's
     SLO attainment after the window must be no worse than its
     window-inclusive figure. *)
  let r = t.tx_partition in
  require "partition" r.E.r_invariants_ok
    "OS invariants violated after the partition run";
  let s = tiers_exn r in
  require "partition" (s.Tiers.s_rescues > 0)
    "no fetch was rescued from the swap copy";
  require "partition"
    (match tier_row s Tiers.tier_far with
    | Some row -> row.Tiers.ts_failovers > 0
    | None -> false)
    "no demotion failed over to local swap";
  require "partition"
    (match tier_row s Tiers.tier_far with
    | Some row -> row.Tiers.ts_timeouts > 0
    | None -> false)
    "the partition produced no RPC timeouts";
  require "partition"
    (match tier_row s Tiers.tier_far with
    | Some row -> row.Tiers.ts_breaker_transitions > 0
    | None -> false)
    "the breaker never transitioned";
  let sv = serving_exn r in
  require "partition" (sv.Server.sm_completed = sv.Server.sm_arrived)
    "the server did not drain its queue (a fiber blocked forever?)";
  require "partition" (sv.Server.sm_post_recorded > 0)
    "no requests recorded after the recovery mark";
  require "partition"
    (Server.post_attainment sv >= Server.slo_attainment sv)
    (Printf.sprintf
       "SLO attainment did not recover after the window (post %.3f < \
        overall %.3f)"
       (Server.post_attainment sv)
       (Server.slo_attainment sv))

let render t =
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "Tiered backing store: %s/%s over backend mixes (%s)@,@," t.tx_workload
    (E.variant_name t.tx_variant) t.tx_machine.Machine.m_name;
  Report.table ~title:"Execution by backend mix (Figure 7 components)"
    ~header:
      [ "mix"; "user"; "system"; "io stall"; "res stall"; "elapsed" ]
    ~rows:
      (List.map
         (fun (m, (r : E.result)) ->
           let b = r.E.r_breakdown in
           [
             m.mx_name;
             Report.ns b.E.b_user;
             Report.ns b.E.b_system;
             Report.ns b.E.b_io_stall;
             Report.ns b.E.b_resource_stall;
             Report.ns r.E.r_elapsed;
           ])
         t.tx_mixes)
    fmt ();
  Format.fprintf fmt "@,";
  Report.table ~title:"Tier traffic by backend mix"
    ~header:
      [
        "mix"; "tier"; "reads"; "writes"; "timeouts"; "failovers";
        "rescues"; "placed";
      ]
    ~rows:
      (List.concat_map
         (fun (m, (r : E.result)) ->
           match r.E.r_tiers with
           | None -> [ [ m.mx_name; "swap"; "-"; "-"; "-"; "-"; "-"; "-" ] ]
           | Some s ->
               List.map
                 (fun (row : Tiers.tier_summary) ->
                   [
                     m.mx_name;
                     Tiers.tier_name row.Tiers.ts_tier;
                     Report.count row.Tiers.ts_reads;
                     Report.count row.Tiers.ts_writes;
                     Report.count row.Tiers.ts_timeouts;
                     Report.count row.Tiers.ts_failovers;
                     Report.count s.Tiers.s_rescues;
                     Report.count s.Tiers.s_placed;
                   ])
                 s.Tiers.s_tiers)
         t.tx_mixes)
    fmt ();
  Format.fprintf fmt "@,";
  let r = t.tx_partition in
  let s = tiers_exn r in
  let sv = serving_exn r in
  let far = tier_row s Tiers.tier_far in
  let far_get f = match far with Some row -> f row | None -> 0 in
  Report.table
    ~title:
      (Printf.sprintf "Far-memory partition mid-serve (%s, %g rps)"
         partition_chaos t.tx_rate)
    ~header:
      [
        "timeouts"; "retries"; "failovers"; "rescues"; "breaker flips";
        "tier-buffered"; "SLO"; "SLO post-mark";
      ]
    ~rows:
      [
        [
          Report.count (far_get (fun row -> row.Tiers.ts_timeouts));
          Report.count (far_get (fun row -> row.Tiers.ts_retries));
          Report.count (far_get (fun row -> row.Tiers.ts_failovers));
          Report.count s.Tiers.s_rescues;
          Report.count
            (far_get (fun row -> row.Tiers.ts_breaker_transitions));
          (match r.E.r_runtime with
          | Some rt ->
              Report.count rt.Memhog_runtime.Runtime.rt_tier_buffered
          | None -> "-");
          Report.pct (Server.slo_attainment sv);
          Report.pct (Server.post_attainment sv);
        ];
      ]
    fmt ();
  Format.pp_close_box fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf
