open Memhog_sim

(* One escaper for every JSON writer in the repo (quotes, backslashes,
   control characters): see {!Json_str}. *)
let json_escape = Json_str.escape

(* Chrome's trace format has no notion of negative thread ids, so daemon
   streams (-1 ..) are remapped above any plausible process pid. *)
let tid_of_stream stream = if stream >= 0 then stream else 1_000_000 - stream

(* Simulated ns rendered as the format's microseconds, keeping ns
   precision in the fraction. *)
let ts_of_time time = Printf.sprintf "%.3f" (float_of_int time /. 1000.0)

(* Only strict decimal integers stay numbers ([int_of_string_opt] would
   also accept "0x1f" and "1_000", silently changing the payload). *)
let is_decimal s =
  let n = String.length s in
  let start = if n > 0 && s.[0] = '-' then 1 else 0 in
  let ok = ref (n > start) in
  for i = start to n - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then ok := false
  done;
  !ok

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         (* numeric payloads stay numbers; everything else is a string *)
         if is_decimal v then Printf.sprintf "\"%s\":%s" (json_escape k) v
         else Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let event_row ~time ~stream ev =
  let tid = tid_of_stream stream in
  let common = Printf.sprintf "\"pid\":0,\"tid\":%d,\"ts\":%s" tid (ts_of_time time) in
  match ev with
  | Trace.Free_depth { pages } ->
      Printf.sprintf "{\"name\":\"free_depth\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        common pages
  | Trace.Rss_sample { owner; pages } ->
      Printf.sprintf "{\"name\":\"rss:%d\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        owner common pages
  | Trace.Upper_limit_sample { owner; pages } ->
      Printf.sprintf
        "{\"name\":\"upper_limit:%d\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        owner common pages
  | Trace.Queue_depth { owner; depth } ->
      Printf.sprintf
        "{\"name\":\"queue_depth:%d\",\"ph\":\"C\",%s,\"args\":{\"depth\":%d}}"
        owner common depth
  | Trace.Phase_begin { name } ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"B\",%s}" (json_escape name) common
  | Trace.Phase_end { name } ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",%s}" (json_escape name) common
  | Trace.Disk_io { disk; block; write; ns } ->
      (* the completion event spans the whole request: render it as a
         duration slice ending at the emission time *)
      Printf.sprintf
        "{\"name\":\"disk%d %s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"block\":%d}}"
        disk
        (if write then "write" else "read")
        tid
        (ts_of_time (time - ns))
        (ts_of_time ns) block
  | ev ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{%s}}"
        (Trace.event_name ev) common
        (args_json (Trace.event_args ev))

(* ------------------------------------------------------------------ *)
(* Flow events: directive -> OS action -> fault/rescue                  *)
(* ------------------------------------------------------------------ *)

(* Chrome flow events ("s" start, "t" step, "f" finish) draw arrows across
   lanes.  Two chain kinds, keyed by (owner pid, vpn):

   - prefetch: Rt_prefetch_sent -> Prefetch_issued -> Prefetch_done ->
     first fault on the page (validation = the hidden-latency payoff,
     hard = the prefetch lost), or Prefetch_dropped/Raced;
   - release: Rt_release_sent -> Releaser_free -> Rescue / Hard_fault
     (too-early release) / Frame_reused (the free paid off), or
     Release_skipped.

   Chains whose start fell off the ring simply produce no arrows. *)
type flows = {
  mutable next_id : int;
  pf : (int * int, int) Hashtbl.t;
  rel : (int * int, int) Hashtbl.t;
}

let flow_row ~name ~ph ~id ~stream ~time =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%s\"%s,\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s}"
    name ph
    (if ph = "f" then ",\"bp\":\"e\"" else "")
    id (tid_of_stream stream) (ts_of_time time)

let flow_rows fl ~time ~stream ev =
  let start table ~key ~name =
    let id = fl.next_id in
    fl.next_id <- id + 1;
    Hashtbl.replace table key id;
    [ flow_row ~name ~ph:"s" ~id ~stream ~time ]
  in
  let step table ~key ~name =
    match Hashtbl.find_opt table key with
    | Some id -> [ flow_row ~name ~ph:"t" ~id ~stream ~time ]
    | None -> []
  in
  let finish table ~key ~name =
    match Hashtbl.find_opt table key with
    | Some id ->
        Hashtbl.remove table key;
        [ flow_row ~name ~ph:"f" ~id ~stream ~time ]
    | None -> []
  in
  let pf_name site = Printf.sprintf "pf-site%d" site in
  let rel_name site = Printf.sprintf "rel-site%d" site in
  match ev with
  | Trace.Rt_prefetch_sent { vpn; site } when stream >= 0 ->
      start fl.pf ~key:(stream, vpn) ~name:(pf_name site)
  | Trace.Prefetch_issued { vpn; site } ->
      step fl.pf ~key:(stream, vpn) ~name:(pf_name site)
  | Trace.Prefetch_done { vpn; site; _ } ->
      step fl.pf ~key:(stream, vpn) ~name:(pf_name site)
  | Trace.Prefetch_dropped { vpn; site } | Trace.Prefetch_raced { vpn; site }
    ->
      finish fl.pf ~key:(stream, vpn) ~name:(pf_name site)
  | Trace.Rt_release_sent { vpn; site } when stream >= 0 ->
      start fl.rel ~key:(stream, vpn) ~name:(rel_name site)
  | Trace.Releaser_free { vpn; owner; site } ->
      step fl.rel ~key:(owner, vpn) ~name:(rel_name site)
  | Trace.Release_skipped { vpn; owner; site } ->
      finish fl.rel ~key:(owner, vpn) ~name:(rel_name site)
  | Trace.Rescue { vpn; site; _ } when stream >= 0 ->
      finish fl.rel ~key:(stream, vpn) ~name:(rel_name site)
  | Trace.Frame_reused { vpn; owner } ->
      finish fl.rel ~key:(owner, vpn) ~name:(rel_name Trace.no_site)
  | Trace.Validation_fault { vpn } | Trace.Soft_fault { vpn }
    when stream >= 0 ->
      finish fl.pf ~key:(stream, vpn) ~name:(pf_name Trace.no_site)
  | Trace.Hard_fault { vpn } when stream >= 0 ->
      (* a hard fault terminates whichever chains are open on the page:
         an in-flight prefetch it beat, a release it refaulted *)
      finish fl.pf ~key:(stream, vpn) ~name:(pf_name Trace.no_site)
      @ finish fl.rel ~key:(stream, vpn) ~name:(rel_name Trace.no_site)
  | _ -> []

let to_chrome_json trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add row =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf row
  in
  add "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"memhog-sim\"}}";
  List.iter
    (fun stream ->
      match Trace.stream_name trace stream with
      | None -> ()
      | Some name ->
          add
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               (tid_of_stream stream) (json_escape name)))
    (Trace.stream_ids trace);
  let fl = { next_id = 1; pf = Hashtbl.create 256; rel = Hashtbl.create 256 } in
  Trace.iter trace (fun ~time ~stream ev ->
      add (event_row ~time ~stream ev);
      List.iter add (flow_rows fl ~time ~stream ev));
  Buffer.add_string buf
    (Printf.sprintf "],\"metadata\":{\"dropped_events\":%d}}\n"
       (Trace.dropped trace));
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let write_chrome_json trace ~path = write_file ~path (to_chrome_json trace)

(* ------------------------------------------------------------------ *)
(* Per-request blame spans                                             *)
(* ------------------------------------------------------------------ *)

(* A single request's critical path as its own Chrome-trace document:
   lane 0 holds the request slice itself, lane 1 its additive component
   decomposition (the five blame components telescope across the response
   interval, so they render as a gapless strip under the parent), lane 2
   the recorded sub-intervals (demand arm-queue waits — bypasses marked —
   arm-held service and in-transit waits), which overlap the index/value
   stalls they explain. *)
let blame_span_to_chrome_json (sp : Reqtrace.span) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add row =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf row
  in
  add
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"memhog blame\"}}";
  List.iter
    (fun (tid, name) ->
      add
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid name))
    [ (0, "request"); (1, "blame components"); (2, "disk / transit") ];
  let slice ~tid ~name ~start ~dur args =
    if dur > 0 then
      add
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s%s}"
           (json_escape name) tid (ts_of_time start) (ts_of_time dur)
           (match args with
           | [] -> ""
           | args -> Printf.sprintf ",\"args\":{%s}" (args_json args)))
  in
  slice ~tid:0
    ~name:(Printf.sprintf "req key=%d" sp.Reqtrace.sp_key)
    ~start:sp.Reqtrace.sp_arrival ~dur:sp.Reqtrace.sp_response
    [
      ("id", string_of_int sp.Reqtrace.sp_id);
      ("bypasses", string_of_int sp.Reqtrace.sp_bypasses);
      ("pf_hidden", string_of_int sp.Reqtrace.sp_pf_hidden);
      ("pf_lost", string_of_int sp.Reqtrace.sp_pf_lost);
    ];
  (* the components telescope: each starts where the previous ended *)
  let t = ref sp.Reqtrace.sp_arrival in
  List.iter
    (fun (name, dur) ->
      slice ~tid:1 ~name ~start:!t ~dur [];
      t := !t + dur)
    [
      ("queue", sp.Reqtrace.sp_queue);
      ("index", sp.Reqtrace.sp_index);
      ("value", sp.Reqtrace.sp_value);
      ("cpu wait", sp.Reqtrace.sp_cpu);
      ("compute", sp.Reqtrace.sp_compute);
    ];
  List.iter
    (fun (kind, start, dur) -> slice ~tid:2 ~name:kind ~start ~dur [])
    (Reqtrace.children sp);
  Buffer.add_string buf "],\"metadata\":{}}\n";
  Buffer.contents buf

let write_blame_span sp ~path = write_file ~path (blame_span_to_chrome_json sp)

let write_series_csv tl ~path = write_file ~path (Telemetry.to_csv tl)

let write_telemetry tl ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file ~path:(Filename.concat dir "openmetrics.txt")
    (Telemetry.to_openmetrics tl);
  write_file ~path:(Filename.concat dir "series.csv") (Telemetry.to_csv tl);
  write_file ~path:(Filename.concat dir "alerts.csv") (Telemetry.alerts_csv tl)

let summary trace =
  let rows =
    List.map
      (fun (name, n) -> [ name; Report.count n ])
      (Trace.counts trace)
  in
  Format.asprintf "@[<v>%t@]" (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf "trace: %d events retained, %d dropped"
             (Trace.length trace) (Trace.dropped trace))
        ~header:[ "event"; "count" ] ~rows fmt ())
