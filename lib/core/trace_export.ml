open Memhog_sim

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome's trace format has no notion of negative thread ids, so daemon
   streams (-1 ..) are remapped above any plausible process pid. *)
let tid_of_stream stream = if stream >= 0 then stream else 1_000_000 - stream

(* Simulated ns rendered as the format's microseconds, keeping ns
   precision in the fraction. *)
let ts_of_time time = Printf.sprintf "%.3f" (float_of_int time /. 1000.0)

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         (* numeric payloads stay numbers; everything else is a string *)
         match int_of_string_opt v with
         | Some n -> Printf.sprintf "\"%s\":%d" (json_escape k) n
         | None -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let event_row ~time ~stream ev =
  let tid = tid_of_stream stream in
  let common = Printf.sprintf "\"pid\":0,\"tid\":%d,\"ts\":%s" tid (ts_of_time time) in
  match ev with
  | Trace.Free_depth { pages } ->
      Printf.sprintf "{\"name\":\"free_depth\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        common pages
  | Trace.Rss_sample { owner; pages } ->
      Printf.sprintf "{\"name\":\"rss:%d\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        owner common pages
  | Trace.Upper_limit_sample { owner; pages } ->
      Printf.sprintf
        "{\"name\":\"upper_limit:%d\",\"ph\":\"C\",%s,\"args\":{\"pages\":%d}}"
        owner common pages
  | Trace.Phase_begin { name } ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"B\",%s}" (json_escape name) common
  | Trace.Phase_end { name } ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",%s}" (json_escape name) common
  | ev ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{%s}}"
        (Trace.event_name ev) common
        (args_json (Trace.event_args ev))

let to_chrome_json trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add row =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf row
  in
  add "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"memhog-sim\"}}";
  List.iter
    (fun stream ->
      match Trace.stream_name trace stream with
      | None -> ()
      | Some name ->
          add
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               (tid_of_stream stream) (json_escape name)))
    (Trace.stream_ids trace);
  Trace.iter trace (fun ~time ~stream ev -> add (event_row ~time ~stream ev));
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let write_chrome_json trace ~path = write_file ~path (to_chrome_json trace)

let series_to_csv series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,time_ns,value\n";
  List.iter
    (fun (name, s) ->
      Series.iter s (fun ~time ~value ->
          Buffer.add_string buf (Printf.sprintf "%s,%d,%g\n" name time value)))
    series;
  Buffer.contents buf

let write_series_csv series ~path = write_file ~path (series_to_csv series)

let summary trace =
  let rows =
    List.map
      (fun (name, n) -> [ name; Report.count n ])
      (Trace.counts trace)
  in
  Format.asprintf "@[<v>%t@]" (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf "trace: %d events retained, %d dropped"
             (Trace.length trace) (Trace.dropped trace))
        ~header:[ "event"; "count" ] ~rows fmt ())
