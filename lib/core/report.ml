let ns t = Memhog_sim.Time_ns.to_string t
let ns_opt = function Some t -> ns t | None -> "-"
let ratio x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x

let count n =
  let s = string_of_int n in
  (* Group only the digits: a leading sign must not draw a comma after it
     (-123456 is "-123,456", not "-,123,456"). *)
  let sign, digits =
    if n < 0 then ("-", String.sub s 1 (String.length s - 1)) else ("", s)
  in
  let len = String.length digits in
  let buf = Buffer.create (1 + len + (len / 3)) in
  Buffer.add_string buf sign;
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    digits;
  Buffer.contents buf

let table ?title ~header ~rows fmt () =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg "Report.table: row width mismatch")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let pad i cell =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let line ch =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w ch) widths))
  in
  (match title with
  | Some t -> Format.fprintf fmt "%s@," t
  | None -> ());
  Format.fprintf fmt "%s@," (String.concat " | " (List.mapi pad header));
  Format.fprintf fmt "%s@," (line '-');
  List.iter
    (fun row -> Format.fprintf fmt "%s@," (String.concat " | " (List.mapi pad row)))
    rows
