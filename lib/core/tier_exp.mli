(** The tiered-backing-store experiment: a Figure 7/8-style matrix of one
    out-of-core workload over backend mixes (local swap only, far memory,
    compressed RAM, both), plus the robustness headline — a serving cell
    whose far-memory tier is hard-partitioned mid-window while demotions
    and fetches are in flight.

    The partition scenario is the acceptance test of the fault-tolerant
    store: the cell must complete with no fiber blocked on the dead tier,
    demotions must fail over to the durable swap copy, in-flight reads
    must be rescued from it, the circuit breaker must open and probe
    closed again, and the server's SLO attainment after the fault window
    must recover.  {!check} asserts all of that; the bench freezes the
    numbers byte-for-byte in [bench/TIER_metrics.json].

    Every cell is an independent simulation; results are bit-identical at
    any [jobs] level. *)

type mix = { mx_name : string; mx_tiers : string option }
(** One backend mix of the matrix: [None] is the swap-only baseline. *)

val default_mixes : mix list
(** swap, far, zram, far+zram. *)

val partition_tiers : string
(** The partition scenario's tier spec: far memory with a short breaker
    hold-off so the half-open probe cycle fits the serving window. *)

val partition_chaos : string
(** Hard partition of the far link mid-window ([net-partition@6s-9s]). *)

val partition_mark : Memhog_sim.Time_ns.t
(** The server's recovery mark: SLO attainment is tallied separately for
    requests arriving after this offset, one second past the heal. *)

type t = {
  tx_machine : Machine.t;
  tx_workload : string;          (** the matrix workload *)
  tx_variant : Experiment.variant;
  tx_mixes : (mix * Experiment.result) list;
  tx_rate : float;               (** partition cell's offered load (rps) *)
  tx_partition : Experiment.result;
}

val run :
  ?machine:Machine.t ->
  ?workload:string ->
  ?variant:Experiment.variant ->
  ?mixes:mix list ->
  rate:float ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  t
(** Run the matrix and the partition scenario on [jobs] worker domains.
    The partition cell co-runs the EMBAR/R hog (dirty releases, so
    demotions stay in flight through the fault window; aggressive, so
    the governor's tier-aware rung is exercised while the breaker is
    open) with the open-loop server at [rate] rps.
    @raise Failure when [workload] is unknown. *)

val results : t -> Experiment.result list
(** Matrix cells in mix order, then the partition cell — ready for
    {!Metrics.of_results}. *)

val check : t -> unit
(** The experiment's built-in gates.  Matrix: invariants hold and each
    configured fast tier saw writes.  Partition: invariants hold, the
    server drained its queue (no fiber blocked forever), nonzero far
    timeouts, failovers, rescues and breaker transitions, and post-mark
    SLO attainment at least the window-inclusive figure.
    @raise Failure naming the first violated gate. *)

val render : t -> string
(** Plain-text tables: Figure 7 components by mix, per-tier traffic by
    mix, and the partition cell's robustness close-out. *)
