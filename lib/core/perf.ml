module E = Experiment
module Workload = Memhog_workloads.Workload
module VS = Memhog_vm.Vm_stats

type cell = { pc_workload : string; pc_variant : E.variant }

let default_cells =
  [
    { pc_workload = "MATVEC"; pc_variant = E.O };
    { pc_workload = "MATVEC"; pc_variant = E.R };
    { pc_workload = "EMBAR"; pc_variant = E.B };
    { pc_workload = "CGM"; pc_variant = E.P };
  ]

type cell_result = {
  pr_label : string;
  pr_events : int;
  pr_hard_faults : int;
  pr_soft_faults : int;
  pr_iterations : int;
  pr_sim_ns : int;
  pr_wall_s : float;
  pr_events_per_sec : float;
  pr_faults_per_sec : float;
  pr_sim_ns_per_wall_ns : float;
  pr_minor_words : float;
  pr_promoted_words : float;
  pr_major_words : float;
  pr_minor_collections : int;
  pr_major_collections : int;
  pr_minor_words_per_event : float;
}

type t = {
  p_machine : string;
  p_jobs : int;
  p_gc_minor_kb : int option;
  p_ledger : bool;
  p_total_wall_s : float;
  p_cells : cell_result list;
}

let set_gc_minor_kb kb =
  if kb < 32 then invalid_arg "Perf.set_gc_minor_kb: below 32 KiB";
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = kb * 128 (* 8-byte words *) }

(* GC counters are per-domain in OCaml 5, so the deltas must bracket the
   run inside the worker that executes it — measuring from the main domain
   would read the wrong heap. *)
let run_cell ~machine ~ledger (c : cell) =
  let wl = Workload.find c.pc_workload in
  let s =
    E.setup ~machine ~workload:wl ~variant:c.pc_variant ~ledger_on:ledger ()
  in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = E.run s in
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let events = r.E.r_events_executed in
  let faults = r.E.r_app_stats.VS.hard_faults + r.E.r_app_stats.VS.soft_faults in
  let per_sec n = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
  {
    pr_label = Printf.sprintf "%s/%s" c.pc_workload (E.variant_name c.pc_variant);
    pr_events = events;
    pr_hard_faults = r.E.r_app_stats.VS.hard_faults;
    pr_soft_faults = r.E.r_app_stats.VS.soft_faults;
    pr_iterations = r.E.r_iterations;
    pr_sim_ns = r.E.r_elapsed;
    pr_wall_s = wall;
    pr_events_per_sec = per_sec events;
    pr_faults_per_sec = per_sec faults;
    pr_sim_ns_per_wall_ns =
      (if wall > 0.0 then float_of_int r.E.r_elapsed /. (wall *. 1e9) else 0.0);
    pr_minor_words = minor_words;
    pr_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    pr_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    pr_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    pr_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    pr_minor_words_per_event =
      (if events > 0 then minor_words /. float_of_int events else 0.0);
  }

let run ?(cells = default_cells) ?(ledger = false) ?gc_minor_kb ~machine ~jobs
    () =
  Option.iter set_gc_minor_kb gc_minor_kb;
  let t0 = Unix.gettimeofday () in
  let results = Pool.map ~jobs (run_cell ~machine ~ledger) cells in
  {
    p_machine = machine.Machine.m_name;
    p_jobs = jobs;
    p_gc_minor_kb = gc_minor_kb;
    p_ledger = ledger;
    p_total_wall_s = Unix.gettimeofday () -. t0;
    p_cells = results;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

open Metrics_io

let schema = "memhog-perf"
let perf_schema_version = 1

(* Wall-clock floats get a fixed format so the file shape is stable even
   though the values are not gated. *)
let num_wall f = Num (f, Printf.sprintf "%.6f" f)

let cell_json (c : cell_result) =
  Obj
    [
      ("label", Str c.pr_label);
      ( "work",
        Obj
          [
            ("events", num_of_int c.pr_events);
            ("hard_faults", num_of_int c.pr_hard_faults);
            ("soft_faults", num_of_int c.pr_soft_faults);
            ("iterations", num_of_int c.pr_iterations);
            ("sim_ns", num_of_int c.pr_sim_ns);
          ] );
      ( "wall",
        Obj
          [
            ("wall_s", num_wall c.pr_wall_s);
            ("events_per_sec", num_wall c.pr_events_per_sec);
            ("faults_per_sec", num_wall c.pr_faults_per_sec);
            ("sim_ns_per_wall_ns", num_wall c.pr_sim_ns_per_wall_ns);
            ("minor_words", num_wall c.pr_minor_words);
            ("promoted_words", num_wall c.pr_promoted_words);
            ("major_words", num_wall c.pr_major_words);
            ("minor_collections", num_of_int c.pr_minor_collections);
            ("major_collections", num_of_int c.pr_major_collections);
            ("minor_words_per_event", num_wall c.pr_minor_words_per_event);
          ] );
    ]

let to_json t =
  Obj
    ([
       ("schema", Str schema);
       ("schema_version", num_of_int perf_schema_version);
       ("machine", Str t.p_machine);
       ("jobs", num_of_int t.p_jobs);
     ]
    @ (match t.p_gc_minor_kb with
      | Some kb -> [ ("gc_minor_kb", num_of_int kb) ]
      | None -> [])
    @ [
        ("ledger", Bool t.p_ledger);
        ("total_wall_s", num_wall t.p_total_wall_s);
        ("cells", Arr (List.map cell_json t.p_cells));
      ])

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (to_json t));
      output_char oc '\n')

let load_file ~path =
  match
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  with
  | Error e -> Error e
  | Ok body -> (
      match parse body with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
          match json with
          | Obj kvs
            when List.assoc_opt "schema" kvs = Some (Str schema)
                 && (match List.assoc_opt "schema_version" kvs with
                    | Some (Num (v, _)) -> int_of_float v = perf_schema_version
                    | _ -> false) ->
              Ok json
          | _ ->
              Error
                (Printf.sprintf "%s: not a %s schema_version %d file" path
                   schema perf_schema_version)))

(* Members that carry wall-clock or environment information; everything
   else in the document is deterministic work. *)
let informational = [ "wall"; "jobs"; "gc_minor_kb"; "total_wall_s" ]

let rec work_projection = function
  | Obj kvs ->
      Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k informational then None
             else Some (k, work_projection v))
           kvs)
  | Arr xs -> Arr (List.map work_projection xs)
  | j -> j

let check ~baseline ~current =
  match (load_file ~path:baseline, load_file ~path:current) with
  | Error e, _ | _, Error e -> Error e
  | Ok b, Ok c -> (
      match
        compare_json ~tolerance:0.0 (work_projection b) (work_projection c)
      with
      | [] -> Ok ()
      | diffs ->
          Error
            (String.concat "\n"
               (List.map
                  (fun d ->
                    Printf.sprintf "%s: expected %s, got %s (%s)" d.d_path
                      d.d_expected d.d_got d.d_reason)
                  diffs)))

let render t =
  let rows =
    List.map
      (fun c ->
        [
          c.pr_label;
          string_of_int c.pr_events;
          string_of_int (c.pr_hard_faults + c.pr_soft_faults);
          Printf.sprintf "%.3f" c.pr_wall_s;
          Printf.sprintf "%.0f" c.pr_events_per_sec;
          Printf.sprintf "%.0f" c.pr_faults_per_sec;
          Printf.sprintf "%.1f" c.pr_sim_ns_per_wall_ns;
          Printf.sprintf "%.1f" c.pr_minor_words_per_event;
        ])
      t.p_cells
  in
  Format.asprintf "@[<v>%t@]" (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf
             "Throughput: %s, %d jobs%s (%.2fs wall; work gated, wall \
              informational)"
             t.p_machine t.p_jobs
             (if t.p_ledger then ", ledger on" else "")
             t.p_total_wall_s)
        ~header:
          [
            "cell"; "events"; "faults"; "wall s"; "events/s"; "faults/s";
            "sim-ns/wall-ns"; "minor w/event";
          ]
        ~rows fmt ())
