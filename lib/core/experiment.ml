open Memhog_sim
module Os = Memhog_vm.Os
module Vm_stats = Memhog_vm.Vm_stats
module Pir = Memhog_compiler.Pir
module Compile = Memhog_compiler.Compile
module Runtime = Memhog_runtime.Runtime
module App = Memhog_exec.App
module Interactive = Memhog_exec.Interactive
module Server = Memhog_exec.Server
module Workload = Memhog_workloads.Workload
module Kvserve = Memhog_workloads.Kvserve

type variant = O | P | R | B

let variant_name = function O -> "O" | P -> "P" | R -> "R" | B -> "B"
let all_variants = [ O; P; R; B ]

let pir_variant = function
  | O -> Pir.V_original
  | P -> Pir.V_prefetch
  | R | B -> Pir.V_release

let runtime_policy = function
  | B -> Runtime.Buffered
  | O | P | R -> Runtime.Aggressive

type interactive_summary = {
  is_sleep : Time_ns.t;
  is_avg_response : Time_ns.t option;
  is_avg_hard_faults : float option;
  is_sweeps : int;
  is_alone_response : Time_ns.t;
}

type breakdown = {
  b_user : Time_ns.t;
  b_system : Time_ns.t;
  b_io_stall : Time_ns.t;
  b_resource_stall : Time_ns.t;
}

let breakdown_total b = b.b_user + b.b_system + b.b_io_stall + b.b_resource_stall

let breakdown_of_account acct =
  {
    b_user = Account.get acct Account.User;
    b_system = Account.get acct Account.System;
    b_io_stall = Account.get acct Account.Io_stall;
    b_resource_stall = Account.get acct Account.Resource_stall;
  }

type result = {
  r_workload : string;
  r_variant : variant;
  r_elapsed : Time_ns.t;
  r_iterations : int;
  r_breakdown : breakdown;
  r_account : Account.t;
  r_inter_breakdown : breakdown option;
  r_app_stats : Vm_stats.proc;
  r_inter_stats : Vm_stats.proc option;
  r_global : Vm_stats.global;
  r_runtime : Runtime.stats option;
  r_compiler : Pir.gen_stats;
  r_interactive : interactive_summary option;
  r_app_tlb_misses : int;
  r_telemetry : Telemetry.t;
  r_swap_reads : int;
  r_swap_writes : int;
  r_disk_busy : Time_ns.t;
  r_invariants_ok : bool;
  r_trace : Trace.t;
  r_fault_hist : Histogram.t;
  r_prefetch_hist : Histogram.t;
  r_response_hist : Histogram.t option;
  r_chaos : Chaos.stats option;
  r_disk_timeouts : int;
  r_disk_bypasses : int;
  r_tiers : Memhog_vm.Tiers.summary option;
  r_ledger : Ledger.summary;
  r_sites : Pir.site_info list;
  r_events_executed : int;
  r_serving : Server.summary option;
  r_blame : Reqtrace.summary option;
  r_reqtrace : Reqtrace.t;
}

type setup = {
  machine : Machine.t;
  workload : Workload.t;
  variant : variant;
  interactive_sleep : Time_ns.t option;
  iterations : int option;
  min_sim_time : Time_ns.t;
  conservative : bool;
  reactive : bool;
  release_target : int option;
  max_sim_time : Time_ns.t;
  trace : Trace.t option;
  chaos : string option;
  governor : Runtime.governor_cfg option;
  ledger_on : bool;
  serve : Server.cfg option;
  tiers : string option;
  telemetry : bool;
}

(* Machine-relative serving cell: the keyspace shapes come from
   {!Kvserve.sizing} and the traffic knobs default to a 20-second arrival
   window, 200 us of compute per request and a 30 ms SLO — far above a
   warm response (two resident touches) and below a couple of hard
   faults' worth of stall, so attainment separates the variants. *)
let serve_cfg ?(slo = Time_ns.ms 30) ?(duration = Time_ns.sec 20)
    ?(warmup = 32) ?(work_ns = Time_ns.us 200) ?(prefetch = true)
    ?(machine = Machine.paper) ?mark ~rate_rps () =
  let s =
    Kvserve.sizing
      ~mem_bytes:(Machine.mem_bytes machine)
      ~page_bytes:machine.Machine.m_config.Memhog_vm.Config.page_bytes
  in
  {
    Server.sv_nkeys = s.Kvserve.kv_nkeys;
    sv_theta = s.Kvserve.kv_theta;
    sv_index_bytes = s.Kvserve.kv_index_bytes;
    sv_values_bytes = s.Kvserve.kv_values_bytes;
    sv_rate_rps = rate_rps;
    sv_duration = duration;
    sv_warmup = warmup;
    sv_work_ns = work_ns;
    sv_slo = slo;
    sv_prefetch = prefetch;
    sv_seed = machine.Machine.m_seed;
    sv_mark = mark;
  }

let setup ?(machine = Machine.paper) ?interactive_sleep ?iterations
    ?(min_sim_time = 0) ?(conservative = false) ?(reactive = false)
    ?release_target ?(max_sim_time = Time_ns.sec 3600) ?trace ?chaos ?governor
    ?(ledger_on = true) ?serve ?tiers ?(telemetry = false) ~workload ~variant
    () =
  (* Validate the specs eagerly so a bad --chaos or --tiers fails before
     any work. *)
  (match chaos with
  | Some spec -> ignore (Chaos.create ~seed:machine.Machine.m_seed spec)
  | None -> ());
  (match tiers with
  | Some spec -> ignore (Memhog_vm.Tiers.spec_of_string_exn spec)
  | None -> ());
  {
    machine;
    workload;
    variant;
    interactive_sleep;
    iterations;
    min_sim_time;
    conservative;
    reactive;
    release_target;
    max_sim_time;
    trace;
    chaos;
    governor;
    ledger_on;
    serve;
    tiers;
    telemetry;
  }

let summarize_interactive ~sleep (task : Interactive.t) =
  {
    is_sleep = sleep;
    is_avg_response = Interactive.avg_response task;
    is_avg_hard_faults = Interactive.avg_hard_faults task;
    is_sweeps = List.length (Interactive.sweeps task);
    is_alone_response = Interactive.alone_response task;
  }

let run (s : setup) =
  let m = s.machine in
  let engine = Engine.create ~max_time:s.max_sim_time () in
  (* Each run builds its own plan from (machine seed, spec): worker domains
     never share mutable chaos state, so the injected schedule — and the
     metrics — are identical at any --jobs level. *)
  let chaos =
    match s.chaos with
    | Some spec -> Chaos.create ~seed:m.Machine.m_seed spec
    | None -> Chaos.none
  in
  (* The lifecycle ledger is on by default: it is cheap (hash-table updates
     at emit points, no simulated-time interaction) and private to this
     cell, so its summary is byte-identical at any --jobs level.  The perf
     harness turns it off ([ledger_on = false]) to measure the bare kernel;
     the ledger never interacts with the engine, so all deterministic work
     counters are unaffected either way. *)
  let ledger = if s.ledger_on then Ledger.create () else Ledger.null in
  (* The per-request blame layer exists only in serve mode: it is keyed by
     request lifecycles, which only the open-loop server drives.  Like the
     ledger it never touches the engine and is cell-private (its reservoir
     sampler draws from its own seeded stream), so blame output is
     byte-identical at any --jobs level. *)
  let reqtrace =
    match s.serve with
    | Some _ -> Reqtrace.create ~seed:m.Machine.m_seed ()
    | None -> Reqtrace.null
  in
  let os =
    Os.create ~swap_config:m.Machine.m_swap
      ?tiers:(Option.map Memhog_vm.Tiers.spec_of_string_exn s.tiers)
      ?trace:s.trace ~ledger ~chaos ~reqtrace ~config:m.Machine.m_config
      ~engine ()
  in
  let trace = Os.trace os in
  let prog_ir, params =
    s.workload.Workload.w_make
      ~mem_bytes:(Machine.mem_bytes m)
      ~page_bytes:m.Machine.m_config.Memhog_vm.Config.page_bytes
  in
  let prog =
    Compile.compile
      ~target:(Machine.compiler_target m)
      ~conservative:s.conservative
      ~variant:(pir_variant s.variant)
      prog_ir
  in
  (* An active fault plan turns the degradation governor on (unless the
     setup pins its own configuration); healthy runs keep it off so their
     committed baselines stay untouched. *)
  let governor =
    match s.governor with
    | Some _ as g -> g
    | None -> if s.chaos <> None then Some Runtime.default_governor else None
  in
  let app =
    App.create ~seed:m.Machine.m_seed
      ~runtime_policy:
        (if s.reactive then Runtime.Reactive else runtime_policy s.variant)
      ?release_target:s.release_target ?governor ~os ~params prog
  in
  if s.reactive then
    Os.set_eviction_advisor os (App.asp app) (fun () ->
        Runtime.advise_evict (App.runtime app));
  let task =
    Option.map
      (fun sleep ->
        let t = Interactive.create ~os ~sleep () in
        ignore (Interactive.spawn t);
        t)
      s.interactive_sleep
  in
  (* In serve mode the hog co-runs as load, not as the thing being timed:
     the server's drained queue stops the engine, cutting the hog off
     mid-iteration. *)
  let server =
    Option.map
      (fun cfg ->
        let sv = Server.create ~os ~cfg () in
        ignore (Server.spawn sv ~on_done:(fun () -> Engine.stop ()));
        sv)
      s.serve
  in
  let iterations =
    Option.value s.iterations ~default:s.workload.Workload.w_iterations
  in
  (* Telemetry registry: the single sampling path.  Every probe is a
     closure read at scrape time; scraping never touches the engine, so
     the sampler fiber's event schedule — and every gated work counter —
     is identical whether the registry holds four series or twenty. *)
  let tl = Telemetry.create ~trace () in
  let app_asp = App.asp app in
  (* The legacy [--series] trio (plus the interactive task's RSS), under
     their historical names. *)
  Telemetry.register_gauge tl ~name:"free" ~help:"Free physical frames."
    (fun () -> float_of_int (Os.free_pages os));
  Telemetry.register_gauge tl ~name:"app-rss"
    ~help:"Out-of-core application resident set (pages)." (fun () ->
      float_of_int app_asp.Memhog_vm.Address_space.rss);
  Telemetry.register_gauge tl ~name:"app-limit"
    ~help:"Equation 1 upper limit the OS published for the app (pages)."
    (fun () -> float_of_int (Os.shared_upper_limit os app_asp));
  Option.iter
    (fun t ->
      let iasp = Interactive.asp t in
      Telemetry.register_gauge tl ~name:"inter-rss"
        ~help:"Interactive task resident set (pages)." (fun () ->
          float_of_int iasp.Memhog_vm.Address_space.rss))
    task;
  (* Ring losses are telemetry, not a buried field: every exporter
     (Chrome, CSV, OpenMetrics) reports this counter. *)
  Telemetry.register_counter tl ~name:"trace-dropped"
    ~help:"Events overwritten in the trace ring." (fun () ->
      float_of_int (Trace.dropped trace));
  if s.telemetry then begin
    (* Full registry: VM, disk, tiers, runtime and server probes, plus the
       default alert rules. *)
    Telemetry.register_counter tl ~name:"hard-faults"
      ~help:"Application demand reads from swap." (fun () ->
        float_of_int
          app_asp.Memhog_vm.Address_space.stats.Vm_stats.hard_faults);
    Telemetry.register_counter tl ~name:"refaults"
      ~help:"Too-early releases that hard-refaulted (ledger)." (fun () ->
        float_of_int (Ledger.refaults ledger));
    Telemetry.register_counter tl ~name:"early-rescues"
      ~help:"Too-early releases rescued from the free list (ledger)."
      (fun () -> float_of_int (Ledger.early_rescues ledger));
    let swap = Os.swap os in
    Telemetry.register_gauge tl ~name:"swap-queue"
      ~help:"Requests waiting at (or occupying) the swap stripes' arms."
      (fun () -> float_of_int (Memhog_disk.Swap.queue_depth swap));
    Telemetry.register_counter tl ~name:"swap-busy-ns"
      ~help:"Cumulative arm service time across the stripes (simulated ns)."
      (fun () -> float_of_int (Memhog_disk.Swap.total_busy_time swap));
    Telemetry.register_counter tl ~name:"swap-timeouts"
      ~help:"Swap requests that blew their per-request deadline." (fun () ->
        float_of_int (Memhog_disk.Swap.total_timeouts swap));
    Option.iter
      (fun tr ->
        let module Tiers = Memhog_vm.Tiers in
        Telemetry.register_gauge tl ~name:"breaker-state"
          ~help:"Far-tier circuit breaker (0 closed, 1 half-open, 2 open)."
          (fun () -> float_of_int (Tiers.breaker_state tr));
        Telemetry.register_counter tl ~name:"breaker-transitions"
          ~help:"Circuit-breaker state changes." (fun () ->
            float_of_int (Tiers.breaker_transitions tr));
        Telemetry.register_counter tl ~name:"tier-rescues"
          ~help:"Reads rescued from the durable swap copy." (fun () ->
            float_of_int (Tiers.rescues tr));
        Telemetry.register_counter tl ~name:"far-failovers"
          ~help:"Demotions failed over to local swap." (fun () ->
            float_of_int (Tiers.far_failovers tr)))
      (Os.tiers os);
    (if s.variant <> O then
       let rt = App.runtime app in
       Telemetry.register_gauge tl ~name:"release-buffer"
         ~help:"Pages held in the runtime's priority release buffer."
         (fun () -> float_of_int (Runtime.buffered_pages rt));
       Telemetry.register_gauge tl ~name:"gov-level"
         ~help:"Degradation-governor rung (0 configured policy, 2 off)."
         (fun () -> float_of_int (Runtime.governor_level rt));
       Telemetry.register_counter tl ~name:"gov-transitions"
         ~help:"Governor rung changes, both directions." (fun () ->
           let st = Runtime.stats rt in
           float_of_int (st.Runtime.rt_gov_degrades + st.Runtime.rt_gov_recoveries)));
    Option.iter
      (fun sv ->
        Telemetry.register_gauge tl ~name:"queue-depth"
          ~help:"Open-loop server arrival-queue backlog." (fun () ->
            float_of_int (Server.queue_depth sv));
        Telemetry.register_counter tl ~name:"arrivals"
          ~help:"Requests generated by the open-loop source." (fun () ->
            float_of_int (Server.arrived sv));
        Telemetry.register_counter tl ~name:"slo-recorded"
          ~help:"Responses recorded (completions past warm-up)." (fun () ->
            float_of_int (Server.recorded sv));
        Telemetry.register_counter tl ~name:"slo-missed"
          ~help:"Recorded responses over the SLO." (fun () ->
            float_of_int (Server.recorded sv - Server.slo_ok sv)))
      server;
    (* Default alert rules.  Windows count 100 ms scrapes. *)
    let frames =
      float_of_int m.Machine.m_config.Memhog_vm.Config.total_frames
    in
    Telemetry.add_rule tl ~name:"free_starvation" ~series:"free" ~window:5
      ~signal:Telemetry.Window_mean ~direction:Telemetry.Below
      ~fire:(frames /. 64.0) ~clear:(frames /. 32.0) ();
    Telemetry.add_rule tl ~name:"refault_storm" ~series:"refaults" ~window:10
      ~signal:Telemetry.Window_rate ~direction:Telemetry.Above ~fire:25.0
      ~clear:0.0 ();
    if Os.tiers os <> None then
      Telemetry.add_rule tl ~name:"breaker_flap" ~series:"breaker-transitions"
        ~window:20 ~signal:Telemetry.Window_rate ~direction:Telemetry.Above
        ~fire:2.0 ~clear:0.0 ();
    if s.variant <> O then
      Telemetry.add_rule tl ~name:"governor_oscillation"
        ~series:"gov-transitions" ~window:50 ~signal:Telemetry.Window_rate
        ~direction:Telemetry.Above ~fire:3.0 ~clear:0.0 ();
    if server <> None then begin
      Telemetry.add_rule tl ~name:"slo_fast_burn" ~series:"slo-missed"
        ~window:5
        ~signal:(Telemetry.Window_ratio "slo-recorded")
        ~direction:Telemetry.Above ~fire:0.5 ~clear:0.1 ();
      Telemetry.add_rule tl ~name:"slo_slow_burn" ~series:"slo-missed"
        ~window:30
        ~signal:(Telemetry.Window_ratio "slo-recorded")
        ~direction:Telemetry.Above ~fire:0.2 ~clear:0.05 ()
    end
  end;
  ignore
    (Engine.spawn engine ~name:"sampler" (fun () ->
         while true do
           Engine.delay ~cat:Account.Sleep (Time_ns.ms 100);
           let now = Engine.now () in
           Telemetry.scrape tl ~time:now;
           let app_rss = app_asp.Memhog_vm.Address_space.rss in
           if Trace.enabled trace then begin
             let pid = app_asp.Memhog_vm.Address_space.pid in
             Trace.emit trace ~time:now ~stream:pid
               (Trace.Rss_sample { owner = pid; pages = app_rss });
             Trace.emit trace ~time:now ~stream:pid
               (Trace.Upper_limit_sample
                  { owner = pid; pages = Os.shared_upper_limit os app_asp })
           end;
           (match server with
           | Some sv when Trace.enabled trace ->
               (* Request-queue backlog, on the server's stream: lines up
                  with the RSS counters so a trace viewer shows queue
                  build-up against the hog's residency. *)
               let pid = (Server.asp sv).Memhog_vm.Address_space.pid in
               Trace.emit trace ~time:now ~stream:pid
                 (Trace.Queue_depth { owner = pid; depth = Server.queue_depth sv })
           | _ -> ());
           match task with
           | Some t ->
               let iasp = Interactive.asp t in
               if Trace.enabled trace then
                 let pid = iasp.Memhog_vm.Address_space.pid in
                 Trace.emit trace ~time:now ~stream:pid
                   (Trace.Rss_sample
                      { owner = pid; pages = iasp.Memhog_vm.Address_space.rss })
           | None -> ()
         done));
  let elapsed = ref 0 in
  let iterations_done = ref 0 in
  let driver =
    Engine.spawn engine ~name:"app-driver" (fun () ->
        let start = Engine.now () in
        let count = ref 0 in
        (* run at least [iterations] passes, and keep going until
           [min_sim_time] so the interactive task gets enough sweeps; in
           serve mode keep hogging until the server stops the engine *)
        while
          !count < iterations
          || Engine.now () - start < s.min_sim_time
          || s.serve <> None
        do
          App.exec_main app;
          incr count;
          iterations_done := !count;
          elapsed := Engine.now () - start
        done;
        App.finish app;
        iterations_done := !count;
        elapsed := Engine.now () - start;
        Engine.stop ())
  in
  Engine.run engine;
  (match Engine.crashes engine with
  | [] -> ()
  | (name, e) :: _ ->
      failwith
        (Printf.sprintf "experiment %s/%s: process %s crashed: %s"
           s.workload.Workload.w_name (variant_name s.variant) name
           (Printexc.to_string e)));
  let asp = App.asp app in
  (* The application executed inside the driver process: its account holds
     the Figure 7 time components. *)
  let acct = driver.Engine.account in
  let breakdown = breakdown_of_account acct in
  let swap = Os.swap os in
  {
    r_workload = s.workload.Workload.w_name;
    r_variant = s.variant;
    r_elapsed = !elapsed;
    r_iterations = max 1 !iterations_done;
    r_breakdown = breakdown;
    r_account = acct;
    r_inter_breakdown =
      Option.bind task (fun t ->
          Option.map breakdown_of_account (Interactive.account t));
    r_app_stats = asp.Memhog_vm.Address_space.stats;
    r_inter_stats =
      Option.map
        (fun t -> (Interactive.asp t).Memhog_vm.Address_space.stats)
        task;
    r_global = Os.global_stats os;
    r_runtime =
      (match s.variant with
      | O -> None
      | _ -> Some (Runtime.stats (App.runtime app)));
    r_compiler = prog.Pir.px_stats;
    r_interactive =
      Option.map
        (fun t ->
          summarize_interactive ~sleep:(Option.get s.interactive_sleep) t)
        task;
    r_app_tlb_misses = Memhog_vm.Tlb.misses asp.Memhog_vm.Address_space.tlb;
    r_telemetry = tl;
    r_swap_reads = Memhog_disk.Swap.page_reads swap;
    r_disk_busy = Memhog_disk.Swap.total_busy_time swap;
    r_swap_writes = Memhog_disk.Swap.page_writes swap;
    r_invariants_ok = List.for_all snd (Os.check_invariants os);
    r_trace = trace;
    r_fault_hist = Os.fault_histogram os;
    r_prefetch_hist = Os.prefetch_histogram os;
    r_response_hist = Option.map (fun t -> Interactive.response_histogram t) task;
    r_chaos = (if s.chaos = None then None else Some (Chaos.stats chaos));
    r_disk_timeouts =
      Array.fold_left
        (fun acc d -> acc + Memhog_disk.Disk.timeouts d)
        0
        (Memhog_disk.Swap.disks swap);
    r_disk_bypasses =
      Array.fold_left
        (fun acc d -> acc + Memhog_disk.Disk.demand_bypasses d)
        0
        (Memhog_disk.Swap.disks swap);
    r_tiers = Option.map Memhog_vm.Tiers.summary (Os.tiers os);
    r_ledger = Ledger.summarize ledger;
    r_sites = Pir.sites prog;
    r_events_executed = Engine.events_executed engine;
    r_serving = Option.map Server.summary server;
    r_blame = Option.map Server.blame server;
    r_reqtrace = reqtrace;
  }

let run_interactive_alone ?(machine = Machine.paper) ~sleep ~duration () =
  let engine = Engine.create ~max_time:(duration + Time_ns.sec 60) () in
  let os =
    Os.create ~swap_config:machine.Machine.m_swap
      ~config:machine.Machine.m_config ~engine ()
  in
  let task = Interactive.create ~os ~sleep () in
  ignore (Interactive.spawn task);
  ignore
    (Engine.spawn engine ~name:"stopper" (fun () ->
         Engine.delay ~cat:Account.Sleep duration;
         Engine.stop ()));
  Engine.run engine;
  summarize_interactive ~sleep task
