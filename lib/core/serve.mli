(** The serving experiment grid: {!Memhog_exec.Server} (open-loop key-value
    traffic with Zipfian popularity) co-run with an out-of-core memory hog,
    swept over offered load x hog variant.

    This is ROADMAP item 5's experiment axis — tail latency vs offered load
    under memory pressure — and the serving analogue of Figures 1/10: at
    the same offered load, an un-released hog (O) collapses the server's
    p999 through queueing on hard faults, while buffered releasing (B)
    keeps the free pool healthy and the tail flat.

    Every cell is an independent simulation; results are bit-identical at
    any [jobs] level. *)

type cell = { sc_rate : float; sc_variant : Experiment.variant }

type t = {
  s_machine : Machine.t;
  s_workload : string;  (** the hog *)
  s_slo : Memhog_sim.Time_ns.t;
  s_chaos : string option;
  s_cells : (cell * Experiment.result) list;  (** grid order: rate-major *)
}

val default_rates : float list
(** 3200 and 4480 rps: at and beyond the knee where the un-released hog's
    page stealing overwhelms the server's self-healing re-prefetches on
    the paper machine, so the sweep shows the p999 collapse (the released
    hog keeps the tail flat through both). *)

val default_variants : Experiment.variant list
(** O and B — the paper's bookends. *)

val default_hog : string
(** MATVEC, the hog of the paper's interactivity experiments. *)

val run :
  ?machine:Machine.t ->
  ?workload:string ->
  ?rates:float list ->
  ?variants:Experiment.variant list ->
  ?slo:Memhog_sim.Time_ns.t ->
  ?duration:Memhog_sim.Time_ns.t ->
  ?chaos:string ->
  ?tiers:string ->
  ?mark:Memhog_sim.Time_ns.t ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  t
(** Run the grid on [jobs] worker domains.  [chaos] applies the same
    fault-injection spec to every cell (rebuilt per cell from the machine
    seed, preserving determinism); [tiers] likewise installs the same
    tiered backing store in every cell, and [mark] sets the server's
    post-window recovery mark ({!Memhog_exec.Server.cfg}[.sv_mark]).
    @raise Failure when [workload] is unknown. *)

val cells : t -> (cell * Experiment.result) list
val results : t -> Experiment.result list
(** Flattened grid-order results, ready for {!Metrics.of_results}. *)

val serving_exn : Experiment.result -> Memhog_exec.Server.summary
(** The serving close-out of a grid cell.
    @raise Invalid_argument on a non-serve result. *)

val blame_exn : Experiment.result -> Memhog_sim.Reqtrace.summary
(** The per-request blame close-out of a grid cell.
    @raise Invalid_argument on a non-serve result. *)

val render : t -> string
(** Plain-text tail-latency table (p50/p99/p999 + SLO attainment), plus an
    explicit warning line for any cell that recorded no responses — its
    0% attainment is vacuous, not measured. *)

val render_blame : t -> string
(** Plain-text blame tables: mean per-request response-time decomposition
    by percentile band (the [memhog blame] headline — components sum to
    the response column exactly), plus the prefetch-race and demand-disk
    attribution counters per cell. *)
