open Memhog_sim
module E = Experiment
module VS = Memhog_vm.Vm_stats
module Workload = Memhog_workloads.Workload
module Compile = Memhog_compiler.Compile
module Pir = Memhog_compiler.Pir
module Analysis = Memhog_compiler.Analysis

type cell_timing = { ct_label : string; ct_wall_s : float }

type matrix = {
  mx_machine : Machine.t;
  mx_sleep : Time_ns.t;
  mx_results : (string * (E.variant * E.result) list) list;
  mx_alone : E.interactive_summary;
  mx_jobs : int;
  mx_wall_s : float;
  mx_cells : cell_timing list;
}

let matrix_results m =
  List.concat_map (fun (_, per_variant) -> List.map snd per_variant) m.mx_results

let no_log _ = ()

(* Jobs run on worker domains; serialize calls into the caller's logger. *)
let locked_log log =
  let m = Mutex.create () in
  fun s ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> log s)

(* Run each spec as an independent pool job and keep per-cell wall-clock.
   Results come back in input order whatever the schedule, and every
   simulation owns its engine/OS/RNG, so the output is bit-identical to the
   serial run. *)
let timed_pmap ~jobs ~label ~run specs =
  Pool.map ~jobs
    (fun spec ->
      let t0 = Unix.gettimeofday () in
      let r = run spec in
      ({ ct_label = label spec; ct_wall_s = Unix.gettimeofday () -. t0 }, r))
    specs

let pmap ~jobs run specs = Pool.map ~jobs run specs

let sweep_min_time ~sleep = max (Time_ns.sec 45) ((8 * sleep) + Time_ns.sec 20)

type matrix_cell = Cell_run of string * E.variant | Cell_alone

let run_matrix ?(machine = Machine.paper) ?(sleep = Time_ns.sec 5)
    ?(workloads = Workload.names) ?(jobs = 1) ?(log = no_log) ?trace_dir ?chaos
    () =
  let log = locked_log log in
  let min_sim_time = sweep_min_time ~sleep in
  let t_start = Unix.gettimeofday () in
  let cells =
    List.concat_map
      (fun name -> List.map (fun v -> Cell_run (name, v)) E.all_variants)
      workloads
    @ [ Cell_alone ]
  in
  let label = function
    | Cell_run (name, v) -> Printf.sprintf "%s/%s" name (E.variant_name v)
    | Cell_alone -> "interactive-alone"
  in
  let run = function
    | Cell_run (name, v) ->
        log (Printf.sprintf "running %s/%s ..." name (E.variant_name v));
        let wl = Workload.find name in
        let trace =
          Option.map (fun _ -> Memhog_sim.Trace.create ()) trace_dir
        in
        let r =
          E.run
            (E.setup ~machine ~interactive_sleep:sleep ~min_sim_time ?trace
               ?chaos ~workload:wl ~variant:v ())
        in
        (match trace_dir with
        | Some dir ->
            let file =
              Filename.concat dir
                (Printf.sprintf "%s-%s.trace.json" name (E.variant_name v))
            in
            Trace_export.write_chrome_json r.E.r_trace ~path:file;
            log (Printf.sprintf "wrote %s" file)
        | None -> ());
        `Run r
    | Cell_alone ->
        log "running interactive task alone ...";
        `Alone (E.run_interactive_alone ~machine ~sleep ~duration:min_sim_time ())
  in
  let outcomes = timed_pmap ~jobs ~label ~run cells in
  let tagged = List.combine cells outcomes in
  let results =
    List.map
      (fun name ->
        ( name,
          List.filter_map
            (function
              | Cell_run (n, v), (_, `Run r) when n = name -> Some (v, r)
              | _ -> None)
            tagged ))
      workloads
  in
  let alone =
    match
      List.find_map
        (function Cell_alone, (_, `Alone a) -> Some a | _ -> None)
        tagged
    with
    | Some a -> a
    | None -> assert false
  in
  {
    mx_machine = machine;
    mx_sleep = sleep;
    mx_results = results;
    mx_alone = alone;
    mx_jobs = jobs;
    mx_wall_s = Unix.gettimeofday () -. t_start;
    mx_cells = List.map fst outcomes;
  }

let render f = Format.asprintf "@[<v>%t@]" f

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 ?(machine = Machine.paper) () =
  render (fun fmt ->
      Format.fprintf fmt "Table 1: hardware characteristics@,%a@," Machine.pp
        machine)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 ?(machine = Machine.paper) () =
  let page_bytes = machine.Machine.m_config.Memhog_vm.Config.page_bytes in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let bytes =
          Workload.data_set_bytes w ~mem_bytes:(Machine.mem_bytes machine)
            ~page_bytes
        in
        let prog, _ =
          w.Workload.w_make ~mem_bytes:(Machine.mem_bytes machine) ~page_bytes
        in
        let ann = Compile.analyze ~target:(Machine.compiler_target machine) prog in
        let s = ann.Analysis.ap_stats in
        [
          w.Workload.w_name;
          w.Workload.w_description;
          Printf.sprintf "%d MB" (bytes / (1024 * 1024));
          w.Workload.w_traits;
          string_of_int s.Analysis.st_direct_refs;
          string_of_int s.Analysis.st_indirect_refs;
          string_of_int s.Analysis.st_unknown_bound_loops;
        ])
      Workload.all
  in
  render (fun fmt ->
      Report.table ~title:"Table 2: benchmark characteristics"
        ~header:
          [ "name"; "description"; "data set"; "traits"; "direct"; "indirect"; "unk-loops" ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Response-time sweeps (Figures 1 and 10a)                            *)
(* ------------------------------------------------------------------ *)

let default_sleeps = [ 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 30.0 ]

let response_sweep ~machine ~sleeps_s ~variants ~jobs ~log =
  let wl = Workload.find "MATVEC" in
  let specs =
    List.concat_map
      (fun s -> (s, None) :: List.map (fun v -> (s, Some v)) variants)
      sleeps_s
  in
  let run (s, which) =
    let sleep = Time_ns.of_sec_f s in
    let min_sim_time = sweep_min_time ~sleep in
    match which with
    | None ->
        log (Printf.sprintf "sleep %.1fs ..." s);
        `Alone (E.run_interactive_alone ~machine ~sleep ~duration:min_sim_time ())
    | Some v ->
        `Run
          ( v,
            E.run
              (E.setup ~machine ~interactive_sleep:sleep ~min_sim_time
                 ~workload:wl ~variant:v ()) )
  in
  let tagged = List.combine specs (pmap ~jobs run specs) in
  List.map
    (fun s ->
      let alone =
        match
          List.find_map
            (function (s', None), `Alone a when s' = s -> Some a | _ -> None)
            tagged
        with
        | Some a -> a
        | None -> assert false
      in
      let per_variant =
        List.filter_map
          (function (s', Some _), `Run (v, r) when s' = s -> Some (v, r) | _ -> None)
          tagged
      in
      (s, alone, per_variant))
    sleeps_s

let response_rows sweep =
  List.map
    (fun (s, (alone : E.interactive_summary), per_variant) ->
      Printf.sprintf "%.1f" s
      :: Report.ns_opt alone.E.is_avg_response
      :: List.map
           (fun (_, (r : E.result)) ->
             match r.E.r_interactive with
             | Some i -> Report.ns_opt i.E.is_avg_response
             | None -> "-")
           per_variant)
    sweep

let fig1 ?(machine = Machine.paper) ?(sleeps_s = default_sleeps) ?(jobs = 1)
    ?(log = no_log) () =
  let log = locked_log log in
  let sweep = response_sweep ~machine ~sleeps_s ~variants:[ E.O; E.P ] ~jobs ~log in
  render (fun fmt ->
      Report.table
        ~title:
          "Figure 1: interactive response time vs sleep time (MATVEC 400MB \
           co-running)"
        ~header:[ "sleep (s)"; "alone"; "w/ original"; "w/ prefetching" ]
        ~rows:(response_rows sweep) fmt ())

let fig10a ?(machine = Machine.paper) ?(sleeps_s = default_sleeps) ?(jobs = 1)
    ?(log = no_log) () =
  let log = locked_log log in
  let sweep =
    response_sweep ~machine ~sleeps_s ~variants:E.all_variants ~jobs ~log
  in
  render (fun fmt ->
      Report.table
        ~title:"Figure 10(a): interactive response vs sleep time (MATVEC)"
        ~header:[ "sleep (s)"; "alone"; "O"; "P"; "R"; "B" ]
        ~rows:(response_rows sweep) fmt ())

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let fig7 (m : matrix) =
  render (fun fmt ->
      Format.fprintf fmt
        "Figure 7: execution time of the out-of-core applications, \
         normalized to O@,(per-pass components as fractions of the O total; \
         runs repeat the main@,computation for the interactive task's \
         benefit, so times are divided by@,the pass count)@,";
      List.iter
        (fun (name, per_variant) ->
          let per_iter (r : E.result) x =
            float_of_int x /. float_of_int r.E.r_iterations
          in
          let o_total =
            match List.assoc_opt E.O per_variant with
            | Some r -> per_iter r (E.breakdown_total r.E.r_breakdown)
            | None -> 1.0
          in
          let rows =
            List.map
              (fun (v, (r : E.result)) ->
                let b = r.E.r_breakdown in
                let f x = Report.ratio (per_iter r x /. o_total) in
                [
                  E.variant_name v;
                  f b.E.b_user;
                  f b.E.b_system;
                  f b.E.b_resource_stall;
                  f b.E.b_io_stall;
                  f (E.breakdown_total b);
                  Report.ns (r.E.r_elapsed / r.E.r_iterations);
                  string_of_int r.E.r_iterations;
                ])
              per_variant
          in
          Report.table ~title:name
            ~header:
              [
                "variant"; "user"; "system"; "resource"; "io"; "total";
                "per-pass"; "passes";
              ]
            ~rows fmt ();
          Format.fprintf fmt "@,")
        m.mx_results)

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let fig8 (m : matrix) =
  let rows =
    List.map
      (fun (name, per_variant) ->
        name
        :: List.map
             (fun v ->
               match List.assoc_opt v per_variant with
               | Some r ->
                   Report.count
                     (r.E.r_app_stats.VS.soft_faults_daemon
                     / max 1 r.E.r_iterations)
               | None -> "-")
             E.all_variants)
      m.mx_results
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Figure 8: soft page faults induced by the paging daemon's \
           invalidations (per pass)"
        ~header:[ "benchmark"; "O"; "P"; "R"; "B" ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 (m : matrix) =
  let rows =
    List.filter_map
      (fun (name, per_variant) ->
        match (List.assoc_opt E.O per_variant, List.assoc_opt E.R per_variant) with
        | Some o, Some r ->
            Some
              [
                name;
                Report.count o.E.r_global.VS.daemon_activations;
                Report.count o.E.r_global.VS.daemon_pages_stolen;
                Report.count r.E.r_global.VS.daemon_activations;
                Report.count r.E.r_global.VS.daemon_pages_stolen;
                Report.count r.E.r_app_stats.VS.freed_by_releaser;
              ]
        | _ -> None)
      m.mx_results
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Table 3: page reclamation activity (original vs \
           prefetch+release)"
        ~header:
          [
            "benchmark";
            "O activations";
            "O stolen";
            "R activations";
            "R stolen";
            "R released";
          ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let fig9 (m : matrix) =
  let rows =
    List.concat_map
      (fun (name, per_variant) ->
        List.map
          (fun (v, (r : E.result)) ->
            let s = r.E.r_app_stats in
            let freed_d = s.VS.freed_by_daemon and freed_r = s.VS.freed_by_releaser in
            let total = max 1 (freed_d + freed_r) in
            let frac a b = Report.pct (float_of_int a /. float_of_int (max 1 b)) in
            [
              Printf.sprintf "%s/%s" name (E.variant_name v);
              Report.count freed_d;
              Report.count freed_r;
              frac freed_d total;
              frac s.VS.rescued_daemon freed_d;
              frac s.VS.rescued_releaser freed_r;
            ])
          per_variant)
      m.mx_results
  in
  render (fun fmt ->
      Report.table
        ~title:"Figure 9: outcomes of freed pages (out-of-core application)"
        ~header:
          [
            "run";
            "freed by daemon";
            "freed by release";
            "daemon share";
            "rescued (daemon)";
            "rescued (release)";
          ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Figures 10b, 10c                                                    *)
(* ------------------------------------------------------------------ *)

let interactive_cell ~alone (r : E.result) f =
  match r.E.r_interactive with Some i -> f i alone | None -> "-"

let fig10b (m : matrix) =
  let alone = m.mx_alone in
  let alone_resp =
    match alone.E.is_avg_response with
    | Some t -> float_of_int t
    | None -> float_of_int alone.E.is_alone_response
  in
  let rows =
    List.map
      (fun (name, per_variant) ->
        name
        :: List.map
             (fun v ->
               match List.assoc_opt v per_variant with
               | Some r ->
                   interactive_cell ~alone r (fun i _ ->
                       match i.E.is_avg_response with
                       | Some t -> Report.ratio (float_of_int t /. alone_resp)
                       | None -> "-")
               | None -> "-")
             E.all_variants)
      m.mx_results
  in
  render (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf
             "Figure 10(b): interactive response at %s sleep, normalized to \
              running alone (alone = %s)"
             (Time_ns.to_string m.mx_sleep)
             (Report.ns_opt alone.E.is_avg_response))
        ~header:[ "benchmark"; "O"; "P"; "R"; "B" ]
        ~rows fmt ())

let fig10c (m : matrix) =
  let rows =
    List.map
      (fun (name, per_variant) ->
        name
        :: List.map
             (fun v ->
               match List.assoc_opt v per_variant with
               | Some r ->
                   interactive_cell ~alone:m.mx_alone r (fun i _ ->
                       match i.E.is_avg_hard_faults with
                       | Some f -> Report.f1 f
                       | None -> "-")
               | None -> "-")
             E.all_variants)
      m.mx_results
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Figure 10(c): interactive hard page faults per sweep (64 pages = \
           whole data set)"
        ~header:[ "benchmark"; "O"; "P"; "R"; "B" ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_batch ?(machine = Machine.paper)
    ?(targets = [ 10; 50; 100; 400; 1600 ]) ?(jobs = 1) ?(log = no_log) () =
  (* FFTPDE under the buffered policy keeps its whole release stream in the
     priority queues (false temporal reuse), so the drain batch size is the
     only thing between the application and the paging daemon. *)
  let log = locked_log log in
  let wl = Workload.find "FFTPDE" in
  let sleep = Time_ns.sec 5 in
  let rows =
    pmap ~jobs
      (fun target ->
        log (Printf.sprintf "release target %d ..." target);
        let r =
          E.run
            (E.setup ~machine ~interactive_sleep:sleep
               ~min_sim_time:(sweep_min_time ~sleep) ~workload:wl ~variant:E.B
               ~release_target:target ())
        in
        [
          string_of_int target;
          Report.ns (r.E.r_elapsed / r.E.r_iterations);
          Report.count
            (match r.E.r_runtime with
            | Some rt -> rt.Memhog_runtime.Runtime.rt_buffer_drains
            | None -> 0);
          Report.count r.E.r_global.VS.daemon_pages_stolen;
          (match r.E.r_interactive with
          | Some i -> Report.ns_opt i.E.is_avg_response
          | None -> "-");
        ])
      targets
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Ablation: release batch size (pages drained per buffering \
           decision; paper fixes 100 and never varied it).  FFTPDE B."
        ~header:
          [ "batch"; "per-pass"; "drains"; "daemon stole"; "interactive" ]
        ~rows fmt ())

let ablation_hwbits ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let hw_machine =
    {
      machine with
      Machine.m_config =
        { machine.Machine.m_config with Memhog_vm.Config.hw_ref_bits = true };
      m_name = machine.Machine.m_name ^ " + hardware reference bits";
    }
  in
  let specs =
    List.concat_map
      (fun wname ->
        List.concat_map
          (fun v ->
            List.map
              (fun lm -> (wname, v, lm))
              [ ("software", machine); ("hardware", hw_machine) ])
          [ E.P; E.R ])
      [ "EMBAR"; "MATVEC" ]
  in
  let rows =
    pmap ~jobs
      (fun (wname, v, (label, m)) ->
        log (Printf.sprintf "%s/%s (%s) ..." wname (E.variant_name v) label);
        let wl = Workload.find wname in
        let r = E.run (E.setup ~machine:m ~workload:wl ~variant:v ()) in
        [
          Printf.sprintf "%s/%s" wname (E.variant_name v);
          label;
          Report.ns r.E.r_elapsed;
          Report.count r.E.r_app_stats.VS.soft_faults;
          Report.ns r.E.r_breakdown.E.b_resource_stall;
        ])
      specs
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Ablation: software-simulated vs hardware reference bits (the \
           paper's section-6 question)"
        ~header:[ "run"; "ref bits"; "elapsed"; "soft faults"; "resource stall" ]
        ~rows fmt ())

let ablation_conservative ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log)
    () =
  let log = locked_log log in
  let specs =
    List.concat_map
      (fun wname ->
        List.concat_map
          (fun v ->
            List.map
              (fun lc -> (wname, v, lc))
              [ ("aggressive", false); ("conservative", true) ])
          [ E.R; E.B ])
      [ "MATVEC" ]
  in
  let rows =
    pmap ~jobs
      (fun (wname, v, (label, conservative)) ->
        log (Printf.sprintf "%s/%s (%s) ..." wname (E.variant_name v) label);
        let wl = Workload.find wname in
        let r = E.run (E.setup ~machine ~conservative ~workload:wl ~variant:v ()) in
        [
          Printf.sprintf "%s/%s" wname (E.variant_name v);
          label;
          Report.ns r.E.r_elapsed;
          Report.count r.E.r_app_stats.VS.releases_requested;
          Report.count r.E.r_app_stats.VS.rescued_releaser;
        ])
      specs
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Ablation: aggressive (paper) vs conservative (section 2.3.2) \
           release insertion"
        ~header:[ "run"; "insertion"; "elapsed"; "release reqs"; "rescued" ]
        ~rows fmt ())

let ablation_rescue ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let no_rescue =
    {
      machine with
      Machine.m_config =
        {
          machine.Machine.m_config with
          Memhog_vm.Config.rescue_from_free_list = false;
        };
      m_name = machine.Machine.m_name ^ " - rescue disabled";
    }
  in
  let specs =
    List.concat_map
      (fun wname ->
        List.map
          (fun lm -> (wname, lm))
          [ ("rescue on", machine); ("rescue off", no_rescue) ])
      [ "MATVEC"; "MGRID" ]
  in
  let rows =
    pmap ~jobs
      (fun (wname, (label, m)) ->
        log (Printf.sprintf "%s/R (%s) ..." wname label);
        let wl = Workload.find wname in
        let r = E.run (E.setup ~machine:m ~workload:wl ~variant:E.R ()) in
        [
          Printf.sprintf "%s/R" wname;
          label;
          Report.ns r.E.r_elapsed;
          Report.count
            (r.E.r_app_stats.VS.rescued_daemon
            + r.E.r_app_stats.VS.rescued_releaser);
          Report.count r.E.r_app_stats.VS.hard_faults;
        ])
      specs
  in
  render (fun fmt ->
      Report.table
        ~title:"Ablation: rescuing freed pages from the free-list tail"
        ~header:[ "run"; "rescue"; "elapsed"; "rescued"; "hard faults" ]
        ~rows fmt ())

let ablation_drop ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let no_drop =
    {
      machine with
      Machine.m_config =
        {
          machine.Machine.m_config with
          Memhog_vm.Config.drop_prefetch_when_low = false;
        };
      m_name = machine.Machine.m_name ^ " - prefetch drop disabled";
    }
  in
  let wl = Workload.find "MATVEC" in
  let sleep = Time_ns.sec 5 in
  let rows =
    pmap ~jobs
      (fun (label, m) ->
        log (Printf.sprintf "MATVEC/P (%s) ..." label);
        let r =
          E.run
            (E.setup ~machine:m ~interactive_sleep:sleep
               ~min_sim_time:(sweep_min_time ~sleep) ~workload:wl ~variant:E.P ())
        in
        [
          label;
          Report.ns r.E.r_elapsed;
          Report.count r.E.r_app_stats.VS.prefetches_dropped;
          (match r.E.r_interactive with
          | Some i -> Report.ns_opt i.E.is_avg_response
          | None -> "-");
        ])
      [ ("drop when low (paper)", machine); ("block for memory", no_drop) ]
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Ablation: discarding prefetches when memory is exhausted \
           (section 3.1.2)"
        ~header:
          [ "policy"; "MATVEC P elapsed"; "dropped"; "interactive response" ]
        ~rows fmt ())

let ablation_tlb ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let fills =
    {
      machine with
      Machine.m_config =
        { machine.Machine.m_config with Memhog_vm.Config.prefetch_fills_tlb = true };
      m_name = machine.Machine.m_name ^ " + prefetch fills TLB";
    }
  in
  let specs =
    List.concat_map
      (fun wname ->
        List.map
          (fun lm -> (wname, lm))
          [ ("no TLB entry (paper)", machine); ("fills TLB", fills) ])
      [ "MATVEC"; "CGM" ]
  in
  let rows =
    pmap ~jobs
      (fun (wname, (label, m)) ->
        log (Printf.sprintf "%s/P (%s) ..." wname label);
        let wl = Workload.find wname in
        let r = E.run (E.setup ~machine:m ~workload:wl ~variant:E.P ()) in
        [
          Printf.sprintf "%s/P" wname;
          label;
          Report.ns (r.E.r_elapsed / r.E.r_iterations);
          Report.count r.E.r_app_tlb_misses;
        ])
      specs
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Ablation: prefetched pages and the TLB (section 3.1.2: completed \
           prefetches are not validated and make no TLB entry)"
        ~header:[ "run"; "policy"; "per-pass"; "TLB misses" ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)
(* ------------------------------------------------------------------ *)

let ext_freemem ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let wl = Workload.find "MATVEC" in
  let sleep = Time_ns.sec 5 in
  let runs =
    pmap ~jobs
      (fun v ->
        log (Printf.sprintf "MATVEC/%s ..." (E.variant_name v));
        let r =
          E.run
            (E.setup ~machine ~interactive_sleep:sleep
               ~min_sim_time:(sweep_min_time ~sleep) ~workload:wl ~variant:v ())
        in
        (v, r))
      E.all_variants
  in
  render (fun fmt ->
      Format.fprintf fmt
        "Extension: free physical memory over time (MATVEC + interactive, \
         %d-frame machine)@,@,"
        machine.Machine.m_config.Memhog_vm.Config.total_frames;
      List.iter
        (fun (v, (r : E.result)) ->
          Format.fprintf fmt "%s:@," (E.variant_name v);
          List.iter
            (fun s ->
              Format.fprintf fmt "  %a@," Memhog_sim.Telemetry.pp_summary s)
            (Memhog_sim.Telemetry.summaries r.E.r_telemetry);
          Format.fprintf fmt "@,")
        runs)

let ext_two_hogs ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  let log = locked_log log in
  let module Os = Memhog_vm.Os in
  let module App = Memhog_exec.App in
  let run_pair variant =
    log
      (Printf.sprintf "MATVEC + EMBAR, both %s ..." (Pir.variant_letter variant));
    let engine =
      Memhog_sim.Engine.create ~max_time:(Time_ns.sec 14400) ()
    in
    let os =
      Os.create ~swap_config:machine.Machine.m_swap
        ~config:machine.Machine.m_config ~engine ()
    in
    let build name =
      let wl = Workload.find name in
      let prog_ir, params =
        wl.Workload.w_make
          ~mem_bytes:(Machine.mem_bytes machine)
          ~page_bytes:machine.Machine.m_config.Memhog_vm.Config.page_bytes
      in
      let prog =
        Compile.compile ~target:(Machine.compiler_target machine) ~variant
          prog_ir
      in
      App.create ~seed:machine.Machine.m_seed ~os ~params prog
    in
    let a = build "MATVEC" and b = build "EMBAR" in
    let done_a = ref 0 and done_b = ref 0 in
    let finished = ref 0 in
    let spawn_app app done_ =
      ignore
        (Memhog_sim.Engine.spawn engine ~name:"hog" (fun () ->
             App.run app ~iterations:2;
             done_ := Memhog_sim.Engine.now ();
             incr finished;
             if !finished = 2 then Memhog_sim.Engine.stop ()))
    in
    spawn_app a done_a;
    spawn_app b done_b;
    Memhog_sim.Engine.run engine;
    (!done_a, !done_b, (Os.global_stats os).VS.daemon_pages_stolen)
  in
  let (o_a, o_b, o_stolen), (r_a, r_b, r_stolen) =
    match pmap ~jobs run_pair [ Pir.V_original; Pir.V_release ] with
    | [ o; r ] -> (o, r)
    | _ -> assert false
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Extension: two out-of-core programs sharing the machine (2 passes \
           each)"
        ~header:[ "configuration"; "MATVEC done"; "EMBAR done"; "daemon stole" ]
        ~rows:
          [
            [
              "both original";
              Report.ns o_a;
              Report.ns o_b;
              Report.count o_stolen;
            ];
            [
              "both prefetch+release";
              Report.ns r_a;
              Report.ns r_b;
              Report.count r_stolen;
            ];
          ]
        fmt ())

let ext_reactive ?(machine = Machine.paper) ?(jobs = 1) ?(log = no_log) () =
  (* BUK is the benchmark where application knowledge beats the clock: the
     default policy evicts pages of the randomly-accessed bucket array,
     which the application knows it will need again. *)
  let log = locked_log log in
  let wl = Workload.find "BUK" in
  let sleep = Time_ns.sec 5 in
  let one (label, variant, reactive) =
    log (Printf.sprintf "BUK %s ..." label);
    let r =
      E.run
        (E.setup ~machine ~interactive_sleep:sleep
           ~min_sim_time:(sweep_min_time ~sleep) ~workload:wl ~variant ~reactive
           ())
    in
    [
      label;
      Report.ns (r.E.r_elapsed / r.E.r_iterations);
      Report.count (r.E.r_app_stats.VS.hard_faults / r.E.r_iterations);
      Report.count r.E.r_global.VS.daemon_pages_stolen;
      (match r.E.r_interactive with
      | Some i -> Report.ns_opt i.E.is_avg_response
      | None -> "-");
    ]
  in
  let rows =
    pmap ~jobs one
      [
        ("prefetch only (P)", E.P, false);
        ("reactive eviction (sec. 2.2)", E.R, true);
        ("pro-active release (R)", E.R, false);
      ]
  in
  render (fun fmt ->
      Report.table
        ~title:
          "Extension: reactive (application-chosen eviction on demand) vs \
           pro-active releasing — section 2.2's argument.  BUK + interactive \
           task, 5 s sleep."
        ~header:
          [ "scheme"; "hog per-pass"; "hog faults/pass"; "daemon stole"; "interactive" ]
        ~rows fmt ())

(* ------------------------------------------------------------------ *)
(* Serving extension (ROADMAP item 5)                                  *)
(* ------------------------------------------------------------------ *)

(* Figures 1/10 retold for an open-loop server: the hog's releases are what
   keep the server's tail latency flat as offered load rises. *)
let serve_tail (t : Serve.t) =
  let module Sv = Memhog_exec.Server in
  let rates =
    List.sort_uniq compare
      (List.map (fun (c, _) -> c.Serve.sc_rate) t.Serve.s_cells)
  in
  let variants =
    List.filter
      (fun v ->
        List.exists (fun (c, _) -> c.Serve.sc_variant = v) t.Serve.s_cells)
      E.all_variants
  in
  let lookup rate v =
    List.find_opt
      (fun (c, _) -> c.Serve.sc_rate = rate && c.Serve.sc_variant = v)
      t.Serve.s_cells
    |> Option.map (fun (_, r) -> Serve.serving_exn r)
  in
  let p999 s = Histogram.percentile s.Sv.sm_hist 99.9 in
  let rows =
    List.map
      (fun rate ->
        let per_variant =
          List.concat_map
            (fun v ->
              match lookup rate v with
              | Some s -> [ Report.ns (p999 s); Report.pct (Sv.slo_attainment s) ]
              | None -> [ "-"; "-" ])
            variants
        in
        let spread =
          match (lookup rate E.O, lookup rate E.B) with
          | Some o, Some b when p999 b > 0 ->
              Report.ratio (float_of_int (p999 o) /. float_of_int (p999 b))
          | _ -> "-"
        in
        (Printf.sprintf "%s rps" (Report.f1 rate) :: per_variant) @ [ spread ])
      rates
  in
  render (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf
             "Serving tail vs offered load: %s hog, SLO %s from arrival"
             t.Serve.s_workload
             (Time_ns.to_string t.Serve.s_slo))
        ~header:
          ("offered"
          :: List.concat_map
               (fun v ->
                 let n = E.variant_name v in
                 [ n ^ " p999"; n ^ " SLO" ])
               variants
          @ [ "O/B p999" ])
        ~rows fmt ())

(* The p999 ratio says the un-released hog hurts the tail; the blame shares
   say how: under O the tail's time concentrates in queue and value-stall,
   under B it stays in compute.  Shares are over the tail bands (p99 and
   beyond) of each cell's deterministic span sample. *)
let serve_blame (t : Serve.t) =
  let rows =
    List.map
      (fun (c, r) ->
        let b = Serve.blame_exn r in
        let tail =
          List.filter
            (fun (bd : Reqtrace.band) -> bd.Reqtrace.bd_label <> "body")
            b.Reqtrace.su_bands
        in
        let sum f = List.fold_left (fun a bd -> a + f bd) 0 tail in
        let resp = sum (fun bd -> bd.Reqtrace.bd_response) in
        let share v =
          if resp = 0 then "-"
          else Report.pct (float_of_int v /. float_of_int resp)
        in
        [
          Printf.sprintf "%s/%s" t.Serve.s_workload
            (E.variant_name c.Serve.sc_variant);
          Printf.sprintf "%s rps" (Report.f1 c.Serve.sc_rate);
          Report.count (sum (fun bd -> bd.Reqtrace.bd_count));
          share (sum (fun bd -> bd.Reqtrace.bd_queue));
          share (sum (fun bd -> bd.Reqtrace.bd_index));
          share (sum (fun bd -> bd.Reqtrace.bd_value));
          share (sum (fun bd -> bd.Reqtrace.bd_cpu));
          share (sum (fun bd -> bd.Reqtrace.bd_compute));
        ])
      t.Serve.s_cells
  in
  render (fun fmt ->
      Report.table
        ~title:
          (Printf.sprintf
             "Tail blame shares (p99 and beyond): %s hog, sampled requests"
             t.Serve.s_workload)
        ~header:
          [
            "hog"; "offered"; "tail reqs"; "queue"; "index"; "value";
            "cpu wait"; "compute";
          ]
        ~rows fmt ())
