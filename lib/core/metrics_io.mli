(** Serialization, comparison and rendering of {!Metrics}.

    The JSON writer is canonical: fixed key order, fixed number formatting,
    no locale or wall-clock dependence — two identical {!Metrics.t} values
    produce byte-identical files, which is what lets the CI regression gate
    run [compare --tolerance 0] against a committed baseline.

    The parser keeps each number's raw lexeme, so a zero-tolerance compare
    can demand textual equality rather than float equality. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float * string  (** parsed value and the raw lexeme *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val num_of_int : int -> json
val num_of_float : float -> json

val escape_string : string -> string
(** JSON string-body escaping (no surrounding quotes): {!Json_str.escape},
    the single escaper shared by this writer and {!Trace_export}. *)

val to_string : json -> string
(** Canonical rendering: 2-space indent, keys in the order given. *)

val parse : string -> (json, string) result
(** Strict JSON parser (objects, arrays, strings with escapes, numbers,
    [true]/[false]/[null]); the error string includes an offset. *)

(** {1 Metrics files} *)

val schema_version : int

val metrics_json : Metrics.t -> json
(** Stable-key document: [{"schema": "memhog-metrics", "schema_version": N,
    "label": ..., "cells": [...], "totals": {...}}]. *)

val write_file : path:string -> Metrics.t -> unit

val load_file : path:string -> (json, string) result
(** Parse a metrics file; fails when the file is unreadable, malformed, or
    does not carry the expected [schema]/[schema_version]. *)

(** {1 Comparison} *)

type diff = {
  d_path : string;     (** full dotted path, e.g. ["cells[3].fault_hist.p99_ns"] *)
  d_expected : string; (** baseline value (raw lexeme for numbers) *)
  d_got : string;      (** current value *)
  d_reason : string;   (** why it was flagged, including the tolerance *)
}

val compare_json : tolerance:float -> json -> json -> diff list
(** Structural comparison.  Non-numeric leaves and object/array shape must
    match exactly.  Numbers: with [tolerance = 0] the raw lexemes must be
    byte-identical; otherwise the relative difference
    |a-b| / max(|a|,|b|) must not exceed [tolerance] percent. *)

val pp_diffs : ?limit:int -> Format.formatter -> diff list -> unit
(** Regression-gate failure report: for the first [limit] (default 8)
    mismatches print the full JSON path, the expected and observed values,
    and the reason (with the tolerance that was applied); any remainder is
    summarised as a count.  Assumes the formatter is inside a vertical
    box. *)

(** {1 Rendering} *)

val render : json -> (string, string) result
(** Human-readable tables ({!Report.table}) for a parsed metrics document:
    per-cell response/fault percentiles, Figure 7 breakdowns, release
    accuracy and telemetry ranges. *)
