open Memhog_sim
module Os = Memhog_vm.Os
module As = Memhog_vm.Address_space
module Ir = Memhog_compiler.Ir
module Pir = Memhog_compiler.Pir
module Runtime = Memhog_runtime.Runtime

type stream = {
  sr_rng : Rng.t;
  mutable sr_pos : int;          (* next touch position *)
  sr_ring : int array;           (* pre-drawn page offsets *)
  mutable sr_drawn : int;        (* positions drawn so far *)
}

type t = {
  os : Os.t;
  asp : As.t;
  rt : Runtime.t;
  prog : Pir.prog;
  env : Ir.env;
  segs : (string, As.segment * int (* elem bytes *)) Hashtbl.t;
  streams : (int, stream) Hashtbl.t;
  seed : int;
  page_bytes : int;
  mutable touches : int;
}

let asp t = t.asp
let runtime t = t.rt
let env t = t.env
let touched_pages t = t.touches

let segment_of_array t name =
  match Hashtbl.find_opt t.segs name with
  | Some (seg, _) -> seg
  | None -> invalid_arg (Printf.sprintf "App: unknown array %s" name)

let create ?(seed = 17) ?(runtime_policy = Runtime.Aggressive) ?release_target
    ?rt_threads ?governor ~os ~params prog =
  let asp = Os.new_process os ~name:prog.Pir.px_name in
  let env = Ir.env_of_list params in
  let segs = Hashtbl.create 8 in
  List.iter
    (fun (a : Ir.array_decl) ->
      let elems = Ir.eval_bound env a.Ir.a_size_elems in
      let bytes = elems * a.Ir.a_elem_bytes in
      let seg =
        Os.map_segment os asp ~name:a.Ir.a_name ~bytes ~on_swap:a.Ir.a_on_swap
      in
      Os.attach_paging_directed os asp seg;
      Hashtbl.replace segs a.Ir.a_name (seg, a.Ir.a_elem_bytes))
    prog.Pir.px_arrays;
  let rt =
    Runtime.create ?release_target ?nthreads:rt_threads ?governor ~os ~asp
      ~policy:runtime_policy ()
  in
  {
    os;
    asp;
    rt;
    prog;
    env;
    segs;
    streams = Hashtbl.create 8;
    seed;
    page_bytes = (Os.config os).Memhog_vm.Config.page_bytes;
    touches = 0;
  }

(* ------------------------------------------------------------------ *)
(* Page expansion                                                      *)
(* ------------------------------------------------------------------ *)

(* Enumerate the distinct pages covered by [count] accesses starting at
   element [first] with [stride] elements between accesses.  Pages are
   reported in access order; out-of-bounds accesses are clamped away. *)
let iter_pages t array ~first ~count ~stride f =
  if count > 0 then begin
    let seg, elem_bytes = Hashtbl.find t.segs array in
    let seg_elems = seg.As.npages * t.page_bytes / elem_bytes in
    let page_of e = e * elem_bytes / t.page_bytes in
    let clamp e = max 0 (min (seg_elems - 1) e) in
    if stride = 0 then f (seg.As.base_vpn + page_of (clamp first))
    else if abs stride * elem_bytes < t.page_bytes then begin
      (* dense: the accesses sweep a contiguous range; report each page *)
      let last = first + ((count - 1) * stride) in
      let lo = clamp (min first last) and hi = clamp (max first last) in
      let plo = page_of lo and phi = page_of hi in
      if stride > 0 then
        for p = plo to phi do
          f (seg.As.base_vpn + p)
        done
      else
        for p = phi downto plo do
          f (seg.As.base_vpn + p)
        done
    end
    else begin
      (* sparse: each access may land on its own page *)
      let prev = ref min_int in
      for k = 0 to count - 1 do
        let e = first + (k * stride) in
        if e >= 0 && e < seg_elems then begin
          let p = page_of e in
          if p <> !prev then begin
            prev := p;
            f (seg.As.base_vpn + p)
          end
        end
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Indirect streams                                                    *)
(* ------------------------------------------------------------------ *)

let ring_size = 1024

let stream_for t id =
  match Hashtbl.find_opt t.streams id with
  | Some s -> s
  | None ->
      let s =
        {
          sr_rng = Rng.create ~seed:(t.seed lxor (id * 0x9E3779B9));
          sr_pos = 0;
          sr_ring = Array.make ring_size 0;
          sr_drawn = 0;
        }
      in
      Hashtbl.replace t.streams id s;
      s

(* Page offset (within the array's segment) touched at stream position
   [pos]; draws lazily, in order, so the sequence is deterministic. *)
let stream_page s ~npages pos =
  if pos - s.sr_drawn >= ring_size then
    invalid_arg "App: indirect lookahead exceeds ring size";
  while s.sr_drawn <= pos do
    s.sr_ring.(s.sr_drawn mod ring_size) <- Rng.int s.sr_rng npages;
    s.sr_drawn <- s.sr_drawn + 1
  done;
  s.sr_ring.(pos mod ring_size)

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)
(* ------------------------------------------------------------------ *)

let compute t ns =
  if ns > 0 then begin
    let cpus = Os.cpus t.os in
    Semaphore.acquire cpus;
    Engine.delay ~cat:Account.User ns;
    Semaphore.release cpus
  end

let rec exec t (stmt : Pir.pstmt) =
  match stmt with
  | Pir.P_seq ss -> List.iter (exec t) ss
  | Pir.P_loop { var; lo; hi; step; body } ->
      let l = lo t.env and h = hi t.env in
      let v = ref l in
      while !v < h do
        Hashtbl.replace t.env var !v;
        exec t body;
        v := !v + step
      done;
      Hashtbl.remove t.env var
  | Pir.P_touch { array; first; count; stride; write } ->
      iter_pages t array ~first:(first t.env) ~count:(count t.env)
        ~stride:(stride t.env) (fun vpn ->
          t.touches <- t.touches + 1;
          ignore (Os.touch t.os t.asp ~vpn ~write))
  | Pir.P_compute { ns } -> compute t (ns t.env)
  | Pir.P_prefetch d ->
      iter_pages t d.Pir.d_array ~first:(d.Pir.d_first t.env)
        ~count:(d.Pir.d_count t.env) ~stride:(d.Pir.d_stride t.env) (fun vpn ->
          Runtime.prefetch_page t.rt ~vpn ~site:d.Pir.d_tag)
  | Pir.P_release { dir = d; priority } ->
      iter_pages t d.Pir.d_array ~first:(d.Pir.d_first t.env)
        ~count:(d.Pir.d_count t.env) ~stride:(d.Pir.d_stride t.env) (fun vpn ->
          Runtime.release_page t.rt ~vpn ~priority ~tag:d.Pir.d_tag)
  | Pir.P_indirect { array; count; write; lookahead; prefetch; stream } ->
      let seg, _ = Hashtbl.find t.segs array in
      let s = stream_for t stream in
      let n = count t.env in
      for _ = 1 to n do
        let pos = s.sr_pos in
        s.sr_pos <- pos + 1;
        if prefetch then begin
          let ahead = stream_page s ~npages:seg.As.npages (pos + lookahead) in
          Runtime.prefetch_page t.rt ~vpn:(seg.As.base_vpn + ahead)
        end;
        let page = stream_page s ~npages:seg.As.npages pos in
        t.touches <- t.touches + 1;
        ignore (Os.touch t.os t.asp ~vpn:(seg.As.base_vpn + page) ~write)
      done
  | Pir.P_call { proc; binds } ->
      let values = List.map (fun (p, rt) -> (p, rt t.env)) binds in
      let saved =
        List.map (fun (p, _) -> (p, Hashtbl.find_opt t.env p)) values
      in
      List.iter (fun (p, v) -> Hashtbl.replace t.env p v) values;
      exec t (Pir.find_proc t.prog proc);
      List.iter
        (fun (p, old) ->
          match old with
          | Some v -> Hashtbl.replace t.env p v
          | None -> Hashtbl.remove t.env p)
        saved

let emit_phase t ev =
  let trace = Os.trace t.os in
  if Trace.enabled trace then
    Trace.emit trace
      ~time:(Engine.now_of (Os.engine t.os))
      ~stream:t.asp.As.pid ev

let exec_main t =
  Runtime.start t.rt;
  emit_phase t (Trace.Phase_begin { name = "main" });
  exec t t.prog.Pir.px_main;
  emit_phase t (Trace.Phase_end { name = "main" })

let finish t =
  emit_phase t (Trace.Phase_begin { name = "drain" });
  Runtime.drain t.rt;
  (* let the helper threads and the releaser daemon consume the final
     requests before the caller declares the run over *)
  Engine.delay ~cat:Account.Sleep (Time_ns.ms 20);
  emit_phase t (Trace.Phase_end { name = "drain" })

let run t ~iterations =
  for _ = 1 to iterations do
    exec_main t
  done;
  finish t

let spawn t ~iterations ~on_done =
  Engine.spawn (Os.engine t.os) ~name:t.prog.Pir.px_name (fun () ->
      run t ~iterations;
      on_done ())
