(** Open-loop key-value server: the serving-workload driver.

    A server process owns two on-swap segments — an index array (8 bytes
    per key) and a values region several times larger than physical memory
    — and serves requests whose access path is the indirect [a\[b\[i\]\]]
    pattern: read the key's index page, then the value page it points at.
    The index/value pages can be prefetched as soon as a request arrives
    (the compiler's contribution for indirect streams), but the values
    region is never released — the paper's worst case for
    compiler-directed memory management.

    Load is {e open-loop}: a generator fiber produces Poisson arrivals at a
    configured offered rate with Zipfian key popularity, timestamps each
    request {e at arrival}, and enqueues it on an unbounded FIFO.  The
    server fiber dequeues, touches the pages, burns the per-request compute
    cost, and records [completion - arrival] — so queueing delay that
    builds up while the server stalls on hard faults is charged to the
    response, as tail-latency SLOs require.  The generator itself never
    touches paged memory and so never throttles under memory pressure.

    All randomness comes from private {!Memhog_sim.Rng} streams seeded
    from [sv_seed]; a cell's histogram is a pure function of its
    configuration, byte-deterministic at any [--jobs]. *)

type cfg = {
  sv_nkeys : int;           (** distinct keys (Zipf ranks) *)
  sv_theta : float;         (** Zipf exponent of key popularity *)
  sv_index_bytes : int;     (** the b\[\] array *)
  sv_values_bytes : int;    (** the a\[\] region *)
  sv_rate_rps : float;      (** offered load, requests per second *)
  sv_duration : Memhog_sim.Time_ns.t;  (** arrival-window length *)
  sv_warmup : int;          (** completed requests skipped before recording *)
  sv_work_ns : Memhog_sim.Time_ns.t;   (** per-request compute cost *)
  sv_slo : Memhog_sim.Time_ns.t;       (** per-request response target *)
  sv_prefetch : bool;       (** issue arrival-time index/value prefetches *)
  sv_seed : int;
  sv_mark : Memhog_sim.Time_ns.t option;
      (** [Some off]: additionally tally SLO attainment over requests
          arriving at or after [off] past the window start — the
          "after the fault window" recovery number of the chaos
          scenarios.  Keyed on arrival time, so residual queueing left
          behind by the fault still counts against recovery. *)
}

type t

val create : os:Memhog_vm.Os.t -> cfg:cfg -> unit -> t
(** Map the segments and build the sampler tables.
    @raise Invalid_argument when the offered rate is not positive. *)

val spawn : ?on_done:(unit -> unit) -> t -> Memhog_sim.Engine.proc
(** Start the generator and server fibers.  [on_done] runs (in the server
    fiber) once the arrival window has closed and the queue has drained —
    the natural place to stop the engine. *)

val asp : t -> Memhog_vm.Address_space.t
val account : t -> Memhog_sim.Account.t option
val finished : t -> bool

val queue_depth : t -> int
(** Current arrival-queue backlog — sampled periodically into the trace
    as a [Queue_depth] counter event. *)

val arrived : t -> int
val completed : t -> int

val recorded : t -> int
(** Responses recorded so far (completions past the warm-up skip). *)

val slo_ok : t -> int
(** Of the recorded responses, those within the SLO.  Together with
    {!recorded} this gives a running SLO-miss counter the telemetry
    scraper reads every cadence — {!summary} allocates and is meant for
    close-out, not per-scrape sampling. *)

val reqtrace : t -> Memhog_sim.Reqtrace.t
(** The per-request blame layer this server drives (the kernel's, from
    {!Memhog_vm.Os.reqtrace}; {!Memhog_sim.Reqtrace.null} when blame was
    not requested).  Every served request becomes a span whose queue /
    index-stall / value-stall / CPU-wait / compute components sum exactly
    to its recorded response time. *)

val blame : t -> Memhog_sim.Reqtrace.summary
(** {!Memhog_sim.Reqtrace.summarize} over this server's spans. *)

type summary = {
  sm_offered_rps : float;
  sm_duration : Memhog_sim.Time_ns.t;
  sm_slo : Memhog_sim.Time_ns.t;
  sm_arrived : int;       (** requests generated *)
  sm_completed : int;     (** requests served *)
  sm_recorded : int;      (** served minus warm-up skips *)
  sm_max_queue : int;     (** deepest arrival-queue backlog observed *)
  sm_slo_ok : int;        (** recorded responses within [sm_slo] *)
  sm_mark : Memhog_sim.Time_ns.t option;   (** [sv_mark], echoed *)
  sm_post_recorded : int; (** recorded responses that arrived post-mark *)
  sm_post_slo_ok : int;   (** of those, within [sm_slo] *)
  sm_hist : Memhog_sim.Histogram.t;
      (** response times (arrival to completion), warm-up skipped; feeds
          p50/p99/p999 *)
}

val summary : t -> summary

val slo_attainment : summary -> float
(** Fraction of recorded responses within the SLO.  0.0 when none were
    recorded: a starved cell attained nothing, and reporting a vacuous
    1.0 would hide it. *)

val post_attainment : summary -> float
(** SLO attainment over the post-mark requests only (0.0 when no mark was
    set or nothing arrived after it) — the recovery figure a chaos
    scenario asserts on after its fault window closes. *)
