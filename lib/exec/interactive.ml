open Memhog_sim
module Os = Memhog_vm.Os
module As = Memhog_vm.Address_space
module Vm_stats = Memhog_vm.Vm_stats

type sweep = {
  sw_index : int;
  sw_response : Time_ns.t;
  sw_hard_faults : int;
  sw_soft_faults : int;
}

type t = {
  os : Os.t;
  it_asp : As.t;
  seg : As.segment;
  sleep : Time_ns.t;
  work_per_page_ns : Time_ns.t;
  mutable sweep_list : sweep list; (* newest first *)
  mutable proc : Engine.proc option; (* set by [spawn] *)
}

let create ?(data_bytes = 1024 * 1024) ?(work_per_page_ns = Time_ns.us 50) ~os
    ~sleep () =
  let it_asp = Os.new_process os ~name:"interactive" in
  let seg =
    Os.map_segment os it_asp ~name:"interactive-data" ~bytes:data_bytes
      ~on_swap:true
  in
  { os; it_asp; seg; sleep; work_per_page_ns; sweep_list = []; proc = None }

let asp t = t.it_asp
let sweeps t = List.rev t.sweep_list
let account t = Option.map (fun p -> p.Engine.account) t.proc

let alone_response t = t.seg.As.npages * t.work_per_page_ns

let emit_phase t ev =
  let trace = Os.trace t.os in
  if Trace.enabled trace then
    Trace.emit trace
      ~time:(Engine.now_of (Os.engine t.os))
      ~stream:t.it_asp.As.pid ev

let loop t () =
  let index = ref 0 in
  while true do
    let t0 = Engine.now () in
    let hard0 = t.it_asp.As.stats.Vm_stats.hard_faults in
    let soft0 = t.it_asp.As.stats.Vm_stats.soft_faults in
    emit_phase t (Trace.Phase_begin { name = Printf.sprintf "sweep-%d" !index });
    for p = 0 to t.seg.As.npages - 1 do
      ignore (Os.touch t.os t.it_asp ~vpn:(t.seg.As.base_vpn + p) ~write:false);
      Engine.delay ~cat:Account.User t.work_per_page_ns
    done;
    emit_phase t (Trace.Phase_end { name = Printf.sprintf "sweep-%d" !index });
    let sweep =
      {
        sw_index = !index;
        sw_response = Engine.now () - t0;
        sw_hard_faults = t.it_asp.As.stats.Vm_stats.hard_faults - hard0;
        sw_soft_faults = t.it_asp.As.stats.Vm_stats.soft_faults - soft0;
      }
    in
    t.sweep_list <- sweep :: t.sweep_list;
    incr index;
    Engine.delay ~cat:Account.Sleep t.sleep
  done

let spawn t =
  let p = Engine.spawn (Os.engine t.os) ~name:"interactive" (loop t) in
  t.proc <- Some p;
  p

let stats_over ?(skip = 1) t f =
  let usable = List.filter (fun s -> s.sw_index >= skip) (sweeps t) in
  match usable with
  | [] -> None
  | l ->
      let sum = List.fold_left (fun acc s -> acc +. f s) 0.0 l in
      Some (sum /. float_of_int (List.length l))

let avg_response ?skip t =
  stats_over ?skip t (fun s -> float_of_int s.sw_response)
  |> Option.map (fun avg -> int_of_float (Float.round avg))

let avg_hard_faults ?skip t = stats_over ?skip t (fun s -> float_of_int s.sw_hard_faults)

let response_histogram ?(skip = 1) t =
  let h = Histogram.create () in
  List.iter
    (fun s -> if s.sw_index >= skip then Histogram.record h s.sw_response)
    (sweeps t);
  h
