open Memhog_sim
module Os = Memhog_vm.Os
module As = Memhog_vm.Address_space
module Runtime = Memhog_runtime.Runtime

type cfg = {
  sv_nkeys : int;
  sv_theta : float;
  sv_index_bytes : int;
  sv_values_bytes : int;
  sv_rate_rps : float;
  sv_duration : Time_ns.t;
  sv_warmup : int;
  sv_work_ns : Time_ns.t;
  sv_slo : Time_ns.t;
  sv_prefetch : bool;
  sv_seed : int;
  sv_mark : Time_ns.t option;
}

type request = Req of { arrival : Time_ns.t; key : int } | Stop

type t = {
  os : Os.t;
  asp : As.t;
  rt : Runtime.t;
  reqtrace : Reqtrace.t;
  index_seg : As.segment;
  values_seg : As.segment;
  cfg : cfg;
  zipf : Rng.zipf;
  key_rng : Rng.t;
  arrival_rng : Rng.t;
  queue : request Mailbox.t;
  hist : Histogram.t;
  page_bytes : int;
  mutable arrived : int;
  mutable completed : int;
  mutable slo_ok : int;
  mutable post_recorded : int;
  mutable post_slo_ok : int;
  mutable window_start : Time_ns.t;
  mutable max_queue : int;
  mutable done_ : bool;
  mutable proc : Engine.proc option;
}

let create ~os ~cfg () =
  if not (cfg.sv_rate_rps > 0.0) then
    invalid_arg "Server.create: offered rate must be positive";
  let asp = Os.new_process os ~name:"kvserve" in
  let index_seg =
    Os.map_segment os asp ~name:"kv-index" ~bytes:cfg.sv_index_bytes
      ~on_swap:true
  in
  let values_seg =
    Os.map_segment os asp ~name:"kv-values" ~bytes:cfg.sv_values_bytes
      ~on_swap:true
  in
  Os.attach_paging_directed os asp index_seg;
  Os.attach_paging_directed os asp values_seg;
  (* The runtime layer is used for its asynchronous prefetch path only; the
     indirect values array is never released (the compiler cannot reason
     about data-dependent reuse), which is exactly the paper's worst case. *)
  let rt = Runtime.create ~os ~asp ~policy:Runtime.Aggressive () in
  let base = Rng.create ~seed:cfg.sv_seed in
  let arrival_rng = Rng.split base in
  let key_rng = Rng.split base in
  {
    os;
    asp;
    rt;
    reqtrace = Os.reqtrace os;
    index_seg;
    values_seg;
    cfg;
    zipf = Rng.zipf_create ~n:cfg.sv_nkeys ~theta:cfg.sv_theta;
    key_rng;
    arrival_rng;
    queue = Mailbox.create ~name:"kv-requests" ();
    hist = Histogram.create ();
    page_bytes = (Os.config os).Memhog_vm.Config.page_bytes;
    arrived = 0;
    completed = 0;
    slo_ok = 0;
    post_recorded = 0;
    post_slo_ok = 0;
    window_start = 0;
    max_queue = 0;
    done_ = false;
    proc = None;
  }

let asp t = t.asp
let account t = Option.map (fun p -> p.Engine.account) t.proc
let finished t = t.done_
let reqtrace t = t.reqtrace
let queue_depth t = Mailbox.length t.queue
let arrived t = t.arrived
let completed t = t.completed
let recorded t = Histogram.count t.hist
let slo_ok t = t.slo_ok

let index_vpn t key = t.index_seg.As.base_vpn + (key * 8 / t.page_bytes)

(* Values are laid out in popularity order — the natural layout of a
   log-structured store after compaction, where hot objects cluster.  Page
   popularity then inherits the key-level Zipf skew, giving the server a
   resident hot set whose fate under memory pressure is the experiment.
   (Hashing keys to pages would flatten page popularity and make every
   request disk-bound, measuring the disk instead of memory management.) *)
let value_vpn t key =
  let keys_per_page = max 1 (t.cfg.sv_nkeys / t.values_seg.As.npages) in
  t.values_seg.As.base_vpn + (key / keys_per_page mod t.values_seg.As.npages)

(* The arrival process: open-loop Poisson.  It must never block on memory —
   a generator that faults would throttle the offered load and hide the
   very queueing delay we are measuring — so it only draws, timestamps,
   enqueues, and issues (non-blocking, helper-thread) prefetches. *)
let arrivals t () =
  t.window_start <- Engine.now ();
  let t_end = Engine.now () + t.cfg.sv_duration in
  let mean_gap_ns = 1e9 /. t.cfg.sv_rate_rps in
  let continue = ref true in
  while !continue do
    let gap =
      int_of_float (Float.round (Rng.exponential t.arrival_rng ~mean:mean_gap_ns))
    in
    Engine.delay ~cat:Account.Sleep gap;
    if Engine.now () >= t_end then continue := false
    else begin
      let key = Rng.zipf t.key_rng t.zipf in
      t.arrived <- t.arrived + 1;
      if t.cfg.sv_prefetch then begin
        (* The run-ahead slice for a[b[i]]: prefetch both the index page
           and the (data-dependent) value page as soon as the request is
           visible, overlapping the fetches with each other and with the
           queue's residence time.  These prefetches have a deadline — the
           request is already queued behind them — so they ride the disk's
           demand class, unlike the hog's capacity-driven sweeps. *)
        Runtime.prefetch_page t.rt ~urgent:true ~vpn:(index_vpn t key);
        Runtime.prefetch_page t.rt ~urgent:true ~vpn:(value_vpn t key);
        if Reqtrace.enabled t.reqtrace then begin
          (* Stamp the issue times so the serving fiber can settle the
             prefetch race (hidden vs lost, slack) at touch time. *)
          let now = Engine.now () in
          Reqtrace.note_prefetch_issued t.reqtrace ~vpn:(index_vpn t key) ~now;
          Reqtrace.note_prefetch_issued t.reqtrace ~vpn:(value_vpn t key) ~now
        end
      end;
      Mailbox.send t.queue (Req { arrival = Engine.now (); key });
      let depth = Mailbox.length t.queue in
      if depth > t.max_queue then t.max_queue <- depth
    end
  done;
  Mailbox.send t.queue Stop

let touch_outcome : Os.touch_result -> Reqtrace.touch_outcome = function
  | Os.Fast -> Reqtrace.Hit
  | Os.Hard -> Reqtrace.Hard
  | Os.Soft | Os.Validated | Os.Zero_filled | Os.Rescued _ -> Reqtrace.Soft

let serve_one t ~arrival ~key =
  let rq = t.reqtrace in
  let pid = (Engine.self ()).Engine.pid in
  Reqtrace.start rq ~pid ~key ~arrival ~now:(Engine.now ());
  let ivpn = index_vpn t key in
  let r = Os.touch t.os t.asp ~vpn:ivpn ~write:false in
  Reqtrace.note_touch rq ~pid ~kind:Reqtrace.Index ~vpn:ivpn
    ~outcome:(touch_outcome r) ~now:(Engine.now ());
  let vvpn = value_vpn t key in
  let r = Os.touch t.os t.asp ~vpn:vvpn ~write:false in
  Reqtrace.note_touch rq ~pid ~kind:Reqtrace.Value ~vpn:vvpn
    ~outcome:(touch_outcome r) ~now:(Engine.now ());
  (if t.cfg.sv_work_ns > 0 then begin
     let cpus = Os.cpus t.os in
     Semaphore.acquire cpus;
     Reqtrace.note_cpu_acquired rq ~pid ~now:(Engine.now ());
     Engine.delay ~cat:Account.User t.cfg.sv_work_ns;
     Semaphore.release cpus
   end
   else Reqtrace.note_cpu_acquired rq ~pid ~now:(Engine.now ()));
  (* Response measured from arrival: queueing delay under memory pressure
     is charged to the request, not silently dropped. *)
  let response = Engine.now () - arrival in
  t.completed <- t.completed + 1;
  let recorded = t.completed > t.cfg.sv_warmup in
  Reqtrace.finish rq ~pid ~commit:recorded ~now:(Engine.now ());
  if recorded then begin
    Histogram.record t.hist response;
    if response <= t.cfg.sv_slo then t.slo_ok <- t.slo_ok + 1;
    (* The post-mark tally keys on *arrival* time: a request that arrived
       after the injected fault window closed but still blew its SLO
       (e.g. queued behind the backlog the fault left) counts against
       recovery, exactly as a client would experience it. *)
    match t.cfg.sv_mark with
    | Some mark when arrival >= t.window_start + mark ->
        t.post_recorded <- t.post_recorded + 1;
        if response <= t.cfg.sv_slo then t.post_slo_ok <- t.post_slo_ok + 1
    | _ -> ()
  end

let server t ~on_done () =
  Runtime.start t.rt;
  let continue = ref true in
  while !continue do
    match Mailbox.recv t.queue with
    | Req { arrival; key } -> serve_one t ~arrival ~key
    | Stop ->
        continue := false;
        t.done_ <- true;
        on_done ()
  done

let spawn ?(on_done = fun () -> ()) t =
  let engine = Os.engine t.os in
  ignore (Engine.spawn engine ~name:"kv-arrivals" (arrivals t));
  let p = Engine.spawn engine ~name:"kv-server" (server t ~on_done) in
  t.proc <- Some p;
  p

type summary = {
  sm_offered_rps : float;
  sm_duration : Time_ns.t;
  sm_slo : Time_ns.t;
  sm_arrived : int;
  sm_completed : int;
  sm_recorded : int;
  sm_max_queue : int;
  sm_slo_ok : int;
  sm_mark : Time_ns.t option;
  sm_post_recorded : int;
  sm_post_slo_ok : int;
  sm_hist : Histogram.t;
}

let summary t =
  {
    sm_offered_rps = t.cfg.sv_rate_rps;
    sm_duration = t.cfg.sv_duration;
    sm_slo = t.cfg.sv_slo;
    sm_arrived = t.arrived;
    sm_completed = t.completed;
    sm_recorded = Histogram.count t.hist;
    sm_max_queue = t.max_queue;
    sm_slo_ok = t.slo_ok;
    sm_mark = t.cfg.sv_mark;
    sm_post_recorded = t.post_recorded;
    sm_post_slo_ok = t.post_slo_ok;
    sm_hist = t.hist;
  }

(* A run that recorded nothing attained nothing: 0.0, not a vacuous 1.0 —
   a cell whose server starved (or whose duration was shorter than its
   warmup) must not report perfect SLO attainment. *)
let slo_attainment s =
  if s.sm_recorded = 0 then 0.0
  else float_of_int s.sm_slo_ok /. float_of_int s.sm_recorded

let post_attainment s =
  if s.sm_post_recorded = 0 then 0.0
  else float_of_int s.sm_post_slo_ok /. float_of_int s.sm_post_recorded

let blame t = Reqtrace.summarize t.reqtrace
