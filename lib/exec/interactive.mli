(** The simulated interactive task of section 1.1.

    A process repeatedly touches a small data set (1 MB by default), then
    sleeps for a fixed time.  The time to touch the entire data set is the
    "response time"; varying the sleep time controls how often each page is
    referenced — long sleeps leave the task defenseless against a global
    replacement policy.  Per-sweep hard-fault counts give Figure 10(c). *)

type sweep = {
  sw_index : int;
  sw_response : Memhog_sim.Time_ns.t;
  sw_hard_faults : int;
  sw_soft_faults : int;
}

type t

val create :
  ?data_bytes:int ->
  ?work_per_page_ns:Memhog_sim.Time_ns.t ->
  os:Memhog_vm.Os.t ->
  sleep:Memhog_sim.Time_ns.t ->
  unit ->
  t

val spawn : t -> Memhog_sim.Engine.proc
(** Start the task; it sweeps and sleeps until the simulation stops. *)

val asp : t -> Memhog_vm.Address_space.t
val sweeps : t -> sweep list
(** Completed sweeps, oldest first. *)

val avg_response : ?skip:int -> t -> Memhog_sim.Time_ns.t option
(** Mean response over completed sweeps, skipping the first [skip] warm-up
    sweeps (default 1, which absorbs the initial demand paging). *)

val avg_hard_faults : ?skip:int -> t -> float option

val response_histogram : ?skip:int -> t -> Memhog_sim.Histogram.t
(** Per-sweep response times as a histogram, skipping the first [skip]
    warm-up sweeps (default 1, matching {!avg_response}); feeds the derived
    metrics layer's p50/p90/p99 response percentiles. *)

val account : t -> Memhog_sim.Account.t option
(** The task's per-category time account, once {!spawn} has run. *)

val alone_response : t -> Memhog_sim.Time_ns.t
(** The ideal warm response time: pure compute, no faults. *)
