(** Execution of compiled (PIR) programs as simulated processes.

    [create] builds the process: an address space with one segment per
    program array (sized under the given runtime parameter values), the
    PagingDirected policy module attached, and a run-time layer in the
    requested release policy.  [run] interprets the program against the VM:
    touches become page references (faulting as needed), compute chunks
    occupy a CPU, and prefetch/release directives flow through the run-time
    layer's filters and helper threads.

    Indirect references draw from deterministic per-site random streams
    seeded from [seed] and the site's stable id, so the O/P/R/B variants of
    a program see identical index sequences. *)

type t

val create :
  ?seed:int ->
  ?runtime_policy:Memhog_runtime.Runtime.policy ->
  ?release_target:int ->
  ?rt_threads:int ->
  ?governor:Memhog_runtime.Runtime.governor_cfg ->
  os:Memhog_vm.Os.t ->
  params:(string * int) list ->
  Memhog_compiler.Pir.prog ->
  t
(** The runtime policy only matters for [V_release] programs: Aggressive
    gives the paper's R bars, Buffered the B bars.  [governor] enables the
    run-time layer's graceful-degradation governor (see
    {!Memhog_runtime.Runtime.governor_cfg}). *)

val asp : t -> Memhog_vm.Address_space.t
val runtime : t -> Memhog_runtime.Runtime.t
val env : t -> Memhog_compiler.Ir.env

val segment_of_array : t -> string -> Memhog_vm.Address_space.segment

val run : t -> iterations:int -> unit
(** Interpret the whole program [iterations] times.  Must be called from
    inside a simulated process. *)

val exec_main : t -> unit
(** One pass over the program's main computation (starts the run-time
    layer's helper threads on first use). *)

val finish : t -> unit
(** Flush the run-time layer's buffered releases (application exit). *)

val spawn : t -> iterations:int -> on_done:(unit -> unit) -> Memhog_sim.Engine.proc
(** Convenience: spawn a process named after the program that [run]s it and
    then calls [on_done]. *)

val touched_pages : t -> int
(** Total page touches executed (for tests). *)
