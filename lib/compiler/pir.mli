(** PIR — the page-granular executable form emitted by the compiler.

    This is the moral equivalent of the specialized executable of Figure 4:
    the original loop nest, strip-mined by page, with prefetch and release
    calls scheduled by software pipelining (Figure 5 shows the corresponding
    source-level output of the real compiler).

    Index expressions are runtime closures over an environment binding loop
    variables and program parameters, so a single compiled program can be
    run with different runtime parameter values — which is exactly how
    MGRID ends up with suboptimal releases: one compiled version, many
    bindings. *)

type rt = Ir.env -> int

type directive = {
  d_array : string;
  d_first : rt;     (** first element index *)
  d_count : rt;     (** number of iterations covered *)
  d_stride : rt;    (** elements advanced per iteration *)
  d_tag : int;      (** request identifier, unique per static site *)
  d_desc : string;  (** human-readable site description *)
}

type pstmt =
  | P_seq of pstmt list
  | P_loop of { var : string; lo : rt; hi : rt; step : int; body : pstmt }
  | P_touch of { array : string; first : rt; count : rt; stride : rt; write : bool }
      (** reference the pages covering [first + k*stride | 0 <= k < count] *)
  | P_compute of { ns : rt }
  | P_prefetch of directive
  | P_release of { dir : directive; priority : int }
  | P_indirect of {
      array : string;
      count : rt;          (** random touches per execution *)
      write : bool;
      lookahead : int;     (** prefetch distance, in touches *)
      prefetch : bool;
      stream : int;        (** stable stream id: the same random index
                               sequence is drawn in every variant *)
    }
  | P_call of { proc : string; binds : (string * rt) list }

type variant = V_original | V_prefetch | V_release

val variant_name : variant -> string
val variant_letter : variant -> string
(** O / P / R per the paper's figure labels (B is R executed under the
    buffering run-time policy). *)

type gen_stats = {
  mutable gs_prefetch_sites : int;
  mutable gs_release_sites : int;
  mutable gs_chunk_loops : int;
  mutable gs_prefetch_distance : int;  (** max pipelining distance used *)
}

type prog = {
  px_name : string;
  px_arrays : Ir.array_decl list;
  px_params : (string * int option) list;  (** assumptions, for reference *)
  px_main : pstmt;
  px_procs : (string * pstmt) list;
  px_variant : variant;
  px_stats : gen_stats;
}

val find_proc : prog -> string -> pstmt

type site_kind = S_prefetch | S_release

type site_info = {
  si_tag : int;       (** directive tag = ledger site id *)
  si_kind : site_kind;
  si_array : string;
  si_desc : string;   (** human-readable site description *)
  si_priority : int;  (** Eq. 2 static priority (releases; 0 for prefetches) *)
}

val sites : prog -> site_info list
(** Every static prefetch/release directive site in the program, sorted by
    tag.  Joins the ledger's per-site efficacy rows back to source-level
    descriptions for the audit report. *)

val pp : Format.formatter -> prog -> unit
(** Structural dump with directive descriptions (index closures cannot be
    printed; the [d_desc] strings recorded at generation time are shown). *)
