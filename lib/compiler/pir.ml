type rt = Ir.env -> int

type directive = {
  d_array : string;
  d_first : rt;
  d_count : rt;
  d_stride : rt;
  d_tag : int;
  d_desc : string;
}

type pstmt =
  | P_seq of pstmt list
  | P_loop of { var : string; lo : rt; hi : rt; step : int; body : pstmt }
  | P_touch of { array : string; first : rt; count : rt; stride : rt; write : bool }
  | P_compute of { ns : rt }
  | P_prefetch of directive
  | P_release of { dir : directive; priority : int }
  | P_indirect of {
      array : string;
      count : rt;
      write : bool;
      lookahead : int;
      prefetch : bool;
      stream : int;
    }
  | P_call of { proc : string; binds : (string * rt) list }

type variant = V_original | V_prefetch | V_release

let variant_name = function
  | V_original -> "original"
  | V_prefetch -> "prefetch"
  | V_release -> "prefetch+release"

let variant_letter = function
  | V_original -> "O"
  | V_prefetch -> "P"
  | V_release -> "R"

type gen_stats = {
  mutable gs_prefetch_sites : int;
  mutable gs_release_sites : int;
  mutable gs_chunk_loops : int;
  mutable gs_prefetch_distance : int;
}

type prog = {
  px_name : string;
  px_arrays : Ir.array_decl list;
  px_params : (string * int option) list;
  px_main : pstmt;
  px_procs : (string * pstmt) list;
  px_variant : variant;
  px_stats : gen_stats;
}

let find_proc prog name =
  match List.assoc_opt name prog.px_procs with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Pir: unknown procedure %s" name)

type site_kind = S_prefetch | S_release

type site_info = {
  si_tag : int;
  si_kind : site_kind;
  si_array : string;
  si_desc : string;
  si_priority : int;
}

let sites prog =
  let acc = ref [] in
  let rec walk = function
    | P_seq ss -> List.iter walk ss
    | P_loop { body; _ } -> walk body
    | P_touch _ | P_compute _ | P_indirect _ | P_call _ -> ()
    | P_prefetch d ->
        acc :=
          {
            si_tag = d.d_tag;
            si_kind = S_prefetch;
            si_array = d.d_array;
            si_desc = d.d_desc;
            si_priority = 0;
          }
          :: !acc
    | P_release { dir = d; priority } ->
        acc :=
          {
            si_tag = d.d_tag;
            si_kind = S_release;
            si_array = d.d_array;
            si_desc = d.d_desc;
            si_priority = priority;
          }
          :: !acc
  in
  walk prog.px_main;
  List.iter (fun (_, p) -> walk p) prog.px_procs;
  List.sort (fun a b -> compare a.si_tag b.si_tag) !acc

let rec pp_stmt fmt = function
  | P_seq ss -> Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt ss
  | P_loop { var; step; body; _ } ->
      Format.fprintf fmt "@[<v 2>for %s (step %d) {@,%a@]@,}" var step pp_stmt body
  | P_touch { array; write; _ } ->
      Format.fprintf fmt "touch %s%s" array (if write then " (w)" else "")
  | P_compute _ -> Format.fprintf fmt "compute"
  | P_prefetch d -> Format.fprintf fmt "prefetch %s" d.d_desc
  | P_release { dir; priority } ->
      Format.fprintf fmt "release %s priority=%d" dir.d_desc priority
  | P_indirect { array; prefetch; lookahead; _ } ->
      Format.fprintf fmt "indirect %s%s" array
        (if prefetch then Printf.sprintf " (prefetch +%d)" lookahead else "")
  | P_call { proc; _ } -> Format.fprintf fmt "call %s" proc

let pp fmt prog =
  Format.fprintf fmt "@[<v>%s [%s]@," prog.px_name (variant_name prog.px_variant);
  List.iter
    (fun (name, body) ->
      Format.fprintf fmt "@[<v 2>proc %s {@,%a@]@,}@," name pp_stmt body)
    prog.px_procs;
  Format.fprintf fmt "%a@," pp_stmt prog.px_main;
  Format.fprintf fmt
    "sites: %d prefetch, %d release; %d chunk loops; max distance %d chunks@]"
    prog.px_stats.gs_prefetch_sites prog.px_stats.gs_release_sites
    prog.px_stats.gs_chunk_loops prog.px_stats.gs_prefetch_distance
