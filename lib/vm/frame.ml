type t = {
  idx : int;
  mutable owner : int;
  mutable vpn : int;
  mutable dirty : bool;
  mutable valid : bool;
  mutable referenced : bool;
  mutable prefetched : bool;
  mutable release_invalidated : bool;
  mutable age : int;
  mutable freed_by : Vm_stats.freer option;
  mutable free_site : int;
      (* directive site whose release freed this frame; -1 (Trace.no_site)
         when freed by the daemon or not freed at all *)
  mutable next : int;
  mutable prev : int;
  mutable on_free_list : bool;
}

let make idx =
  {
    idx;
    owner = -1;
    vpn = -1;
    dirty = false;
    valid = false;
    referenced = false;
    prefetched = false;
    release_invalidated = false;
    age = 0;
    freed_by = None;
    free_site = -1;
    next = -1;
    prev = -1;
    on_free_list = false;
  }

let reset_association t =
  t.owner <- -1;
  t.vpn <- -1;
  t.dirty <- false;
  t.valid <- false;
  t.referenced <- false;
  t.prefetched <- false;
  t.release_invalidated <- false;
  t.age <- 0;
  t.freed_by <- None;
  t.free_site <- -1

let pp fmt t =
  Format.fprintf fmt "frame%d(owner=%d vpn=%d%s%s%s)" t.idx t.owner t.vpn
    (if t.dirty then " dirty" else "")
    (if t.valid then " valid" else "")
    (if t.on_free_list then " free" else "")
