open Memhog_sim

type pte =
  | Untouched
  | Resident of int
  | On_free_list of int
  | Swapped
  | In_transit of unit Ivar.t

(* Packed page-table entries: state tag in the low 3 bits, frame number in
   the bits above.  Every value is an immediate OCaml int, so a PTE state
   transition is a plain array store — no [Resident of int] block allocated
   per transition on the fault/release/daemon hot paths.  [In_transit] is
   the one state that carries a pointer (the ivar other accessors wait on);
   its word stores only the tag and the ivar lives in the segment's
   [transit] side table, keyed by page offset — in-transit is a rare,
   transient state (one entry per in-flight disk read), so the table stays
   tiny. *)
module Pte = struct
  let tag_untouched = 0
  let tag_swapped = 1
  let tag_resident = 2
  let tag_on_free_list = 3
  let tag_in_transit = 4

  let untouched = tag_untouched
  let swapped = tag_swapped
  let in_transit = tag_in_transit

  let max_frame = max_int lsr 3

  let resident f = tag_resident lor (f lsl 3)
  let on_free_list f = tag_on_free_list lor (f lsl 3)
  let tag p = p land 7
  let frame p = p lsr 3
end

type segment = {
  seg_name : string;
  base_vpn : int;
  npages : int;
  swap_base : int;
  ptes : int array;  (* packed [Pte] words *)
  transit : (int, unit Ivar.t) Hashtbl.t;  (* page offset -> waiters *)
  bits : Bytes.t;
  mutable pm_attached : bool;
}

type t = {
  pid : int;
  as_name : string;
  as_lock : Semaphore.t;
  tlb : Tlb.t;
  mutable seg_arr : segment array;
  mutable nsegs : int;
  mutable last_hit : int;
  mutable rss : int;
  stats : Vm_stats.proc;
  mutable current_usage : int;
  mutable upper_limit : int;
  mutable next_vpn : int;
}

(* A placeholder for unused [seg_arr] slots, so growth never retains a
   stale segment (and all its page tables) beyond [nsegs]. *)
let dummy_segment =
  {
    seg_name = "<unmapped>";
    base_vpn = -1;
    npages = 0;
    swap_base = 0;
    ptes = [||];
    transit = Hashtbl.create 1;
    bits = Bytes.empty;
    pm_attached = false;
  }

let create ?(tlb_entries = 64) ~pid ~name () =
  {
    pid;
    as_name = name;
    as_lock = Semaphore.create ~name:(Printf.sprintf "as-lock:%s" name) 1;
    tlb = Tlb.create ~entries:tlb_entries;
    seg_arr = [||];
    nsegs = 0;
    last_hit = 0;
    rss = 0;
    stats = Vm_stats.create_proc ();
    current_usage = 0;
    upper_limit = max_int;
    next_vpn = 0;
  }

let add_segment t ~name ~npages ~swap_base ~on_swap =
  if npages <= 0 then invalid_arg "Address_space.add_segment: npages <= 0";
  let seg =
    {
      seg_name = name;
      base_vpn = t.next_vpn;
      npages;
      swap_base;
      ptes = Array.make npages (if on_swap then Pte.swapped else Pte.untouched);
      transit = Hashtbl.create 8;
      bits = Bytes.make ((npages + 7) / 8) '\000';
      pm_attached = false;
    }
  in
  t.next_vpn <- t.next_vpn + npages;
  (* Amortized O(1) append; [base_vpn] is monotonically increasing, so the
     array stays sorted by construction. *)
  if t.nsegs = Array.length t.seg_arr then begin
    let cap = max 8 (2 * Array.length t.seg_arr) in
    let arr = Array.make cap dummy_segment in
    Array.blit t.seg_arr 0 arr 0 t.nsegs;
    t.seg_arr <- arr
  end;
  t.seg_arr.(t.nsegs) <- seg;
  t.nsegs <- t.nsegs + 1;
  seg

let attach_pm _t seg = seg.pm_attached <- true

let iter_segments t f =
  for i = 0 to t.nsegs - 1 do
    f t.seg_arr.(i)
  done

let fold_segments t ~init f =
  let acc = ref init in
  for i = 0 to t.nsegs - 1 do
    acc := f !acc t.seg_arr.(i)
  done;
  !acc

let segments t =
  List.rev (fold_segments t ~init:[] (fun acc seg -> seg :: acc))

(* Every page translation funnels through here, so this is the hottest
   lookup in the VM: check the last segment hit (sequential sweeps stay in
   one segment for thousands of touches), then binary-search the sorted
   array. *)
let find_segment t ~vpn =
  if t.nsegs = 0 then raise Not_found;
  let seg = t.seg_arr.(t.last_hit) in
  if vpn >= seg.base_vpn && vpn < seg.base_vpn + seg.npages then seg
  else begin
    (* greatest base_vpn <= vpn *)
    let lo = ref 0 and hi = ref (t.nsegs - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.seg_arr.(mid).base_vpn <= vpn then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !found < 0 then raise Not_found;
    let seg = t.seg_arr.(!found) in
    if vpn < seg.base_vpn + seg.npages then begin
      t.last_hit <- !found;
      seg
    end
    else raise Not_found
  end

let off seg vpn =
  let o = vpn - seg.base_vpn in
  if o < 0 || o >= seg.npages then
    invalid_arg
      (Printf.sprintf "Address_space: vpn %d outside segment %s" vpn seg.seg_name);
  o

(* Raw (packed) PTE access — the hot-path API.  [set_raw] refuses the
   in-transit tag because that state needs an ivar: use [set_in_transit].
   Overwriting an in-transit word drops its side-table entry, so the table
   never leaks completed transits. *)

let get_raw seg ~vpn = seg.ptes.(off seg vpn)

let set_raw seg ~vpn p =
  if Pte.tag p = Pte.tag_in_transit then
    invalid_arg "Address_space.set_raw: use set_in_transit";
  let o = off seg vpn in
  if Pte.tag seg.ptes.(o) = Pte.tag_in_transit then Hashtbl.remove seg.transit o;
  seg.ptes.(o) <- p

let set_in_transit seg ~vpn ivar =
  let o = off seg vpn in
  Hashtbl.replace seg.transit o ivar;
  seg.ptes.(o) <- Pte.in_transit

let transit_ivar seg ~vpn = Hashtbl.find seg.transit (off seg vpn)

(* Variant view, for tests and cold paths. *)

let decode seg o p =
  let tag = Pte.tag p in
  if tag = Pte.tag_untouched then Untouched
  else if tag = Pte.tag_swapped then Swapped
  else if tag = Pte.tag_resident then Resident (Pte.frame p)
  else if tag = Pte.tag_on_free_list then On_free_list (Pte.frame p)
  else In_transit (Hashtbl.find seg.transit o)

let get_pte seg ~vpn =
  let o = off seg vpn in
  decode seg o seg.ptes.(o)

let set_pte seg ~vpn pte =
  match pte with
  | Untouched -> set_raw seg ~vpn Pte.untouched
  | Swapped -> set_raw seg ~vpn Pte.swapped
  | Resident f -> set_raw seg ~vpn (Pte.resident f)
  | On_free_list f -> set_raw seg ~vpn (Pte.on_free_list f)
  | In_transit ivar -> set_in_transit seg ~vpn ivar

let swap_page seg ~vpn = seg.swap_base + off seg vpn

let bit seg ~vpn =
  let o = off seg vpn in
  Char.code (Bytes.get seg.bits (o / 8)) land (1 lsl (o mod 8)) <> 0

let set_bit seg ~vpn value =
  let o = off seg vpn in
  let byte = Char.code (Bytes.get seg.bits (o / 8)) in
  let mask = 1 lsl (o mod 8) in
  let byte = if value then byte lor mask else byte land lnot mask in
  Bytes.set seg.bits (o / 8) (Char.chr byte)

let resident_pages t =
  fold_segments t ~init:0 (fun acc seg ->
      let n = ref acc in
      Array.iter
        (fun p -> if Pte.tag p = Pte.tag_resident then incr n)
        seg.ptes;
      !n)
