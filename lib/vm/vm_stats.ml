type freer = Daemon | Releaser

let freer_name = function Daemon -> "daemon" | Releaser -> "releaser"

type proc = {
  mutable hard_faults : int;
  mutable soft_faults : int;
  mutable soft_faults_daemon : int;
  mutable validation_faults : int;
  mutable zero_fills : int;
  mutable rescued_daemon : int;
  mutable rescued_releaser : int;
  mutable lost_daemon : int;
  mutable lost_releaser : int;
  mutable freed_by_daemon : int;
  mutable freed_by_releaser : int;
  mutable releases_requested : int;
  mutable releases_skipped : int;
  mutable prefetches_issued : int;
  mutable prefetches_dropped : int;
  mutable prefetches_useless : int;
  mutable prefetch_rescues : int;
  mutable writebacks : int;
  mutable invalidations : int;
}

let create_proc () =
  {
    hard_faults = 0;
    soft_faults = 0;
    soft_faults_daemon = 0;
    validation_faults = 0;
    zero_fills = 0;
    rescued_daemon = 0;
    rescued_releaser = 0;
    lost_daemon = 0;
    lost_releaser = 0;
    freed_by_daemon = 0;
    freed_by_releaser = 0;
    releases_requested = 0;
    releases_skipped = 0;
    prefetches_issued = 0;
    prefetches_dropped = 0;
    prefetches_useless = 0;
    prefetch_rescues = 0;
    writebacks = 0;
    invalidations = 0;
  }

let add_proc dst src =
  dst.hard_faults <- dst.hard_faults + src.hard_faults;
  dst.soft_faults <- dst.soft_faults + src.soft_faults;
  dst.soft_faults_daemon <- dst.soft_faults_daemon + src.soft_faults_daemon;
  dst.validation_faults <- dst.validation_faults + src.validation_faults;
  dst.zero_fills <- dst.zero_fills + src.zero_fills;
  dst.rescued_daemon <- dst.rescued_daemon + src.rescued_daemon;
  dst.rescued_releaser <- dst.rescued_releaser + src.rescued_releaser;
  dst.lost_daemon <- dst.lost_daemon + src.lost_daemon;
  dst.lost_releaser <- dst.lost_releaser + src.lost_releaser;
  dst.freed_by_daemon <- dst.freed_by_daemon + src.freed_by_daemon;
  dst.freed_by_releaser <- dst.freed_by_releaser + src.freed_by_releaser;
  dst.releases_requested <- dst.releases_requested + src.releases_requested;
  dst.releases_skipped <- dst.releases_skipped + src.releases_skipped;
  dst.prefetches_issued <- dst.prefetches_issued + src.prefetches_issued;
  dst.prefetches_dropped <- dst.prefetches_dropped + src.prefetches_dropped;
  dst.prefetches_useless <- dst.prefetches_useless + src.prefetches_useless;
  dst.prefetch_rescues <- dst.prefetch_rescues + src.prefetch_rescues;
  dst.writebacks <- dst.writebacks + src.writebacks;
  dst.invalidations <- dst.invalidations + src.invalidations

let total_faults p = p.hard_faults + p.soft_faults + p.validation_faults

let rescued p = function
  | Daemon -> p.rescued_daemon
  | Releaser -> p.rescued_releaser

let freed_by p = function
  | Daemon -> p.freed_by_daemon
  | Releaser -> p.freed_by_releaser

type global = {
  mutable daemon_activations : int;
  mutable daemon_pages_stolen : int;
  mutable daemon_frames_scanned : int;
  mutable daemon_invalidations : int;
  mutable releaser_batches : int;
  mutable releaser_pages_freed : int;
  mutable allocations : int;
  mutable allocation_waits : int;
}

let create_global () =
  {
    daemon_activations = 0;
    daemon_pages_stolen = 0;
    daemon_frames_scanned = 0;
    daemon_invalidations = 0;
    releaser_batches = 0;
    releaser_pages_freed = 0;
    allocations = 0;
    allocation_waits = 0;
  }

let add_global dst src =
  dst.daemon_activations <- dst.daemon_activations + src.daemon_activations;
  dst.daemon_pages_stolen <- dst.daemon_pages_stolen + src.daemon_pages_stolen;
  dst.daemon_frames_scanned <-
    dst.daemon_frames_scanned + src.daemon_frames_scanned;
  dst.daemon_invalidations <-
    dst.daemon_invalidations + src.daemon_invalidations;
  dst.releaser_batches <- dst.releaser_batches + src.releaser_batches;
  dst.releaser_pages_freed <- dst.releaser_pages_freed + src.releaser_pages_freed;
  dst.allocations <- dst.allocations + src.allocations;
  dst.allocation_waits <- dst.allocation_waits + src.allocation_waits

let pp_proc fmt p =
  Format.fprintf fmt
    "@[<v>faults: hard=%d soft=%d valid=%d zero=%d@,\
     freed: daemon=%d releaser=%d@,\
     rescued: daemon=%d releaser=%d  lost: daemon=%d releaser=%d@,\
     releases: req=%d skipped=%d  prefetch: ok=%d drop=%d useless=%d rescue=%d@,\
     writebacks=%d invalidations=%d@]"
    p.hard_faults p.soft_faults p.validation_faults p.zero_fills
    p.freed_by_daemon p.freed_by_releaser p.rescued_daemon p.rescued_releaser
    p.lost_daemon p.lost_releaser p.releases_requested p.releases_skipped
    p.prefetches_issued p.prefetches_dropped p.prefetches_useless
    p.prefetch_rescues p.writebacks p.invalidations

let pp_global fmt g =
  Format.fprintf fmt
    "@[<v>daemon: activations=%d stolen=%d scanned=%d invalidations=%d@,\
     releaser: batches=%d freed=%d@,allocations=%d (blocked %d)@]"
    g.daemon_activations g.daemon_pages_stolen g.daemon_frames_scanned
    g.daemon_invalidations g.releaser_batches g.releaser_pages_freed
    g.allocations g.allocation_waits
