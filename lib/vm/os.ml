open Memhog_sim
module As = Address_space
module Swap = Memhog_disk.Swap

type touch_result =
  | Fast
  | Soft
  | Validated
  | Hard
  | Zero_filled
  | Rescued of Vm_stats.freer

type prefetch_result = P_fetched | P_rescued | P_already | P_dropped

type release_req = {
  req_as : As.t;
  req_vpns : int array;
  req_sites : int array;
      (* parallel to req_vpns: the directive site of each page's release,
         Trace.no_site for unattributed requests *)
  req_prios : int array;
      (* parallel to req_vpns: the Eq. 2 priority each page was released
         with — the tier router's placement key.  min_int = unattributed. *)
}

(* The releaser's mailbox carries work batches plus a poison message so
   [shutdown] can cut a blocked [Mailbox.recv] short. *)
type releaser_msg = R_batch of release_req | R_quit

type t = {
  config : Config.t;
  engine : Engine.t;
  swap : Swap.t;
  mutable tiers : Tiers.t option;
      (* tiered backing store router; None = plain striped swap *)
  frames : Frame.t array;
  free : Free_list.t;
  free_cond : Condition.t;
  memory_lock : Semaphore.t;
  cpus : Semaphore.t;
  spaces : (int, As.t) Hashtbl.t;
  mutable space_list : As.t list;
  releaser_box : releaser_msg Mailbox.t;
  gstats : Vm_stats.global;
  trace : Trace.t;
  ledger : Ledger.t;
  chaos : Chaos.t;
  reqtrace : Reqtrace.t;
  h_fault : Histogram.t;
      (* service time of every demand fault (non-Fast touch), wall start to
         wall end including lock and I/O waits *)
  h_prefetch : Histogram.t;
      (* service time of completed prefetches (fetched or rescued) *)
  mutable clock_hand : int;
  mutable next_pid : int;
  mutable next_swap_page : int;
  advisors : (int, unit -> int option) Hashtbl.t;
      (* reactive eviction (section 2.2): per-process callbacks that name a
         page the application prefers to surrender *)
  mutable stop : bool;
  mutable daemon_waker : Engine.waker option;
      (* fires the paging daemon's interruptible sleep early on shutdown *)
}

let config t = t.config
let engine t = t.engine
let swap t = t.swap
let tiers t = t.tiers
let tier_far_open t = match t.tiers with None -> false | Some tr -> Tiers.far_open tr
let global_stats t = t.gstats
let free_pages t = Free_list.length t.free
let cpus t = t.cpus
let address_spaces t = List.rev t.space_list
let trace t = t.trace
let ledger t = t.ledger
let chaos t = t.chaos
let reqtrace t = t.reqtrace
let fault_histogram t = t.h_fault
let prefetch_histogram t = t.h_prefetch

(* Call sites guard with [tracing t] so disabled observation builds no event
   values on the hot path.  Events feed the trace ring, the lifecycle
   ledger and the per-request blame layer. *)
let tracing t =
  Trace.enabled t.trace || Ledger.enabled t.ledger
  || Reqtrace.enabled t.reqtrace

let emit t ~stream ev =
  let time = Engine.now_of t.engine in
  Trace.emit t.trace ~time ~stream ev;
  Ledger.observe t.ledger ~time ~stream ev;
  Reqtrace.observe t.reqtrace ~time ~stream ev

let sys_delay t d = ignore t; Engine.delay ~cat:Account.System d

(* Backing-store indirection: with a tier router installed, reads go to
   wherever the page currently lives (far memory, compressed RAM, or the
   swap failover copy); without one they go straight to the striped swap
   volume, byte-for-byte as before. *)
let backing_read t ~background ~page =
  match t.tiers with
  | None -> Swap.read_page ~background t.swap ~page
  | Some tr -> Tiers.fetch tr ~background ~page ()

(* Equation 1: the recommended upper limit on memory usage. *)
let update_limits t (asp : As.t) =
  asp.current_usage <- asp.rss;
  let free = Free_list.length t.free in
  let limit = asp.rss + free - t.config.min_freemem in
  asp.upper_limit <- max 0 (min t.config.maxrss limit)

let shared_current_usage t asp =
  ignore t;
  asp.As.current_usage

let shared_upper_limit t asp =
  ignore t;
  asp.As.upper_limit

let page_resident (asp : As.t) ~vpn =
  match As.find_segment asp ~vpn with
  | seg -> As.bit seg ~vpn
  | exception Not_found -> false

(* ------------------------------------------------------------------ *)
(* Frame allocation                                                    *)
(* ------------------------------------------------------------------ *)

(* Break a free frame's association with its previous page: the previous
   owner loses its chance to rescue.  Caller holds [memory_lock].
   [reused] is true when the frame is being handed to a new allocation (the
   free genuinely relieved pressure) and false when the disassociation is
   bookkeeping at free time (rescue disabled) — only the former is a
   [Frame_reused] lifecycle event. *)
let disassociate ?(reused = true) t (f : Frame.t) =
  if f.owner >= 0 then begin
    (match Hashtbl.find_opt t.spaces f.owner with
    | Some victim -> (
        (match f.freed_by with
        | Some Vm_stats.Daemon ->
            victim.As.stats.lost_daemon <- victim.As.stats.lost_daemon + 1
        | Some Vm_stats.Releaser ->
            victim.As.stats.lost_releaser <- victim.As.stats.lost_releaser + 1
        | None -> ());
        match As.find_segment victim ~vpn:f.vpn with
        | seg ->
            if As.get_raw seg ~vpn:f.vpn = As.Pte.on_free_list f.idx then
              As.set_raw seg ~vpn:f.vpn As.Pte.swapped
        | exception Not_found -> ())
    | None -> ());
    if reused && f.freed_by <> None && tracing t then
      emit t ~stream:Trace.kernel_stream
        (Trace.Frame_reused { vpn = f.vpn; owner = f.owner });
    Frame.reset_association f
  end

(* Pop a frame from the free list, blocking until one is available.
   Returns with no locks held. *)
let rec alloc_frame_blocking t ~(for_ : As.t) =
  Semaphore.acquire t.memory_lock;
  match Free_list.pop_head t.free with
  | Some f ->
      disassociate t f;
      t.gstats.allocations <- t.gstats.allocations + 1;
      Semaphore.release t.memory_lock;
      f
  | None ->
      t.gstats.allocation_waits <- t.gstats.allocation_waits + 1;
      Semaphore.release t.memory_lock;
      Condition.wait t.free_cond;
      alloc_frame_blocking t ~for_

(* Non-blocking variant for prefetch: section 3.1.2 — "if there is no free
   memory, the request is discarded immediately". *)
let alloc_frame_opt t =
  Semaphore.acquire t.memory_lock;
  let result =
    match Free_list.pop_head t.free with
    | Some f ->
        disassociate t f;
        t.gstats.allocations <- t.gstats.allocations + 1;
        Some f
    | None -> None
  in
  Semaphore.release t.memory_lock;
  result

(* Put a frame on the free list tail, remembering the page it held so it can
   be rescued.  Caller holds [memory_lock] and the owner's as_lock, and has
   already updated the PTE to [On_free_list]. *)
let free_frame_locked t (f : Frame.t) ~(freer : Vm_stats.freer) ~site =
  f.valid <- false;
  if not t.config.rescue_from_free_list then disassociate ~reused:false t f;
  f.prefetched <- false;
  f.referenced <- false;
  f.age <- 0;
  f.freed_by <- Some freer;
  f.free_site <- site;
  Free_list.push_tail t.free f;
  Condition.broadcast t.free_cond

(* With rescue disabled, a page whose writeback is still in flight cannot
   be reclaimed by its owner: the toucher abandons it (PTE -> Swapped, frame
   disassociated but still marked freed so the writeback fiber returns it to
   the free list) and demand-fetches a fresh copy.  Caller holds the
   owner's as_lock. *)
let abandon_in_writeback t seg ~vpn fidx =
  let f = t.frames.(fidx) in
  let freer = f.Frame.freed_by in
  Frame.reset_association f;
  f.Frame.freed_by <- freer;
  As.set_raw seg ~vpn As.Pte.swapped

(* ------------------------------------------------------------------ *)
(* Process setup                                                       *)
(* ------------------------------------------------------------------ *)

let new_process t ~name =
  let asp = As.create ~tlb_entries:t.config.tlb_entries ~pid:t.next_pid ~name () in
  t.next_pid <- t.next_pid + 1;
  Hashtbl.replace t.spaces asp.As.pid asp;
  t.space_list <- asp :: t.space_list;
  Trace.set_stream_name t.trace asp.As.pid name;
  asp

let map_segment t asp ~name ~bytes ~on_swap =
  let npages = (bytes + t.config.page_bytes - 1) / t.config.page_bytes in
  let swap_base = t.next_swap_page in
  t.next_swap_page <- t.next_swap_page + npages;
  As.add_segment asp ~name ~npages ~swap_base ~on_swap

let attach_paging_directed t asp seg =
  ignore t;
  As.attach_pm asp seg

(* ------------------------------------------------------------------ *)
(* Fault handling                                                      *)
(* ------------------------------------------------------------------ *)

let install_frame t (asp : As.t) seg ~vpn (f : Frame.t) ~write ~prefetched =
  (* A page entering RAM by any route (fetch completion, free-list rescue)
     invalidates its fast-tier copy: resident and tier-resident are
     mutually exclusive states. *)
  (match t.tiers with
  | None -> ()
  | Some tr -> Tiers.invalidate tr ~page:(As.swap_page seg ~vpn));
  f.owner <- asp.As.pid;
  f.vpn <- vpn;
  f.dirty <- write;
  f.valid <- not prefetched;
  f.referenced <- not prefetched;
  f.prefetched <- prefetched;
  f.age <- 0;
  f.freed_by <- None;
  f.free_site <- Trace.no_site;
  As.set_raw seg ~vpn (As.Pte.resident f.idx);
  asp.As.rss <- asp.As.rss + 1;
  As.set_bit seg ~vpn true;
  (* a demand-installed page enters the TLB; a prefetched page does so only
     when section 3.1.2's no-TLB-entry feature is disabled *)
  if (not prefetched) || t.config.prefetch_fills_tlb then
    Tlb.insert asp.As.tlb ~vpn;
  update_limits t asp

let rec touch t (asp : As.t) ~vpn ~write =
  let seg = As.find_segment asp ~vpn in
  (* The packed-PTE read keeps the warm path allocation-free: one int load,
     one tag test, no variant decode. *)
  let p = As.get_raw seg ~vpn in
  if
    As.Pte.tag p = As.Pte.tag_resident
    &&
    let f = t.frames.(As.Pte.frame p) in
    f.valid && not f.prefetched
  then begin
    let f = t.frames.(As.Pte.frame p) in
    f.referenced <- true;
    if write then f.dirty <- true;
    (* the MIPS TLB is refilled in software: a miss on a mapped, valid
       page still costs a trap *)
    if not (Tlb.access asp.As.tlb ~vpn) then
      Engine.delay ~cat:Account.System t.config.tlb_refill_ns;
    Fast
  end
  else fault t asp seg ~vpn ~write

and fault t asp seg ~vpn ~write =
  let cfg = t.config in
  let stats = asp.As.stats in
  Semaphore.acquire asp.As.as_lock;
  (* Re-examine under the lock: the world may have changed while waiting.
     Dispatch on the packed tag (if/else: tags are named constants, not
     literals, so they cannot head a pattern match). *)
  let result =
    let p = As.get_raw seg ~vpn in
    let tag = As.Pte.tag p in
    if tag = As.Pte.tag_resident then begin
        let f = t.frames.(As.Pte.frame p) in
        if f.prefetched then begin
          (* First touch of a prefetched page: cheap validation fault. *)
          f.prefetched <- false;
          f.valid <- true;
          f.referenced <- true;
          f.age <- 0;
          if write then f.dirty <- true;
          stats.validation_faults <- stats.validation_faults + 1;
          if tracing t then
            emit t ~stream:asp.As.pid (Trace.Validation_fault { vpn });
          As.set_bit seg ~vpn true;
          Tlb.insert asp.As.tlb ~vpn;
          sys_delay t cfg.validation_fault_ns;
          Semaphore.release asp.As.as_lock;
          Validated
        end
        else if not f.valid then begin
          (* Soft fault: revalidate after an invalidation (by the daemon's
             reference sampling, or by a release request). *)
          f.valid <- true;
          f.referenced <- true;
          f.age <- 0;
          if write then f.dirty <- true;
          stats.soft_faults <- stats.soft_faults + 1;
          if tracing t then emit t ~stream:asp.As.pid (Trace.Soft_fault { vpn });
          if not f.release_invalidated then
            stats.soft_faults_daemon <- stats.soft_faults_daemon + 1;
          f.release_invalidated <- false;
          As.set_bit seg ~vpn true;
          Tlb.insert asp.As.tlb ~vpn;
          sys_delay t cfg.soft_fault_ns;
          Semaphore.release asp.As.as_lock;
          Soft
        end
        else begin
          (* Lost the race benignly: page became valid while we waited. *)
          f.referenced <- true;
          if write then f.dirty <- true;
          Semaphore.release asp.As.as_lock;
          Fast
        end
    end
    else if tag = As.Pte.tag_on_free_list && not cfg.rescue_from_free_list
    then begin
        (* Rescue disabled: the only way a PTE still points at a freed frame
           is a writeback in flight.  Abandon it and demand-fetch. *)
        abandon_in_writeback t seg ~vpn (As.Pte.frame p);
        Semaphore.release asp.As.as_lock;
        touch t asp ~vpn ~write
    end
    else if tag = As.Pte.tag_on_free_list then begin
        (* Rescue path. *)
        let fidx = As.Pte.frame p in
        Semaphore.acquire t.memory_lock;
        (* Same packed word = same state and same frame. *)
        if As.get_raw seg ~vpn = p then begin
            let f = t.frames.(fidx) in
            let freer =
              match f.freed_by with Some w -> w | None -> Vm_stats.Daemon
            in
            if f.on_free_list then Free_list.remove t.free f;
            (* else: writeback still pending; the writer re-checks the PTE
               before pushing, so claiming the frame here is safe. *)
            (match freer with
            | Vm_stats.Daemon -> stats.rescued_daemon <- stats.rescued_daemon + 1
            | Vm_stats.Releaser ->
                stats.rescued_releaser <- stats.rescued_releaser + 1);
            if tracing t then
              emit t ~stream:asp.As.pid
                (Trace.Rescue
                   { vpn; for_prefetch = false; site = f.free_site });
            install_frame t asp seg ~vpn f ~write ~prefetched:false;
            sys_delay t cfg.rescue_ns;
            Semaphore.release t.memory_lock;
            Semaphore.release asp.As.as_lock;
            Rescued freer
        end
        else begin
            (* The frame was reallocated while we took the lock: retry. *)
            Semaphore.release t.memory_lock;
            Semaphore.release asp.As.as_lock;
            touch t asp ~vpn ~write
        end
    end
    else if tag = As.Pte.tag_in_transit then begin
        (* Someone (prefetch thread or another fault) is bringing it in. *)
        let ivar = As.transit_ivar seg ~vpn in
        Semaphore.release asp.As.as_lock;
        if Reqtrace.enabled t.reqtrace then begin
          let t0 = Engine.now_of t.engine in
          Ivar.read ~cat:Account.Io_stall ivar;
          Reqtrace.note_transit t.reqtrace ~pid:(Engine.self ()).Engine.pid
            ~start:t0
            ~ns:(Engine.now_of t.engine - t0)
        end
        else Ivar.read ~cat:Account.Io_stall ivar;
        touch t asp ~vpn ~write
    end
    else begin
        (* swapped or untouched *)
        let zero = tag = As.Pte.tag_untouched in
        let ivar = Ivar.create () in
        As.set_in_transit seg ~vpn ivar;
        Semaphore.release asp.As.as_lock;
        let f = alloc_frame_blocking t ~for_:asp in
        sys_delay t cfg.hard_fault_cpu_ns;
        if zero then begin
          stats.zero_fills <- stats.zero_fills + 1;
          if tracing t then emit t ~stream:asp.As.pid (Trace.Zero_fill { vpn });
          sys_delay t cfg.zero_fill_ns
        end
        else begin
          stats.hard_faults <- stats.hard_faults + 1;
          if tracing t then emit t ~stream:asp.As.pid (Trace.Hard_fault { vpn });
          backing_read t ~background:false ~page:(As.swap_page seg ~vpn)
        end;
        Semaphore.acquire asp.As.as_lock;
        (* A zero-filled page is dirty from birth: its contents exist
           nowhere else. *)
        install_frame t asp seg ~vpn f ~write:(write || zero) ~prefetched:false;
        Ivar.fill ivar ();
        Semaphore.release asp.As.as_lock;
        if zero then Zero_filled else Hard
    end
  in
  result

(* Public entry point: time every demand fault from the first trap to
   service completion — including lock waits, blocking frame allocation and
   swap I/O — into the service-time histogram.  The recursive retry paths
   above call the inner [touch] directly, so a retried fault is measured
   once, end to end. *)
let touch_inner = touch

let touch t asp ~vpn ~write =
  let t0 = Engine.now_of t.engine in
  let r = touch_inner t asp ~vpn ~write in
  (match r with
  | Fast -> ()
  | Soft | Validated | Hard | Zero_filled | Rescued _ ->
      Histogram.record t.h_fault (Engine.now_of t.engine - t0));
  r

(* ------------------------------------------------------------------ *)
(* PagingDirected requests                                             *)
(* ------------------------------------------------------------------ *)

let rec prefetch t ?(site = Trace.no_site) ?(urgent = false) (asp : As.t) ~vpn
    =
  let cfg = t.config in
  let stats = asp.As.stats in
  sys_delay t cfg.pm_call_ns;
  match As.find_segment asp ~vpn with
  | exception Not_found -> P_already
  | seg -> (
      Semaphore.acquire asp.As.as_lock;
      let p = As.get_raw seg ~vpn in
      let tag = As.Pte.tag p in
      if tag = As.Pte.tag_resident || tag = As.Pte.tag_in_transit then begin
        stats.prefetches_useless <- stats.prefetches_useless + 1;
        Semaphore.release asp.As.as_lock;
        update_limits t asp;
        P_already
      end
      else if tag = As.Pte.tag_on_free_list && not cfg.rescue_from_free_list
      then begin
        abandon_in_writeback t seg ~vpn (As.Pte.frame p);
        Semaphore.release asp.As.as_lock;
        prefetch t asp ~site ~urgent ~vpn
      end
      else if tag = As.Pte.tag_on_free_list then begin
        let fidx = As.Pte.frame p in
        Semaphore.acquire t.memory_lock;
        let result =
          (* Same packed word = same state and same frame. *)
          if As.get_raw seg ~vpn = p then begin
            let f = t.frames.(fidx) in
            if f.on_free_list then Free_list.remove t.free f;
            stats.prefetch_rescues <- stats.prefetch_rescues + 1;
            if tracing t then
              emit t ~stream:asp.As.pid
                (Trace.Rescue { vpn; for_prefetch = true; site = f.free_site });
            (match f.freed_by with
            | Some Vm_stats.Daemon ->
                stats.rescued_daemon <- stats.rescued_daemon + 1
            | Some Vm_stats.Releaser ->
                stats.rescued_releaser <- stats.rescued_releaser + 1
            | None -> ());
            install_frame t asp seg ~vpn f ~write:false ~prefetched:true;
            P_rescued
          end
          else P_already
        in
        Semaphore.release t.memory_lock;
        Semaphore.release asp.As.as_lock;
        update_limits t asp;
        result
      end
      else (
          match
            (if t.config.drop_prefetch_when_low then alloc_frame_opt t
             else begin
               (* Blocking for a frame gives up the as_lock; the PTE must be
                  re-examined once it is reacquired (below). *)
               Semaphore.release asp.As.as_lock;
               let f = alloc_frame_blocking t ~for_:asp in
               Semaphore.acquire asp.As.as_lock;
               Some f
             end)
          with
          | None ->
              stats.prefetches_dropped <- stats.prefetches_dropped + 1;
              if tracing t then
                emit t ~stream:asp.As.pid (Trace.Prefetch_dropped { vpn; site });
              Semaphore.release asp.As.as_lock;
              update_limits t asp;
              P_dropped
          | Some f ->
              (* While blocked in alloc_frame_blocking the as_lock was free:
                 a concurrent demand fault (or another prefetch) may have
                 installed this page.  Overwriting the PTE would leak that
                 resident frame and corrupt rss, so re-check and surrender
                 the spare frame if the prefetch lost the race. *)
              let tag' = As.Pte.tag (As.get_raw seg ~vpn) in
              if tag' = As.Pte.tag_swapped || tag' = As.Pte.tag_untouched
              then begin
                let zero = tag' = As.Pte.tag_untouched in
                let ivar = Ivar.create () in
                As.set_in_transit seg ~vpn ivar;
                Semaphore.release asp.As.as_lock;
                stats.prefetches_issued <- stats.prefetches_issued + 1;
                if tracing t then
                  emit t ~stream:asp.As.pid (Trace.Prefetch_issued { vpn; site });
                sys_delay t cfg.hard_fault_cpu_ns;
                if zero then sys_delay t cfg.zero_fill_ns
                else
                  backing_read t ~background:(not urgent)
                    ~page:(As.swap_page seg ~vpn);
                Semaphore.acquire asp.As.as_lock;
                install_frame t asp seg ~vpn f ~write:zero ~prefetched:true;
                Ivar.fill ivar ();
                Semaphore.release asp.As.as_lock;
                update_limits t asp;
                P_fetched
              end
              else begin
                (* resident, in transit, or back on the free list *)
                stats.prefetches_useless <- stats.prefetches_useless + 1;
                if tracing t then
                  emit t ~stream:asp.As.pid (Trace.Prefetch_raced { vpn; site });
                Semaphore.acquire t.memory_lock;
                Free_list.push_tail t.free f;
                Condition.broadcast t.free_cond;
                Semaphore.release t.memory_lock;
                Semaphore.release asp.As.as_lock;
                update_limits t asp;
                P_already
              end))

(* Like [touch]: time prefetches that actually moved a page (I/O performed
   or rescued from the free list); useless and dropped requests are cheap
   no-ops and would only blur the service-time distribution. *)
let prefetch_inner = prefetch

let prefetch t ?(site = Trace.no_site) ?urgent asp ~vpn =
  let t0 = Engine.now_of t.engine in
  let r = prefetch_inner t asp ~site ?urgent ~vpn in
  (match r with
  | P_fetched | P_rescued ->
      let ns = Engine.now_of t.engine - t0 in
      Histogram.record t.h_prefetch ns;
      (* The completed fetch (or rescue) is the I/O span a later reference
         will not pay: the ledger credits it to the site once the page is
         actually touched. *)
      if tracing t then
        emit t ~stream:asp.As.pid (Trace.Prefetch_done { vpn; site; ns })
  | P_already | P_dropped -> ());
  r

let release_request t ?sites ?priorities (asp : As.t) ~vpns =
  let sites =
    match sites with
    | Some s ->
        if Array.length s <> Array.length vpns then
          invalid_arg "Os.release_request: sites length mismatch";
        s
    | None -> Array.make (Array.length vpns) Trace.no_site
  in
  let prios =
    match priorities with
    | Some p ->
        if Array.length p <> Array.length vpns then
          invalid_arg "Os.release_request: priorities length mismatch";
        p
    | None -> Array.make (Array.length vpns) min_int
  in
  let stats = asp.As.stats in
  sys_delay t t.config.pm_call_ns;
  stats.releases_requested <- stats.releases_requested + Array.length vpns;
  (* The PM clears the residency bits at request time (section 3.1.2); any
     re-reference before the releaser acts will set them again and veto the
     release.  For the kernel to *observe* a re-reference of a still-mapped
     page, the mapping must be invalidated here: the re-reference then traps
     (a soft fault) and restores the bit.  This is also why releasing pages
     that are still in active use is not free. *)
  Array.iter
    (fun vpn ->
      match As.find_segment asp ~vpn with
      | seg ->
          As.set_bit seg ~vpn false;
          let p = As.get_raw seg ~vpn in
          if As.Pte.tag p = As.Pte.tag_resident then begin
            let f = t.frames.(As.Pte.frame p) in
            if f.valid then begin
              f.valid <- false;
              f.release_invalidated <- true;
              Tlb.invalidate asp.As.tlb ~vpn
            end
          end
      | exception Not_found -> ())
    vpns;
  if tracing t then
    emit t ~stream:asp.As.pid
      (Trace.Release_requested { owner = asp.As.pid; count = Array.length vpns });
  Mailbox.send t.releaser_box
    (R_batch
       { req_as = asp; req_vpns = vpns; req_sites = sites; req_prios = prios });
  update_limits t asp

(* ------------------------------------------------------------------ *)
(* Releaser daemon                                                     *)
(* ------------------------------------------------------------------ *)

(* Write back a batch of stolen/released dirty pages asynchronously (one
   fiber per page, so the striped disks all work and the daemon/releaser is
   never gated on write latency), moving each frame to the free list as its
   write completes — unless it was rescued during the write. *)
let writeback_and_free t writebacks =
  List.iter
    (fun (seg, vpn, owner, (f : Frame.t), prio) ->
      ignore
        (Engine.spawn_child ~name:"writeback" (fun () ->
             let page = As.swap_page seg ~vpn in
             (* The swap write is unconditional — it is the durable
                failover copy every tiered placement degrades to. *)
             Swap.write_page ~background:true t.swap ~page;
             (match t.tiers with
             | None -> ()
             | Some tr ->
                 Tiers.demote tr ~page ~pid:owner ~vpn ~site:f.free_site
                   ~priority:prio;
                 (* Rescued while the write or placement was in flight:
                    the page is resident again, so the fast copy placed
                    a moment ago must go. *)
                 if f.freed_by = None then Tiers.invalidate tr ~page);
             Semaphore.acquire t.memory_lock;
             (* Still marked freed and not yet listed: return it.  A rescue
                during the write clears the marker (install_frame). *)
             (if f.freed_by <> None && not f.on_free_list then begin
                Free_list.push_tail t.free f;
                if not t.config.rescue_from_free_list then
                  disassociate ~reused:false t f;
                Condition.broadcast t.free_cond
              end);
             Semaphore.release t.memory_lock;
             if tracing t then
               emit t ~stream:Trace.writeback_stream
                 (Trace.Writeback_complete { vpn; owner }))))
    writebacks



let releaser_process_batch t (asp : As.t) (vpns : int array)
    (sites : int array) (prios : int array) =
  let cfg = t.config in
  (* Phase A: under locks, identify pages that are still resident and have
     not been re-referenced (residency bit still clear), detach the clean
     ones to the free list, and collect dirty ones for writeback. *)
  Semaphore.acquire asp.As.as_lock;
  Semaphore.acquire t.memory_lock;
  let writebacks = ref [] in
  let freed = ref 0 in
  Array.iteri
    (fun i vpn ->
      let site = sites.(i) in
      match As.find_segment asp ~vpn with
      | exception Not_found -> ()
      | seg -> (
          if As.bit seg ~vpn then begin
            (* Re-referenced (or re-fetched) since the request: skip. *)
            asp.As.stats.releases_skipped <- asp.As.stats.releases_skipped + 1;
            if tracing t then
              emit t ~stream:Trace.releaser_stream
                (Trace.Release_skipped { vpn; owner = asp.As.pid; site })
          end
          else
            let p = As.get_raw seg ~vpn in
            if As.Pte.tag p = As.Pte.tag_resident then begin
                let fidx = As.Pte.frame p in
                let f = t.frames.(fidx) in
                As.set_raw seg ~vpn (As.Pte.on_free_list fidx);
                asp.As.rss <- asp.As.rss - 1;
                asp.As.stats.freed_by_releaser <-
                  asp.As.stats.freed_by_releaser + 1;
                t.gstats.releaser_pages_freed <- t.gstats.releaser_pages_freed + 1;
                incr freed;
                if tracing t then
                  emit t ~stream:Trace.releaser_stream
                    (Trace.Releaser_free { vpn; owner = asp.As.pid; site });
                if f.dirty then begin
                  f.dirty <- false;
                  f.valid <- false;
                  f.prefetched <- false;
                  f.referenced <- false;
                  f.freed_by <- Some Vm_stats.Releaser;
                  f.free_site <- site;
                  asp.As.stats.writebacks <- asp.As.stats.writebacks + 1;
                  let prio =
                    if prios.(i) = min_int then None else Some prios.(i)
                  in
                  writebacks := (seg, vpn, asp.As.pid, f, prio) :: !writebacks
                end
                else free_frame_locked t f ~freer:Vm_stats.Releaser ~site
            end
            else begin
                (* untouched, swapped, already freed, or in transit *)
                asp.As.stats.releases_skipped <- asp.As.stats.releases_skipped + 1;
                if tracing t then
                  emit t ~stream:Trace.releaser_stream
                    (Trace.Release_skipped { vpn; owner = asp.As.pid; site })
            end))
    vpns;
  (* The releaser is specialized: little per-page work while locks are
     held. *)
  sys_delay t (cfg.releaser_page_ns * Array.length vpns);
  Semaphore.release t.memory_lock;
  Semaphore.release asp.As.as_lock;
  t.gstats.releaser_batches <- t.gstats.releaser_batches + 1;
  (* Phase B: write back dirty pages in parallel without holding locks,
     then put the frames on the free list (unless rescued meanwhile). *)
  writeback_and_free t (List.rev !writebacks);
  update_limits t asp

(* Injected stall: sleep out the rest of the fault window before doing any
   work, as if the daemon were descheduled by a sick kernel. *)
let chaos_stall t who ~name =
  if not (Chaos.is_none t.chaos) then
    match Chaos.stall_until t.chaos who ~now:(Engine.now ()) with
    | None -> ()
    | Some until ->
        let d = until - Engine.now () in
        if d > 0 then begin
          if tracing t then
            emit t ~stream:Trace.chaos_stream
              (Trace.Chaos_stall { who = name; until });
          Chaos.note_stall t.chaos who d;
          Engine.delay ~cat:Account.Sleep d
        end

let releaser_loop t () =
  let quit = ref false in
  while not (t.stop || !quit) do
    match Mailbox.recv t.releaser_box with
    | R_quit -> quit := true
    | R_batch req ->
        if
          (not (Chaos.is_none t.chaos))
          && Chaos.drop_directive t.chaos ~now:(Engine.now ())
        then begin
          (* Discarding a directive is safe — never corrupting: the
             requester already cleared the residency bits and invalidated
             the mappings, so the pages simply stay resident and the next
             touch soft-faults them back in. *)
          if tracing t then
            emit t ~stream:Trace.chaos_stream
              (Trace.Chaos_drop_directive { count = Array.length req.req_vpns })
        end
        else begin
          chaos_stall t `Releaser ~name:"releaser";
          let n = Array.length req.req_vpns in
          let batch = t.config.releaser_batch in
          let i = ref 0 in
          while !i < n do
            let len = min batch (n - !i) in
            (* vpns and sites are parallel arrays: sub them in lockstep so
               chunked batches keep each page's attribution aligned. *)
            releaser_process_batch t req.req_as
              (Array.sub req.req_vpns !i len)
              (Array.sub req.req_sites !i len)
              (Array.sub req.req_prios !i len);
            i := !i + len
          done
        end
  done

(* ------------------------------------------------------------------ *)
(* Paging daemon                                                       *)
(* ------------------------------------------------------------------ *)

let over_rss t =
  Hashtbl.fold
    (fun _ asp acc -> acc || asp.As.rss > t.config.maxrss)
    t.spaces false

let memory_pressure t = Free_list.length t.free < t.config.min_freemem || over_rss t

let reached_target t = Free_list.length t.free >= t.config.desfree && not (over_rss t)

(* Process one frame under the owner's locks; returns a pending writeback if
   the frame was stolen dirty. *)
let rec daemon_visit_frame t (asp : As.t) (f : Frame.t) ~free_shortage =
  let cfg = t.config in
  let stats = asp.As.stats in
  t.gstats.daemon_frames_scanned <- t.gstats.daemon_frames_scanned + 1;
  let referenced_since_last_visit =
    if cfg.hw_ref_bits then begin
      let r = f.referenced in
      f.referenced <- false;
      r
    end
    else f.valid
  in
  if referenced_since_last_visit && not f.prefetched then begin
    (* Sample the reference: with software bits this *invalidates* the page,
       and the next touch will take a soft fault. *)
    if not cfg.hw_ref_bits then begin
      f.valid <- false;
      f.release_invalidated <- false;
      Tlb.invalidate asp.As.tlb ~vpn:f.vpn;
      stats.invalidations <- stats.invalidations + 1;
      t.gstats.daemon_invalidations <- t.gstats.daemon_invalidations + 1;
      if tracing t then
        emit t ~stream:Trace.daemon_stream
          (Trace.Daemon_invalidate { vpn = f.vpn; owner = asp.As.pid })
    end;
    f.age <- 0;
    None
  end
  else begin
    f.age <- f.age + 1;
    let eligible = free_shortage || asp.As.rss > cfg.maxrss in
    if f.age >= cfg.clock_ages_to_steal && eligible then begin
      (* Steal: the application may have registered a reactive eviction
         advisor (section 2.2) naming a page it would rather surrender;
         otherwise the clock's choice stands. *)
      let victim =
        match Hashtbl.find_opt t.advisors asp.As.pid with
        | Some advise -> (
            let rec pick budget =
              if budget = 0 then f
              else
                match advise () with
                | None -> f
                | Some vpn -> (
                    match As.find_segment asp ~vpn with
                    | exception Not_found -> pick (budget - 1)
                    | seg ->
                        let p = As.get_raw seg ~vpn in
                        if As.Pte.tag p = As.Pte.tag_resident then
                          t.frames.(As.Pte.frame p)
                        else pick (budget - 1))
            in
            pick 8)
        | None -> f
      in
      daemon_steal t asp victim
    end
    else None
  end

(* Detach [f] from its owner to the free list on the daemon's behalf.
   Caller holds the owner's as_lock and the memory lock.  Returns a pending
   writeback when the page was dirty. *)
and daemon_steal t (asp : As.t) (f : Frame.t) =
  let stats = asp.As.stats in
  let seg = As.find_segment asp ~vpn:f.vpn in
  As.set_raw seg ~vpn:f.vpn (As.Pte.on_free_list f.idx);
  As.set_bit seg ~vpn:f.vpn false;
  Tlb.invalidate asp.As.tlb ~vpn:f.vpn;
  asp.As.rss <- asp.As.rss - 1;
  stats.freed_by_daemon <- stats.freed_by_daemon + 1;
  t.gstats.daemon_pages_stolen <- t.gstats.daemon_pages_stolen + 1;
  if tracing t then
    emit t ~stream:Trace.daemon_stream
      (Trace.Daemon_steal { vpn = f.vpn; owner = asp.As.pid });
  if f.dirty then begin
    f.dirty <- false;
    f.valid <- false;
    f.prefetched <- false;
    f.referenced <- false;
    f.freed_by <- Some Vm_stats.Daemon;
    f.free_site <- Trace.no_site;
    stats.writebacks <- stats.writebacks + 1;
    Some (seg, f.vpn, asp.As.pid, f, None)
  end
  else begin
    free_frame_locked t f ~freer:Vm_stats.Daemon ~site:Trace.no_site;
    None
  end

(* Scan up to [daemon_batch] frames from the clock hand.  Frames are grouped
   by owner: the daemon holds the owner's address-space lock (and the memory
   lock) for the whole run of consecutive same-owner frames, which is what
   starves fault handling under memory pressure. *)
let daemon_scan_batch t =
  let cfg = t.config in
  let nframes = Array.length t.frames in
  let free_shortage = Free_list.length t.free < cfg.desfree in
  let writebacks = ref [] in
  let scanned = ref 0 in
  while !scanned < cfg.daemon_batch do
    let f = t.frames.(t.clock_hand) in
    t.clock_hand <- (t.clock_hand + 1) mod nframes;
    if (not f.on_free_list) && f.owner >= 0 && f.freed_by = None then begin
      match Hashtbl.find_opt t.spaces f.owner with
      | None -> incr scanned
      | Some asp ->
          (* Gather the run of frames with the same owner. *)
          Semaphore.acquire asp.As.as_lock;
          Semaphore.acquire t.memory_lock;
          let run = ref 0 in
          let continue_run = ref true in
          let current = ref f in
          while !continue_run do
            let fr = !current in
            if
              (not fr.on_free_list)
              && fr.owner = asp.As.pid
              && fr.freed_by = None
            then begin
              (match daemon_visit_frame t asp fr ~free_shortage with
              | Some wb -> writebacks := wb :: !writebacks
              | None -> ());
              incr run;
              incr scanned;
              if !scanned >= cfg.daemon_batch then continue_run := false
              else begin
                let next = t.frames.(t.clock_hand) in
                if (not next.on_free_list) && next.owner = asp.As.pid then begin
                  t.clock_hand <- (t.clock_hand + 1) mod nframes;
                  current := next
                end
                else continue_run := false
              end
            end
            else continue_run := false
          done;
          (* Long lock hold: per-page processing cost for the whole run.
             Sampling a hardware reference bit is far cheaper than
             invalidating a mapping (no TLB shootdown IPIs). *)
          let per_page =
            if cfg.hw_ref_bits then cfg.daemon_page_scan_ns / 8
            else cfg.daemon_page_scan_ns
          in
          sys_delay t (per_page * max 1 !run);
          Semaphore.release t.memory_lock;
          Semaphore.release asp.As.as_lock
    end
    else incr scanned
  done;
  (* Writebacks happen without locks, in parallel; frames reach the free
     list as each write completes. *)
  writeback_and_free t (List.rev !writebacks)

(* The daemon is paced like IRIX's vhand: it wakes at a fixed interval and,
   while memory pressure persists, advances the clock hand by one batch per
   wakeup.  Pacing matters: the gap between the invalidation pass and the
   stealing pass over a frame is what gives processes a chance to
   re-reference (soft fault) pages still in their working set, and it makes
   the hand's cycle time scale with memory size — the property that lets an
   idle interactive task keep its pages for a while (Figure 1). *)
(* An interruptible tick: suspend with a timer waker that [shutdown] can
   also fire, so a shutdown does not have to wait out the interval.  The
   waited time is charged as [Sleep] like a plain delay would be. *)
let daemon_sleep t d =
  let t0 = Engine.now () in
  Engine.suspend (fun waker ->
      t.daemon_waker <- Some waker;
      Engine.wake_after t.engine d waker);
  t.daemon_waker <- None;
  Account.add (Engine.self ()).Engine.account Account.Sleep (Engine.now () - t0)

let paging_daemon_loop t () =
  let cfg = t.config in
  let active = ref false in
  while not t.stop do
    daemon_sleep t cfg.daemon_interval_ns;
    chaos_stall t `Daemon ~name:"daemon";
    if tracing t then
      emit t ~stream:Trace.kernel_stream
        (Trace.Free_depth { pages = Free_list.length t.free });
    if t.stop then ()
    else if !active then begin
      if reached_target t then active := false
      else begin
        daemon_scan_batch t;
        (* Under severe shortage (free list near empty, allocators possibly
           blocked), scan harder within the tick, like vhand under
           pressure. *)
        let extra = ref 0 in
        while Free_list.length t.free < cfg.min_freemem && !extra < 4 do
          incr extra;
          daemon_scan_batch t
        done
      end
    end
    else if memory_pressure t then begin
      active := true;
      t.gstats.daemon_activations <- t.gstats.daemon_activations + 1;
      daemon_scan_batch t
    end
  done

(* ------------------------------------------------------------------ *)
(* Phantom memory-pressure competitor                                  *)
(* ------------------------------------------------------------------ *)

(* Walk the plan's pressure spikes: at each start time grab up to [pages]
   frames straight off the free list (slamming [tot_freemem] the way a
   surging sibling process would), hold them, then give them back.  Grabbed
   frames are disassociated (owner -1, not on the list), so they sit in the
   same "unowned in-flight" class as frames being filled by a fault and the
   structural invariants keep holding mid-spike. *)
let chaos_phantom_loop t spikes () =
  List.iter
    (fun (start, pages, hold) ->
      let now = Engine.now () in
      if start > now then Engine.delay ~cat:Account.Sleep (start - now);
      if not t.stop then begin
        Semaphore.acquire t.memory_lock;
        let grabbed = ref [] in
        let n = ref 0 in
        let exhausted = ref false in
        while (not !exhausted) && !n < pages do
          match Free_list.pop_head t.free with
          | Some f ->
              disassociate t f;
              grabbed := f :: !grabbed;
              incr n
          | None -> exhausted := true
        done;
        Semaphore.release t.memory_lock;
        if !n > 0 then begin
          Chaos.note_pressure t.chaos ~pages:!n;
          if tracing t then
            emit t ~stream:Trace.chaos_stream
              (Trace.Chaos_pressure { pages = !n; hold });
          Engine.delay ~cat:Account.Sleep hold;
          Semaphore.acquire t.memory_lock;
          List.iter (fun f -> Free_list.push_tail t.free f) !grabbed;
          Condition.broadcast t.free_cond;
          Semaphore.release t.memory_lock;
          if tracing t then
            emit t ~stream:Trace.chaos_stream
              (Trace.Chaos_pressure_end { pages = !n })
        end
      end)
    spikes

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?swap_config ?tiers:tiers_spec ?(trace = Trace.null)
    ?(ledger = Ledger.null) ?(chaos = Chaos.none) ?(reqtrace = Reqtrace.null)
    ~config:(cfg : Config.t) ~engine () =
  let swap =
    Swap.create
      ?config:swap_config
      ~chaos ~trace ~reqtrace
      ~page_bytes:cfg.page_bytes ()
  in
  let frames = Array.init cfg.total_frames Frame.make in
  let free = Free_list.create frames in
  Array.iter (fun f -> Free_list.push_tail free f) frames;
  let t =
    {
      config = cfg;
      engine;
      swap;
      tiers = None;
      frames;
      free;
      free_cond = Condition.create ~name:"free-memory" ();
      memory_lock = Semaphore.create ~name:"memory-lock" 1;
      cpus = Semaphore.create ~name:"cpus" cfg.num_cpus;
      spaces = Hashtbl.create 16;
      space_list = [];
      releaser_box = Mailbox.create ~name:"releaser" ();
      gstats = Vm_stats.create_global ();
      trace;
      ledger;
      chaos;
      reqtrace;
      h_fault = Histogram.create ();
      h_prefetch = Histogram.create ();
      advisors = Hashtbl.create 4;
      clock_hand = 0;
      next_pid = 0;
      next_swap_page = 0;
      stop = false;
      daemon_waker = None;
    }
  in
  (match tiers_spec with
  | None -> ()
  | Some spec ->
      Trace.set_stream_name trace Trace.tier_stream "tiers";
      t.tiers <-
        Some
          (Tiers.create
             ~emit:(fun ev ->
               if tracing t then emit t ~stream:Trace.tier_stream ev)
             ~chaos ~trace ~engine ~page_bytes:cfg.page_bytes ~swap spec ()));
  Trace.set_stream_name trace Trace.daemon_stream "paging-daemon";
  Trace.set_stream_name trace Trace.releaser_stream "releaser-daemon";
  Trace.set_stream_name trace Trace.writeback_stream "writeback";
  Trace.set_stream_name trace Trace.kernel_stream "kernel";
  Trace.set_stream_name trace Trace.disk_stream "disk";
  ignore (Engine.spawn engine ~name:"paging-daemon" (paging_daemon_loop t));
  ignore (Engine.spawn engine ~name:"releaser-daemon" (releaser_loop t));
  if not (Chaos.is_none chaos) then
    Trace.set_stream_name trace Trace.chaos_stream "chaos";
  (match Chaos.pressure_spikes chaos with
  | [] -> ()
  | spikes ->
      ignore
        (Engine.spawn engine ~name:"chaos-phantom" (chaos_phantom_loop t spikes)));
  t

let shutdown t =
  if not t.stop then begin
    t.stop <- true;
    (* Wake both daemons: a poison message cuts the releaser's blocked
       [Mailbox.recv] short, and firing the timer waker ends the paging
       daemon's current tick early.  Both then observe [t.stop]. *)
    Mailbox.send t.releaser_box R_quit;
    match t.daemon_waker with Some w -> w () | None -> ()
  end

let set_eviction_advisor t (asp : As.t) advise =
  Hashtbl.replace t.advisors asp.As.pid advise

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let ok_free_count =
    let n = ref 0 in
    Array.iter (fun (f : Frame.t) -> if f.on_free_list then incr n) t.frames;
    !n = Free_list.length t.free
  in
  let ok_frame_pte =
    Array.for_all
      (fun (f : Frame.t) ->
        if f.owner < 0 then true
        else
          match Hashtbl.find_opt t.spaces f.owner with
          | None -> false
          | Some asp -> (
              match As.find_segment asp ~vpn:f.vpn with
              | exception Not_found -> false
              | seg -> (
                  match As.get_pte seg ~vpn:f.vpn with
                  | As.Resident i | As.On_free_list i -> i = f.idx
                  | _ -> false)))
      t.frames
  in
  let ok_rss =
    Hashtbl.fold
      (fun _ asp acc -> acc && As.resident_pages asp = asp.As.rss)
      t.spaces true
  in
  (* Frame conservation: every frame falls into exactly one of four
     classes — free, resident, writeback-in-flight (owned, PTE marked for
     rescue, waiting for its write to finish) or unowned-in-flight (popped
     by an allocator or the chaos phantom, not yet installed) — and the
     class populations sum back to the frame count.  A frame that fits no
     class (e.g. owned but pointing at someone else's PTE) is a leak. *)
  let free_ct = ref 0
  and resident_ct = ref 0
  and inflight_ct = ref 0
  and unclassified = ref 0 in
  Array.iter
    (fun (f : Frame.t) ->
      if f.on_free_list then incr free_ct
      else if f.owner < 0 then incr inflight_ct
      else
        let pte =
          match Hashtbl.find_opt t.spaces f.owner with
          | None -> None
          | Some asp -> (
              match As.find_segment asp ~vpn:f.vpn with
              | exception Not_found -> None
              | seg -> Some (As.get_pte seg ~vpn:f.vpn))
        in
        match pte with
        | Some (As.Resident i) when i = f.idx -> incr resident_ct
        | Some (As.On_free_list i) when i = f.idx && f.freed_by <> None ->
            incr inflight_ct
        | _ -> incr unclassified)
    t.frames;
  let total_rss =
    Hashtbl.fold (fun _ asp acc -> acc + asp.As.rss) t.spaces 0
  in
  let ok_conservation =
    !unclassified = 0
    && !free_ct + !resident_ct + !inflight_ct = Array.length t.frames
    && !resident_ct = total_rss
    && !free_ct = Free_list.length t.free
  in
  (* Free-list structure: every linked frame is flagged, no duplicates. *)
  let ok_free_membership =
    let seen = Array.make (Array.length t.frames) false in
    let ok = ref true in
    Free_list.iter t.free (fun f ->
        if seen.(f.Frame.idx) || not f.Frame.on_free_list then ok := false;
        seen.(f.Frame.idx) <- true);
    !ok
  in
  (* No page both on the free list and mapped without rescue marking: a
     listed frame still owned by a process must be reachable only through
     an [On_free_list] PTE (the rescue marking); a [Resident] PTE pointing
     at a listed frame would let the owner use memory the allocator is
     about to hand to someone else. *)
  let ok_rescue_marking =
    Array.for_all
      (fun (f : Frame.t) ->
        (not f.on_free_list) || f.owner < 0
        ||
        match Hashtbl.find_opt t.spaces f.owner with
        | None -> false
        | Some asp -> (
            match As.find_segment asp ~vpn:f.vpn with
            | exception Not_found -> false
            | seg -> (
                match As.get_pte seg ~vpn:f.vpn with
                | As.On_free_list i -> i = f.idx
                | _ -> false)))
      t.frames
  in
  (* Tiered store: reconcile the router's location map against frame-table
     residency — a page must never be simultaneously resident and
     tier-resident — and the zram occupancy against the map. *)
  let tier_checks =
    match t.tiers with
    | None -> []
    | Some tr ->
        Tiers.check tr ~resident:(fun ~pid ~vpn ->
            match Hashtbl.find_opt t.spaces pid with
            | None -> false
            | Some asp -> (
                match As.find_segment asp ~vpn with
                | exception Not_found -> false
                | seg -> (
                    match As.get_pte seg ~vpn with
                    | As.Resident _ -> true
                    | _ -> false)))
  in
  [
    ("free-list count matches frame flags", ok_free_count);
    ("owned frames agree with PTEs", ok_frame_pte);
    ("rss counters match page tables", ok_rss);
    ("frame conservation: free + resident + in-flight = total", ok_conservation);
    ("free-list membership is consistent and duplicate-free", ok_free_membership);
    ("listed frames are mapped only via rescue marking", ok_rescue_marking);
  ]
  @ tier_checks
