(** Fault-tolerant tiered backing store.

    Routes released pages across up to three stores: the local striped swap
    volume (tier 0, always present — every demotion writes through to it,
    so a durable failover copy always exists), a network far-memory tier
    (tier 1, {!Memhog_disk.Farmem}) and a compressed-RAM tier (tier 2,
    {!Memhog_disk.Zram}).  Placement follows the release directive's Eq. 2
    priority: low priorities (reuse far away) go to far memory, high ones
    (likely back soon) to compressed RAM; unattributed write-backs (paging
    daemon steals) keep the swap copy only.

    Robustness: a per-tier health monitor (failure-rate EWMA over request
    outcomes) drives a three-state circuit breaker on the far tier — closed
    until sustained timeouts push the EWMA over the opening threshold, then
    open (demotions fail over to local swap, reads go straight to the
    failover copy) with an exponentially growing hold-off, then half-open
    (a single probe request; success closes the breaker, failure re-opens
    it).  A read whose fast copy is unreachable is {e rescued} from the
    swap copy, so no fiber ever blocks on a dead tier.

    All decisions are functions of simulated time and deterministic state:
    byte-identical at any [--jobs]. *)

open Memhog_sim
module Swap = Memhog_disk.Swap
module Farmem = Memhog_disk.Farmem
module Zram = Memhog_disk.Zram

val tier_disk : int
val tier_far : int
val tier_zram : int

val tier_name : int -> string
(** ["disk"], ["far"], ["zram"]. *)

(** {1 Spec}

    Textual configuration, clauses joined by [+]:
    [far\[:latency=5us,bw=1000,timeout=500us,attempts=4,backoff=50us,cap=2ms\]],
    [zram\[:cap=16M,compress=900ns,decompress=400ns\]],
    [route\[:thresh=3,ewma=0.3,open=0.5,min=3,hold=50ms,cap=1s\]].
    At least one of [far]/[zram] must be named.  Times use the chaos DSL
    grammar ("500us", "2ms", bare seconds); sizes take K/M/G suffixes. *)

type route = {
  r_thresh : int;  (** priorities >= thresh go to zram, below to far *)
  r_ewma : float;  (** EWMA smoothing factor for the failure rate *)
  r_open : float;  (** breaker opens when the EWMA reaches this *)
  r_min : int;  (** samples required before the breaker may open *)
  r_hold : Time_ns.t;  (** initial open hold-off before a probe *)
  r_hold_cap : Time_ns.t;  (** hold-off saturation under repeated failure *)
}

val default_route : route

type spec = {
  sp_far : Farmem.params option;
  sp_zram : Zram.params option;
  sp_route : route;
}

val spec_of_string : string -> (spec, string) result
(** Parse a spec; [Error] describes the first malformed clause. *)

val spec_of_string_exn : string -> spec
(** @raise Invalid_argument on a malformed spec. *)

(** {1 Router} *)

type t

val create :
  ?emit:(Trace.event -> unit) ->
  ?chaos:Chaos.t ->
  ?trace:Trace.t ->
  engine:Engine.t ->
  page_bytes:int ->
  swap:Swap.t ->
  spec ->
  unit ->
  t
(** [emit] receives every tier event ({!Trace.Tier_demote} … and
    {!Trace.Breaker_transition}); the owner routes them to its observers.
    [chaos]/[trace] are handed to the far tier for its own fault hooks. *)

val demote : t -> page:int -> pid:int -> vpn:int -> site:int ->
  priority:int option -> unit
(** Place an additional fast-tier copy of a page whose durable copy the
    caller has already written to swap.  [priority = None] (daemon steal)
    places nothing.  An open far breaker, a dead link or a full carve-out
    fail the placement over to the swap copy (counted per tier). *)

val fetch :
  t -> ?cat:Account.category -> ?background:bool -> page:int -> unit -> unit
(** Blocking page read from wherever the page lives.  Fast-tier copies are
    consumed (exclusive load); unreachable copies are rescued from swap.
    Never raises, never blocks beyond the far tier's bounded retry plan. *)

val invalidate : t -> page:int -> unit
(** Drop any fast-tier copy (free, no simulated time): the page became
    resident by a route other than {!fetch} (free-list rescue). *)

val far_open : t -> bool
(** The far tier is configured and its breaker is currently open —
    the runtime's governor treats this as a reason to buffer locally. *)

(** {1 Introspection} *)

val rescues : t -> int
val far_failovers : t -> int
val zram_failovers : t -> int
val breaker_transitions : t -> int

val breaker_state : t -> int
(** 0 = closed, 1 = half-open, 2 = open. *)

val placed_pages : t -> int
val zram : t -> Zram.t option
val far : t -> Farmem.t option

val check : t -> resident:(pid:int -> vpn:int -> bool) -> (string * bool) list
(** Structural invariants against the caller's residency view: no placed
    page is simultaneously resident, and zram occupancy matches the
    location map exactly. *)

type tier_summary = {
  ts_tier : int;
  ts_reads : int;
  ts_writes : int;
  ts_timeouts : int;
  ts_retries : int;
  ts_rejects : int;
  ts_failovers : int;
  ts_breaker_transitions : int;
}

type summary = {
  s_tiers : tier_summary list;  (** tier-id order; disk always present *)
  s_rescues : int;
  s_breaker_state : int;
  s_placed : int;
  s_zram_amplification : float;
}

val summary : t -> summary
