(** The kernel: global frame pool, fault handler, paging daemon, releaser
    daemon, and the PagingDirected request interface (section 3.1).

    Everything here runs inside simulated processes.  Time is charged to the
    calling process: kernel CPU work as [System], disk waits as [Io_stall],
    lock and memory waits as [Resource_stall].

    Locking follows IRIX's coarse two-lock structure as described in the
    paper: a per-address-space lock serializes fault handling against the
    paging daemon's scans and the releaser (section 4.3: "the paging daemon
    ... holds locks on the address spaces of the processes from which pages
    are being stolen.  During this time, page faults for these virtual
    memory regions cannot be serviced"), and a global memory lock protects
    the free list.  The daemon holds the locks for long stretches (it
    scans and invalidates in bulk); the releaser is specialized and holds
    them only for small batches — reproducing the contention asymmetry the
    paper measures. *)

type t

type touch_result =
  | Fast              (** page resident and valid: no kernel involvement *)
  | Soft              (** revalidated after a daemon invalidation *)
  | Validated         (** first touch of a prefetched page *)
  | Hard              (** read from swap *)
  | Zero_filled       (** first touch of a fresh page *)
  | Rescued of Vm_stats.freer  (** recovered from the free list *)

type prefetch_result =
  | P_fetched       (** I/O performed; page now resident (unvalidated) *)
  | P_rescued       (** satisfied from the free list *)
  | P_already       (** already resident or in transit *)
  | P_dropped       (** discarded: no free memory (section 3.1.2) *)

val create :
  ?swap_config:Memhog_disk.Swap.config ->
  ?tiers:Tiers.spec ->
  ?trace:Memhog_sim.Trace.t ->
  ?ledger:Memhog_sim.Ledger.t ->
  ?chaos:Memhog_sim.Chaos.t ->
  ?reqtrace:Memhog_sim.Reqtrace.t ->
  config:Config.t ->
  engine:Memhog_sim.Engine.t ->
  unit ->
  t
(** Build the kernel state and spawn the paging daemon and releaser daemon
    processes.  [trace] (default {!Memhog_sim.Trace.null}) receives kernel
    events: faults, prefetch outcomes, daemon steals and invalidations,
    releaser frees and skips, writeback completions, and free-list depth
    samples at each daemon tick.

    [ledger] (default {!Memhog_sim.Ledger.null}) receives the same events
    directly at the emit point — independent of the trace ring's capacity —
    and folds them into the per-page lifecycle state machine and the
    per-directive-site efficacy table.

    [chaos] (default {!Memhog_sim.Chaos.none}) is the fault-injection plan:
    it is handed to every swap disk (transient errors and latency spikes),
    consulted by the releaser (stall windows, dropped directives — safe to
    drop, since residency bits were already cleared at request time and a
    re-touch soft-faults the page back) and the paging daemon (stall
    windows), and its [pressure] rules spawn a phantom-competitor fiber
    that grabs free frames at the planned times and holds them, slamming
    [tot_freemem] through Equation 1.

    [reqtrace] (default {!Memhog_sim.Reqtrace.null}) is the per-request
    blame layer: it is handed to every swap disk (demand arm-queue and
    service attribution), observes [Prefetch_done] events at the emit
    point (prefetch I/O spans for slack accounting), and is fed
    in-transit wait intervals from the fault path — all keyed by the
    faulting fiber's pid.

    [tiers] (default absent) installs a {!Tiers} router over the swap
    volume: released pages gain fast-tier copies (far memory, compressed
    RAM) routed by their Eq. 2 priorities, and page reads go to wherever
    the page lives, falling back to the durable swap copy when a tier is
    dead or its circuit breaker is open. *)

val config : t -> Config.t
val engine : t -> Memhog_sim.Engine.t

val trace : t -> Memhog_sim.Trace.t
(** The event trace this kernel emits into ({!Memhog_sim.Trace.null} when
    tracing was not requested); upper layers reuse it for their own
    events. *)

val ledger : t -> Memhog_sim.Ledger.t
(** The lifecycle ledger this kernel feeds ({!Memhog_sim.Ledger.null} when
    not requested); upper layers feed it their own events alongside the
    trace. *)

val chaos : t -> Memhog_sim.Chaos.t
(** The active fault plan ({!Memhog_sim.Chaos.none} when not injecting). *)

val reqtrace : t -> Memhog_sim.Reqtrace.t
(** The per-request blame layer this kernel feeds
    ({!Memhog_sim.Reqtrace.null} when not requested); the open-loop
    server drives request lifecycles on it. *)

val swap : t -> Memhog_disk.Swap.t

val tiers : t -> Tiers.t option
(** The tiered-store router, when one was requested at {!create}. *)

val tier_far_open : t -> bool
(** True when a far-memory tier exists and its circuit breaker is open —
    the runtime's governor buffers releases locally while this holds. *)

val global_stats : t -> Vm_stats.global

val fault_histogram : t -> Memhog_sim.Histogram.t
(** Service-time histogram (simulated ns) of every demand fault — any
    {!touch} that did not hit a resident valid page — measured from the
    trap to service completion, including lock waits, blocking frame
    allocation and swap I/O.  Always collected; recording is O(1). *)

val prefetch_histogram : t -> Memhog_sim.Histogram.t
(** Service-time histogram of completed prefetches ([P_fetched] and
    [P_rescued] outcomes only). *)

val free_pages : t -> int
val cpus : t -> Memhog_sim.Semaphore.t
(** Counting semaphore with one unit per CPU; application compute bursts
    acquire it. *)

(** {1 Process and memory setup} *)

val new_process : t -> name:string -> Address_space.t
val address_spaces : t -> Address_space.t list

val map_segment :
  t ->
  Address_space.t ->
  name:string ->
  bytes:int ->
  on_swap:bool ->
  Address_space.segment
(** Allocate a segment of the given size (rounded up to whole pages),
    backed by freshly assigned swap space. *)

val attach_paging_directed : t -> Address_space.t -> Address_space.segment -> unit

(** {1 Memory operations (called from process context)} *)

val touch : t -> Address_space.t -> vpn:int -> write:bool -> touch_result
(** Reference one virtual page, faulting as needed. *)

val prefetch :
  t -> ?site:int -> ?urgent:bool -> Address_space.t -> vpn:int -> prefetch_result
(** PagingDirected prefetch request: like a fault, except it is discarded
    when memory is exhausted, and the page is left unvalidated (no TLB
    entry) so it cannot displace active mappings.  [site] (default
    {!Memhog_sim.Trace.no_site}) is the static directive site stamped on
    the emitted prefetch events.  [urgent] (default [false]) rides the
    disk's demand class instead of the background class — for prefetches
    with a deadline (a request already queued behind the page), in the
    spirit of TIP's cost-benefit scheduling.  Capacity-driven sweeps ahead
    of a loop must stay non-urgent or they would starve everyone else's
    demand misses. *)

val release_request :
  t ->
  ?sites:int array ->
  ?priorities:int array ->
  Address_space.t ->
  vpns:int array ->
  unit
(** PagingDirected release request: clears the residency bits and posts the
    pages to the releaser daemon's work queue.  Non-blocking apart from the
    trap cost.  [sites] (parallel to [vpns]; defaults to all
    {!Memhog_sim.Trace.no_site}) carries each page's directive site through
    the releaser so frees, skips and later rescues stay attributable.
    [priorities] (parallel to [vpns]; defaults to unattributed) carries the
    Eq. 2 release priorities the tier router keys placement on; without a
    router it is ignored.
    @raise Invalid_argument when [sites] or [priorities] is given with a
    different length than [vpns]. *)

(** {1 Shared-page information (read-only to applications)} *)

val shared_current_usage : t -> Address_space.t -> int
val shared_upper_limit : t -> Address_space.t -> int
(** Equation 1: [min maxrss (current + free - min_freemem)], as of the last
    memory activity of this process. *)

val page_resident : Address_space.t -> vpn:int -> bool
(** Read the shared-page residency bit. *)

val set_eviction_advisor : t -> Address_space.t -> (unit -> int option) -> unit
(** Register a {e reactive} eviction advisor for the process (the VINO-style
    alternative of section 2.2): when the paging daemon decides to steal one
    of this process's pages, it first asks the advisor which page the
    application would rather surrender.  Section 2.2's argument — that a
    reactive scheme improves the application's own replacement but cannot
    protect other applications — is demonstrated by
    [bench/main.exe ext-reactive]. *)

(** {1 Control} *)

val shutdown : t -> unit
(** Stop the daemons: sets the stop flag, posts a poison message to the
    releaser (cutting its blocked mailbox receive short) and fires the
    paging daemon's tick timer early, so both quiesce promptly and
    [Engine.run] can drain without an explicit [Engine.stop]. *)

val check_invariants : t -> (string * bool) list
(** Structural invariants (for tests): frame/PTE agreement, free-list
    consistency, rss counters, frame conservation (every frame is exactly
    one of free / resident / in-flight, and the classes sum to the frame
    count), duplicate-free free-list membership, and the rescue-marking
    rule (no page both on the free list and mapped [Resident]).  Asserted
    after every chaos scenario in the test suite. *)
