type t = {
  frames : Frame.t array;
  mutable head : int;
  mutable tail : int;
  mutable length : int;
}

let create frames = { frames; head = -1; tail = -1; length = 0 }

let length t = t.length
let is_empty t = t.length = 0
(* Membership in *this* list: the frame must be flagged free and be one of
   the frames this list links through (frame identity, not just the flag —
   a frame on some other list's backing array is not a member here). *)
let mem t (f : Frame.t) =
  f.on_free_list
  && f.idx >= 0
  && f.idx < Array.length t.frames
  && t.frames.(f.idx) == f

let push_tail t (f : Frame.t) =
  if f.on_free_list then invalid_arg "Free_list.push_tail: already free";
  f.prev <- t.tail;
  f.next <- -1;
  f.on_free_list <- true;
  if t.tail >= 0 then t.frames.(t.tail).next <- f.idx else t.head <- f.idx;
  t.tail <- f.idx;
  t.length <- t.length + 1

let unlink t (f : Frame.t) =
  if not f.on_free_list then invalid_arg "Free_list.unlink: not on free list";
  if f.prev >= 0 then t.frames.(f.prev).next <- f.next else t.head <- f.next;
  if f.next >= 0 then t.frames.(f.next).prev <- f.prev else t.tail <- f.prev;
  f.prev <- -1;
  f.next <- -1;
  f.on_free_list <- false;
  t.length <- t.length - 1

let pop_head t =
  if t.head < 0 then None
  else begin
    let f = t.frames.(t.head) in
    unlink t f;
    Some f
  end

let remove t f = unlink t f

let iter t fn =
  let rec go idx =
    if idx >= 0 then begin
      let f = t.frames.(idx) in
      let next = f.next in
      fn f;
      go next
    end
  in
  go t.head
