(** Physical page frame metadata.

    A frame that is on the free list may still remember which (process,
    virtual page) last occupied it; until the frame is reallocated, that
    page can be "rescued" — returned to its process without I/O.  The
    [valid] flag is the software reference-bit proxy: the paging daemon
    clears it to sample references (the MIPS TLB has no reference bit), and
    a subsequent touch incurs a soft fault that sets it again. *)

type t = {
  idx : int;
  mutable owner : int;  (** owning pid, or [-1] when free and disassociated *)
  mutable vpn : int;    (** owning virtual page number, or [-1] *)
  mutable dirty : bool;
  mutable valid : bool; (** software ref-bit proxy (PTE/TLB validity) *)
  mutable referenced : bool; (** hardware ref bit, used when [hw_ref_bits] *)
  mutable prefetched : bool; (** resident but never touched: not validated *)
  mutable release_invalidated : bool;
      (** mapping invalidated by a release request rather than the daemon *)
  mutable age : int;    (** daemon visits since last (re)validation *)
  mutable freed_by : Vm_stats.freer option; (** set while on the free list *)
  mutable free_site : int;
      (** directive site whose release freed this frame ([-1] =
          {!Memhog_sim.Trace.no_site} for daemon steals); lets a later
          rescue be attributed to the releasing directive *)
  mutable next : int;   (** free-list link, or [-1] *)
  mutable prev : int;   (** free-list link, or [-1] *)
  mutable on_free_list : bool;
}

val make : int -> t

val reset_association : t -> unit
(** Forget owner/vpn and all page state (used on reallocation). *)

val pp : Format.formatter -> t -> unit
