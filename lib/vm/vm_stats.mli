(** Virtual-memory statistics.

    These counters are exactly the quantities the paper's evaluation
    reports: hard and soft fault counts (Figs 8, 10c), paging-daemon
    activations and pages stolen (Table 3), freed-page outcomes — who freed
    each page and whether it was rescued from the free list or lost
    (Fig 9) — and prefetch/release effectiveness. *)

type freer = Daemon | Releaser

val freer_name : freer -> string

(** Per-process counters. *)
type proc = {
  mutable hard_faults : int;      (** faults requiring swap I/O *)
  mutable soft_faults : int;      (** all revalidations *)
  mutable soft_faults_daemon : int;
      (** revalidations after daemon reference-bit invalidations (Figure 8) *)
  mutable validation_faults : int;(** first touch of a prefetched page *)
  mutable zero_fills : int;
  mutable rescued_daemon : int;   (** rescues of pages the daemon freed *)
  mutable rescued_releaser : int; (** rescues of pages freed by release *)
  mutable lost_daemon : int;      (** daemon-freed pages reallocated before
                                      they could be rescued *)
  mutable lost_releaser : int;
  mutable freed_by_daemon : int;  (** pages of this process stolen by daemon *)
  mutable freed_by_releaser : int;(** pages of this process explicitly released *)
  mutable releases_requested : int;
  mutable releases_skipped : int; (** re-referenced before the releaser acted *)
  mutable prefetches_issued : int;
  mutable prefetches_dropped : int; (** discarded: no free memory *)
  mutable prefetches_useless : int; (** already resident *)
  mutable prefetch_rescues : int;   (** satisfied from the free list *)
  mutable writebacks : int;
  mutable invalidations : int;    (** daemon invalidations of this process's
                                      pages (software ref-bit sampling) *)
}

val create_proc : unit -> proc
val add_proc : proc -> proc -> unit
val total_faults : proc -> int
val rescued : proc -> freer -> int
val freed_by : proc -> freer -> int

(** Global (system-wide) counters. *)
type global = {
  mutable daemon_activations : int;
      (** times the daemon went from idle to stealing (Table 3 "operations") *)
  mutable daemon_pages_stolen : int;
  mutable daemon_frames_scanned : int;
  mutable daemon_invalidations : int;
  mutable releaser_batches : int;
  mutable releaser_pages_freed : int;
  mutable allocations : int;
  mutable allocation_waits : int; (** allocations that had to block *)
}

val create_global : unit -> global

val add_global : global -> global -> unit
(** [add_global dst src] merges [src] into [dst] (field-wise sum), the
    global-counter counterpart of {!add_proc}. *)

val pp_proc : Format.formatter -> proc -> unit
val pp_global : Format.formatter -> global -> unit
