(** Per-process virtual address space: segments, page-table entries, and the
    PagingDirected shared page (residency bitmap + usage words).

    A process's data lives in named segments (one per application array in
    practice), each a contiguous range of virtual pages backed by a
    contiguous range of swap pages.  The "shared page" of section 3.1.1 is
    modelled by per-segment bit vectors plus the [current_usage] /
    [upper_limit] words; the OS updates them, applications (the run-time
    layer) read them. *)

type pte =
  | Untouched            (** never referenced: zero-filled on first touch *)
  | Resident of int      (** frame index *)
  | On_free_list of int  (** freed, but contents still intact in this frame *)
  | Swapped              (** contents only on swap *)
  | In_transit of unit Memhog_sim.Ivar.t
      (** a hard fault or prefetch is bringing the page in; other accessors
          wait on the ivar *)

(** Packed PTE words: state tag in the low 3 bits, frame number above.
    Every value is an immediate int, so a state transition is a plain array
    store with no per-transition allocation.  The in-transit tag carries no
    frame; its ivar lives in the segment's side table (see
    {!set_in_transit}/{!transit_ivar}). *)
module Pte : sig
  val tag_untouched : int
  val tag_swapped : int
  val tag_resident : int
  val tag_on_free_list : int
  val tag_in_transit : int

  val untouched : int
  (** the packed untouched word *)

  val swapped : int
  (** the packed swapped word *)

  val in_transit : int
  (** the packed in-transit word (tag only) *)

  val max_frame : int
  (** largest encodable frame number *)

  val resident : int -> int
  (** [resident f] packs frame [f] *)

  val on_free_list : int -> int
  (** [on_free_list f] packs frame [f] *)

  val tag : int -> int
  (** low 3 bits *)

  val frame : int -> int
  (** bits above the tag *)
end

type segment = {
  seg_name : string;
  base_vpn : int;
  npages : int;
  swap_base : int;
  ptes : int array;           (** packed {!Pte} words *)
  transit : (int, unit Memhog_sim.Ivar.t) Hashtbl.t;
      (** page offset -> ivar for in-transit pages (rare, transient) *)
  bits : Bytes.t;             (** residency bitmap (shared page) *)
  mutable pm_attached : bool; (** PagingDirected policy module connected *)
}

type t = {
  pid : int;
  as_name : string;
  as_lock : Memhog_sim.Semaphore.t;
  tlb : Tlb.t;
  mutable seg_arr : segment array;  (** sorted by [base_vpn]; [nsegs] live *)
  mutable nsegs : int;
  mutable last_hit : int;           (** index of the last [find_segment] hit *)
  mutable rss : int;                (** resident pages *)
  stats : Vm_stats.proc;
  mutable current_usage : int;      (** shared-page word, updated lazily *)
  mutable upper_limit : int;        (** shared-page word, updated lazily *)
  mutable next_vpn : int;
}

val create : ?tlb_entries:int -> pid:int -> name:string -> unit -> t

val add_segment :
  t -> name:string -> npages:int -> swap_base:int -> on_swap:bool -> segment
(** Allocate [npages] of fresh virtual address space.  [on_swap] marks the
    pages as having initial contents on swap (out-of-core input data);
    otherwise first touch zero-fills. *)

val attach_pm : t -> segment -> unit

val segments : t -> segment list
(** The mapped segments in [base_vpn] order.  Allocates a fresh list per
    call: hot callers should use {!iter_segments} or {!fold_segments}. *)

val iter_segments : t -> (segment -> unit) -> unit
(** Apply to each mapped segment in [base_vpn] order, allocation-free. *)

val fold_segments : t -> init:'a -> ('a -> segment -> 'a) -> 'a
(** Fold over the mapped segments in [base_vpn] order, allocation-free. *)

val find_segment : t -> vpn:int -> segment
(** Raises [Not_found] for an unmapped page.  O(1) when [vpn] lands in the
    segment of the previous hit (the common case: sweeps are sequential),
    O(log n segments) binary search otherwise — this is the per-translation
    hot path for every touch, prefetch, release and daemon scan. *)

val get_pte : segment -> vpn:int -> pte
(** Decoded view of the packed word (cold paths, tests). *)

val set_pte : segment -> vpn:int -> pte -> unit
(** Encode and store; [In_transit] routes through {!set_in_transit}. *)

val get_raw : segment -> vpn:int -> int
(** The packed {!Pte} word — the allocation-free hot-path read. *)

val set_raw : segment -> vpn:int -> int -> unit
(** Store a packed word.  Overwriting an in-transit entry drops its ivar
    from the side table.
    @raise Invalid_argument for the in-transit tag: use {!set_in_transit}. *)

val set_in_transit : segment -> vpn:int -> unit Memhog_sim.Ivar.t -> unit
(** Mark the page in transit and register the ivar accessors wait on. *)

val transit_ivar : segment -> vpn:int -> unit Memhog_sim.Ivar.t
(** The waiting ivar of an in-transit page.
    @raise Not_found when the page is not in transit. *)

val swap_page : segment -> vpn:int -> int

val bit : segment -> vpn:int -> bool
val set_bit : segment -> vpn:int -> bool -> unit

val resident_pages : t -> int
(** Recount of [Resident] PTEs (for invariant checks; [rss] is the running
    counter).  [In_transit] pages are not counted: a frame is charged to
    the resident set only once it is installed. *)
