open Memhog_sim
module Swap = Memhog_disk.Swap
module Disk = Memhog_disk.Disk
module Backend = Memhog_disk.Backend
module Farmem = Memhog_disk.Farmem
module Zram = Memhog_disk.Zram

(* Trace labels for the three stores.  0 is the local striped swap volume
   (always present, never breaks), 1 the network far-memory tier, 2 the
   compressed-RAM tier. *)
let tier_disk = 0
let tier_far = 1
let tier_zram = 2

let tier_name = function
  | 0 -> "disk"
  | 1 -> "far"
  | 2 -> "zram"
  | n -> Printf.sprintf "tier-%d" n

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

type route = {
  r_thresh : int;
  r_ewma : float;
  r_open : float;
  r_min : int;
  r_hold : Time_ns.t;
  r_hold_cap : Time_ns.t;
}

let default_route =
  {
    r_thresh = 3;
    r_ewma = 0.3;
    r_open = 0.5;
    r_min = 3;
    r_hold = Time_ns.ms 50;
    r_hold_cap = Time_ns.sec 1;
  }

type spec = {
  sp_far : Farmem.params option;
  sp_zram : Zram.params option;
  sp_route : route;
}

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Same time grammar as the chaos DSL: "500us", "2ms", "1s", bare = s. *)
let parse_time k s =
  let s = String.trim s in
  let n = String.length s in
  let rec split i =
    if i = 0 then bad "%s: bad time %S" k s
    else
      let c = s.[i - 1] in
      if (c >= '0' && c <= '9') || c = '.' then
        (String.sub s 0 i, String.sub s i (n - i))
      else split (i - 1)
  in
  if n = 0 then bad "%s: empty time" k;
  let num, unit_ = split n in
  let v =
    match float_of_string_opt num with
    | Some v when v >= 0.0 -> v
    | _ -> bad "%s: bad time %S" k s
  in
  let scale =
    match unit_ with
    | "ns" -> 1.0
    | "us" -> 1e3
    | "ms" -> 1e6
    | "" | "s" -> 1e9
    | u -> bad "%s: unknown time unit %S" k u
  in
  int_of_float (v *. scale)

let parse_bytes k s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then bad "%s: empty size" k;
  let last = s.[n - 1] in
  let mult, num =
    match last with
    | 'K' | 'k' -> (1024, String.sub s 0 (n - 1))
    | 'M' | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
    | 'G' | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
    | _ -> (1, s)
  in
  match int_of_string_opt num with
  | Some v when v > 0 -> v * mult
  | _ -> bad "%s: bad size %S" k s

let parse_int k s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad "%s: bad integer %S" k s

let parse_float k s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad "%s: bad number %S" k s

let parse_kvs clause body =
  List.filter_map
    (fun kv ->
      let kv = String.trim kv in
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | None -> bad "%s: expected key=value, got %S" clause kv
        | Some eq ->
            Some
              ( String.trim (String.sub kv 0 eq),
                String.sub kv (eq + 1) (String.length kv - eq - 1) ))
    (String.split_on_char ',' body)

let parse_far kvs =
  let p = ref Farmem.default_params in
  List.iter
    (fun (k, v) ->
      match k with
      | "latency" -> p := { !p with Farmem.base_latency_ns = parse_time k v }
      | "bw" -> p := { !p with Farmem.bandwidth_mb_s = parse_float k v }
      | "timeout" -> p := { !p with Farmem.timeout_ns = parse_time k v }
      | "attempts" -> p := { !p with Farmem.attempts = parse_int k v }
      | "backoff" -> p := { !p with Farmem.backoff_ns = parse_time k v }
      | "cap" -> p := { !p with Farmem.backoff_cap_ns = parse_time k v }
      | _ -> bad "far: unknown key %S" k)
    kvs;
  if !p.Farmem.attempts < 1 then bad "far: attempts must be >= 1";
  if !p.Farmem.bandwidth_mb_s <= 0.0 then bad "far: bw must be positive";
  if !p.Farmem.timeout_ns < 1 then bad "far: timeout must be positive";
  if !p.Farmem.backoff_ns < 1 then bad "far: backoff must be >= 1ns";
  if !p.Farmem.backoff_cap_ns < !p.Farmem.backoff_ns then
    bad "far: cap must be >= backoff";
  !p

let parse_zram kvs =
  let p = ref Zram.default_params in
  List.iter
    (fun (k, v) ->
      match k with
      | "cap" -> p := { !p with Zram.capacity_bytes = parse_bytes k v }
      | "compress" -> p := { !p with Zram.compress_ns_per_kb = parse_time k v }
      | "decompress" ->
          p := { !p with Zram.decompress_ns_per_kb = parse_time k v }
      | _ -> bad "zram: unknown key %S" k)
    kvs;
  !p

let parse_route kvs =
  let r = ref default_route in
  List.iter
    (fun (k, v) ->
      match k with
      | "thresh" -> r := { !r with r_thresh = parse_int k v }
      | "ewma" -> r := { !r with r_ewma = parse_float k v }
      | "open" -> r := { !r with r_open = parse_float k v }
      | "min" -> r := { !r with r_min = parse_int k v }
      | "hold" -> r := { !r with r_hold = parse_time k v }
      | "cap" -> r := { !r with r_hold_cap = parse_time k v }
      | _ -> bad "route: unknown key %S" k)
    kvs;
  if !r.r_ewma <= 0.0 || !r.r_ewma > 1.0 then bad "route: ewma out of (0,1]";
  if !r.r_open <= 0.0 || !r.r_open > 1.0 then bad "route: open out of (0,1]";
  if !r.r_min < 1 then bad "route: min must be >= 1";
  if !r.r_hold < 1 then bad "route: hold must be positive";
  if !r.r_hold_cap < !r.r_hold then bad "route: cap must be >= hold";
  !r

let spec_of_string s =
  try
    let far = ref None and zram = ref None and route = ref default_route in
    List.iter
      (fun clause ->
        let clause = String.trim clause in
        if clause = "" then bad "empty clause"
        else
          let name, body =
            match String.index_opt clause ':' with
            | None -> (clause, "")
            | Some c ->
                ( String.sub clause 0 c,
                  String.sub clause (c + 1) (String.length clause - c - 1) )
          in
          let kvs = parse_kvs name body in
          match String.trim name with
          | "far" ->
              if !far <> None then bad "duplicate far clause";
              far := Some (parse_far kvs)
          | "zram" ->
              if !zram <> None then bad "duplicate zram clause";
              zram := Some (parse_zram kvs)
          | "route" -> route := parse_route kvs
          | n -> bad "unknown tier %S (expected far, zram or route)" n)
      (String.split_on_char '+' s);
    if !far = None && !zram = None then
      bad "spec %S names no tier (add far and/or zram)" s;
    Ok { sp_far = !far; sp_zram = !zram; sp_route = !route }
  with Bad m -> Error m

let spec_of_string_exn s =
  match spec_of_string s with Ok sp -> sp | Error m -> invalid_arg m

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

type breaker_state = Closed | Half_open | Open

let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

type breaker = {
  mutable b_state : breaker_state;
  mutable b_ewma : float;  (* failure-rate EWMA in [0,1] *)
  mutable b_samples : int;
  mutable b_since : Time_ns.t;  (* last open time *)
  mutable b_hold : Time_ns.t;  (* current hold-off before a probe *)
  mutable b_probing : bool;
  mutable b_transitions : int;
}

type admit = A_no | A_normal | A_probe

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

type loc = { l_tier : int; l_pid : int; l_vpn : int; l_site : int }

type t = {
  route : route;
  swap : Swap.t;
  far : Farmem.t option;
  zram : Zram.t option;
  breaker : breaker;  (* health of the far tier; local tiers never break *)
  locs : (int, loc) Hashtbl.t;  (* swap page id -> fast-tier placement *)
  mutable far_failovers : int;
  mutable zram_failovers : int;
  mutable rescues : int;
  emit : Trace.event -> unit;
}

let create ?(emit = fun _ -> ()) ?chaos ?trace ~engine ~page_bytes ~swap spec
    () =
  let far =
    Option.map
      (fun params ->
        Farmem.create ~params ?chaos ?trace ~trace_id:tier_far ~engine
          ~page_bytes ())
      spec.sp_far
  in
  let zram =
    Option.map (fun params -> Zram.create ~params ~page_bytes ()) spec.sp_zram
  in
  {
    route = spec.sp_route;
    swap;
    far;
    zram;
    breaker =
      {
        b_state = Closed;
        b_ewma = 0.0;
        b_samples = 0;
        b_since = 0;
        b_hold = spec.sp_route.r_hold;
        b_probing = false;
        b_transitions = 0;
      };
    locs = Hashtbl.create 1024;
    far_failovers = 0;
    zram_failovers = 0;
    rescues = 0;
    emit;
  }

let far_open t = t.far <> None && t.breaker.b_state = Open
let rescues t = t.rescues
let far_failovers t = t.far_failovers
let zram_failovers t = t.zram_failovers
let breaker_transitions t = t.breaker.b_transitions
let breaker_state t = state_code t.breaker.b_state
let placed_pages t = Hashtbl.length t.locs
let zram t = t.zram
let far t = t.far

let transition t ~to_ =
  let b = t.breaker in
  if b.b_state <> to_ then begin
    let from = b.b_state in
    b.b_state <- to_;
    b.b_transitions <- b.b_transitions + 1;
    t.emit
      (Trace.Breaker_transition
         {
           tier = tier_far;
           state_from = state_code from;
           state_to = state_code to_;
         })
  end

(* Admission control for the far tier.  While open, requests are refused
   outright (callers fail over); once the hold-off elapses a single probe is
   let through half-open, and its outcome decides between closing and
   re-opening with a doubled hold-off. *)
let admit t ~now =
  let b = t.breaker in
  match b.b_state with
  | Closed -> A_normal
  | Open ->
      if now - b.b_since >= b.b_hold && not b.b_probing then begin
        transition t ~to_:Half_open;
        b.b_probing <- true;
        A_probe
      end
      else A_no
  | Half_open ->
      if b.b_probing then A_no
      else begin
        b.b_probing <- true;
        A_probe
      end

let record t ~now ~probe ~ok =
  let b = t.breaker in
  if probe then begin
    b.b_probing <- false;
    if ok then begin
      b.b_ewma <- 0.0;
      b.b_samples <- 0;
      b.b_hold <- t.route.r_hold;
      transition t ~to_:Closed
    end
    else begin
      b.b_hold <- min (b.b_hold * 2) t.route.r_hold_cap;
      b.b_since <- now;
      transition t ~to_:Open
    end
  end
  else begin
    b.b_samples <- b.b_samples + 1;
    b.b_ewma <-
      (t.route.r_ewma *. (if ok then 0.0 else 1.0))
      +. ((1.0 -. t.route.r_ewma) *. b.b_ewma);
    if
      b.b_state = Closed
      && b.b_samples >= t.route.r_min
      && b.b_ewma >= t.route.r_open
    then begin
      b.b_since <- now;
      transition t ~to_:Open
    end
  end

(* ------------------------------------------------------------------ *)
(* Demotion                                                            *)
(* ------------------------------------------------------------------ *)

let place_far t fm ~page =
  let now = Engine.now () in
  match admit t ~now with
  | A_no ->
      t.far_failovers <- t.far_failovers + 1;
      t.emit
        (Trace.Tier_failover { page; tier_from = tier_far; tier_to = tier_disk });
      false
  | (A_normal | A_probe) as a ->
      let ok =
        match Farmem.write_page ~background:true fm ~page with
        | Backend.W_ok _ -> true
        | Backend.W_rejected _ -> false
      in
      record t ~now:(Engine.now ()) ~probe:(a = A_probe) ~ok;
      if not ok then begin
        t.far_failovers <- t.far_failovers + 1;
        t.emit
          (Trace.Tier_failover
             { page; tier_from = tier_far; tier_to = tier_disk })
      end;
      ok

let place_zram t z ~page ~site =
  match Zram.write_page ~background:true ~site z ~page with
  | Backend.W_ok _ -> true
  | Backend.W_rejected _ ->
      t.zram_failovers <- t.zram_failovers + 1;
      t.emit
        (Trace.Tier_failover
           { page; tier_from = tier_zram; tier_to = tier_disk });
      false

(* The durable copy is already on local swap (the caller's write-back is
   unconditional); placement here is an additional fast copy.  Low Eq. 2
   priorities — reuse far away, if ever — go to the far tier; high ones,
   the pages most likely to come back soon, go to compressed RAM.  Pages
   with no priority (daemon steals) keep the swap copy only. *)
let demote t ~page ~pid ~vpn ~site ~priority =
  match priority with
  | None -> ()
  | Some prio ->
      let want_far = prio < t.route.r_thresh in
      let placed, tier =
        match (want_far, t.far, t.zram) with
        | true, Some fm, _ -> (place_far t fm ~page, tier_far)
        | false, _, Some z -> (place_zram t z ~page ~site, tier_zram)
        (* single-tier configs take everything routable to the tier present *)
        | true, None, Some z -> (place_zram t z ~page ~site, tier_zram)
        | false, Some fm, None -> (place_far t fm ~page, tier_far)
        | _, None, None -> (false, tier_disk)
      in
      if placed then begin
        Hashtbl.replace t.locs page
          { l_tier = tier; l_pid = pid; l_vpn = vpn; l_site = site };
        t.emit (Trace.Tier_demote { page; tier; site })
      end

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

(* Last resort: the fast copy is unreachable (dead link, breaker open,
   exhausted retries), so read the durable failover copy from local swap.
   Never fails — which is what bounds every fiber's wait. *)
let rescue t ~cat ~background ~page ~site =
  Hashtbl.remove t.locs page;
  Swap.read_page ~cat ~background t.swap ~page;
  t.rescues <- t.rescues + 1;
  t.emit (Trace.Tier_rescue { page; site })

let fetch_far t fm ~cat ~background ~page ~site =
  let now = Engine.now () in
  match admit t ~now with
  | A_no -> rescue t ~cat ~background ~page ~site
  | (A_normal | A_probe) as a -> (
      let r = Farmem.read_page ~cat ~background fm ~page in
      let ok = match r with Backend.R_ok _ -> true | Backend.R_failed _ -> false in
      record t ~now:(Engine.now ()) ~probe:(a = A_probe) ~ok;
      if ok then begin
        Hashtbl.remove t.locs page;
        t.emit (Trace.Tier_fetch { page; tier = tier_far })
      end
      else rescue t ~cat ~background ~page ~site)

let fetch_zram t z ~cat ~background ~page ~site =
  match Zram.read_page ~cat ~background z ~page with
  | Backend.R_ok _ ->
      Hashtbl.remove t.locs page;
      t.emit (Trace.Tier_fetch { page; tier = tier_zram })
  | Backend.R_failed _ ->
      (* location map said zram: only reachable if the copy vanished, which
         the invariants rule out — but recover anyway rather than trust. *)
      rescue t ~cat ~background ~page ~site

let fetch t ?(cat = Account.Io_stall) ?(background = false) ~page () =
  match Hashtbl.find_opt t.locs page with
  | None -> Swap.read_page ~cat ~background t.swap ~page
  | Some loc -> (
      match (loc.l_tier, t.far, t.zram) with
      | 1, Some fm, _ ->
          fetch_far t fm ~cat ~background ~page ~site:loc.l_site
      | 2, _, Some z -> fetch_zram t z ~cat ~background ~page ~site:loc.l_site
      | _ -> rescue t ~cat ~background ~page ~site:loc.l_site)

(* A page re-entering RAM by any route other than [fetch] (a rescue off the
   free list reinstalling the frame) must drop its fast-tier copy, or it
   would be resident and tier-resident at once.  Pure bookkeeping: the
   discarded copy is never read, so no simulated time passes. *)
let invalidate t ~page =
  match Hashtbl.find_opt t.locs page with
  | None -> ()
  | Some loc ->
      Hashtbl.remove t.locs page;
      if loc.l_tier = tier_zram then
        match t.zram with Some z -> Zram.drop z ~page | None -> ()

(* ------------------------------------------------------------------ *)
(* Invariants and summary                                              *)
(* ------------------------------------------------------------------ *)

(* Cross-checks between the router's location map and the VM the caller
   describes through [resident]: a placed page must not be resident, and
   the zram store must hold exactly the pages the map routes to it. *)
let check t ~resident =
  let ok_exclusive = ref true in
  let zram_mapped = ref 0 in
  Hashtbl.iter
    (fun _page loc ->
      if resident ~pid:loc.l_pid ~vpn:loc.l_vpn then ok_exclusive := false;
      if loc.l_tier = tier_zram then incr zram_mapped)
    t.locs;
  let ok_zram_match =
    match t.zram with
    | None -> !zram_mapped = 0
    | Some z ->
        Hashtbl.fold
          (fun page loc acc ->
            acc
            && (loc.l_tier <> tier_zram || Zram.contains z ~page))
          t.locs
          (Zram.stored_pages z = !zram_mapped)
  in
  [
    ("no page both resident and tier-resident", !ok_exclusive);
    ("zram occupancy matches the location map", ok_zram_match);
  ]

type tier_summary = {
  ts_tier : int;
  ts_reads : int;
  ts_writes : int;
  ts_timeouts : int;
  ts_retries : int;
  ts_rejects : int;
  ts_failovers : int;
  ts_breaker_transitions : int;
}

type summary = {
  s_tiers : tier_summary list;  (* in tier-id order; disk always present *)
  s_rescues : int;
  s_breaker_state : int;  (* far breaker at summary time: 0/1/2 *)
  s_placed : int;  (* pages currently held in a fast tier *)
  s_zram_amplification : float;  (* 1.0 when zram is absent or empty *)
}

let summary t =
  let disk_row =
    let timeouts =
      Array.fold_left
        (fun acc d -> acc + Disk.timeouts d)
        0 (Swap.disks t.swap)
    in
    {
      ts_tier = tier_disk;
      ts_reads = Swap.page_reads t.swap;
      ts_writes = Swap.page_writes t.swap;
      ts_timeouts = timeouts;
      ts_retries = 0;
      ts_rejects = 0;
      ts_failovers = 0;
      ts_breaker_transitions = 0;
    }
  in
  let of_stats tier (st : Backend.stats) ~failovers ~transitions =
    {
      ts_tier = tier;
      ts_reads = st.Backend.reads;
      ts_writes = st.Backend.writes;
      ts_timeouts = st.Backend.timeouts;
      ts_retries = st.Backend.retries;
      ts_rejects = st.Backend.rejects;
      ts_failovers = failovers;
      ts_breaker_transitions = transitions;
    }
  in
  let rows =
    [ Some disk_row;
      Option.map
        (fun fm ->
          of_stats tier_far (Farmem.stats fm) ~failovers:t.far_failovers
            ~transitions:t.breaker.b_transitions)
        t.far;
      Option.map
        (fun z ->
          of_stats tier_zram (Zram.stats z) ~failovers:t.zram_failovers
            ~transitions:0)
        t.zram ]
    |> List.filter_map Fun.id
  in
  {
    s_tiers = rows;
    s_rescues = t.rescues;
    s_breaker_state = state_code t.breaker.b_state;
    s_placed = Hashtbl.length t.locs;
    s_zram_amplification =
      (match t.zram with None -> 1.0 | Some z -> Zram.amplification z);
  }
