module IntMap = Map.Make (Int)

(* Tag queues at one priority level form an intrusive doubly-linked list in
   insertion order, so appending a new tag and dropping an emptied one are
   both O(1).  The old representation kept a plain list per level and paid
   O(n) for the [qs @ [q]] append and the [List.filter] removal — quadratic
   over a simulation that cycles through thousands of tags. *)
type tag_queue = {
  tq_tag : int;
  tq_priority : int;
  tq_pages : int Queue.t;
  mutable tq_prev : tag_queue option;
  mutable tq_next : tag_queue option;
}

type level = {
  mutable lv_head : tag_queue option;
  mutable lv_tail : tag_queue option;
}

type t = {
  mutable by_priority : level IntMap.t;
  tags : (int, tag_queue) Hashtbl.t;
  mutable total : int;
}

let create () = { by_priority = IntMap.empty; tags = Hashtbl.create 32; total = 0 }

let append_queue t q =
  let level =
    match IntMap.find_opt q.tq_priority t.by_priority with
    | Some lv -> lv
    | None ->
        let lv = { lv_head = None; lv_tail = None } in
        t.by_priority <- IntMap.add q.tq_priority lv t.by_priority;
        lv
  in
  (match level.lv_tail with
  | None -> level.lv_head <- Some q
  | Some tail ->
      tail.tq_next <- Some q;
      q.tq_prev <- Some tail);
  level.lv_tail <- Some q

(* Unlink an emptied queue from its level; drop the level when it empties. *)
let drop_queue t q =
  Hashtbl.remove t.tags q.tq_tag;
  (match IntMap.find_opt q.tq_priority t.by_priority with
  | None -> ()
  | Some level ->
      (match q.tq_prev with
      | Some p -> p.tq_next <- q.tq_next
      | None -> level.lv_head <- q.tq_next);
      (match q.tq_next with
      | Some n -> n.tq_prev <- q.tq_prev
      | None -> level.lv_tail <- q.tq_prev);
      if level.lv_head = None then
        t.by_priority <- IntMap.remove q.tq_priority t.by_priority);
  q.tq_prev <- None;
  q.tq_next <- None

let add t ~tag ~priority ~vpn =
  if priority <= 0 then invalid_arg "Release_buffer.add: priority must be > 0";
  let q =
    match Hashtbl.find_opt t.tags tag with
    | Some q ->
        if q.tq_priority <> priority then
          invalid_arg "Release_buffer.add: tag reused with a different priority";
        q
    | None ->
        let q =
          {
            tq_tag = tag;
            tq_priority = priority;
            tq_pages = Queue.create ();
            tq_prev = None;
            tq_next = None;
          }
        in
        Hashtbl.replace t.tags tag q;
        append_queue t q;
        q
  in
  Queue.add vpn q.tq_pages;
  t.total <- t.total + 1

let total t = t.total
let queue_count t = Hashtbl.length t.tags

let lowest_priority t =
  match IntMap.min_binding_opt t.by_priority with
  | Some (p, _) -> Some p
  | None -> None

let pop_lowest t ~max =
  let out = ref [] in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max do
    match IntMap.min_binding_opt t.by_priority with
    | None -> continue_ := false
    | Some (_, level) ->
        (* One page from each queue at this priority, round-robin in tag
           insertion order, until the budget is spent or the level empties
           (emptied queues are unlinked as we pass them). *)
        let cursor = ref level.lv_head in
        while !n < max && level.lv_head <> None do
          match !cursor with
          | None -> cursor := level.lv_head (* wrap: next round *)
          | Some q ->
              let next = q.tq_next in
              (match Queue.take_opt q.tq_pages with
              | Some vpn ->
                  out := (vpn, q.tq_tag, q.tq_priority) :: !out;
                  incr n;
                  t.total <- t.total - 1
              | None -> ());
              if Queue.is_empty q.tq_pages then drop_queue t q;
              cursor := next
        done
  done;
  Array.of_list (List.rev !out)

let flush_tag t ~tag =
  match Hashtbl.find_opt t.tags tag with
  | None -> [||]
  | Some q ->
      let len = Queue.length q.tq_pages in
      let out = Array.make len 0 in
      for i = 0 to len - 1 do
        out.(i) <- Queue.pop q.tq_pages
      done;
      t.total <- t.total - len;
      drop_queue t q;
      out
