(** The run-time layer (section 3.3, Figure 6).

    Sits between the instrumented application and the OS.  It filters
    obviously-bad requests using the shared page's residency bitmap and a
    per-tag "one request behind" check, issues the surviving requests
    through a pool of helper threads (the pthreads of the paper — IRIX gave
    user programs no asynchronous I/O), and implements the two release
    policies the paper compares:

    - {b Aggressive}: issue every surviving release to the OS immediately;
    - {b Buffered}: issue zero-priority releases immediately, buffer the
      rest in priority queues, and drain ~[release_target] pages from the
      lowest-priority queues whenever the process's memory usage approaches
      the upper limit published by the OS. *)

type policy =
  | Aggressive
  | Buffered
  | Reactive
      (** section 2.2's alternative: never release proactively; hold every
          releasable page and surrender the least-valuable one only when
          the OS asks (via {!advise_evict}, wired to
          {!Memhog_vm.Os.set_eviction_advisor}) *)

val policy_name : policy -> string

type stats = {
  mutable rt_prefetch_requests : int;   (** seen from the application *)
  mutable rt_prefetch_filtered : int;   (** dropped: already resident *)
  mutable rt_prefetch_enqueued : int;
  mutable rt_release_requests : int;
  mutable rt_release_filtered_bitmap : int; (** dropped: not resident *)
  mutable rt_release_filtered_same : int;   (** dropped: same page as the
                                                previous request of the tag *)
  mutable rt_release_issued : int;      (** handed to the OS *)
  mutable rt_release_buffered : int;
  mutable rt_buffer_drains : int;
  mutable rt_release_stale_dropped : int;
      (** buffered entries found non-resident at drain time (the OS stole or
          freed the page first) and silently dropped before issue *)
}

type t

val create :
  ?nthreads:int ->
  ?release_target:int ->
  ?headroom:int ->
  ?filter_ns:Memhog_sim.Time_ns.t ->
  os:Memhog_vm.Os.t ->
  asp:Memhog_vm.Address_space.t ->
  policy:policy ->
  unit ->
  t
(** [release_target] is the number of pages drained per buffering decision
    (the paper fixes 100 and notes it did not experiment with it);
    [headroom] is how close to the upper limit usage may get before a
    drain; [filter_ns] is the per-request user-time cost of the checks. *)

val start : t -> unit
(** Spawn the helper threads (call once, from any process or before run). *)

val policy : t -> policy
val stats : t -> stats
val buffered_pages : t -> int

val prefetch_page : t -> vpn:int -> unit
(** Called by the application for each page named by a compiler prefetch
    hint.  Cheap: filters and enqueues. *)

val release_page : t -> vpn:int -> priority:int -> tag:int -> unit
(** Called for each page named by a compiler release hint. *)

val advise_evict : t -> int option
(** Reactive path: the page the application prefers to surrender (lowest
    priority first), or [None] when it holds nothing releasable. *)

val drain : t -> unit
(** Application exit: flush the one-behind filter's recorded pages and
    force-issue all buffered releases. *)
