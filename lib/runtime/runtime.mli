(** The run-time layer (section 3.3, Figure 6).

    Sits between the instrumented application and the OS.  It filters
    obviously-bad requests using the shared page's residency bitmap and a
    per-tag "one request behind" check, issues the surviving requests
    through a pool of helper threads (the pthreads of the paper — IRIX gave
    user programs no asynchronous I/O), and implements the two release
    policies the paper compares:

    - {b Aggressive}: issue every surviving release to the OS immediately;
    - {b Buffered}: issue zero-priority releases immediately, buffer the
      rest in priority queues, and drain ~[release_target] pages from the
      lowest-priority queues whenever the process's memory usage approaches
      the upper limit published by the OS. *)

type policy =
  | Aggressive
  | Buffered
  | Reactive
      (** section 2.2's alternative: never release proactively; hold every
          releasable page and surrender the least-valuable one only when
          the OS asks (via {!advise_evict}, wired to
          {!Memhog_vm.Os.set_eviction_advisor}) *)

val policy_name : policy -> string

type stats = {
  mutable rt_prefetch_requests : int;   (** seen from the application *)
  mutable rt_prefetch_filtered : int;   (** dropped: already resident *)
  mutable rt_prefetch_enqueued : int;
  mutable rt_release_requests : int;
  mutable rt_release_filtered_bitmap : int; (** dropped: not resident *)
  mutable rt_release_filtered_same : int;   (** dropped: same page as the
                                                previous request of the tag *)
  mutable rt_release_issued : int;      (** handed to the OS *)
  mutable rt_release_buffered : int;
  mutable rt_buffer_drains : int;
  mutable rt_release_stale_dropped : int;
      (** buffered entries found non-resident at drain time (the OS stole or
          freed the page first) and silently dropped before issue *)
  mutable rt_prefetch_os_done : int;
      (** enqueued prefetches the OS completed (fetched, rescued or found
          already resident) *)
  mutable rt_prefetch_os_dropped : int;
      (** enqueued prefetches the OS discarded for lack of free memory *)
  mutable rt_gov_level : int;  (** current degradation level, 0..2 *)
  mutable rt_gov_degrades : int;  (** level-up transitions *)
  mutable rt_gov_recoveries : int;  (** level-down transitions *)
  mutable rt_gov_suppressed : int;
      (** hints swallowed while at level 2 (directives off) *)
  mutable rt_tier_buffered : int;
      (** releases the tier-aware rung forced into the buffer because the
          far-memory circuit breaker was open at hint time
          ({!Memhog_vm.Os.tier_far_open}) *)
}

(** Hysteresis parameters of the graceful-degradation governor.  The
    governor watches two rolling-window signals — the OS-side prefetch drop
    rate and the release badness rate (stale drops + releaser rescues over
    issues) — and walks a degradation ladder: level 0 runs the configured
    policy, level 1 forces {!Aggressive} (no buffering: under an active
    fault, held pages only go stale), level 2 turns directives off entirely
    (pure demand paging).  A window is {e bad} when it holds at least
    [gv_min_samples] observations and either signal reaches [gv_bad_rate];
    [gv_degrade_after] consecutive bad windows move one level down the
    ladder, [gv_recover_after] consecutive good windows move one level back
    up.  At level 2 hints are suppressed, so windows go quiet and count as
    good — recovery probes back to level 1 and re-degrades if the fault
    persists.  Every transition is a {!Memhog_sim.Trace.Governor_transition}
    event and a counter.

    Windows are closed lazily on hint arrival (zero simulated-time cost),
    never by a dedicated fiber — so enabling the governor does not perturb
    the engine schedule of a healthy run. *)
type governor_cfg = {
  gv_window_ns : Memhog_sim.Time_ns.t;  (** rolling window length *)
  gv_min_samples : int;  (** observations needed to judge a window *)
  gv_bad_rate : float;  (** signal threshold in [0,1] *)
  gv_degrade_after : int;  (** consecutive bad windows per level down *)
  gv_recover_after : int;  (** consecutive good windows per level up *)
}

val default_governor : governor_cfg
(** 200 ms windows, 8 samples, 0.5 bad-rate, degrade after 2, recover
    after 4. *)

type t

val create :
  ?nthreads:int ->
  ?release_target:int ->
  ?headroom:int ->
  ?filter_ns:Memhog_sim.Time_ns.t ->
  ?governor:governor_cfg ->
  os:Memhog_vm.Os.t ->
  asp:Memhog_vm.Address_space.t ->
  policy:policy ->
  unit ->
  t
(** [release_target] is the number of pages drained per buffering decision
    (the paper fixes 100 and notes it did not experiment with it);
    [headroom] is how close to the upper limit usage may get before a
    drain; [filter_ns] is the per-request user-time cost of the checks.
    [governor] (default off) enables graceful degradation — it is switched
    on by the experiment driver whenever a chaos plan is active. *)

val start : t -> unit
(** Spawn the helper threads (call once, from any process or before run). *)

val policy : t -> policy
val stats : t -> stats
val buffered_pages : t -> int

val governor_level : t -> int
(** Current degradation level (always 0 when the governor is off). *)

val prefetch_page : ?site:int -> ?urgent:bool -> t -> vpn:int -> unit
(** Called by the application for each page named by a compiler prefetch
    hint.  Cheap: filters and enqueues.  [site] (default
    {!Memhog_sim.Trace.no_site}) is the static directive tag
    ({!Memhog_compiler.Pir.directive}[.d_tag]); it travels with the work
    item so OS-side events remain attributable to the directive.  [urgent]
    (default [false]) marks a prefetch with a deadline — a consumer is
    already waiting on the page — and rides the disk's demand class
    ({!Memhog_vm.Os.prefetch}). *)

val release_page : t -> vpn:int -> priority:int -> tag:int -> unit
(** Called for each page named by a compiler release hint.  [tag] doubles
    as the directive's site id and is preserved through the one-behind
    filter, the priority buffer and the OS queue.  Non-positive
    priorities mean "no reuse expected" and always route to the immediate
    path, never into the priority buffer (whose {!Release_buffer.add}
    rejects them): under {!Buffered}, [priority <= 0] is issued directly;
    under {!Reactive}, [priority < 0] is issued directly and [priority = 0]
    is held at the buffer's minimum level. *)

val advise_evict : t -> int option
(** Reactive path: the page the application prefers to surrender (lowest
    priority first), or [None] when it holds nothing releasable. *)

val drain : t -> unit
(** Application exit: flush the one-behind filter's recorded pages and
    force-issue all buffered releases. *)
