open Memhog_sim
module Os = Memhog_vm.Os
module As = Memhog_vm.Address_space

type policy = Aggressive | Buffered | Reactive

let policy_name = function
  | Aggressive -> "aggressive"
  | Buffered -> "buffered"
  | Reactive -> "reactive"

type stats = {
  mutable rt_prefetch_requests : int;
  mutable rt_prefetch_filtered : int;
  mutable rt_prefetch_enqueued : int;
  mutable rt_release_requests : int;
  mutable rt_release_filtered_bitmap : int;
  mutable rt_release_filtered_same : int;
  mutable rt_release_issued : int;
  mutable rt_release_buffered : int;
  mutable rt_buffer_drains : int;
  mutable rt_release_stale_dropped : int;
  mutable rt_prefetch_os_done : int;
  mutable rt_prefetch_os_dropped : int;
  mutable rt_gov_level : int;
  mutable rt_gov_degrades : int;
  mutable rt_gov_recoveries : int;
  mutable rt_gov_suppressed : int;
  mutable rt_tier_buffered : int;
      (* releases the tier-aware rung forced into the buffer because the
         far-memory breaker was open at hint time *)
}

type governor_cfg = {
  gv_window_ns : Time_ns.t;
  gv_min_samples : int;
  gv_bad_rate : float;
  gv_degrade_after : int;
  gv_recover_after : int;
}

let default_governor =
  {
    gv_window_ns = Time_ns.ms 200;
    gv_min_samples = 8;
    gv_bad_rate = 0.5;
    gv_degrade_after = 2;
    gv_recover_after = 4;
  }

(* Work items carry the static directive site so the OS-side events stay
   attributable after the asynchronous hop through the helper threads. *)
type work =
  | W_prefetch of int * int * bool  (* vpn, site, urgent *)
  | W_release of (int * int * int) array  (* (vpn, site, priority) triples *)

type t = {
  os : Os.t;
  asp : As.t;
  pol : policy;
  nthreads : int;
  release_target : int;
  headroom : int;
  filter_ns : int;
  queue : work Mailbox.t;
  buffer : Release_buffer.t;
  last_release : (int, int * int) Hashtbl.t;
      (* tag -> (page, priority) recorded when first seen, one behind; the
         priority travels with the page so a displaced entry lands in the
         Eq. 2 queue it was hinted with, not the successor's *)
  st : stats;
  mutable started : bool;
  gov : governor_cfg option;
  (* Rolling-window snapshots for the governor (deltas against [st]). *)
  mutable g_window_start : int;
  mutable g_bad_streak : int;
  mutable g_good_streak : int;
  mutable g_pf_done : int;
  mutable g_pf_dropped : int;
  mutable g_stale : int;
  mutable g_rescued : int;
  mutable g_issued : int;
}

(* Events feed both the trace ring and the lifecycle ledger; a single guard
   keeps the hot path to one branch when neither observer is on. *)
let tracing t =
  Trace.enabled (Os.trace t.os) || Ledger.enabled (Os.ledger t.os)

let emit t ev =
  let time = Engine.now_of (Os.engine t.os) in
  Trace.emit (Os.trace t.os) ~time ~stream:t.asp.As.pid ev;
  Ledger.observe (Os.ledger t.os) ~time ~stream:t.asp.As.pid ev

let create ?(nthreads = 16) ?(release_target = 100) ?(headroom = 0)
    ?(filter_ns = 200) ?governor ~os ~asp ~policy () =
  {
    os;
    asp;
    pol = policy;
    nthreads;
    release_target;
    headroom;
    filter_ns;
    queue = Mailbox.create ~name:"runtime-work" ();
    buffer = Release_buffer.create ();
    last_release = Hashtbl.create 64;
    st =
      {
        rt_prefetch_requests = 0;
        rt_prefetch_filtered = 0;
        rt_prefetch_enqueued = 0;
        rt_release_requests = 0;
        rt_release_filtered_bitmap = 0;
        rt_release_filtered_same = 0;
        rt_release_issued = 0;
        rt_release_buffered = 0;
        rt_buffer_drains = 0;
        rt_release_stale_dropped = 0;
        rt_prefetch_os_done = 0;
        rt_prefetch_os_dropped = 0;
        rt_gov_level = 0;
        rt_gov_degrades = 0;
        rt_gov_recoveries = 0;
        rt_gov_suppressed = 0;
        rt_tier_buffered = 0;
      };
    started = false;
    gov = governor;
    g_window_start = 0;
    g_bad_streak = 0;
    g_good_streak = 0;
    g_pf_done = 0;
    g_pf_dropped = 0;
    g_stale = 0;
    g_rescued = 0;
    g_issued = 0;
  }

let policy t = t.pol
let stats t = t.st
let buffered_pages t = Release_buffer.total t.buffer

(* Helper threads: issue prefetches and release requests to the
   PagingDirected PM, waiting out the I/O so the application does not. *)
let thread_loop t () =
  while true do
    match Mailbox.recv t.queue with
    | W_prefetch (vpn, site, urgent) -> (
        match Os.prefetch t.os t.asp ~vpn ~site ~urgent with
        | Os.P_dropped ->
            t.st.rt_prefetch_os_dropped <- t.st.rt_prefetch_os_dropped + 1
        | Os.P_fetched | Os.P_rescued | Os.P_already ->
            t.st.rt_prefetch_os_done <- t.st.rt_prefetch_os_done + 1)
    | W_release triples ->
        Os.release_request t.os t.asp
          ~vpns:(Array.map (fun (vpn, _, _) -> vpn) triples)
          ~sites:(Array.map (fun (_, site, _) -> site) triples)
          ~priorities:(Array.map (fun (_, _, prio) -> prio) triples)
  done

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 1 to t.nthreads do
      ignore
        (Engine.spawn (Os.engine t.os)
           ~name:(Printf.sprintf "%s-rt-thread-%d" t.asp.As.as_name i)
           (thread_loop t))
    done
  end

let charge_filter t = Engine.delay ~cat:Account.User t.filter_ns

(* --- Graceful-degradation governor -------------------------------- *)

(* The governor is evaluated lazily on hint arrival rather than by its own
   fiber: a fiber would perturb the engine's schedule (and thus every
   committed baseline) even when healthy, whereas closing a window inside
   an already-running hint call costs zero simulated time.  Degradation
   ladder: level 0 = the configured policy, level 1 = force Aggressive
   (stop buffering — under faults, held pages go stale), level 2 =
   directives off (pure demand paging).  At level 2 hints are suppressed,
   so windows go quiet and count as good: recovery probes back to level 1,
   and re-degrades if the fault persists. *)

let gov_transition t ~level_to ~drop_pct ~stale_pct =
  let level_from = t.st.rt_gov_level in
  t.st.rt_gov_level <- level_to;
  if level_to > level_from then
    t.st.rt_gov_degrades <- t.st.rt_gov_degrades + 1
  else t.st.rt_gov_recoveries <- t.st.rt_gov_recoveries + 1;
  if tracing t then
    emit t (Trace.Governor_transition { level_from; level_to; drop_pct; stale_pct })

let gov_tick t =
  match t.gov with
  | None -> ()
  | Some cfg ->
      let now = Engine.now_of (Os.engine t.os) in
      if now - t.g_window_start >= cfg.gv_window_ns then begin
        let pf_done = t.st.rt_prefetch_os_done - t.g_pf_done in
        let pf_dropped = t.st.rt_prefetch_os_dropped - t.g_pf_dropped in
        let stale = t.st.rt_release_stale_dropped - t.g_stale in
        let rescued = t.asp.As.stats.rescued_releaser - t.g_rescued in
        let issued = t.st.rt_release_issued - t.g_issued in
        let pf_total = pf_done + pf_dropped in
        let drop_rate = float_of_int pf_dropped /. float_of_int (max 1 pf_total) in
        (* Release badness: hints that aged out in the buffer (stale drops)
           or were issued so early the OS had to rescue the page back. *)
        let stale_rate =
          float_of_int (stale + rescued) /. float_of_int (max 1 issued)
        in
        let bad =
          pf_total + issued >= cfg.gv_min_samples
          && (drop_rate >= cfg.gv_bad_rate || stale_rate >= cfg.gv_bad_rate)
        in
        let drop_pct = int_of_float (drop_rate *. 100.0) in
        let stale_pct = int_of_float (stale_rate *. 100.0) in
        if bad then begin
          t.g_good_streak <- 0;
          t.g_bad_streak <- t.g_bad_streak + 1;
          if t.g_bad_streak >= cfg.gv_degrade_after && t.st.rt_gov_level < 2
          then begin
            gov_transition t ~level_to:(t.st.rt_gov_level + 1) ~drop_pct
              ~stale_pct;
            t.g_bad_streak <- 0
          end
        end
        else begin
          t.g_bad_streak <- 0;
          t.g_good_streak <- t.g_good_streak + 1;
          if t.g_good_streak >= cfg.gv_recover_after && t.st.rt_gov_level > 0
          then begin
            gov_transition t ~level_to:(t.st.rt_gov_level - 1) ~drop_pct
              ~stale_pct;
            t.g_good_streak <- 0
          end
        end;
        t.g_window_start <- now;
        t.g_pf_done <- t.st.rt_prefetch_os_done;
        t.g_pf_dropped <- t.st.rt_prefetch_os_dropped;
        t.g_stale <- t.st.rt_release_stale_dropped;
        t.g_rescued <- t.asp.As.stats.rescued_releaser;
        t.g_issued <- t.st.rt_release_issued
      end

let gov_level t = t.st.rt_gov_level
let governor_level = gov_level

(* Level 2: pure demand paging — the hint is charged (the instrumented
   binary still executes the call) but goes no further. *)
let gov_suppressed t =
  t.gov <> None
  && t.st.rt_gov_level >= 2
  &&
  (t.st.rt_gov_suppressed <- t.st.rt_gov_suppressed + 1;
   true)

let prefetch_page ?(site = Trace.no_site) ?(urgent = false) t ~vpn =
  t.st.rt_prefetch_requests <- t.st.rt_prefetch_requests + 1;
  charge_filter t;
  gov_tick t;
  if gov_suppressed t then ()
  else if Os.page_resident t.asp ~vpn then
    t.st.rt_prefetch_filtered <- t.st.rt_prefetch_filtered + 1
  else begin
    t.st.rt_prefetch_enqueued <- t.st.rt_prefetch_enqueued + 1;
    if tracing t then emit t (Trace.Rt_prefetch_sent { vpn; site });
    Mailbox.send t.queue (W_prefetch (vpn, site, urgent))
  end

let issue_release t triples =
  if Array.length triples > 0 then begin
    t.st.rt_release_issued <- t.st.rt_release_issued + Array.length triples;
    if tracing t then begin
      Array.iter
        (fun (vpn, site, _prio) -> emit t (Trace.Rt_release_sent { vpn; site }))
        triples;
      emit t (Trace.Rt_release_issued { count = Array.length triples })
    end;
    Mailbox.send t.queue (W_release triples)
  end

(* Stale entries (pages already stolen or released behind our back) are
   cheap to drop before issuing, but not free to ignore: each one is a hint
   the buffer held too long, so they are counted and traced. *)
let drop_stale t triples =
  List.filter
    (fun (vpn, site, _prio) ->
      let live = Os.page_resident t.asp ~vpn in
      if not live then begin
        t.st.rt_release_stale_dropped <- t.st.rt_release_stale_dropped + 1;
        if tracing t then emit t (Trace.Rt_stale_dropped { vpn; site })
      end;
      live)
    triples

(* Drain the lowest-priority queues when usage approaches the limit the OS
   published in the shared page. *)
let maybe_drain t =
  let usage = Os.shared_current_usage t.os t.asp in
  let limit = Os.shared_upper_limit t.os t.asp in
  if usage + t.headroom >= limit && Release_buffer.total t.buffer > 0 then begin
    t.st.rt_buffer_drains <- t.st.rt_buffer_drains + 1;
    let pairs = Release_buffer.pop_lowest t.buffer ~max:t.release_target in
    let pairs = Array.of_list (drop_stale t (Array.to_list pairs)) in
    if tracing t then
      emit t (Trace.Rt_release_drained { count = Array.length pairs });
    issue_release t pairs
  end

(* Handle a release that survived the one-behind filter. *)
let handle_release t ~vpn ~priority ~tag =
  if not (Os.page_resident t.asp ~vpn) then begin
    t.st.rt_release_filtered_bitmap <- t.st.rt_release_filtered_bitmap + 1;
    if tracing t then
      emit t (Trace.Rt_release_filtered { vpn; reason = "bitmap"; site = tag })
  end
  else
    (* Degraded to level >= 1: stop buffering — under an active fault the
       buffer only grows stale — and issue everything immediately.
       Tier-aware rung (below the governor's): while the far-memory
       breaker is open, demotions would only fail over to the local disks,
       so hold pages in the local buffer instead of releasing them into a
       degraded store — effectively Buffered until the tier heals. *)
    let effective =
      if gov_level t >= 1 then Aggressive
      else if t.pol = Aggressive && Os.tier_far_open t.os then begin
        t.st.rt_tier_buffered <- t.st.rt_tier_buffered + 1;
        Buffered
      end
      else t.pol
    in
    match effective with
    | Aggressive -> issue_release t [| (vpn, tag, priority) |]
    | Buffered ->
        (* Non-positive priorities mean "no reuse expected": they route to
           the immediate path ([Release_buffer.add] would reject them). *)
        if priority <= 0 then issue_release t [| (vpn, tag, priority) |]
        else begin
          t.st.rt_release_buffered <- t.st.rt_release_buffered + 1;
          if tracing t then
            emit t (Trace.Rt_release_buffered { vpn; tag; priority });
          Release_buffer.add t.buffer ~tag ~priority ~vpn;
          maybe_drain t
        end
    | Reactive ->
        (* hold everything releasable; the buffer requires positive
           priorities, so shift by one — negative priorities still mean
           "no reuse expected" and go straight out *)
        if priority < 0 then issue_release t [| (vpn, tag, priority) |]
        else begin
          t.st.rt_release_buffered <- t.st.rt_release_buffered + 1;
          if tracing t then
            emit t (Trace.Rt_release_buffered { vpn; tag; priority });
          Release_buffer.add t.buffer ~tag ~priority:(priority + 1) ~vpn
        end

let release_page t ~vpn ~priority ~tag =
  t.st.rt_release_requests <- t.st.rt_release_requests + 1;
  charge_filter t;
  gov_tick t;
  if tracing t then emit t (Trace.Rt_release_hint { vpn; site = tag; priority });
  if gov_suppressed t then ()
  else if not (Os.page_resident t.asp ~vpn) then begin
    t.st.rt_release_filtered_bitmap <- t.st.rt_release_filtered_bitmap + 1;
    if tracing t then
      emit t (Trace.Rt_release_filtered { vpn; reason = "bitmap"; site = tag })
  end
  else
    (* One-request-behind: the first request for a tag is recorded; a repeat
       of the same page is dropped (obviously still in use); a different
       page causes the recorded one to be handled — at the priority it was
       recorded with — and the new one to take its place.  Issued releases
       thus trail the compiler's hints by one iteration. *)
    match Hashtbl.find_opt t.last_release tag with
    | Some (prev, _) when prev = vpn ->
        t.st.rt_release_filtered_same <- t.st.rt_release_filtered_same + 1;
        if tracing t then
          emit t (Trace.Rt_release_filtered { vpn; reason = "same"; site = tag })
    | Some (prev, prev_priority) ->
        Hashtbl.replace t.last_release tag (vpn, priority);
        handle_release t ~vpn:prev ~priority:prev_priority ~tag
    | None -> Hashtbl.replace t.last_release tag (vpn, priority)

let rec advise_evict t =
  let batch = Release_buffer.pop_lowest t.buffer ~max:1 in
  if Array.length batch = 0 then None
  else
    let vpn, _site, _prio = batch.(0) in
    if Os.page_resident t.asp ~vpn then Some vpn
    else advise_evict t (* stale entry: the page is already gone *)

let drain t =
  t.st.rt_buffer_drains <- t.st.rt_buffer_drains + 1;
  (* Flush the one-behind filter: at exit nothing is still in use, so every
     recorded page is releasable (priority no longer matters).  The table
     key is the directive tag, so each flushed page keeps its site. *)
  let pending =
    Hashtbl.fold
      (fun tag (vpn, priority) acc -> (vpn, tag, priority) :: acc)
      t.last_release []
    (* Hashtbl.fold order is seed-dependent across stdlib versions; sort so
       the flush (and everything downstream of it) is deterministic. *)
    |> List.sort compare
  in
  Hashtbl.reset t.last_release;
  let pending = drop_stale t pending in
  issue_release t (Array.of_list pending);
  let rec go drained =
    let pairs = Release_buffer.pop_lowest t.buffer ~max:t.release_target in
    if Array.length pairs > 0 then begin
      let live = drop_stale t (Array.to_list pairs) in
      issue_release t (Array.of_list live);
      go (drained + List.length live)
    end
    else drained
  in
  let drained = go (List.length pending) in
  if tracing t then emit t (Trace.Rt_release_drained { count = drained })
