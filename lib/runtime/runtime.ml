open Memhog_sim
module Os = Memhog_vm.Os
module As = Memhog_vm.Address_space

type policy = Aggressive | Buffered | Reactive

let policy_name = function
  | Aggressive -> "aggressive"
  | Buffered -> "buffered"
  | Reactive -> "reactive"

type stats = {
  mutable rt_prefetch_requests : int;
  mutable rt_prefetch_filtered : int;
  mutable rt_prefetch_enqueued : int;
  mutable rt_release_requests : int;
  mutable rt_release_filtered_bitmap : int;
  mutable rt_release_filtered_same : int;
  mutable rt_release_issued : int;
  mutable rt_release_buffered : int;
  mutable rt_buffer_drains : int;
  mutable rt_release_stale_dropped : int;
}

type work = W_prefetch of int | W_release of int array

type t = {
  os : Os.t;
  asp : As.t;
  pol : policy;
  nthreads : int;
  release_target : int;
  headroom : int;
  filter_ns : int;
  queue : work Mailbox.t;
  buffer : Release_buffer.t;
  last_release : (int, int * int) Hashtbl.t;
      (* tag -> (page, priority) recorded when first seen, one behind; the
         priority travels with the page so a displaced entry lands in the
         Eq. 2 queue it was hinted with, not the successor's *)
  st : stats;
  mutable started : bool;
}

let tracing t = Trace.enabled (Os.trace t.os)

let emit t ev =
  Trace.emit (Os.trace t.os)
    ~time:(Engine.now_of (Os.engine t.os))
    ~stream:t.asp.As.pid ev

let create ?(nthreads = 16) ?(release_target = 100) ?(headroom = 0)
    ?(filter_ns = 200) ~os ~asp ~policy () =
  {
    os;
    asp;
    pol = policy;
    nthreads;
    release_target;
    headroom;
    filter_ns;
    queue = Mailbox.create ~name:"runtime-work" ();
    buffer = Release_buffer.create ();
    last_release = Hashtbl.create 64;
    st =
      {
        rt_prefetch_requests = 0;
        rt_prefetch_filtered = 0;
        rt_prefetch_enqueued = 0;
        rt_release_requests = 0;
        rt_release_filtered_bitmap = 0;
        rt_release_filtered_same = 0;
        rt_release_issued = 0;
        rt_release_buffered = 0;
        rt_buffer_drains = 0;
        rt_release_stale_dropped = 0;
      };
    started = false;
  }

let policy t = t.pol
let stats t = t.st
let buffered_pages t = Release_buffer.total t.buffer

(* Helper threads: issue prefetches and release requests to the
   PagingDirected PM, waiting out the I/O so the application does not. *)
let thread_loop t () =
  while true do
    match Mailbox.recv t.queue with
    | W_prefetch vpn -> ignore (Os.prefetch t.os t.asp ~vpn)
    | W_release vpns -> Os.release_request t.os t.asp ~vpns
  done

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 1 to t.nthreads do
      ignore
        (Engine.spawn (Os.engine t.os)
           ~name:(Printf.sprintf "%s-rt-thread-%d" t.asp.As.as_name i)
           (thread_loop t))
    done
  end

let charge_filter t = Engine.delay ~cat:Account.User t.filter_ns

let prefetch_page t ~vpn =
  t.st.rt_prefetch_requests <- t.st.rt_prefetch_requests + 1;
  charge_filter t;
  if Os.page_resident t.asp ~vpn then
    t.st.rt_prefetch_filtered <- t.st.rt_prefetch_filtered + 1
  else begin
    t.st.rt_prefetch_enqueued <- t.st.rt_prefetch_enqueued + 1;
    Mailbox.send t.queue (W_prefetch vpn)
  end

let issue_release t vpns =
  if Array.length vpns > 0 then begin
    t.st.rt_release_issued <- t.st.rt_release_issued + Array.length vpns;
    if tracing t then emit t (Trace.Rt_release_issued { count = Array.length vpns });
    Mailbox.send t.queue (W_release vpns)
  end

(* Stale entries (pages already stolen or released behind our back) are
   cheap to drop before issuing, but not free to ignore: each one is a hint
   the buffer held too long, so they are counted and traced. *)
let drop_stale t vpns =
  List.filter
    (fun vpn ->
      let live = Os.page_resident t.asp ~vpn in
      if not live then begin
        t.st.rt_release_stale_dropped <- t.st.rt_release_stale_dropped + 1;
        if tracing t then emit t (Trace.Rt_stale_dropped { vpn })
      end;
      live)
    vpns

(* Drain the lowest-priority queues when usage approaches the limit the OS
   published in the shared page. *)
let maybe_drain t =
  let usage = Os.shared_current_usage t.os t.asp in
  let limit = Os.shared_upper_limit t.os t.asp in
  if usage + t.headroom >= limit && Release_buffer.total t.buffer > 0 then begin
    t.st.rt_buffer_drains <- t.st.rt_buffer_drains + 1;
    let vpns = Release_buffer.pop_lowest t.buffer ~max:t.release_target in
    let vpns = Array.of_list (drop_stale t (Array.to_list vpns)) in
    if tracing t then
      emit t (Trace.Rt_release_drained { count = Array.length vpns });
    issue_release t vpns
  end

(* Handle a release that survived the one-behind filter. *)
let handle_release t ~vpn ~priority ~tag =
  if not (Os.page_resident t.asp ~vpn) then begin
    t.st.rt_release_filtered_bitmap <- t.st.rt_release_filtered_bitmap + 1;
    if tracing t then emit t (Trace.Rt_release_filtered { vpn; reason = "bitmap" })
  end
  else
    match t.pol with
    | Aggressive -> issue_release t [| vpn |]
    | Buffered ->
        if priority = 0 then issue_release t [| vpn |]
        else begin
          t.st.rt_release_buffered <- t.st.rt_release_buffered + 1;
          if tracing t then
            emit t (Trace.Rt_release_buffered { vpn; tag; priority });
          Release_buffer.add t.buffer ~tag ~priority ~vpn;
          maybe_drain t
        end
    | Reactive ->
        (* hold everything; the buffer requires positive priorities, so
           shift by one *)
        t.st.rt_release_buffered <- t.st.rt_release_buffered + 1;
        if tracing t then
          emit t (Trace.Rt_release_buffered { vpn; tag; priority });
        Release_buffer.add t.buffer ~tag ~priority:(priority + 1) ~vpn

let release_page t ~vpn ~priority ~tag =
  t.st.rt_release_requests <- t.st.rt_release_requests + 1;
  charge_filter t;
  if not (Os.page_resident t.asp ~vpn) then begin
    t.st.rt_release_filtered_bitmap <- t.st.rt_release_filtered_bitmap + 1;
    if tracing t then emit t (Trace.Rt_release_filtered { vpn; reason = "bitmap" })
  end
  else
    (* One-request-behind: the first request for a tag is recorded; a repeat
       of the same page is dropped (obviously still in use); a different
       page causes the recorded one to be handled — at the priority it was
       recorded with — and the new one to take its place.  Issued releases
       thus trail the compiler's hints by one iteration. *)
    match Hashtbl.find_opt t.last_release tag with
    | Some (prev, _) when prev = vpn ->
        t.st.rt_release_filtered_same <- t.st.rt_release_filtered_same + 1;
        if tracing t then
          emit t (Trace.Rt_release_filtered { vpn; reason = "same" })
    | Some (prev, prev_priority) ->
        Hashtbl.replace t.last_release tag (vpn, priority);
        handle_release t ~vpn:prev ~priority:prev_priority ~tag
    | None -> Hashtbl.replace t.last_release tag (vpn, priority)

let rec advise_evict t =
  let batch = Release_buffer.pop_lowest t.buffer ~max:1 in
  if Array.length batch = 0 then None
  else if Os.page_resident t.asp ~vpn:batch.(0) then Some batch.(0)
  else advise_evict t (* stale entry: the page is already gone *)

let drain t =
  t.st.rt_buffer_drains <- t.st.rt_buffer_drains + 1;
  (* Flush the one-behind filter: at exit nothing is still in use, so every
     recorded page is releasable (priority no longer matters). *)
  let pending =
    Hashtbl.fold (fun _tag (vpn, _priority) acc -> vpn :: acc) t.last_release []
  in
  Hashtbl.reset t.last_release;
  let pending = drop_stale t pending in
  issue_release t (Array.of_list pending);
  let rec go drained =
    let vpns = Release_buffer.pop_lowest t.buffer ~max:t.release_target in
    if Array.length vpns > 0 then begin
      let live = drop_stale t (Array.to_list vpns) in
      issue_release t (Array.of_list live);
      go (drained + List.length live)
    end
    else drained
  in
  let drained = go (List.length pending) in
  if tracing t then emit t (Trace.Rt_release_drained { count = drained })
