(** Priority-indexed release queues (Figure 6(b)).

    Release requests with non-zero priority are stored in per-tag queues; a
    priority list indexes the queues.  When memory runs short, pages are
    drained from the {e lowest}-priority queues first, round-robin across
    queues of equal priority — retaining the pages whose reuse the compiler
    expects soonest. *)

type t

val create : unit -> t

val add : t -> tag:int -> priority:int -> vpn:int -> unit
(** Requires [priority > 0]: non-positive priorities mean "no reuse
    expected", and the runtime routes such releases to the immediate-issue
    path instead of buffering them (see {!Runtime.release_page}).

    @raise Invalid_argument if [priority <= 0], or if [tag] is reused at a
    priority different from the one its buffered pages were added with. *)

val total : t -> int
(** Buffered pages across all queues. *)

val pop_lowest : t -> max:int -> (int * int * int) array
(** Remove up to [max] pages, lowest priority first, round-robin across
    same-priority tags.  Returns [(vpn, tag, priority)] triples in drain
    order — the tag is the static directive site the page was buffered
    under, preserved so the eventual OS release stays attributable to its
    site, and the priority rides along so the tier router can key placement
    on it.  Appending a tag and retiring an emptied one are both O(1): tag
    queues at one priority form a doubly-linked list in insertion order. *)

val flush_tag : t -> tag:int -> int array
(** Remove and return every buffered page of one tag, in FIFO order
    ([ [||] ] if the tag has no buffered pages).  Used when the
    application's plans for a tagged array change wholesale — e.g. a
    re-touch invalidates the buffered releases. *)

val queue_count : t -> int
val lowest_priority : t -> int option
