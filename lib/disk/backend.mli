(** Uniform interface over page backing stores.

    A backend serves whole-page reads and writes with the same demand
    classes the striped swap volume exposes: [cat] charges the caller's
    blocking time to an {!Memhog_sim.Account} category, [background] marks
    the request as overtakeable by demand traffic, and [site] carries the
    static directive tag for attribution.  Three implementations exist:
    the local striped {!Swap} volume ({!of_swap}), the {!Farmem} network
    tier and the {!Zram} compressed-RAM tier; the [Memhog_vm.Tiers] router
    composes them into a fault-tolerant tiered store. *)

open Memhog_sim

type stats = {
  mutable reads : int;  (** read requests issued (successful or not) *)
  mutable writes : int;  (** write requests issued *)
  mutable timeouts : int;  (** attempts aborted at their deadline *)
  mutable retries : int;  (** re-issues after an aborted attempt *)
  mutable rejects : int;  (** writes refused (tier full or down) *)
}

val fresh_stats : unit -> stats

type read_result =
  | R_ok of int  (** page delivered; payload = attempts used *)
  | R_failed of int
      (** every attempt timed out (or the page is absent); the caller must
          recover from another tier.  Payload = attempts used. *)

type write_result =
  | W_ok of int  (** page stored; payload = attempts used *)
  | W_rejected of int
      (** the tier refused the page (out of capacity, link dead); the
          caller must place it elsewhere.  Payload = attempts used. *)

type t = {
  name : string;
  read :
    cat:Account.category -> background:bool -> site:int -> page:int ->
    read_result;
  write :
    cat:Account.category -> background:bool -> site:int -> page:int ->
    write_result;
  stats : stats;
}

val name : t -> string
val stats : t -> stats

val read_page :
  ?cat:Account.category ->
  ?background:bool ->
  ?site:int ->
  t ->
  page:int ->
  read_result
(** Blocking whole-page read.  Defaults: [cat] = [Io_stall], [background] =
    false, [site] = {!Trace.no_site}. *)

val write_page :
  ?cat:Account.category ->
  ?background:bool ->
  ?site:int ->
  t ->
  page:int ->
  write_result

val of_swap : Swap.t -> t
(** The striped local swap volume behind the interface.  Never times out,
    never rejects; every request is [R_ok 1] / [W_ok 1]. *)
