open Memhog_sim

type params = {
  seek_ns : Time_ns.t;
  rotation_ns : Time_ns.t;
  transfer_ns_per_kb : Time_ns.t;
  overhead_ns : Time_ns.t;
  near_skip_ns : Time_ns.t;
  near_skip_span : int;
  request_timeout_ns : Time_ns.t;
}

(* Seagate Cheetah 4LP: ~7.7 ms average seek, 10,033 RPM (~3 ms average
   rotational latency), ~15 MB/s sustained media rate (~65 us per KB). *)
let cheetah_4lp =
  {
    seek_ns = Time_ns.us 7_700;
    rotation_ns = Time_ns.us 2_990;
    transfer_ns_per_kb = Time_ns.us 65;
    overhead_ns = Time_ns.us 300;
    (* short forward skips stay in the cylinder neighbourhood: roughly a
       track-to-track seek plus half a rotation *)
    near_skip_ns = Time_ns.us 2_400;
    near_skip_span = 64;
    (* SCSI-driver style deadline: a request still unserved after this long
       (queueing + retries + backoff included) counts as timed out *)
    request_timeout_ns = Time_ns.ms 100;
  }

type t = {
  id : int;
  params : params;
  (* The arm is a two-class queue, not a plain FIFO: demand reads (a
     process is blocked right now) are served before queued background
     requests (prefetches, write-behind).  Without this, one process's
     deep prefetch batches starve everyone else's demand misses. *)
  mutable arm_busy : bool;
  demand_q : Engine.waker Queue.t;
  background_q : Engine.waker Queue.t;
  bus : Semaphore.t option;
  chaos : Chaos.t;
  trace : Trace.t;
  reqtrace : Reqtrace.t;
  mutable last_block : int;
  mutable reads : int;
  mutable writes : int;
  mutable bytes : int;
  mutable busy : int;
  mutable seq_hits : int;
  mutable near_hits : int;
  mutable faults : int;
  mutable retries : int;
  mutable backoff_ns : int;
  mutable timeouts : int;
  mutable demand_bypasses : int;
}

let create ?(params = cheetah_4lp) ?bus ?(chaos = Chaos.none)
    ?(trace = Trace.null) ?(reqtrace = Reqtrace.null) ~id () =
  {
    id;
    params;
    arm_busy = false;
    demand_q = Queue.create ();
    background_q = Queue.create ();
    bus;
    chaos;
    trace;
    reqtrace;
    last_block = min_int;
    reads = 0;
    writes = 0;
    bytes = 0;
    busy = 0;
    seq_hits = 0;
    near_hits = 0;
    faults = 0;
    retries = 0;
    backoff_ns = 0;
    timeouts = 0;
    demand_bypasses = 0;
  }

let id t = t.id

let acquire_arm ~cat t ~background =
  (* The arm is never free while requests queue (release hands off
     directly), so the contended branch is the only place a demand request
     can overtake queued background work. *)
  if not t.arm_busy then t.arm_busy <- true
  else begin
    let bypassed = (not background) && not (Queue.is_empty t.background_q) in
    if bypassed then t.demand_bypasses <- t.demand_bypasses + 1;
    let q = if background then t.background_q else t.demand_q in
    let t0 = Engine.now () in
    Engine.suspend (fun waker -> Queue.add waker q);
    let self = Engine.self () in
    let waited = Engine.now () - t0 in
    Account.add self.account cat waited;
    if (not background) && Reqtrace.enabled t.reqtrace then
      Reqtrace.note_disk_queue t.reqtrace ~pid:self.Engine.pid ~start:t0
        ~ns:waited ~bypassed
  end

(* Direct handoff: the arm stays busy and ownership moves to the waiter.
   Demand waiters always drain first. *)
let release_arm t =
  match Queue.take_opt t.demand_q with
  | Some waker -> waker ()
  | None -> (
      match Queue.take_opt t.background_q with
      | Some waker -> waker ()
      | None -> t.arm_busy <- false)

(* (positioning, transfer): positioning happens on the arm alone; the
   transfer additionally occupies the adapter bus. *)
let service_time t ~block ~bytes ~is_write =
  let p = t.params in
  let transfer = p.transfer_ns_per_kb * ((bytes + 1023) / 1024) in
  if is_write then
    (* Write-behind: the drive cache absorbs writes at streaming cost and
       commits them opportunistically, so writes neither pay positioning
       nor disturb the read head. *)
    (p.overhead_ns, transfer)
  else begin
    let delta = block - t.last_block in
    if delta = 1 then begin
      t.seq_hits <- t.seq_hits + 1;
      (p.overhead_ns, transfer)
    end
    else if delta > 1 && delta <= p.near_skip_span then begin
      t.near_hits <- t.near_hits + 1;
      (p.overhead_ns + p.near_skip_ns, transfer)
    end
    else (p.overhead_ns + p.seek_ns + p.rotation_ns, transfer)
  end

let scale_ns f ns = if f = 1.0 then ns else int_of_float (f *. float_of_int ns)

(* Injected transient failures: each failed attempt pays command overhead
   plus exponential backoff while holding the arm (the request is not done),
   then the attempt after the planned failures succeeds.  A failed attempt
   must NOT advance sequentiality state — the head's position is unknown
   after an error, so [last_block] is invalidated and the successful retry
   pays full positioning rather than spuriously earning the sequential or
   near-skip discount. *)
let inject_failures ?(cat = Account.Io_stall) t ~block ~is_write =
  match Chaos.disk_fault t.chaos ~now:(Engine.now ()) with
  | None -> ()
  | Some (k, backoff_base) ->
      t.faults <- t.faults + 1;
      for i = 1 to k do
        t.busy <- t.busy + t.params.overhead_ns;
        Engine.delay ~cat t.params.overhead_ns;
        if Trace.enabled t.trace then
          Trace.emit t.trace ~time:(Engine.now ())
            ~stream:Trace.chaos_stream
            (Trace.Chaos_disk_fault { disk = t.id; block; attempt = i });
        let b =
          Chaos.backoff_delay ~base:backoff_base ~cap:(Time_ns.sec 10)
            ~attempt:i
        in
        Chaos.note_disk_retry t.chaos ~backoff:b;
        t.retries <- t.retries + 1;
        t.backoff_ns <- t.backoff_ns + b;
        Engine.delay ~cat b
      done;
      if not is_write then t.last_block <- min_int

let do_io ?(cat = Account.Io_stall) ?(background = false) t ~block ~bytes
    ~is_write =
  let started = Engine.now () in
  acquire_arm ~cat t ~background;
  let arm_acquired = Engine.now () in
  if not (Chaos.is_none t.chaos) then
    inject_failures ~cat t ~block ~is_write;
  let slow =
    if Chaos.is_none t.chaos then 1.0
    else Chaos.disk_slow_factor t.chaos ~now:(Engine.now ())
  in
  let positioning, transfer = service_time t ~block ~bytes ~is_write in
  let positioning = scale_ns slow positioning
  and transfer = scale_ns slow transfer in
  if not is_write then t.last_block <- block;
  if is_write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  t.bytes <- t.bytes + bytes;
  t.busy <- t.busy + positioning + transfer;
  Engine.delay ~cat positioning;
  (match t.bus with
  | Some bus ->
      Semaphore.acquire ~cat bus;
      Engine.delay ~cat transfer;
      Semaphore.release bus
  | None -> Engine.delay ~cat transfer);
  release_arm t;
  let elapsed = Engine.now () - started in
  if elapsed > t.params.request_timeout_ns then t.timeouts <- t.timeouts + 1;
  if (not background) && Reqtrace.enabled t.reqtrace then
    Reqtrace.note_disk_service t.reqtrace ~pid:(Engine.self ()).Engine.pid
      ~start:arm_acquired
      ~ns:(Engine.now () - arm_acquired);
  (* One completion event per request, spanning queueing + positioning +
     transfer (+ injected retries); the Chrome exporter links directive →
     disk request → fault chains through these. *)
  if Trace.enabled t.trace then
    Trace.emit t.trace ~time:(Engine.now ()) ~stream:Trace.disk_stream
      (Trace.Disk_io { disk = t.id; block; write = is_write; ns = elapsed })

let read ?cat ?background t ~block ~bytes =
  do_io ?cat ?background t ~block ~bytes ~is_write:false

let write ?cat ?background t ~block ~bytes =
  do_io ?cat ?background t ~block ~bytes ~is_write:true

let reads t = t.reads
let writes t = t.writes
let bytes_moved t = t.bytes
let busy_time t = t.busy
let sequential_hits t = t.seq_hits
let near_hits t = t.near_hits
let faults_injected t = t.faults
let retry_attempts t = t.retries
let backoff_time t = t.backoff_ns
let timeouts t = t.timeouts
let demand_bypasses t = t.demand_bypasses

let queue_depth t =
  Queue.length t.demand_q + Queue.length t.background_q
  + if t.arm_busy then 1 else 0
