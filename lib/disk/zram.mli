(** Compressed-RAM tier (the virtually-extended-memory approach).

    Released pages are compressed into a fixed RAM carve-out instead of
    (only) travelling to disk: storing costs CPU-speed compression time,
    loading costs decompression — both orders of magnitude below a disk
    arm.  Per-page compressibility is drawn {e deterministically} from the
    releasing directive's site id mixed with the page number (pure integer
    hashing, no RNG state), so capacity amplification is reproducible at
    any [--jobs].  Loads are exclusive: a page is either resident or
    compressed, never both.  Writes that would overflow the carve-out are
    rejected and the router degrades the demotion to disk. *)

open Memhog_sim

type params = {
  capacity_bytes : int;  (** RAM carve-out budget *)
  compress_ns_per_kb : Time_ns.t;  (** store cost per uncompressed KB *)
  decompress_ns_per_kb : Time_ns.t;  (** load cost per uncompressed KB *)
}

val default_params : params
(** 16 MB carve-out, 900 ns/KB compress, 400 ns/KB decompress. *)

type t

val create : ?params:params -> page_bytes:int -> unit -> t
(** Raises [Invalid_argument] when the carve-out is below one page. *)

val ratio : site:int -> page:int -> float
(** Deterministic per-page compressibility in [0.15, 0.90] (compressed
    fraction of the page). *)

val compressed_bytes : t -> site:int -> page:int -> int

val read_page :
  ?cat:Account.category -> ?background:bool -> t -> page:int ->
  Backend.read_result
(** [R_failed] when the page is not stored; otherwise decompresses,
    consumes the entry and returns [R_ok 1]. *)

val write_page :
  ?cat:Account.category -> ?background:bool -> ?site:int -> t -> page:int ->
  Backend.write_result
(** [W_rejected] when the compressed page would overflow the carve-out. *)

val contains : t -> page:int -> bool

val drop : t -> page:int -> unit
(** Discard a stored page without decompressing it (free: the copy is
    stale, not wanted).  No-op when the page is absent. *)

val stats : t -> Backend.stats
val used_bytes : t -> int
val stored_pages : t -> int
val capacity_bytes : t -> int

val amplification : t -> float
(** Uncompressed bytes held per carve-out byte consumed (1.0 when empty). *)

val as_backend : t -> Backend.t
(** The tier behind the uniform {!Backend} interface (name ["zram"]). *)
