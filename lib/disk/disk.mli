(** Single-disk service model.

    Each disk has one arm: requests serialize on it through a two-class
    queue.  Demand requests (a process is blocked on the result right now)
    are served before queued {e background} requests — prefetches and
    write-behind — the scheduling discipline every informed-prefetching
    system uses, since a prefetch is by definition work the disk can do
    later.  Within a class, requests are FIFO.  Service time is positioning
    (seek + rotational latency, skipped when the request is sequential with
    the previous one on this disk) plus media transfer.  Parameters default
    to a Seagate Cheetah 4LP, the drive used in the paper's testbed
    (Table 1). *)

open Memhog_sim

type params = {
  seek_ns : Time_ns.t;           (** average seek *)
  rotation_ns : Time_ns.t;       (** average rotational latency (half turn) *)
  transfer_ns_per_kb : Time_ns.t;(** media transfer cost per KB *)
  overhead_ns : Time_ns.t;       (** fixed per-request command overhead *)
  near_skip_ns : Time_ns.t;
      (** positioning cost for a short forward skip (same cylinder
          neighbourhood) instead of a full seek *)
  near_skip_span : int;          (** how many blocks ahead count as "near" *)
  request_timeout_ns : Time_ns.t;
      (** per-request deadline: a request whose total latency (queueing +
          injected retries + backoff + service) exceeds this is counted in
          {!timeouts}.  Accounting only — the request still completes. *)
}

val cheetah_4lp : params

type t

val create :
  ?params:params ->
  ?bus:Memhog_sim.Semaphore.t ->
  ?chaos:Memhog_sim.Chaos.t ->
  ?trace:Memhog_sim.Trace.t ->
  ?reqtrace:Memhog_sim.Reqtrace.t ->
  id:int ->
  unit ->
  t
(** [bus] is the SCSI adapter this disk hangs off: the media-transfer phase
    of each request holds it, so disks sharing an adapter serialize their
    transfers (positioning still overlaps).

    [reqtrace] (default {!Memhog_sim.Reqtrace.null}) receives per-request
    blame attribution for {e demand} requests: arm-queue waits (with the
    bypassed-background flag) and positioning+transfer service spans,
    charged to the calling fiber's pid.

    [chaos] (default {!Memhog_sim.Chaos.none}) injects transient failures
    and latency spikes: a faulted request retries with exponential backoff
    while holding the arm, each failed attempt paying command overhead, and
    a failed read invalidates the sequentiality state — the head's position
    is unknown after an error, so the successful retry pays full
    positioning instead of earning the sequential / near-skip discount.
    Injected faults are emitted to [trace] on [Trace.chaos_stream]. *)

val id : t -> int

val read :
  ?cat:Memhog_sim.Account.category ->
  ?background:bool ->
  t ->
  block:int ->
  bytes:int ->
  unit
(** Perform a read, blocking the calling process for queueing + service
    time.  [block] is a logical block number used only for sequentiality
    detection.  Wait + service time is charged to [cat] (default
    [Io_stall]).  [background] (default [false]) queues the request in the
    low-priority class: any demand request that arrives while it waits is
    served first. *)

val write :
  ?cat:Memhog_sim.Account.category ->
  ?background:bool ->
  t ->
  block:int ->
  bytes:int ->
  unit

(** {1 Statistics} *)

val reads : t -> int
val writes : t -> int
val bytes_moved : t -> int
val busy_time : t -> Time_ns.t
val sequential_hits : t -> int
val near_hits : t -> int

val faults_injected : t -> int
(** Requests that drew at least one injected transient failure. *)

val retry_attempts : t -> int
(** Individual failed attempts across all faulted requests. *)

val backoff_time : t -> Time_ns.t
(** Total injected backoff delay. *)

val timeouts : t -> int
(** Requests whose total latency exceeded [request_timeout_ns]. *)

val demand_bypasses : t -> int
(** Demand requests that overtook at least one queued background request —
    how often the two-class arm discipline actually mattered. *)

val queue_depth : t -> int
(** Requests currently waiting at (or occupying) the arm, both classes —
    a point-in-time gauge for the telemetry scraper. *)
