open Memhog_sim

type params = {
  capacity_bytes : int;
  compress_ns_per_kb : Time_ns.t;
  decompress_ns_per_kb : Time_ns.t;
}

(* LZO-class software compression on a circa-2000 CPU: a few hundred ns
   per KB each way, budgeted against a RAM carve-out. *)
let default_params =
  {
    capacity_bytes = 16 * 1024 * 1024;
    compress_ns_per_kb = 900;
    decompress_ns_per_kb = 400;
  }

type t = {
  params : params;
  page_bytes : int;
  stats : Backend.stats;
  table : (int, int) Hashtbl.t;  (* page -> compressed bytes *)
  mutable used_bytes : int;
  mutable stored_uncompressed : int;  (* lifetime bytes accepted, pre-compression *)
}

let create ?(params = default_params) ~page_bytes () =
  if params.capacity_bytes < page_bytes then
    invalid_arg "Zram.create: capacity below one page";
  {
    params;
    page_bytes;
    stats = Backend.fresh_stats ();
    table = Hashtbl.create 1024;
    used_bytes = 0;
    stored_uncompressed = 0;
  }

(* Per-page compressibility, drawn deterministically from the releasing
   directive's site id mixed with the page number: pages released by the
   same static site share a compressibility regime (arrays of similar data),
   individual pages scatter around it.  Pure integer mixing — no RNG state,
   so replays and --jobs levels agree byte-for-byte. *)
let ratio ~site ~page =
  let h = ((site + 2) * 0x9E3779B9) lxor (page * 0x85EBCA6B) in
  let h = (h lxor (h lsr 16)) * 0x45D9F3B in
  let h = (h lxor (h lsr 13)) land 0x3FF in
  0.15 +. (0.75 *. (float_of_int h /. 1023.0))

let compressed_bytes t ~site ~page =
  int_of_float (ratio ~site ~page *. float_of_int t.page_bytes)

let stats t = t.stats
let used_bytes t = t.used_bytes
let stored_pages t = Hashtbl.length t.table
let capacity_bytes t = t.params.capacity_bytes

(* Capacity amplification over the live table: uncompressed bytes held per
   byte of carve-out actually consumed. *)
let amplification t =
  if t.used_bytes = 0 then 1.0
  else
    float_of_int (Hashtbl.length t.table * t.page_bytes)
    /. float_of_int t.used_bytes

let write_page ?(cat = Account.Io_stall) ?background:_ ?(site = Trace.no_site)
    t ~page =
  t.stats.Backend.writes <- t.stats.Backend.writes + 1;
  let size = compressed_bytes t ~site ~page in
  let old = Option.value (Hashtbl.find_opt t.table page) ~default:0 in
  if t.used_bytes - old + size > t.params.capacity_bytes then begin
    t.stats.Backend.rejects <- t.stats.Backend.rejects + 1;
    Backend.W_rejected 1
  end
  else begin
    (* compression works over the uncompressed input *)
    Engine.delay ~cat (t.params.compress_ns_per_kb * (t.page_bytes / 1024));
    Hashtbl.replace t.table page size;
    t.used_bytes <- t.used_bytes - old + size;
    t.stored_uncompressed <- t.stored_uncompressed + t.page_bytes;
    Backend.W_ok 1
  end

(* Loads are exclusive (the entry is consumed): a page is either resident
   in RAM or compressed in the carve-out, never both. *)
let read_page ?(cat = Account.Io_stall) ?background:_ t ~page =
  t.stats.Backend.reads <- t.stats.Backend.reads + 1;
  match Hashtbl.find_opt t.table page with
  | None -> Backend.R_failed 1
  | Some size ->
      Engine.delay ~cat (t.params.decompress_ns_per_kb * (t.page_bytes / 1024));
      Hashtbl.remove t.table page;
      t.used_bytes <- t.used_bytes - size;
      Backend.R_ok 1

let contains t ~page = Hashtbl.mem t.table page

(* Discard a stored page without reading it (no decompression cost): the
   RAM copy was re-created by some other route and this one is stale. *)
let drop t ~page =
  match Hashtbl.find_opt t.table page with
  | None -> ()
  | Some size ->
      Hashtbl.remove t.table page;
      t.used_bytes <- t.used_bytes - size

let as_backend t =
  {
    Backend.name = "zram";
    read = (fun ~cat ~background ~site:_ ~page -> read_page ~cat ~background t ~page);
    write =
      (fun ~cat ~background ~site ~page -> write_page ~cat ~background ~site t ~page);
    stats = t.stats;
  }
