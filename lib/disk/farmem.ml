open Memhog_sim

type params = {
  base_latency_ns : Time_ns.t;
  bandwidth_mb_s : float;
  timeout_ns : Time_ns.t;
  attempts : int;
  backoff_ns : Time_ns.t;
  backoff_cap_ns : Time_ns.t;
}

(* RDMA-class far memory: a few microseconds of fixed round trip, a fat
   link, and a deadline two orders of magnitude above the healthy RTT so
   only injected faults ever trip it. *)
let default_params =
  {
    base_latency_ns = Time_ns.us 5;
    bandwidth_mb_s = 1_000.0;
    timeout_ns = Time_ns.us 500;
    attempts = 4;
    backoff_ns = Time_ns.us 50;
    backoff_cap_ns = Time_ns.ms 2;
  }

type t = {
  params : params;
  page_bytes : int;
  engine : Engine.t;
  chaos : Chaos.t;
  trace : Trace.t;
  trace_id : int;
  stats : Backend.stats;
  (* Fluid-flow model of the shared link: a transfer occupies the wire for
     its transmission time; later requests queue behind [link_free]. *)
  mutable link_free : Time_ns.t;
}

let create ?(params = default_params) ?(chaos = Chaos.none)
    ?(trace = Trace.null) ?(trace_id = 1) ~engine ~page_bytes () =
  if params.attempts < 1 then invalid_arg "Farmem.create: attempts must be >= 1";
  if params.bandwidth_mb_s <= 0.0 then
    invalid_arg "Farmem.create: bandwidth must be positive";
  {
    params;
    page_bytes;
    engine;
    chaos;
    trace;
    trace_id;
    stats = Backend.fresh_stats ();
    link_free = 0;
  }

let stats t = t.stats

(* Suspend until either the response arrives ([response] simulated ns from
   now, [None] = black-holed) or the abort deadline fires, whichever is
   first; charge the elapsed wait to [cat].  Unlike the local disks'
   accounting-only [request_timeout_ns], the deadline here genuinely aborts
   the wait: the fiber resumes at the deadline and the caller re-issues.
   The losing waker fires later into an already-woken cell, which
   {!Engine.suspend} documents as harmless. *)
let race_deadline t ~cat ~response =
  let t0 = Engine.now () in
  Engine.suspend (fun waker ->
      (match response with
      | Some d -> Engine.wake_after t.engine d waker
      | None -> ());
      Engine.wake_after t.engine t.params.timeout_ns waker);
  let elapsed = Engine.now () - t0 in
  Account.add (Engine.self ()).Engine.account cat elapsed;
  match response with Some d -> d <= elapsed | None -> false

(* One wire attempt.  Service time is fixed RTT plus transmission, both
   inflated by any active brown-out, plus drawn jitter; the link reservation
   is only committed when the response will beat the deadline — an aborted
   transfer stops occupying the wire. *)
let attempt t ~cat =
  let now = Engine.now () in
  if Chaos.net_partitioned t.chaos ~now then race_deadline t ~cat ~response:None
  else begin
    let factor = Chaos.net_latency_factor t.chaos ~now in
    let bw = t.params.bandwidth_mb_s *. Chaos.net_bandwidth_scale t.chaos ~now in
    let txn_ns = int_of_float (float_of_int t.page_bytes *. 1000.0 /. bw) in
    let jitter = Chaos.net_jitter t.chaos ~now in
    let service =
      int_of_float
        (factor *. float_of_int (t.params.base_latency_ns + txn_ns))
      + jitter
    in
    let start = max now t.link_free in
    let response = start - now + service in
    if response <= t.params.timeout_ns then t.link_free <- start + txn_ns;
    race_deadline t ~cat ~response:(Some response)
  end

let rpc t ~cat ~background:_ ~page =
  let rec go i =
    if attempt t ~cat then Ok i
    else begin
      t.stats.Backend.timeouts <- t.stats.Backend.timeouts + 1;
      if Trace.enabled t.trace then
        Trace.emit t.trace ~time:(Engine.now ()) ~stream:Trace.tier_stream
          (Trace.Tier_timeout { page; tier = t.trace_id; attempt = i });
      if i >= t.params.attempts then Error i
      else begin
        t.stats.Backend.retries <- t.stats.Backend.retries + 1;
        Engine.delay ~cat
          (Chaos.backoff_delay ~base:t.params.backoff_ns
             ~cap:t.params.backoff_cap_ns ~attempt:i);
        go (i + 1)
      end
    end
  in
  go 1

let read_page ?(cat = Account.Io_stall) ?(background = false) t ~page =
  t.stats.Backend.reads <- t.stats.Backend.reads + 1;
  match rpc t ~cat ~background ~page with
  | Ok i -> Backend.R_ok i
  | Error i -> Backend.R_failed i

let write_page ?(cat = Account.Io_stall) ?(background = false) t ~page =
  t.stats.Backend.writes <- t.stats.Backend.writes + 1;
  match rpc t ~cat ~background ~page with
  | Ok i -> Backend.W_ok i
  | Error i ->
      t.stats.Backend.rejects <- t.stats.Backend.rejects + 1;
      Backend.W_rejected i

let as_backend t =
  {
    Backend.name = "far";
    read = (fun ~cat ~background ~site:_ ~page -> read_page ~cat ~background t ~page);
    write =
      (fun ~cat ~background ~site:_ ~page -> write_page ~cat ~background t ~page);
    stats = t.stats;
  }
