(** Network-attached far-memory tier (the programmed-far-memory model).

    Microsecond-scale fixed round trip plus transmission on a shared link
    modelled as a fluid-flow channel (a transfer occupies the wire for its
    transmission time; later requests queue behind it).  Each attempt races
    a per-request deadline built from {!Memhog_sim.Engine.suspend} and two
    [wake_after] timers: if the deadline wins, the attempt is {e aborted} —
    the fiber stops waiting, the wire reservation is rolled back — and the
    request is re-issued after capped exponential backoff
    ({!Memhog_sim.Chaos.backoff_delay}).  After [attempts] aborts the
    request fails and the caller (the tier router) recovers from the
    failover copy, so no fiber ever blocks on a dead link.

    Chaos hooks: [net-partition] black-holes attempts (no response ever
    arrives), [net-brownout] inflates latency and derates the link rate,
    [net-jitter] adds a drawn delay per round trip.  All draws come from
    the plan's per-rule streams, so behaviour is byte-deterministic. *)

open Memhog_sim

type params = {
  base_latency_ns : Time_ns.t;  (** fixed round-trip component *)
  bandwidth_mb_s : float;  (** nominal link rate, MB/s *)
  timeout_ns : Time_ns.t;  (** per-attempt abort deadline *)
  attempts : int;  (** total attempts including the first *)
  backoff_ns : Time_ns.t;  (** re-issue backoff base *)
  backoff_cap_ns : Time_ns.t;  (** re-issue backoff saturation *)
}

val default_params : params
(** 5us RTT, 1000 MB/s, 500us deadline, 4 attempts, 50us base backoff
    capped at 2ms. *)

type t

val create :
  ?params:params ->
  ?chaos:Chaos.t ->
  ?trace:Trace.t ->
  ?trace_id:int ->
  engine:Engine.t ->
  page_bytes:int ->
  unit ->
  t
(** [engine] is needed for the deadline timers ([wake_after]); [trace_id]
    (default 1) labels this tier's trace events. *)

val stats : t -> Backend.stats

val read_page :
  ?cat:Account.category -> ?background:bool -> t -> page:int ->
  Backend.read_result

val write_page :
  ?cat:Account.category -> ?background:bool -> t -> page:int ->
  Backend.write_result

val as_backend : t -> Backend.t
(** The tier behind the uniform {!Backend} interface (name ["far"]). *)
