type config = {
  num_disks : int;
  disks_per_controller : int;
  disk_params : Disk.params;
}

let default_config =
  { num_disks = 10; disks_per_controller = 2; disk_params = Disk.cheetah_4lp }

type t = {
  config : config;
  page_bytes : int;
  disk_array : Disk.t array;
  mutable page_reads : int;
  mutable page_writes : int;
}

let create ?(config = default_config) ?chaos ?trace ?reqtrace ~page_bytes () =
  if config.num_disks < 1 then invalid_arg "Swap.create: need at least one disk";
  if config.disks_per_controller < 1 then
    invalid_arg "Swap.create: need at least one disk per controller";
  (* one SCSI adapter per [disks_per_controller] consecutive disks *)
  let ncontrollers =
    (config.num_disks + config.disks_per_controller - 1)
    / config.disks_per_controller
  in
  let buses =
    Array.init ncontrollers (fun i ->
        Memhog_sim.Semaphore.create ~name:(Printf.sprintf "scsi%d" i) 1)
  in
  {
    config;
    page_bytes;
    disk_array =
      Array.init config.num_disks (fun id ->
          Disk.create ~params:config.disk_params
            ~bus:buses.(id / config.disks_per_controller)
            ?chaos ?trace ?reqtrace ~id ());
    page_reads = 0;
    page_writes = 0;
  }

let num_disks t = t.config.num_disks

let locate t ~page =
  let disk = t.disk_array.(page mod t.config.num_disks) in
  let block = page / t.config.num_disks in
  (disk, block)

let read_page ?cat ?background t ~page =
  t.page_reads <- t.page_reads + 1;
  let disk, block = locate t ~page in
  Disk.read ?cat ?background disk ~block ~bytes:t.page_bytes

let write_page ?cat ?background t ~page =
  t.page_writes <- t.page_writes + 1;
  let disk, block = locate t ~page in
  Disk.write ?cat ?background disk ~block ~bytes:t.page_bytes

let page_reads t = t.page_reads
let page_writes t = t.page_writes
let disks t = t.disk_array
let total_busy_time t =
  Array.fold_left (fun acc d -> acc + Disk.busy_time d) 0 t.disk_array

let queue_depth t =
  Array.fold_left (fun acc d -> acc + Disk.queue_depth d) 0 t.disk_array

let total_timeouts t =
  Array.fold_left (fun acc d -> acc + Disk.timeouts d) 0 t.disk_array
