open Memhog_sim

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable rejects : int;
}

let fresh_stats () =
  { reads = 0; writes = 0; timeouts = 0; retries = 0; rejects = 0 }

type read_result = R_ok of int | R_failed of int
type write_result = W_ok of int | W_rejected of int

type t = {
  name : string;
  read :
    cat:Account.category -> background:bool -> site:int -> page:int ->
    read_result;
  write :
    cat:Account.category -> background:bool -> site:int -> page:int ->
    write_result;
  stats : stats;
}

let name t = t.name
let stats t = t.stats

let read_page ?(cat = Account.Io_stall) ?(background = false)
    ?(site = Trace.no_site) t ~page =
  t.read ~cat ~background ~site ~page

let write_page ?(cat = Account.Io_stall) ?(background = false)
    ?(site = Trace.no_site) t ~page =
  t.write ~cat ~background ~site ~page

(* The paper's striped swap volume, adapted behind the interface.  Local
   disks neither time out (the SCSI deadline stays accounting-only there)
   nor reject writes, so every request completes in one attempt. *)
let of_swap sw =
  let stats = fresh_stats () in
  {
    name = "swap";
    read =
      (fun ~cat ~background ~site:_ ~page ->
        stats.reads <- stats.reads + 1;
        Swap.read_page ~cat ~background sw ~page;
        R_ok 1);
    write =
      (fun ~cat ~background ~site:_ ~page ->
        stats.writes <- stats.writes + 1;
        Swap.write_page ~cat ~background sw ~page;
        W_ok 1);
    stats;
  }
