(** Striped swap volume.

    The paper's testbed stripes raw swap across ten Cheetah disks attached
    to five SCSI adapters.  Pages are striped round-robin: page [p] lives on
    disk [p mod n] at per-disk block [p / n], so a sequential page run is
    spread across all arms and can be fetched in parallel — the property
    that makes aggressive prefetching profitable. *)

open Memhog_sim

type config = {
  num_disks : int;
  disks_per_controller : int;
  disk_params : Disk.params;
}

val default_config : config
(** 10 disks, 2 per controller, Cheetah 4LP parameters — Table 1. *)

type t

val create :
  ?config:config ->
  ?chaos:Memhog_sim.Chaos.t ->
  ?trace:Memhog_sim.Trace.t ->
  ?reqtrace:Memhog_sim.Reqtrace.t ->
  page_bytes:int ->
  unit ->
  t
(** [chaos], [trace] and [reqtrace] are handed to every striped disk (see
    {!Disk.create}); all disks share one fault plan. *)

val num_disks : t -> int

val read_page :
  ?cat:Memhog_sim.Account.category -> ?background:bool -> t -> page:int -> unit
(** Fetch one page from swap, blocking the caller for the full I/O.
    [background] requests queue behind demand requests on the owning disk's
    arm ({!Disk.read}): pass it for prefetches. *)

val write_page :
  ?cat:Memhog_sim.Account.category -> ?background:bool -> t -> page:int -> unit

(** {1 Statistics} *)

val page_reads : t -> int
val page_writes : t -> int
val disks : t -> Disk.t array
val total_busy_time : t -> Time_ns.t

val queue_depth : t -> int
(** Requests waiting at (or occupying) any stripe's arm right now —
    a point-in-time gauge for the telemetry scraper. *)

val total_timeouts : t -> int
(** Deadline timeouts summed across the stripes. *)
