(* Struct-of-arrays binary min-heap.  Keys and sequence numbers live in
   unboxed int arrays so the sift comparisons never chase a pointer; the
   payloads sit in a parallel array initialized with a caller-supplied
   [dummy], so neither [add] nor [pop] allocates (no option boxing, no
   result tuples on the hot path).  Popped slots are reset to [dummy] so a
   dead payload is never pinned until the next overwrite.

   Sifting is hole-based: the displaced element is held in locals while
   parents (or children) shift into the hole, one array store per level
   instead of a three-way swap. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  dummy : 'a;
  mutable size : int;
}

let create ~dummy () = { keys = [||]; seqs = [||]; vals = [||]; dummy; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let grow t =
  let cap = max 16 (2 * Array.length t.keys) in
  let keys = Array.make cap 0 and seqs = Array.make cap 0 in
  let vals = Array.make cap t.dummy in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

let add t ~key ~seq value =
  if t.size = Array.length t.keys then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    if key < t.keys.(p) || (key = t.keys.(p) && seq < t.seqs.(p)) then begin
      t.keys.(!i) <- t.keys.(p);
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else sifting := false
  done;
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- value

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty";
  t.keys.(0)

let pop t =
  if t.size = 0 then invalid_arg "Heap.pop: empty";
  let v = t.vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.vals.(0) <- t.dummy
  else begin
    (* sift the displaced last element down from the root *)
    let key = t.keys.(n) and seq = t.seqs.(n) and value = t.vals.(n) in
    t.vals.(n) <- t.dummy;
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= n then sifting := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.keys.(r) < t.keys.(l)
               || (t.keys.(r) = t.keys.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        if t.keys.(c) < key || (t.keys.(c) = key && t.seqs.(c) < seq) then begin
          t.keys.(!i) <- t.keys.(c);
          t.seqs.(!i) <- t.seqs.(c);
          t.vals.(!i) <- t.vals.(c);
          i := c
        end
        else sifting := false
      end
    done;
    t.keys.(!i) <- key;
    t.seqs.(!i) <- seq;
    t.vals.(!i) <- value
  end;
  v

let pop_min t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and seq = t.seqs.(0) in
    Some (key, seq, pop t)
  end

let peek_key t = if t.size = 0 then None else Some (t.keys.(0), t.seqs.(0))

let clear t =
  Array.fill t.vals 0 t.size t.dummy;
  t.size <- 0
