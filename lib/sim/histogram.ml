(* Log-bucketed histogram with fixed, value-independent bucket boundaries
   (HdrHistogram's layout): values 0..31 get exact buckets, and every octave
   above that is split into 16 sub-buckets, bounding relative error at ~6%.
   Because the boundaries never depend on the data, two histograms built
   from different sample partitions merge into exactly the histogram of the
   concatenated samples — the property the deterministic metrics layer
   relies on across --jobs values. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let half = sub_count / 2 (* 16 *)

(* Highest bucket index for a 62-bit max_int is 943; leave slack. *)
let nbuckets = 960

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int; (* max_int when empty *)
  mutable max_v : int; (* -1 when empty *)
}

let create () =
  { counts = Array.make nbuckets 0; total = 0; sum = 0; min_v = max_int; max_v = -1 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- -1

let count t = t.total
let sum t = t.sum
let is_empty t = t.total = 0
let min_value t = if t.total = 0 then None else Some t.min_v
let max_value t = if t.total = 0 then None else Some t.max_v

let mean t =
  if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

(* Position of the highest set bit of [v] > 0. *)
let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

let bucket_of v =
  if v < 0 then invalid_arg "Histogram.bucket_of: negative value";
  if v < sub_count then v
  else begin
    let k = msb v in
    let shift = k - (sub_bits - 1) in
    sub_count + ((k - sub_bits) * half) + ((v lsr shift) - half)
  end

let bucket_lo i =
  if i < sub_count then i
  else begin
    let j = i - sub_count in
    let octave = j / half and pos = j mod half in
    (half + pos) lsl (octave + 1)
  end

let bucket_hi i =
  if i < sub_count then i
  else begin
    let j = i - sub_count in
    let octave = j / half and pos = j mod half in
    ((half + pos + 1) lsl (octave + 1)) - 1
  end

let record ?(n = 1) t v =
  if n < 0 then invalid_arg "Histogram.record: negative count";
  if n > 0 then begin
    let i = bucket_of v in
    t.counts.(i) <- t.counts.(i) + n;
    t.total <- t.total + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let merge ~into src =
  Array.iteri
    (fun i n -> if n > 0 then into.counts.(i) <- into.counts.(i) + n)
    src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

(* The value at percentile [p] (0..100): the upper bound of the bucket
   holding the sample of rank ceil(p/100 * total), clamped to the observed
   range so percentile 0 is the exact minimum and percentile 100 the exact
   maximum.  Monotone in [p]; 0 for an empty histogram. *)
let percentile t p =
  if t.total = 0 then 0
  else if p <= 0.0 then t.min_v
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let rank = max 1 (min rank t.total) in
    let cum = ref 0 and i = ref 0 in
    while !cum < rank do
      cum := !cum + t.counts.(!i);
      if !cum < rank then incr i
    done;
    min (max (bucket_hi !i) t.min_v) t.max_v
  end

let to_alist t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_lo i, t.counts.(i)) :: !acc
  done;
  !acc

let restore ~sum ~min_v ~max_v alist =
  let t = create () in
  List.iter (fun (lo, n) -> record ~n t lo) alist;
  (* The per-bucket [record] calls above put the counts into the right
     buckets (a bucket's lower bound maps back to the same bucket) but
     accumulate lower-bound approximations of sum/min/max; overwrite them
     with the exact recorded values. *)
  if t.total > 0 then begin
    t.sum <- sum;
    t.min_v <- min_v;
    t.max_v <- max_v
  end;
  t

let equal a b =
  a.total = b.total && a.sum = b.sum && a.min_v = b.min_v && a.max_v = b.max_v
  && a.counts = b.counts

let pp fmt t =
  Format.fprintf fmt
    "@[<h>count=%d sum=%d min=%s max=%s p50=%d p90=%d p99=%d@]" t.total t.sum
    (if t.total = 0 then "-" else string_of_int t.min_v)
    (if t.total = 0 then "-" else string_of_int t.max_v)
    (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
