type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand a seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: draw 61 uniform bits and retry while the draw falls
     in the short tail [limit, 2^61) that does not hold a whole number of
     [bound]-sized blocks.  Rejection probability is < bound/2^61, so for
     simulation-sized bounds the fast path is taken essentially always and
     the result is exactly uniform (plain [v mod bound] over-weights small
     residues).  61 bits, not 62: 2^62 is one past [max_int] on a 63-bit
     native int, so the 62-bit limit computation would wrap negative and
     reject every draw. *)
  let limit = 0x2000000000000000 (* 2^61 *) / bound * bound in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 3) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if not (mean > 0.0) then invalid_arg "Rng.exponential: mean must be positive";
  (* Inverse CDF on a [0,1) uniform; log1p (-.u) never sees log 0. *)
  let u = float t 1.0 in
  -.mean *. Float.log1p (-.u)

(* Zipfian sampler over ranks 0..n-1 with weight (rank+1)^-theta, via a
   precomputed cumulative-probability table and binary search.  Building the
   table is O(n) and sampling O(log n); the table is immutable and can be
   shared across streams. *)
type zipf = { zf_cdf : float array }

let zipf_size z = Array.length z.zf_cdf

let zipf_create ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf_create: n must be positive";
  if not (theta >= 0.0) then invalid_arg "Rng.zipf_create: theta must be >= 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let r = float_of_int (i + 1) in
    (* theta = 1 (the classic Zipf law, and the default everywhere in this
       repo) avoids [( ** )] so the table is a pure function of IEEE
       division and addition — byte-reproducible across libm versions. *)
    let w = if theta = 1.0 then 1.0 /. r else r ** -.theta in
    acc := !acc +. w;
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  cdf.(n - 1) <- 1.0;
  { zf_cdf = cdf }

let zipf t z =
  let cdf = z.zf_cdf in
  let u = float t 1.0 in
  (* First index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
