(** Deterministic discrete-event simulation engine.

    Simulated processes are OCaml 5 fibers: ordinary functions that perform
    effects ([delay], [suspend], [spawn], ...) handled by the engine.  The
    engine maintains a single event queue ordered by (timestamp, insertion
    sequence), so identical inputs always produce identical schedules.

    Typical use:
    {[
      let engine = Engine.create () in
      ignore (Engine.spawn engine ~name:"main" (fun () ->
        Engine.delay ~cat:Account.User (Time_ns.ms 3);
        ...));
      Engine.run engine
    ]}

    All of [now], [delay], [suspend], [spawn], [self] and [stop] (the
    unprefixed process operations) require a running engine on the current
    domain; calling them outside [run] raises [Not_in_simulation], as do
    [delay]/[suspend]/[self] when no process fiber is executing (e.g. from
    a [wake_after] timer thunk).  [now], [stop] and [spawn_child] only
    need the engine, so they also work from timer thunks and wakers. *)

type t

type proc_state = Ready | Blocked | Finished | Crashed of exn

type proc = {
  pid : int;
  name : string;
  account : Account.t;
  mutable state : proc_state;
  mutable wakeups : int;  (** diagnostic: how many times resumed *)
}

exception Not_in_simulation
exception Stopped

val create : ?max_time:Time_ns.t -> unit -> t
(** [max_time] is a safety cap on simulated time (default: 10^7 seconds);
    the run halts when the clock would pass it. *)

val now_of : t -> Time_ns.t
(** Current simulated time (readable from outside processes too). *)

val events_executed : t -> int
(** Total events popped from the queue and executed so far.  Deterministic:
    a fixed setup yields the same count on every run, so it doubles as a
    work counter for throughput benchmarks. *)

val spawn : t -> name:string -> (unit -> unit) -> proc
(** Register a new process; it starts at the current simulated time once
    [run] (re)gains control.  Callable from inside or outside processes. *)

val run : t -> unit
(** Run until the event queue drains, [stop] is called, or [max_time] is
    reached.  Processes that crashed are reported via [crashes]. *)

val stopped : t -> bool
val crashes : t -> (string * exn) list
val live_count : t -> int
(** Number of processes spawned and not yet finished. *)

(** {1 Operations available inside processes} *)

type waker = unit -> unit
(** Calling a waker schedules the suspended process to resume at the
    simulated time of the call.  Calling it more than once is harmless. *)

val wake_after : t -> Time_ns.t -> waker -> unit
(** Schedule [waker] to fire after the given simulated delay.  Combined with
    [suspend] this builds interruptible sleeps: suspend, then hand the waker
    both to [wake_after] and to whoever may want to cut the sleep short.
    Callable from inside or outside processes. *)

val now : unit -> Time_ns.t
val self : unit -> proc

val delay : cat:Account.category -> Time_ns.t -> unit
(** Advance this process's clock by the given duration, charging the time to
    [cat] in its account. *)

val suspend : (waker -> unit) -> unit
(** Block until the waker passed to the callback is invoked.  The callback
    runs immediately (in the suspending process's context) and must arrange
    for some other process to call the waker later.  No time category is
    charged here; blocking primitives account the elapsed wait themselves. *)

val spawn_child : name:string -> (unit -> unit) -> proc
(** [spawn] from inside a process. *)

val stop : unit -> unit
(** Request the whole simulation to halt after the current event. *)
