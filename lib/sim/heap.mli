(** Binary min-heap keyed by [(primary, sequence)] integer pairs.

    The event queue of the simulation engine needs a priority queue ordered
    first by timestamp and second by insertion sequence, so that events
    scheduled for the same instant fire in FIFO order and runs are fully
    deterministic.

    Keys and sequence numbers are stored in flat int arrays (no pointer
    chasing during sifts).  Payloads live in a plain array seeded with a
    caller-supplied [dummy] value, so [add] and [pop] allocate nothing on
    the hot path; popped slots are reset to [dummy] so the heap never
    retains a reference to an already-delivered payload (the engine stores
    continuations here, and a pinned continuation can keep a whole
    simulation's state alive). *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] is a placeholder payload used to fill empty slots; it is never
    returned by [pop]/[pop_min]. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> key:int -> seq:int -> 'a -> unit

val min_key : 'a t -> int
(** Smallest primary key. @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a
(** Remove and return the payload with the smallest [(key, seq)] without
    boxing the key pair. @raise Invalid_argument on an empty heap. *)

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)]. *)

val peek_key : 'a t -> (int * int) option

val clear : 'a t -> unit
(** Empty the heap, dropping every stored payload reference. *)
