(** Structured event tracing for the simulator.

    A [Trace.t] is a preallocated ring buffer of typed events, each stamped
    with a simulated-ns timestamp and a {e stream} id.  Streams correspond to
    lanes in a timeline viewer: non-negative stream ids are process pids,
    negative ids are reserved for kernel daemons (see the [*_stream]
    constants below).

    Tracing is designed to be threaded through hot paths: when a trace is
    disabled ([null], or [create ~enabled:false]), [emit] is a single branch
    and allocates nothing.  Call sites should still guard argument
    construction with [enabled t] so that disabled tracing builds no event
    values at all:

    {[
      if Trace.enabled trace then
        Trace.emit trace ~time:(Engine.now ()) ~stream:pid
          (Trace.Hard_fault { vpn })
    ]}

    When the buffer is full the oldest events are overwritten and counted in
    [dropped].

    Events that descend from a compiler directive carry a [site] field: the
    static directive tag ({!Memhog_compiler.Pir.directive}[.d_tag]) threaded
    through the run-time layer, or {!no_site} when the event was not caused
    by a directive (demand activity, daemon-initiated work). *)

type event =
  (* VM-layer events (lib/vm/os.ml). *)
  | Hard_fault of { vpn : int }
  | Soft_fault of { vpn : int }
  | Validation_fault of { vpn : int }
  | Zero_fill of { vpn : int }
  | Rescue of { vpn : int; for_prefetch : bool; site : int }
  | Prefetch_issued of { vpn : int; site : int }
  | Prefetch_dropped of { vpn : int; site : int }
  | Prefetch_raced of { vpn : int; site : int }
  | Prefetch_done of { vpn : int; site : int; ns : int }
      (** a prefetch that brought (or rescued) the page in; [ns] is the I/O
          span the later reference will not pay *)
  | Daemon_steal of { vpn : int; owner : int }
  | Daemon_invalidate of { vpn : int; owner : int }
  | Releaser_free of { vpn : int; owner : int; site : int }
  | Release_requested of { owner : int; count : int }
  | Release_skipped of { vpn : int; owner : int; site : int }
  | Writeback_complete of { vpn : int; owner : int }
  | Frame_reused of { vpn : int; owner : int }
      (** a frame freed by release/steal was handed to another allocation:
          the free genuinely relieved memory pressure *)
  (* Runtime-layer events (lib/runtime/runtime.ml). *)
  | Rt_prefetch_sent of { vpn : int; site : int }
      (** prefetch intent accepted by the run-time layer (pre-OS) *)
  | Rt_release_hint of { vpn : int; site : int; priority : int }
      (** release hint from the application, with its Eq. 2 priority *)
  | Rt_release_sent of { vpn : int; site : int }
      (** release forwarded to the OS (immediate or drained) *)
  | Rt_release_filtered of { vpn : int; reason : string; site : int }
  | Rt_release_buffered of { vpn : int; tag : int; priority : int }
  | Rt_release_issued of { count : int }
  | Rt_release_drained of { count : int }
  | Rt_stale_dropped of { vpn : int; site : int }
  (* Disk-layer events (lib/disk/disk.ml). *)
  | Disk_io of { disk : int; block : int; write : bool; ns : int }
  (* Periodic samples (counters in the Chrome exporter). *)
  | Free_depth of { pages : int }
  | Rss_sample of { owner : int; pages : int }
  | Upper_limit_sample of { owner : int; pages : int }
  | Queue_depth of { owner : int; depth : int }
      (** open-loop server request-queue depth, sampled alongside RSS *)
  (* Application phases (lib/exec). *)
  | Phase_begin of { name : string }
  | Phase_end of { name : string }
  (* Fault injection ({!Chaos}) and the runtime's degradation governor. *)
  | Chaos_disk_fault of { disk : int; block : int; attempt : int }
  | Chaos_stall of { who : string; until : int }
  | Chaos_drop_directive of { count : int }
  | Chaos_pressure of { pages : int; hold : int }
  | Chaos_pressure_end of { pages : int }
  | Governor_transition of {
      level_from : int;
      level_to : int;
      drop_pct : int;  (** window prefetch-drop rate, percent *)
      stale_pct : int;  (** window release-badness rate, percent *)
    }
  (* Tiered backing store (lib/vm/tiers.ml and the lib/disk backends).
     [page] is the swap page id (the striped-swap address), not a vpn. *)
  | Tier_demote of { page : int; tier : int; site : int }
      (** the router placed a released page's contents in [tier] *)
  | Tier_fetch of { page : int; tier : int }
      (** a fault/prefetch was served from [tier] (the entry is consumed) *)
  | Tier_timeout of { page : int; tier : int; attempt : int }
      (** a far-memory attempt was aborted at its deadline and re-issued *)
  | Tier_failover of { page : int; tier_from : int; tier_to : int }
      (** a demotion was redirected because the target tier is unhealthy *)
  | Tier_rescue of { page : int; site : int }
      (** a read against a dead tier was served from its failover copy *)
  | Breaker_transition of { tier : int; state_from : int; state_to : int }
      (** circuit-breaker edge; states are 0=closed, 1=half-open, 2=open *)
  (* Telemetry alert rules ({!Telemetry}). *)
  | Alert_fire of { rule : string; value_ppm : int }
      (** an alert rule crossed its fire threshold; [value_ppm] is the
          signal value scaled by 1e6 (exact enough for a trace, and keeps
          the payload an immediate) *)
  | Alert_clear of { rule : string; value_ppm : int }
      (** the rule crossed back over its clear threshold *)

val no_site : int
(** Site id (-1) for events not attributable to a compiler directive. *)

type t

val null : t
(** A permanently disabled trace; [emit] on it is a no-op. *)

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] is the ring size in events (default 262144). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:Time_ns.t -> stream:int -> event -> unit
(** O(1); overwrites the oldest event when full. No-op when disabled. *)

val set_stream_name : t -> int -> string -> unit
(** Label a stream (process or daemon lane) for exporters. *)

val stream_name : t -> int -> string option

val stream_ids : t -> int list
(** All stream ids that were named, sorted. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val iter : t -> (time:Time_ns.t -> stream:int -> event -> unit) -> unit
(** Iterate retained events oldest-first (timestamps are monotonically
    non-decreasing because emission follows simulated time). *)

val clear : t -> unit

val event_name : event -> string
(** Short stable identifier, e.g. ["hard_fault"]. *)

val event_args : event -> (string * string) list
(** Payload fields as key/value strings, for exporters. *)

val counts : t -> (string * int) list
(** Retained event tally by [event_name], sorted by name. *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Reserved daemon stream ids} *)

val daemon_stream : int
(** paging (clock) daemon: -1 *)

val releaser_stream : int
(** releaser daemon: -2 *)

val writeback_stream : int
(** writeback completions: -3 *)

val kernel_stream : int
(** kernel-wide samples (free-list depth): -4 *)

val chaos_stream : int
(** injected-fault events ({!Chaos} hooks): -5 *)

val disk_stream : int
(** disk request completions ({!Memhog_disk.Disk}): -6 *)

val tier_stream : int
(** tiered-backing-store router and breaker events: -7 *)

val telemetry_stream : int
(** telemetry alert fire/clear events: -8 *)
