type event =
  | Hard_fault of { vpn : int }
  | Soft_fault of { vpn : int }
  | Validation_fault of { vpn : int }
  | Zero_fill of { vpn : int }
  | Rescue of { vpn : int; for_prefetch : bool; site : int }
  | Prefetch_issued of { vpn : int; site : int }
  | Prefetch_dropped of { vpn : int; site : int }
  | Prefetch_raced of { vpn : int; site : int }
  | Prefetch_done of { vpn : int; site : int; ns : int }
  | Daemon_steal of { vpn : int; owner : int }
  | Daemon_invalidate of { vpn : int; owner : int }
  | Releaser_free of { vpn : int; owner : int; site : int }
  | Release_requested of { owner : int; count : int }
  | Release_skipped of { vpn : int; owner : int; site : int }
  | Writeback_complete of { vpn : int; owner : int }
  | Frame_reused of { vpn : int; owner : int }
  | Rt_prefetch_sent of { vpn : int; site : int }
  | Rt_release_hint of { vpn : int; site : int; priority : int }
  | Rt_release_sent of { vpn : int; site : int }
  | Rt_release_filtered of { vpn : int; reason : string; site : int }
  | Rt_release_buffered of { vpn : int; tag : int; priority : int }
  | Rt_release_issued of { count : int }
  | Rt_release_drained of { count : int }
  | Rt_stale_dropped of { vpn : int; site : int }
  | Disk_io of { disk : int; block : int; write : bool; ns : int }
  | Free_depth of { pages : int }
  | Rss_sample of { owner : int; pages : int }
  | Upper_limit_sample of { owner : int; pages : int }
  | Queue_depth of { owner : int; depth : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }
  | Chaos_disk_fault of { disk : int; block : int; attempt : int }
  | Chaos_stall of { who : string; until : int }
  | Chaos_drop_directive of { count : int }
  | Chaos_pressure of { pages : int; hold : int }
  | Chaos_pressure_end of { pages : int }
  | Governor_transition of {
      level_from : int;
      level_to : int;
      drop_pct : int;
      stale_pct : int;
    }
  | Tier_demote of { page : int; tier : int; site : int }
  | Tier_fetch of { page : int; tier : int }
  | Tier_timeout of { page : int; tier : int; attempt : int }
  | Tier_failover of { page : int; tier_from : int; tier_to : int }
  | Tier_rescue of { page : int; site : int }
  | Breaker_transition of { tier : int; state_from : int; state_to : int }
  (* Telemetry alert rules ({!Telemetry}). *)
  | Alert_fire of { rule : string; value_ppm : int }
  | Alert_clear of { rule : string; value_ppm : int }

let no_site = -1

(* The ring is three parallel arrays rather than an array of records so that
   a retained trace costs two unboxed words per event plus the event value
   itself (most constructors carry only immediates). *)
type t = {
  times : int array;
  streams : int array;
  events : event array;
  capacity : int;
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable enabled : bool;
  names : (int, string) Hashtbl.t;
}

let dummy_event = Free_depth { pages = 0 }

let create ?(capacity = 262_144) ?(enabled = true) () =
  let capacity = max capacity 0 in
  {
    times = Array.make (max capacity 1) 0;
    streams = Array.make (max capacity 1) 0;
    events = Array.make (max capacity 1) dummy_event;
    capacity;
    start = 0;
    len = 0;
    dropped = 0;
    enabled;
    names = Hashtbl.create 16;
  }

let null = create ~capacity:0 ~enabled:false ()

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let length t = t.len
let dropped t = t.dropped

let emit t ~time ~stream ev =
  if t.enabled && t.capacity > 0 then begin
    let i =
      if t.len < t.capacity then begin
        let i = (t.start + t.len) mod t.capacity in
        t.len <- t.len + 1;
        i
      end
      else begin
        (* Full: overwrite the oldest slot and advance the start. *)
        let i = t.start in
        t.start <- (t.start + 1) mod t.capacity;
        t.dropped <- t.dropped + 1;
        i
      end
    in
    t.times.(i) <- time;
    t.streams.(i) <- stream;
    t.events.(i) <- ev
  end

let set_stream_name t stream name = Hashtbl.replace t.names stream name
let stream_name t stream = Hashtbl.find_opt t.names stream

let stream_ids t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.names [] |> List.sort compare

let iter t f =
  for j = 0 to t.len - 1 do
    let i = (t.start + j) mod t.capacity in
    f ~time:t.times.(i) ~stream:t.streams.(i) t.events.(i)
  done

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let event_name = function
  | Hard_fault _ -> "hard_fault"
  | Soft_fault _ -> "soft_fault"
  | Validation_fault _ -> "validation_fault"
  | Zero_fill _ -> "zero_fill"
  | Rescue _ -> "rescue"
  | Prefetch_issued _ -> "prefetch_issued"
  | Prefetch_dropped _ -> "prefetch_dropped"
  | Prefetch_raced _ -> "prefetch_raced"
  | Prefetch_done _ -> "prefetch_done"
  | Daemon_steal _ -> "daemon_steal"
  | Daemon_invalidate _ -> "daemon_invalidate"
  | Releaser_free _ -> "releaser_free"
  | Release_requested _ -> "release_requested"
  | Release_skipped _ -> "release_skipped"
  | Writeback_complete _ -> "writeback_complete"
  | Frame_reused _ -> "frame_reused"
  | Rt_prefetch_sent _ -> "rt_prefetch_sent"
  | Rt_release_hint _ -> "rt_release_hint"
  | Rt_release_sent _ -> "rt_release_sent"
  | Rt_release_filtered _ -> "rt_release_filtered"
  | Rt_release_buffered _ -> "rt_release_buffered"
  | Rt_release_issued _ -> "rt_release_issued"
  | Rt_release_drained _ -> "rt_release_drained"
  | Rt_stale_dropped _ -> "rt_stale_dropped"
  | Disk_io _ -> "disk_io"
  | Free_depth _ -> "free_depth"
  | Rss_sample _ -> "rss_sample"
  | Upper_limit_sample _ -> "upper_limit_sample"
  | Queue_depth _ -> "queue_depth"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Chaos_disk_fault _ -> "chaos_disk_fault"
  | Chaos_stall _ -> "chaos_stall"
  | Chaos_drop_directive _ -> "chaos_drop_directive"
  | Chaos_pressure _ -> "chaos_pressure"
  | Chaos_pressure_end _ -> "chaos_pressure_end"
  | Governor_transition _ -> "governor_transition"
  | Tier_demote _ -> "tier_demote"
  | Tier_fetch _ -> "tier_fetch"
  | Tier_timeout _ -> "tier_timeout"
  | Tier_failover _ -> "tier_failover"
  | Tier_rescue _ -> "tier_rescue"
  | Breaker_transition _ -> "breaker_transition"
  | Alert_fire _ -> "alert_fire"
  | Alert_clear _ -> "alert_clear"

let event_args = function
  | Hard_fault { vpn }
  | Soft_fault { vpn }
  | Validation_fault { vpn }
  | Zero_fill { vpn } ->
      [ ("vpn", string_of_int vpn) ]
  | Rescue { vpn; for_prefetch; site } ->
      [
        ("vpn", string_of_int vpn);
        ("for_prefetch", string_of_bool for_prefetch);
        ("site", string_of_int site);
      ]
  | Prefetch_issued { vpn; site }
  | Prefetch_dropped { vpn; site }
  | Prefetch_raced { vpn; site }
  | Rt_prefetch_sent { vpn; site }
  | Rt_release_sent { vpn; site }
  | Rt_stale_dropped { vpn; site } ->
      [ ("vpn", string_of_int vpn); ("site", string_of_int site) ]
  | Prefetch_done { vpn; site; ns } ->
      [
        ("vpn", string_of_int vpn);
        ("site", string_of_int site);
        ("ns", string_of_int ns);
      ]
  | Daemon_steal { vpn; owner }
  | Daemon_invalidate { vpn; owner }
  | Writeback_complete { vpn; owner }
  | Frame_reused { vpn; owner } ->
      [ ("vpn", string_of_int vpn); ("owner", string_of_int owner) ]
  | Releaser_free { vpn; owner; site } | Release_skipped { vpn; owner; site } ->
      [
        ("vpn", string_of_int vpn);
        ("owner", string_of_int owner);
        ("site", string_of_int site);
      ]
  | Release_requested { owner; count } ->
      [ ("owner", string_of_int owner); ("count", string_of_int count) ]
  | Rt_release_hint { vpn; site; priority } ->
      [
        ("vpn", string_of_int vpn);
        ("site", string_of_int site);
        ("priority", string_of_int priority);
      ]
  | Rt_release_filtered { vpn; reason; site } ->
      [
        ("vpn", string_of_int vpn);
        ("reason", reason);
        ("site", string_of_int site);
      ]
  | Rt_release_buffered { vpn; tag; priority } ->
      [
        ("vpn", string_of_int vpn);
        ("tag", string_of_int tag);
        ("priority", string_of_int priority);
      ]
  | Rt_release_issued { count } | Rt_release_drained { count } ->
      [ ("count", string_of_int count) ]
  | Disk_io { disk; block; write; ns } ->
      [
        ("disk", string_of_int disk);
        ("block", string_of_int block);
        ("write", string_of_bool write);
        ("ns", string_of_int ns);
      ]
  | Free_depth { pages } -> [ ("pages", string_of_int pages) ]
  | Rss_sample { owner; pages } | Upper_limit_sample { owner; pages } ->
      [ ("owner", string_of_int owner); ("pages", string_of_int pages) ]
  | Queue_depth { owner; depth } ->
      [ ("owner", string_of_int owner); ("depth", string_of_int depth) ]
  | Phase_begin { name } | Phase_end { name } -> [ ("name", name) ]
  | Chaos_disk_fault { disk; block; attempt } ->
      [
        ("disk", string_of_int disk);
        ("block", string_of_int block);
        ("attempt", string_of_int attempt);
      ]
  | Chaos_stall { who; until } -> [ ("who", who); ("until", string_of_int until) ]
  | Chaos_drop_directive { count } -> [ ("count", string_of_int count) ]
  | Chaos_pressure { pages; hold } ->
      [ ("pages", string_of_int pages); ("hold", string_of_int hold) ]
  | Chaos_pressure_end { pages } -> [ ("pages", string_of_int pages) ]
  | Governor_transition { level_from; level_to; drop_pct; stale_pct } ->
      [
        ("level_from", string_of_int level_from);
        ("level_to", string_of_int level_to);
        ("drop_pct", string_of_int drop_pct);
        ("stale_pct", string_of_int stale_pct);
      ]
  | Tier_demote { page; tier; site } ->
      [
        ("page", string_of_int page);
        ("tier", string_of_int tier);
        ("site", string_of_int site);
      ]
  | Tier_fetch { page; tier } ->
      [ ("page", string_of_int page); ("tier", string_of_int tier) ]
  | Tier_timeout { page; tier; attempt } ->
      [
        ("page", string_of_int page);
        ("tier", string_of_int tier);
        ("attempt", string_of_int attempt);
      ]
  | Tier_failover { page; tier_from; tier_to } ->
      [
        ("page", string_of_int page);
        ("tier_from", string_of_int tier_from);
        ("tier_to", string_of_int tier_to);
      ]
  | Tier_rescue { page; site } ->
      [ ("page", string_of_int page); ("site", string_of_int site) ]
  | Breaker_transition { tier; state_from; state_to } ->
      [
        ("tier", string_of_int tier);
        ("state_from", string_of_int state_from);
        ("state_to", string_of_int state_to);
      ]
  | Alert_fire { rule; value_ppm } | Alert_clear { rule; value_ppm } ->
      [ ("rule", rule); ("value_ppm", string_of_int value_ppm) ]

let counts t =
  let tbl = Hashtbl.create 32 in
  iter t (fun ~time:_ ~stream:_ ev ->
      let name = event_name ev in
      let n = Option.value (Hashtbl.find_opt tbl name) ~default:0 in
      Hashtbl.replace tbl name (n + 1));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>trace: %d events retained, %d dropped@," t.len
    t.dropped;
  List.iter
    (fun (name, n) -> Format.fprintf ppf "  %-22s %d@," name n)
    (counts t);
  Format.fprintf ppf "@]"

let daemon_stream = -1
let releaser_stream = -2
let writeback_stream = -3
let kernel_stream = -4
let chaos_stream = -5
let disk_stream = -6
let tier_stream = -7
let telemetry_stream = -8
