type stats = {
  mutable disk_faults : int;
  mutable disk_retries : int;
  mutable disk_backoff_ns : int;
  mutable slow_requests : int;
  mutable releaser_stall_ns : int;
  mutable daemon_stall_ns : int;
  mutable directives_dropped : int;
  mutable pressure_spikes : int;
  mutable pressure_pages : int;
  mutable net_partition_drops : int;
  mutable net_slow_requests : int;
  mutable net_jitter_ns : int;
}

let fresh_stats () =
  {
    disk_faults = 0;
    disk_retries = 0;
    disk_backoff_ns = 0;
    slow_requests = 0;
    releaser_stall_ns = 0;
    daemon_stall_ns = 0;
    directives_dropped = 0;
    pressure_spikes = 0;
    pressure_pages = 0;
    net_partition_drops = 0;
    net_slow_requests = 0;
    net_jitter_ns = 0;
  }

type kind =
  | Disk_fault
  | Disk_slow
  | Releaser_stall
  | Releaser_drop
  | Daemon_stall
  | Pressure
  | Net_partition
  | Net_brownout
  | Net_jitter

(* One parsed clause.  Fields irrelevant to a kind keep their defaults and
   are never read; each rule owns an independent RNG stream so the draw
   sequence of one rule cannot disturb another's. *)
type rule = {
  kind : kind;
  start : Time_ns.t;
  stop : Time_ns.t;
  p : float;
  retries : int;
  fails : int option;
  backoff : Time_ns.t;
  factor : float;
  pages : int;
  hold : Time_ns.t;
  latency : Time_ns.t;
  bandwidth : float;
  rng : Rng.t;
}

type t = { rules : rule list; st : stats }

let none = { rules = []; st = fresh_stats () }
let is_none t = t.rules = []
let stats t = t.st

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>disk faults: %d (%d retries, %s backoff)@,\
     slow requests: %d@,\
     stalls: releaser %s, daemon %s@,\
     directives dropped: %d@,\
     pressure: %d spikes, %d pages@,\
     net: %d partition drops, %d slow requests, %s jitter@]"
    s.disk_faults s.disk_retries
    (Time_ns.to_string s.disk_backoff_ns)
    s.slow_requests
    (Time_ns.to_string s.releaser_stall_ns)
    (Time_ns.to_string s.daemon_stall_ns)
    s.directives_dropped s.pressure_spikes s.pressure_pages
    s.net_partition_drops s.net_slow_requests
    (Time_ns.to_string s.net_jitter_ns)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let kind_of_string = function
  | "disk-fault" -> Disk_fault
  | "disk-slow" -> Disk_slow
  | "releaser-stall" -> Releaser_stall
  | "releaser-drop" -> Releaser_drop
  | "daemon-stall" -> Daemon_stall
  | "pressure" -> Pressure
  | "net-partition" -> Net_partition
  | "net-brownout" -> Net_brownout
  | "net-jitter" -> Net_jitter
  | s -> bad "unknown fault kind %S" s

let parse_time s =
  let s = String.trim s in
  let num, unit_ =
    let n = String.length s in
    let rec split i =
      if i = 0 then bad "bad time %S" s
      else
        let c = s.[i - 1] in
        if (c >= '0' && c <= '9') || c = '.' then
          (String.sub s 0 i, String.sub s i (n - i))
        else split (i - 1)
    in
    if n = 0 then bad "empty time" else split n
  in
  let v =
    match float_of_string_opt num with
    | Some v when v >= 0.0 -> v
    | _ -> bad "bad time %S" s
  in
  let scale =
    match unit_ with
    | "ns" -> 1.0
    | "us" -> 1e3
    | "ms" -> 1e6
    | "" | "s" -> 1e9
    | "m" -> 60e9
    | "h" -> 3600e9
    | u -> bad "unknown time unit %S in %S" u s
  in
  int_of_float (v *. scale)

let parse_float k s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad "bad number %S for %s" s k

let parse_int k s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad "bad integer %S for %s" s k

(* A clause before RNG assignment. *)
type proto = {
  pr_kind : kind;
  pr_start : Time_ns.t;
  pr_stop : Time_ns.t;
  pr_params : (string * string) list;  (* values still textual *)
}

let split_on_string ~sep s =
  (* OCaml's String.split_on_char is enough: all our separators are chars *)
  String.split_on_char sep s

let parse_clause clause =
  match String.index_opt clause '@' with
  | None -> bad "clause %S: expected kind@start-stop[:params]" clause
  | Some at ->
      let kind = kind_of_string (String.trim (String.sub clause 0 at)) in
      let rest = String.sub clause (at + 1) (String.length clause - at - 1) in
      let window, params =
        match String.index_opt rest ':' with
        | None -> (rest, [])
        | Some c ->
            let w = String.sub rest 0 c in
            let p = String.sub rest (c + 1) (String.length rest - c - 1) in
            let kvs =
              List.filter_map
                (fun kv ->
                  let kv = String.trim kv in
                  if kv = "" then None
                  else
                    match String.index_opt kv '=' with
                    | None -> bad "bad parameter %S (expected key=value)" kv
                    | Some e ->
                        Some
                          ( String.trim (String.sub kv 0 e),
                            String.sub kv (e + 1) (String.length kv - e - 1)
                          ))
                (split_on_string ~sep:',' p)
            in
            (w, kvs)
      in
      let start, stop =
        match split_on_string ~sep:'-' window with
        | [ a; b ] -> (parse_time a, parse_time b)
        | _ -> bad "bad window %S (expected start-stop)" window
      in
      { pr_kind = kind; pr_start = start; pr_stop = stop; pr_params = params }

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (self-contained: this library sits below the
   metrics layer, so it cannot reuse Metrics_io's parser).              *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> bad "JSON: expected %C at offset %d" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "JSON: unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | _ -> bad "JSON: unsupported escape in string")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "JSON: unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> bad "JSON: expected ',' or '}' at offset %d" !pos
          in
          Jobj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Jarr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> bad "JSON: expected ',' or ']' at offset %d" !pos
          in
          Jarr (elements [])
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
          pos := !pos + 4;
          Jbool true)
        else bad "JSON: bad literal at offset %d" !pos
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
          pos := !pos + 5;
          Jbool false)
        else bad "JSON: bad literal at offset %d" !pos
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (
          pos := !pos + 4;
          Jnull)
        else bad "JSON: bad literal at offset %d" !pos
    | Some _ ->
        let start = !pos in
        let rec num_end () =
          match peek () with
          | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
              advance ();
              num_end ()
          | _ -> ()
        in
        num_end ();
        let lit = String.sub s start (!pos - start) in
        (match float_of_string_opt lit with
        | Some v -> Jnum v
        | None -> bad "JSON: bad number %S at offset %d" lit start)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "JSON: trailing garbage at offset %d" !pos;
  v

let json_time = function
  | Jstr s -> parse_time s
  | Jnum v when v >= 0.0 -> int_of_float (v *. 1e9)
  | _ -> bad "JSON: bad time value"

let json_param_string = function
  | Jstr s -> s
  | Jnum v ->
      if Float.is_integer v then string_of_int (int_of_float v)
      else string_of_float v
  | Jbool b -> string_of_bool b
  | _ -> bad "JSON: bad parameter value"

let proto_of_json = function
  | Jobj fields ->
      let find k = List.assoc_opt k fields in
      let kind =
        match find "fault" with
        | Some (Jstr k) -> kind_of_string k
        | _ -> bad "JSON rule: missing \"fault\" kind"
      in
      let start =
        match find "start" with
        | Some v -> json_time v
        | None -> bad "JSON rule: missing \"start\""
      in
      let stop =
        match find "stop" with
        | Some v -> json_time v
        | None -> bad "JSON rule: missing \"stop\""
      in
      let params =
        List.filter_map
          (fun (k, v) ->
            match k with
            | "fault" | "start" | "stop" -> None
            | "backoff" | "hold" | "latency" ->
                (* times: normalise to a textual ns value the DSL path
                   understands *)
                Some (k, string_of_int (json_time v) ^ "ns")
            | _ -> Some (k, json_param_string v))
          fields
      in
      { pr_kind = kind; pr_start = start; pr_stop = stop; pr_params = params }
  | _ -> bad "JSON rule: expected an object"

(* ------------------------------------------------------------------ *)
(* Rule construction and validation                                    *)
(* ------------------------------------------------------------------ *)

let default_backoff = Time_ns.us 500
let default_hold = Time_ns.sec 1

let rule_of_proto ~seed ~index pr =
  let p = ref 1.0
  and retries = ref 4
  and fails = ref None
  and backoff = ref default_backoff
  and factor = ref 4.0
  and pages = ref 64
  and hold = ref default_hold
  and latency = ref 0
  and bandwidth = ref 1.0
  and net_shape_given = ref false in
  List.iter
    (fun (k, v) ->
      match k with
      | "p" -> p := parse_float k v
      | "retries" -> retries := parse_int k v
      | "fails" -> fails := Some (parse_int k v)
      | "backoff" -> backoff := parse_time v
      | "factor" ->
          factor := parse_float k v;
          net_shape_given := true
      | "pages" -> pages := parse_int k v
      | "hold" -> hold := parse_time v
      | "latency" -> latency := parse_time v
      | "bandwidth" ->
          bandwidth := parse_float k v;
          net_shape_given := true
      | _ -> bad "unknown parameter %S" k)
    pr.pr_params;
  if pr.pr_stop <= pr.pr_start then
    bad "window stop (%s) must follow start (%s)"
      (Time_ns.to_string pr.pr_stop)
      (Time_ns.to_string pr.pr_start);
  if !p < 0.0 || !p > 1.0 then bad "p=%g out of [0,1]" !p;
  if !retries < 1 then bad "retries=%d must be >= 1" !retries;
  (match !fails with
  | Some f when f < 1 || f > !retries ->
      bad "fails=%d out of [1,retries=%d]" f !retries
  | _ -> ());
  if !factor < 1.0 then bad "factor=%g must be >= 1" !factor;
  if !pages < 1 then bad "pages=%d must be >= 1" !pages;
  if !hold < 1 then bad "hold must be positive";
  if !backoff < 1 then bad "backoff must be positive";
  (* Net clauses: a malformed bandwidth or latency must fail the parse, not
     silently degrade to the defaults — a typo here would otherwise turn a
     brown-out scenario into a no-op. *)
  if !latency < 0 then bad "latency must be non-negative";
  if !bandwidth <= 0.0 || !bandwidth > 1.0 then
    bad "bandwidth=%g out of (0,1] (fraction of nominal link rate)" !bandwidth;
  (match pr.pr_kind with
  | Net_jitter when !latency < 1 ->
      bad "net-jitter requires latency=TIME (> 0) for the jitter amplitude"
  | Net_brownout
    when (not !net_shape_given) || (!factor <= 1.0 && !bandwidth >= 1.0) ->
      (* the shared factor default (4, for disk-slow) must not silently
         shape a brown-out the spec never asked for *)
      bad
        "net-brownout requires factor>1 (latency multiplier) and/or \
         bandwidth<1 (link derating)"
  | _ -> ());
  {
    kind = pr.pr_kind;
    start = pr.pr_start;
    stop = pr.pr_stop;
    p = !p;
    retries = !retries;
    fails = !fails;
    backoff = !backoff;
    factor = !factor;
    pages = !pages;
    hold = !hold;
    latency = !latency;
    bandwidth = !bandwidth;
    (* A distinct stream per rule: the golden-ratio multiplier decorrelates
       neighbouring indices even under a zero seed. *)
    rng = Rng.create ~seed:(seed lxor (0x9E3779B9 * (index + 1)));
  }

let build ~seed protos =
  let rules = List.mapi (fun i pr -> rule_of_proto ~seed ~index:i pr) protos in
  { rules; st = fresh_stats () }

let parse ?(seed = 0) spec =
  let trimmed = String.trim spec in
  try
    if trimmed = "" then Ok { none with st = fresh_stats () }
    else if trimmed.[0] = '[' || trimmed.[0] = '{' then (
      let j = parse_json trimmed in
      let seed, rules_json =
        match j with
        | Jarr rules -> (seed, rules)
        | Jobj fields -> (
            let s =
              match List.assoc_opt "seed" fields with
              | Some (Jnum v) -> int_of_float v
              | Some _ -> bad "JSON: \"seed\" must be a number"
              | None -> seed
            in
            match List.assoc_opt "rules" fields with
            | Some (Jarr rules) -> (s, rules)
            | _ -> bad "JSON: expected a \"rules\" array")
        | _ -> bad "JSON: expected an array of rules or an object"
      in
      Ok (build ~seed (List.map proto_of_json rules_json)))
    else
      let clauses =
        List.filter_map
          (fun c ->
            let c = String.trim c in
            if c = "" then None else Some c)
          (split_on_string ~sep:';' trimmed)
      in
      let seed =
        List.fold_left
          (fun acc c ->
            match String.index_opt c '=' with
            | Some e
              when String.index_opt c '@' = None
                   && String.trim (String.sub c 0 e) = "seed" ->
                parse_int "seed"
                  (String.sub c (e + 1) (String.length c - e - 1))
            | _ -> acc)
          seed clauses
      in
      let protos =
        List.filter_map
          (fun c ->
            match String.index_opt c '@' with
            | Some _ -> Some (parse_clause c)
            | None -> (
                (* only seed= clauses may omit the window; anything else
                   without one is a typo, not something to ignore *)
                match String.index_opt c '=' with
                | Some e when String.trim (String.sub c 0 e) = "seed" -> None
                | _ ->
                    bad "clause %S: expected kind@start-stop[:params] or seed=N"
                      c))
          clauses
      in
      Ok (build ~seed protos)
  with Bad msg -> Error (Printf.sprintf "chaos spec: %s" msg)

let create ?seed spec =
  match parse ?seed spec with
  | Ok t -> t
  | Error msg -> invalid_arg msg

(* ------------------------------------------------------------------ *)
(* Hook points                                                         *)
(* ------------------------------------------------------------------ *)

let active r ~now = now >= r.start && now < r.stop

let disk_fault t ~now =
  let rec find = function
    | [] -> None
    | r :: rest when r.kind = Disk_fault && active r ~now ->
        if r.p >= 1.0 || Rng.float r.rng 1.0 < r.p then (
          let k =
            match r.fails with
            | Some k -> k
            | None -> 1 + Rng.int r.rng r.retries
          in
          t.st.disk_faults <- t.st.disk_faults + 1;
          Some (k, r.backoff))
        else find rest
    | _ :: rest -> find rest
  in
  find t.rules

let note_disk_retry t ~backoff =
  t.st.disk_retries <- t.st.disk_retries + 1;
  t.st.disk_backoff_ns <- t.st.disk_backoff_ns + backoff

let disk_slow_factor t ~now =
  let f =
    List.fold_left
      (fun acc r ->
        if r.kind = Disk_slow && active r ~now then Float.max acc r.factor
        else acc)
      1.0 t.rules
  in
  if f > 1.0 then t.st.slow_requests <- t.st.slow_requests + 1;
  f

let stall_until t who ~now =
  let kind = match who with `Releaser -> Releaser_stall | `Daemon -> Daemon_stall in
  List.fold_left
    (fun acc r ->
      if r.kind = kind && active r ~now then
        match acc with
        | Some stop -> Some (max stop r.stop)
        | None -> Some r.stop
      else acc)
    None t.rules

let note_stall t who d =
  match who with
  | `Releaser -> t.st.releaser_stall_ns <- t.st.releaser_stall_ns + d
  | `Daemon -> t.st.daemon_stall_ns <- t.st.daemon_stall_ns + d

let drop_directive t ~now =
  let rec find = function
    | [] -> false
    | r :: rest when r.kind = Releaser_drop && active r ~now ->
        if r.p >= 1.0 || Rng.float r.rng 1.0 < r.p then (
          t.st.directives_dropped <- t.st.directives_dropped + 1;
          true)
        else find rest
    | _ :: rest -> find rest
  in
  find t.rules

let pressure_spikes t =
  t.rules
  |> List.filter_map (fun r ->
         if r.kind = Pressure then Some (r.start, r.pages, r.hold) else None)
  |> List.sort compare

let note_pressure t ~pages =
  t.st.pressure_spikes <- t.st.pressure_spikes + 1;
  t.st.pressure_pages <- t.st.pressure_pages + pages

(* ---- network-tier hooks (far-memory backend) ---- *)

let net_partitioned t ~now =
  let rec find = function
    | [] -> false
    | r :: rest when r.kind = Net_partition && active r ~now ->
        if r.p >= 1.0 || Rng.float r.rng 1.0 < r.p then (
          t.st.net_partition_drops <- t.st.net_partition_drops + 1;
          true)
        else find rest
    | _ :: rest -> find rest
  in
  find t.rules

let net_latency_factor t ~now =
  let f =
    List.fold_left
      (fun acc r ->
        if r.kind = Net_brownout && active r ~now then Float.max acc r.factor
        else acc)
      1.0 t.rules
  in
  if f > 1.0 then t.st.net_slow_requests <- t.st.net_slow_requests + 1;
  f

let net_bandwidth_scale t ~now =
  List.fold_left
    (fun acc r ->
      if r.kind = Net_brownout && active r ~now then Float.min acc r.bandwidth
      else acc)
    1.0 t.rules

let net_jitter t ~now =
  let j =
    List.fold_left
      (fun acc r ->
        if r.kind = Net_jitter && active r ~now then
          if r.p >= 1.0 || Rng.float r.rng 1.0 < r.p then
            acc + Rng.int r.rng (r.latency + 1)
          else acc
        else acc)
      0 t.rules
  in
  if j > 0 then t.st.net_jitter_ns <- t.st.net_jitter_ns + j;
  j

(* ---- retry backoff schedule ---- *)

(* Shared by the disk-fault retry path and the far-memory re-issue path.
   Attempt [i] (1-based) waits [base * 2^(i-1)], saturating at [cap]; pure,
   total and overflow-safe so the property suite can hammer it. *)
let backoff_delay ~base ~cap ~attempt =
  if base < 1 then invalid_arg "Chaos.backoff_delay: base must be >= 1";
  if cap < base then invalid_arg "Chaos.backoff_delay: cap must be >= base";
  if attempt < 1 then invalid_arg "Chaos.backoff_delay: attempt must be >= 1";
  let shift = attempt - 1 in
  (* [base lsl shift] would overflow long before shift reaches 62; compare
     against the cap in shifted-down space instead. *)
  if shift >= 62 || base > cap asr shift then cap else base lsl shift
