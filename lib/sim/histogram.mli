(** Log-bucketed histograms with fixed bucket boundaries.

    The layout is HdrHistogram's: values [0..31] get exact unit buckets and
    each octave above that is split into 16 sub-buckets, so the recorded
    value of a bucket is within ~6% of every sample it holds.  Boundaries
    are value-independent constants, which buys two properties the derived
    metrics layer needs:

    - {e determinism}: the same samples always land in the same buckets, so
      serialized histograms are byte-stable;
    - {e mergeability}: merging two histograms is exactly the histogram of
      the concatenated samples (counts add bucket-wise).

    Values are non-negative ints — simulated-ns durations or page counts.
    The exact minimum, maximum and sum are tracked alongside the buckets, so
    [percentile t 100.0] is the true maximum and [mean] is exact. *)

type t

val create : unit -> t
val clear : t -> unit

val record : ?n:int -> t -> int -> unit
(** Record one sample ([n] occurrences of it, default 1).  Raises
    [Invalid_argument] on negative values or counts. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s samples into [into]. *)

val count : t -> int
val sum : t -> int
val is_empty : t -> bool
val min_value : t -> int option
val max_value : t -> int option
val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the upper bound of the bucket
    holding the rank-[ceil (p/100 * count)] sample, clamped to the observed
    [min]/[max], so [p = 0] is the exact minimum and [p = 100] the exact
    maximum.  Monotone nondecreasing in [p]; 0 when empty. *)

(** {1 Serialization support} *)

val to_alist : t -> (int * int) list
(** Non-empty buckets as [(bucket lower bound, count)], ascending.  A
    bucket's lower bound maps back into the same bucket, so this form
    round-trips through {!restore}. *)

val restore : sum:int -> min_v:int -> max_v:int -> (int * int) list -> t
(** Rebuild a histogram from {!to_alist} output plus the exact sum, min and
    max that were serialized alongside it. *)

val equal : t -> t -> bool
(** Structural equality: same buckets, counts, sum, min and max. *)

val pp : Format.formatter -> t -> unit

(** {1 Bucket geometry (exposed for tests and exporters)} *)

val bucket_of : int -> int
val bucket_lo : int -> int
val bucket_hi : int -> int
