type category = User | System | Io_stall | Resource_stall | Sleep

let all_categories = [ User; System; Io_stall; Resource_stall; Sleep ]

let index = function
  | User -> 0
  | System -> 1
  | Io_stall -> 2
  | Resource_stall -> 3
  | Sleep -> 4

let category_name = function
  | User -> "user"
  | System -> "system"
  | Io_stall -> "io-stall"
  | Resource_stall -> "resource-stall"
  | Sleep -> "sleep"

type t = { buckets : int array }

let create () = { buckets = Array.make 5 0 }

let add t cat d =
  if d < 0 then invalid_arg "Account.add: negative duration";
  t.buckets.(index cat) <- t.buckets.(index cat) + d

let get t cat = t.buckets.(index cat)

let add_to dst src =
  Array.iteri (fun i d -> dst.buckets.(i) <- dst.buckets.(i) + d) src.buckets

let total t = Array.fold_left ( + ) 0 t.buckets

let busy_total t = total t - get t Sleep

let reset t = Array.fill t.buckets 0 (Array.length t.buckets) 0

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  List.iter
    (fun cat ->
      Format.fprintf fmt "%s=%a " (category_name cat) Time_ns.pp (get t cat))
    all_categories;
  Format.fprintf fmt "@]"
