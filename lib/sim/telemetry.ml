type kind = Counter | Gauge

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

type series = {
  se_name : string;
  se_help : string;
  se_kind : kind;
  se_probe : unit -> float;
  (* retained window: a ring of the newest [capacity] samples *)
  r_times : int array;
  r_values : float array;
  mutable r_start : int;
  mutable r_len : int;
  (* all-time aggregates, exact regardless of what the ring dropped *)
  mutable a_count : int;
  mutable a_last : float;
  mutable a_min : float;
  mutable a_max : float;
  mutable a_sum : float;
}

type direction = Above | Below

type signal =
  | Last
  | Window_mean
  | Window_min
  | Window_max
  | Window_rate
  | Window_ratio of string

type rule = {
  ru_name : string;
  ru_series : series;
  ru_denom : series option;  (* Window_ratio denominator *)
  ru_signal : signal;
  ru_window : int;
  ru_direction : direction;
  ru_fire : float;
  ru_clear : float;
  mutable ru_active : bool;
}

type alert = {
  al_time : Time_ns.t;
  al_rule : string;
  al_fired : bool;
  al_value : float;
}

type t = {
  tl_enabled : bool;
  tl_capacity : int;
  tl_trace : Trace.t;
  tl_index : (string, series) Hashtbl.t;
  mutable tl_series : series list;  (* reverse registration order *)
  mutable tl_rules : rule list;  (* reverse registration order *)
  mutable tl_scrapes : int;
  mutable tl_last_time : int;
  mutable tl_alerts : alert list;  (* reverse chronological *)
}

let create ?(capacity = 720) ?(trace = Trace.null) () =
  if capacity < 1 then invalid_arg "Telemetry.create: capacity must be >= 1";
  {
    tl_enabled = true;
    tl_capacity = capacity;
    tl_trace = trace;
    tl_index = Hashtbl.create 32;
    tl_series = [];
    tl_rules = [];
    tl_scrapes = 0;
    tl_last_time = min_int;
    tl_alerts = [];
  }

let null =
  {
    tl_enabled = false;
    tl_capacity = 1;
    tl_trace = Trace.null;
    tl_index = Hashtbl.create 1;
    tl_series = [];
    tl_rules = [];
    tl_scrapes = 0;
    tl_last_time = min_int;
    tl_alerts = [];
  }

let enabled t = t.tl_enabled
let scrapes t = t.tl_scrapes

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let register t ~kind ~help ~name probe =
  if t.tl_enabled then begin
    if Hashtbl.mem t.tl_index name then
      invalid_arg
        (Printf.sprintf "Telemetry.register: duplicate series %S" name);
    let s =
      {
        se_name = name;
        se_help = help;
        se_kind = kind;
        se_probe = probe;
        r_times = Array.make t.tl_capacity 0;
        r_values = Array.make t.tl_capacity 0.0;
        r_start = 0;
        r_len = 0;
        a_count = 0;
        a_last = 0.0;
        a_min = infinity;
        a_max = neg_infinity;
        a_sum = 0.0;
      }
    in
    Hashtbl.add t.tl_index name s;
    t.tl_series <- s :: t.tl_series
  end

let register_gauge t ?(help = "") ~name probe =
  register t ~kind:Gauge ~help ~name probe

let register_counter t ?(help = "") ~name probe =
  register t ~kind:Counter ~help ~name probe

let find_exn t ~what name =
  match Hashtbl.find_opt t.tl_index name with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Telemetry.add_rule: unknown %s %S" what name)

let add_rule t ~name ~series ?(window = 1) ~signal ~direction ~fire ~clear () =
  if t.tl_enabled then begin
    if window < 1 || window > t.tl_capacity then
      invalid_arg "Telemetry.add_rule: window out of range";
    (match direction with
    | Above when not (clear < fire) ->
        invalid_arg "Telemetry.add_rule: Above needs clear < fire"
    | Below when not (clear > fire) ->
        invalid_arg "Telemetry.add_rule: Below needs clear > fire"
    | _ -> ());
    let se = find_exn t ~what:"series" series in
    let denom =
      match signal with
      | Window_ratio d -> Some (find_exn t ~what:"ratio denominator" d)
      | _ -> None
    in
    let r =
      {
        ru_name = name;
        ru_series = se;
        ru_denom = denom;
        ru_signal = signal;
        ru_window = window;
        ru_direction = direction;
        ru_fire = fire;
        ru_clear = clear;
        ru_active = false;
      }
    in
    t.tl_rules <- r :: t.tl_rules
  end

(* ------------------------------------------------------------------ *)
(* Scraping                                                            *)
(* ------------------------------------------------------------------ *)

let push s ~time v =
  if s.r_len < Array.length s.r_times then begin
    let i = (s.r_start + s.r_len) mod Array.length s.r_times in
    s.r_times.(i) <- time;
    s.r_values.(i) <- v;
    s.r_len <- s.r_len + 1
  end
  else begin
    (* full: overwrite the oldest *)
    s.r_times.(s.r_start) <- time;
    s.r_values.(s.r_start) <- v;
    s.r_start <- (s.r_start + 1) mod Array.length s.r_times
  end;
  s.a_count <- s.a_count + 1;
  s.a_last <- v;
  if v < s.a_min then s.a_min <- v;
  if v > s.a_max then s.a_max <- v;
  s.a_sum <- s.a_sum +. v

(* The i-th retained sample of [s], 0 = oldest. *)
let ring_value s i = s.r_values.((s.r_start + i) mod Array.length s.r_times)
let ring_time s i = s.r_times.((s.r_start + i) mod Array.length s.r_times)

(* Aggregate over the last [window] retained samples (fewer if the series
   is younger than the window). *)
let window_signal s ~window ~denom = function
  | Last -> if s.r_len = 0 then 0.0 else ring_value s (s.r_len - 1)
  | Window_mean | Window_min | Window_max as sig_ ->
      if s.r_len = 0 then 0.0
      else begin
        let first = max 0 (s.r_len - window) in
        let n = s.r_len - first in
        let acc = ref (ring_value s first) in
        for i = first + 1 to s.r_len - 1 do
          let v = ring_value s i in
          acc :=
            (match sig_ with
            | Window_mean -> !acc +. v
            | Window_min -> min !acc v
            | Window_max -> max !acc v
            | _ -> assert false)
        done;
        if sig_ = Window_mean then !acc /. float_of_int n else !acc
      end
  | Window_rate ->
      if s.r_len < 2 then 0.0
      else
        let first = max 0 (s.r_len - 1 - window) in
        ring_value s (s.r_len - 1) -. ring_value s first
  | Window_ratio _ -> (
      match denom with
      | None -> assert false
      | Some d ->
          let delta se =
            if se.r_len < 2 then 0.0
            else
              let first = max 0 (se.r_len - 1 - window) in
              ring_value se (se.r_len - 1) -. ring_value se first
          in
          let dd = delta d in
          if dd <= 0.0 then 0.0 else delta s /. dd)

let eval_rule t ~time r =
  let v =
    window_signal r.ru_series ~window:r.ru_window ~denom:r.ru_denom r.ru_signal
  in
  let crossed_fire =
    match r.ru_direction with
    | Above -> v >= r.ru_fire
    | Below -> v <= r.ru_fire
  in
  let crossed_clear =
    match r.ru_direction with
    | Above -> v <= r.ru_clear
    | Below -> v >= r.ru_clear
  in
  let transition fired =
    r.ru_active <- fired;
    t.tl_alerts <-
      { al_time = time; al_rule = r.ru_name; al_fired = fired; al_value = v }
      :: t.tl_alerts;
    if Trace.enabled t.tl_trace then begin
      let value_ppm = int_of_float (Float.round (v *. 1e6)) in
      Trace.emit t.tl_trace ~time ~stream:Trace.telemetry_stream
        (if fired then Trace.Alert_fire { rule = r.ru_name; value_ppm }
         else Trace.Alert_clear { rule = r.ru_name; value_ppm })
    end
  in
  if (not r.ru_active) && crossed_fire then transition true
  else if r.ru_active && crossed_clear then transition false

let scrape t ~time =
  if t.tl_enabled then begin
    if time < t.tl_last_time then
      invalid_arg "Telemetry.scrape: time went backwards";
    t.tl_last_time <- time;
    t.tl_scrapes <- t.tl_scrapes + 1;
    List.iter (fun s -> push s ~time (s.se_probe ())) (List.rev t.tl_series);
    List.iter (fun r -> eval_rule t ~time r) (List.rev t.tl_rules)
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

type series_summary = {
  ts_name : string;
  ts_kind : kind;
  ts_samples : int;
  ts_last : float;
  ts_min : float;
  ts_max : float;
  ts_mean : float;
}

let summarize s =
  if s.a_count = 0 then
    {
      ts_name = s.se_name;
      ts_kind = s.se_kind;
      ts_samples = 0;
      ts_last = 0.0;
      ts_min = 0.0;
      ts_max = 0.0;
      ts_mean = 0.0;
    }
  else
    {
      ts_name = s.se_name;
      ts_kind = s.se_kind;
      ts_samples = s.a_count;
      ts_last = s.a_last;
      ts_min = s.a_min;
      ts_max = s.a_max;
      ts_mean = s.a_sum /. float_of_int s.a_count;
    }

let in_order t = List.rev t.tl_series
let series_names t = List.map (fun s -> s.se_name) (in_order t)
let summaries t = List.map summarize (in_order t)

let summary_of t name =
  Option.map summarize (Hashtbl.find_opt t.tl_index name)

let window t name =
  match Hashtbl.find_opt t.tl_index name with
  | None -> []
  | Some s ->
      List.init s.r_len (fun i -> (ring_time s i, ring_value s i))

let last_value t name =
  match Hashtbl.find_opt t.tl_index name with
  | Some s when s.a_count > 0 -> Some s.a_last
  | _ -> None

let alerts t = List.rev t.tl_alerts

let active_rules t =
  List.filter_map
    (fun r -> if r.ru_active then Some r.ru_name else None)
    (List.rev t.tl_rules)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87";
                "\xe2\x96\x88" |]

let sparkline_of ?(width = 60) samples =
  match samples with
  | [] -> "(no samples)"
  | (t0, v0) :: _ ->
      let t1, _ = List.nth samples (List.length samples - 1) in
      let span = max 1 (t1 - t0) in
      (* average the samples landing in each bucket; carry the previous
         level across empty buckets *)
      let sums = Array.make width 0.0 and counts = Array.make width 0 in
      let lo = ref v0 and hi = ref v0 in
      List.iter
        (fun (time, v) ->
          let b = min (width - 1) ((time - t0) * width / span) in
          sums.(b) <- sums.(b) +. v;
          counts.(b) <- counts.(b) + 1;
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        samples;
      let lo = !lo in
      let range = if !hi -. lo <= 0.0 then 1.0 else !hi -. lo in
      let buf = Buffer.create (width * 3) in
      let level = ref 0.0 in
      for b = 0 to width - 1 do
        if counts.(b) > 0 then level := sums.(b) /. float_of_int counts.(b);
        let g = 1 + int_of_float (7.99 *. (!level -. lo) /. range) in
        Buffer.add_string buf glyphs.(max 1 (min 8 g))
      done;
      Buffer.contents buf

let sparkline ?width t name = sparkline_of ?width (window t name)

let pp_summary fmt ts =
  if ts.ts_samples = 0 then
    Format.fprintf fmt "%-16s (no samples)" ts.ts_name
  else
    Format.fprintf fmt "%-16s min %.0f  mean %.0f  max %.0f  last %.0f"
      ts.ts_name ts.ts_min ts.ts_mean ts.ts_max ts.ts_last

let pp fmt t =
  Format.fprintf fmt "@[<v>telemetry: %d series, %d scrapes@,"
    (List.length t.tl_series) t.tl_scrapes;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %a  |%s|@," pp_summary (summarize s)
        (sparkline_of (List.init s.r_len (fun i -> (ring_time s i, ring_value s i)))))
    (in_order t);
  (match alerts t with
  | [] -> Format.fprintf fmt "  (no alerts)@,"
  | als ->
      List.iter
        (fun a ->
          Format.fprintf fmt "  %s %s %s (%.3f)@,"
            (Time_ns.to_string a.al_time)
            (if a.al_fired then "FIRE " else "clear")
            a.al_rule a.al_value)
        als);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — everything else
   becomes an underscore. *)
let sanitize name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* %g loses nothing on the small integral levels probes report and keeps
   the CSV/OpenMetrics output free of trailing zeros. *)
let value_lexeme v = Printf.sprintf "%g" v

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let name = "memhog_" ^ sanitize s.se_name in
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name (kind_name s.se_kind));
      if s.se_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name s.se_help);
      let sample_name =
        match s.se_kind with Counter -> name ^ "_total" | Gauge -> name
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" sample_name
           (value_lexeme (if s.a_count = 0 then 0.0 else s.a_last))))
    (in_order t);
  (match List.rev t.tl_rules with
  | [] -> ()
  | rules ->
      Buffer.add_string buf "# TYPE memhog_alert_active gauge\n";
      Buffer.add_string buf
        "# HELP memhog_alert_active Alert rules currently in the fired state.\n";
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "memhog_alert_active{rule=\"%s\"} %d\n"
               (sanitize r.ru_name)
               (if r.ru_active then 1 else 0)))
        rules);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,time_ns,value\n";
  List.iter
    (fun s ->
      for i = 0 to s.r_len - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%s\n" s.se_name (ring_time s i)
             (value_lexeme (ring_value s i)))
      done)
    (in_order t);
  Buffer.contents buf

let alerts_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "time_ns,rule,event,value\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s\n" a.al_time a.al_rule
           (if a.al_fired then "fire" else "clear")
           (value_lexeme a.al_value)))
    (alerts t);
  Buffer.contents buf
