(** Deterministic fault-injection plans.

    A chaos plan is a list of timed fault rules parsed from a compact spec
    string (or an equivalent JSON document).  Components ask the plan at
    well-defined hook points — "should this disk request fail?", "is the
    releaser stalled right now?" — and the plan answers from per-rule
    deterministic {!Rng} streams, so a fixed [(seed, spec)] pair yields the
    same injected schedule on every run, at any [--jobs] level (each worker
    owns its engine and its own [Chaos.t]).

    {2 Spec syntax}

    Clauses separated by [;].  Each clause is either [seed=N] (overrides the
    plan seed) or

    {v kind@start-stop[:key=value,...] v}

    where [start]/[stop] are simulated times written as a number with a unit
    suffix ([ns], [us], [ms], [s], [m], [h]; bare numbers mean seconds), and
    [kind] is one of:

    - [disk-fault] — transient read/write errors.  Params: [p] (per-request
      fault probability, default 1), [retries] (retry bound, default 4),
      [fails] (fixed number of failed attempts; when absent, drawn uniformly
      in [1..retries]), [backoff] (base backoff delay, default 500us).
    - [disk-slow] — latency spike: positioning and transfer times are
      multiplied by [factor] (default 4).
    - [releaser-stall] / [daemon-stall] — the releaser / paging daemon
      sleeps until the window closes instead of working.
    - [releaser-drop] — release directives reaching the releaser are
      discarded with probability [p] (default 1).
    - [pressure] — a phantom competitor grabs [pages] free frames (default
      64) at [start] and holds them for [hold] (default 1s), slamming
      [tot_freemem] the way a surging sibling process would.
    - [net-partition] — the far-memory link drops requests with probability
      [p] (default 1): every affected request runs to its timeout, is
      aborted, and re-issued by the backend.
    - [net-brownout] — far-memory degradation: round-trip latency is
      multiplied by [factor] and/or the link rate is derated to [bandwidth]
      (a fraction in (0,1]).  At least one of the two must be given a
      non-neutral value.
    - [net-jitter] — with probability [p], a uniform draw in [0,latency] is
      added to each far-memory round trip ([latency] is required and must
      be positive).

    Malformed [latency]/[bandwidth] arguments (or a [net-jitter] clause
    without a latency) fail the parse rather than silently degrading to the
    defaults.

    Example: a disk brown-out, then a pressure spike while it recovers:

    {v disk-fault@10s-20s:p=0.5,retries=4;pressure@18s-30s:pages=256,hold=8s v}

    The JSON form is accepted when the spec starts with [\[] or [{]: an
    array of rule objects ([{"fault":"disk-fault","start":"10s","stop":"20s",
    "p":0.5}, ...]) or [{"seed":N,"rules":[...]}].  Times may be strings
    with units or plain numbers (seconds). *)

type t

type stats = {
  mutable disk_faults : int;  (** requests that drew >= 1 injected failure *)
  mutable disk_retries : int;  (** individual failed attempts *)
  mutable disk_backoff_ns : int;  (** total injected backoff delay *)
  mutable slow_requests : int;  (** requests served under a disk-slow rule *)
  mutable releaser_stall_ns : int;
  mutable daemon_stall_ns : int;
  mutable directives_dropped : int;  (** release directives discarded *)
  mutable pressure_spikes : int;
  mutable pressure_pages : int;  (** frames grabbed across all spikes *)
  mutable net_partition_drops : int;  (** far-memory requests black-holed *)
  mutable net_slow_requests : int;  (** requests served under net-brownout *)
  mutable net_jitter_ns : int;  (** total injected far-memory jitter *)
}

val none : t
(** The empty plan: injects nothing, costs nothing. *)

val is_none : t -> bool
(** [true] iff the plan has no rules ({!none} or an empty spec). *)

val parse : ?seed:int -> string -> (t, string) result
(** Parse a spec (DSL or JSON).  [seed] (default 0) seeds the per-rule
    random streams unless the spec itself carries a [seed=] clause. *)

val create : ?seed:int -> string -> t
(** Like {!parse} but raises [Invalid_argument] on a malformed spec. *)

val stats : t -> stats
(** Live counters, incremented as faults are drawn.  The record for
    {!none} is shared and stays zero. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Hook points} *)

val disk_fault : t -> now:Time_ns.t -> (int * Time_ns.t) option
(** [disk_fault t ~now] asks whether the disk request starting at [now]
    should suffer transient failures.  [Some (k, backoff)] means the first
    [k] attempts fail (the attempt after them succeeds — injected faults
    are transient) and retry [i] should back off [backoff * 2^(i-1)]. *)

val note_disk_retry : t -> backoff:Time_ns.t -> unit
(** Account one failed attempt and its backoff delay. *)

val disk_slow_factor : t -> now:Time_ns.t -> float
(** Service-time multiplier at [now]: 1.0 when no [disk-slow] rule is
    active, otherwise the largest active [factor]. *)

val stall_until :
  t -> [ `Releaser | `Daemon ] -> now:Time_ns.t -> Time_ns.t option
(** [Some stop] when a stall window covers [now]: the daemon should sleep
    until [stop] instead of working. *)

val note_stall : t -> [ `Releaser | `Daemon ] -> Time_ns.t -> unit
(** Account a stall of the given duration. *)

val drop_directive : t -> now:Time_ns.t -> bool
(** Should a release directive arriving at [now] be discarded?  Draws from
    the rule's stream; counts the drop. *)

val pressure_spikes : t -> (Time_ns.t * int * Time_ns.t) list
(** [(start, pages, hold)] for every [pressure] rule, sorted by start
    time.  The OS spawns a phantom fiber that walks this list. *)

val note_pressure : t -> pages:int -> unit
(** Account one spike that actually grabbed [pages] frames. *)

val net_partitioned : t -> now:Time_ns.t -> bool
(** Should a far-memory request issued at [now] be black-holed?  Draws from
    the rule's stream; counts the drop. *)

val net_latency_factor : t -> now:Time_ns.t -> float
(** Far-memory round-trip multiplier at [now]: 1.0 when no [net-brownout]
    rule is active, otherwise the largest active [factor]. *)

val net_bandwidth_scale : t -> now:Time_ns.t -> float
(** Fraction of the nominal far-memory link rate available at [now]: 1.0
    when healthy, otherwise the smallest active [bandwidth]. *)

val net_jitter : t -> now:Time_ns.t -> Time_ns.t
(** Extra round-trip delay drawn for a request at [now] (0 when no
    [net-jitter] rule is active or the [p] draw passes). *)

(** {2 Retry backoff} *)

val backoff_delay : base:Time_ns.t -> cap:Time_ns.t -> attempt:int -> Time_ns.t
(** [backoff_delay ~base ~cap ~attempt] is the delay before retry [attempt]
    (1-based): [base * 2^(attempt-1)] saturating at [cap].  Monotone
    non-decreasing in [attempt], never below [base], never above [cap].
    Raises [Invalid_argument] unless [1 <= base <= cap] and [attempt >= 1].
    Shared by the disk-fault retry path and the far-memory re-issue path. *)
